GO ?= go

.PHONY: all build vet test race check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the repository's gate: everything must compile, pass vet, and
# pass the full test suite under the race detector.
check: build vet race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
