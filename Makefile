GO ?= go

# Flags for the bench-json smoke run: scaled far down so CI finishes in
# seconds; override BENCH_JSON_FLAGS for a full-scale artifact run.
BENCH_JSON_FLAGS ?= -exp table1,ranked -inprocess -timeout 5s -table1-rows 100

.PHONY: all build vet lint lint-json test test-invariants race check bench bench-json fuzz-smoke fuzz-smoke-ranked fuzz-smoke-incremental serve-smoke

# Wall-clock budget of the bounded differential-fuzz smoke run.
FUZZTIME ?= 30s

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs go vet plus hyfdvet, the project's own static-analysis suite
# (determinism, ctxflow, hooksafe, goroutine, bitsetalias, plus the
# interprocedural tier: lockcheck, leakcheck, statusmap); any unsuppressed
# finding fails the build, and -strict-allows additionally fails on
# //hyfdvet:allow comments that no longer suppress anything.
lint: vet
	$(GO) run ./cmd/hyfdvet -strict-allows ./...

# lint-json emits the same findings as one machine-readable document (CI
# uploads it as an artifact).
lint-json:
	$(GO) run ./cmd/hyfdvet -strict-allows -json ./... > hyfdvet.json; \
	status=$$?; cat hyfdvet.json; exit $$status

test:
	$(GO) test ./...

# test-invariants re-runs the suite with the runtime assertion layer armed
# (internal/invariant): fdtree, pli, and validator self-check their
# structural contracts after every mutation.
test-invariants:
	$(GO) test -tags hyfdinvariants ./...

race:
	$(GO) test -race ./...

# check is the repository's gate: everything must compile, pass vet and
# hyfdvet, and pass the full test suite both under the race detector and
# with runtime invariants armed.
check: build lint race test-invariants

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# bench-json runs the benchmark suite and archives each experiment as a
# machine-readable BENCH_<exp>.json artifact in the repo root.
bench-json:
	$(GO) run ./cmd/bench $(BENCH_JSON_FLAGS)

# fuzz-smoke runs the differential fuzzer (public Discover vs the
# brute-force reference) for a bounded time on top of the committed corpus.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDiscoverDifferential -fuzztime=$(FUZZTIME) -run '^$$' .

# fuzz-smoke-ranked runs the ranked top-k differential fuzzer: the engine's
# early-terminated ranking must equal the brute-force cover rescored
# offline, at several k, both null semantics, and two thread counts.
fuzz-smoke-ranked:
	$(GO) test -fuzz=FuzzTopKDifferential -fuzztime=$(FUZZTIME) -run '^$$' .

# fuzz-smoke-incremental runs the incremental maintenance differential
# fuzzer: a fuzzed update batch applied through ModeIncremental must yield
# a cover byte-identical to a cold re-run over the delta'd content, under
# both null semantics and two thread counts.
fuzz-smoke-incremental:
	$(GO) test -fuzz=FuzzIncrementalDifferential -fuzztime=$(FUZZTIME) -run '^$$' .

# serve-smoke is the end-to-end daemon exercise: build hyfdd, start it,
# register a CSV, run one job per mode (fd/afd/ucc/ranked), POST a delta
# and verify the next job pins the new snapshot version with a result
# matching a cold run over the delta'd content, compare warm FD results
# byte-for-byte against cold cmd/hyfd runs, scrape /metrics, and assert a
# clean SIGTERM shutdown.
serve-smoke:
	$(GO) test ./cmd/hyfdd -run 'TestServeSmoke|TestUsageErrors' -count=1 -v
