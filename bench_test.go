// Benchmarks regenerating the HyFD paper's evaluation (§10) at in-process,
// CI-friendly scales — one testing.B benchmark per table and figure. Each
// sub-benchmark reports ns/op plus custom metrics (FD count, and for the
// memory experiment the sampled peak heap). The cmd/bench binary runs the
// same experiments at larger scales with real time/memory limits.
//
//	go test -bench=. -benchmem
package hyfd_test

import (
	"context"
	"fmt"
	"testing"

	"hyfd/internal/core"
	"hyfd/internal/harness"
	"hyfd/internal/pli"
	"hyfd/internal/relation"
)

// benchSpec runs one harness job repeatedly inside a sub-benchmark.
func benchSpec(b *testing.B, spec harness.Spec) {
	b.Helper()
	rel, err := harness.Materialize(spec)
	if err != nil {
		b.Fatal(err)
	}
	var last harness.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = harness.Measure(spec, rel)
		if last.Err != "" {
			b.Fatal(last.Err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(last.FDs), "FDs")
}

// fastBaselines are the baselines cheap enough to benchmark on every
// configuration; the full eight-algorithm grid (with TL/ML handling for
// the expensive ones) is cmd/bench territory.
var fastBaselines = []string{"Tane", "Dfd", "Fdep", harness.HyFDName}

// BenchmarkFig6RowScalability — runtime vs row count on the ncvoter
// (19 columns) and uniprot (30 columns) analogs.
func BenchmarkFig6RowScalability(b *testing.B) {
	for _, ds := range []struct {
		name string
		cols int
	}{{"ncvoter", 19}, {"uniprot", 30}} {
		for _, rows := range []int{250, 1000} {
			for _, alg := range fastBaselines {
				b.Run(fmt.Sprintf("%s/rows=%d/%s", ds.name, rows, alg), func(b *testing.B) {
					benchSpec(b, harness.Spec{Algorithm: alg, Dataset: ds.name, Rows: rows, Cols: ds.cols})
				})
			}
		}
	}
}

// BenchmarkFig7ColumnScalability — runtime vs column count on the uniprot
// and plista analogs at fixed 1 000 rows (paper setting); 250 rows here.
func BenchmarkFig7ColumnScalability(b *testing.B) {
	for _, ds := range []string{"uniprot", "plista"} {
		for _, cols := range []int{10, 20, 30} {
			for _, alg := range fastBaselines {
				b.Run(fmt.Sprintf("%s/cols=%d/%s", ds, cols, alg), func(b *testing.B) {
					benchSpec(b, harness.Spec{Algorithm: alg, Dataset: ds, Rows: 250, Cols: cols})
				})
			}
		}
	}
}

// BenchmarkTable1Datasets — all eight algorithms on the small Table 1
// datasets, HyFD alone on the larger ones (where the paper reports TL/ML
// for most baselines).
func BenchmarkTable1Datasets(b *testing.B) {
	// Small datasets at their natural (paper) size: all eight algorithms.
	small := []string{"iris", "balance-scale", "bridges", "echocardiogram", "breast-cancer", "hepatitis"}
	for _, name := range small {
		for _, alg := range harness.AlgorithmNames {
			if alg == "Dfd" && name == "hepatitis" {
				continue // Dfd needs minutes here (the paper: 327 s)
			}
			b.Run(fmt.Sprintf("%s/%s", name, alg), func(b *testing.B) {
				benchSpec(b, harness.Spec{Algorithm: alg, Dataset: name})
			})
		}
	}
	// Larger datasets, row-capped: HyFD only (baselines TL there, Table 1).
	larger := []string{"chess", "abalone", "nursery", "adult", "letter", "ncvoter"}
	for _, name := range larger {
		b.Run(fmt.Sprintf("%s/%s", name, harness.HyFDName), func(b *testing.B) {
			benchSpec(b, harness.Spec{Algorithm: harness.HyFDName, Dataset: name, Rows: 1000})
		})
	}
}

// BenchmarkTable2MultiThreading — HyFD single- vs multi-threaded on the
// large-dataset analogs (row-capped).
func BenchmarkTable2MultiThreading(b *testing.B) {
	for _, name := range []string{"TPC-H.lineitem", "SAP_R3.ZBC00DT", "NCVoter.statewide", "CD.cd"} {
		for _, threads := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/threads=%d", name, threads), func(b *testing.B) {
				benchSpec(b, harness.Spec{
					Algorithm: harness.HyFDName, Dataset: name, Rows: 1000, Threads: threads,
				})
			})
		}
	}
}

// BenchmarkTable3Memory — peak heap of TANE, DFD, FDEP and HyFD; the
// sampled peak is reported as the peak-MB metric next to -benchmem's
// allocation counters.
func BenchmarkTable3Memory(b *testing.B) {
	cases := []struct {
		name string
		algs []string
	}{
		// Dfd needs minutes on hepatitis and letter (cf. Table 1), so the
		// in-process bench keeps it to adult; cmd/bench covers the rest
		// under its time limit.
		{"hepatitis", []string{"Tane", "Fdep", harness.HyFDName}},
		{"adult", []string{"Tane", "Dfd", "Fdep", harness.HyFDName}},
		{"letter", []string{"Tane", "Fdep", harness.HyFDName}},
	}
	for _, c := range cases {
		name := c.name
		for _, alg := range c.algs {
			b.Run(fmt.Sprintf("%s/%s", name, alg), func(b *testing.B) {
				spec := harness.Spec{Algorithm: alg, Dataset: name, Rows: 1000}
				if name == "hepatitis" {
					spec.Rows = 0 // natural size (155 rows)
				}
				rel, err := harness.Materialize(spec)
				if err != nil {
					b.Fatal(err)
				}
				var peak uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r := harness.Measure(spec, rel)
					if r.Err != "" {
						b.Fatal(r.Err)
					}
					if r.PeakHeap > peak {
						peak = r.PeakHeap
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(peak)/(1<<20), "peak-MB")
			})
		}
	}
}

// BenchmarkFig8EfficiencyThreshold — HyFD's runtime across its only
// parameter on the ncvoter-statewide analog; switch counts are reported as
// a metric.
func BenchmarkFig8EfficiencyThreshold(b *testing.B) {
	for _, th := range []float64{0.0001, 0.001, 0.01, 0.1, 1.0} {
		b.Run(fmt.Sprintf("threshold=%g%%", th*100), func(b *testing.B) {
			spec := harness.Spec{
				Algorithm: harness.HyFDName, Dataset: "NCVoter.statewide",
				Rows: 1000, Threshold: th,
			}
			rel, err := harness.Materialize(spec)
			if err != nil {
				b.Fatal(err)
			}
			var last harness.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last = harness.Measure(spec, rel)
				if last.Err != "" {
					b.Fatal(last.Err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Switches), "switches")
			b.ReportMetric(float64(last.FDs), "FDs")
		})
	}
}

// BenchmarkPreprocessing isolates the Preprocessor (PLI construction +
// record compression), the fixed cost every algorithm pays.
func BenchmarkPreprocessing(b *testing.B) {
	rel, err := harness.Materialize(harness.Spec{Dataset: "ncvoter", Rows: 1000})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pli.NewIndex(rel, relation.NullEqualsNull)
	}
}

// BenchmarkAblations quantifies HyFD's individual design decisions
// (DESIGN.md §2): focused sampling, comparison suggestions, and direct
// validation, each disabled in isolation against the full algorithm.
func BenchmarkAblations(b *testing.B) {
	spec := harness.Spec{Algorithm: harness.HyFDName, Dataset: "ncvoter", Rows: 1000}
	rel, err := harness.Materialize(spec)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"full", core.Config{}},
		{"unfocused-sampling", core.Config{UnfocusedSampling: true}},
		{"no-suggestions", core.Config{NoSuggestions: true}},
		{"intersection-validation", core.Config{IntersectionValidation: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var comparisons int64
			for i := 0; i < b.N; i++ {
				_, stats, err := core.Discover(context.Background(), rel, v.cfg)
				if err != nil {
					b.Fatal(err)
				}
				comparisons = stats.Comparisons
			}
			b.ReportMetric(float64(comparisons), "comparisons")
		})
	}
}
