package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"hyfd/internal/harness"
)

// driver executes measurement jobs, either in subprocesses (with real TL
// and ML enforcement and externally-observed peak RSS) or in-process.
type driver struct {
	timeout  time.Duration
	memLimit uint64
	inProc   bool

	// skip remembers (dataset, algorithm) pairs that already hit a limit
	// during a sweep; larger configurations of the same pair are skipped
	// and reported with the same marker, exactly like the paper's stopped
	// measurement series.
	skip map[string]string // key -> "TL" | "ML"
}

func (d *driver) runAll(jobs []harness.Spec) []harness.Result {
	// The skip table is scoped to one experiment: a TL on small ncvoter in
	// Fig 6 says nothing about Table 1's configuration of the same pair.
	d.skip = make(map[string]string)
	results := make([]harness.Result, 0, len(jobs))
	for _, job := range jobs {
		r := d.runOne(job)
		results = append(results, r)
		d.progress(job, r)
	}
	return results
}

// runOne executes one job unless its (dataset, algorithm) pair already hit
// a limit in this experiment, in which case the marker is propagated — the
// paper's stopped-measurement-series convention.
func (d *driver) runOne(job harness.Spec) harness.Result {
	// The key deliberately excludes rows/cols (a limit at a smaller scale
	// implies one at a larger scale of the same pair) but includes the
	// threshold and thread parameters, which do not order runs that way.
	key := fmt.Sprintf("%s|%s|th%g|n%d", job.Dataset, job.Algorithm, job.Threshold, job.Threads)
	if marker, skipped := d.skip[key]; skipped {
		r := harness.Result{Spec: job, Switches: -1}
		if marker == "ML" {
			r.MemExceeded = true
		} else {
			r.TimedOut = true
		}
		return r
	}
	var r harness.Result
	if d.inProc {
		// The context deadline gives in-process runs a real TL: the engine's
		// cancellation checkpoints abort the run and the harness reports it
		// as timed out. ML stays unenforced in this mode.
		ctx, cancel := context.WithTimeout(context.Background(), d.timeout)
		r = harness.ExecuteInProcessContext(ctx, job)
		cancel()
	} else {
		r = d.runSubprocess(job)
	}
	if r.TimedOut {
		d.skip[key] = "TL"
	}
	if r.MemExceeded {
		d.skip[key] = "ML"
	}
	return r
}

func (d *driver) progress(job harness.Spec, r harness.Result) {
	status := fmt.Sprintf("%8.2fs  %d FDs", r.Seconds, r.FDs)
	switch {
	case r.TimedOut:
		status = "TL"
	case r.MemExceeded:
		status = "ML"
	case r.Err != "":
		status = "ERR " + r.Err
	}
	fmt.Fprintf(os.Stderr, "  %-10s %-20s rows=%-8d cols=%-4d th=%g thr=%d  %s\n",
		job.Algorithm, job.Dataset, job.Rows, job.Cols, job.Threshold, job.Threads, status)
}

// runSubprocess re-executes this binary with -worker, polls the child's
// RSS against the memory limit, and kills it on time or memory overrun.
func (d *driver) runSubprocess(job harness.Spec) harness.Result {
	specJSON, err := json.Marshal(job)
	if err != nil {
		return harness.Result{Spec: job, Switches: -1, Err: err.Error()}
	}
	self, err := os.Executable()
	if err != nil {
		return harness.Result{Spec: job, Switches: -1, Err: err.Error()}
	}
	cmd := exec.Command(self, "-worker", string(specJSON))
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		return harness.Result{Spec: job, Switches: -1, Err: err.Error()}
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	deadline := time.NewTimer(d.timeout)
	defer deadline.Stop()
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()

	var peakRSS uint64
	for {
		select {
		case err := <-done:
			res := harness.Result{Spec: job, Switches: -1}
			if err != nil {
				res.Err = fmt.Sprintf("worker: %v: %s", err, strings.TrimSpace(stderr.String()))
				return res
			}
			if jsonErr := json.Unmarshal(stdout.Bytes(), &res); jsonErr != nil {
				res.Err = fmt.Sprintf("worker output: %v", jsonErr)
				return res
			}
			// Prefer the externally observed RSS when it exceeds the
			// in-process heap sample.
			if peakRSS > res.PeakHeap {
				res.PeakHeap = peakRSS
			}
			return res
		case <-deadline.C:
			_ = cmd.Process.Kill()
			<-done
			return harness.Result{Spec: job, Switches: -1, TimedOut: true}
		case <-ticker.C:
			if rss, ok := readRSS(cmd.Process.Pid); ok {
				if rss > peakRSS {
					peakRSS = rss
				}
				if d.memLimit > 0 && rss > d.memLimit {
					_ = cmd.Process.Kill()
					<-done
					return harness.Result{Spec: job, Switches: -1, MemExceeded: true}
				}
			}
		}
	}
}

// readRSS reads the resident set size of a process from /proc (Linux).
func readRSS(pid int) (uint64, bool) {
	f, err := os.Open(fmt.Sprintf("/proc/%d/status", pid))
	if err != nil {
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb << 10, true
	}
	return 0, false
}
