package main

import (
	"os"
	"testing"
	"time"

	"hyfd/internal/harness"
)

func TestReadRSSSelf(t *testing.T) {
	rss, ok := readRSS(os.Getpid())
	if !ok {
		t.Skip("/proc not available")
	}
	if rss == 0 {
		t.Fatal("self RSS reported as 0")
	}
}

func TestReadRSSMissingPid(t *testing.T) {
	if _, ok := readRSS(1 << 30); ok {
		t.Fatal("nonexistent pid reported RSS")
	}
}

func TestDriverSkipPropagation(t *testing.T) {
	d := &driver{inProc: true, timeout: time.Second}
	d.skip = map[string]string{"iris|Tane|th0|n0": "TL", "iris|Fdep|th0|n0": "ML"}
	tl := d.runOne(harness.Spec{Algorithm: "Tane", Dataset: "iris", Rows: 150})
	if !tl.TimedOut {
		t.Fatalf("skip TL not propagated: %+v", tl)
	}
	ml := d.runOne(harness.Spec{Algorithm: "Fdep", Dataset: "iris", Rows: 150})
	if !ml.MemExceeded {
		t.Fatalf("skip ML not propagated: %+v", ml)
	}
	// A fresh experiment resets the table.
	old := os.Stderr
	null, _ := os.Open(os.DevNull)
	os.Stderr = null
	results := d.runAll([]harness.Spec{{Algorithm: "Tane", Dataset: "iris", Rows: 150}})
	os.Stderr = old
	if results[0].TimedOut || results[0].Err != "" {
		t.Fatalf("stale skip entry leaked across experiments: %+v", results[0])
	}
}

func TestDriverInProcessRun(t *testing.T) {
	d := &driver{inProc: true, timeout: time.Minute}
	old := os.Stderr
	null, _ := os.Open(os.DevNull)
	os.Stderr = null
	results := d.runAll([]harness.Spec{{Algorithm: harness.HyFDName, Dataset: "iris", Rows: 150}})
	os.Stderr = old
	if len(results) != 1 || results[0].Err != "" {
		t.Fatalf("results = %+v", results)
	}
	// A successful run must not poison the skip table.
	if len(d.skip) != 0 {
		t.Fatalf("skip table = %v", d.skip)
	}
}
