// Command bench regenerates the tables and figures of the HyFD paper's
// evaluation section (§10) against the synthetic dataset analogs. Each
// measurement runs in a subprocess so per-run time limits (TL) and memory
// limits (ML) are enforced the way the paper enforces them, and peak RSS
// is measured from outside the measured process.
//
// Usage:
//
//	bench -exp all
//	bench -exp fig6,table1 -timeout 60s -memlimit-mb 4096
//	bench -exp table1 -table1-rows 16000
//	bench -exp fig8 -inprocess
//
// Besides the rendered tables, every experiment is archived as a
// machine-readable BENCH_<id>.json artifact (environment, per-job Stats,
// and metrics snapshots for HyFD runs) in -json-dir; -json-dir "" disables
// the artifacts. EXPERIMENTS.md documents the artifact schema and how to
// compare artifacts across commits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hyfd/internal/harness"
)

func main() {
	var (
		worker     = flag.Bool("worker", false, "internal: run one job read from argv and emit JSON")
		exp        = flag.String("exp", "all", "experiments to run: all or comma list of fig6,fig7,table1,table2,table3,fig8,prep,dataset_reuse,ranked,incremental,serving (serving is not part of all)")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-run time limit (TL)")
		memLimitMB = flag.Int("memlimit-mb", 8192, "per-run memory limit in MB (ML)")
		inprocess  = flag.Bool("inprocess", false, "run jobs in-process (TL enforced via context deadlines, no ML enforcement; useful without exec permissions)")
		jsonDir    = flag.String("json-dir", ".", "directory for BENCH_<exp>.json artifacts (empty = don't write)")
		metered    = flag.Bool("metrics", true, "embed metrics snapshots of HyFD runs in the artifacts")

		fig6Rows   = flag.Int("fig6-max-rows", 0, "override Fig 6 max rows")
		fig7Cols   = flag.Int("fig7-max-cols", 0, "override Fig 7 max cols")
		table1Rows = flag.Int("table1-rows", 0, "override Table 1 row cap")
		table2Rows = flag.Int("table2-rows", 0, "override Table 2 row cap")
		table3Rows = flag.Int("table3-rows", 0, "override Table 3 row cap")
		fig8Rows   = flag.Int("fig8-rows", 0, "override Fig 8 sample size")
		threads    = flag.Int("threads", 0, "override Table 2 worker count")

		servingRequests = flag.Int("serving-requests", 0, "override the serving sweep's per-level trace length")
		servingLoads    = flag.String("serving-loads", "", "override the serving sweep's offered-load levels (comma-separated req/s)")
		servingWorkers  = flag.Int("serving-workers", 0, "override the serving sweep's worker count")
		servingQueue    = flag.Int("serving-queue", 0, "override the serving sweep's queue depth")
	)
	flag.Parse()

	if *worker {
		runWorker(flag.Arg(0))
		return
	}

	opts := harness.DefaultOptions()
	applyIf := func(dst *int, v int) {
		if v > 0 {
			*dst = v
		}
	}
	applyIf(&opts.Fig6MaxRows, *fig6Rows)
	applyIf(&opts.Fig7MaxCols, *fig7Cols)
	applyIf(&opts.Table1Rows, *table1Rows)
	applyIf(&opts.Table2Rows, *table2Rows)
	applyIf(&opts.Table3Rows, *table3Rows)
	applyIf(&opts.Fig8Rows, *fig8Rows)
	applyIf(&opts.Threads, *threads)

	var ids []string
	if *exp == "all" {
		ids = []string{"fig6", "fig7", "table1", "table2", "table3", "fig8", "prep", "dataset_reuse", "ranked", "incremental"}
	} else {
		ids = strings.Split(*exp, ",")
	}

	driver := &driver{
		timeout:  *timeout,
		memLimit: uint64(*memLimitMB) << 20,
		inProc:   *inprocess,
	}
	for _, id := range ids {
		if strings.TrimSpace(id) == "serving" {
			runServing(*servingRequests, *servingLoads, *servingWorkers, *servingQueue, *jsonDir)
			continue
		}
		e, err := harness.ByID(strings.TrimSpace(id), opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(2)
		}
		fmt.Printf("\n=== %s ===\n%s\n\n", e.ID, e.Title)
		if *metered {
			for i := range e.Jobs {
				if e.Jobs[i].Algorithm == harness.HyFDName {
					e.Jobs[i].Metrics = true
				}
			}
		}
		results := driver.runAll(e.Jobs)
		e.Render(os.Stdout, results)
		if *jsonDir != "" {
			path, err := harness.NewArtifact(e, results).WriteFile(*jsonDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			fmt.Printf("\nartifact: %s\n", path)
		}
	}
}

// runServing executes the serving-capacity sweep: an in-process hyfdd server
// (the production mux and worker pool behind a local listener) replayed with
// deterministic synthetic traces at each offered load level.
func runServing(requests int, loads string, workers, queueDepth int, jsonDir string) {
	opts := harness.DefaultServingOptions()
	if requests > 0 {
		opts.Requests = requests
	}
	if workers > 0 {
		opts.Workers = workers
	}
	if queueDepth > 0 {
		opts.QueueDepth = queueDepth
	}
	if loads != "" {
		opts.LoadsRPS = nil
		for _, f := range strings.Split(loads, ",") {
			var rps float64
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%g", &rps); err != nil || rps <= 0 {
				fmt.Fprintf(os.Stderr, "bench: bad -serving-loads entry %q\n", f)
				os.Exit(2)
			}
			opts.LoadsRPS = append(opts.LoadsRPS, rps)
		}
	}
	fmt.Printf("\n=== serving ===\nServing capacity — offered load vs latency, queue depth, and 429 rate\n\n")
	art, err := harness.RunServing(context.Background(), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	harness.RenderServing(os.Stdout, art)
	if jsonDir != "" {
		path, err := art.WriteFile(jsonDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Printf("\nartifact: %s\n", path)
	}
}

// runWorker executes one job in this process and writes the result JSON to
// stdout (the parent enforces TL/ML from the outside).
func runWorker(specJSON string) {
	var spec harness.Spec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		fmt.Fprintln(os.Stderr, "bench worker:", err)
		os.Exit(2)
	}
	res := harness.ExecuteInProcess(spec)
	out, err := json.Marshal(res)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench worker:", err)
		os.Exit(2)
	}
	fmt.Println(string(out))
}
