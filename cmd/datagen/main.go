// Command datagen materializes the synthetic evaluation datasets (the
// analogs of the HyFD paper's benchmark data) as CSV.
//
// Usage:
//
//	datagen -list
//	datagen -dataset ncvoter > ncvoter.csv
//	datagen -dataset uniprot -rows 5000 -cols 30 > uniprot_30.csv
//	datagen -fd-reduced -rows 250000 -cols 30 > fd-reduced-30.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"hyfd/internal/datasets"
	"hyfd/internal/harness"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available dataset names and exit")
		dataset   = flag.String("dataset", "", "dataset name (see -list)")
		rows      = flag.Int("rows", 0, "cap the row count (0 = the dataset's paper size)")
		cols      = flag.Int("cols", 0, "project to the first N columns (0 = all)")
		fdReduced = flag.Bool("fd-reduced", false, "generate an fd-reduced dataset instead of a named one")
		domain    = flag.Int("domain", 0, "fd-reduced: per-column domain size (0 = auto for level-3 FDs)")
		seed      = flag.Int64("seed", 24, "fd-reduced: generator seed")
		out       = flag.String("o", "-", "output file (- = stdout)")
	)
	flag.Parse()

	if *list {
		for _, name := range datasets.Names() {
			d, _ := datasets.ByName(name)
			fmt.Printf("%-20s %4d cols %10d rows\n", d.Name, d.Cols, d.Rows)
		}
		return
	}

	var w *bufio.Writer
	if *out == "-" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	if *fdReduced {
		if *rows == 0 || *cols == 0 {
			fmt.Fprintln(os.Stderr, "datagen: -fd-reduced requires -rows and -cols")
			os.Exit(2)
		}
		rel := datasets.FDReduced(*rows, *cols, *domain, *seed)
		if err := rel.WriteCSV(w); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		return
	}

	if *dataset == "" {
		fmt.Fprintln(os.Stderr, "usage: datagen -dataset NAME [-rows N] [-cols N] (or -list)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	rel, err := harness.Materialize(harness.Spec{Dataset: *dataset, Rows: *rows, Cols: *cols})
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := rel.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
