package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildDatagen(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "datagen-test-bin")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Skipf("cannot build CLI in test environment: %v\n%s", err, out)
	}
	return bin
}

func TestDatagenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildDatagen(t)

	t.Run("list", func(t *testing.T) {
		out, err := exec.Command(bin, "-list").Output()
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"iris", "ncvoter", "uniprot", "fd-reduced-30"} {
			if !strings.Contains(string(out), want) {
				t.Fatalf("list missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("named dataset to file", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "iris.csv")
		if err := exec.Command(bin, "-dataset", "iris", "-o", path).Run(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Count(string(data), "\n")
		if lines != 151 { // header + 150 rows
			t.Fatalf("iris CSV has %d lines", lines)
		}
	})

	t.Run("row and column caps", func(t *testing.T) {
		out, err := exec.Command(bin, "-dataset", "uniprot", "-rows", "20", "-cols", "5").Output()
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(out)), "\n")
		if len(lines) != 21 {
			t.Fatalf("%d lines, want 21", len(lines))
		}
		if got := strings.Count(lines[0], ",") + 1; got != 5 {
			t.Fatalf("%d columns, want 5", got)
		}
	})

	t.Run("fd-reduced", func(t *testing.T) {
		out, err := exec.Command(bin, "-fd-reduced", "-rows", "50", "-cols", "4").Output()
		if err != nil {
			t.Fatal(err)
		}
		if lines := strings.Count(string(out), "\n"); lines != 51 {
			t.Fatalf("%d lines, want 51", lines)
		}
	})

	t.Run("errors", func(t *testing.T) {
		if err := exec.Command(bin, "-dataset", "nope").Run(); err == nil {
			t.Fatal("unknown dataset accepted")
		}
		if err := exec.Command(bin, "-fd-reduced").Run(); err == nil {
			t.Fatal("fd-reduced without dims accepted")
		}
		if err := exec.Command(bin).Run(); err == nil {
			t.Fatal("no arguments accepted")
		}
	})
}
