// Command hyfd discovers all minimal, non-trivial functional dependencies
// of a CSV file using HyFD or any of the seven baseline algorithms from the
// paper's evaluation. It can additionally report approximate FDs, unique
// column combinations, candidate keys, and a BCNF decomposition — the
// use-case layer the paper motivates.
//
// Usage:
//
//	hyfd [flags] file.csv
//	cat file.csv | hyfd [flags] -
//
// Examples:
//
//	hyfd -stats data.csv
//	hyfd -algorithm Tane -sep ';' -null-literal NULL data.csv
//	hyfd -threads 8 -max-lhs 4 wide.csv
//	hyfd -progress -timeout 30s big.csv
//	hyfd -metrics-addr :9090 -progress big.csv
//	hyfd -stats-json - -no-fds data.csv
//	hyfd -uccs -keys -bcnf orders.csv
//	hyfd -approx 0.05 dirty.csv
//	hyfd -top-k 5 -progress big.csv
//
// With -metrics-addr the process serves Prometheus text exposition on
// /metrics, a JSON snapshot on /metrics.json, and the standard Go profiler
// on /debug/pprof/ for the lifetime of the run; the bound address is
// announced on stderr. With -stats-json the run's statistics (and, for
// HyFD, the full metrics snapshot) are written as one JSON document.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strings"
	"time"

	"hyfd"
	"hyfd/internal/closure"
	"hyfd/internal/logging"
	"hyfd/internal/metrics"
)

func main() {
	var (
		algorithm   = flag.String("algorithm", hyfd.AlgorithmHyFD, "discovery algorithm: "+strings.Join(hyfd.Algorithms(), ", "))
		sep         = flag.String("sep", ",", "CSV field separator (single character)")
		noHeader    = flag.Bool("no-header", false, "treat the first CSV record as data, not column names")
		nullLiteral = flag.String("null-literal", "", "additional token parsed as NULL (empty fields always are)")
		nullNeq     = flag.Bool("null-neq", false, "use null≠null semantics instead of the default null=null")
		threads     = flag.Int("threads", 0, "worker threads for parsing, preprocessing, sampling and validation: 0 = all CPUs, 1 = single-threaded")
		threshold   = flag.Float64("threshold", 0, "efficiency threshold, 0 = paper default 0.01 (HyFD only)")
		maxLhs      = flag.Int("max-lhs", 0, "limit result LHS size, 0 = unbounded")
		memBudget   = flag.Int("memory-budget-mb", 0, "memory Guardian budget in MB, 0 = disabled (HyFD only)")
		timeout     = flag.Duration("timeout", 0, "abort discovery after this duration (e.g. 30s), 0 = no limit")
		progress    = flag.Bool("progress", false, "stream per-phase progress events to stderr (HyFD only)")
		stats       = flag.Bool("stats", false, "print run statistics to stderr")
		statsJSON   = flag.String("stats-json", "", "write run statistics as JSON to this file (- for stdout)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /debug/pprof on this address while running")
		indices     = flag.Bool("indices", false, "print attribute indices instead of column names")
		noFds       = flag.Bool("no-fds", false, "suppress the FD listing (useful with the flags below)")
		jsonOut     = flag.Bool("json", false, "emit the FDs as JSON ({determinant, dependant} objects)")
		topK        = flag.Int("top-k", 0, "rank FDs by redundancy score and return only the k best, terminating early (HyFD only; 0 = off)")
		minScore    = flag.Float64("min-score", 0, "with ranked discovery, drop results scoring below this floor (0 = off)")
		approx      = flag.Float64("approx", -1, "also report approximate FDs with g3 error <= this threshold")
		uccs        = flag.Bool("uccs", false, "also report minimal unique column combinations")
		keys        = flag.Bool("keys", false, "also report candidate keys derived from the FDs")
		bcnf        = flag.Bool("bcnf", false, "also report a BCNF decomposition derived from the FDs")
		logLevel    = flag.String("log-level", "info", "log level for process diagnostics on stderr: debug, info, warn, error")
		logFormat   = flag.String("log-format", "text", "log format: text, json")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hyfd [flags] file.csv (use - for stdin)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *threads < 0 {
		fmt.Fprintf(os.Stderr, "hyfd: invalid -threads %d: must be 0 (all CPUs) or positive\n", *threads)
		os.Exit(2)
	}
	if *topK < 0 || *minScore < 0 {
		fmt.Fprintln(os.Stderr, "hyfd: -top-k and -min-score must be >= 0")
		os.Exit(2)
	}
	ranked := *topK > 0 || *minScore > 0
	if ranked {
		if *algorithm != hyfd.AlgorithmHyFD {
			fmt.Fprintln(os.Stderr, "hyfd: ranked discovery (-top-k/-min-score) supports only the HyFD engine")
			os.Exit(2)
		}
		if *jsonOut || *keys || *bcnf {
			fmt.Fprintln(os.Stderr, "hyfd: -json, -keys and -bcnf need the full FD cover; drop -top-k/-min-score")
			os.Exit(2)
		}
	}
	logger, err := logging.New(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyfd:", err)
		os.Exit(2)
	}
	workers := *threads
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	ns := hyfd.NullEqualsNull
	if *nullNeq {
		ns = hyfd.NullNotEqualsNull
	}
	opts := hyfd.Options{
		NullSemantics:       ns,
		Threads:             *threads,
		EfficiencyThreshold: *threshold,
		MaxLhsSize:          *maxLhs,
		MemoryBudgetBytes:   *memBudget << 20,
	}
	// Any observability flag arms the metrics registry: the HTTP endpoints
	// and the JSON report read it directly, and -progress uses its counters
	// to render cumulative rates. Setup precedes ingest so the ingest event
	// below reaches the same sinks as the engine's own events.
	var reg *hyfd.MetricsRegistry
	if *metricsAddr != "" || *statsJSON != "" || *progress {
		reg = hyfd.NewMetricsRegistry()
		opts.Metrics = reg
	}
	if *metricsAddr != "" {
		// The deferred shutdown drains in-flight scrapes before the process
		// exits instead of tearing the listener down mid-response.
		defer serveMetrics(*metricsAddr, reg, logger)()
	}
	em := metrics.NewEngineMetrics(reg)
	if *progress {
		opts.Observer = progressObserver(os.Stderr, em, time.Now())
	}

	csvOpts := hyfd.CSVOptions{
		Comma:       []rune(*sep)[0],
		HasHeader:   !*noHeader,
		EmptyIsNull: true,
		NullLiteral: *nullLiteral,
		Threads:     *threads,
	}
	ingestStart := time.Now()
	var rel *hyfd.Relation
	if path := flag.Arg(0); path == "-" {
		rel, err = hyfd.ReadCSV("stdin", os.Stdin, csvOpts)
	} else {
		rel, err = hyfd.ReadCSVFile(path, csvOpts)
	}
	fatalIf(err)
	if obs := hyfd.MultiObserver(em.Observer(), opts.Observer); obs != nil {
		obs.Observe(hyfd.IngestDone{
			Rows: rel.NumRows(), Cols: rel.NumCols(),
			Threads: workers, Duration: time.Since(ingestStart),
		})
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Prepare once, then fan every requested analysis (discovery, -approx,
	// -uccs) out over the shared Dataset: the PLI build is paid a single
	// time no matter how many reports the invocation asks for.
	ds, err := hyfd.Prepare(ctx, rel, hyfd.PrepareOptions{
		NullSemantics: ns,
		Threads:       *threads,
		Observer:      opts.Observer,
		Metrics:       reg,
	})
	fatalIf(err)
	request := hyfd.Request{Dataset: ds, Algorithm: *algorithm, Options: opts}
	if ranked {
		request = hyfd.Request{Dataset: ds, Mode: hyfd.ModeRanked, TopK: *topK, MinScore: *minScore, Options: opts}
	}
	result, err := hyfd.Run(ctx, request)
	fatalIf(err)

	render := func(lhs hyfd.AttrSet) string {
		if *indices {
			return lhs.String()
		}
		var names []string
		lhs.ForEach(func(a int) bool {
			names = append(names, rel.Columns[a])
			return true
		})
		return "[" + strings.Join(names, ",") + "]"
	}

	if !*noFds {
		switch {
		case ranked:
			for _, r := range result.Ranked {
				if *indices {
					fmt.Printf("%3d  %.6g  %s\n", r.Rank, r.Score, r.FD.String())
				} else {
					fmt.Printf("%3d  %.6g  %s\n", r.Rank, r.Score, r.FD.Format(rel))
				}
			}
		case *jsonOut:
			fatalIf(result.Set.WriteJSON(os.Stdout, rel))
		default:
			for _, f := range result.FDs {
				if *indices {
					fmt.Println(f.String())
				} else {
					fmt.Println(f.Format(rel))
				}
			}
		}
	}

	if *approx >= 0 {
		ares, err := hyfd.Run(ctx, hyfd.Request{
			Dataset: ds, Mode: hyfd.ModeAFD, MaxError: *approx,
			Options: hyfd.Options{MaxLhsSize: *maxLhs},
		})
		fatalIf(err)
		fmt.Printf("\napproximate FDs (g3 <= %g):\n", *approx)
		for _, a := range ares.AFDs {
			if *indices {
				fmt.Printf("  %s\n", a.String())
			} else {
				fmt.Printf("  %s -> %s (g3=%.4f)\n", render(a.Lhs), rel.Columns[a.Rhs], a.Error)
			}
		}
	}

	if *uccs {
		ures, err := hyfd.Run(ctx, hyfd.Request{
			Dataset: ds, Mode: hyfd.ModeUCC,
			Options: hyfd.Options{MaxLhsSize: *maxLhs},
		})
		fatalIf(err)
		fmt.Println("\nminimal unique column combinations:")
		for _, u := range ures.UCCs {
			fmt.Printf("  %s\n", render(u))
		}
	}

	if *keys {
		fmt.Println("\ncandidate keys:")
		for _, k := range closure.CandidateKeys(result.Set, rel.NumCols()) {
			fmt.Printf("  %s\n", render(k))
		}
	}

	if *bcnf {
		fmt.Println("\nBCNF decomposition:")
		for _, sub := range closure.BCNF(result.Set, rel.NumCols()) {
			fmt.Printf("  R%s with key %s\n", render(sub.Attrs), render(sub.Key))
		}
	}

	if *statsJSON != "" {
		fatalIf(writeStatsJSON(*statsJSON, rel.Name, *algorithm, result, ds.PreprocessingTime(), reg))
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "dataset: %s (%d rows, %d columns)\n", rel.Name, rel.NumRows(), rel.NumCols())
		if ranked {
			fmt.Fprintf(os.Stderr, "ranked fds: %d\n", len(result.Ranked))
		} else {
			fmt.Fprintf(os.Stderr, "fds: %d\n", len(result.FDs))
		}
		if s := result.Stats; s != nil {
			fmt.Fprintf(os.Stderr, "phase switches: %d, sampling rounds: %d\n", s.PhaseSwitches, s.SamplingRounds)
			fmt.Fprintf(os.Stderr, "comparisons: %d, validations: %d, observations: %d\n",
				s.Comparisons, s.Validations, s.Observations)
			if s.TotalTime > 0 {
				fmt.Fprintf(os.Stderr, "time: %s total (preprocessing %s, sampling %s, validation %s)\n",
					s.TotalTime.Round(time.Millisecond), s.PreprocessingTime.Round(time.Millisecond),
					s.SamplingTime.Round(time.Millisecond), s.ValidationTime.Round(time.Millisecond))
			}
			if s.Warm {
				fmt.Fprintf(os.Stderr, "prepare: %s (dataset prepared once, reused by the run)\n",
					ds.PreprocessingTime().Round(time.Millisecond))
			}
			if !s.Complete {
				if ranked {
					fmt.Fprintln(os.Stderr, "NOTE: ranked run terminated early — the requested top of the ranking was provably stable")
				} else {
					fmt.Fprintf(os.Stderr, "NOTE: result pruned to LHS size <= %d (memory guardian / max-lhs)\n", s.MaxLhs)
				}
			}
		}
	}
}

// serveMetrics binds the address and serves the observability endpoints in
// the background. Binding before discovery starts (and announcing the
// resolved address on stderr) lets scrapers and the e2e tests attach while
// the run is still in flight. The returned function shuts the listener down
// gracefully, draining in-flight scrapes for up to two seconds.
func serveMetrics(addr string, reg *hyfd.MetricsRegistry, logger *slog.Logger) (shutdown func()) {
	ln, err := net.Listen("tcp", addr)
	fatalIf(err)
	reg.Gauge("hyfd_up", "Always 1 while the hyfd process serves metrics.").Set(1)
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(reg))
	mux.Handle("/metrics.json", metrics.JSONHandler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("metrics serving", "url", fmt.Sprintf("http://%s/metrics", ln.Addr()))
	srv := &http.Server{Handler: mux}
	done := make(chan struct{})
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("metrics server failed", "error", err)
		}
		close(done)
	}()
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	}
}

// runReport is the -stats-json document: the run's Stats under their stable
// JSON names, plus the full metrics snapshot when the run was metered.
type runReport struct {
	Dataset   string `json:"dataset"`
	Algorithm string `json:"algorithm"`
	FDs       int    `json:"fds"`
	// PrepareNs is the one-off Dataset preparation cost the warm run
	// excludes from its own Stats timings.
	PrepareNs int64                 `json:"prepare_ns,omitempty"`
	Stats     *hyfd.Stats           `json:"stats"`
	Metrics   *hyfd.MetricsSnapshot `json:"metrics,omitempty"`
}

func writeStatsJSON(path, dataset, algorithm string, result *hyfd.Result, prep time.Duration, reg *hyfd.MetricsRegistry) error {
	fds := len(result.FDs)
	if result.Ranked != nil {
		fds = len(result.Ranked)
	}
	report := runReport{
		Dataset:   dataset,
		Algorithm: algorithm,
		FDs:       fds,
		PrepareNs: prep.Nanoseconds(),
		Stats:     result.Stats,
	}
	if reg != nil && algorithm == hyfd.AlgorithmHyFD {
		snap := reg.Snapshot()
		report.Metrics = &snap
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// progressObserver renders the engine's trace events as human-readable
// progress lines. With an EngineMetrics handle it appends cumulative
// throughput rates (comparisons/s after sampling rounds, validations/s
// after validation levels) read from the same counters the engine updates.
func progressObserver(w *os.File, em *metrics.EngineMetrics, start time.Time) hyfd.Observer {
	var comparisons, validations *metrics.Counter
	if em != nil {
		comparisons, validations = em.Comparisons, em.Validations
	}
	rate := func(c *metrics.Counter, unit string) string {
		elapsed := time.Since(start).Seconds()
		if c == nil || elapsed <= 0 {
			return ""
		}
		return fmt.Sprintf(" (%s %s)", humanRate(float64(c.Value())/elapsed), unit)
	}
	return hyfd.ObserverFunc(func(e hyfd.Event) {
		switch ev := e.(type) {
		case hyfd.IngestDone:
			fmt.Fprintf(w, "ingested %d rows x %d cols (%d threads) in %s\n",
				ev.Rows, ev.Cols, ev.Threads, ev.Duration.Round(time.Millisecond))
		case hyfd.PreprocessingDone:
			if ev.Warm {
				fmt.Fprintf(w, "reused prepared dataset (%d rows x %d cols)\n", ev.Rows, ev.Cols)
			} else {
				fmt.Fprintf(w, "preprocessed %d rows x %d cols in %s\n",
					ev.Rows, ev.Cols, ev.Duration.Round(time.Millisecond))
			}
		case hyfd.SamplingRound:
			fmt.Fprintf(w, "sampling round %d: %d new observations, %d comparisons (threshold %.4g) in %s%s\n",
				ev.Round, ev.NewObservations, ev.Comparisons, ev.Threshold,
				ev.Duration.Round(time.Millisecond), rate(comparisons, "cmp/s"))
		case hyfd.PhaseSwitch:
			fmt.Fprintf(w, "phase switch #%d: %s -> %s\n", ev.Switches, ev.From, ev.To)
		case hyfd.ValidationLevel:
			fmt.Fprintf(w, "validation level %d: %d candidates, %d valid, %d invalid in %s%s\n",
				ev.Level, ev.Candidates, ev.Valid, ev.Invalid,
				ev.Duration.Round(time.Millisecond), rate(validations, "val/s"))
		case hyfd.GuardianPrune:
			fmt.Fprintf(w, "memory guardian: results pruned to LHS size <= %d (intervention #%d)\n",
				ev.MaxLhs, ev.Interventions)
		case hyfd.RankedResult:
			fmt.Fprintf(w, "ranked result #%d: score %.6g (%v -> %d) at %s\n",
				ev.Rank, ev.Score, ev.Lhs, ev.Rhs, ev.Duration.Round(time.Millisecond))
		case hyfd.Done:
			fmt.Fprintf(w, "done: %d FDs in %s\n", ev.FDs, ev.Duration.Round(time.Millisecond))
		}
	})
}

// humanRate renders an events-per-second figure compactly: 532, 12.3k,
// 4.6M (the caller appends the unit).
func humanRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func fatalIf(err error) {
	if err != nil {
		msg := strings.TrimPrefix(err.Error(), "hyfd: ")
		fmt.Fprintln(os.Stderr, "hyfd:", msg)
		os.Exit(1)
	}
}
