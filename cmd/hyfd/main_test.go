package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildCLI compiles the hyfd binary once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hyfd-test-bin")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Skipf("cannot build CLI in test environment: %v\n%s", err, out)
	}
	return bin
}

func writeCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCLI(t)
	csv := writeCSV(t, "Zip,City\n14482,Potsdam\n14482,Potsdam\n10115,Berlin\n")

	t.Run("default output", func(t *testing.T) {
		out, err := exec.Command(bin, csv).CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "[Zip] -> City") {
			t.Fatalf("missing FD in output:\n%s", out)
		}
	})

	t.Run("every algorithm agrees", func(t *testing.T) {
		var first string
		for _, alg := range []string{"HyFD", "Tane", "Fun", "FD_Mine", "Dfd", "Dep-Miner", "FastFDs", "Fdep"} {
			out, err := exec.Command(bin, "-algorithm", alg, csv).Output()
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if first == "" {
				first = string(out)
			} else if string(out) != first {
				t.Fatalf("%s output differs:\n%s\nvs\n%s", alg, out, first)
			}
		}
	})

	t.Run("json", func(t *testing.T) {
		out, err := exec.Command(bin, "-json", csv).Output()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(out), `"dependant"`) {
			t.Fatalf("not JSON:\n%s", out)
		}
	})

	t.Run("profiling flags", func(t *testing.T) {
		out, err := exec.Command(bin, "-no-fds", "-uccs", "-keys", "-bcnf", "-approx", "0.5", csv).Output()
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"unique column combinations", "candidate keys", "BCNF", "approximate FDs"} {
			if !strings.Contains(string(out), want) {
				t.Fatalf("missing %q section:\n%s", want, out)
			}
		}
	})

	t.Run("stdin and stats", func(t *testing.T) {
		cmd := exec.Command(bin, "-stats", "-")
		cmd.Stdin = strings.NewReader("A,B\n1,2\n1,2\n")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(out), "fds:") {
			t.Fatalf("stats missing:\n%s", out)
		}
	})

	t.Run("progress and stats timings", func(t *testing.T) {
		out, err := exec.Command(bin, "-progress", "-stats", "-no-fds", csv).CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"ingested", "preprocessed", "sampling round", "done:", "time:", "cmp/s"} {
			if !strings.Contains(string(out), want) {
				t.Fatalf("missing %q in progress output:\n%s", want, out)
			}
		}
	})

	t.Run("threads flag validated", func(t *testing.T) {
		out, err := exec.Command(bin, "-threads", "-1", csv).CombinedOutput()
		if err == nil {
			t.Fatalf("negative -threads accepted:\n%s", out)
		}
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
			t.Fatalf("negative -threads exit = %v, want code 2", err)
		}
		if !strings.Contains(string(out), "invalid -threads") {
			t.Fatalf("missing -threads diagnostic:\n%s", out)
		}
	})

	t.Run("threads counts agree", func(t *testing.T) {
		// 0 (all CPUs), 1 (sequential) and 8 must print the identical FD
		// listing — the CLI face of the engine's determinism contract.
		var first string
		for _, n := range []string{"1", "0", "8"} {
			out, err := exec.Command(bin, "-threads", n, csv).Output()
			if err != nil {
				t.Fatalf("-threads %s: %v", n, err)
			}
			if first == "" {
				first = string(out)
			} else if string(out) != first {
				t.Fatalf("-threads %s output differs:\n%s\nvs\n%s", n, out, first)
			}
		}
	})

	t.Run("stats json", func(t *testing.T) {
		out, err := exec.Command(bin, "-stats-json", "-", "-no-fds", csv).Output()
		if err != nil {
			t.Fatal(err)
		}
		var report struct {
			Dataset   string `json:"dataset"`
			Algorithm string `json:"algorithm"`
			FDs       int    `json:"fds"`
			Stats     struct {
				Rows    int   `json:"rows"`
				TotalNS int64 `json:"total_ns"`
			} `json:"stats"`
			Metrics *struct {
				Counters []struct {
					Name  string `json:"name"`
					Value int64  `json:"value"`
				} `json:"counters"`
			} `json:"metrics"`
		}
		if err := json.Unmarshal(out, &report); err != nil {
			t.Fatalf("bad stats JSON: %v\n%s", err, out)
		}
		if report.Algorithm != "HyFD" || report.FDs == 0 || report.Stats.Rows != 3 {
			t.Fatalf("report content wrong: %+v", report)
		}
		if report.Stats.TotalNS <= 0 {
			t.Fatalf("total_ns not populated: %+v", report)
		}
		if report.Metrics == nil || len(report.Metrics.Counters) == 0 {
			t.Fatalf("metrics snapshot missing:\n%s", out)
		}
	})

	t.Run("stats json file for baseline has total time", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "report.json")
		if out, err := exec.Command(bin, "-algorithm", "Fdep", "-stats-json", path, "-no-fds", csv).CombinedOutput(); err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var report struct {
			Stats struct {
				TotalNS int64 `json:"total_ns"`
			} `json:"stats"`
		}
		if err := json.Unmarshal(data, &report); err != nil {
			t.Fatalf("bad stats JSON: %v\n%s", err, data)
		}
		if report.Stats.TotalNS <= 0 {
			t.Fatalf("baseline total_ns not populated:\n%s", data)
		}
	})

	t.Run("metrics server", func(t *testing.T) {
		// A relation big enough that the slow O(n²) Fdep baseline keeps the
		// process alive while we scrape; HyFD itself would finish too fast.
		var b strings.Builder
		b.WriteString("A,B,C\n")
		for i := 0; i < 3000; i++ {
			b.WriteString("1,2,3\n1,2,4\n2,2,4\n")
		}
		big := writeCSV(t, b.String())
		cmd := exec.Command(bin, "-algorithm", "Fdep", "-metrics-addr", "127.0.0.1:0", "-no-fds", big)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		defer func() {
			cmd.Process.Kill()
			cmd.Wait()
		}()
		// The CLI announces the bound address before discovery starts.
		line, err := bufio.NewReader(stderr).ReadString('\n')
		if err != nil {
			t.Fatalf("no metrics announcement: %v", err)
		}
		m := regexp.MustCompile(`http://(\S+)/metrics`).FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("cannot parse metrics address from %q", line)
		}
		base := "http://" + m[1]

		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), "hyfd_up 1") {
			t.Fatalf("prometheus exposition missing hyfd_up:\n%s", body)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("content type %q", ct)
		}

		resp, err = http.Get(base + "/metrics.json")
		if err != nil {
			t.Fatal(err)
		}
		var snap struct {
			Gauges []struct {
				Name  string  `json:"name"`
				Value float64 `json:"value"`
			} `json:"gauges"`
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("metrics.json not parseable: %v", err)
		}
		found := false
		for _, g := range snap.Gauges {
			if g.Name == "hyfd_up" && g.Value == 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("hyfd_up gauge missing from JSON: %+v", snap)
		}

		resp, err = http.Get(base + "/debug/pprof/cmdline")
		if err != nil {
			t.Fatal(err)
		}
		cmdline, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(cmdline), "hyfd") {
			t.Fatalf("pprof cmdline unexpected:\n%q", cmdline)
		}
	})

	t.Run("generous timeout succeeds", func(t *testing.T) {
		out, err := exec.Command(bin, "-timeout", "1m", csv).CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "[Zip] -> City") {
			t.Fatalf("missing FD in output:\n%s", out)
		}
	})

	t.Run("expired timeout fails with deadline error", func(t *testing.T) {
		// A huge duplicated relation so the O(n²) Fdep run cannot finish
		// before the 1 ms deadline fires at the first checkpoint.
		var b strings.Builder
		b.WriteString("A,B,C\n")
		for i := 0; i < 3000; i++ {
			b.WriteString("1,2,3\n1,2,4\n2,2,4\n")
		}
		big := writeCSV(t, b.String())
		out, err := exec.Command(bin, "-algorithm", "Fdep", "-timeout", "1ms", big).CombinedOutput()
		if err == nil {
			t.Fatalf("expired timeout accepted:\n%s", out)
		}
		if !strings.Contains(string(out), "deadline exceeded") {
			t.Fatalf("missing deadline error:\n%s", out)
		}
	})

	t.Run("bad input fails", func(t *testing.T) {
		if err := exec.Command(bin, filepath.Join(t.TempDir(), "missing.csv")).Run(); err == nil {
			t.Fatal("missing file accepted")
		}
		if err := exec.Command(bin, "-algorithm", "Nope", csv).Run(); err == nil {
			t.Fatal("unknown algorithm accepted")
		}
	})
}
