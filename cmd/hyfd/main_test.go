package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles the hyfd binary once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hyfd-test-bin")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Skipf("cannot build CLI in test environment: %v\n%s", err, out)
	}
	return bin
}

func writeCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCLI(t)
	csv := writeCSV(t, "Zip,City\n14482,Potsdam\n14482,Potsdam\n10115,Berlin\n")

	t.Run("default output", func(t *testing.T) {
		out, err := exec.Command(bin, csv).CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "[Zip] -> City") {
			t.Fatalf("missing FD in output:\n%s", out)
		}
	})

	t.Run("every algorithm agrees", func(t *testing.T) {
		var first string
		for _, alg := range []string{"HyFD", "Tane", "Fun", "FD_Mine", "Dfd", "Dep-Miner", "FastFDs", "Fdep"} {
			out, err := exec.Command(bin, "-algorithm", alg, csv).Output()
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if first == "" {
				first = string(out)
			} else if string(out) != first {
				t.Fatalf("%s output differs:\n%s\nvs\n%s", alg, out, first)
			}
		}
	})

	t.Run("json", func(t *testing.T) {
		out, err := exec.Command(bin, "-json", csv).Output()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(out), `"dependant"`) {
			t.Fatalf("not JSON:\n%s", out)
		}
	})

	t.Run("profiling flags", func(t *testing.T) {
		out, err := exec.Command(bin, "-no-fds", "-uccs", "-keys", "-bcnf", "-approx", "0.5", csv).Output()
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"unique column combinations", "candidate keys", "BCNF", "approximate FDs"} {
			if !strings.Contains(string(out), want) {
				t.Fatalf("missing %q section:\n%s", want, out)
			}
		}
	})

	t.Run("stdin and stats", func(t *testing.T) {
		cmd := exec.Command(bin, "-stats", "-")
		cmd.Stdin = strings.NewReader("A,B\n1,2\n1,2\n")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(out), "fds:") {
			t.Fatalf("stats missing:\n%s", out)
		}
	})

	t.Run("progress and stats timings", func(t *testing.T) {
		out, err := exec.Command(bin, "-progress", "-stats", "-no-fds", csv).CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"preprocessed", "sampling round", "done:", "time:"} {
			if !strings.Contains(string(out), want) {
				t.Fatalf("missing %q in progress output:\n%s", want, out)
			}
		}
	})

	t.Run("generous timeout succeeds", func(t *testing.T) {
		out, err := exec.Command(bin, "-timeout", "1m", csv).CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "[Zip] -> City") {
			t.Fatalf("missing FD in output:\n%s", out)
		}
	})

	t.Run("expired timeout fails with deadline error", func(t *testing.T) {
		// A huge duplicated relation so the O(n²) Fdep run cannot finish
		// before the 1 ms deadline fires at the first checkpoint.
		var b strings.Builder
		b.WriteString("A,B,C\n")
		for i := 0; i < 3000; i++ {
			b.WriteString("1,2,3\n1,2,4\n2,2,4\n")
		}
		big := writeCSV(t, b.String())
		out, err := exec.Command(bin, "-algorithm", "Fdep", "-timeout", "1ms", big).CombinedOutput()
		if err == nil {
			t.Fatalf("expired timeout accepted:\n%s", out)
		}
		if !strings.Contains(string(out), "deadline exceeded") {
			t.Fatalf("missing deadline error:\n%s", out)
		}
	})

	t.Run("bad input fails", func(t *testing.T) {
		if err := exec.Command(bin, filepath.Join(t.TempDir(), "missing.csv")).Run(); err == nil {
			t.Fatal("missing file accepted")
		}
		if err := exec.Command(bin, "-algorithm", "Nope", csv).Run(); err == nil {
			t.Fatal("unknown algorithm accepted")
		}
	})
}
