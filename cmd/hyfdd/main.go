// Command hyfdd is the profiling server: a long-running daemon that keeps
// datasets prepared in memory and serves FD/AFD/UCC discovery jobs over a
// versioned HTTP API. Datasets are registered once (POST /v1/datasets) —
// preprocessing is paid at registration — and any number of concurrent jobs
// (POST /v1/jobs) then run warm against the shared immutable Dataset.
//
// Usage:
//
//	hyfdd [flags]
//
// Examples:
//
//	hyfdd -addr :8080 -workers 4 -queue 64
//	hyfdd -addr 127.0.0.1:0 -addr-file /tmp/hyfdd.addr -data-dir ./testdata
//
//	curl -s localhost:8080/v1/datasets -d '{"name":"t","csv":"a,b\n1,2\n"}'
//	curl -s localhost:8080/v1/jobs -d '{"dataset":"t","mode":"fd"}'
//	curl -s localhost:8080/v1/jobs/j-1
//	curl -s localhost:8080/v1/jobs/j-1/trace?format=chrome > job.trace.json
//
// Every job records a flight-recorder span timeline (admission, queue wait,
// the engine's sampling/validation phases, result encoding), served as JSON
// on /v1/jobs/{id}/trace and, with ?format=chrome, in Chrome trace-event
// format that loads directly in Perfetto. The daemon further exposes
// /metrics (Prometheus text), /metrics.json, /healthz (liveness), /readyz
// (readiness: 503 once shutdown begins), /debug/slowjobs (the K slowest
// recent jobs) and /debug/pprof on the same address. On SIGINT/SIGTERM it
// stops admission, drains in-flight jobs for the -grace window, cancels the
// rest, optionally flushes a final metrics snapshot (-final-metrics), and
// exits 0. Logs are structured (log/slog) with job and request ids; see
// -log-level and -log-format.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hyfd"
	"hyfd/internal/logging"
	"hyfd/internal/server"
)

func main() {
	os.Exit(run())
}

// run is main's body with a proper exit code, so deferred cleanups execute.
func run() int {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		workers      = flag.Int("workers", 0, "concurrent jobs: 0 = one per CPU")
		queue        = flag.Int("queue", 64, "run-queue depth; beyond it admission answers 429")
		grace        = flag.Duration("grace", 15*time.Second, "shutdown grace period for draining in-flight jobs")
		deadline     = flag.Duration("default-deadline", 0, "default per-job deadline when the request has no deadline_ms (0 = unbounded)")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 rejections")
		dataDir      = flag.String("data-dir", "", "confine path-based dataset registration to this directory ('' = allow any path)")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file once listening (for harnesses)")
		finalMetrics = flag.String("final-metrics", "", "write a final JSON metrics snapshot to this file on shutdown (- for stdout)")
		traceCap     = flag.Int("trace-capacity", 0, "per-job flight-recorder span capacity: 0 = default 256, negative disables /v1/jobs/{id}/trace")
		slowJobs     = flag.Int("slow-jobs", 0, "slowest-jobs ring size behind /debug/slowjobs: 0 = default 16, negative disables")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat    = flag.String("log-format", "text", "log format: text, json")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: hyfdd [flags]")
		flag.PrintDefaults()
		return 2
	}
	logger, err := logging.New(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyfdd:", err)
		return 2
	}

	// The base context bounds every job; canceling it is the hard stop
	// behind the graceful drain.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	reg := hyfd.NewMetricsRegistry()
	srv := server.New(ctx, server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultDeadline: *deadline,
		RetryAfter:      *retryAfter,
		DataDir:         *dataDir,
		Metrics:         reg,
		TraceCapacity:   *traceCap,
		SlowJobs:        *slowJobs,
		Logger:          logger,
	})
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "error", err)
		return 1
	}
	logger.Info("serving", "url", "http://"+ln.Addr().String(),
		"workers", *workers, "queue", *queue)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			logger.Error("writing addr file", "path", *addrFile, "error", err)
			return 1
		}
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Info("signal received, draining", "signal", s.String(), "grace", grace.String())
	case err := <-serveErr:
		logger.Error("serve failed", "error", err)
		return 1
	}

	// Shutdown sequence: stop admission first so /readyz flips and new
	// work is refused, then close the HTTP listener (in-flight responses
	// drain), then drain the job pool under the same grace deadline.
	srv.BeginShutdown()
	graceCtx, cancelGrace := context.WithTimeout(context.Background(), *grace)
	defer cancelGrace()
	if err := httpSrv.Shutdown(graceCtx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	if err := srv.Shutdown(graceCtx); err != nil {
		logger.Warn("grace deadline hit — canceled remaining jobs", "error", err)
	}

	if *finalMetrics != "" {
		if err := writeSnapshot(*finalMetrics, reg); err != nil {
			logger.Error("writing final metrics snapshot", "error", err)
			return 1
		}
	}
	logger.Info("shutdown complete")
	return 0
}

// writeSnapshot flushes the registry's final state as one JSON document.
func writeSnapshot(path string, reg *hyfd.MetricsRegistry) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	snap := reg.Snapshot()
	return enc.Encode(snap)
}
