package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildBinary compiles one of the repo's commands into dir.
func buildBinary(t *testing.T, dir, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Skipf("cannot build %s in test environment: %v\n%s", pkg, err, out)
	}
	return bin
}

const smokeCSV = "Zip,City,State\n14482,Potsdam,BB\n14469,Potsdam,BB\n10115,Berlin,BE\n10117,Berlin,BE\n99084,Erfurt,TH\n"

// postJSON posts a JSON body and returns status + response bytes.
func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// getBody GETs a URL and returns status + body.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// jobView mirrors the wire job document (only the fields the smoke asserts).
type jobView struct {
	ID             string `json:"id"`
	Status         string `json:"status"`
	Error          string `json:"error"`
	DatasetVersion int    `json:"dataset_version"`
	Result *struct {
		FDs    []string `json:"fds"`
		AFDs   []string `json:"afds"`
		UCCs   []string `json:"uccs"`
		Ranked []struct {
			FD    string  `json:"fd"`
			Score float64 `json:"score"`
			Rank  int     `json:"rank"`
		} `json:"ranked"`
		Partial bool `json:"partial"`
		Count   int  `json:"count"`
		Stats   *struct {
			Warm            bool  `json:"warm,omitempty"`
			PreprocessingNs int64 `json:"preprocessing_ns"`
		} `json:"stats"`
	} `json:"result"`
}

// runJob submits one job and polls it to a terminal state.
func runJob(t *testing.T, base, body string) jobView {
	t.Helper()
	code, data := postJSON(t, base+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit %s: status %d: %s", body, code, data)
	}
	var view jobView
	if err := json.Unmarshal(data, &view); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, data := getBody(t, base+"/v1/jobs/"+view.ID)
		if code != http.StatusOK {
			t.Fatalf("poll: status %d: %s", code, data)
		}
		if err := json.Unmarshal(data, &view); err != nil {
			t.Fatal(err)
		}
		switch view.Status {
		case "done", "failed", "canceled":
			return view
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", view.ID)
	return jobView{}
}

// TestServeSmoke is the end-to-end daemon exercise behind `make serve-smoke`:
// build hyfdd, start it on an ephemeral port, register a CSV from the data
// directory, run one job per mode, compare the warm FD result byte-for-byte
// against a cold cmd/hyfd run on the same file, scrape the metrics surfaces,
// and assert a clean SIGTERM shutdown with a final metrics snapshot.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	daemon := buildBinary(t, dir, ".", "hyfdd-test-bin")
	cli := buildBinary(t, dir, "hyfd/cmd/hyfd", "hyfd-test-bin")

	dataDir := filepath.Join(dir, "data")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dataDir, "zips.csv")
	if err := os.WriteFile(csvPath, []byte(smokeCSV), 0o644); err != nil {
		t.Fatal(err)
	}

	addrFile := filepath.Join(dir, "addr")
	metricsFile := filepath.Join(dir, "final-metrics.json")
	cmd := exec.Command(daemon,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-data-dir", dataDir,
		"-workers", "2",
		"-queue", "8",
		"-grace", "10s",
		"-final-metrics", metricsFile,
	)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var exitErr error
	exited := make(chan struct{}) // closed when the daemon exits; exitErr is set before the close
	go func() { exitErr = cmd.Wait(); close(exited) }()
	defer func() {
		select {
		case <-exited:
		default:
			_ = cmd.Process.Kill()
			<-exited
		}
	}()

	// Wait for the daemon to announce its bound address.
	var base string
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		if addr, err := os.ReadFile(addrFile); err == nil && len(addr) > 0 {
			base = "http://" + string(addr)
			break
		}
		select {
		case <-exited:
			t.Fatalf("daemon exited during startup: %v\n%s", exitErr, stderr.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	if base == "" {
		t.Fatalf("daemon never wrote %s\n%s", addrFile, stderr.String())
	}

	// Register the CSV by path (confined to -data-dir).
	code, data := postJSON(t, base+"/v1/datasets", `{"name":"zips","path":"zips.csv"}`)
	if code != http.StatusCreated {
		t.Fatalf("register: status %d: %s", code, data)
	}

	// One job per mode, all warm.
	fdJob := runJob(t, base, `{"dataset":"zips","mode":"fd","threads":1}`)
	if fdJob.Status != "done" || len(fdJob.Result.FDs) == 0 {
		t.Fatalf("fd job: %+v (%s)", fdJob, fdJob.Error)
	}
	if fdJob.Result.Stats == nil || !fdJob.Result.Stats.Warm || fdJob.Result.Stats.PreprocessingNs > int64(time.Millisecond) {
		t.Fatalf("fd job must run warm with near-zero prepare time: %+v", fdJob.Result.Stats)
	}
	afdJob := runJob(t, base, `{"dataset":"zips","mode":"afd","max_error":0.3}`)
	if afdJob.Status != "done" || len(afdJob.Result.AFDs) == 0 {
		t.Fatalf("afd job: %+v (%s)", afdJob, afdJob.Error)
	}
	uccJob := runJob(t, base, `{"dataset":"zips","mode":"ucc"}`)
	if uccJob.Status != "done" || len(uccJob.Result.UCCs) == 0 {
		t.Fatalf("ucc job: %+v (%s)", uccJob, uccJob.Error)
	}
	rankedJob := runJob(t, base, `{"dataset":"zips","mode":"ranked","top_k":2,"threads":1}`)
	if rankedJob.Status != "done" || len(rankedJob.Result.Ranked) != 2 || rankedJob.Result.Partial {
		t.Fatalf("ranked job: %+v (%s)", rankedJob, rankedJob.Error)
	}
	for i, r := range rankedJob.Result.Ranked {
		if r.Rank != i+1 || r.FD == "" {
			t.Fatalf("ranked job item %d malformed: %+v", i, r)
		}
		if i > 0 && r.Score > rankedJob.Result.Ranked[i-1].Score {
			t.Fatalf("ranked job scores not monotone: %+v", rankedJob.Result.Ranked)
		}
	}

	// Acceptance bar: the warm serving result is byte-identical to a cold
	// cmd/hyfd run on the same input at the same thread count.
	out, err := exec.Command(cli, "-threads", "1", csvPath).Output()
	if err != nil {
		t.Fatalf("cold CLI run: %v", err)
	}
	cold := strings.TrimRight(string(out), "\n")
	warm := strings.Join(fdJob.Result.FDs, "\n")
	if warm != cold {
		t.Fatalf("warm serving FDs diverge from cold CLI run\nwarm:\n%s\ncold:\n%s", warm, cold)
	}

	// Streaming ingest: a delta advances the dataset to a new snapshot
	// version, the next job pins that version, and its warm result is
	// byte-identical to a cold CLI run over the delta'd content. The
	// inserted row breaks City→State, so the v2 result provably reflects
	// the new rows.
	if fdJob.DatasetVersion != 1 {
		t.Fatalf("pre-delta job pinned to version %d, want 1", fdJob.DatasetVersion)
	}
	code, data = postJSON(t, base+"/v1/datasets/zips/delta", `{"inserts":[["10999","Berlin","XX"]]}`)
	if code != http.StatusOK {
		t.Fatalf("delta: status %d: %s", code, data)
	}
	var deltaResp struct {
		Dataset struct {
			Version int `json:"version"`
			Rows    int `json:"rows"`
		} `json:"dataset"`
		Inserts int `json:"inserts"`
	}
	if err := json.Unmarshal(data, &deltaResp); err != nil {
		t.Fatal(err)
	}
	if deltaResp.Dataset.Version != 2 || deltaResp.Dataset.Rows != 6 || deltaResp.Inserts != 1 {
		t.Fatalf("delta response: %+v, want version 2, 6 rows, 1 insert", deltaResp)
	}
	fdJob2 := runJob(t, base, `{"dataset":"zips","mode":"fd","threads":1}`)
	if fdJob2.Status != "done" || fdJob2.DatasetVersion != 2 {
		t.Fatalf("post-delta fd job: status %q version %d (%s), want done on version 2",
			fdJob2.Status, fdJob2.DatasetVersion, fdJob2.Error)
	}
	csv2 := filepath.Join(dataDir, "zips2.csv")
	if err := os.WriteFile(csv2, []byte(smokeCSV+"10999,Berlin,XX\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out2, err := exec.Command(cli, "-threads", "1", csv2).Output()
	if err != nil {
		t.Fatalf("cold CLI run on delta'd content: %v", err)
	}
	cold2 := strings.TrimRight(string(out2), "\n")
	warm2 := strings.Join(fdJob2.Result.FDs, "\n")
	if warm2 != cold2 {
		t.Fatalf("post-delta warm FDs diverge from cold run over the delta'd content\nwarm:\n%s\ncold:\n%s", warm2, cold2)
	}
	if warm2 == warm {
		t.Fatal("post-delta FD set did not change even though the insert breaks City->State")
	}

	// The finished job's flight recorder holds the full server-stage
	// timeline, and the Chrome rendering is a loadable trace-event document.
	code, data = getBody(t, base+"/v1/jobs/"+fdJob.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("job trace: %d %s", code, data)
	}
	var traceDoc struct {
		Spans []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(data, &traceDoc); err != nil {
		t.Fatalf("job trace not JSON: %v\n%s", err, data)
	}
	spanNames := map[string]bool{}
	for _, sp := range traceDoc.Spans {
		spanNames[sp.Name] = true
	}
	for _, want := range []string{"job", "admission", "queue.wait", "run", "encode"} {
		if !spanNames[want] {
			t.Fatalf("job trace missing %q span: %s", want, data)
		}
	}
	code, data = getBody(t, base+"/v1/jobs/"+fdJob.ID+"/trace?format=chrome")
	if code != http.StatusOK || !json.Valid(data) || !strings.Contains(string(data), `"traceEvents"`) {
		t.Fatalf("chrome trace: %d\n%.400s", code, data)
	}

	// Observability surfaces on the same mux.
	code, data = getBody(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(data), "hyfdd_up 1") {
		t.Fatalf("metrics: %d\n%.400s", code, data)
	}
	if !strings.Contains(string(data), `hyfdd_jobs_total{status="done"} 5`) {
		t.Fatalf("metrics missing done-job counter:\n%.1500s", data)
	}
	if !strings.Contains(string(data), "hyfdd_dataset_deltas_total 1") {
		t.Fatalf("metrics missing dataset-delta counter:\n%.1500s", data)
	}
	if !strings.Contains(string(data), "hyfd_ranked_emitted_total 2") {
		t.Fatalf("metrics missing ranked-emitted counter:\n%.1500s", data)
	}
	code, data = getBody(t, base+"/metrics.json")
	if code != http.StatusOK || !json.Valid(data) {
		t.Fatalf("metrics.json: %d", code)
	}
	if code, _ := getBody(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if code, _ := getBody(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz: %d", code)
	}
	code, data = getBody(t, base+"/debug/slowjobs")
	if code != http.StatusOK || !strings.Contains(string(data), `"zips"`) {
		t.Fatalf("slowjobs: %d\n%.400s", code, data)
	}

	// Clean shutdown: SIGTERM drains and exits 0 with a final snapshot.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-exited:
		if exitErr != nil {
			t.Fatalf("daemon exit: %v\n%s", exitErr, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "shutdown complete") {
		t.Fatalf("missing shutdown message:\n%s", stderr.String())
	}
	snap, err := os.ReadFile(metricsFile)
	if err != nil {
		t.Fatalf("final metrics snapshot: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(snap, &doc); err != nil {
		t.Fatalf("final metrics snapshot not JSON: %v", err)
	}
	if _, ok := doc["counters"]; !ok {
		t.Fatalf("final snapshot missing counters: %.300s", snap)
	}
}

// TestUsageErrors: positional arguments are a usage error (exit 2).
func TestUsageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildBinary(t, t.TempDir(), ".", "hyfdd-test-bin")
	err := exec.Command(bin, "unexpected-arg").Run()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
		t.Fatalf("want exit 2, got %v", err)
	}
}
