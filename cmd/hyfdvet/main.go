// Command hyfdvet is hyfd's project-specific static-analysis driver: a
// stdlib-only companion to `go vet` that loads the module, type-checks every
// non-test package, and enforces the engine's determinism, context-flow,
// hook-safety, goroutine-hygiene, and bitset-aliasing contracts (see
// internal/analysis and DESIGN.md §2d).
//
// Usage:
//
//	hyfdvet [-list] [-rules rule1,rule2] [dir | ./...]
//
// The argument names a directory inside the module to analyze from (the
// whole module is always analyzed; `./...` is accepted for familiarity and
// means the current directory's module). Findings print one per line as
//
//	file:line: rule: message
//
// and their presence makes the process exit 1; load or usage errors exit 2.
// Individual findings are suppressed in source with an
// `//hyfdvet:allow <rule> — <justification>` comment on the offending line
// or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hyfd/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("hyfdvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the available analyzers and exit")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: hyfdvet [-list] [-rules rule1,rule2] [dir | ./...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := analysis.Analyzers()
	if *list {
		for _, az := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", az.Name, az.Doc)
		}
		return 0
	}
	if *rules != "" {
		analyzers = selectRules(analyzers, *rules)
		if analyzers == nil {
			fmt.Fprintf(stderr, "hyfdvet: unknown rule in -rules=%s\n", *rules)
			return 2
		}
	}
	dir := "."
	if fs.NArg() > 1 {
		fs.Usage()
		return 2
	}
	if fs.NArg() == 1 {
		// `hyfdvet ./...` style patterns reduce to their directory: the
		// loader always analyzes the whole module containing it.
		dir = strings.TrimSuffix(fs.Arg(0), "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	}
	prog, err := analysis.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(stderr, "hyfdvet: %v\n", err)
		return 2
	}
	findings := analysis.Run(prog, analyzers)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "hyfdvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// selectRules filters the analyzer set down to the named rules; it returns
// nil if any name is unknown.
func selectRules(all []*analysis.Analyzer, spec string) []*analysis.Analyzer {
	byName := map[string]*analysis.Analyzer{}
	for _, az := range all {
		byName[az.Name] = az
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(spec, ",") {
		az := byName[strings.TrimSpace(name)]
		if az == nil {
			return nil
		}
		out = append(out, az)
	}
	return out
}
