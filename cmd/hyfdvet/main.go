// Command hyfdvet is hyfd's project-specific static-analysis driver: a
// stdlib-only companion to `go vet` that loads the module, type-checks every
// non-test package, and enforces the engine's determinism, context-flow,
// hook-safety, goroutine-hygiene, and bitset-aliasing contracts plus the
// interprocedural serving-path tier — lock discipline, goroutine-leak, and
// status-map exhaustiveness (see internal/analysis and DESIGN.md §2d, §2i).
//
// Usage:
//
//	hyfdvet [-list] [-rules rule1,rule2] [-json] [-strict-allows] [dir | ./...]
//
// The argument names a directory inside the module to analyze from (the
// whole module is always analyzed; `./...` is accepted for familiarity and
// means the current directory's module). Findings print one per line as
//
//	file:line: rule: message
//
// or, under -json, as one JSON document with module-relative file paths and
// per-finding severity levels — byte-stable across runs, for CI annotation
// and artifact upload. -strict-allows additionally reports every
// //hyfdvet:allow comment that suppresses nothing (a stale suppression), as
// a warning-severity finding under the stale-allow pseudo-rule.
//
// Findings make the process exit 1; load or usage errors exit 2.
// Individual findings are suppressed in source with an
// `//hyfdvet:allow <rule> — <justification>` comment on the offending line
// or the line above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hyfd/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("hyfdvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the available analyzers and exit")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as one JSON document (module-relative paths, stable order)")
	strictAllows := fs.Bool("strict-allows", false, "report //hyfdvet:allow comments that suppress nothing (stale suppressions)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: hyfdvet [-list] [-rules rule1,rule2] [-json] [-strict-allows] [dir | ./...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := analysis.Analyzers()
	if *list {
		for _, az := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", az.Name, az.Doc)
		}
		return 0
	}
	if *rules != "" {
		selected, unknown, ok := selectRules(analyzers, *rules)
		if !ok {
			fmt.Fprintf(stderr, "hyfdvet: unknown rule %q in -rules; valid rules: %s\n",
				unknown, strings.Join(ruleNames(analyzers), ", "))
			return 2
		}
		analyzers = selected
	}
	dir := "."
	if fs.NArg() > 1 {
		fs.Usage()
		return 2
	}
	if fs.NArg() == 1 {
		// `hyfdvet ./...` style patterns reduce to their directory: the
		// loader always analyzes the whole module containing it.
		dir = strings.TrimSuffix(fs.Arg(0), "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	}
	prog, err := analysis.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(stderr, "hyfdvet: %v\n", err)
		return 2
	}
	findings := analysis.RunWith(prog, analyzers, analysis.Options{StrictAllows: *strictAllows})
	if *jsonOut {
		if err := writeJSON(stdout, prog, findings); err != nil {
			fmt.Fprintf(stderr, "hyfdvet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "hyfdvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// jsonFinding is the wire form of one finding in -json mode. File is
// module-relative with forward slashes, so the document is stable across
// checkouts and operating systems.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Module   string        `json:"module"`
	Findings []jsonFinding `json:"findings"`
}

// writeJSON renders the findings as one indented JSON document. Findings
// arrive sorted from the analysis run, so equal inputs produce identical
// bytes.
func writeJSON(out *os.File, prog *analysis.Program, findings []analysis.Finding) error {
	report := jsonReport{Module: prog.ModulePath, Findings: []jsonFinding{}}
	for _, f := range findings {
		file := f.Pos.Filename
		if rel, err := filepath.Rel(prog.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		report.Findings = append(report.Findings, jsonFinding{
			File:     file,
			Line:     f.Pos.Line,
			Rule:     f.Rule,
			Severity: f.Severity,
			Message:  f.Msg,
		})
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "%s\n", data)
	return err
}

// selectRules filters the analyzer set down to the named rules; on failure
// ok is false and unknown holds the first unrecognized name.
func selectRules(all []*analysis.Analyzer, spec string) (selected []*analysis.Analyzer, unknown string, ok bool) {
	byName := map[string]*analysis.Analyzer{}
	for _, az := range all {
		byName[az.Name] = az
	}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		az := byName[name]
		if az == nil {
			return nil, name, false
		}
		selected = append(selected, az)
	}
	return selected, "", true
}

// ruleNames lists the analyzer names in suite order.
func ruleNames(all []*analysis.Analyzer) []string {
	names := make([]string, len(all))
	for i, az := range all {
		names[i] = az.Name
	}
	return names
}
