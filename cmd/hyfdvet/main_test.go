package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCapture invokes run with file-backed stdout/stderr and returns the exit
// code and both streams.
func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	dir := t.TempDir()
	outF, err := os.Create(filepath.Join(dir, "stdout"))
	if err != nil {
		t.Fatal(err)
	}
	defer outF.Close()
	errF, err := os.Create(filepath.Join(dir, "stderr"))
	if err != nil {
		t.Fatal(err)
	}
	defer errF.Close()
	code = run(args, outF, errF)
	out, err := os.ReadFile(outF.Name())
	if err != nil {
		t.Fatal(err)
	}
	errOut, err := os.ReadFile(errF.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(out), string(errOut)
}

// corpusArg points run at the analyzer test corpus, a self-contained module.
const corpusArg = "../../internal/analysis/testdata/src"

func TestListAnalyzers(t *testing.T) {
	code, out, _ := runCapture(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, rule := range []string{"determinism", "ctxflow", "hooksafe", "goroutine", "bitsetalias"} {
		if !strings.Contains(out, rule) {
			t.Errorf("-list output missing %q:\n%s", rule, out)
		}
	}
}

// TestRepoIsClean is the self-application gate: hyfdvet over its own module
// must exit 0 with no findings. Every genuine exception in the tree carries
// an audited //hyfdvet:allow comment.
func TestRepoIsClean(t *testing.T) {
	code, out, errOut := runCapture(t, "../../...")
	if code != 0 {
		t.Fatalf("hyfdvet on the repo exited %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if out != "" {
		t.Errorf("expected no findings, got:\n%s", out)
	}
}

// TestCorpusFails pins the non-zero exit on a module with violations and
// that every rule of the suite fires at least once there.
func TestCorpusFails(t *testing.T) {
	code, out, errOut := runCapture(t, corpusArg)
	if code != 1 {
		t.Fatalf("hyfdvet on the corpus exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	for _, rule := range []string{"determinism:", "ctxflow:", "hooksafe:", "goroutine:", "bitsetalias:"} {
		if !strings.Contains(out, rule) {
			t.Errorf("corpus findings missing rule %q:\n%s", rule, out)
		}
	}
	if !strings.Contains(errOut, "finding(s)") {
		t.Errorf("stderr missing findings summary: %q", errOut)
	}
}

// TestRulesFilter restricts the run to one analyzer.
func TestRulesFilter(t *testing.T) {
	code, out, _ := runCapture(t, "-rules", "bitsetalias", corpusArg)
	if code != 1 {
		t.Fatalf("filtered run exited %d, want 1", code)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.Contains(line, "bitsetalias:") {
			t.Errorf("non-bitsetalias finding under -rules=bitsetalias: %s", line)
		}
	}
}

func TestUnknownRule(t *testing.T) {
	code, _, errOut := runCapture(t, "-rules", "nosuchrule", corpusArg)
	if code != 2 {
		t.Fatalf("unknown rule exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown rule") {
		t.Errorf("stderr missing unknown-rule report: %q", errOut)
	}
}
