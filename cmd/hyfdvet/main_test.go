package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCapture invokes run with file-backed stdout/stderr and returns the exit
// code and both streams.
func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	dir := t.TempDir()
	outF, err := os.Create(filepath.Join(dir, "stdout"))
	if err != nil {
		t.Fatal(err)
	}
	defer outF.Close()
	errF, err := os.Create(filepath.Join(dir, "stderr"))
	if err != nil {
		t.Fatal(err)
	}
	defer errF.Close()
	code = run(args, outF, errF)
	out, err := os.ReadFile(outF.Name())
	if err != nil {
		t.Fatal(err)
	}
	errOut, err := os.ReadFile(errF.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(out), string(errOut)
}

// corpusArg points run at the analyzer test corpus, a self-contained module.
const corpusArg = "../../internal/analysis/testdata/src"

func TestListAnalyzers(t *testing.T) {
	code, out, _ := runCapture(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, rule := range []string{"determinism", "ctxflow", "hooksafe", "goroutine", "bitsetalias",
		"lockcheck", "leakcheck", "statusmap"} {
		if !strings.Contains(out, rule) {
			t.Errorf("-list output missing %q:\n%s", rule, out)
		}
	}
}

// TestRepoIsClean is the self-application gate: hyfdvet over its own module
// must exit 0 with no findings. Every genuine exception in the tree carries
// an audited //hyfdvet:allow comment.
func TestRepoIsClean(t *testing.T) {
	code, out, errOut := runCapture(t, "../../...")
	if code != 0 {
		t.Fatalf("hyfdvet on the repo exited %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if out != "" {
		t.Errorf("expected no findings, got:\n%s", out)
	}
}

// TestCorpusFails pins the non-zero exit on a module with violations and
// that every rule of the suite fires at least once there.
func TestCorpusFails(t *testing.T) {
	code, out, errOut := runCapture(t, corpusArg)
	if code != 1 {
		t.Fatalf("hyfdvet on the corpus exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	for _, rule := range []string{"determinism:", "ctxflow:", "hooksafe:", "goroutine:", "bitsetalias:",
		"lockcheck:", "leakcheck:", "statusmap:"} {
		if !strings.Contains(out, rule) {
			t.Errorf("corpus findings missing rule %q:\n%s", rule, out)
		}
	}
	if !strings.Contains(errOut, "finding(s)") {
		t.Errorf("stderr missing findings summary: %q", errOut)
	}
}

// TestRulesFilter restricts the run to one analyzer.
func TestRulesFilter(t *testing.T) {
	code, out, _ := runCapture(t, "-rules", "bitsetalias", corpusArg)
	if code != 1 {
		t.Fatalf("filtered run exited %d, want 1", code)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.Contains(line, "bitsetalias:") {
			t.Errorf("non-bitsetalias finding under -rules=bitsetalias: %s", line)
		}
	}
}

func TestUnknownRule(t *testing.T) {
	code, _, errOut := runCapture(t, "-rules", "nosuchrule", corpusArg)
	if code != 2 {
		t.Fatalf("unknown rule exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown rule") {
		t.Errorf("stderr missing unknown-rule report: %q", errOut)
	}
}

// TestUnknownRuleListsValid pins the improved error: the message names the
// bad rule and enumerates the valid ones.
func TestUnknownRuleListsValid(t *testing.T) {
	code, _, errOut := runCapture(t, "-rules", "determinism,lokcheck", corpusArg)
	if code != 2 {
		t.Fatalf("unknown rule exited %d, want 2", code)
	}
	if !strings.Contains(errOut, `unknown rule "lokcheck"`) {
		t.Errorf("stderr does not name the bad rule: %q", errOut)
	}
	for _, rule := range []string{"determinism", "lockcheck", "leakcheck", "statusmap"} {
		if !strings.Contains(errOut, rule) {
			t.Errorf("stderr's valid-rule list missing %q: %q", rule, errOut)
		}
	}
}

// TestJSONOutput pins the -json contract: a single document with
// module-relative slash paths and severity levels, sorted by position, and
// byte-stable across runs.
func TestJSONOutput(t *testing.T) {
	code, out, _ := runCapture(t, "-json", corpusArg)
	if code != 1 {
		t.Fatalf("-json corpus run exited %d, want 1", code)
	}
	var report struct {
		Module   string `json:"module"`
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Rule     string `json:"rule"`
			Severity string `json:"severity"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if report.Module != "hyfd" {
		t.Errorf("module = %q, want hyfd", report.Module)
	}
	if len(report.Findings) == 0 {
		t.Fatal("-json corpus run reported no findings")
	}
	for i, f := range report.Findings {
		if strings.Contains(f.File, "\\") || filepath.IsAbs(f.File) {
			t.Errorf("finding %d file %q is not a module-relative slash path", i, f.File)
		}
		if f.Severity != "error" && f.Severity != "warning" {
			t.Errorf("finding %d has severity %q", i, f.Severity)
		}
		if f.Rule == "" || f.Line <= 0 || f.Message == "" {
			t.Errorf("finding %d is incomplete: %+v", i, f)
		}
		if i > 0 {
			prev := report.Findings[i-1]
			if prev.File > f.File || (prev.File == f.File && prev.Line > f.Line) {
				t.Errorf("findings not sorted: %s:%d after %s:%d", f.File, f.Line, prev.File, prev.Line)
			}
		}
	}
	_, again, _ := runCapture(t, "-json", corpusArg)
	if out != again {
		t.Error("-json output differs between two identical runs")
	}
}

// TestStrictAllowsCLI pins the stale-suppression sweep end to end: the
// deliberately stale allow in the locks fixture surfaces as a
// warning-severity stale-allow finding.
func TestStrictAllowsCLI(t *testing.T) {
	code, out, _ := runCapture(t, "-strict-allows", corpusArg)
	if code != 1 {
		t.Fatalf("-strict-allows corpus run exited %d, want 1", code)
	}
	if !strings.Contains(out, "stale-allow: //hyfdvet:allow lockcheck suppresses nothing") {
		t.Errorf("-strict-allows output missing the stale locks suppression:\n%s", out)
	}
}

// TestRepoStrictClean upgrades the self-application gate: even under
// -strict-allows the repo must be clean — every in-tree suppression absorbs
// a real finding.
func TestRepoStrictClean(t *testing.T) {
	code, out, errOut := runCapture(t, "-strict-allows", "../../...")
	if code != 0 {
		t.Fatalf("strict hyfdvet on the repo exited %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
}
