package hyfd_test

import (
	"context"
	"errors"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"hyfd"
)

// syntheticRelation builds a random relation large enough that a full
// discovery run takes far longer than the cancellation bounds below.
func syntheticRelation(rows, cols, domain int, seed int64) *hyfd.Relation {
	r := rand.New(rand.NewSource(seed))
	names := make([]string, cols)
	for i := range names {
		names[i] = "c" + strconv.Itoa(i)
	}
	rel := hyfd.NewRelation("synthetic", names)
	for i := 0; i < rows; i++ {
		row := make([]string, cols)
		for j := range row {
			row[j] = strconv.Itoa(r.Intn(domain))
		}
		rel.AppendRow(row)
	}
	return rel
}

// TestDeadlineAbortsMidRun: an already-tight deadline must abort HyFD and
// the baselines mid-run, returning an error wrapping ctx.Err() in bounded
// time — the engine's checkpoints sit a few thousand operations apart, so
// the return is near-immediate even though the full run takes seconds.
func TestDeadlineAbortsMidRun(t *testing.T) {
	rel := syntheticRelation(2000, 10, 4, 11)
	for _, name := range []string{hyfd.AlgorithmHyFD, hyfd.AlgorithmFdep, hyfd.AlgorithmTane, hyfd.AlgorithmDfd} {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		start := time.Now()
		_, err := hyfd.DiscoverWithContext(ctx, name, rel, hyfd.Options{Threads: 4})
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: err = %v, want context.DeadlineExceeded", name, err)
		}
		if elapsed > 2*time.Second {
			t.Fatalf("%s: canceled run took %s to return", name, elapsed)
		}
	}
}

// TestCancelMidRun: canceling from another goroutine while HyFD's parallel
// validation is running aborts the run promptly with context.Canceled.
func TestCancelMidRun(t *testing.T) {
	rel := syntheticRelation(4000, 12, 4, 12)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := hyfd.DiscoverContext(ctx, rel, hyfd.Options{Threads: 4})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("canceled run took %s to return", elapsed)
	}
}

// TestObserverEventSequence: a run reports preprocessing first, sampling
// before validation, and completion last, and the same event stream feeds
// the per-phase Stats timings.
func TestObserverEventSequence(t *testing.T) {
	rel := syntheticRelation(300, 6, 3, 13)
	var events []hyfd.Event
	res, err := hyfd.DiscoverContext(context.Background(), rel, hyfd.Options{
		Observer: hyfd.ObserverFunc(func(e hyfd.Event) { events = append(events, e) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("only %d events observed", len(events))
	}
	// Preprocessing reports one PLIBuilt per attribute, in attribute
	// order, then PreprocessingDone — all before any sampling round.
	for a := 0; a < rel.NumCols(); a++ {
		built, ok := events[a].(hyfd.PLIBuilt)
		if !ok {
			t.Fatalf("event %d = %T, want PLIBuilt", a, events[a])
		}
		if built.Attr != a {
			t.Fatalf("event %d reports attribute %d, want %d", a, built.Attr, a)
		}
	}
	if _, ok := events[rel.NumCols()].(hyfd.PreprocessingDone); !ok {
		t.Fatalf("event %d = %T, want PreprocessingDone", rel.NumCols(), events[rel.NumCols()])
	}
	done, ok := events[len(events)-1].(hyfd.Done)
	if !ok {
		t.Fatalf("last event = %T, want Done", events[len(events)-1])
	}
	if done.FDs != len(res.FDs) {
		t.Fatalf("Done.FDs = %d, result has %d", done.FDs, len(res.FDs))
	}
	firstSampling, firstValidation := -1, -1
	for i, e := range events {
		switch e.(type) {
		case hyfd.SamplingRound:
			if firstSampling < 0 {
				firstSampling = i
			}
		case hyfd.ValidationLevel:
			if firstValidation < 0 {
				firstValidation = i
			}
		}
	}
	if firstSampling < 0 || firstValidation < 0 {
		t.Fatalf("missing phases: sampling at %d, validation at %d", firstSampling, firstValidation)
	}
	if firstSampling > firstValidation {
		t.Fatalf("validation (%d) observed before sampling (%d)", firstValidation, firstSampling)
	}
	s := res.Stats
	if s.TotalTime <= 0 || s.TotalTime < s.PreprocessingTime {
		t.Fatalf("timings inconsistent: %+v", s)
	}
	if s.SamplingTime <= 0 && s.ValidationTime <= 0 {
		t.Fatalf("no phase time recorded: %+v", s)
	}
}

// TestErrUnknownAlgorithmSentinel: the typed sentinel must be detectable
// with errors.Is while the message keeps the available names.
func TestErrUnknownAlgorithmSentinel(t *testing.T) {
	rel := hyfd.NewRelation("r", []string{"A"})
	_, err := hyfd.DiscoverWith("NoSuchAlgo", rel, hyfd.Options{})
	if !errors.Is(err, hyfd.ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
	}
	_, err = hyfd.DiscoverWithContext(context.Background(), "AlsoMissing", rel, hyfd.Options{})
	if !errors.Is(err, hyfd.ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
	}
}

// TestBaselineStatsAndMaxLhs: DiscoverWith must report dataset-shape stats
// for baselines and honor the MaxLhsSize option.
func TestBaselineStatsAndMaxLhs(t *testing.T) {
	rel := syntheticRelation(40, 5, 2, 14)
	full, err := hyfd.DiscoverWith(hyfd.AlgorithmTane, rel, hyfd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := full.Stats
	if s == nil || s.Rows != 40 || s.Cols != 5 || s.FDCount != len(full.FDs) || !s.Complete {
		t.Fatalf("baseline stats = %+v", s)
	}
	for _, name := range []string{hyfd.AlgorithmTane, hyfd.AlgorithmFdep, hyfd.AlgorithmFastFDs} {
		bounded, err := hyfd.DiscoverWith(name, rel, hyfd.Options{MaxLhsSize: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, f := range bounded.FDs {
			if f.Lhs.Cardinality() > 1 {
				t.Fatalf("%s: FD %v exceeds MaxLhsSize", name, f)
			}
		}
		for _, f := range full.FDs {
			if f.Lhs.Cardinality() <= 1 && !bounded.Set.Contains(f) {
				t.Fatalf("%s: bounded result lost %v", name, f)
			}
		}
		if bounded.Stats == nil || bounded.Stats.Complete || bounded.Stats.MaxLhs != 1 {
			t.Fatalf("%s: bounded stats = %+v", name, bounded.Stats)
		}
	}
}
