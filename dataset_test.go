package hyfd_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"hyfd"
)

// datasetRel builds a deterministic relation with enough structure (an
// exact FD, correlated and free columns) and enough nulls that the two
// null semantics yield different FD sets.
func datasetRel() *hyfd.Relation {
	rel := hyfd.NewRelation("acceptance", []string{"A", "B", "C", "D", "E"})
	for i := 0; i < 30; i++ {
		row := []string{
			fmt.Sprint(i % 5),
			fmt.Sprint(i % 3),
			fmt.Sprint((i % 5) * 10), // C is determined by A
			fmt.Sprint(i % 7),
			fmt.Sprint(i % 2),
		}
		if i%6 == 0 {
			row[3] = hyfd.Null
		}
		if i%9 == 0 {
			row[1] = hyfd.Null
		}
		rel.AppendRow(row)
	}
	return rel
}

// TestDatasetWarmMatchesCold is the Dataset layer's acceptance test: one
// Prepare followed by N concurrent warm runs — HyFD and every registered
// baseline — must be bit-for-bit identical to N cold runs, for thread
// counts 1 and 4 and both null semantics, and the warm runs must report
// Stats.Warm with a near-zero PreprocessingTime.
func TestDatasetWarmMatchesCold(t *testing.T) {
	rel := datasetRel()
	semantics := []struct {
		name string
		ns   hyfd.NullSemantics
	}{
		{"null=null", hyfd.NullEqualsNull},
		{"null!=null", hyfd.NullNotEqualsNull},
	}
	for _, sem := range semantics {
		for _, threads := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/threads=%d", sem.name, threads), func(t *testing.T) {
				ctx := context.Background()

				// Cold reference runs, preprocessing from scratch each time.
				cold := make(map[string]*hyfd.Result)
				for _, alg := range hyfd.Algorithms() {
					res, err := hyfd.DiscoverWithContext(ctx, alg, rel, hyfd.Options{
						NullSemantics: sem.ns,
						Threads:       threads,
					})
					if err != nil {
						t.Fatalf("%s cold: %v", alg, err)
					}
					cold[alg] = res
				}

				// One Prepare, then every algorithm warm — concurrently, and
				// twice each, so the runs genuinely overlap on the shared
				// Dataset.
				ds, err := hyfd.Prepare(ctx, rel, hyfd.PrepareOptions{
					NullSemantics: sem.ns,
					Threads:       threads,
				})
				if err != nil {
					t.Fatal(err)
				}
				var wg sync.WaitGroup
				errs := make(chan error, 2*len(hyfd.Algorithms()))
				for _, alg := range hyfd.Algorithms() {
					for rep := 0; rep < 2; rep++ {
						wg.Add(1)
						go func(alg string) {
							defer wg.Done()
							got, err := hyfd.DiscoverDatasetWith(ctx, alg, ds, hyfd.Options{Threads: threads})
							if err != nil {
								errs <- fmt.Errorf("%s warm: %w", alg, err)
								return
							}
							want := cold[alg]
							if !got.Set.Equal(want.Set) {
								errs <- fmt.Errorf("%s warm disagrees with cold:\nmissing: %v\nextra: %v",
									alg, want.Set.Diff(got.Set), got.Set.Diff(want.Set))
								return
							}
							if got.Stats == nil || !got.Stats.Warm {
								errs <- fmt.Errorf("%s warm run did not set Stats.Warm", alg)
								return
							}
							if alg == hyfd.AlgorithmHyFD && got.Stats.PreprocessingTime > 100*time.Millisecond {
								errs <- fmt.Errorf("warm PreprocessingTime = %v, want ~0", got.Stats.PreprocessingTime)
							}
						}(alg)
					}
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Error(err)
				}
			})
		}
	}
}

// TestDatasetApproximateAndUCCs pins the warm variants of the adjacent
// discovery problems to their cold counterparts on one shared Dataset.
func TestDatasetApproximateAndUCCs(t *testing.T) {
	rel := datasetRel()
	ctx := context.Background()
	ds, err := hyfd.Prepare(ctx, rel, hyfd.PrepareOptions{})
	if err != nil {
		t.Fatal(err)
	}

	aOpts := hyfd.ApproximateOptions{MaxError: 0.05}
	coldA, err := hyfd.DiscoverApproximate(rel, aOpts)
	if err != nil {
		t.Fatal(err)
	}
	warmA, err := hyfd.DiscoverApproximateDataset(ds, aOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldA, warmA) {
		t.Fatalf("approximate FDs diverge:\ncold: %v\nwarm: %v", coldA, warmA)
	}

	coldU, err := hyfd.DiscoverUCCs(rel, hyfd.NullEqualsNull, 0)
	if err != nil {
		t.Fatal(err)
	}
	warmU, err := hyfd.DiscoverUCCsDataset(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldU, warmU) {
		t.Fatalf("UCCs diverge:\ncold: %v\nwarm: %v", coldU, warmU)
	}
}

// TestDatasetErrorContract pins the error behavior of the Dataset entry
// points: nil Datasets are rejected, and the warm dispatcher reports
// unknown names exactly like the cold one.
func TestDatasetErrorContract(t *testing.T) {
	ctx := context.Background()
	rel := datasetRel()
	ds, err := hyfd.Prepare(ctx, rel, hyfd.PrepareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hyfd.DiscoverDatasetWith(ctx, "NoSuchAlgorithm", ds, hyfd.Options{}); !errors.Is(err, hyfd.ErrUnknownAlgorithm) {
		t.Fatalf("unknown name: err = %v, want ErrUnknownAlgorithm", err)
	}
	if _, err := hyfd.DiscoverDataset(ctx, nil, hyfd.Options{}); err == nil {
		t.Fatal("nil dataset accepted by DiscoverDataset")
	}
	if _, err := hyfd.DiscoverDatasetWith(ctx, hyfd.AlgorithmTane, nil, hyfd.Options{}); err == nil {
		t.Fatal("nil dataset accepted by DiscoverDatasetWith")
	}
	if _, err := hyfd.DiscoverApproximateDataset(nil, hyfd.ApproximateOptions{}); err == nil {
		t.Fatal("nil dataset accepted by DiscoverApproximateDataset")
	}
	if _, err := hyfd.DiscoverUCCsDataset(nil, 0); err == nil {
		t.Fatal("nil dataset accepted by DiscoverUCCsDataset")
	}
	if _, err := hyfd.Prepare(ctx, nil, hyfd.PrepareOptions{}); err == nil {
		t.Fatal("nil relation accepted by Prepare")
	}
}
