package hyfd_test

import (
	"context"
	"reflect"
	"testing"

	"hyfd"
)

// TestDiscoverThreadCountDeterminism: the engine's determinism contract —
// the same relation yields the same FD list (same order, since sets render
// canonically) at every thread count, under both null semantics. Threads 0
// resolves to all CPUs and must behave like any explicit count.
func TestDiscoverThreadCountDeterminism(t *testing.T) {
	rels := map[string]*hyfd.Relation{
		"synthetic": syntheticRelation(400, 8, 3, 17),
		"meta":      metamorphicRelation(80, 99),
	}
	for name, rel := range rels {
		for _, ns := range []hyfd.NullSemantics{hyfd.NullEqualsNull, hyfd.NullNotEqualsNull} {
			base, err := hyfd.Discover(rel, hyfd.Options{NullSemantics: ns, Threads: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, threads := range []int{0, 2, 8} {
				res, err := hyfd.Discover(rel, hyfd.Options{NullSemantics: ns, Threads: threads})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res.FDs, base.FDs) {
					t.Fatalf("%s ns=%v: threads=%d FD list differs from sequential:\nmissing: %v\nextra: %v",
						name, ns, threads, base.Set.Diff(res.Set), res.Set.Diff(base.Set))
				}
				// The work done must also be identical, not just the
				// result: same comparisons, validations, phase switches.
				if res.Stats.Comparisons != base.Stats.Comparisons ||
					res.Stats.Validations != base.Stats.Validations ||
					res.Stats.PhaseSwitches != base.Stats.PhaseSwitches ||
					res.Stats.Observations != base.Stats.Observations {
					t.Fatalf("%s ns=%v threads=%d: work differs from sequential:\n got %+v\nwant %+v",
						name, ns, threads, res.Stats, base.Stats)
				}
			}
		}
	}
}

// TestRankedThreadCountDeterminism: the ranked mode inherits the engine's
// determinism contract — the full ranked list (FDs, scores, rank order) is
// byte-identical at every thread count and across repeated runs, for both a
// bounded and an unbounded k. Emitted mid-run prefixes are covered too:
// CompleteLevel only ever extends the stream, so list equality implies
// stream equality.
func TestRankedThreadCountDeterminism(t *testing.T) {
	rels := map[string]*hyfd.Relation{
		"synthetic": syntheticRelation(400, 8, 3, 17),
		"meta":      metamorphicRelation(80, 99),
	}
	for name, rel := range rels {
		for _, ns := range []hyfd.NullSemantics{hyfd.NullEqualsNull, hyfd.NullNotEqualsNull} {
			for _, k := range []int{5, 0} {
				run := func(threads int) []hyfd.RankedFD {
					res, err := hyfd.Run(context.Background(), hyfd.Request{
						Relation: rel,
						Mode:     hyfd.ModeRanked,
						TopK:     k,
						Options:  hyfd.Options{NullSemantics: ns, Threads: threads},
					})
					if err != nil {
						t.Fatalf("%s ns=%v k=%d threads=%d: %v", name, ns, k, threads, err)
					}
					return res.Ranked
				}
				base := run(1)
				if repeat := run(1); !reflect.DeepEqual(repeat, base) {
					t.Fatalf("%s ns=%v k=%d: repeated single-threaded runs differ:\n%v\n%v",
						name, ns, k, base, repeat)
				}
				for _, threads := range []int{0, 2, 8} {
					if got := run(threads); !reflect.DeepEqual(got, base) {
						t.Fatalf("%s ns=%v k=%d: threads=%d ranked list differs from sequential:\ngot:  %v\nwant: %v",
							name, ns, k, threads, got, base)
					}
				}
			}
		}
	}
}

// TestDiscoverThreadsResolvedInStats: Stats.Threads reports the resolved
// worker count — the configured value for positive inputs, GOMAXPROCS for
// zero and negative ones (which must agree with each other).
func TestDiscoverThreadsResolvedInStats(t *testing.T) {
	rel := metamorphicRelation(30, 7)
	explicit, err := hyfd.Discover(rel, hyfd.Options{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Stats.Threads != 3 {
		t.Fatalf("Stats.Threads = %d, want 3", explicit.Stats.Threads)
	}
	zero, err := hyfd.Discover(rel, hyfd.Options{Threads: 0})
	if err != nil {
		t.Fatal(err)
	}
	negative, err := hyfd.Discover(rel, hyfd.Options{Threads: -4})
	if err != nil {
		t.Fatal(err)
	}
	if zero.Stats.Threads < 1 || zero.Stats.Threads != negative.Stats.Threads {
		t.Fatalf("resolved threads: zero=%d negative=%d, want equal and >= 1",
			zero.Stats.Threads, negative.Stats.Threads)
	}
}
