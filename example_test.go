package hyfd_test

import (
	"context"
	"fmt"
	"log"
	"strings"

	"hyfd"
)

func ExampleDiscover() {
	rel, err := hyfd.ReadCSV("addresses", strings.NewReader(
		"Name,Zip,City\n"+
			"ada,14482,Potsdam\n"+
			"bob,14482,Potsdam\n"+
			"cyn,10115,Berlin\n"), hyfd.CSVOptions{HasHeader: true})
	if err != nil {
		log.Fatal(err)
	}
	result, err := hyfd.Discover(rel, hyfd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range result.FDs {
		fmt.Println(f.Format(rel))
	}
	// Output:
	// [Name] -> Zip
	// [City] -> Zip
	// [Name] -> City
	// [Zip] -> City
}

func ExampleDiscoverWith() {
	rel := hyfd.NewRelation("r", []string{"A", "B"})
	rel.AppendRow([]string{"1", "x"})
	rel.AppendRow([]string{"2", "x"})
	result, err := hyfd.DiscoverWith(hyfd.AlgorithmTane, rel, hyfd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range result.FDs {
		fmt.Println(f.Format(rel))
	}
	// Output:
	// [] -> B
}

func ExampleDiscoverApproximate() {
	rel := hyfd.NewRelation("addr", []string{"Zip", "City"})
	for i := 0; i < 9; i++ {
		rel.AppendRow([]string{"14482", "Potsdam"})
		rel.AppendRow([]string{"10115", "Berlin"})
	}
	rel.AppendRow([]string{"14482", "Potsdm"}) // one typo
	rel.AppendRow([]string{"10115", "Brlin"})  // another
	afds, err := hyfd.DiscoverApproximate(rel, hyfd.ApproximateOptions{MaxError: 0.11})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range afds {
		if a.Lhs.Test(0) && a.Rhs == 1 {
			fmt.Printf("Zip -> City with g3 = %.2f\n", a.Error)
		}
	}
	// Output:
	// Zip -> City with g3 = 0.10
}

func ExampleDiscoverUCCs() {
	rel := hyfd.NewRelation("orders", []string{"OrderID", "CustID"})
	rel.AppendRow([]string{"1", "7"})
	rel.AppendRow([]string{"2", "7"})
	rel.AppendRow([]string{"3", "8"})
	uccs, err := hyfd.DiscoverUCCs(rel, hyfd.NullEqualsNull, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range uccs {
		fmt.Println(u)
	}
	// Output:
	// {0}
}

func ExampleAlgorithms() {
	fmt.Println(strings.Join(hyfd.Algorithms(), ", "))
	// Output:
	// HyFD, Tane, Fun, FD_Mine, Dfd, Dep-Miner, FastFDs, Fdep
}

// Example_datasetReuse preprocesses a relation once and fans several warm
// discovery runs out over the shared, immutable Dataset — the pattern for
// comparing algorithms (or re-running with different options) without
// paying the PLI build more than once.
func Example_datasetReuse() {
	rel := hyfd.NewRelation("addresses", []string{"Name", "Zip", "City"})
	rel.AppendRow([]string{"ada", "14482", "Potsdam"})
	rel.AppendRow([]string{"bob", "14482", "Potsdam"})
	rel.AppendRow([]string{"cyn", "10115", "Berlin"})

	// Preprocess once: PLIs and compressed records are built here.
	ds, err := hyfd.Prepare(context.Background(), rel, hyfd.PrepareOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// Fan out warm runs; each skips preprocessing and may run concurrently.
	for _, name := range []string{hyfd.AlgorithmHyFD, hyfd.AlgorithmTane} {
		res, err := hyfd.DiscoverDatasetWith(context.Background(), name, ds, hyfd.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d FDs (warm=%v)\n", name, len(res.FDs), res.Stats.Warm)
	}
	// Output:
	// HyFD: 4 FDs (warm=true)
	// Tane: 4 FDs (warm=true)
}
