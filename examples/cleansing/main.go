// Cleansing: use discovered FDs to find errors in dirty data (§1 names
// data cleansing as a core FD use case). The workflow: discover the FDs of
// a clean reference sample, then scan a dirty dataset for record pairs
// violating them — each violation localizes an inconsistency.
//
// Run with:
//
//	go run ./examples/cleansing
package main

import (
	"fmt"
	"log"

	"hyfd"
	"hyfd/internal/closure"
)

func main() {
	clean := addressData(false)
	dirty := addressData(true)

	// 1. Learn the rules from the clean sample.
	result, err := hyfd.Discover(clean, hyfd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %d FDs from %q, e.g.:\n", len(result.FDs), clean.Name)
	for _, f := range result.FDs {
		if f.Lhs.Cardinality() == 1 {
			fmt.Println(" ", f.Format(clean))
		}
	}

	// 2. Check the dirty dataset against every learned rule.
	fmt.Printf("\nchecking %q (%d rows):\n", dirty.Name, dirty.NumRows())
	total := 0
	for _, f := range result.FDs {
		violations := closure.Violations(dirty, hyfd.NullEqualsNull, f, 0)
		for _, v := range violations {
			total++
			fmt.Printf("  violation of %s: row %d %v vs row %d %v\n",
				f.Format(dirty), v.Row1, dirty.Rows[v.Row1], v.Row2, dirty.Rows[v.Row2])
		}
	}
	if total == 0 {
		fmt.Println("  no violations — data is consistent with the learned rules")
	} else {
		fmt.Printf("\n%d violating record pairs found — candidates for repair\n", total)
	}

	// 3. No clean sample available? Mine rules from the dirty data itself
	// with approximate FDs: a rule violated by only a few records is
	// likely a true rule plus errors.
	fmt.Println("\napproximate FDs mined from the dirty data (g3 <= 5%):")
	afds, err := hyfd.DiscoverApproximate(dirty, hyfd.ApproximateOptions{MaxError: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range afds {
		if a.Error == 0 || a.Lhs.Cardinality() != 1 {
			continue // exact or composite rules: not interesting here
		}
		lhsName := ""
		a.Lhs.ForEach(func(i int) bool { lhsName = dirty.Columns[i]; return true })
		fmt.Printf("  %s -> %s holds for %.1f%% of records — the other %.1f%% are repair candidates\n",
			lhsName, dirty.Columns[a.Rhs], 100*(1-a.Error), 100*a.Error)
	}
}

// addressData builds a zip→city style dataset; with dirt=true two typos
// break the Zip→City dependency.
func addressData(dirt bool) *hyfd.Relation {
	name := "addresses-clean"
	if dirt {
		name = "addresses-dirty"
	}
	rel := hyfd.NewRelation(name, []string{"Name", "Zip", "City"})
	zips := map[string]string{
		"14482": "Potsdam",
		"10115": "Berlin",
		"80331": "Munich",
		"50667": "Cologne",
	}
	names := []string{"ada", "bob", "cyn", "dee", "eli", "fay", "gus", "hal"}
	i := 0
	for zip, city := range zips {
		for k := 0; k < 10; k++ {
			rel.AppendRow([]string{names[(i+k)%len(names)], zip, city})
		}
		i++
	}
	if dirt {
		// Introduce inconsistencies: one mistyped city, one swapped zip.
		rel.AppendRow([]string{"ida", "14482", "Potsdm"})
		rel.AppendRow([]string{"joe", "10115", "Potsdam"})
	}
	return rel
}
