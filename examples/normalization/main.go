// Normalization: the paper's headline use case (§1). Discover the
// functional dependencies of a denormalized order table, derive its
// candidate keys, and decompose it into Boyce-Codd normal form — redundancy
// such as CustName repeating per CustID disappears into its own relation.
//
// Run with:
//
//	go run ./examples/normalization
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"hyfd"
	"hyfd/internal/closure"
)

func main() {
	rel := buildOrders()
	fmt.Printf("schema: %s(%s), %d rows\n\n", rel.Name,
		strings.Join(rel.Columns, ", "), rel.NumRows())

	result, err := hyfd.Discover(rel, hyfd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d minimal FDs, e.g.:\n", len(result.FDs))
	for i, f := range result.FDs {
		if i == 6 {
			fmt.Println("  ...")
			break
		}
		fmt.Println(" ", f.Format(rel))
	}

	keys := closure.CandidateKeys(result.Set, rel.NumCols())
	fmt.Println("\ncandidate keys:")
	for _, k := range keys {
		fmt.Println(" ", attrNames(rel, k))
	}

	fmt.Println("\nBCNF decomposition:")
	for _, sub := range closure.BCNF(result.Set, rel.NumCols()) {
		fmt.Printf("  R(%s) with key {%s}\n", attrNames(rel, sub.Attrs), attrNames(rel, sub.Key))
	}

	fmt.Println("\n3NF synthesis (dependency preserving):")
	for _, sub := range closure.ThirdNF(result.Set, rel.NumCols()) {
		fmt.Printf("  R(%s) with key {%s}\n", attrNames(rel, sub.Attrs), attrNames(rel, sub.Key))
	}
}

// buildOrders constructs a classic denormalized table: every order row
// repeats the customer's name and city, and the city repeats its country.
func buildOrders() *hyfd.Relation {
	rel := hyfd.NewRelation("orders",
		[]string{"OrderID", "CustID", "CustName", "City", "Country", "Item", "Qty"})
	custs := []struct{ name, city, country string }{
		{"Ada", "Potsdam", "DE"},
		{"Bob", "Berlin", "DE"},
		{"Cyn", "Paris", "FR"},
		{"Dee", "Lyon", "FR"},
	}
	items := []string{"chair", "table", "lamp", "desk", "sofa"}
	for i := 0; i < 40; i++ {
		c := custs[i%len(custs)]
		rel.AppendRow([]string{
			strconv.Itoa(1000 + i),
			strconv.Itoa(i % len(custs)),
			c.name, c.city, c.country,
			items[(i*3)%len(items)],
			strconv.Itoa(1 + (i*i)%3),
		})
	}
	return rel
}

func attrNames(rel *hyfd.Relation, attrs hyfd.AttrSet) string {
	var names []string
	attrs.ForEach(func(a int) bool {
		names = append(names, rel.Columns[a])
		return true
	})
	return strings.Join(names, ", ")
}
