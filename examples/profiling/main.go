// Profiling: compare all eight discovery algorithms on one of the
// evaluation dataset analogs, the workflow behind the paper's Table 1.
// HyFD and the baselines must agree on the FD set; their runtimes show the
// row-/column-efficiency trade-off the paper is built on.
//
// Run with:
//
//	go run ./examples/profiling            # ncvoter analog, 19 columns
//	go run ./examples/profiling hepatitis  # wide-and-short: watch TANE suffer
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"hyfd"
	"hyfd/internal/harness"
)

func main() {
	name := "ncvoter"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	rel, err := harness.Materialize(harness.Spec{Dataset: name, Rows: 1000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s (%d rows, %d columns)\n\n", rel.Name, rel.NumRows(), rel.NumCols())
	fmt.Printf("%-12s %10s %8s\n", "algorithm", "runtime", "FDs")
	fmt.Printf("%-12s %10s %8s\n", "---------", "-------", "---")

	var reference *hyfd.Result
	for _, alg := range hyfd.Algorithms() {
		start := time.Now()
		res, err := hyfd.DiscoverWith(alg, rel, hyfd.Options{})
		elapsed := time.Since(start)
		if err != nil {
			log.Fatalf("%s: %v", alg, err)
		}
		fmt.Printf("%-12s %10s %8d\n", alg, elapsed.Round(time.Millisecond), len(res.FDs))
		if reference == nil {
			reference = res
		} else if !res.Set.Equal(reference.Set) {
			log.Fatalf("%s disagrees with HyFD!", alg)
		}
	}
	fmt.Println("\nall algorithms returned the identical minimal FD set ✓")
}
