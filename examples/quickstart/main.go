// Quickstart: discover all minimal functional dependencies of a small
// in-memory relation with the public HyFD API, and inspect the run
// telemetry the hybrid algorithm reports.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hyfd"
)

func main() {
	// The paper's running example (§5), extended by a Room column:
	// Teacher determines Room and Room determines Teacher.
	rel := hyfd.NewRelation("class", []string{"Teacher", "Subject", "Room"})
	for _, row := range [][]string{
		{"Brown", "Math", "R1"},
		{"Walker", "Math", "R2"},
		{"Brown", "English", "R1"},
		{"Miller", "English", "R3"},
		{"Brown", "Math", "R1"},
	} {
		rel.AppendRow(row)
	}

	result, err := hyfd.Discover(rel, hyfd.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d rows, %d columns\n\n", rel.Name, rel.NumRows(), rel.NumCols())
	fmt.Println("minimal functional dependencies:")
	for _, f := range result.FDs {
		fmt.Println(" ", f.Format(rel))
	}

	s := result.Stats
	fmt.Printf("\nHyFD made %d record comparisons and %d node validations\n",
		s.Comparisons, s.Validations)
	fmt.Printf("phase switches (Phase 2 -> Phase 1): %d\n", s.PhaseSwitches)

	// Querying the result set: does Teacher determine Room?
	teacherToRoom := hyfd.FD{Lhs: hyfd.NewAttrSet(3, 0), Rhs: 2}
	fmt.Printf("\nTeacher -> Room discovered: %v\n", result.Set.Contains(teacherToRoom))

	// The same discovery through one of the seven baseline algorithms —
	// every implementation returns the identical minimal FD set.
	tane, err := hyfd.DiscoverWith(hyfd.AlgorithmTane, rel, hyfd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TANE agrees with HyFD: %v\n", tane.Set.Equal(result.Set))
}
