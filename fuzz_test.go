package hyfd_test

import (
	"context"
	"testing"

	"hyfd"
	"hyfd/internal/fd"
	"hyfd/internal/rank"
)

// fuzzRelation shapes a small relation from raw fuzz bytes: the first two
// bytes pick the dimensions (1–5 columns, 0–23 rows), the rest fill cells
// row-major from a five-symbol alphabet — four letters plus NULL — so
// nulls, constant columns, and unique columns are all reachable. Missing
// bytes read as zero, keeping every input well-formed.
func fuzzRelation(data []byte) *hyfd.Relation {
	if len(data) < 2 {
		return nil
	}
	cols := 1 + int(data[0])%5
	rows := int(data[1]) % 24
	data = data[2:]
	names := make([]string, cols)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	rel := hyfd.NewRelation("fuzz", names)
	cell := 0
	for i := 0; i < rows; i++ {
		row := make([]string, cols)
		for j := range row {
			var b byte
			if cell < len(data) {
				b = data[cell]
			}
			cell++
			if b%7 == 6 {
				row[j] = hyfd.Null
			} else {
				row[j] = string(rune('a' + b%4))
			}
		}
		rel.AppendRow(row)
	}
	return rel
}

// FuzzDiscoverDifferential differentially fuzzes the public Discover entry
// point against the definitional brute-force reference, under both null
// semantics and at two thread counts — so the parallel preprocessing,
// sampling, and validation paths are all exercised against the oracle.
// The committed corpus under testdata/fuzz covers nulls, constant columns,
// and unique columns.
func FuzzDiscoverDifferential(f *testing.F) {
	// Mixed shape with nulls (bytes ≡ 6 mod 7 become NULL).
	f.Add([]byte{3, 8, 0, 1, 2, 6, 1, 13, 2, 1, 0, 255, 20, 4})
	// Constant column: two columns, four rows, column A always 'a'.
	f.Add([]byte{1, 4, 0, 0, 0, 1, 0, 2, 0, 3})
	// Unique column: four rows with four distinct values in column A.
	f.Add([]byte{1, 4, 0, 7, 1, 7, 2, 7, 3, 7})
	// Degenerate shapes: no rows, single cell.
	f.Add([]byte{5, 0})
	f.Add([]byte{0, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		rel := fuzzRelation(data)
		if rel == nil {
			return
		}
		for _, ns := range []hyfd.NullSemantics{hyfd.NullEqualsNull, hyfd.NullNotEqualsNull} {
			want := fd.BruteForce(rel, ns)
			for _, threads := range []int{1, 3} {
				res, err := hyfd.Discover(rel, hyfd.Options{NullSemantics: ns, Threads: threads})
				if err != nil {
					t.Fatalf("ns=%v threads=%d: %v", ns, threads, err)
				}
				if !res.Set.Equal(want) {
					t.Fatalf("ns=%v threads=%d rows=%d cols=%d:\nmissing: %v\nextra: %v",
						ns, threads, rel.NumRows(), rel.NumCols(),
						want.Diff(res.Set), res.Set.Diff(want))
				}
			}
		}
	})
}

// FuzzTopKDifferential differentially fuzzes ranked top-k discovery against
// its offline oracle: the early-terminated engine output must equal the
// complete brute-force cover rescored and cut with rank.Rank — exact
// equality including rank order and scores, under both null semantics, at
// two thread counts, and for several k (0 ranks the whole cover). The
// committed corpus under testdata/fuzz seeds score ties (constant columns),
// nulls, and unique columns.
func FuzzTopKDifferential(f *testing.F) {
	// Mixed shape with nulls (bytes ≡ 6 mod 7 become NULL).
	f.Add([]byte{3, 8, 0, 1, 2, 6, 1, 13, 2, 1, 0, 255, 20, 4})
	// Two constant columns: maximal tied scores exercise the strict cut.
	f.Add([]byte{2, 5, 0, 4, 0, 4, 0, 4, 0, 4, 0, 4})
	// Unique column beside a correlated pair.
	f.Add([]byte{3, 6, 7, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 8, 0, 0, 9, 1, 1})
	// Degenerate shapes: no rows, single cell.
	f.Add([]byte{5, 0})
	f.Add([]byte{0, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		rel := fuzzRelation(data)
		if rel == nil {
			return
		}
		ctx := context.Background()
		for _, ns := range []hyfd.NullSemantics{hyfd.NullEqualsNull, hyfd.NullNotEqualsNull} {
			// The oracle scorer reads the same prepared PLIs the engine uses,
			// so scores compare bitwise.
			ds, err := hyfd.Prepare(ctx, rel, hyfd.PrepareOptions{NullSemantics: ns, Threads: 1})
			if err != nil {
				t.Fatalf("ns=%v: prepare: %v", ns, err)
			}
			scorer := rank.NewScorer(ds.Index())
			cover := fd.BruteForce(rel, ns)
			for _, k := range []int{1, 3, 0} {
				want := rank.Rank(cover.All(), scorer, k, 0)
				for _, threads := range []int{1, 4} {
					res, err := hyfd.Run(ctx, hyfd.Request{
						Relation: rel,
						Mode:     hyfd.ModeRanked,
						TopK:     k,
						Options:  hyfd.Options{NullSemantics: ns, Threads: threads},
					})
					if err != nil {
						t.Fatalf("ns=%v k=%d threads=%d: %v", ns, k, threads, err)
					}
					if len(res.Ranked) != len(want) {
						t.Fatalf("ns=%v k=%d threads=%d rows=%d cols=%d: got %d ranked, oracle has %d\ngot: %v\nwant: %v",
							ns, k, threads, rel.NumRows(), rel.NumCols(),
							len(res.Ranked), len(want), res.Ranked, want)
					}
					for i, g := range res.Ranked {
						w := want[i]
						if g.Rank != w.Rank || g.Score != w.Score || g.FD.Rhs != w.FD.Rhs || !g.FD.Lhs.Equal(w.FD.Lhs) {
							t.Fatalf("ns=%v k=%d threads=%d: rank %d differs:\ngot:  %+v\nwant: %+v",
								ns, k, threads, i+1, g, w)
						}
					}
				}
			}
		}
	})
}
