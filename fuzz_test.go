package hyfd_test

import (
	"context"
	"testing"

	"hyfd"
	"hyfd/internal/fd"
	"hyfd/internal/rank"
)

// fuzzRelation shapes a small relation from raw fuzz bytes: the first two
// bytes pick the dimensions (1–5 columns, 0–23 rows), the rest fill cells
// row-major from a five-symbol alphabet — four letters plus NULL — so
// nulls, constant columns, and unique columns are all reachable. Missing
// bytes read as zero, keeping every input well-formed.
func fuzzRelation(data []byte) *hyfd.Relation {
	if len(data) < 2 {
		return nil
	}
	cols := 1 + int(data[0])%5
	rows := int(data[1]) % 24
	data = data[2:]
	names := make([]string, cols)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	rel := hyfd.NewRelation("fuzz", names)
	cell := 0
	for i := 0; i < rows; i++ {
		row := make([]string, cols)
		for j := range row {
			var b byte
			if cell < len(data) {
				b = data[cell]
			}
			cell++
			if b%7 == 6 {
				row[j] = hyfd.Null
			} else {
				row[j] = string(rune('a' + b%4))
			}
		}
		rel.AppendRow(row)
	}
	return rel
}

// FuzzDiscoverDifferential differentially fuzzes the public Discover entry
// point against the definitional brute-force reference, under both null
// semantics and at two thread counts — so the parallel preprocessing,
// sampling, and validation paths are all exercised against the oracle.
// The committed corpus under testdata/fuzz covers nulls, constant columns,
// and unique columns.
func FuzzDiscoverDifferential(f *testing.F) {
	// Mixed shape with nulls (bytes ≡ 6 mod 7 become NULL).
	f.Add([]byte{3, 8, 0, 1, 2, 6, 1, 13, 2, 1, 0, 255, 20, 4})
	// Constant column: two columns, four rows, column A always 'a'.
	f.Add([]byte{1, 4, 0, 0, 0, 1, 0, 2, 0, 3})
	// Unique column: four rows with four distinct values in column A.
	f.Add([]byte{1, 4, 0, 7, 1, 7, 2, 7, 3, 7})
	// Degenerate shapes: no rows, single cell.
	f.Add([]byte{5, 0})
	f.Add([]byte{0, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		rel := fuzzRelation(data)
		if rel == nil {
			return
		}
		for _, ns := range []hyfd.NullSemantics{hyfd.NullEqualsNull, hyfd.NullNotEqualsNull} {
			want := fd.BruteForce(rel, ns)
			for _, threads := range []int{1, 3} {
				res, err := hyfd.Discover(rel, hyfd.Options{NullSemantics: ns, Threads: threads})
				if err != nil {
					t.Fatalf("ns=%v threads=%d: %v", ns, threads, err)
				}
				if !res.Set.Equal(want) {
					t.Fatalf("ns=%v threads=%d rows=%d cols=%d:\nmissing: %v\nextra: %v",
						ns, threads, rel.NumRows(), rel.NumCols(),
						want.Diff(res.Set), res.Set.Diff(want))
				}
			}
		}
	})
}

// fuzzDelta shapes an update batch from the fuzz bytes left over after the
// base relation's cells: one byte each for the delete and insert counts, then
// delete row picks (distinct indices into the base, so the batch never asks
// for more copies of a value than the snapshot holds), then insert cells from
// the same five-symbol alphabet as fuzzRelation. Missing bytes read as zero.
func fuzzDelta(rel *hyfd.Relation, data []byte) hyfd.Delta {
	var d hyfd.Delta
	if len(data) == 0 {
		return d
	}
	nDel := int(data[0]) % 4
	nIns := 0
	if len(data) > 1 {
		nIns = int(data[1]) % 5
	}
	if len(data) > 2 {
		data = data[2:]
	} else {
		data = nil
	}
	used := make(map[int]bool, nDel)
	for i := 0; i < nDel && rel.NumRows() > 0; i++ {
		var b byte
		if i < len(data) {
			b = data[i]
		}
		idx := int(b) % rel.NumRows()
		if used[idx] {
			continue
		}
		used[idx] = true
		d.Deletes = append(d.Deletes, rel.Rows[idx])
	}
	if nDel <= len(data) {
		data = data[nDel:]
	} else {
		data = nil
	}
	cell := 0
	for i := 0; i < nIns; i++ {
		row := make([]string, rel.NumCols())
		for j := range row {
			var b byte
			if cell < len(data) {
				b = data[cell]
			}
			cell++
			if b%7 == 6 {
				row[j] = hyfd.Null
			} else {
				row[j] = string(rune('a' + b%4))
			}
		}
		d.Inserts = append(d.Inserts, row)
	}
	return d
}

// applyDeltaRows mirrors Dataset.Apply's documented row semantics on plain
// relations: each delete removes the earliest not-yet-matched row with the
// same value, then inserts append in order. The result is the content the
// delta snapshot must be equivalent to.
func applyDeltaRows(rel *hyfd.Relation, delta hyfd.Delta) *hyfd.Relation {
	removed := make([]bool, rel.NumRows())
	for _, del := range delta.Deletes {
	match:
		for i, row := range rel.Rows {
			if removed[i] || len(row) != len(del) {
				continue
			}
			for j := range row {
				if row[j] != del[j] {
					continue match
				}
			}
			removed[i] = true
			break
		}
	}
	out := hyfd.NewRelation(rel.Name, rel.Columns)
	for i, row := range rel.Rows {
		if !removed[i] {
			out.AppendRow(row)
		}
	}
	for _, row := range delta.Inserts {
		out.AppendRow(row)
	}
	return out
}

// FuzzIncrementalDifferential differentially fuzzes incremental maintenance
// against a cold full re-run: the base relation and an update batch are both
// shaped from the fuzz bytes, the batch is applied through ModeIncremental,
// and the maintained cover must be byte-identical (same canonical String) to
// discovering the delta'd content from scratch — under both null semantics
// and at two thread counts. The committed corpus under testdata/fuzz covers
// mixed insert+delete batches, insert-only and delete-only batches, deletes
// of duplicated rows, and the empty delta.
func FuzzIncrementalDifferential(f *testing.F) {
	// Mixed batch: 3×6 base with nulls, 2 deletes + 2 inserts.
	f.Add([]byte{3, 6, 0, 1, 2, 6, 1, 13, 2, 1, 0, 255, 20, 4, 0, 0, 1, 1, 2, 2, 2, 2, 0, 3, 5, 8, 1, 6, 0, 2})
	// Insert-only batch on a 2×4 base.
	f.Add([]byte{1, 4, 0, 1, 2, 3, 0, 0, 0, 2, 4, 9, 6, 1})
	// Delete-only batch on a 2×5 base.
	f.Add([]byte{1, 5, 0, 4, 0, 4, 0, 1, 2, 8, 2, 0, 1, 3})
	// Deleting a duplicated row: rows 0 and 1 of column A share the value.
	f.Add([]byte{0, 4, 0, 0, 0, 1, 2, 0, 0, 1})
	// Empty delta: no bytes left after the base cells.
	f.Add([]byte{2, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		rel := fuzzRelation(data)
		if rel == nil {
			return
		}
		cols, rows := rel.NumCols(), rel.NumRows()
		rest := data[2:]
		if len(rest) > rows*cols {
			rest = rest[rows*cols:]
		} else {
			rest = nil
		}
		delta := fuzzDelta(rel, rest)
		final := applyDeltaRows(rel, delta)
		ctx := context.Background()
		for _, ns := range []hyfd.NullSemantics{hyfd.NullEqualsNull, hyfd.NullNotEqualsNull} {
			base, err := hyfd.Discover(rel, hyfd.Options{NullSemantics: ns, Threads: 1})
			if err != nil {
				t.Fatalf("ns=%v: base discover: %v", ns, err)
			}
			cold, err := hyfd.Discover(final, hyfd.Options{NullSemantics: ns, Threads: 1})
			if err != nil {
				t.Fatalf("ns=%v: cold discover: %v", ns, err)
			}
			for _, threads := range []int{1, 4} {
				ds, err := hyfd.Prepare(ctx, rel, hyfd.PrepareOptions{NullSemantics: ns, Threads: threads})
				if err != nil {
					t.Fatalf("ns=%v threads=%d: prepare: %v", ns, threads, err)
				}
				res, err := hyfd.Run(ctx, hyfd.Request{
					Dataset: ds,
					Mode:    hyfd.ModeIncremental,
					Delta:   &delta,
					Base:    base.Set,
					Options: hyfd.Options{NullSemantics: ns, Threads: threads},
				})
				if err != nil {
					t.Fatalf("ns=%v threads=%d: incremental: %v", ns, threads, err)
				}
				if res.Set.String() != cold.Set.String() {
					t.Fatalf("ns=%v threads=%d base=%dx%d +%d -%d: maintained cover diverges from cold re-run:\nmissing: %v\nextra: %v",
						ns, threads, rows, cols, len(delta.Inserts), len(delta.Deletes),
						cold.Set.Diff(res.Set), res.Set.Diff(cold.Set))
				}
			}
		}
	})
}

// FuzzTopKDifferential differentially fuzzes ranked top-k discovery against
// its offline oracle: the early-terminated engine output must equal the
// complete brute-force cover rescored and cut with rank.Rank — exact
// equality including rank order and scores, under both null semantics, at
// two thread counts, and for several k (0 ranks the whole cover). The
// committed corpus under testdata/fuzz seeds score ties (constant columns),
// nulls, and unique columns.
func FuzzTopKDifferential(f *testing.F) {
	// Mixed shape with nulls (bytes ≡ 6 mod 7 become NULL).
	f.Add([]byte{3, 8, 0, 1, 2, 6, 1, 13, 2, 1, 0, 255, 20, 4})
	// Two constant columns: maximal tied scores exercise the strict cut.
	f.Add([]byte{2, 5, 0, 4, 0, 4, 0, 4, 0, 4, 0, 4})
	// Unique column beside a correlated pair.
	f.Add([]byte{3, 6, 7, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 8, 0, 0, 9, 1, 1})
	// Degenerate shapes: no rows, single cell.
	f.Add([]byte{5, 0})
	f.Add([]byte{0, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		rel := fuzzRelation(data)
		if rel == nil {
			return
		}
		ctx := context.Background()
		for _, ns := range []hyfd.NullSemantics{hyfd.NullEqualsNull, hyfd.NullNotEqualsNull} {
			// The oracle scorer reads the same prepared PLIs the engine uses,
			// so scores compare bitwise.
			ds, err := hyfd.Prepare(ctx, rel, hyfd.PrepareOptions{NullSemantics: ns, Threads: 1})
			if err != nil {
				t.Fatalf("ns=%v: prepare: %v", ns, err)
			}
			scorer := rank.NewScorer(ds.Index())
			cover := fd.BruteForce(rel, ns)
			for _, k := range []int{1, 3, 0} {
				want := rank.Rank(cover.All(), scorer, k, 0)
				for _, threads := range []int{1, 4} {
					res, err := hyfd.Run(ctx, hyfd.Request{
						Relation: rel,
						Mode:     hyfd.ModeRanked,
						TopK:     k,
						Options:  hyfd.Options{NullSemantics: ns, Threads: threads},
					})
					if err != nil {
						t.Fatalf("ns=%v k=%d threads=%d: %v", ns, k, threads, err)
					}
					if len(res.Ranked) != len(want) {
						t.Fatalf("ns=%v k=%d threads=%d rows=%d cols=%d: got %d ranked, oracle has %d\ngot: %v\nwant: %v",
							ns, k, threads, rel.NumRows(), rel.NumCols(),
							len(res.Ranked), len(want), res.Ranked, want)
					}
					for i, g := range res.Ranked {
						w := want[i]
						if g.Rank != w.Rank || g.Score != w.Score || g.FD.Rhs != w.FD.Rhs || !g.FD.Lhs.Equal(w.FD.Lhs) {
							t.Fatalf("ns=%v k=%d threads=%d: rank %d differs:\ngot:  %+v\nwant: %+v",
								ns, k, threads, i+1, g, w)
						}
					}
				}
			}
		}
	})
}
