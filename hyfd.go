// Package hyfd is a pure-Go implementation of HyFD — "A Hybrid Approach to
// Functional Dependency Discovery" (Papenbrock & Naumann, SIGMOD 2016) —
// together with the seven state-of-the-art discovery algorithms the paper
// evaluates against.
//
// HyFD discovers all minimal, non-trivial functional dependencies of a
// relational instance by alternating between two phases: a column-efficient
// sampling phase that induces FD candidates from carefully chosen record
// pair comparisons, and a row-efficient validation phase that checks the
// candidates directly against position list indexes and specializes the
// invalid ones. The combination processes datasets that are both wide and
// long, where every single-strategy algorithm fails.
//
// # Quick start
//
//	rel, err := hyfd.ReadCSVFile("data.csv", hyfd.CSVOptions{HasHeader: true})
//	if err != nil { ... }
//	result, err := hyfd.Discover(rel, hyfd.Options{})
//	if err != nil { ... }
//	for _, f := range result.FDs {
//		fmt.Println(f.Format(rel))
//	}
//
// The companion packages expose the use-case layer the paper motivates:
// candidate keys, closures, schema normalization (BCNF/3NF) and FD-based
// data cleansing live in the closure package; synthetic dataset generators
// mirroring the paper's evaluation data live in datasets.
package hyfd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"hyfd/internal/afd"
	"hyfd/internal/algorithms"
	"hyfd/internal/bitset"
	"hyfd/internal/core"
	"hyfd/internal/dataset"
	"hyfd/internal/fd"
	"hyfd/internal/relation"
	"hyfd/internal/ucc"
)

// ErrUnknownAlgorithm is returned (wrapped) by DiscoverWith and
// DiscoverWithContext when the algorithm name is not registered; test with
// errors.Is.
var ErrUnknownAlgorithm = errors.New("unknown algorithm")

// Relation is a named relational instance (schema + rows of string cells).
type Relation = relation.Relation

// NewRelation returns an empty relation with the given name and columns.
func NewRelation(name string, columns []string) *Relation {
	return relation.New(name, columns)
}

// CSVOptions controls CSV parsing; see ReadCSV.
type CSVOptions = relation.CSVOptions

// ReadCSV parses a relation from CSV input.
func ReadCSV(name string, r io.Reader, opts CSVOptions) (*Relation, error) {
	return relation.ReadCSV(name, r, opts)
}

// ReadCSVFile parses a relation from a CSV file.
func ReadCSVFile(path string, opts CSVOptions) (*Relation, error) {
	return relation.ReadCSVFile(path, opts)
}

// Null is the in-memory representation of a SQL NULL cell.
const Null = relation.Null

// NullSemantics selects how nulls compare during discovery.
type NullSemantics = relation.NullSemantics

// The two null comparison semantics of §10.1.
const (
	NullEqualsNull    = relation.NullEqualsNull
	NullNotEqualsNull = relation.NullNotEqualsNull
)

// FD is a functional dependency Lhs → Rhs (attribute indices into the
// relation's columns).
type FD = fd.FD

// FDSet is a canonical collection of FDs.
type FDSet = fd.Set

// AttrSet is a set of attribute indices.
type AttrSet = bitset.Set

// NewAttrSet returns an attribute set over a universe of n attributes with
// the given members.
func NewAttrSet(n int, members ...int) AttrSet {
	return bitset.FromIndices(n, members...)
}

// Options parameterizes Discover. The zero value uses the paper's defaults
// (null=null semantics, the 1 % efficiency threshold, unbounded complete
// results) and runs with one worker per available CPU.
type Options struct {
	// NullSemantics selects ⊥=⊥ (default) or ⊥≠⊥.
	NullSemantics NullSemantics
	// EfficiencyThreshold is HyFD's only tuning parameter (§10.5); 0 means
	// the paper's default of 0.01. It controls both when sampling is
	// considered exhausted and when validation hands control back.
	EfficiencyThreshold float64
	// Threads is the engine-wide worker count, driving preprocessing (PLI
	// construction), the sampler, and candidate validation uniformly.
	// 1 forces single-threaded execution; any value <= 0 picks
	// runtime.GOMAXPROCS(0). Results and trace-event order are identical
	// for every thread count.
	Threads int
	// MaxLhsSize truncates results to LHSs of at most this size
	// (0 = unbounded). The result is then complete up to that size.
	MaxLhsSize int
	// MemoryBudgetBytes arms the memory Guardian (§9); 0 disables it.
	MemoryBudgetBytes int
	// Observer, when non-nil, receives trace events as the run progresses
	// (see observer.go for the event vocabulary). Events are delivered
	// synchronously from the engine's coordinating goroutine.
	Observer Observer
	// Metrics, when non-nil, collects the run's quantitative telemetry
	// (comparison/validation counters, phase durations, cluster-size and
	// efficiency histograms, runtime gauges) into the registry's hyfd_*
	// instrument families; see metrics.go. Leaving it nil keeps discovery
	// completely unmetered.
	Metrics *MetricsRegistry
}

// Stats is the telemetry of one discovery run.
type Stats = core.Stats

// Result bundles the discovered FDs with run telemetry.
type Result struct {
	// FDs holds all discovered minimal, non-trivial FDs in canonical
	// order.
	FDs []FD
	// Set is the same collection as a queryable FDSet.
	Set *FDSet
	// Stats reports phase switches, comparisons, validations, and whether
	// the result is complete.
	Stats *Stats
}

// Discover runs HyFD on the relation. It is shorthand for DiscoverContext
// with a background context.
func Discover(rel *Relation, opts Options) (*Result, error) {
	//hyfdvet:allow ctxflow — public no-context compat shim; DiscoverContext is the primary API
	return DiscoverContext(context.Background(), rel, opts)
}

// DiscoverContext runs HyFD on the relation under the given context.
// Cancellation checkpoints sit inside every long-running engine loop; once
// ctx is canceled or its deadline passes, the run returns promptly with an
// error wrapping ctx.Err() (test with errors.Is against context.Canceled or
// context.DeadlineExceeded).
func DiscoverContext(ctx context.Context, rel *Relation, opts Options) (*Result, error) {
	set, stats, err := core.Discover(ctx, rel, core.Config{
		NullSemantics:       opts.NullSemantics,
		EfficiencyThreshold: opts.EfficiencyThreshold,
		Threads:             opts.Threads,
		MaxLhsSize:          opts.MaxLhsSize,
		MemoryBudgetBytes:   opts.MemoryBudgetBytes,
		Observer:            opts.Observer,
		Metrics:             opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	return &Result{FDs: set.All(), Set: set, Stats: stats}, nil
}

// DiscoverWith runs the named algorithm instead of HyFD; it is shorthand
// for DiscoverWithContext with a background context.
func DiscoverWith(algorithm string, rel *Relation, opts Options) (*Result, error) {
	//hyfdvet:allow ctxflow — public no-context compat shim; DiscoverWithContext is the primary API
	return DiscoverWithContext(context.Background(), algorithm, rel, opts)
}

// DiscoverWithContext runs the named algorithm under the given context; see
// Algorithms for the available names. The baselines honor NullSemantics and
// MaxLhsSize and share the engine's cancellation contract; the remaining
// options (thresholds, threads, memory budget, observer) apply only to
// "HyFD" itself. An unregistered name returns an error wrapping
// ErrUnknownAlgorithm.
func DiscoverWithContext(ctx context.Context, algorithm string, rel *Relation, opts Options) (*Result, error) {
	if algorithm == AlgorithmHyFD {
		return DiscoverContext(ctx, rel, opts)
	}
	alg, ok := registry[algorithm]
	if !ok {
		return nil, fmt.Errorf("hyfd: %w %q (available: %v)", ErrUnknownAlgorithm, algorithm, Algorithms())
	}
	start := time.Now()
	set, err := algorithms.DiscoverRelation(ctx, alg, rel, algorithms.Config{
		NullSemantics: opts.NullSemantics,
		MaxLhsSize:    opts.MaxLhsSize,
	})
	if err != nil {
		return nil, err
	}
	return baselineResult(set, rel.NumRows(), rel.NumCols(), opts.MaxLhsSize, false, time.Since(start)), nil
}

// baselineResult assembles the Stats/Result pair of a baseline run; the
// baselines don't report the engine's per-phase telemetry, so only the
// dimensional and outcome fields are populated.
func baselineResult(set *FDSet, rows, cols, maxLhsSize int, warm bool, total time.Duration) *Result {
	stats := &Stats{
		Rows:      rows,
		Cols:      cols,
		FDCount:   set.Size(),
		MaxLhs:    cols,
		Complete:  true,
		Warm:      warm,
		TotalTime: total,
	}
	if maxLhsSize > 0 {
		stats.MaxLhs = maxLhsSize
		stats.Complete = false
	}
	return &Result{FDs: set.All(), Set: set, Stats: stats}
}

// Dataset is an immutable, goroutine-safe preprocessing artifact: the
// relation handle together with its sorted PLIs, PLI-compressed records,
// null semantics, and resolved thread count. Produce one with Prepare and
// fan out any number of concurrent Discover runs over it — HyFD, every
// baseline, approximate FDs, and UCCs all accept a Dataset, and each warm
// run yields results bit-for-bit identical to a cold run on the underlying
// relation.
type Dataset = dataset.Dataset

// PrepareOptions parameterizes Prepare. The zero value uses null=null
// semantics and one worker per available CPU.
type PrepareOptions struct {
	// NullSemantics selects ⊥=⊥ (default) or ⊥≠⊥. The choice is baked into
	// the Dataset's PLIs: every run over the Dataset uses it, and the
	// NullSemantics field of per-run Options is ignored for Dataset-based
	// calls.
	NullSemantics NullSemantics
	// Threads is the preprocessing worker count (1 = sequential, <= 0 =
	// all CPUs). The resolved count is recorded on the Dataset and becomes
	// the default worker count of runs that don't override it.
	Threads int
	// Observer, when non-nil, receives the preprocessing trace events
	// (PLIBuilt per attribute, then PreprocessingDone) exactly as a cold
	// Discover would emit them.
	Observer Observer
	// Metrics, when non-nil, collects preprocessing telemetry (PLI build
	// durations, cluster sizes) into the registry's hyfd_* families.
	Metrics *MetricsRegistry
}

// Prepare runs HyFD's preprocessing (Algorithm 1: PLI construction and
// record inversion) once over the relation and returns the immutable
// Dataset every discovery entry point can consume. Preprocessing is
// bit-for-bit deterministic for every thread count. The context is honored;
// a canceled context returns an error wrapping ctx.Err().
func Prepare(ctx context.Context, rel *Relation, opts PrepareOptions) (*Dataset, error) {
	return core.Prepare(ctx, rel, core.Config{
		NullSemantics: opts.NullSemantics,
		Threads:       opts.Threads,
		Observer:      opts.Observer,
		Metrics:       opts.Metrics,
	})
}

// DiscoverDataset runs HyFD over a prepared Dataset — a warm run that skips
// preprocessing entirely. The result is bit-for-bit identical to
// DiscoverContext on the underlying relation at the same thread count;
// Stats.Warm is set and Stats.PreprocessingTime covers only the (near-zero)
// reuse overhead. Because the Dataset is immutable, any number of
// DiscoverDataset calls may run concurrently over the same value.
//
// opts.NullSemantics is ignored: the Dataset's baked-in semantics apply.
// opts.Threads > 0 overrides the sampling/validation worker count; any
// value <= 0 inherits the Dataset's resolved count.
func DiscoverDataset(ctx context.Context, ds *Dataset, opts Options) (*Result, error) {
	set, stats, err := core.DiscoverDataset(ctx, ds, core.Config{
		EfficiencyThreshold: opts.EfficiencyThreshold,
		Threads:             opts.Threads,
		MaxLhsSize:          opts.MaxLhsSize,
		MemoryBudgetBytes:   opts.MemoryBudgetBytes,
		Observer:            opts.Observer,
		Metrics:             opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	return &Result{FDs: set.All(), Set: set, Stats: stats}, nil
}

// DiscoverDatasetWith runs the named algorithm over a prepared Dataset; see
// Algorithms for the available names. "HyFD" dispatches to DiscoverDataset;
// the baselines run warm against the shared PLIs with per-run intersection
// caches, honoring MaxLhsSize. The Dataset's null semantics apply
// regardless of opts.NullSemantics. An unregistered name returns an error
// wrapping ErrUnknownAlgorithm.
func DiscoverDatasetWith(ctx context.Context, algorithm string, ds *Dataset, opts Options) (*Result, error) {
	if algorithm == AlgorithmHyFD {
		return DiscoverDataset(ctx, ds, opts)
	}
	alg, ok := registry[algorithm]
	if !ok {
		return nil, fmt.Errorf("hyfd: %w %q (available: %v)", ErrUnknownAlgorithm, algorithm, Algorithms())
	}
	if ds == nil {
		return nil, errors.New("hyfd: nil dataset")
	}
	start := time.Now()
	set, err := alg.Discover(ctx, ds, algorithms.Config{MaxLhsSize: opts.MaxLhsSize})
	if err != nil {
		return nil, err
	}
	return baselineResult(set, ds.NumRows(), ds.NumCols(), opts.MaxLhsSize, true, time.Since(start)), nil
}

// ApproximateFD is an approximate functional dependency with its g3 error:
// the minimum fraction of records whose removal makes the FD exact.
type ApproximateFD = afd.AFD

// ApproximateOptions parameterizes DiscoverApproximate.
type ApproximateOptions struct {
	// MaxError is the g3 threshold ε ∈ [0,1); 0 reproduces exact discovery.
	MaxError float64
	// NullSemantics selects the null comparison semantics.
	NullSemantics NullSemantics
	// MaxLhsSize bounds LHS sizes (0 = unbounded).
	MaxLhsSize int
}

// DiscoverApproximate finds all minimal approximate FDs whose g3 error does
// not exceed the threshold — the relaxation used on dirty data, where rules
// hold for almost all records (see the cleansing example).
func DiscoverApproximate(rel *Relation, opts ApproximateOptions) ([]ApproximateFD, error) {
	return afd.Discover(rel, afd.Options{
		MaxError:      opts.MaxError,
		NullSemantics: opts.NullSemantics,
		MaxLhs:        opts.MaxLhsSize,
	})
}

// DiscoverApproximateDataset is DiscoverApproximate over a prepared
// Dataset, reusing its PLIs instead of re-preprocessing. The Dataset's null
// semantics apply; opts.NullSemantics is ignored.
func DiscoverApproximateDataset(ds *Dataset, opts ApproximateOptions) ([]ApproximateFD, error) {
	if ds == nil {
		return nil, errors.New("hyfd: nil dataset")
	}
	return afd.DiscoverDataset(ds, afd.Options{
		MaxError: opts.MaxError,
		MaxLhs:   opts.MaxLhsSize,
	})
}

// DiscoverUCCs returns all minimal unique column combinations (candidate
// keys of the instance), the sister problem of FD discovery. maxSize
// bounds the combination size (0 = unbounded).
func DiscoverUCCs(rel *Relation, ns NullSemantics, maxSize int) ([]AttrSet, error) {
	return ucc.Discover(rel, ns, maxSize)
}

// DiscoverUCCsDataset is DiscoverUCCs over a prepared Dataset, reusing its
// PLIs instead of re-preprocessing. The Dataset's null semantics apply.
func DiscoverUCCsDataset(ds *Dataset, maxSize int) ([]AttrSet, error) {
	if ds == nil {
		return nil, errors.New("hyfd: nil dataset")
	}
	return ucc.DiscoverDataset(ds, maxSize)
}
