// Package hyfd is a pure-Go implementation of HyFD — "A Hybrid Approach to
// Functional Dependency Discovery" (Papenbrock & Naumann, SIGMOD 2016) —
// together with the seven state-of-the-art discovery algorithms the paper
// evaluates against.
//
// HyFD discovers all minimal, non-trivial functional dependencies of a
// relational instance by alternating between two phases: a column-efficient
// sampling phase that induces FD candidates from carefully chosen record
// pair comparisons, and a row-efficient validation phase that checks the
// candidates directly against position list indexes and specializes the
// invalid ones. The combination processes datasets that are both wide and
// long, where every single-strategy algorithm fails.
//
// # Quick start
//
//	rel, err := hyfd.ReadCSVFile("data.csv", hyfd.CSVOptions{HasHeader: true})
//	if err != nil { ... }
//	result, err := hyfd.Run(ctx, hyfd.Request{Relation: rel})
//	if err != nil { ... }
//	for _, f := range result.FDs {
//		fmt.Println(f.Format(rel))
//	}
//
// Run is the single entry point: one request struct selects the input (a
// raw Relation or a prepared Dataset), the workload (exact FDs, approximate
// FDs, or unique column combinations), and the algorithm. The historical
// Discover* functions remain as thin deprecated shims over Run.
//
// The companion packages expose the use-case layer the paper motivates:
// candidate keys, closures, schema normalization (BCNF/3NF) and FD-based
// data cleansing live in the closure package; synthetic dataset generators
// mirroring the paper's evaluation data live in datasets. Command hyfdd
// serves this API over HTTP as a long-running multi-tenant daemon.
package hyfd

import (
	"context"
	"errors"
	"io"

	"hyfd/internal/afd"
	"hyfd/internal/bitset"
	"hyfd/internal/core"
	"hyfd/internal/dataset"
	"hyfd/internal/fd"
	"hyfd/internal/rank"
	"hyfd/internal/relation"
)

// ErrUnknownAlgorithm is returned (wrapped) by Run and the Discover* shims
// when the algorithm name is not registered; test with errors.Is.
var ErrUnknownAlgorithm = errors.New("unknown algorithm")

// Relation is a named relational instance (schema + rows of string cells).
type Relation = relation.Relation

// Row is one relation row: a string cell per column. Delta batches are built
// from Rows.
type Row = relation.Row

// NewRelation returns an empty relation with the given name and columns.
func NewRelation(name string, columns []string) *Relation {
	return relation.New(name, columns)
}

// CSVOptions controls CSV parsing; see ReadCSV.
type CSVOptions = relation.CSVOptions

// ReadCSV parses a relation from CSV input.
func ReadCSV(name string, r io.Reader, opts CSVOptions) (*Relation, error) {
	return relation.ReadCSV(name, r, opts)
}

// ReadCSVFile parses a relation from a CSV file.
func ReadCSVFile(path string, opts CSVOptions) (*Relation, error) {
	return relation.ReadCSVFile(path, opts)
}

// Null is the in-memory representation of a SQL NULL cell.
const Null = relation.Null

// NullSemantics selects how nulls compare during discovery.
type NullSemantics = relation.NullSemantics

// The two null comparison semantics of §10.1.
const (
	NullEqualsNull    = relation.NullEqualsNull
	NullNotEqualsNull = relation.NullNotEqualsNull
)

// FD is a functional dependency Lhs → Rhs (attribute indices into the
// relation's columns).
type FD = fd.FD

// FDSet is a canonical collection of FDs.
type FDSet = fd.Set

// AttrSet is a set of attribute indices.
type AttrSet = bitset.Set

// NewAttrSet returns an attribute set over a universe of n attributes with
// the given members.
func NewAttrSet(n int, members ...int) AttrSet {
	return bitset.FromIndices(n, members...)
}

// Options parameterizes a Run. The zero value uses the paper's defaults
// (null=null semantics, the 1 % efficiency threshold, unbounded complete
// results) and runs with one worker per available CPU.
type Options struct {
	// NullSemantics selects ⊥=⊥ (default) or ⊥≠⊥. It applies to cold runs
	// (Request.Relation); a prepared Dataset's baked-in semantics win.
	NullSemantics NullSemantics
	// EfficiencyThreshold is HyFD's only tuning parameter (§10.5); 0 means
	// the paper's default of 0.01. It controls both when sampling is
	// considered exhausted and when validation hands control back.
	EfficiencyThreshold float64
	// Threads is the engine-wide worker count, driving preprocessing (PLI
	// construction), the sampler, and candidate validation uniformly.
	// 1 forces single-threaded execution; any value <= 0 picks
	// runtime.GOMAXPROCS(0). Results and trace-event order are identical
	// for every thread count.
	Threads int
	// MaxLhsSize truncates results to LHSs (or UCCs) of at most this size
	// (0 = unbounded). The result is then complete up to that size.
	MaxLhsSize int
	// MemoryBudgetBytes arms the memory Guardian (§9); 0 disables it.
	MemoryBudgetBytes int
	// Observer, when non-nil, receives trace events as the run progresses
	// (see observer.go for the event vocabulary). Events are delivered
	// synchronously from the engine's coordinating goroutine.
	Observer Observer
	// Metrics, when non-nil, collects the run's quantitative telemetry
	// (comparison/validation counters, phase durations, cluster-size and
	// efficiency histograms, runtime gauges) into the registry's hyfd_*
	// instrument families; see metrics.go. Leaving it nil keeps discovery
	// completely unmetered.
	Metrics *MetricsRegistry
}

// Stats is the telemetry of one discovery run.
type Stats = core.Stats

// RankedFD is one result of a ranked (ModeRanked) run: the FD, its
// redundancy score, and its final 1-based rank. The slice a ranked run
// returns is ordered by rank; the ranking is deterministic (score
// descending, canonical FD order as tie-break) at every thread count.
type RankedFD = rank.FD

// Result bundles one Run's discoveries with its telemetry. Exactly one of
// the payload groups is populated, matching the request's Mode: FDs/Set for
// ModeFD, AFDs for ModeAFD, UCCs for ModeUCC, Ranked for ModeRanked. Stats
// is always set.
type Result struct {
	// FDs holds all discovered minimal, non-trivial FDs in canonical
	// order (ModeFD).
	FDs []FD
	// Set is the same collection as a queryable FDSet (ModeFD).
	Set *FDSet
	// AFDs holds the minimal approximate FDs with g3 error at most the
	// request's MaxError, in canonical order (ModeAFD).
	AFDs []ApproximateFD
	// UCCs holds the minimal unique column combinations in canonical order
	// (ModeUCC).
	UCCs []AttrSet
	// Ranked holds the top-k scored FDs in rank order (ModeRanked). It is
	// exactly the prefix of the full canonical cover rescored offline —
	// early termination changes the work, never the answer.
	Ranked []RankedFD
	// Dataset is the advanced snapshot an incremental run produced by
	// applying the request's Delta (ModeIncremental). Carry it — together
	// with Set — into the next incremental request to continue the chain.
	Dataset *Dataset
	// Stats reports phase switches, comparisons, validations, and whether
	// the result is complete.
	Stats *Stats
}

// Discover runs HyFD on the relation.
//
// Deprecated: Use Run with a Request instead.
func Discover(rel *Relation, opts Options) (*Result, error) {
	//hyfdvet:allow ctxflow — public no-context compat shim; Run is the primary API
	return Run(context.Background(), Request{Relation: rel, Options: opts})
}

// DiscoverContext runs HyFD on the relation under the given context.
// Cancellation checkpoints sit inside every long-running engine loop; once
// ctx is canceled or its deadline passes, the run returns promptly with an
// error wrapping ctx.Err() (test with errors.Is against context.Canceled or
// context.DeadlineExceeded).
//
// Deprecated: Use Run with a Request instead.
func DiscoverContext(ctx context.Context, rel *Relation, opts Options) (*Result, error) {
	return Run(ctx, Request{Relation: rel, Options: opts})
}

// DiscoverWith runs the named algorithm instead of HyFD.
//
// Deprecated: Use Run with a Request instead.
func DiscoverWith(algorithm string, rel *Relation, opts Options) (*Result, error) {
	//hyfdvet:allow ctxflow — public no-context compat shim; Run is the primary API
	return Run(context.Background(), Request{Relation: rel, Algorithm: algorithm, Options: opts})
}

// DiscoverWithContext runs the named algorithm under the given context; see
// Algorithms for the available names. The baselines honor NullSemantics and
// MaxLhsSize and share the engine's cancellation contract; the remaining
// options (thresholds, threads, memory budget, observer) apply only to
// "HyFD" itself. An unregistered name returns an error wrapping
// ErrUnknownAlgorithm.
//
// Deprecated: Use Run with a Request instead.
func DiscoverWithContext(ctx context.Context, algorithm string, rel *Relation, opts Options) (*Result, error) {
	return Run(ctx, Request{Relation: rel, Algorithm: algorithm, Options: opts})
}

// Dataset is an immutable, goroutine-safe preprocessing artifact: the
// relation handle together with its sorted PLIs, PLI-compressed records,
// null semantics, and resolved thread count. Produce one with Prepare and
// fan out any number of concurrent Run calls over it — HyFD, every
// baseline, approximate FDs, and UCCs all accept a Dataset, and each warm
// run yields results bit-for-bit identical to a cold run on the underlying
// relation.
type Dataset = dataset.Dataset

// Delta describes one batch of updates against a Dataset snapshot: rows to
// delete (matched by value against the snapshot) and rows to append. Apply
// it with Dataset.Apply to advance the snapshot chain, or submit it through
// Run with ModeIncremental to additionally maintain an FD result.
type Delta = dataset.Delta

// Provenance records how a delta snapshot was derived from its parent; see
// Dataset.Provenance.
type Provenance = dataset.Provenance

// PrepareOptions parameterizes Prepare. The zero value uses null=null
// semantics and one worker per available CPU.
type PrepareOptions struct {
	// NullSemantics selects ⊥=⊥ (default) or ⊥≠⊥. The choice is baked into
	// the Dataset's PLIs: every run over the Dataset uses it, and the
	// NullSemantics field of per-run Options is ignored for Dataset-based
	// calls.
	NullSemantics NullSemantics
	// Threads is the preprocessing worker count (1 = sequential, <= 0 =
	// all CPUs). The resolved count is recorded on the Dataset and becomes
	// the default worker count of runs that don't override it.
	Threads int
	// Observer, when non-nil, receives the preprocessing trace events
	// (PLIBuilt per attribute, then PreprocessingDone) exactly as a cold
	// Discover would emit them.
	Observer Observer
	// Metrics, when non-nil, collects preprocessing telemetry (PLI build
	// durations, cluster sizes) into the registry's hyfd_* families.
	Metrics *MetricsRegistry
}

// Prepare runs HyFD's preprocessing (Algorithm 1: PLI construction and
// record inversion) once over the relation and returns the immutable
// Dataset every discovery entry point can consume. Preprocessing is
// bit-for-bit deterministic for every thread count. The context is honored;
// a canceled context returns an error wrapping ctx.Err().
func Prepare(ctx context.Context, rel *Relation, opts PrepareOptions) (*Dataset, error) {
	return core.Prepare(ctx, rel, core.Config{
		NullSemantics: opts.NullSemantics,
		Threads:       opts.Threads,
		Observer:      opts.Observer,
		Metrics:       opts.Metrics,
	})
}

// DiscoverDataset runs HyFD over a prepared Dataset — a warm run that skips
// preprocessing entirely. The result is bit-for-bit identical to a cold run
// on the underlying relation at the same thread count; Stats.Warm is set
// and Stats.PreprocessingTime covers only the (near-zero) reuse overhead.
// Because the Dataset is immutable, any number of warm runs may execute
// concurrently over the same value.
//
// Deprecated: Use Run with a Request instead.
func DiscoverDataset(ctx context.Context, ds *Dataset, opts Options) (*Result, error) {
	return Run(ctx, Request{Dataset: ds, Options: opts})
}

// DiscoverDatasetWith runs the named algorithm over a prepared Dataset; see
// Algorithms for the available names. "HyFD" dispatches to the engine; the
// baselines run warm against the shared PLIs with per-run intersection
// caches, honoring MaxLhsSize. The Dataset's null semantics apply
// regardless of opts.NullSemantics. An unregistered name returns an error
// wrapping ErrUnknownAlgorithm.
//
// Deprecated: Use Run with a Request instead.
func DiscoverDatasetWith(ctx context.Context, algorithm string, ds *Dataset, opts Options) (*Result, error) {
	return Run(ctx, Request{Dataset: ds, Algorithm: algorithm, Options: opts})
}

// ApproximateFD is an approximate functional dependency with its g3 error:
// the minimum fraction of records whose removal makes the FD exact.
type ApproximateFD = afd.AFD

// ApproximateOptions parameterizes DiscoverApproximate.
//
// Deprecated: Use Run with Mode ModeAFD instead; MaxError maps onto
// Request.MaxError and the rest onto Request.Options.
type ApproximateOptions struct {
	// MaxError is the g3 threshold ε ∈ [0,1); 0 reproduces exact discovery.
	MaxError float64
	// NullSemantics selects the null comparison semantics.
	NullSemantics NullSemantics
	// MaxLhsSize bounds LHS sizes (0 = unbounded).
	MaxLhsSize int
}

// DiscoverApproximate finds all minimal approximate FDs whose g3 error does
// not exceed the threshold — the relaxation used on dirty data, where rules
// hold for almost all records (see the cleansing example).
//
// Deprecated: Use Run with Mode ModeAFD instead.
func DiscoverApproximate(rel *Relation, opts ApproximateOptions) ([]ApproximateFD, error) {
	//hyfdvet:allow ctxflow — public no-context compat shim; Run is the primary API
	result, err := Run(context.Background(), Request{
		Relation: rel,
		Mode:     ModeAFD,
		MaxError: opts.MaxError,
		Options:  Options{NullSemantics: opts.NullSemantics, MaxLhsSize: opts.MaxLhsSize},
	})
	if err != nil {
		return nil, err
	}
	return result.AFDs, nil
}

// DiscoverApproximateDataset is DiscoverApproximate over a prepared
// Dataset, reusing its PLIs instead of re-preprocessing. The Dataset's null
// semantics apply; opts.NullSemantics is ignored.
//
// Deprecated: Use Run with Mode ModeAFD instead.
func DiscoverApproximateDataset(ds *Dataset, opts ApproximateOptions) ([]ApproximateFD, error) {
	//hyfdvet:allow ctxflow — public no-context compat shim; Run is the primary API
	result, err := Run(context.Background(), Request{
		Dataset:  ds,
		Mode:     ModeAFD,
		MaxError: opts.MaxError,
		Options:  Options{MaxLhsSize: opts.MaxLhsSize},
	})
	if err != nil {
		return nil, err
	}
	return result.AFDs, nil
}

// DiscoverUCCs returns all minimal unique column combinations (candidate
// keys of the instance), the sister problem of FD discovery. maxSize
// bounds the combination size (0 = unbounded).
//
// Deprecated: Use Run with Mode ModeUCC instead.
func DiscoverUCCs(rel *Relation, ns NullSemantics, maxSize int) ([]AttrSet, error) {
	//hyfdvet:allow ctxflow — public no-context compat shim; Run is the primary API
	result, err := Run(context.Background(), Request{
		Relation: rel,
		Mode:     ModeUCC,
		Options:  Options{NullSemantics: ns, MaxLhsSize: maxSize},
	})
	if err != nil {
		return nil, err
	}
	return result.UCCs, nil
}

// DiscoverUCCsDataset is DiscoverUCCs over a prepared Dataset, reusing its
// PLIs instead of re-preprocessing. The Dataset's null semantics apply.
//
// Deprecated: Use Run with Mode ModeUCC instead.
func DiscoverUCCsDataset(ds *Dataset, maxSize int) ([]AttrSet, error) {
	//hyfdvet:allow ctxflow — public no-context compat shim; Run is the primary API
	result, err := Run(context.Background(), Request{
		Dataset: ds,
		Mode:    ModeUCC,
		Options: Options{MaxLhsSize: maxSize},
	})
	if err != nil {
		return nil, err
	}
	return result.UCCs, nil
}
