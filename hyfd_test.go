package hyfd_test

import (
	"strings"
	"testing"

	"hyfd"
)

func classCSV() string {
	return "Teacher,Subject,Room\n" +
		"Brown,Math,R1\n" +
		"Walker,Math,R2\n" +
		"Brown,English,R1\n" +
		"Miller,English,R3\n" +
		"Brown,Math,R1\n"
}

func TestPublicAPIDiscover(t *testing.T) {
	rel, err := hyfd.ReadCSV("class", strings.NewReader(classCSV()), hyfd.CSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := hyfd.Discover(rel, hyfd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FDs) == 0 || res.Set.Size() != len(res.FDs) {
		t.Fatalf("result inconsistent: %d vs %d", len(res.FDs), res.Set.Size())
	}
	if !res.Set.Contains(hyfd.FD{Lhs: hyfd.NewAttrSet(3, 0), Rhs: 2}) {
		t.Fatalf("Teacher → Room missing:\n%s", res.Set)
	}
	if res.Stats == nil || !res.Stats.Complete {
		t.Fatalf("stats = %+v", res.Stats)
	}
	// Format against the relation's column names.
	found := false
	for _, f := range res.FDs {
		if f.Format(rel) == "[Teacher] -> Room" {
			found = true
		}
	}
	if !found {
		t.Fatal("Format rendering missing [Teacher] -> Room")
	}
}

func TestAllAlgorithmsAgreeOnPublicAPI(t *testing.T) {
	rel, err := hyfd.ReadCSV("class", strings.NewReader(classCSV()), hyfd.CSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := hyfd.Discover(rel, hyfd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	algos := hyfd.Algorithms()
	if len(algos) != 8 || algos[0] != hyfd.AlgorithmHyFD {
		t.Fatalf("Algorithms() = %v", algos)
	}
	for _, name := range algos {
		got, err := hyfd.DiscoverWith(name, rel, hyfd.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.Set.Equal(want.Set) {
			t.Fatalf("%s disagrees with HyFD:\nmissing: %v\nextra: %v",
				name, want.Set.Diff(got.Set), got.Set.Diff(want.Set))
		}
	}
}

func TestDiscoverWithUnknownAlgorithm(t *testing.T) {
	rel := hyfd.NewRelation("r", []string{"A"})
	if _, err := hyfd.DiscoverWith("NoSuchAlgo", rel, hyfd.Options{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestDiscoverApproximatePublicAPI(t *testing.T) {
	rel := hyfd.NewRelation("addr", []string{"Zip", "City"})
	for i := 0; i < 19; i++ {
		rel.AppendRow([]string{"14482", "Potsdam"})
		rel.AppendRow([]string{"10115", "Berlin"})
	}
	rel.AppendRow([]string{"14482", "Typo"})
	rel.AppendRow([]string{"10115", "Typo2"})
	afds, err := hyfd.DiscoverApproximate(rel, hyfd.ApproximateOptions{MaxError: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range afds {
		if a.Rhs == 1 && a.Lhs.Test(0) && a.Error > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("approximate Zip→City missing: %v", afds)
	}
}

func TestDiscoverUCCsPublicAPI(t *testing.T) {
	rel := hyfd.NewRelation("k", []string{"ID", "X"})
	rel.AppendRow([]string{"1", "a"})
	rel.AppendRow([]string{"2", "a"})
	rel.AppendRow([]string{"3", "b"})
	uccs, err := hyfd.DiscoverUCCs(rel, hyfd.NullEqualsNull, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(uccs) != 1 || !uccs[0].Equal(hyfd.NewAttrSet(2, 0)) {
		t.Fatalf("UCCs = %v", uccs)
	}
}
