// Package afd extends the repository with approximate functional
// dependency discovery — the relaxation the HyFD paper cites as adjacent
// work (§2, Huhtala et al.'s approximate dependencies). An FD X → A holds
// approximately with error g3 when removing a g3-fraction of the records
// makes it exact; dirty data that almost satisfies a rule is the primary
// use case (cleansing, §1).
package afd

import (
	"context"
	"fmt"
	"sort"

	"hyfd/internal/bitset"
	"hyfd/internal/dataset"
	"hyfd/internal/pli"
	"hyfd/internal/relation"
)

// AFD is an approximate functional dependency with its g3 error.
type AFD struct {
	Lhs   bitset.Set
	Rhs   int
	Error float64
}

// String renders the AFD with its error.
func (a AFD) String() string {
	return fmt.Sprintf("%s -> %d (g3=%.4f)", a.Lhs.String(), a.Rhs, a.Error)
}

// G3 computes the g3 error of lhs → rhs on the indexed relation: the
// minimum fraction of records whose removal makes the FD exact. The
// computation walks the clusters of the LHS partition and keeps, per
// cluster, the most frequent RHS value.
func G3(ix *pli.Index, cache *pli.Cache, lhs bitset.Set, rhs int) float64 {
	if ix.NumRows == 0 {
		return 0
	}
	part := cache.Partition(lhs)
	// Records outside any cluster are unique in the LHS: they can never
	// violate. Within a cluster, all but the most frequent RHS value must
	// be removed.
	violations := 0
	counts := make(map[int32]int)
	for _, cluster := range part.Clusters {
		clear(counts)
		maxCount := 0
		singles := 0
		for _, rec := range cluster {
			cid := ix.Records[rec][rhs]
			if cid == pli.Singleton {
				singles++ // a unique RHS value: a group of size 1
				continue
			}
			counts[cid]++
			if counts[cid] > maxCount {
				maxCount = counts[cid]
			}
		}
		if singles > 0 && maxCount == 0 {
			maxCount = 1
		}
		violations += len(cluster) - maxCount
	}
	return float64(violations) / float64(ix.NumRows)
}

// Options parameterizes approximate discovery.
type Options struct {
	// MaxError is the g3 threshold ε: report X → A iff g3(X→A) ≤ ε.
	MaxError float64
	// NullSemantics selects the null comparison semantics.
	NullSemantics relation.NullSemantics
	// MaxLhs bounds the LHS size (0 = unbounded). Approximate FD sets grow
	// quickly on dirty data; a bound keeps wide schemas tractable.
	MaxLhs int
}

// Discover finds all minimal approximate FDs of the relation: X → A with
// g3 ≤ ε such that no proper subset of X satisfies the threshold. Validity
// is upward-closed in the LHS (adding attributes never increases g3), so a
// level-wise search with subset pruning enumerates exactly the minimal
// ones.
func Discover(rel *relation.Relation, opts Options) ([]AFD, error) {
	//hyfdvet:allow ctxflow — no-context compat shim; DiscoverDataset is the context-free primary path
	ds, err := dataset.Prepare(context.Background(), rel, dataset.Options{
		NullSemantics: opts.NullSemantics,
		Threads:       1,
	})
	if err != nil {
		return nil, err
	}
	return DiscoverDataset(ds, opts)
}

// DiscoverDataset is Discover over an already-prepared Dataset: the shared
// PLIs are only read, so concurrent calls over one Dataset are race-clean.
// opts.NullSemantics is ignored — the dataset's baked-in semantics apply.
func DiscoverDataset(ds *dataset.Dataset, opts Options) ([]AFD, error) {
	//hyfdvet:allow ctxflow — no-context compat shim; DiscoverDatasetContext is the primary path
	return DiscoverDatasetContext(context.Background(), ds, opts)
}

// DiscoverDatasetContext is DiscoverDataset under a caller context.
// Cancellation is checked once per lattice level and RHS attribute; a
// canceled context returns an error wrapping ctx.Err() promptly instead of
// finishing the sweep.
func DiscoverDatasetContext(ctx context.Context, ds *dataset.Dataset, opts Options) ([]AFD, error) {
	m := ds.NumCols()
	if m == 0 {
		return nil, nil
	}
	maxLhs := opts.MaxLhs
	if maxLhs <= 0 || maxLhs > m-1 {
		maxLhs = m - 1
	}
	ix := ds.Index()
	cache := ds.NewCache()

	var out []AFD
	for rhs := 0; rhs < m; rhs++ {
		var found []bitset.Set
		level := []bitset.Set{bitset.New(m)}
		for len(level) > 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("afd: discovery aborted: %w", err)
			}
			var next []bitset.Set
			seen := make(map[string]struct{})
			for _, lhs := range level {
				dominated := false
				for _, g := range found {
					if g.IsSubsetOf(lhs) {
						dominated = true
						break
					}
				}
				if dominated {
					continue
				}
				if g3 := G3(ix, cache, lhs, rhs); g3 <= opts.MaxError {
					found = append(found, lhs)
					out = append(out, AFD{Lhs: lhs, Rhs: rhs, Error: g3})
					continue
				}
				if lhs.Cardinality() >= maxLhs {
					continue
				}
				for a := 0; a < m; a++ {
					if a == rhs || lhs.Test(a) {
						continue
					}
					sp := lhs.With(a)
					if _, dup := seen[sp.Key()]; dup {
						continue
					}
					seen[sp.Key()] = struct{}{}
					next = append(next, sp)
				}
			}
			level = next
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rhs != out[j].Rhs {
			return out[i].Rhs < out[j].Rhs
		}
		ci, cj := out[i].Lhs.Cardinality(), out[j].Lhs.Cardinality()
		if ci != cj {
			return ci < cj
		}
		return out[i].Lhs.Key() < out[j].Lhs.Key()
	})
	return out, nil
}
