package afd

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"hyfd/internal/bitset"
	"hyfd/internal/fd"
	"hyfd/internal/pli"
	"hyfd/internal/relation"
)

func zipCity(dirtyRows int) *relation.Relation {
	rel := relation.New("addr", []string{"Zip", "City"})
	for i := 0; i < 20; i++ {
		rel.AppendRow([]string{"14482", "Potsdam"})
	}
	for i := 0; i < 20; i++ {
		rel.AppendRow([]string{"10115", "Berlin"})
	}
	for i := 0; i < dirtyRows; i++ {
		rel.AppendRow([]string{"14482", "Berlin"}) // violations
	}
	return rel
}

func TestG3(t *testing.T) {
	rel := zipCity(4) // 44 rows, 4 dirty
	ix := pli.NewIndex(rel, relation.NullEqualsNull)
	cache := pli.NewCache(ix.Plis, ix.NumRows)
	g3 := G3(ix, cache, bitset.FromIndices(2, 0), 1)
	want := 4.0 / 44.0
	if g3 < want-1e-9 || g3 > want+1e-9 {
		t.Fatalf("g3 = %v, want %v", g3, want)
	}
	// Exact FD has zero error: City -> Zip is violated too (Berlin maps to
	// two zips), so check a trivial-ish exact case instead.
	clean := zipCity(0)
	ix = pli.NewIndex(clean, relation.NullEqualsNull)
	cache = pli.NewCache(ix.Plis, ix.NumRows)
	if g := G3(ix, cache, bitset.FromIndices(2, 0), 1); g != 0 {
		t.Fatalf("g3 of exact FD = %v", g)
	}
	// ∅ → City on the clean data: best constant covers 20 of 40 rows.
	if g := G3(ix, cache, bitset.New(2), 1); g != 0.5 {
		t.Fatalf("g3(∅→City) = %v, want 0.5", g)
	}
}

// naiveG3 recomputes g3 by grouping raw rows.
func naiveG3(rel *relation.Relation, lhs bitset.Set, rhs int) float64 {
	if rel.NumRows() == 0 {
		return 0
	}
	groups := make(map[string]map[string]int)
	attrs := lhs.Indices()
	for _, row := range rel.Rows {
		key := ""
		for _, a := range attrs {
			key += row[a] + "\x01"
		}
		if groups[key] == nil {
			groups[key] = make(map[string]int)
		}
		groups[key][row[rhs]]++
	}
	keep := 0
	for _, g := range groups {
		best := 0
		for _, c := range g {
			if c > best {
				best = c
			}
		}
		keep += best
	}
	return float64(rel.NumRows()-keep) / float64(rel.NumRows())
}

func TestQuickG3MatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cols := 2 + r.Intn(4)
		rows := 1 + r.Intn(50)
		names := make([]string, cols)
		for i := range names {
			names[i] = "c" + strconv.Itoa(i)
		}
		rel := relation.New("rnd", names)
		for i := 0; i < rows; i++ {
			row := make([]string, cols)
			for j := range row {
				row[j] = strconv.Itoa(r.Intn(4))
			}
			rel.AppendRow(row)
		}
		ix := pli.NewIndex(rel, relation.NullEqualsNull)
		cache := pli.NewCache(ix.Plis, ix.NumRows)
		for trial := 0; trial < 8; trial++ {
			lhs := bitset.New(cols)
			for a := 0; a < cols; a++ {
				if r.Intn(3) == 0 {
					lhs.Set(a)
				}
			}
			rhs := r.Intn(cols)
			if lhs.Test(rhs) {
				continue
			}
			got := G3(ix, cache, lhs, rhs)
			want := naiveG3(rel, lhs, rhs)
			if got < want-1e-9 || got > want+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscoverZeroErrorEqualsExact(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		cols := 2 + r.Intn(3)
		rel := relation.New("rnd", make([]string, cols))
		for i := range rel.Columns {
			rel.Columns[i] = "c" + strconv.Itoa(i)
		}
		for i := 0; i < 20+r.Intn(30); i++ {
			row := make([]string, cols)
			for j := range row {
				row[j] = strconv.Itoa(r.Intn(3))
			}
			rel.AppendRow(row)
		}
		afds, err := Discover(rel, Options{MaxError: 0})
		if err != nil {
			t.Fatal(err)
		}
		want := fd.BruteForce(rel, relation.NullEqualsNull)
		got := fd.NewSet(cols)
		for _, a := range afds {
			if a.Error != 0 {
				t.Fatalf("zero-threshold discovery returned error %v", a.Error)
			}
			got.Add(fd.FD{Lhs: a.Lhs, Rhs: a.Rhs})
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: ε=0 AFDs differ from exact FDs:\nmissing: %v\nextra: %v",
				trial, want.Diff(got), got.Diff(want))
		}
	}
}

func TestDiscoverTolerantThreshold(t *testing.T) {
	rel := zipCity(4) // Zip→City violated by 4/44 ≈ 9 %
	exact, err := Discover(rel, Options{MaxError: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range exact {
		if a.Lhs.Equal(bitset.FromIndices(2, 0)) && a.Rhs == 1 {
			t.Fatal("Zip→City should not be exact on dirty data")
		}
	}
	loose, err := Discover(rel, Options{MaxError: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range loose {
		if a.Lhs.Equal(bitset.FromIndices(2, 0)) && a.Rhs == 1 {
			found = true
			if a.Error <= 0 || a.Error > 0.1 {
				t.Fatalf("unexpected error %v", a.Error)
			}
		}
	}
	if !found {
		t.Fatalf("Zip→City not found at ε=0.1: %v", loose)
	}
}

func TestDiscoverMinimality(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	rel := relation.New("rnd", []string{"a", "b", "c", "d"})
	for i := 0; i < 60; i++ {
		rel.AppendRow([]string{
			strconv.Itoa(r.Intn(3)), strconv.Itoa(r.Intn(3)),
			strconv.Itoa(r.Intn(3)), strconv.Itoa(r.Intn(3)),
		})
	}
	afds, err := Discover(rel, Options{MaxError: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ix := pli.NewIndex(rel, relation.NullEqualsNull)
	cache := pli.NewCache(ix.Plis, ix.NumRows)
	for _, a := range afds {
		if G3(ix, cache, a.Lhs, a.Rhs) > 0.05 {
			t.Fatalf("reported AFD %v exceeds threshold", a)
		}
		a.Lhs.ForEach(func(x int) bool {
			if G3(ix, cache, a.Lhs.Without(x), a.Rhs) <= 0.05 {
				t.Fatalf("AFD %v not minimal (drop %d)", a, x)
			}
			return true
		})
	}
}

func TestDiscoverMaxLhs(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	rel := relation.New("rnd", []string{"a", "b", "c", "d", "e"})
	for i := 0; i < 40; i++ {
		row := make([]string, 5)
		for j := range row {
			row[j] = strconv.Itoa(r.Intn(2))
		}
		rel.AppendRow(row)
	}
	afds, err := Discover(rel, Options{MaxError: 0, MaxLhs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range afds {
		if a.Lhs.Cardinality() > 2 {
			t.Fatalf("AFD %v exceeds MaxLhs", a)
		}
	}
}

func TestDiscoverEdgeCases(t *testing.T) {
	if afds, err := Discover(relation.New("z", nil), Options{}); err != nil || afds != nil {
		t.Fatalf("zero-column: %v %v", afds, err)
	}
	bad := relation.New("d", []string{"A", "A"})
	if _, err := Discover(bad, Options{}); err == nil {
		t.Fatal("invalid relation accepted")
	}
}
