// Package agreeset computes the agree sets of a relation: for each record
// pair, the set of attributes on which the two records share a value.
// Dep-Miner and FastFDs derive all FDs from (the complements of) these
// sets. Pairs are enumerated through PLI clusters — only records that
// co-occur in at least one cluster can agree on anything — and the empty
// agree set is added exactly when some record pair co-occurs nowhere.
package agreeset

import (
	"context"

	"hyfd/internal/bitset"
	"hyfd/internal/pli"
)

// cancelStride bounds how many record pairs may pass between two context
// checks; the pair enumeration is the O(n²) heart of the difference-set
// family, so it carries its own checkpoints.
const cancelStride = 4096

// Compute returns the distinct agree sets of all record pairs of the
// indexed relation. The context is checked every cancelStride pairs; a
// canceled computation returns ctx.Err() promptly.
func Compute(ctx context.Context, ix *pli.Index) ([]bitset.Set, error) {
	n := int64(ix.NumRows)
	totalPairs := n * (n - 1) / 2

	seenPairs := make(map[int64]struct{})
	seenSets := make(map[string]struct{})
	var out []bitset.Set

	addPair := func(a, b int32) {
		if a > b {
			a, b = b, a
		}
		pk := int64(a)<<32 | int64(b)
		if _, dup := seenPairs[pk]; dup {
			return
		}
		seenPairs[pk] = struct{}{}
		ra, rb := ix.Records[a], ix.Records[b]
		agree := bitset.New(ix.NumCols)
		for attr := 0; attr < ix.NumCols; attr++ {
			if ra[attr] != pli.Singleton && ra[attr] == rb[attr] {
				agree.Set(attr)
			}
		}
		key := agree.Key()
		if _, dup := seenSets[key]; dup {
			return
		}
		seenSets[key] = struct{}{}
		out = append(out, agree)
	}

	var pairs, nextCheck int64
	for _, p := range ix.Plis {
		for _, cluster := range p.Clusters {
			for i := 0; i < len(cluster); i++ {
				if pairs >= nextCheck {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					nextCheck = pairs + cancelStride
				}
				pairs += int64(len(cluster) - i - 1)
				for j := i + 1; j < len(cluster); j++ {
					addPair(cluster[i], cluster[j])
				}
			}
		}
	}

	// Pairs that co-occur in no cluster agree on nothing; their agree set
	// is ∅ and must be part of the result if any such pair exists.
	if int64(len(seenPairs)) < totalPairs {
		empty := bitset.New(ix.NumCols)
		if _, dup := seenSets[empty.Key()]; !dup {
			out = append(out, empty)
		}
	}
	return out, nil
}

// DifferenceSets returns the complements of the agree sets: the attribute
// sets in which some record pair disagrees everywhere inside the set and
// agrees everywhere outside it. FastFDs derives covers from these.
func DifferenceSets(numAttrs int, agreeSets []bitset.Set) []bitset.Set {
	out := make([]bitset.Set, len(agreeSets))
	for i, a := range agreeSets {
		out[i] = a.Flip()
	}
	return out
}

// Maximize keeps only the ⊆-maximal sets of the collection.
func Maximize(sets []bitset.Set) []bitset.Set {
	var out []bitset.Set
	for i, s := range sets {
		maximal := true
		for j, t := range sets {
			if i != j && (s.IsProperSubsetOf(t) || (i > j && s.Equal(t))) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, s)
		}
	}
	return out
}

// Minimize keeps only the ⊆-minimal sets of the collection.
func Minimize(sets []bitset.Set) []bitset.Set {
	var out []bitset.Set
	for i, s := range sets {
		minimal := true
		for j, t := range sets {
			if i != j && (t.IsProperSubsetOf(s) || (i > j && s.Equal(t))) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, s)
		}
	}
	return out
}
