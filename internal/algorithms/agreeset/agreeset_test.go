package agreeset

import (
	"context"
	"errors"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"hyfd/internal/bitset"
	"hyfd/internal/pli"
	"hyfd/internal/relation"
)

func index(rows [][]string, cols int) *pli.Index {
	names := make([]string, cols)
	for i := range names {
		names[i] = "c" + strconv.Itoa(i)
	}
	rel := relation.New("t", names)
	for _, r := range rows {
		rel.AppendRow(r)
	}
	return pli.NewIndex(rel, relation.NullEqualsNull)
}

// compute runs Compute under a background context, failing the test on
// error.
func compute(tb testing.TB, ix *pli.Index) []bitset.Set {
	tb.Helper()
	out, err := Compute(context.Background(), ix)
	if err != nil {
		tb.Fatal(err)
	}
	return out
}

// naiveAgreeSets computes the distinct agree sets by comparing all pairs of
// raw rows.
func naiveAgreeSets(rows [][]string, cols int) map[string]bool {
	out := make(map[string]bool)
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			s := bitset.New(cols)
			for a := 0; a < cols; a++ {
				if rows[i][a] == rows[j][a] {
					s.Set(a)
				}
			}
			out[s.Key()] = true
		}
	}
	return out
}

func TestComputeSimple(t *testing.T) {
	rows := [][]string{
		{"1", "2", "3"},
		{"1", "4", "5"},
		{"6", "4", "3"},
	}
	got := compute(t, index(rows, 3))
	want := naiveAgreeSets(rows, 3)
	if len(got) != len(want) {
		t.Fatalf("got %d agree sets, want %d: %v", len(got), len(want), got)
	}
	for _, s := range got {
		if !want[s.Key()] {
			t.Fatalf("spurious agree set %v", s)
		}
	}
}

func TestComputeEmptyAgreeSetDetected(t *testing.T) {
	// Rows sharing nothing: the empty agree set must be present.
	rows := [][]string{
		{"1", "2"},
		{"3", "4"},
	}
	got := compute(t, index(rows, 2))
	if len(got) != 1 || !got[0].IsEmpty() {
		t.Fatalf("agree sets = %v, want only ∅", got)
	}
}

func TestComputeNoPairs(t *testing.T) {
	if got := compute(t, index(nil, 2)); len(got) != 0 {
		t.Fatalf("agree sets of empty relation = %v", got)
	}
	if got := compute(t, index([][]string{{"1", "2"}}, 2)); len(got) != 0 {
		t.Fatalf("agree sets of single row = %v", got)
	}
}

func TestQuickComputeMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := make([][]string, 2+r.Intn(30))
		cols := 2 + r.Intn(4)
		for i := range rows {
			row := make([]string, cols)
			for j := range row {
				row[j] = strconv.Itoa(r.Intn(4))
			}
			rows[i] = row
		}
		got, err := Compute(context.Background(), index(rows, cols))
		if err != nil {
			return false
		}
		want := naiveAgreeSets(rows, cols)
		if len(got) != len(want) {
			return false
		}
		for _, s := range got {
			if !want[s.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeCanceledContext(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	rows := make([][]string, 80)
	for i := range rows {
		rows[i] = []string{strconv.Itoa(r.Intn(3)), strconv.Itoa(r.Intn(4))}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Compute(ctx, index(rows, 2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDifferenceSets(t *testing.T) {
	ag := []bitset.Set{bitset.FromIndices(3, 0)}
	diff := DifferenceSets(3, ag)
	if len(diff) != 1 || !diff[0].Equal(bitset.FromIndices(3, 1, 2)) {
		t.Fatalf("diff = %v", diff)
	}
}

func TestMaximizeMinimize(t *testing.T) {
	sets := []bitset.Set{
		bitset.FromIndices(4, 0),
		bitset.FromIndices(4, 0, 1),
		bitset.FromIndices(4, 2),
		bitset.FromIndices(4, 0, 1), // duplicate
	}
	maxed := Maximize(sets)
	if len(maxed) != 2 {
		t.Fatalf("Maximize = %v", maxed)
	}
	mined := Minimize(sets)
	if len(mined) != 2 {
		t.Fatalf("Minimize = %v", mined)
	}
	for _, s := range mined {
		if s.Cardinality() > 1 {
			t.Fatalf("non-minimal set in Minimize output: %v", s)
		}
	}
}
