// Package algorithms hosts the seven state-of-the-art FD discovery
// baselines the HyFD paper evaluates against (§2, §10): the lattice
// traversal family (TANE, FUN, FD_Mine, DFD), the difference-/agree-set
// family (Dep-Miner, FastFDs) and the dependency induction family (FDEP).
// Each lives in its own subpackage and implements the same contract:
// discover all minimal, non-trivial FDs of a relation, honoring the
// caller's context (cancellation checkpoints sit inside every long-running
// loop) and the shared Config.
package algorithms

import (
	"context"
	"fmt"

	"hyfd/internal/fd"
	"hyfd/internal/relation"
)

// Config carries the cross-algorithm discovery parameters. The zero value
// selects null=null semantics and unbounded LHS sizes.
type Config struct {
	// NullSemantics selects ⊥=⊥ (default) or ⊥≠⊥ comparisons.
	NullSemantics relation.NullSemantics
	// MaxLhsSize bounds result LHS cardinality (0 = unbounded). The result
	// is then exactly the minimal FDs with |LHS| ≤ MaxLhsSize: a truncation
	// of the complete result, never an approximation of it.
	MaxLhsSize int
}

// Algorithm is the common contract of all FD discovery implementations.
type Algorithm interface {
	// Name returns the algorithm's canonical name as used in the paper.
	Name() string
	// Discover returns all minimal, non-trivial FDs of the relation,
	// subject to cfg. Implementations check ctx at their cancellation
	// checkpoints and return an error wrapping ctx.Err() promptly once the
	// context is canceled or its deadline passes.
	Discover(ctx context.Context, rel *relation.Relation, cfg Config) (*fd.Set, error)
}

// Canceled converts a context cancellation into the error contract of
// Algorithm.Discover: nil while the context is live, otherwise an error
// wrapping ctx.Err(). Baselines call it at every checkpoint.
func Canceled(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%s: discovery interrupted: %w", name, err)
	}
	return nil
}

// Truncate returns the subset of the FDs whose LHS has at most max
// attributes; max <= 0 returns the set unchanged. Minimal FDs within the
// bound are unaffected by dropping larger ones, so the truncation is
// complete up to max.
func Truncate(set *fd.Set, max int) *fd.Set {
	if max <= 0 {
		return set
	}
	out := fd.NewSet(set.Universe())
	for _, f := range set.All() {
		if f.Lhs.Cardinality() <= max {
			out.Add(f)
		}
	}
	return out
}
