// Package algorithms hosts the seven state-of-the-art FD discovery
// baselines the HyFD paper evaluates against (§2, §10): the lattice
// traversal family (TANE, FUN, FD_Mine, DFD), the difference-/agree-set
// family (Dep-Miner, FastFDs) and the dependency induction family (FDEP).
// Each lives in its own subpackage and implements the same contract:
// discover all minimal, non-trivial FDs of a prepared Dataset, honoring the
// caller's context (cancellation checkpoints sit inside every long-running
// loop) and the shared Config.
//
// All baselines consume the immutable dataset.Dataset artifact instead of
// re-running preprocessing themselves: the shared PLIs and compressed
// records are read-only, and per-run mutable state (partition caches,
// intersectors) is created fresh inside every Discover call, so concurrent
// runs over one Dataset are race-clean. Callers holding only a raw relation
// use the DiscoverRelation shim.
package algorithms

import (
	"context"
	"errors"
	"fmt"

	"hyfd/internal/dataset"
	"hyfd/internal/fd"
	"hyfd/internal/relation"
)

// Config carries the cross-algorithm discovery parameters. The zero value
// selects null=null semantics and unbounded LHS sizes.
type Config struct {
	// NullSemantics selects ⊥=⊥ (default) or ⊥≠⊥ comparisons. It only
	// applies when preprocessing runs (DiscoverRelation); Dataset-based
	// Discover calls always use the semantics the PLIs were built under.
	NullSemantics relation.NullSemantics
	// MaxLhsSize bounds result LHS cardinality (0 = unbounded). The result
	// is then exactly the minimal FDs with |LHS| ≤ MaxLhsSize: a truncation
	// of the complete result, never an approximation of it.
	MaxLhsSize int
}

// Algorithm is the common contract of all FD discovery implementations.
// Implementations are stateless values: all per-run state lives inside
// Discover, so one Algorithm instance may serve concurrent runs.
type Algorithm interface {
	// Name returns the algorithm's canonical name as used in the paper.
	Name() string
	// Discover returns all minimal, non-trivial FDs of the prepared
	// dataset, subject to cfg. The dataset's PLIs and records are shared
	// read-only state and must not be mutated. Implementations check ctx
	// at their cancellation checkpoints and return an error wrapping
	// ctx.Err() promptly once the context is canceled or its deadline
	// passes.
	Discover(ctx context.Context, ds *dataset.Dataset, cfg Config) (*fd.Set, error)
}

// DiscoverRelation runs alg on a raw relation by preparing a throwaway
// Dataset first — the pre-Dataset behavior of every baseline. Preprocessing
// runs single-threaded, matching the historical sequential builds of the
// baselines, under cfg.NullSemantics.
func DiscoverRelation(ctx context.Context, alg Algorithm, rel *relation.Relation, cfg Config) (*fd.Set, error) {
	if alg == nil {
		return nil, errors.New("algorithms: nil algorithm")
	}
	ds, err := dataset.Prepare(ctx, rel, dataset.Options{
		NullSemantics: cfg.NullSemantics,
		Threads:       1,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", alg.Name(), err)
	}
	return alg.Discover(ctx, ds, cfg)
}

// Canceled converts a context cancellation into the error contract of
// Algorithm.Discover: nil while the context is live, otherwise an error
// wrapping ctx.Err(). Baselines call it at every checkpoint.
func Canceled(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%s: discovery interrupted: %w", name, err)
	}
	return nil
}

// Truncate returns the subset of the FDs whose LHS has at most max
// attributes; max <= 0 returns the set unchanged. Minimal FDs within the
// bound are unaffected by dropping larger ones, so the truncation is
// complete up to max.
func Truncate(set *fd.Set, max int) *fd.Set {
	if max <= 0 {
		return set
	}
	out := fd.NewSet(set.Universe())
	for _, f := range set.All() {
		if f.Lhs.Cardinality() <= max {
			out.Add(f)
		}
	}
	return out
}
