// Package algorithms hosts the seven state-of-the-art FD discovery
// baselines the HyFD paper evaluates against (§2, §10): the lattice
// traversal family (TANE, FUN, FD_Mine, DFD), the difference-/agree-set
// family (Dep-Miner, FastFDs) and the dependency induction family (FDEP).
// Each lives in its own subpackage and implements the same contract:
// discover all minimal, non-trivial FDs of a relation.
package algorithms

import (
	"hyfd/internal/fd"
	"hyfd/internal/relation"
)

// Algorithm is the common contract of all FD discovery implementations.
type Algorithm interface {
	// Name returns the algorithm's canonical name as used in the paper.
	Name() string
	// Discover returns all minimal, non-trivial FDs of the relation.
	Discover(rel *relation.Relation, ns relation.NullSemantics) (*fd.Set, error)
}
