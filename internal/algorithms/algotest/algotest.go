// Package algotest provides the shared conformance suite every FD
// discovery algorithm in this repository must pass: equality with the
// brute-force reference on fixed corner cases and on randomized relations,
// under both null semantics. One call in each algorithm's test file runs
// the whole battery.
package algotest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"hyfd/internal/algorithms"
	"hyfd/internal/dataset"
	"hyfd/internal/fd"
	"hyfd/internal/relation"
)

// RandomRelation generates a random relation for conformance testing.
func RandomRelation(r *rand.Rand, rows, cols, domain int) *relation.Relation {
	names := make([]string, cols)
	for i := range names {
		names[i] = "c" + strconv.Itoa(i)
	}
	rel := relation.New("rnd", names)
	for i := 0; i < rows; i++ {
		row := make([]string, cols)
		for j := range row {
			row[j] = strconv.Itoa(r.Intn(domain))
		}
		rel.AppendRow(row)
	}
	return rel
}

// ClassRelation returns the paper's running example extended by a Room
// column.
func ClassRelation() *relation.Relation {
	rel := relation.New("class", []string{"Teacher", "Subject", "Room"})
	rel.AppendRow([]string{"Brown", "Math", "R1"})
	rel.AppendRow([]string{"Walker", "Math", "R2"})
	rel.AppendRow([]string{"Brown", "English", "R1"})
	rel.AppendRow([]string{"Miller", "English", "R3"})
	rel.AppendRow([]string{"Brown", "Math", "R1"})
	return rel
}

// check asserts the algorithm reproduces the brute-force result.
func check(t *testing.T, alg algorithms.Algorithm, rel *relation.Relation, ns relation.NullSemantics) {
	t.Helper()
	got, err := algorithms.DiscoverRelation(context.Background(), alg, rel, algorithms.Config{NullSemantics: ns})
	if err != nil {
		t.Fatalf("%s on %s: %v", alg.Name(), rel.Name, err)
	}
	want := fd.BruteForce(rel, ns)
	if !got.Equal(want) {
		t.Fatalf("%s on %s (%dx%d, %v):\nmissing: %v\nextra: %v",
			alg.Name(), rel.Name, rel.NumRows(), rel.NumCols(), ns,
			want.Diff(got), got.Diff(want))
	}
}

// RunConformance executes the full conformance battery against the
// algorithm. seed varies the randomized portion deterministically.
func RunConformance(t *testing.T, alg algorithms.Algorithm, seed int64) {
	t.Helper()

	t.Run("class example", func(t *testing.T) {
		check(t, alg, ClassRelation(), relation.NullEqualsNull)
	})

	t.Run("corner cases", func(t *testing.T) {
		empty := relation.New("empty", []string{"A", "B"})
		check(t, alg, empty, relation.NullEqualsNull)

		single := relation.New("single-row", []string{"A", "B", "C"})
		single.AppendRow([]string{"1", "2", "3"})
		check(t, alg, single, relation.NullEqualsNull)

		oneCol := relation.New("one-col", []string{"A"})
		oneCol.AppendRow([]string{"x"})
		oneCol.AppendRow([]string{"y"})
		check(t, alg, oneCol, relation.NullEqualsNull)

		constant := relation.New("constant", []string{"A", "B"})
		constant.AppendRow([]string{"c", "1"})
		constant.AppendRow([]string{"c", "2"})
		constant.AppendRow([]string{"c", "1"})
		check(t, alg, constant, relation.NullEqualsNull)

		dup := relation.New("duplicates", []string{"A", "B", "C"})
		for i := 0; i < 4; i++ {
			dup.AppendRow([]string{"1", "2", "3"})
			dup.AppendRow([]string{"1", "2", "4"})
			dup.AppendRow([]string{"2", "2", "4"})
		}
		check(t, alg, dup, relation.NullEqualsNull)

		key := relation.New("keyed", []string{"ID", "X", "Y"})
		for i := 0; i < 12; i++ {
			key.AppendRow([]string{strconv.Itoa(i), strconv.Itoa(i % 3), strconv.Itoa(i % 4)})
		}
		check(t, alg, key, relation.NullEqualsNull)
	})

	t.Run("null semantics", func(t *testing.T) {
		rel := relation.New("nulls", []string{"A", "B", "C"})
		rel.AppendRow([]string{relation.Null, "1", "x"})
		rel.AppendRow([]string{relation.Null, "2", "x"})
		rel.AppendRow([]string{"v", "1", "y"})
		rel.AppendRow([]string{"v", "1", relation.Null})
		rel.AppendRow([]string{"w", "1", relation.Null})
		check(t, alg, rel, relation.NullEqualsNull)
		check(t, alg, rel, relation.NullNotEqualsNull)
	})

	t.Run("randomized", func(t *testing.T) {
		r := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 40; trial++ {
			rows := 1 + r.Intn(40)
			cols := 2 + r.Intn(4)
			domain := 1 + r.Intn(4)
			rel := RandomRelation(r, rows, cols, domain)
			rel.Name = fmt.Sprintf("rnd-%d", trial)
			ns := relation.NullEqualsNull
			if trial%4 == 3 {
				// Sprinkle nulls and use ⊥≠⊥ occasionally.
				for i := range rel.Rows {
					for j := range rel.Rows[i] {
						if r.Intn(6) == 0 {
							rel.Rows[i][j] = relation.Null
						}
					}
				}
				ns = relation.NullNotEqualsNull
			}
			check(t, alg, rel, ns)
		}
	})

	t.Run("wide sparse", func(t *testing.T) {
		r := rand.New(rand.NewSource(seed + 1))
		rel := RandomRelation(r, 12, 7, 2)
		rel.Name = "wide-sparse"
		check(t, alg, rel, relation.NullEqualsNull)
	})

	t.Run("max lhs size", func(t *testing.T) {
		r := rand.New(rand.NewSource(seed + 2))
		rel := RandomRelation(r, 20, 5, 2)
		rel.Name = "bounded-lhs"
		full := fd.BruteForce(rel, relation.NullEqualsNull)
		for max := 1; max <= 3; max++ {
			got, err := algorithms.DiscoverRelation(context.Background(), alg, rel, algorithms.Config{MaxLhsSize: max})
			if err != nil {
				t.Fatalf("%s max=%d: %v", alg.Name(), max, err)
			}
			want := algorithms.Truncate(full, max)
			if !got.Equal(want) {
				t.Fatalf("%s max=%d:\nmissing: %v\nextra: %v",
					alg.Name(), max, want.Diff(got), got.Diff(want))
			}
		}
	})

	t.Run("canceled context", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		r := rand.New(rand.NewSource(seed + 3))
		rel := RandomRelation(r, 60, 5, 3)
		rel.Name = "canceled"
		if _, err := algorithms.DiscoverRelation(ctx, alg, rel, algorithms.Config{}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", alg.Name(), err)
		}
	})

	t.Run("dataset reuse", func(t *testing.T) {
		// One Prepare, many warm runs: concurrent Discover calls over a
		// shared Dataset must reproduce the cold result bit-for-bit for
		// both null semantics. Run with -race to pin the goroutine-safety
		// half of the contract.
		r := rand.New(rand.NewSource(seed + 4))
		rel := RandomRelation(r, 30, 5, 3)
		for i := range rel.Rows {
			if r.Intn(5) == 0 {
				rel.Rows[i][r.Intn(len(rel.Rows[i]))] = relation.Null
			}
		}
		rel.Name = "warm-reuse"
		for _, ns := range []relation.NullSemantics{relation.NullEqualsNull, relation.NullNotEqualsNull} {
			cfg := algorithms.Config{NullSemantics: ns}
			want, err := algorithms.DiscoverRelation(context.Background(), alg, rel, cfg)
			if err != nil {
				t.Fatalf("%s cold (%v): %v", alg.Name(), ns, err)
			}
			ds, err := dataset.Prepare(context.Background(), rel, dataset.Options{NullSemantics: ns})
			if err != nil {
				t.Fatalf("Prepare (%v): %v", ns, err)
			}
			var wg sync.WaitGroup
			results := make([]*fd.Set, 4)
			errs := make([]error, 4)
			for g := range results {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					results[g], errs[g] = alg.Discover(context.Background(), ds, cfg)
				}(g)
			}
			wg.Wait()
			for g, err := range errs {
				if err != nil {
					t.Fatalf("%s warm run %d (%v): %v", alg.Name(), g, ns, err)
				}
				if !results[g].Equal(want) {
					t.Fatalf("%s warm run %d (%v) diverged from cold result:\nmissing: %v\nextra: %v",
						alg.Name(), g, ns, want.Diff(results[g]), results[g].Diff(want))
				}
			}
		}
	})
}
