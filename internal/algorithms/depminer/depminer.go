// Package depminer implements the Dep-Miner algorithm of Lopes, Petit &
// Lakhal (2000): compute the agree sets of all record pairs, keep for every
// attribute A the maximal agree sets not containing A, complement them, and
// derive the minimal FD left-hand sides as minimal transversals of the
// complements — enumerated level-wise as in the original. Dep-Miner scales
// with the number of attributes but, like all pair-based approaches, poorly
// with the number of records (§2 of the HyFD paper).
package depminer

import (
	"context"
	"fmt"

	"hyfd/internal/algorithms"
	"hyfd/internal/algorithms/agreeset"
	"hyfd/internal/algorithms/hitset"
	"hyfd/internal/bitset"
	"hyfd/internal/fd"
	"hyfd/internal/dataset"
)

// DepMiner discovers FDs via maximal agree sets and minimal covers.
type DepMiner struct{}

// New returns a Dep-Miner instance.
func New() *DepMiner { return &DepMiner{} }

// Name implements algorithms.Algorithm.
func (*DepMiner) Name() string { return "Dep-Miner" }

// Discover implements algorithms.Algorithm. The pair enumeration carries
// its own cancellation checkpoints (see agreeset.Compute); the transversal
// phase checks the context once per RHS attribute. A MaxLhsSize bound is
// applied to the finished result — the transversal enumeration is already
// level-wise minimal, so dropping deep LHSs afterwards loses nothing.
func (*DepMiner) Discover(ctx context.Context, ds *dataset.Dataset, cfg algorithms.Config) (*fd.Set, error) {
	m := ds.NumCols()
	out := fd.NewSet(m)
	if m == 0 {
		return out, nil
	}
	ix := ds.Index()
	ag, err := agreeset.Compute(ctx, ix)
	if err != nil {
		return nil, fmt.Errorf("Dep-Miner: discovery interrupted: %w", err)
	}

	for a := 0; a < m; a++ {
		if err := algorithms.Canceled(ctx, "Dep-Miner"); err != nil {
			return nil, err
		}
		// max(ag, A): maximal agree sets not containing A.
		var notA []bitset.Set
		for _, s := range ag {
			if !s.Test(a) {
				notA = append(notA, s)
			}
		}
		maxSets := agreeset.Maximize(notA)
		// cmax(A): complements of the maximal sets, with A removed — the
		// hypergraph whose minimal transversals are the minimal LHSs.
		cmax := make([]bitset.Set, len(maxSets))
		for i, s := range maxSets {
			cmax[i] = s.Flip().Without(a)
		}
		for _, lhs := range hitset.MinimalTransversals(m, cmax, a) {
			out.Add(fd.FD{Lhs: lhs, Rhs: a})
		}
	}
	return algorithms.Truncate(out, cfg.MaxLhsSize), nil
}
