// Package dfd implements the DFD algorithm of Abedjan, Schulze & Naumann
// (2014): for each right-hand-side attribute, a depth-first random walk
// over the lattice of candidate left-hand sides classifies nodes as
// dependencies or non-dependencies, descending from dependencies towards
// minimal ones and ascending from non-dependencies towards maximal ones,
// with subset/superset inference avoiding repeated partition work. New
// walk seeds come from the hypergraph duality between maximal
// non-dependencies and minimal dependencies, which also certifies
// completeness. Partitions are computed lazily through a shared cache.
package dfd

import (
	"context"
	"math/rand"

	"hyfd/internal/algorithms"
	"hyfd/internal/algorithms/hitset"
	"hyfd/internal/bitset"
	"hyfd/internal/dataset"
	"hyfd/internal/fd"
	"hyfd/internal/pli"
)

// DFD discovers FDs via per-RHS random lattice walks.
type DFD struct {
	seed int64
}

// New returns a DFD instance with a fixed walk seed (runs are
// deterministic for a given seed).
func New(seed int64) *DFD { return &DFD{seed: seed} }

// Name implements algorithms.Algorithm.
func (*DFD) Name() string { return "Dfd" }

// Discover implements algorithms.Algorithm. The context is checked at
// every walk step (each step may cost a partition intersection); a
// MaxLhsSize bound is applied to the finished result, since random walks
// classify lattice nodes in an order a level cutoff cannot bound.
func (d *DFD) Discover(ctx context.Context, ds *dataset.Dataset, cfg algorithms.Config) (*fd.Set, error) {
	m := ds.NumCols()
	out := fd.NewSet(m)
	if m == 0 {
		return out, nil
	}
	n := ds.NumRows()
	plis := ds.Plis()
	cache := ds.NewCache()
	//hyfdvet:allow determinism — fixed-seed rng: DFD's random walk is reproducible by construction
	rng := rand.New(rand.NewSource(d.seed))

	emptyError := 0
	if n > 1 {
		emptyError = n - 1
	}

	for rhs := 0; rhs < m; rhs++ {
		if err := algorithms.Canceled(ctx, "Dfd"); err != nil {
			return nil, err
		}
		// ∅ → rhs: constant column; the search for larger LHSs is moot.
		if pli.PartitionOf(plis[rhs]).Error() == emptyError {
			out.Add(fd.FD{Lhs: bitset.New(m), Rhs: rhs})
			continue
		}
		w := &walker{
			ctx:   ctx,
			m:     m,
			rhs:   rhs,
			cache: cache,
			rng:   rng,
			memo:  make(map[string]bool),
		}
		minDeps, err := w.findMinimalDeps()
		if err != nil {
			return nil, err
		}
		for _, lhs := range minDeps {
			out.Add(fd.FD{Lhs: lhs, Rhs: rhs})
		}
	}
	return algorithms.Truncate(out, cfg.MaxLhsSize), nil
}

// walker runs the lattice walk for one RHS attribute.
type walker struct {
	ctx   context.Context
	m     int
	rhs   int
	cache *pli.Cache
	rng   *rand.Rand

	memo       map[string]bool // exact classifications
	deps       []bitset.Set    // classified dependencies
	nonDeps    []bitset.Set    // classified non-dependencies
	minDeps    []bitset.Set
	maxNonDeps []bitset.Set
}

// isDep classifies lhs → rhs, using subset/superset inference before
// falling back to a partition-error computation.
func (w *walker) isDep(lhs bitset.Set) bool {
	key := lhs.Key()
	if v, ok := w.memo[key]; ok {
		return v
	}
	for _, d := range w.deps {
		if d.IsSubsetOf(lhs) {
			w.memo[key] = true
			return true
		}
	}
	for _, nd := range w.nonDeps {
		if lhs.IsSubsetOf(nd) {
			w.memo[key] = false
			return false
		}
	}
	var v bool
	if lhs.IsEmpty() {
		v = false // constant RHS is handled before the walk
	} else {
		lhsErr := w.cache.Partition(lhs).Error()
		xaErr := w.cache.Partition(lhs.With(w.rhs)).Error()
		v = lhsErr == xaErr
	}
	w.memo[key] = v
	if v {
		w.deps = append(w.deps, lhs)
	} else {
		w.nonDeps = append(w.nonDeps, lhs)
	}
	return v
}

// candidates returns the non-RHS attributes in random order.
func (w *walker) shuffledAttrs() []int {
	attrs := make([]int, 0, w.m-1)
	for a := 0; a < w.m; a++ {
		if a != w.rhs {
			attrs = append(attrs, a)
		}
	}
	//hyfdvet:allow determinism — fixed-seed rng: DFD's random walk is reproducible by construction
	w.rng.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
	return attrs
}

// findMinimalDeps drives walks until the duality check certifies that the
// collected minimal dependencies are complete.
func (w *walker) findMinimalDeps() ([]bitset.Set, error) {
	seeds := make([]bitset.Set, 0, w.m-1)
	for _, a := range w.shuffledAttrs() {
		seeds = append(seeds, bitset.FromIndices(w.m, a))
	}
	for len(seeds) > 0 {
		for _, seed := range seeds {
			if err := w.walk(seed); err != nil {
				return nil, err
			}
		}
		seeds = w.nextSeeds()
	}
	return w.minDeps, nil
}

// walk performs one random descent/ascent from the seed, recording a
// minimal dependency or a maximal non-dependency. It always terminates: a
// dependency node only ever moves to dependent subsets (strictly smaller),
// a non-dependency only to non-dependent supersets (strictly larger). Each
// step checks the context, since a single classification may compute
// partition intersections over the full relation.
func (w *walker) walk(node bitset.Set) error {
	for {
		if err := algorithms.Canceled(w.ctx, "Dfd"); err != nil {
			return err
		}
		if w.isDep(node) {
			// Try to descend to a dependent immediate subset.
			next, minimal := w.randomDepSubset(node)
			if minimal {
				w.recordMinDep(node)
				return nil
			}
			node = next
		} else {
			next, maximal := w.randomNonDepSuperset(node)
			if maximal {
				w.recordMaxNonDep(node)
				return nil
			}
			node = next
		}
	}
}

// randomDepSubset returns a random immediate subset that is still a
// dependency, or reports that the node is a minimal dependency.
func (w *walker) randomDepSubset(node bitset.Set) (bitset.Set, bool) {
	attrs := node.Indices()
	//hyfdvet:allow determinism — fixed-seed rng: DFD's random walk is reproducible by construction
	w.rng.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
	for _, a := range attrs {
		sub := node.Without(a)
		if w.isDep(sub) {
			return sub, false
		}
	}
	return bitset.Set{}, true
}

// randomNonDepSuperset returns a random immediate superset that is still a
// non-dependency, or reports that the node is a maximal non-dependency.
func (w *walker) randomNonDepSuperset(node bitset.Set) (bitset.Set, bool) {
	for _, a := range w.shuffledAttrs() {
		if node.Test(a) {
			continue
		}
		sup := node.With(a)
		if !w.isDep(sup) {
			return sup, false
		}
	}
	return bitset.Set{}, true
}

func (w *walker) recordMinDep(node bitset.Set) {
	for _, d := range w.minDeps {
		if d.Equal(node) {
			return
		}
	}
	w.minDeps = append(w.minDeps, node)
}

func (w *walker) recordMaxNonDep(node bitset.Set) {
	for _, d := range w.maxNonDeps {
		if d.Equal(node) {
			return
		}
	}
	w.maxNonDeps = append(w.maxNonDeps, node)
}

// nextSeeds exploits the duality: the minimal transversals of the
// complements of all maximal non-dependencies are exactly the minimal
// dependencies once the maximal non-dependencies are complete. Any
// transversal not yet recorded as a minimal dependency marks unexplored
// lattice territory and becomes a new seed.
func (w *walker) nextSeeds() []bitset.Set {
	complements := make([]bitset.Set, len(w.maxNonDeps))
	for i, nd := range w.maxNonDeps {
		complements[i] = nd.Flip().Without(w.rhs)
	}
	candidates := hitset.MinimalTransversals(w.m, complements, w.rhs)
	var seeds []bitset.Set
	for _, c := range candidates {
		known := false
		for _, d := range w.minDeps {
			if d.Equal(c) {
				known = true
				break
			}
		}
		if !known {
			seeds = append(seeds, c)
		}
	}
	return seeds
}
