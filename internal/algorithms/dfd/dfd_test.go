package dfd

import (
	"context"
	"math/rand"
	"testing"

	"hyfd/internal/algorithms"
	"hyfd/internal/algorithms/algotest"
)

func TestConformance(t *testing.T) {
	algotest.RunConformance(t, New(1), 606)
}

// TestSeedIndependence: the random walk order must never change the result.
func TestSeedIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		rel := algotest.RandomRelation(r, 30, 5, 3)
		want, err := algorithms.DiscoverRelation(context.Background(), New(0), rel, algorithms.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 5; seed++ {
			got, err := algorithms.DiscoverRelation(context.Background(), New(seed), rel, algorithms.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d seed %d: results differ:\nmissing: %v\nextra: %v",
					trial, seed, want.Diff(got), got.Diff(want))
			}
		}
	}
}
