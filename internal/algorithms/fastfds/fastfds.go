// Package fastfds implements the FastFDs algorithm of Wyss, Giannella &
// Robertson (2001): derive difference sets from agree sets, then find the
// minimal covers per right-hand-side attribute with a greedy depth-first
// search that always branches on the attribute covering the most remaining
// difference sets. Same derivation base as Dep-Miner, different cover
// search.
package fastfds

import (
	"context"
	"fmt"
	"sort"

	"hyfd/internal/algorithms"
	"hyfd/internal/algorithms/agreeset"
	"hyfd/internal/bitset"
	"hyfd/internal/fd"
	"hyfd/internal/dataset"
)

// FastFDs discovers FDs via depth-first minimal cover search.
type FastFDs struct{}

// New returns a FastFDs instance.
func New() *FastFDs { return &FastFDs{} }

// Name implements algorithms.Algorithm.
func (*FastFDs) Name() string { return "FastFDs" }

// Discover implements algorithms.Algorithm. The pair enumeration carries
// its own cancellation checkpoints (see agreeset.Compute); the DFS cover
// search checks the context once per recursive call. A MaxLhsSize bound is
// applied to the finished result, since the DFS emits covers in
// heuristic — not level — order.
func (*FastFDs) Discover(ctx context.Context, ds *dataset.Dataset, cfg algorithms.Config) (*fd.Set, error) {
	m := ds.NumCols()
	out := fd.NewSet(m)
	if m == 0 {
		return out, nil
	}
	ix := ds.Index()
	ag, err := agreeset.Compute(ctx, ix)
	if err != nil {
		return nil, fmt.Errorf("FastFDs: discovery interrupted: %w", err)
	}
	diffs := agreeset.DifferenceSets(m, ag)

	for a := 0; a < m; a++ {
		// D_A: difference sets containing A, with A removed; X → A valid
		// iff X (A ∉ X) hits every one of them. Only minimal difference
		// sets matter for covering.
		var dA []bitset.Set
		infeasible := false
		for _, d := range diffs {
			if !d.Test(a) {
				continue
			}
			rest := d.Without(a)
			if rest.IsEmpty() {
				infeasible = true // some pair disagrees only on A
				break
			}
			dA = append(dA, rest)
		}
		if infeasible {
			continue
		}
		if len(dA) == 0 {
			out.Add(fd.FD{Lhs: bitset.New(m), Rhs: a})
			continue
		}
		dA = agreeset.Minimize(dA)
		s := &search{ctx: ctx, m: m, rhs: a, diffs: dA, out: out}
		order := s.orderAttrs(dA, bitset.New(m))
		if err := s.findCovers(dA, bitset.New(m), order); err != nil {
			return nil, err
		}
	}
	return algorithms.Truncate(out, cfg.MaxLhsSize), nil
}

// search carries the per-RHS DFS state.
type search struct {
	ctx   context.Context
	m     int
	rhs   int
	diffs []bitset.Set // the full (minimized) difference set collection
	out   *fd.Set
}

// orderAttrs ranks candidate attributes by how many of the remaining
// difference sets they cover, descending, ties by ascending index — the
// FastFDs ordering heuristic.
func (s *search) orderAttrs(remaining []bitset.Set, path bitset.Set) []int {
	counts := make([]int, s.m)
	for _, d := range remaining {
		d.ForEach(func(attr int) bool {
			counts[attr]++
			return true
		})
	}
	var attrs []int
	for attr := 0; attr < s.m; attr++ {
		if attr != s.rhs && !path.Test(attr) && counts[attr] > 0 {
			attrs = append(attrs, attr)
		}
	}
	sort.Slice(attrs, func(i, j int) bool {
		if counts[attrs[i]] != counts[attrs[j]] {
			return counts[attrs[i]] > counts[attrs[j]]
		}
		return attrs[i] < attrs[j]
	})
	return attrs
}

// findCovers explores covers depth-first. remaining holds the difference
// sets not yet hit by path; order is the current ordering of candidate
// attributes (attributes after position i are the only ones considered in
// the i-th branch, which prevents duplicate enumeration).
func (s *search) findCovers(remaining []bitset.Set, path bitset.Set, order []int) error {
	if err := algorithms.Canceled(s.ctx, "FastFDs"); err != nil {
		return err
	}
	if len(remaining) == 0 {
		// path covers everything; emit only minimal covers.
		if s.isMinimalCover(path) {
			s.out.Add(fd.FD{Lhs: path, Rhs: s.rhs})
		}
		return nil
	}
	if len(order) == 0 {
		return nil // uncovered sets remain but no attributes left
	}
	for i, attr := range order {
		var rest []bitset.Set
		for _, d := range remaining {
			if !d.Test(attr) {
				rest = append(rest, d)
			}
		}
		newPath := path.With(attr)
		tail := order[i+1:]
		if len(rest) == 0 {
			if s.isMinimalCover(newPath) {
				s.out.Add(fd.FD{Lhs: newPath, Rhs: s.rhs})
			}
			continue
		}
		// Re-rank the tail by coverage of the reduced collection, keeping
		// only attributes that still cover something.
		reordered := s.reorder(tail, rest)
		if err := s.findCovers(rest, newPath, reordered); err != nil {
			return err
		}
	}
	return nil
}

// reorder keeps the tail attributes that cover at least one remaining set,
// re-sorted by the coverage heuristic.
func (s *search) reorder(tail []int, remaining []bitset.Set) []int {
	counts := make(map[int]int)
	for _, d := range remaining {
		d.ForEach(func(attr int) bool {
			counts[attr]++
			return true
		})
	}
	var attrs []int
	for _, attr := range tail {
		if counts[attr] > 0 {
			attrs = append(attrs, attr)
		}
	}
	sort.Slice(attrs, func(i, j int) bool {
		if counts[attrs[i]] != counts[attrs[j]] {
			return counts[attrs[i]] > counts[attrs[j]]
		}
		return attrs[i] < attrs[j]
	})
	return attrs
}

// isMinimalCover verifies that removing any attribute of the cover leaves
// some difference set uncovered (the FastFDs leaf check).
func (s *search) isMinimalCover(cover bitset.Set) bool {
	minimal := true
	cover.ForEach(func(attr int) bool {
		reduced := cover.Without(attr)
		for _, d := range s.diffs {
			if !reduced.Intersects(d) {
				return true // attr is necessary; try next attr
			}
		}
		minimal = false
		return false
	})
	return minimal
}
