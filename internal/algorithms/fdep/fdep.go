// Package fdep implements the FDEP algorithm of Flach & Savnik (1999), the
// dependency induction baseline of the HyFD paper: compare every record
// pair to build the complete negative cover, then specialize the positive
// cover (an FDTree) with every observed non-FD. HyFD's Phase 1 is a
// sampling variant of exactly this procedure, so the implementation shares
// the Inductor substrate — only the exhaustive O(n²) pair enumeration is
// FDEP-specific.
package fdep

import (
	"context"

	"hyfd/internal/algorithms"
	"hyfd/internal/bitset"
	"hyfd/internal/dataset"
	"hyfd/internal/fd"
	"hyfd/internal/inductor"
	"hyfd/internal/pli"
)

// cancelStride bounds how many record pairs the exhaustive comparison may
// process between two context checks.
const cancelStride = 4096

// FDEP discovers FDs via exhaustive pairwise comparison and induction.
type FDEP struct{}

// New returns an FDEP instance.
func New() *FDEP { return &FDEP{} }

// Name implements algorithms.Algorithm.
func (*FDEP) Name() string { return "Fdep" }

// Discover implements algorithms.Algorithm. The O(n²) pair enumeration
// checks the context every cancelStride pairs; a MaxLhsSize bound is pushed
// into the positive cover's FDTree so specialization never materializes
// LHSs beyond the bound (the same mechanism HyFD's Guardian uses).
func (*FDEP) Discover(ctx context.Context, ds *dataset.Dataset, cfg algorithms.Config) (*fd.Set, error) {
	m := ds.NumCols()
	if m == 0 {
		return fd.NewSet(0), nil
	}
	// The Dataset's compressed records drive the comparison: comparing
	// cluster ids is cheaper than comparing strings (the same optimization
	// HyFD applies, §10.3).
	ix := ds.Index()
	seen := make(map[string]struct{})
	var nonFds []bitset.Set
	var pairs int64
	nextCheck := int64(cancelStride)
	for i := 0; i < ix.NumRows; i++ {
		ri := ix.Records[i]
		if pairs >= nextCheck {
			if err := algorithms.Canceled(ctx, "Fdep"); err != nil {
				return nil, err
			}
			nextCheck = pairs + cancelStride
		}
		pairs += int64(ix.NumRows - i - 1)
		for j := i + 1; j < ix.NumRows; j++ {
			rj := ix.Records[j]
			agree := bitset.New(m)
			for a := 0; a < m; a++ {
				if ri[a] != pli.Singleton && ri[a] == rj[a] {
					agree.Set(a)
				}
			}
			key := agree.Key()
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			nonFds = append(nonFds, agree)
		}
	}
	if err := algorithms.Canceled(ctx, "Fdep"); err != nil {
		return nil, err
	}
	ind := inductor.New(m)
	if cfg.MaxLhsSize > 0 {
		ind.Tree().SetMaxLhs(cfg.MaxLhsSize)
	}
	ind.Update(nonFds)
	return ind.Tree().FDs(), nil
}
