// Package fdmine implements the FD_Mine algorithm of Yao, Hamilton & Butz
// (2002): a level-wise lattice traversal in the TANE family whose
// distinguishing contribution is equivalence pruning — once X → A is found,
// X and X∪{A} are equivalent, so every candidate containing X∪{A} is
// skipped (no minimal FD can have such a left-hand side). The published
// algorithm emits non-minimal FDs; as in the comparison study underlying
// the HyFD paper, the raw output is minimized before being returned.
package fdmine

import (
	"context"

	"hyfd/internal/algorithms"
	"hyfd/internal/bitset"
	"hyfd/internal/dataset"
	"hyfd/internal/fd"
	"hyfd/internal/fdtree"
	"hyfd/internal/pli"
)

// FDMine discovers FDs via level-wise traversal with equivalence pruning.
type FDMine struct{}

// New returns an FD_Mine instance.
func New() *FDMine { return &FDMine{} }

// Name implements algorithms.Algorithm.
func (*FDMine) Name() string { return "FD_Mine" }

// Discover implements algorithms.Algorithm. The context is checked once
// per lattice node. FD_Mine emits LHSs of exactly the current level's
// cardinality, so a MaxLhsSize bound stops the traversal after level
// MaxLhsSize; the post-hoc minimization only consults shallower levels and
// stays correct under the cutoff.
func (*FDMine) Discover(ctx context.Context, ds *dataset.Dataset, cfg algorithms.Config) (*fd.Set, error) {
	m := ds.NumCols()
	out := fd.NewSet(m)
	if m == 0 {
		return out, nil
	}
	n := ds.NumRows()
	plis := ds.Plis()
	inter := pli.NewIntersector(n)

	emptyError := 0
	if n > 1 {
		emptyError = n - 1
	}

	// found mirrors the discovered FDs for generalization lookups: both
	// the minimality filter and the equivalence pruning query it.
	found := fdtree.New(m)

	// ∅ → A for constant columns.
	constants := bitset.New(m)
	for a := 0; a < m; a++ {
		if pli.PartitionOf(plis[a]).Error() == emptyError {
			out.Add(fd.FD{Lhs: bitset.New(m), Rhs: a})
			found.Add(bitset.New(m), a)
			constants.Set(a)
		}
	}

	type element struct {
		attrs     bitset.Set
		partition *pli.Partition
	}

	// prunedByEquivalence reports whether x contains lhs∪{rhs} of any
	// discovered FD: then x is equivalent to a smaller set and no minimal
	// FD has x as its LHS.
	prunedByEquivalence := func(x bitset.Set) bool {
		pruned := false
		x.ForEach(func(a int) bool {
			if found.FindFdOrGeneral(x.Without(a), a) {
				pruned = true
				return false
			}
			return true
		})
		return pruned
	}

	var level []*element
	for a := 0; a < m; a++ {
		if constants.Test(a) {
			continue // equivalent to ∅
		}
		level = append(level, &element{
			attrs:     bitset.FromIndices(m, a),
			partition: pli.PartitionOf(plis[a]),
		})
	}

	levelNum := 1
	for len(level) > 0 {
		var kept []*element
		for _, el := range level {
			if err := algorithms.Canceled(ctx, "FD_Mine"); err != nil {
				return nil, err
			}
			// Closure computation: which RHSs does X determine?
			for a := 0; a < m; a++ {
				if el.attrs.Test(a) || constants.Test(a) {
					continue
				}
				if found.FindFdOrGeneral(el.attrs, a) {
					continue // derivable: a generalization already found
				}
				xa := inter.Intersect(el.partition, pli.PartitionOf(plis[a]))
				if xa.Error() == el.partition.Error() { // X → A valid
					out.Add(fd.FD{Lhs: el.attrs, Rhs: a})
					found.Add(el.attrs, a)
				}
			}
			// Key pruning: supersets of a key yield no minimal FDs.
			if el.partition.Error() == 0 {
				continue
			}
			kept = append(kept, el)
		}
		if cfg.MaxLhsSize > 0 && levelNum >= cfg.MaxLhsSize {
			break
		}

		// Generate the next level in canonical order, applying equivalence
		// pruning to every candidate.
		present := make(map[string]*element, len(kept))
		for _, el := range kept {
			present[el.attrs.Key()] = el
		}
		var next []*element
		for _, el := range kept {
			last := lastAttr(el.attrs)
			for b := last + 1; b < m; b++ {
				if constants.Test(b) {
					continue
				}
				cand := el.attrs.With(b)
				ok := true
				cand.ForEach(func(a int) bool {
					if _, exists := present[cand.Without(a).Key()]; !exists {
						ok = false
						return false
					}
					return true
				})
				if !ok || prunedByEquivalence(cand) {
					continue
				}
				next = append(next, &element{
					attrs:     cand,
					partition: inter.Intersect(el.partition, pli.PartitionOf(plis[b])),
				})
			}
		}
		level = next
		levelNum++
	}
	return out.Minimize(), nil
}

func lastAttr(s bitset.Set) int {
	last := -1
	s.ForEach(func(a int) bool { last = a; return true })
	return last
}
