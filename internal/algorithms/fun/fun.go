// Package fun implements the FUN algorithm of Novelli & Cicchetti (2001):
// a level-wise traversal restricted to free sets — attribute sets whose
// distinct-value cardinality strictly exceeds that of all their subsets.
// FDs follow from cardinality equalities |X| = |X∪A|, and the free-set
// family (downward closed) bounds the explored lattice. Cardinalities come
// from stripped partitions; intersected partitions are cached on demand.
package fun

import (
	"context"
	"sort"

	"hyfd/internal/algorithms"
	"hyfd/internal/bitset"
	"hyfd/internal/dataset"
	"hyfd/internal/fd"
)

// FUN discovers FDs via free sets and cardinality reasoning.
type FUN struct{}

// New returns a FUN instance.
func New() *FUN { return &FUN{} }

// Name implements algorithms.Algorithm.
func (*FUN) Name() string { return "Fun" }

// Discover implements algorithms.Algorithm. The context is checked once
// per free-set candidate; every FD FUN emits at level ℓ has a LHS of
// exactly ℓ attributes, so a MaxLhsSize bound simply stops the traversal
// after level MaxLhsSize.
func (*FUN) Discover(ctx context.Context, ds *dataset.Dataset, cfg algorithms.Config) (*fd.Set, error) {
	m := ds.NumCols()
	out := fd.NewSet(m)
	if m == 0 {
		return out, nil
	}
	cnt := ds.NewCache()

	// ∅ → A for constant columns; such attributes can never be the RHS of
	// another minimal FD, nor appear in a free set of size ≥ 1 usefully.
	constants := bitset.New(m)
	for a := 0; a < m; a++ {
		if cnt.Card(bitset.FromIndices(m, a)) == cnt.Card(bitset.New(m)) {
			out.Add(fd.FD{Lhs: bitset.New(m), Rhs: a})
			constants.Set(a)
		}
	}

	// validFd reports whether X → A per cardinality equality.
	validFd := func(lhs bitset.Set, a int) bool {
		return cnt.Card(lhs) == cnt.Card(lhs.With(a))
	}

	// Level-wise enumeration of free sets; the family is downward closed,
	// so apriori generation over surviving (free) sets is complete.
	free := make(map[string]bool)
	free[bitset.New(m).Key()] = true
	var level []bitset.Set
	for a := 0; a < m; a++ {
		if !constants.Test(a) {
			level = append(level, bitset.FromIndices(m, a))
		}
	}
	levelNum := 1
	for len(level) > 0 {
		var freeLevel []bitset.Set
		for _, x := range level {
			if err := algorithms.Canceled(ctx, "Fun"); err != nil {
				return nil, err
			}
			// x is free iff every immediate subset has smaller cardinality.
			isFree := true
			x.ForEach(func(a int) bool {
				if cnt.Card(x.Without(a)) == cnt.Card(x) {
					isFree = false
					return false
				}
				return true
			})
			if !isFree {
				continue
			}
			free[x.Key()] = true
			freeLevel = append(freeLevel, x)
			// Emit FDs x → a for every candidate RHS, with the minimality
			// test over immediate LHS subsets.
			for a := 0; a < m; a++ {
				if x.Test(a) || constants.Test(a) {
					continue
				}
				if !validFd(x, a) {
					continue
				}
				minimal := true
				x.ForEach(func(b int) bool {
					if validFd(x.Without(b), a) {
						minimal = false
						return false
					}
					return true
				})
				if minimal {
					out.Add(fd.FD{Lhs: x, Rhs: a})
				}
			}
		}
		if cfg.MaxLhsSize > 0 && levelNum >= cfg.MaxLhsSize {
			break
		}
		level = nextLevel(freeLevel, free, m)
		levelNum++
	}
	return out, nil
}

// nextLevel generates candidate sets one attribute larger whose every
// immediate subset is free (apriori over the free-set family).
func nextLevel(freeLevel []bitset.Set, free map[string]bool, m int) []bitset.Set {
	if len(freeLevel) == 0 {
		return nil
	}
	var next []bitset.Set
	seen := make(map[string]struct{})
	for _, x := range freeLevel {
		last := lastAttr(x)
		for b := last + 1; b < m; b++ {
			cand := x.With(b)
			key := cand.Key()
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			ok := true
			cand.ForEach(func(a int) bool {
				if !free[cand.Without(a).Key()] {
					ok = false
					return false
				}
				return true
			})
			if ok {
				next = append(next, cand)
			}
		}
	}
	sort.Slice(next, func(i, j int) bool { return next[i].Key() < next[j].Key() })
	return next
}

func lastAttr(s bitset.Set) int {
	last := -1
	s.ForEach(func(a int) bool { last = a; return true })
	return last
}
