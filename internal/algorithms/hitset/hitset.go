// Package hitset computes minimal hitting sets (transversals) of attribute
// set collections. The difference-set family of FD discovery algorithms
// reduces left-hand-side search to exactly this problem: the minimal LHSs
// of an attribute A are the minimal transversals of A's difference sets
// (Dep-Miner, FastFDs), and DFD uses transversals of complemented maximal
// non-dependencies to seed its random walks.
package hitset

import (
	"hyfd/internal/bitset"
)

// MinimalTransversals returns all minimal subsets of the n-attribute
// universe (never containing exclude, pass -1 to allow all attributes) that
// intersect every set in sets. Conventions: an empty collection has the
// single transversal ∅; a collection containing an empty set has none.
// Enumeration is level-wise in ascending-attribute canonical order.
func MinimalTransversals(n int, sets []bitset.Set, exclude int) []bitset.Set {
	for _, s := range sets {
		if s.IsEmpty() {
			return nil
		}
	}
	if len(sets) == 0 {
		return []bitset.Set{bitset.New(n)}
	}
	// Attributes usable for covers.
	usable := make([]int, 0, n)
	inAny := bitset.New(n)
	for _, s := range sets {
		inAny = inAny.Or(s)
	}
	for a := 0; a < n; a++ {
		if a != exclude && inAny.Test(a) {
			usable = append(usable, a)
		}
	}

	hits := func(x bitset.Set) bool {
		for _, s := range sets {
			if !x.Intersects(s) {
				return false
			}
		}
		return true
	}

	var found []bitset.Set
	dominated := func(x bitset.Set) bool {
		for _, f := range found {
			if f.IsSubsetOf(x) {
				return true
			}
		}
		return false
	}

	type cand struct {
		attrs bitset.Set
		last  int
	}
	level := make([]cand, 0, len(usable))
	for _, a := range usable {
		level = append(level, cand{attrs: bitset.FromIndices(n, a), last: a})
	}
	for len(level) > 0 {
		var next []cand
		for _, c := range level {
			if dominated(c.attrs) {
				continue
			}
			if hits(c.attrs) {
				found = append(found, c.attrs)
				continue
			}
			for _, b := range usable {
				if b <= c.last {
					continue
				}
				next = append(next, cand{attrs: c.attrs.With(b), last: b})
			}
		}
		level = next
	}
	return found
}
