package hitset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyfd/internal/bitset"
)

func keys(sets []bitset.Set) map[string]bool {
	m := make(map[string]bool, len(sets))
	for _, s := range sets {
		m[s.Key()] = true
	}
	return m
}

func TestConventions(t *testing.T) {
	if got := MinimalTransversals(4, nil, -1); len(got) != 1 || !got[0].IsEmpty() {
		t.Fatalf("empty collection: %v", got)
	}
	if got := MinimalTransversals(4, []bitset.Set{bitset.New(4)}, -1); got != nil {
		t.Fatalf("collection with empty set: %v", got)
	}
}

func TestSimpleCovers(t *testing.T) {
	// Sets {0,1} and {1,2}: minimal transversals are {1}, {0,2}.
	sets := []bitset.Set{
		bitset.FromIndices(4, 0, 1),
		bitset.FromIndices(4, 1, 2),
	}
	got := keys(MinimalTransversals(4, sets, -1))
	if len(got) != 2 || !got[bitset.FromIndices(4, 1).Key()] || !got[bitset.FromIndices(4, 0, 2).Key()] {
		t.Fatalf("transversals = %v", MinimalTransversals(4, sets, -1))
	}
}

func TestExclude(t *testing.T) {
	sets := []bitset.Set{
		bitset.FromIndices(4, 0, 1),
		bitset.FromIndices(4, 1, 2),
	}
	got := MinimalTransversals(4, sets, 1)
	if len(got) != 1 || !got[0].Equal(bitset.FromIndices(4, 0, 2)) {
		t.Fatalf("transversals excluding 1 = %v", got)
	}
	// Excluding an attribute can make the problem infeasible.
	lone := []bitset.Set{bitset.FromIndices(3, 2)}
	if got := MinimalTransversals(3, lone, 2); got != nil {
		t.Fatalf("infeasible exclusion returned %v", got)
	}
}

// bruteTransversals enumerates all subsets and filters minimal ones.
func bruteTransversals(n int, sets []bitset.Set, exclude int) map[string]bool {
	for _, s := range sets {
		if s.IsEmpty() {
			return nil
		}
	}
	hits := func(x bitset.Set) bool {
		for _, s := range sets {
			if !x.Intersects(s) {
				return false
			}
		}
		return true
	}
	var all []bitset.Set
	for mask := 0; mask < 1<<n; mask++ {
		if exclude >= 0 && mask&(1<<exclude) != 0 {
			continue
		}
		x := bitset.New(n)
		for a := 0; a < n; a++ {
			if mask&(1<<a) != 0 {
				x.Set(a)
			}
		}
		if hits(x) {
			all = append(all, x)
		}
	}
	out := make(map[string]bool)
	for _, x := range all {
		minimal := true
		for _, y := range all {
			if y.IsProperSubsetOf(x) {
				minimal = false
				break
			}
		}
		if minimal {
			out[x.Key()] = true
		}
	}
	return out
}

func TestQuickAgainstBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		numSets := r.Intn(7)
		var sets []bitset.Set
		for i := 0; i < numSets; i++ {
			s := bitset.New(n)
			for a := 0; a < n; a++ {
				if r.Intn(3) == 0 {
					s.Set(a)
				}
			}
			if s.IsEmpty() {
				s.Set(r.Intn(n))
			}
			sets = append(sets, s)
		}
		exclude := -1
		if r.Intn(2) == 0 {
			exclude = r.Intn(n)
		}
		got := keys(MinimalTransversals(n, sets, exclude))
		want := bruteTransversals(n, sets, exclude)
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
