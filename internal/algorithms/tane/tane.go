// Package tane implements the TANE algorithm of Huhtala et al. (1999): a
// level-wise, apriori-gen driven traversal of the attribute-set lattice
// that validates FD candidates through stripped-partition errors and prunes
// with C⁺ candidate sets and (super)key pruning. TANE is the paper's
// archetypal row-efficient baseline; its hierarchical partition
// intersections are precisely what HyFD's direct validation avoids.
package tane

import (
	"context"
	"sort"

	"hyfd/internal/algorithms"
	"hyfd/internal/bitset"
	"hyfd/internal/dataset"
	"hyfd/internal/fd"
	"hyfd/internal/pli"
)

// TANE discovers FDs via level-wise lattice traversal.
type TANE struct{}

// New returns a TANE instance.
func New() *TANE { return &TANE{} }

// Name implements algorithms.Algorithm.
func (*TANE) Name() string { return "Tane" }

// element is one lattice node of the current level: the attribute set, its
// C⁺ candidate set, and its stripped partition (the memory-heavy part that
// Table 3 of the paper attributes TANE's footprint to).
type element struct {
	attrs     bitset.Set
	cplus     bitset.Set
	partition *pli.Partition
}

// Discover implements algorithms.Algorithm. The context is checked once
// per lattice node; cancellation aborts the traversal with a wrapped
// ctx.Err(). A MaxLhsSize bound additionally cuts the traversal off after
// the level that can still contribute minimal FDs within the bound.
func (*TANE) Discover(ctx context.Context, ds *dataset.Dataset, cfg algorithms.Config) (*fd.Set, error) {
	m := ds.NumCols()
	out := fd.NewSet(m)
	if m == 0 {
		return out, nil
	}
	n := ds.NumRows()
	plis := ds.Plis()
	intersector := pli.NewIntersector(n)

	// e(∅): the empty attribute set groups all records into one cluster.
	emptyError := 0
	if n > 1 {
		emptyError = n - 1
	}
	allAttrs := bitset.New(m).Flip()

	// prevErr/prevCplus/prevPart map previous-level attribute sets to their
	// partition error, C⁺ set and partition; level ℓ only references
	// subsets that survived level ℓ-1 (apriori-gen guarantees it), except
	// for the key-pruning minimality test, which may need partitions of
	// subsets whose supersets were never generated.
	prevErr := map[string]int{bitset.New(m).Key(): emptyError}
	prevCplus := map[string]bitset.Set{bitset.New(m).Key(): allAttrs}
	prevPart := map[string]*pli.Partition{}

	// Level 1.
	level := make([]*element, 0, m)
	for a := 0; a < m; a++ {
		level = append(level, &element{
			attrs:     bitset.FromIndices(m, a),
			partition: pli.PartitionOf(plis[a]),
		})
	}

	levelNum := 1
	for len(level) > 0 {
		curErr := make(map[string]int, len(level))
		curCplus := make(map[string]bitset.Set, len(level))
		curPart := make(map[string]*pli.Partition, len(level))
		// compute_dependencies.
		for _, el := range level {
			if err := algorithms.Canceled(ctx, "Tane"); err != nil {
				return nil, err
			}
			// C⁺(X) = ∩_{A∈X} C⁺(X\A).
			cplus := allAttrs
			el.attrs.ForEach(func(a int) bool {
				cplus = cplus.And(prevCplus[el.attrs.Without(a).Key()])
				return true
			})
			el.cplus = cplus
			curErr[el.attrs.Key()] = el.partition.Error()
			curCplus[el.attrs.Key()] = cplus // mutated in place below
			curPart[el.attrs.Key()] = el.partition

			check := el.attrs.And(el.cplus)
			check.ForEach(func(a int) bool {
				// X\A → A valid iff e(X\A) = e(X).
				if prevErr[el.attrs.Without(a).Key()] == el.partition.Error() {
					out.Add(fd.FD{Lhs: el.attrs.Without(a), Rhs: a})
					el.cplus.Clear(a)
					// Remove all B ∈ R\X from C⁺(X).
					el.attrs.Flip().ForEach(func(b int) bool {
						el.cplus.Clear(b)
						return true
					})
				}
				return true
			})
		}

		// prune.
		kept := level[:0]
		for _, el := range level {
			if el.cplus.IsEmpty() {
				continue
			}
			if el.partition.Error() == 0 { // X is a (super)key
				el.cplus.AndNot(el.attrs).ForEach(func(a int) bool {
					// X → A is valid (X is a key); output it iff it is
					// minimal, i.e. no immediate subset X\B determines A.
					// (Checking immediate subsets suffices: a valid deeper
					// generalization augments to some X\B.) This replaces
					// the C⁺(X∪A\B) intersection of the original
					// formulation, whose operand sets may never have been
					// generated once their subsets were key-pruned.
					minimal := true
					el.attrs.ForEach(func(b int) bool {
						sub := el.attrs.Without(b)
						var subAErr int
						if sub.IsEmpty() {
							subAErr = pli.PartitionOf(plis[a]).Error()
						} else {
							part := intersector.Intersect(prevPart[sub.Key()], pli.PartitionOf(plis[a]))
							subAErr = part.Error()
						}
						if prevErr[sub.Key()] == subAErr { // X\B → A valid
							minimal = false
							return false
						}
						return true
					})
					if minimal {
						out.Add(fd.FD{Lhs: el.attrs, Rhs: a})
					}
					return true
				})
				continue // delete X from the level
			}
			kept = append(kept, el)
		}

		// Level max+1 is the last that matters under a LHS bound:
		// compute_dependencies at level ℓ emits LHS sizes ℓ-1, so deeper
		// levels only produce FDs the bound excludes anyway.
		if cfg.MaxLhsSize > 0 && levelNum > cfg.MaxLhsSize {
			break
		}
		// apriori-gen: join nodes sharing all but their largest attribute;
		// partitions of the next level come from intersecting the
		// generating pair's partitions.
		level = aprioriGen(kept, intersector)
		levelNum++
		prevErr = curErr
		prevCplus = curCplus
		prevPart = curPart
	}
	return algorithms.Truncate(out, cfg.MaxLhsSize), nil
}

// aprioriGen builds the next level: combine pairs that differ only in their
// maximum attribute and keep combinations whose every ℓ-subset survived
// pruning.
func aprioriGen(level []*element, intersector *pli.Intersector) []*element {
	if len(level) == 0 {
		return nil
	}
	present := make(map[string]*element, len(level))
	for _, el := range level {
		present[el.attrs.Key()] = el
	}
	// Group by prefix (attrs without the largest attribute).
	groups := make(map[string][]*element)
	var order []string
	for _, el := range level {
		key := el.attrs.Without(lastAttr(el.attrs)).Key()
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], el)
	}
	var next []*element
	for _, key := range order {
		group := groups[key]
		sort.Slice(group, func(i, j int) bool {
			return lastAttr(group[i].attrs) < lastAttr(group[j].attrs)
		})
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				union := group[i].attrs.Or(group[j].attrs)
				// All ℓ-subsets must exist in the pruned level.
				ok := true
				union.ForEach(func(a int) bool {
					if _, exists := present[union.Without(a).Key()]; !exists {
						ok = false
						return false
					}
					return true
				})
				if !ok {
					continue
				}
				next = append(next, &element{
					attrs:     union,
					partition: intersector.Intersect(group[i].partition, group[j].partition),
				})
			}
		}
	}
	return next
}

func lastAttr(s bitset.Set) int {
	last := -1
	s.ForEach(func(a int) bool { last = a; return true })
	return last
}
