package tane

import (
	"testing"

	"hyfd/internal/algorithms/algotest"
)

func TestConformance(t *testing.T) {
	algotest.RunConformance(t, New(), 202)
}
