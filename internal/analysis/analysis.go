// Package analysis is hyfd's stdlib-only static-analysis framework: a
// multi-analyzer lint driver built on go/parser, go/ast, and go/types (no
// golang.org/x/tools dependency) that loads the whole module, type-checks
// every non-test package, and runs project-specific analyzers enforcing the
// engine's determinism, context-propagation, hook-safety, goroutine-hygiene,
// and bitset-aliasing contracts.
//
// Findings are reported as "file:line: rule: message". A finding can be
// suppressed by placing a
//
//	//hyfdvet:allow <rule> — <justification>
//
// comment on the offending line or on the line directly above it. The
// justification text is free-form but expected: a suppression records a
// deliberate, audited exception to a contract, not a way to silence noise.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding severity levels, for CI annotation via the -json output mode.
const (
	// SeverityError marks a contract violation: the build gate fails.
	SeverityError = "error"
	// SeverityWarning marks advisory findings (today: stale suppressions
	// under -strict-allows). Warnings still fail the gate when present —
	// the level only drives how CI renders the annotation.
	SeverityWarning = "warning"
)

// Finding is one analyzer diagnostic, located in the module's sources.
type Finding struct {
	Pos      token.Position
	Rule     string
	Severity string
	Msg      string
}

// String renders the finding in the canonical file:line: rule: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Package is one type-checked package of the loaded module.
type Package struct {
	// Path is the package's import path (module path + directory).
	Path string
	// Dir is the package's absolute directory.
	Dir string
	// Files are the package's parsed non-test files, in file-name order.
	Files []*ast.File
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Program is a fully loaded and type-checked module: the unit analyzers
// operate on. Analyzers see one package at a time but may consult the whole
// program (e.g. hooksafe derives nil-receiver safety from the metrics
// package's method bodies wherever the call site lives).
type Program struct {
	// Fset positions every file of every package (and of source-imported
	// dependencies).
	Fset *token.FileSet
	// ModulePath is the module's declared path (from go.mod).
	ModulePath string
	// Pkgs lists the module's packages in import-path order.
	Pkgs []*Package
	// Root is the module's absolute root directory (the go.mod directory).
	Root string

	byPath map[string]*Package
	cg     *CallGraph
	facts  map[string]any
}

// Package returns the module package with the given import path, or nil.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// Pass is the per-(analyzer, package) context handed to an analyzer's Run.
type Pass struct {
	// Prog is the whole loaded module.
	Prog *Program
	// Pkg is the package under analysis.
	Pkg *Package

	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos under the pass's analyzer rule name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Prog.Fset.Position(pos),
		Rule:     p.analyzer.Name,
		Severity: SeverityError,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named rule set. Run is invoked once per module package.
type Analyzer struct {
	// Name is the rule identifier used in findings and suppression comments.
	Name string
	// Doc is a one-line description of the contract the analyzer enforces.
	Doc string
	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Analyzers returns the full hyfdvet analyzer suite, in stable order. The
// first five are the single-function syntactic tier; lockcheck, leakcheck,
// and statusmap are the interprocedural tier built on the module call graph
// and the summary dataflow solver (callgraph.go, dataflow.go).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		CtxflowAnalyzer,
		HooksafeAnalyzer,
		GoroutineAnalyzer,
		BitsetAliasAnalyzer,
		LockCheckAnalyzer,
		LeakCheckAnalyzer,
		StatusMapAnalyzer,
	}
}

// Options tunes Run's filtering behavior.
type Options struct {
	// StrictAllows additionally reports every //hyfdvet:allow comment whose
	// rule produced no finding on its line — a stale suppression that either
	// outlived its violation or never matched one. Only suppressions naming
	// a rule in the executed analyzer set are judged: running a rule subset
	// must not condemn the other rules' suppressions.
	StrictAllows bool
}

// Run executes the analyzers over every package of the program, filters
// findings through //hyfdvet:allow suppressions, and returns the survivors
// sorted by file, line, and rule.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	return RunWith(prog, analyzers, Options{})
}

// StaleAllowRule is the pseudo-rule under which RunWith reports unused
// suppressions when Options.StrictAllows is set. It is not itself
// suppressible.
const StaleAllowRule = "stale-allow"

// RunWith is Run with options.
func RunWith(prog *Program, analyzers []*Analyzer, opts Options) []Finding {
	var findings []Finding
	for _, az := range analyzers {
		for _, pkg := range prog.Pkgs {
			pass := &Pass{Prog: prog, Pkg: pkg, analyzer: az, findings: &findings}
			az.Run(pass)
		}
	}
	sup := collectSuppressions(prog)
	kept := findings[:0]
	for _, f := range findings {
		if !sup.allows(f) {
			kept = append(kept, f)
		}
	}
	if opts.StrictAllows {
		ran := map[string]bool{}
		for _, az := range analyzers {
			ran[az.Name] = true
		}
		for _, site := range sup.sites {
			if site.used || !ran[site.rule] {
				continue
			}
			kept = append(kept, Finding{
				Pos:      site.pos,
				Rule:     StaleAllowRule,
				Severity: SeverityWarning,
				Msg: fmt.Sprintf("//hyfdvet:allow %s suppresses nothing on this line; delete the stale comment (or fix the rule name)",
					site.rule),
			})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return kept
}

// allowPrefix introduces a suppression comment.
const allowPrefix = "//hyfdvet:allow"

// suppSite is one //hyfdvet:allow comment; used flips when the suppression
// absorbs at least one finding, so -strict-allows can report the rest.
type suppSite struct {
	pos  token.Position
	rule string
	used bool
}

// suppressions indexes the module's allow comments: byLine maps
// file → line → rule → site for the filter, sites keeps comment order for
// deterministic stale reporting.
type suppressions struct {
	byLine map[string]map[int]map[string]*suppSite
	sites  []*suppSite
}

// collectSuppressions scans every comment of every module file for
// //hyfdvet:allow markers.
func collectSuppressions(prog *Program) *suppressions {
	sup := &suppressions{byLine: map[string]map[int]map[string]*suppSite{}}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rule, ok := parseAllow(c.Text)
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					lines := sup.byLine[pos.Filename]
					if lines == nil {
						lines = map[int]map[string]*suppSite{}
						sup.byLine[pos.Filename] = lines
					}
					if lines[pos.Line] == nil {
						lines[pos.Line] = map[string]*suppSite{}
					}
					if lines[pos.Line][rule] == nil {
						site := &suppSite{pos: pos, rule: rule}
						lines[pos.Line][rule] = site
						sup.sites = append(sup.sites, site)
					}
				}
			}
		}
	}
	return sup
}

// parseAllow extracts the rule name from an //hyfdvet:allow comment.
func parseAllow(text string) (rule string, ok bool) {
	if !strings.HasPrefix(text, allowPrefix) {
		return "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
	if rest == "" {
		return "", false
	}
	// The rule name ends at the first space; anything after it is the
	// justification.
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest, true
}

// allows reports whether a suppression on the finding's line (or the line
// directly above it) names the finding's rule, marking the matching site as
// used.
func (s *suppressions) allows(f Finding) bool {
	lines := s.byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		if site := lines[line][f.Rule]; site != nil {
			site.used = true
			return true
		}
	}
	return false
}
