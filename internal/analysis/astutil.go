package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// inspectWithStack walks every file of the package, calling fn with each
// node and the stack of its ancestors (outermost first, not including the
// node itself). Returning false from fn prunes the subtree.
func inspectWithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, conversions, and
// anonymous function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether obj is the named function of the given package
// path (e.g. "time".Now).
func isPkgFunc(obj *types.Func, pkgPath, name string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isPkgCall reports whether the call invokes pkgPath.name.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	return isPkgFunc(calleeFunc(info, call), pkgPath, name)
}

// namedType returns the named type (and its package path) behind t,
// unwrapping one level of pointer and any alias.
func namedType(t types.Type) (*types.Named, string) {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, ""
	}
	return named, named.Obj().Pkg().Path()
}

// isNamed reports whether t is (a pointer to) the named type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	named, path := namedType(t)
	return named != nil && path == pkgPath && named.Obj().Name() == name
}

// hasContextParam reports whether the signature takes a context.Context
// parameter (at any position).
func hasContextParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isNamed(t, "context", "Context")
}

// exprPath renders an identifier / selector chain ("v.inst.Validations") for
// structural comparison; any other expression form yields "" (not
// comparable).
func exprPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// hasPathPrefix reports whether the import path is pkg or lies beneath it.
func hasPathPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// spawnedLits collects the function literals within n that are launched by a
// `go` statement — bodies that run asynchronously and must be excluded from
// the spawning function's synchronous analysis.
func spawnedLits(n ast.Node) map[*ast.FuncLit]bool {
	spawned := map[*ast.FuncLit]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				spawned[lit] = true
			}
		}
		return true
	})
	return spawned
}
