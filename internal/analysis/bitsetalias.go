package analysis

import (
	"go/ast"
	"go/types"
)

// BitsetAliasAnalyzer enforces the bitset mutation discipline: bitset.Set is
// a value type over a shared []uint64 backing array, so mutating methods
// (Set, Clear) called on a temporary either silently discard the write
// (fresh result of Clone/With/New) or silently mutate state shared with
// someone else (a set fetched out of a map or returned by an accessor).
// Both are aliasing hazards: mutations must go through a named variable
// whose ownership is locally evident.
var BitsetAliasAnalyzer = &Analyzer{
	Name: "bitsetalias",
	Doc:  "mutating bitset methods must not be called on call results or map elements",
	Run:  runBitsetAlias,
}

// bitsetMutators are the methods of bitset.Set that write the backing array
// in place.
var bitsetMutators = map[string]bool{
	"Set":   true,
	"Clear": true,
}

func runBitsetAlias(pass *Pass) {
	if _, ok := relModulePath(pass.Prog, pass.Pkg.Path); !ok {
		return
	}
	bitsetPath := pass.Prog.ModulePath + "/internal/bitset"
	if pass.Pkg.Path == bitsetPath {
		return // the implementation package manipulates words directly
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !bitsetMutators[sel.Sel.Name] {
				return true
			}
			selection, ok := info.Selections[sel]
			if !ok || selection.Kind() != types.MethodVal || !isNamed(selection.Recv(), bitsetPath, "Set") {
				return true
			}
			if origin, hazard := aliasHazard(info, sel.X); hazard {
				pass.Reportf(call.Pos(), "%s on a bitset obtained from %s; bind it to a variable first — the mutation aliases (or discards) shared words",
					sel.Sel.Name, origin)
			}
			return true
		})
	}
}

// aliasHazard walks the receiver expression toward its root and reports
// whether it flows from a function call or a map element.
func aliasHazard(info *types.Info, e ast.Expr) (origin string, hazard bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			return "a function result", true
		case *ast.IndexExpr:
			if tv, ok := info.Types[x.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					return "a map element", true
				}
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return "", false
		}
	}
}
