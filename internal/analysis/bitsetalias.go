package analysis

import (
	"go/ast"
	"go/types"
)

// BitsetAliasAnalyzer enforces the bitset mutation discipline: bitset.Set is
// a value type over a shared []uint64 backing array, so mutating methods
// (Set, Clear) called on a temporary either silently discard the write
// (fresh result of Clone/With/New) or silently mutate state shared with
// someone else (a set fetched out of a map or returned by an accessor).
// Both are aliasing hazards: mutations must go through a named variable
// whose ownership is locally evident.
//
// The analyzer also guards the preprocessing artifacts the Dataset layer
// shares across concurrent runs: pli.PLI, pli.Index, pli.Partition, and
// dataset.Dataset are immutable once built, so any assignment whose target
// is reached through an accessor call returning (a pointer or slice of)
// one of these types mutates state other goroutines may be reading. The
// owning packages (internal/pli, internal/dataset) construct the artifacts
// and are exempt; everyone else must copy before modifying.
var BitsetAliasAnalyzer = &Analyzer{
	Name: "bitsetalias",
	Doc:  "mutating bitset methods must not be called on call results or map elements; shared PLI/Dataset state must not be written through accessor results",
	Run:  runBitsetAlias,
}

// bitsetMutators are the methods of bitset.Set that write the backing array
// in place.
var bitsetMutators = map[string]bool{
	"Set":   true,
	"Clear": true,
}

// sharedArtifactNames lists, per owning module-relative package, the named
// types whose instances are shared read-only between concurrent runs once
// preprocessing completes. pli.Cache is deliberately absent: it is per-run
// mutable state.
var sharedArtifactNames = map[string]map[string]bool{
	"internal/pli":     {"PLI": true, "Index": true, "Partition": true},
	"internal/dataset": {"Dataset": true},
}

// sharedStateExempt names the module-relative packages that own the shared
// artifacts and may legitimately write their internals during construction.
var sharedStateExempt = map[string]bool{
	"internal/bitset":  true,
	"internal/pli":     true,
	"internal/dataset": true,
}

func runBitsetAlias(pass *Pass) {
	rel, ok := relModulePath(pass.Prog, pass.Pkg.Path)
	if !ok {
		return
	}
	bitsetPath := pass.Prog.ModulePath + "/internal/bitset"
	checkShared := !sharedStateExempt[rel]
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if checkShared {
					for _, lhs := range x.Lhs {
						checkSharedWrite(pass, info, lhs)
					}
				}
			case *ast.IncDecStmt:
				if checkShared {
					checkSharedWrite(pass, info, x.X)
				}
			case *ast.CallExpr:
				if pass.Pkg.Path == bitsetPath {
					return true // the implementation package manipulates words directly
				}
				sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
				if !ok || !bitsetMutators[sel.Sel.Name] {
					return true
				}
				selection, ok := info.Selections[sel]
				if !ok || selection.Kind() != types.MethodVal || !isNamed(selection.Recv(), bitsetPath, "Set") {
					return true
				}
				if origin, hazard := aliasHazard(info, sel.X); hazard {
					pass.Reportf(x.Pos(), "%s on a bitset obtained from %s; bind it to a variable first — the mutation aliases (or discards) shared words",
						sel.Sel.Name, origin)
				}
			}
			return true
		})
	}
}

// checkSharedWrite walks an assignment target toward its root and reports
// when the chain passes through a call returning shared preprocessing state
// (a PLI, Index, Partition, or Dataset, possibly behind pointers or
// slices): writing through such an accessor mutates the artifact that
// concurrent runs read.
func checkSharedWrite(pass *Pass, info *types.Info, e ast.Expr) {
	pos := e.Pos()
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			if tv, ok := info.Types[x]; ok {
				if name, shared := sharedArtifactType(tv.Type, pass.Prog.ModulePath); shared {
					pass.Reportf(pos, "write through a %s accessor result mutates shared preprocessing state; copy it (or build your own) before modifying", name)
				}
			}
			return
		default:
			return
		}
	}
}

// sharedArtifactType unwraps pointers, slices, and arrays and reports
// whether the element is one of the shared preprocessing artifact types,
// returning its short pkg.Type name.
func sharedArtifactType(t types.Type, modulePath string) (string, bool) {
	for {
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		default:
			named, path := namedType(t)
			if named == nil {
				return "", false
			}
			for pkg, names := range sharedArtifactNames {
				if path == modulePath+"/"+pkg && names[named.Obj().Name()] {
					return pkg[len("internal/"):] + "." + named.Obj().Name(), true
				}
			}
			return "", false
		}
	}
}

// aliasHazard walks the receiver expression toward its root and reports
// whether it flows from a function call or a map element.
func aliasHazard(info *types.Info, e ast.Expr) (origin string, hazard bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			return "a function result", true
		case *ast.IndexExpr:
			if tv, ok := info.Types[x.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					return "a map element", true
				}
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return "", false
		}
	}
}
