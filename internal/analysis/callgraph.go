package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CGNode is one module-declared function (or method) in the call graph.
// Callees and Callers list only module-declared functions — calls into the
// stdlib or through interface values have no node and are classified by each
// analyzer's local transfer function instead.
type CGNode struct {
	// Fn is the canonical (generic-origin) function object.
	Fn *types.Func
	// Decl is the function's declaration; Decl.Body may be nil for
	// assembly/external stubs.
	Decl *ast.FuncDecl
	// Pkg is the package declaring the function.
	Pkg *Package
	// Callees are the module functions this function calls statically, in
	// first-call-site order, deduplicated. Calls made inside nested function
	// literals are attributed to this function too, except literals spawned
	// by a `go` statement: those run asynchronously and appear as GoSpawns.
	Callees []*types.Func
	// Callers is the reverse edge set, in deterministic (graph) order.
	Callers []*types.Func
	// GoSpawns lists the `go` statements lexically inside this function
	// (including inside its nested non-spawned literals).
	GoSpawns []*GoSite
}

// GoSite is one `go` statement: either a named module/extern function call
// (Callee, possibly nil when unresolvable) or a function literal (Lit).
type GoSite struct {
	Stmt *ast.GoStmt
	// Callee is the spawned function when the operand is a named call and
	// resolvable; nil for literals and dynamic calls.
	Callee *types.Func
	// Lit is the spawned function literal, when the operand is one.
	Lit *ast.FuncLit
}

// CallGraph is the module-wide static call graph, built from the already
// type-checked packages. It is deliberately flow-insensitive and ignores
// dynamic dispatch (interface method calls and function values have no
// edges); analyzers that need soundness there must treat unresolved calls
// conservatively in their local transfer functions.
type CallGraph struct {
	prog  *Program
	nodes map[*types.Func]*CGNode
	// funcs is every node's function in deterministic order: package path,
	// then declaration position.
	funcs []*types.Func
}

// CallGraph returns the module call graph, building and caching it on first
// use. Run executes analyzers sequentially, so no locking is needed.
func (p *Program) CallGraph() *CallGraph {
	if p.cg == nil {
		p.cg = buildCallGraph(p)
	}
	return p.cg
}

// Node returns the graph node for fn (or its generic origin), or nil for
// functions not declared in the module.
func (cg *CallGraph) Node(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	return cg.nodes[fn.Origin()]
}

// Funcs lists every module-declared function in deterministic order.
func (cg *CallGraph) Funcs() []*types.Func { return cg.funcs }

// buildCallGraph walks every declared function body, resolving static call
// sites to their canonical *types.Func objects.
func buildCallGraph(prog *Program) *CallGraph {
	cg := &CallGraph{prog: prog, nodes: map[*types.Func]*CGNode{}}
	// First pass: one node per declared function.
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				cg.nodes[fn.Origin()] = &CGNode{Fn: fn.Origin(), Decl: fd, Pkg: pkg}
			}
		}
	}
	// Second pass: edges and go-spawn sites.
	for _, pkg := range prog.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := cg.nodes[fn.Origin()]
				seen := map[*types.Func]bool{}
				// spawned collects the literals and call expressions run by
				// `go` statements: the bodies execute asynchronously and must
				// not contribute call edges to the spawning function (the go
				// call's arguments still evaluate synchronously, so the walk
				// descends into them).
				spawned := map[*ast.FuncLit]bool{}
				spawnedCalls := map[*ast.CallExpr]bool{}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.GoStmt:
						site := &GoSite{Stmt: n}
						spawnedCalls[n.Call] = true
						if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
							site.Lit = lit
							spawned[lit] = true
						} else if callee := calleeFunc(info, n.Call); callee != nil {
							site.Callee = callee.Origin()
						}
						node.GoSpawns = append(node.GoSpawns, site)
					case *ast.FuncLit:
						if spawned[n] {
							return false // async body: no synchronous edges
						}
					case *ast.CallExpr:
						if spawnedCalls[n] {
							return true // the spawned call runs on the new goroutine
						}
						callee := calleeFunc(info, n)
						if callee == nil {
							return true
						}
						origin := callee.Origin()
						if cg.nodes[origin] != nil && !seen[origin] {
							seen[origin] = true
							node.Callees = append(node.Callees, origin)
						}
					}
					return true
				})
			}
		}
	}
	// Deterministic function order and reverse edges.
	for fn := range cg.nodes {
		cg.funcs = append(cg.funcs, fn)
	}
	sort.Slice(cg.funcs, func(i, j int) bool {
		return cg.less(cg.funcs[i], cg.funcs[j])
	})
	for _, fn := range cg.funcs {
		for _, callee := range cg.nodes[fn].Callees {
			target := cg.nodes[callee]
			target.Callers = append(target.Callers, fn)
		}
	}
	return cg
}

// less orders functions by package path, then declaration position — a total
// order that makes every graph listing reproducible across runs.
func (cg *CallGraph) less(a, b *types.Func) bool {
	na, nb := cg.nodes[a], cg.nodes[b]
	if na.Pkg.Path != nb.Pkg.Path {
		return na.Pkg.Path < nb.Pkg.Path
	}
	pa := cg.prog.Fset.Position(na.Decl.Pos())
	pb := cg.prog.Fset.Position(nb.Decl.Pos())
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Offset < pb.Offset
}

// ReachableFrom computes the forward closure over call edges from the given
// root functions (go-spawned named functions count as called).
func (cg *CallGraph) ReachableFrom(roots []*types.Func) map[*types.Func]bool {
	reached := map[*types.Func]bool{}
	var queue []*types.Func
	push := func(fn *types.Func) {
		if fn == nil {
			return
		}
		fn = fn.Origin()
		if cg.nodes[fn] == nil || reached[fn] {
			return
		}
		reached[fn] = true
		queue = append(queue, fn)
	}
	for _, r := range roots {
		push(r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := cg.nodes[fn]
		for _, callee := range node.Callees {
			push(callee)
		}
		for _, site := range node.GoSpawns {
			push(site.Callee)
		}
	}
	return reached
}

// declPos renders a function's declaration position (for tests and debug
// output).
func (cg *CallGraph) declPos(fn *types.Func) token.Position {
	if n := cg.Node(fn); n != nil {
		return cg.prog.Fset.Position(n.Decl.Pos())
	}
	return token.Position{}
}
