package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// corpusFunc locates a corpus function by package-path suffix and name.
func corpusFunc(t *testing.T, cg *CallGraph, pkgSuffix, name string) *types.Func {
	t.Helper()
	for _, fn := range cg.Funcs() {
		node := cg.Node(fn)
		if strings.HasSuffix(node.Pkg.Path, pkgSuffix) && fn.Name() == name {
			return fn
		}
	}
	t.Fatalf("function %s.%s not in call graph", pkgSuffix, name)
	return nil
}

func hasFunc(fns []*types.Func, want *types.Func) bool {
	for _, fn := range fns {
		if fn == want {
			return true
		}
	}
	return false
}

// TestCallGraphEdges pins the static edges: a direct module call yields a
// callee edge and the matching reverse edge.
func TestCallGraphEdges(t *testing.T) {
	cg := loadCorpus(t).CallGraph()
	caller := corpusFunc(t, cg, "internal/locks", "SleepViaHelper")
	callee := corpusFunc(t, cg, "internal/locks", "slowWrite")
	if !hasFunc(cg.Node(caller).Callees, callee) {
		t.Errorf("SleepViaHelper's callees lack slowWrite: %v", cg.Node(caller).Callees)
	}
	if !hasFunc(cg.Node(callee).Callers, caller) {
		t.Errorf("slowWrite's callers lack SleepViaHelper: %v", cg.Node(callee).Callers)
	}
}

// TestCallGraphGoSpawns pins the asynchronous split: go-spawned callees and
// literals are recorded as GoSites, and a spawned literal's body contributes
// no synchronous call edges to the spawner.
func TestCallGraphGoSpawns(t *testing.T) {
	cg := loadCorpus(t).CallGraph()

	named := cg.Node(corpusFunc(t, cg, "cmd/leakdemo", "leakNamed"))
	spin := corpusFunc(t, cg, "cmd/leakdemo", "spin")
	if len(named.GoSpawns) != 1 || named.GoSpawns[0].Callee != spin {
		t.Errorf("leakNamed GoSpawns = %+v, want one site spawning spin", named.GoSpawns)
	}
	if hasFunc(named.Callees, spin) {
		t.Error("go-spawned spin leaked into leakNamed's synchronous callees")
	}

	lit := cg.Node(corpusFunc(t, cg, "cmd/leakdemo", "leakLit"))
	if len(lit.GoSpawns) != 1 || lit.GoSpawns[0].Lit == nil || lit.GoSpawns[0].Callee != nil {
		t.Errorf("leakLit GoSpawns = %+v, want one literal site", lit.GoSpawns)
	}

	trans := cg.Node(corpusFunc(t, cg, "cmd/leakdemo", "spawnTransitive"))
	waitDone := corpusFunc(t, cg, "cmd/leakdemo", "waitDone")
	if hasFunc(trans.Callees, waitDone) {
		t.Error("a call inside a go-spawned literal produced a synchronous edge")
	}
}

// TestCallGraphDeterministicOrder verifies Funcs() follows the documented
// total order: package path, then file name, then declaration offset.
func TestCallGraphDeterministicOrder(t *testing.T) {
	cg := loadCorpus(t).CallGraph()
	funcs := cg.Funcs()
	if len(funcs) == 0 {
		t.Fatal("empty call graph")
	}
	for i := 1; i < len(funcs); i++ {
		if !cg.less(funcs[i-1], funcs[i]) {
			t.Errorf("Funcs()[%d] %s does not precede Funcs()[%d] %s",
				i-1, funcs[i-1].FullName(), i, funcs[i].FullName())
		}
	}
}

// TestReachableFrom pins the forward closure, including through go-spawned
// named functions.
func TestReachableFrom(t *testing.T) {
	cg := loadCorpus(t).CallGraph()
	sleeper := corpusFunc(t, cg, "internal/locks", "SleepViaHelper")
	slowWrite := corpusFunc(t, cg, "internal/locks", "slowWrite")
	sender := corpusFunc(t, cg, "internal/locks", "SendUnderLock")

	reached := cg.ReachableFrom([]*types.Func{sleeper})
	if !reached[sleeper] || !reached[slowWrite] {
		t.Errorf("SleepViaHelper closure misses itself or slowWrite: %v", reached)
	}
	if reached[sender] {
		t.Error("SendUnderLock is not reachable from SleepViaHelper but was reported so")
	}

	leakNamed := corpusFunc(t, cg, "cmd/leakdemo", "leakNamed")
	spin := corpusFunc(t, cg, "cmd/leakdemo", "spin")
	if !cg.ReachableFrom([]*types.Func{leakNamed})[spin] {
		t.Error("go-spawned spin not reachable from leakNamed")
	}
}
