package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// corpusDir is the miniature module under testdata that seeds one violation
// (and one clean counterpart) per analyzer.
const corpusDir = "testdata/src"

var (
	corpusOnce sync.Once
	corpusProg *Program
	corpusErr  error
)

// loadCorpus loads and type-checks the corpus module once per test binary.
func loadCorpus(t *testing.T) *Program {
	t.Helper()
	corpusOnce.Do(func() {
		corpusProg, corpusErr = LoadModule(corpusDir)
	})
	if corpusErr != nil {
		t.Fatalf("loading corpus: %v", corpusErr)
	}
	return corpusProg
}

// wantRe matches the expectation list of a `// want "..." "..."` comment.
var wantRe = regexp.MustCompile(`// want ("[^"]*"(?:\s+"[^"]*")*)`)

// quoteRe extracts the individual quoted expectations.
var quoteRe = regexp.MustCompile(`"([^"]*)"`)

// corpusExpectations parses every // want comment of the corpus into a map
// from absolute file path to line to expected "rule: message" substrings.
func corpusExpectations(t *testing.T) map[string]map[int][]string {
	t.Helper()
	root, err := filepath.Abs(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string]map[int][]string{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range quoteRe.FindAllStringSubmatch(m[1], -1) {
				if wants[path] == nil {
					wants[path] = map[int][]string{}
				}
				wants[path][i+1] = append(wants[path][i+1], q[1])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestCorpusFindings runs the full analyzer suite over the corpus and checks
// the findings against the // want expectations: every expectation must be
// matched by a finding on its line, and every finding must be expected.
func TestCorpusFindings(t *testing.T) {
	prog := loadCorpus(t)
	findings := Run(prog, Analyzers())
	if len(findings) == 0 {
		t.Fatal("corpus produced no findings")
	}
	wants := corpusExpectations(t)

	// Every finding must match one of its line's expectations.
	for _, f := range findings {
		rendered := f.Rule + ": " + f.Msg
		matched := false
		for _, w := range wants[f.Pos.Filename][f.Pos.Line] {
			if strings.Contains(rendered, w) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}

	// Every expectation must match one of its line's findings.
	for file, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				matched := false
				for _, f := range findings {
					if f.Pos.Filename == file && f.Pos.Line == line &&
						strings.Contains(f.Rule+": "+f.Msg, w) {
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("%s:%d: expected finding matching %q, got none", file, line, w)
				}
			}
		}
	}
}

// TestCorpusSuppression pins the //hyfdvet:allow path end to end: the
// determinism analyzer does report the suppressed time.Now call when run
// raw, and Run's suppression filter drops exactly that finding.
func TestCorpusSuppression(t *testing.T) {
	prog := loadCorpus(t)
	pliFile, allowLine := corpusAllowSite(t)

	var raw []Finding
	for _, pkg := range prog.Pkgs {
		pass := &Pass{Prog: prog, Pkg: pkg, analyzer: DeterminismAnalyzer, findings: &raw}
		DeterminismAnalyzer.Run(pass)
	}
	foundRaw := false
	for _, f := range raw {
		if f.Pos.Filename == pliFile && f.Pos.Line == allowLine+1 {
			foundRaw = true
		}
	}
	if !foundRaw {
		t.Fatalf("determinism analyzer reported nothing at %s:%d (below the allow comment)", pliFile, allowLine+1)
	}

	for _, f := range Run(prog, Analyzers()) {
		if f.Pos.Filename == pliFile && f.Pos.Line == allowLine+1 {
			t.Errorf("suppressed finding survived: %s", f)
		}
	}
}

// corpusAllowSite locates the //hyfdvet:allow comment in the corpus pli
// fixture and returns the file's absolute path and the comment's line.
func corpusAllowSite(t *testing.T) (string, int) {
	t.Helper()
	path, err := filepath.Abs(filepath.Join(corpusDir, "internal", "pli", "pli.go"))
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, allowPrefix+" determinism") {
			return path, i + 1
		}
	}
	t.Fatalf("no %s determinism comment in %s", allowPrefix, path)
	return "", 0
}

// TestParseAllow pins the suppression comment grammar.
func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		rule string
		ok   bool
	}{
		{"//hyfdvet:allow determinism — reason", "determinism", true},
		{"//hyfdvet:allow ctxflow", "ctxflow", true},
		{"//hyfdvet:allow  hooksafe \t tab-separated reason", "hooksafe", true},
		{"//hyfdvet:allow", "", false},
		{"// hyfdvet:allow determinism", "", false},
		{"//nolint:errcheck", "", false},
	}
	for _, c := range cases {
		rule, ok := parseAllow(c.text)
		if rule != c.rule || ok != c.ok {
			t.Errorf("parseAllow(%q) = %q, %v; want %q, %v", c.text, rule, ok, c.rule, c.ok)
		}
	}
}

// TestAnalyzerSuite pins the suite's membership and stable order: rule names
// appear in findings and suppressions, so renames are breaking changes.
func TestAnalyzerSuite(t *testing.T) {
	want := []string{"determinism", "ctxflow", "hooksafe", "goroutine", "bitsetalias",
		"lockcheck", "leakcheck", "statusmap"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, az := range got {
		if az.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, az.Name, want[i])
		}
		if az.Doc == "" || az.Run == nil {
			t.Errorf("analyzer %q lacks doc or run function", az.Name)
		}
	}
}
