package analysis

import (
	"go/ast"
	"go/types"
)

// CtxflowAnalyzer enforces the context-propagation contract (DESIGN §2a):
//
//   - context.Background() / context.TODO() are banned outside cmd/,
//     examples/, and test code — library code must thread the caller's
//     context, never mint its own root.
//   - In internal/core and the baseline packages (internal/algorithms/...),
//     an exported function that receives a context.Context must forward it:
//     every call it makes to a context-accepting callee must pass a
//     context-typed argument that is not a fresh Background/TODO and not a
//     nil literal.
var CtxflowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "require context propagation; ban context.Background/TODO outside cmd and tests",
	Run:  runCtxflow,
}

// ctxRootExempt reports whether the package may create root contexts:
// binaries (cmd/, examples/) own the process entry point, and test helper
// packages are test code in non-_test.go clothing.
func ctxRootExempt(prog *Program, pkg *Package) bool {
	rel, ok := relModulePath(prog, pkg.Path)
	if !ok {
		return true
	}
	return hasPathPrefix(rel, "cmd") || hasPathPrefix(rel, "examples") || testHelperPkgs[rel]
}

// ctxForwardScope reports whether the package is subject to the mandatory
// forwarding rule.
func ctxForwardScope(prog *Program, pkg *Package) bool {
	rel, ok := relModulePath(prog, pkg.Path)
	if !ok || testHelperPkgs[rel] {
		return false
	}
	return hasPathPrefix(rel, "internal/core") || hasPathPrefix(rel, "internal/algorithms")
}

func runCtxflow(pass *Pass) {
	rootExempt := ctxRootExempt(pass.Prog, pass.Pkg)
	forward := ctxForwardScope(pass.Prog, pass.Pkg)
	if rootExempt && !forward {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			mustForward := forward && fd.Name.IsExported() && declHasContextParam(info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !rootExempt && isContextRootCall(info, call) {
					fn := calleeFunc(info, call)
					pass.Reportf(call.Pos(), "context.%s() outside cmd/ and tests; accept and propagate the caller's context instead", fn.Name())
				}
				if mustForward {
					checkForwarding(pass, info, fd, call)
				}
				return true
			})
		}
	}
}

// declHasContextParam reports whether the function declaration takes a
// context.Context parameter.
func declHasContextParam(info *types.Info, fd *ast.FuncDecl) bool {
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	return hasContextParam(obj.Type().(*types.Signature))
}

// isContextRootCall reports whether the call is context.Background() or
// context.TODO().
func isContextRootCall(info *types.Info, call *ast.CallExpr) bool {
	return isPkgCall(info, call, "context", "Background") || isPkgCall(info, call, "context", "TODO")
}

// checkForwarding verifies that a call made inside a context-receiving
// exported function hands a real context to any callee that accepts one.
func checkForwarding(pass *Pass, info *types.Info, fd *ast.FuncDecl, call *ast.CallExpr) {
	callee := calleeFunc(info, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	if callee.Pkg().Path() == "context" {
		return // context constructors (WithCancel etc.) are how contexts derive
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || !hasContextParam(sig) {
		return
	}
	forwarded := false
	for _, arg := range call.Args {
		tv, ok := info.Types[arg]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok && isContextRootCall(info, inner) {
			pass.Reportf(arg.Pos(), "%s receives a context but passes a fresh context.%s to %s; forward the caller's context",
				fd.Name.Name, calleeFunc(info, inner).Name(), callee.Name())
			return
		}
		forwarded = true
	}
	if !forwarded {
		// Covers both a nil literal in the context slot and variadic calls
		// that never supply one.
		pass.Reportf(call.Pos(), "%s receives a context but calls %s without forwarding it",
			fd.Name.Name, callee.Name())
	}
}
