package analysis

import "go/types"

// This file is the interprocedural dataflow spine of the analyzer suite: a
// small worklist solver over the module call graph. Analyses are
// function-summary based — each function gets one summary value of a
// comparable type T, recomputed from its neighbors' summaries until the
// whole map reaches a fixpoint — which keeps whole-module analysis linear in
// practice (edges × lattice height) instead of exploding per call site.
//
// Two directions cover the suite's needs:
//
//   - Backward: a function's summary is derived from its callees' summaries
//     (classic bottom-up summaries: "does this function transitively block?",
//     "does it transitively emit output?");
//   - Forward: a function's summary is derived from its callers' summaries
//     (top-down facts: "is this function reachable from the serving path?").
//
// Transfer functions must be monotone (never retract a fact once derived)
// for the worklist to terminate; with T = bool and || as the join this holds
// by construction.

// Direction selects which neighbor set feeds a function's transfer function
// and, symmetrically, which dependents are re-queued when a summary changes.
type Direction int

const (
	// Backward derives a function's summary from its callees.
	Backward Direction = iota
	// Forward derives a function's summary from its callers.
	Forward
)

// Problem is one summary analysis over the call graph.
type Problem[T comparable] struct {
	Graph *CallGraph
	Dir   Direction
	// Transfer recomputes n's summary. get reads the current summary of any
	// module function (its callees under Backward, callers under Forward —
	// reading others is allowed but adds no dependency edge, so a change
	// there won't re-trigger n). Unknown functions yield T's zero value.
	Transfer func(n *CGNode, get func(*types.Func) T) T
}

// Solve runs the worklist to fixpoint and returns every module function's
// summary. Iteration order is deterministic: functions are seeded in graph
// order and the queue is FIFO, so equal inputs produce identical maps.
func Solve[T comparable](p Problem[T]) map[*types.Func]T {
	out := make(map[*types.Func]T, len(p.Graph.funcs))
	get := func(fn *types.Func) T {
		if fn == nil {
			var zero T
			return zero
		}
		return out[fn.Origin()]
	}

	queued := map[*types.Func]bool{}
	queue := make([]*types.Func, 0, len(p.Graph.funcs))
	push := func(fn *types.Func) {
		if !queued[fn] {
			queued[fn] = true
			queue = append(queue, fn)
		}
	}
	for _, fn := range p.Graph.funcs {
		push(fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		queued[fn] = false
		node := p.Graph.nodes[fn]
		next := p.Transfer(node, get)
		if next == out[fn] {
			continue
		}
		out[fn] = next
		// The summary changed: everyone who depends on it must recompute.
		var dependents []*types.Func
		if p.Dir == Backward {
			dependents = node.Callers
		} else {
			dependents = node.Callees
		}
		for _, d := range dependents {
			push(d)
		}
	}
	return out
}

// PropagateCallees is the common backward boolean analysis: a function's
// summary is true when local(n) holds or any module callee's summary is
// true. It powers the blocking and output-emission summaries.
func (cg *CallGraph) PropagateCallees(local func(n *CGNode) bool) map[*types.Func]bool {
	// Local contributions never change across iterations; compute them once.
	locals := make(map[*types.Func]bool, len(cg.funcs))
	for _, fn := range cg.funcs {
		if local(cg.nodes[fn]) {
			locals[fn] = true
		}
	}
	return Solve(Problem[bool]{
		Graph: cg,
		Dir:   Backward,
		Transfer: func(n *CGNode, get func(*types.Func) bool) bool {
			if locals[n.Fn] {
				return true
			}
			for _, callee := range n.Callees {
				if get(callee) {
					return true
				}
			}
			return false
		},
	})
}

// fact memoizes a program-wide derived artifact (a summary map, a sentinel
// table) under a string key so multiple analyzers — each invoked once per
// package — share one computation. Run is sequential; no locking.
func (p *Program) fact(key string, build func() any) any {
	if p.facts == nil {
		p.facts = map[string]any{}
	}
	if v, ok := p.facts[key]; ok {
		return v
	}
	v := build()
	p.facts[key] = v
	return v
}
