package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// TestBlockingSummary pins the backward blocking analysis over the corpus:
// a direct time.Sleep marks the function, the mark propagates to callers,
// and pure computation stays unmarked.
func TestBlockingSummary(t *testing.T) {
	prog := loadCorpus(t)
	cg := prog.CallGraph()
	blocks := blockingFuncs(prog)

	for name, want := range map[string]bool{
		"slowWrite":      true, // calls time.Sleep directly
		"SleepViaHelper": true, // transitively, through slowWrite
		"EarlyReturn":    true, // acquires a mutex (itself a blocking op)
	} {
		fn := corpusFunc(t, cg, "internal/locks", name)
		if blocks[fn] != want {
			t.Errorf("blocking[%s] = %v, want %v", name, blocks[fn], want)
		}
	}
	if fn := corpusFunc(t, cg, "cmd/leakdemo", "spin"); blocks[fn] {
		t.Error("pure spin marked blocking")
	}
}

// TestSignalableSummary pins the leakcheck summary: channel consumers and
// context takers are signalable; pure functions are not; and a signal inside
// a go-spawned literal does not make the spawner signalable.
func TestSignalableSummary(t *testing.T) {
	prog := loadCorpus(t)
	cg := prog.CallGraph()
	signalable := signalableFuncs(prog)

	for name, want := range map[string]bool{
		"pump":            true,  // ranges over a channel
		"waitDone":        true,  // channel receive
		"serve":           true,  // context.Context parameter
		"spin":            false, // pure computation
		"work":            false,
		"spawnTransitive": false, // its receive lives in a spawned literal
	} {
		fn := corpusFunc(t, cg, "cmd/leakdemo", name)
		if signalable[fn] != want {
			t.Errorf("signalable[%s] = %v, want %v", name, signalable[fn], want)
		}
	}
}

// TestSolveForward exercises the forward direction: a fact seeded at a root
// flows to its callees (and no further).
func TestSolveForward(t *testing.T) {
	prog := loadCorpus(t)
	cg := prog.CallGraph()
	root := corpusFunc(t, cg, "internal/locks", "SleepViaHelper")
	out := Solve(Problem[bool]{
		Graph: cg,
		Dir:   Forward,
		Transfer: func(n *CGNode, get func(fn *types.Func) bool) bool {
			if n.Fn == root {
				return true
			}
			for _, caller := range n.Callers {
				if get(caller) {
					return true
				}
			}
			return false
		},
	})
	if !out[corpusFunc(t, cg, "internal/locks", "slowWrite")] {
		t.Error("forward fact did not reach slowWrite from SleepViaHelper")
	}
	if out[corpusFunc(t, cg, "internal/locks", "SendUnderLock")] {
		t.Error("forward fact leaked to the unrelated SendUnderLock")
	}
}

// TestStrictAllows pins the stale-suppression sweep: the deliberately stale
// allow in the locks fixture is reported as a warning under the full suite,
// and is left alone when its rule is not in the executed set.
func TestStrictAllows(t *testing.T) {
	prog := loadCorpus(t)

	var stale []Finding
	for _, f := range RunWith(prog, Analyzers(), Options{StrictAllows: true}) {
		if f.Rule == StaleAllowRule {
			stale = append(stale, f)
		}
	}
	if len(stale) != 1 {
		t.Fatalf("got %d stale-allow findings, want exactly 1: %v", len(stale), stale)
	}
	f := stale[0]
	if !strings.HasSuffix(f.Pos.Filename, "internal/locks/locks.go") {
		t.Errorf("stale-allow reported in %s, want the locks fixture", f.Pos.Filename)
	}
	if f.Severity != SeverityWarning {
		t.Errorf("stale-allow severity = %q, want %q", f.Severity, SeverityWarning)
	}

	// Running only determinism must not judge the lockcheck allow.
	for _, f := range RunWith(prog, []*Analyzer{DeterminismAnalyzer}, Options{StrictAllows: true}) {
		if f.Rule == StaleAllowRule {
			t.Errorf("rule-subset run condemned a foreign suppression: %s", f)
		}
	}

	// Without the option the stale comment is silent.
	for _, f := range Run(prog, Analyzers()) {
		if f.Rule == StaleAllowRule {
			t.Errorf("stale-allow reported without StrictAllows: %s", f)
		}
	}
}
