package analysis

import (
	"go/ast"
	"go/types"
)

// determinismScopes lists the module-relative package prefixes whose
// non-test code must be bit-for-bit deterministic: the engine proper and
// every baseline algorithm. Telemetry-only exceptions are annotated at the
// call site with //hyfdvet:allow determinism and a justification.
var determinismScopes = []string{
	"internal/pli",
	"internal/relation",
	"internal/dataset",
	"internal/sampler",
	"internal/inductor",
	"internal/validator",
	"internal/fdtree",
	// internal/incremental maintains FD covers that must stay byte-identical
	// to cold re-runs; clock or randomness leaks would break the digest
	// equality the incremental contract promises.
	"internal/incremental",
	// internal/rank turns scores into result order and early-cut decisions,
	// so any clock/randomness leak would reorder the ranked stream itself.
	"internal/rank",
	"internal/core",
	"internal/algorithms",
	// internal/tracing is telemetry-only, but it sits under the rule so its
	// clock reads stay centralized: exactly two audited call sites (the
	// recorder epoch and its monotonic offset) carry suppressions, and any
	// new clock read fails vet until it is routed through them.
	"internal/tracing",
}

// testHelperPkgs are module-relative packages that exist purely to support
// _test.go files (shared fixtures and conformance harnesses). They are
// treated as test code by the analyzers that exempt tests.
var testHelperPkgs = map[string]bool{
	"internal/algorithms/algotest": true,
}

// relModulePath strips the module prefix from an import path; ok is false
// for packages outside the module.
func relModulePath(prog *Program, path string) (string, bool) {
	if path == prog.ModulePath {
		return "", true
	}
	if hasPathPrefix(path, prog.ModulePath) {
		return path[len(prog.ModulePath)+1:], true
	}
	return "", false
}

// inDeterminismScope reports whether the package is covered by the
// determinism contract.
func inDeterminismScope(prog *Program, pkg *Package) bool {
	rel, ok := relModulePath(prog, pkg.Path)
	if !ok || testHelperPkgs[rel] {
		return false
	}
	for _, scope := range determinismScopes {
		if hasPathPrefix(rel, scope) {
			return true
		}
	}
	return false
}

// DeterminismAnalyzer enforces the engine's determinism contract (DESIGN §2c):
// within the engine and baseline packages, non-test code must not read the
// wall clock (time.Now, time.Since), draw randomness (math/rand,
// math/rand/v2), or consult the environment (os.Getenv and friends) — any of
// these could leak into the discovered FD set or the observation order. It
// also flags `for range` over a map whose body appends to a slice or emits
// output with no sort anywhere after the loop in the same function: map
// iteration order is randomized per run, so such loops produce
// run-dependent orderings.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "ban wall-clock, randomness, env reads, and unsorted map-range output in engine packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	if !inDeterminismScope(pass.Prog, pass.Pkg) {
		return
	}
	info := pass.Pkg.Info
	emits := emitsOutputFuncs(pass.Prog)
	inspectWithStack(pass.Pkg.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNondeterministicCall(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, info, emits, n, stack)
		}
		return true
	})
}

// emitsOutputFuncs returns the module-wide transitive output summary: fn →
// true when fn (or any module function it calls synchronously) writes to an
// output sink. It upgrades the map-range rule from "the loop body prints"
// to "the loop body reaches a print through any call chain" — the
// interprocedural taint from map iteration order into emitted output.
func emitsOutputFuncs(prog *Program) map[*types.Func]bool {
	return prog.fact("determinism.emitsOutput", func() any {
		cg := prog.CallGraph()
		return cg.PropagateCallees(func(n *CGNode) bool {
			if n.Decl.Body == nil {
				return false
			}
			spawned := spawnedLits(n.Decl.Body)
			found := false
			ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
				if found {
					return false
				}
				if lit, ok := x.(*ast.FuncLit); ok && spawned[lit] {
					return false
				}
				if call, ok := x.(*ast.CallExpr); ok {
					if fn := calleeFunc(n.Pkg.Info, call); fn != nil && isOutputFunc(fn) {
						found = true
					}
				}
				return !found
			})
			return found
		})
	}).(map[*types.Func]bool)
}

// bannedFuncs maps package path → banned function names; an empty set bans
// every function of the package.
var bannedFuncs = map[string]map[string]bool{
	"time":         {"Now": true, "Since": true, "Until": true},
	"math/rand":    nil,
	"math/rand/v2": nil,
	"os":           {"Getenv": true, "LookupEnv": true, "Environ": true},
}

func checkNondeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	names, banned := bannedFuncs[fn.Pkg().Path()]
	if !banned || (names != nil && !names[fn.Name()]) {
		return
	}
	pass.Reportf(call.Pos(), "call to %s.%s in a determinism-scoped package; results must not depend on clock, randomness, or environment",
		fn.Pkg().Path(), fn.Name())
}

// checkMapRange flags map-iteration loops whose body accumulates into a
// slice or writes output — directly or through a module callee that
// transitively emits output (per emitsOutputFuncs) — unless a sort call
// follows the loop in the same function (the standard collect-then-sort
// idiom).
func checkMapRange(pass *Pass, info *types.Info, emits map[*types.Func]bool, rng *ast.RangeStmt, stack []ast.Node) {
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var hazard string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || hazard != "" {
			return hazard == ""
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				hazard = "appends to a slice"
				return false
			}
		}
		if fn := calleeFunc(info, call); fn != nil {
			if isOutputFunc(fn) {
				hazard = "emits output"
				return false
			}
			if emits[fn.Origin()] {
				hazard = "calls " + fn.Name() + ", which emits output transitively,"
				return false
			}
		}
		return true
	})
	if hazard == "" {
		return
	}
	body := enclosingFuncBody(stack)
	if body != nil && hasSortAfter(info, body, rng) {
		return
	}
	pass.Reportf(rng.Pos(), "range over map %s and no sort follows in this function; map order is randomized per run", hazard)
}

// isOutputFunc reports whether fn writes to an output sink (fmt printing or
// io writes).
func isOutputFunc(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return true
		}
	}
	return fn.Name() == "Write" && fn.Type().(*types.Signature).Recv() != nil
}

// hasSortAfter reports whether any sort.* / slices.Sort* call appears after
// the range statement inside the function body.
func hasSortAfter(info *types.Info, body *ast.BlockStmt, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return !found
		}
		if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort":
				found = true
			case "slices":
				if len(fn.Name()) >= 4 && fn.Name()[:4] == "Sort" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
