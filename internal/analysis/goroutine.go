package analysis

import (
	"go/ast"
	"go/types"
)

// GoroutineAnalyzer enforces goroutine hygiene in internal/ packages: the
// engine promises deterministic output at every thread count and a fully
// joined shutdown (no goroutine outlives its spawning function), so every
// `go` statement must
//
//  1. capture loop variables explicitly (pass them as arguments instead of
//     closing over a `for`/`range` variable), and
//  2. be paired with a join — a sync.WaitGroup.Wait, a channel receive, a
//     range over a channel, or a select — in the same function.
var GoroutineAnalyzer = &Analyzer{
	Name: "goroutine",
	Doc:  "go statements in internal/ must capture loop variables explicitly and join in the same function",
	Run:  runGoroutine,
}

func runGoroutine(pass *Pass) {
	rel, ok := relModulePath(pass.Prog, pass.Pkg.Path)
	if !ok || !hasPathPrefix(rel, "internal") || testHelperPkgs[rel] {
		return
	}
	info := pass.Pkg.Info
	inspectWithStack(pass.Pkg.Files, func(n ast.Node, stack []ast.Node) bool {
		goStmt, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		checkLoopCapture(pass, info, goStmt, stack)
		checkJoin(pass, info, goStmt, stack)
		return true
	})
}

// checkLoopCapture flags goroutines whose function literal closes over a
// variable declared by an enclosing for/range statement of the same
// function instead of receiving it as an argument.
func checkLoopCapture(pass *Pass, info *types.Info, goStmt *ast.GoStmt, stack []ast.Node) {
	fn, ok := goStmt.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	loopVars := enclosingLoopVars(info, stack)
	if len(loopVars) == 0 {
		return
	}
	// Arguments are evaluated at spawn time, so loop variables appearing
	// there are captured correctly — only free references inside the body
	// are hazards.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if v, found := loopVars[obj]; found {
			pass.Reportf(id.Pos(), "goroutine closes over loop variable %s; pass it as an argument to the goroutine's function", v)
			delete(loopVars, obj) // one finding per variable
		}
		return true
	})
}

// enclosingLoopVars collects the variables declared by for/range statements
// on the stack, up to (not past) the innermost enclosing function.
func enclosingLoopVars(info *types.Info, stack []ast.Node) map[types.Object]string {
	vars := map[types.Object]string{}
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return vars
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := info.Defs[id]; obj != nil {
						vars[obj] = id.Name
					}
				}
			}
		case *ast.ForStmt:
			if assign, ok := n.Init.(*ast.AssignStmt); ok {
				for _, e := range assign.Lhs {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := info.Defs[id]; obj != nil {
							vars[obj] = id.Name
						}
					}
				}
			}
		}
	}
	return vars
}

// checkJoin flags goroutines whose spawning function contains no join
// construct at all.
func checkJoin(pass *Pass, info *types.Info, goStmt *ast.GoStmt, stack []ast.Node) {
	body := enclosingFuncBody(stack)
	if body == nil {
		return
	}
	if !hasJoinConstruct(info, body, goStmt.Call.Fun) {
		pass.Reportf(goStmt.Pos(), "go statement with no WaitGroup.Wait, channel receive, or select join in the same function; the goroutine may outlive its spawner")
	}
}

// hasJoinConstruct reports whether body contains a join construct — a
// WaitGroup.Wait, a channel receive, a range over a channel, or a select —
// outside the excluded subtree (the spawned goroutine's own function, where
// a join wouldn't stop it). Shared by the goroutine and leakcheck rules.
func hasJoinConstruct(info *types.Info, body *ast.BlockStmt, exclude ast.Node) bool {
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		if n == exclude {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				joined = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					joined = true
				}
			}
		case *ast.SelectStmt:
			joined = true
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if selection, ok := info.Selections[sel]; ok && isNamed(selection.Recv(), "sync", "WaitGroup") {
					joined = true
				}
			}
		}
		return !joined
	})
	return joined
}
