package analysis

import (
	"go/ast"
	"go/types"
)

// HooksafeAnalyzer enforces the nil-safe observability contract (DESIGN
// §2a/§2b): observer and metrics hooks are optional, so every call through
// them must be provably safe against a nil hook. Concretely:
//
//   - A method call on a trace.Observer value must be dominated by a
//     `recv != nil` check in the same function, or live in a package on the
//     structural allowlist (internal/trace itself, whose Emit/Multi
//     construction guarantees non-nil receivers).
//   - A method call on a metrics instrument (*metrics.Counter, *Gauge,
//     *Histogram) is safe iff the method's declaration begins with a nil
//     receiver guard — verified structurally from the metrics package
//     sources — or the call is nil-checked / allowlisted as above.
var HooksafeAnalyzer = &Analyzer{
	Name: "hooksafe",
	Doc:  "observer and metrics hook calls must be nil-safe",
	Run:  runHooksafe,
}

// hooksafeAllowlist names module-relative packages whose constructors and
// helpers structurally guarantee non-nil hook receivers.
var hooksafeAllowlist = map[string]bool{
	// trace.Emit nil-checks before calling, and trace.Multi filters nil
	// observers out before constructing a fan-out receiver.
	"internal/trace": true,
	// The metrics package is the instruments' own implementation: the
	// Registry and NewEngineMetrics constructors guarantee non-nil
	// instruments, and the remaining methods are nil-receiver-guarded.
	"internal/metrics": true,
}

// instrumentTypes are the nil-safe instrument families of internal/metrics.
var instrumentTypes = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

func runHooksafe(pass *Pass) {
	rel, inModule := relModulePath(pass.Prog, pass.Pkg.Path)
	if !inModule || hooksafeAllowlist[rel] {
		return
	}
	metricsPath := pass.Prog.ModulePath + "/internal/metrics"
	tracePath := pass.Prog.ModulePath + "/internal/trace"
	guarded := nilGuardedMethods(pass.Prog.Package(metricsPath))
	info := pass.Pkg.Info
	inspectWithStack(pass.Pkg.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := info.Selections[sel]
		if !ok || selection.Kind() != types.MethodVal {
			return true // qualified call pkg.Func, not a method
		}
		recvType := selection.Recv()
		switch {
		case isNamed(recvType, tracePath, "Observer"):
			if !nilCheckDominates(info, sel.X, call, stack) {
				pass.Reportf(call.Pos(), "call to %s on a trace.Observer without a dominating nil check; use trace.Emit or guard with `if obs != nil`",
					sel.Sel.Name)
			}
		case isMetricsInstrument(recvType, metricsPath):
			if guarded[methodKey(selection)] {
				return true // the method itself is nil-receiver-safe
			}
			if !nilCheckDominates(info, sel.X, call, stack) {
				pass.Reportf(call.Pos(), "call to %s on a metrics instrument whose method is not nil-receiver-guarded and no nil check dominates",
					sel.Sel.Name)
			}
		}
		return true
	})
}

// isMetricsInstrument reports whether t is (a pointer to) one of the metrics
// instrument families.
func isMetricsInstrument(t types.Type, metricsPath string) bool {
	named, path := namedType(t)
	return named != nil && path == metricsPath && instrumentTypes[named.Obj().Name()]
}

// methodKey identifies a method as Type.Name.
func methodKey(sel *types.Selection) string {
	named, _ := namedType(sel.Recv())
	if named == nil {
		return ""
	}
	return named.Obj().Name() + "." + sel.Obj().Name()
}

// nilGuardedMethods scans the metrics package for pointer-receiver methods
// whose body begins with a nil receiver guard — either
//
//	if recv == nil { return ... }
//
// as the first statement, or a body entirely wrapped in `if recv != nil`.
// Calls to such methods are nil-safe by construction.
func nilGuardedMethods(metrics *Package) map[string]bool {
	guarded := map[string]bool{}
	if metrics == nil {
		return guarded
	}
	for _, file := range metrics.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recvNames := fd.Recv.List[0].Names
			if len(recvNames) == 0 {
				continue
			}
			recv := recvNames[0].Name
			recvType := recvTypeName(fd.Recv.List[0].Type)
			if recvType == "" || !bodyNilGuarded(fd.Body, recv) {
				continue
			}
			guarded[recvType+"."+fd.Name.Name] = true
		}
	}
	return guarded
}

// recvTypeName extracts the receiver's base type name from *T or T.
func recvTypeName(expr ast.Expr) string {
	if star, ok := expr.(*ast.StarExpr); ok {
		expr = star.X
	}
	if id, ok := expr.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// bodyNilGuarded reports whether the method body's first statement guards
// against a nil receiver.
func bodyNilGuarded(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return true // empty body: trivially nil-safe
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok {
		return false
	}
	// `if recv != nil && ... { ...work... }` wrapping the whole body.
	if condChecksNotNil(ifStmt.Cond, recv) && len(body.List) == 1 {
		return true
	}
	// `if recv == nil { return ... }` followed by the real work: the guard
	// body must exit.
	if op, lhs := nilComparison(ifStmt.Cond); op == "==" && lhs == recv {
		return endsInReturn(ifStmt.Body)
	}
	return false
}

// nilComparison decomposes a `x == nil` / `x != nil` condition, returning
// the operator and x's expression path.
func nilComparison(cond ast.Expr) (op, path string) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return "", ""
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if isNilIdent(y) {
		return bin.Op.String(), exprPath(x)
	}
	if isNilIdent(x) {
		return bin.Op.String(), exprPath(y)
	}
	return "", ""
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// endsInReturn reports whether the block's last statement terminates the
// function (return or panic).
func endsInReturn(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// nilCheckDominates reports whether the call site sits inside the body of an
// `if X != nil` (possibly `cond && ...`) whose X matches the receiver
// expression, including the `if x := f(); x != nil` form.
func nilCheckDominates(info *types.Info, recv ast.Expr, call *ast.CallExpr, stack []ast.Node) bool {
	recvPath := exprPath(recv)
	if recvPath == "" {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return false // don't credit guards from an outer function
		case *ast.IfStmt:
			// The guard only protects the then-branch.
			if !nodeWithin(call, anc.Body) {
				continue
			}
			if condChecksNotNil(anc.Cond, recvPath) {
				return true
			}
		}
	}
	return false
}

// condChecksNotNil reports whether cond (possibly an && conjunction)
// contains `recvPath != nil`.
func condChecksNotNil(cond ast.Expr, recvPath string) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if bin.Op.String() == "&&" {
		return condChecksNotNil(bin.X, recvPath) || condChecksNotNil(bin.Y, recvPath)
	}
	op, path := nilComparison(cond)
	return op == "!=" && path == recvPath
}

// nodeWithin reports whether n's position range lies inside container's.
func nodeWithin(n, container ast.Node) bool {
	return container != nil && container.Pos() <= n.Pos() && n.End() <= container.End()
}
