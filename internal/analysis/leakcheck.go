package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LeakCheckAnalyzer verifies that every goroutine spawned on the serving
// path has a termination edge — some mechanism by which shutdown reaches it:
//
//   - the spawned function (directly or through any module callee) selects
//     on or receives from a channel, ranges over one, or consults a
//     context.Context — i.e. it is "signalable"; or
//   - the go call forwards a context.Context argument; or
//   - the spawning function joins the goroutine (WaitGroup.Wait, channel
//     receive, range, or select in the spawner's body).
//
// Unlike the goroutine rule (same-function join, internal/ only), this rule
// is interprocedural — the signalable property is a backward summary over
// the call graph — and covers cmd/ binaries too, where a leaked goroutine
// keeps the process alive past shutdown.
var LeakCheckAnalyzer = &Analyzer{
	Name: "leakcheck",
	Doc:  "every go statement on the serving path needs a termination edge: a signalable body (through any call chain), a forwarded context, or a spawner-side join",
	Run:  runLeakCheck,
}

// leakScopes are the module-relative package prefixes under the rule: the
// serving path and the long-running binaries.
var leakScopes = []string{"internal/server", "internal/harness", "cmd"}

func runLeakCheck(pass *Pass) {
	rel, ok := relModulePath(pass.Prog, pass.Pkg.Path)
	if !ok || testHelperPkgs[rel] {
		return
	}
	inScope := false
	for _, scope := range leakScopes {
		if hasPathPrefix(rel, scope) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	info := pass.Pkg.Info
	signalable := signalableFuncs(pass.Prog)
	inspectWithStack(pass.Pkg.Files, func(n ast.Node, stack []ast.Node) bool {
		goStmt, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if passesContext(info, goStmt.Call) {
			return true
		}
		if spawnedSignalable(info, signalable, goStmt) {
			return true
		}
		if body := enclosingFuncBody(stack); body != nil &&
			hasJoinConstruct(info, body, goStmt.Call.Fun) {
			return true
		}
		pass.Reportf(goStmt.Pos(), "go statement has no termination edge: the goroutine is not signalable (no channel receive, select, or context use through any call chain), receives no context argument, and is not joined by its spawner; it can leak past shutdown")
		return true
	})
}

// signalableFuncs returns the module-wide transitive signalable summary:
// fn → true when fn takes a context.Context, or its body (or any module
// callee's, synchronously) contains a channel receive, select, range over a
// channel, or a context.Context reference.
func signalableFuncs(prog *Program) map[*types.Func]bool {
	return prog.fact("leakcheck.signalable", func() any {
		cg := prog.CallGraph()
		return cg.PropagateCallees(func(n *CGNode) bool {
			if sig, ok := n.Fn.Type().(*types.Signature); ok && hasContextParam(sig) {
				return true
			}
			if n.Decl.Body == nil {
				return false
			}
			return localSignalable(n.Pkg.Info, n.Decl.Body)
		})
	}).(map[*types.Func]bool)
}

// localSignalable reports whether body itself contains a termination-edge
// construct, excluding nested go-spawned literals (a signal handled by a
// grandchild goroutine does not stop this one).
func localSignalable(info *types.Info, body ast.Node) bool {
	spawned := spawnedLits(body)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if spawned[n] {
				return false
			}
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// spawnedSignalable reports whether the goroutine spawned by goStmt is
// signalable: for a literal, its body is locally signalable or calls a
// signalable module function; for a named call, the callee's summary decides.
func spawnedSignalable(info *types.Info, signalable map[*types.Func]bool, goStmt *ast.GoStmt) bool {
	if lit, ok := goStmt.Call.Fun.(*ast.FuncLit); ok {
		if localSignalable(info, lit.Body) {
			return true
		}
		spawned := spawnedLits(lit.Body)
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			if l, ok := n.(*ast.FuncLit); ok && l != lit && spawned[l] {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := calleeFunc(info, call); fn != nil && signalable[fn.Origin()] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	if fn := calleeFunc(info, goStmt.Call); fn != nil {
		return signalable[fn.Origin()]
	}
	return false
}

// passesContext reports whether any argument of the call is a
// context.Context — a forwarded cancellation signal.
func passesContext(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}
