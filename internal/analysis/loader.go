package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// LoadModule locates the Go module containing dir (by walking up to the
// nearest go.mod), parses every non-test package under the module root, and
// type-checks the packages in dependency order. Module-internal imports
// resolve against the freshly checked packages; all other imports resolve
// through the stdlib source importer, so the loader needs no compiled export
// data and no tooling beyond the standard library.
//
// Tags selects the build configuration: files whose //go:build constraint
// is false under the default configuration (GOOS, GOARCH, the toolchain's
// go1.N release tags, plus any extra tags given) are skipped, mirroring
// what `go build` would compile.
func LoadModule(dir string, tags ...string) (*Program, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	prog := &Program{Fset: fset, ModulePath: modPath, Root: root, byPath: map[string]*Package{}}
	for _, d := range dirs {
		pkg, err := parseDir(fset, root, modPath, d, tags)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable non-test files
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.byPath[pkg.Path] = pkg
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	if err := typecheck(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// findModule walks up from dir to the nearest go.mod and returns the module
// root directory and declared module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// packageDirs lists every directory under root that may hold a package,
// skipping testdata, vendor, hidden, and underscore-prefixed directories —
// the same pruning the go tool applies.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// parseDir parses the buildable non-test files of one directory into a
// Package (without type information). It returns nil if the directory holds
// no such files.
func parseDir(fset *token.FileSet, root, modPath, dir string, tags []string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if !buildable(src, tags) {
			continue
		}
		file, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, file)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	importPath := modPath
	if rel != "." {
		importPath = modPath + "/" + filepath.ToSlash(rel)
	}
	return &Package{Path: importPath, Dir: dir, Files: files}, nil
}

// buildable evaluates the file's //go:build constraint (if any) under the
// default build configuration plus the extra tags.
func buildable(src []byte, tags []string) bool {
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			if constraint.IsGoBuild(line) {
				expr, err := constraint.Parse(line)
				if err != nil {
					return true // malformed constraints fail loudly at type-check
				}
				return expr.Eval(func(tag string) bool { return tagEnabled(tag, tags) })
			}
			continue
		}
		break // reached the package clause: no constraint
	}
	return true
}

// tagEnabled reports whether a build tag is set in the default configuration
// extended with extra tags.
func tagEnabled(tag string, extra []string) bool {
	if tag == runtime.GOOS || tag == runtime.GOARCH || tag == "unix" && isUnix() {
		return true
	}
	if rest, ok := strings.CutPrefix(tag, "go1."); ok {
		if minor, err := strconv.Atoi(rest); err == nil {
			return minor <= toolchainMinor()
		}
	}
	for _, t := range extra {
		if t == tag {
			return true
		}
	}
	return false
}

func isUnix() bool {
	switch runtime.GOOS {
	case "linux", "darwin", "freebsd", "netbsd", "openbsd", "dragonfly", "solaris", "aix":
		return true
	}
	return false
}

// toolchainMinor extracts N from the running toolchain's go1.N version.
func toolchainMinor() int {
	v := strings.TrimPrefix(runtime.Version(), "go1.")
	if i := strings.IndexByte(v, '.'); i >= 0 {
		v = v[:i]
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 99 // devel toolchains: treat every release tag as satisfied
	}
	return n
}

// chainImporter resolves module-internal imports against the already
// type-checked program packages and everything else through the stdlib
// source importer.
type chainImporter struct {
	prog     *Program
	fallback types.ImporterFrom
}

func (ci *chainImporter) Import(path string) (*types.Package, error) {
	return ci.ImportFrom(path, "", 0)
}

func (ci *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg := ci.prog.Package(path); pkg != nil {
		if pkg.Types == nil {
			return nil, fmt.Errorf("internal error: import cycle or unchecked package %s", path)
		}
		return pkg.Types, nil
	}
	return ci.fallback.ImportFrom(path, dir, mode)
}

// typecheck type-checks the program's packages in topological import order.
func typecheck(prog *Program) error {
	order, err := topoOrder(prog)
	if err != nil {
		return err
	}
	src, ok := importer.ForCompiler(prog.Fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return fmt.Errorf("internal error: source importer is not an ImporterFrom")
	}
	imp := &chainImporter{prog: prog, fallback: src}
	for _, pkg := range order {
		cfg := types.Config{Importer: imp}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		tpkg, err := cfg.Check(pkg.Path, prog.Fset, pkg.Files, info)
		if err != nil {
			return fmt.Errorf("type-checking %s: %w", pkg.Path, err)
		}
		pkg.Types = tpkg
		pkg.Info = info
	}
	return nil
}

// topoOrder sorts the module packages so every package follows its
// module-internal imports.
func topoOrder(prog *Program) ([]*Package, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := map[string]int{}
	var order []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.Path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle through %s", p.Path)
		}
		state[p.Path] = visiting
		for _, file := range p.Files {
			for _, imp := range file.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if dep := prog.Package(path); dep != nil {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		state[p.Path] = done
		order = append(order, p)
		return nil
	}
	for _, p := range prog.Pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
