package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCheckAnalyzer enforces the serving path's lock discipline, module-wide:
//
//  1. A sync.Mutex/RWMutex held at a program point must not reach a blocking
//     operation — a channel send/receive outside a select with default, a
//     select without default, Cond.Wait / WaitGroup.Wait, acquiring another
//     lock, time.Sleep, or network/file I/O — directly or through any call
//     chain (the interprocedural part: module callees carry a transitive
//     "blocks" summary computed by the dataflow solver).
//  2. Every Lock/RLock must be released in the same function: either a
//     matching defer Unlock/RUnlock, or a plain release on the path — and
//     with a plain release, no return statement may sit between the acquire
//     and the release.
//
// The analysis is lexical within one function: the held region runs from the
// acquire to the first matching plain release after it (or to the end of the
// function under a deferred release). Locks handed across function
// boundaries (lock helpers) are reported as unreleased and need an audited
// //hyfdvet:allow if intentional.
var LockCheckAnalyzer = &Analyzer{
	Name: "lockcheck",
	Doc:  "no blocking operation while holding a mutex (through any call chain); every Lock must be released via defer or on every path",
	Run:  runLockCheck,
}

// acquireRelease pairs the sync acquire methods with their releases.
var acquireRelease = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

// blockingPkgFuncs lists known-blocking package-level stdlib functions; a
// nil set marks every function (and method) of the package as blocking.
var blockingPkgFuncs = map[string]map[string]bool{
	"time": {"Sleep": true},
	"os": {"Open": true, "OpenFile": true, "Create": true, "ReadFile": true,
		"WriteFile": true, "ReadDir": true, "Remove": true, "RemoveAll": true,
		"Mkdir": true, "MkdirAll": true, "Rename": true, "Stat": true, "Lstat": true},
	"io":       {"Copy": true, "CopyN": true, "ReadAll": true, "ReadFull": true, "WriteString": true},
	"net":      nil,
	"net/http": nil,
}

// blockingMethods lists known-blocking stdlib methods as pkg → receiver →
// methods. sync acquire methods are here too: taking a second lock while
// holding one is itself a blocking operation (and a lock-ordering hazard).
var blockingMethods = map[string]map[string]map[string]bool{
	"sync": {
		"Cond":      {"Wait": true},
		"WaitGroup": {"Wait": true},
		"Mutex":     {"Lock": true},
		"RWMutex":   {"Lock": true, "RLock": true},
	},
	"os": {
		"File": {"Read": true, "ReadAt": true, "Write": true, "WriteAt": true, "Sync": true},
	},
	"os/exec": {
		"Cmd": {"Run": true, "Wait": true, "Output": true, "CombinedOutput": true},
	},
}

// blockingStdlibCall classifies a call to a non-module function: it returns
// a human-readable description when the callee is known to block.
func blockingStdlibCall(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg := fn.Pkg().Path()
	if names, ok := blockingPkgFuncs[pkg]; ok && (names == nil || names[fn.Name()]) {
		return pkg + "." + fn.Name(), true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	if recvs, ok := blockingMethods[pkg]; ok {
		if named, _ := namedType(sig.Recv().Type()); named != nil {
			if recvs[named.Obj().Name()][fn.Name()] {
				return named.Obj().Name() + "." + fn.Name(), true
			}
		}
	}
	// Interface methods of the net package (Conn.Read, Listener.Accept, ...)
	// block by contract.
	if pkg == "net" {
		return "net." + fn.Name(), true
	}
	return "", false
}

// blockingFuncs returns the module-wide transitive blocking summary: fn →
// true when fn (or any module function it calls synchronously) performs a
// blocking operation. Bodies of go-spawned literals are excluded — they
// block their own goroutine, not the caller.
func blockingFuncs(prog *Program) map[*types.Func]bool {
	return prog.fact("lockcheck.blocking", func() any {
		cg := prog.CallGraph()
		return cg.PropagateCallees(func(n *CGNode) bool {
			if n.Decl.Body == nil {
				return false
			}
			found := false
			scanBlockingOps(n.Pkg.Info, n.Decl.Body, nil, func(pos token.Pos, what string) {
				found = true
			})
			return found
		})
	}).(map[*types.Func]bool)
}

// scanBlockingOps walks body reporting every potentially blocking operation.
// Nested function literals are skipped when spawned by a `go` statement
// (asynchronous) and descended into otherwise (deferred and
// immediately-invoked literals run on this goroutine; callback literals are
// treated conservatively). moduleBlocks, when non-nil, extends the
// classification to module callees via their transitive summary.
func scanBlockingOps(info *types.Info, body ast.Node, moduleBlocks map[*types.Func]bool, report func(pos token.Pos, what string)) {
	spawned := spawnedLits(body)
	exempt := []ast.Node{} // comm clauses of selects, never reported directly
	inExempt := func(n ast.Node) bool {
		for _, e := range exempt {
			if nodeWithin(n, e) {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if spawned[n] {
				return false
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range n.Body.List {
				if c, ok := clause.(*ast.CommClause); ok {
					if c.Comm == nil {
						hasDefault = true
					} else {
						exempt = append(exempt, c.Comm)
					}
				}
			}
			if !hasDefault {
				report(n.Pos(), "select without a default case")
			}
		case *ast.SendStmt:
			if !inExempt(n) {
				report(n.Pos(), "channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inExempt(n) {
				report(n.Pos(), "channel receive")
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					report(n.Pos(), "range over a channel")
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil {
				return true
			}
			if what, ok := blockingStdlibCall(fn); ok {
				report(n.Pos(), "call to "+what)
				return true
			}
			if moduleBlocks != nil && moduleBlocks[fn.Origin()] {
				report(n.Pos(), "call to "+fn.Name()+", which blocks transitively")
			}
		}
		return true
	})
}

// syncAcquire decomposes a call into (receiver path, acquire method) when it
// is Lock/RLock on a sync.Mutex or sync.RWMutex (possibly embedded).
func syncAcquire(info *types.Info, call *ast.CallExpr) (path, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || acquireRelease[sel.Sel.Name] == "" {
		return "", "", false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	path = exprPath(sel.X)
	if path == "" {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// lockRelease matches a call against the release method for path/method.
func lockRelease(info *types.Info, call *ast.CallExpr, path, release string) bool {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != release {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	return exprPath(sel.X) == path
}

func runLockCheck(pass *Pass) {
	rel, ok := relModulePath(pass.Prog, pass.Pkg.Path)
	if !ok || testHelperPkgs[rel] {
		return
	}
	info := pass.Pkg.Info
	blocks := blockingFuncs(pass.Prog)
	inspectWithStack(pass.Pkg.Files, func(n ast.Node, stack []ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		path, method, isAcquire := syncAcquire(info, call)
		if !isAcquire {
			return true
		}
		unit := enclosingFuncNode(stack)
		if unit == nil {
			return true
		}
		checkLockedRegion(pass, info, blocks, unit, call, path, method)
		return true
	})
}

// enclosingFuncNode returns the innermost function declaration or literal on
// the stack — the analysis unit a lock region is confined to.
func enclosingFuncNode(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// funcNodeBody extracts the body of a FuncDecl or FuncLit unit.
func funcNodeBody(unit ast.Node) *ast.BlockStmt {
	switch u := unit.(type) {
	case *ast.FuncDecl:
		return u.Body
	case *ast.FuncLit:
		return u.Body
	}
	return nil
}

// checkLockedRegion verifies one acquire site: a release must exist in the
// unit, plain releases must not be bypassed by a return, and the held region
// must not reach a blocking operation.
func checkLockedRegion(pass *Pass, info *types.Info, blocks map[*types.Func]bool,
	unit ast.Node, acquire *ast.CallExpr, path, method string) {
	body := funcNodeBody(unit)
	if body == nil {
		return
	}
	release := acquireRelease[method]

	// Collect the matching releases of this unit (excluding nested function
	// literals, except literals hanging off a defer — `defer func() {
	// mu.Unlock() }()` releases this unit's lock).
	var deferRelease bool
	var firstPlain token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != unit {
			if !withinDefer(body, lit) {
				return false
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !lockRelease(info, call, path, release) || call.Pos() <= acquire.Pos() {
			return true
		}
		if withinDefer(body, call) {
			deferRelease = true
		} else if firstPlain == token.NoPos || call.Pos() < firstPlain {
			firstPlain = call.Pos()
		}
		return true
	})

	if !deferRelease && firstPlain == token.NoPos {
		pass.Reportf(acquire.Pos(), "%s.%s() is never released in this function; add defer %s.%s() (lock helpers need an audited allow)",
			path, method, path, release)
		return
	}

	// The held region: acquire → first plain release, or the whole rest of
	// the unit under a deferred release.
	regionEnd := body.End()
	if firstPlain != token.NoPos {
		regionEnd = firstPlain
	}
	inRegion := func(pos token.Pos) bool { return pos > acquire.End() && pos < regionEnd }

	if !deferRelease {
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit != unit {
				return false
			}
			if ret, ok := n.(*ast.ReturnStmt); ok && inRegion(ret.Pos()) {
				pass.Reportf(ret.Pos(), "return while %s is locked (released at a plain %s.%s() after this point); release before returning or use defer",
					path, path, release)
			}
			return true
		})
	}

	scanBlockingOps(info, body, blocks, func(pos token.Pos, what string) {
		if !inRegion(pos) {
			return
		}
		pass.Reportf(pos, "%s while holding %s (locked via %s.%s()); blocking operations must not run under a mutex",
			what, path, path, method)
	})
}

// withinDefer reports whether node sits inside a defer statement of the
// given body.
func withinDefer(body *ast.BlockStmt, node ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok && nodeWithin(node, d) {
			found = true
			return false
		}
		return true
	})
	return found
}
