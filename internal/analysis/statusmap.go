package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// StatusMapAnalyzer keeps the server's error→HTTP mapping exhaustive: every
// exported error sentinel (an exported package-level `Err*` variable of
// error type, anywhere in the module) that is referenced by code reachable
// from the serving path must have an errors.Is case in StatusFor. A sentinel
// that escapes the mapping silently degrades to 500 on the wire — this rule
// turns that into a vet failure at the moment the sentinel first leaks onto
// the path.
//
// Reachability is computed over the module call graph from every function
// declared in the server package (handlers, the worker loop, and everything
// they call, including go-spawned named functions).
var StatusMapAnalyzer = &Analyzer{
	Name: "statusmap",
	Doc:  "every exported error sentinel reachable from the serving path must have a case in StatusFor",
	Run:  runStatusMap,
}

// statusMapScope is the module-relative package holding StatusFor.
const statusMapScope = "internal/server"

func runStatusMap(pass *Pass) {
	rel, ok := relModulePath(pass.Prog, pass.Pkg.Path)
	if !ok || rel != statusMapScope {
		return
	}
	statusFor := findStatusFor(pass.Pkg)
	if statusFor == nil {
		return // no mapping function: nothing to keep in sync
	}
	mapped := mappedSentinels(pass.Pkg.Info, statusFor)

	cg := pass.Prog.CallGraph()
	var roots []*types.Func
	for _, fn := range cg.Funcs() {
		if cg.Node(fn).Pkg == pass.Pkg {
			roots = append(roots, fn)
		}
	}
	reached := cg.ReachableFrom(roots)

	// Collect the module sentinels referenced by reachable bodies.
	required := map[*types.Var]bool{}
	for _, fn := range cg.Funcs() {
		if !reached[fn] {
			continue
		}
		node := cg.Node(fn)
		if node.Decl.Body == nil {
			continue
		}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v := sentinelVar(pass.Prog, node.Pkg.Info.Uses[id]); v != nil {
				required[v] = true
			}
			return true
		})
	}

	var missing []*types.Var
	for v := range required {
		if !mapped[v] {
			missing = append(missing, v)
		}
	}
	sort.Slice(missing, func(i, j int) bool {
		a, b := missing[i], missing[j]
		if a.Pkg().Path() != b.Pkg().Path() {
			return a.Pkg().Path() < b.Pkg().Path()
		}
		return a.Name() < b.Name()
	})
	for _, v := range missing {
		decl := pass.Prog.Fset.Position(v.Pos())
		pass.Reportf(statusFor.Pos(), "sentinel %s.%s (declared at %s:%d) is reachable from the serving path but has no errors.Is case in StatusFor; unmapped errors degrade to 500",
			v.Pkg().Name(), v.Name(), decl.Filename, decl.Line)
	}
}

// findStatusFor locates the package's StatusFor function declaration.
func findStatusFor(pkg *Package) *ast.FuncDecl {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == "StatusFor" {
				return fd
			}
		}
	}
	return nil
}

// mappedSentinels collects the sentinel variables StatusFor handles, via
// errors.Is(err, X) calls or direct == comparisons.
func mappedSentinels(info *types.Info, statusFor *ast.FuncDecl) map[*types.Var]bool {
	mapped := map[*types.Var]bool{}
	note := func(e ast.Expr) {
		var obj types.Object
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj = info.Uses[e]
		case *ast.SelectorExpr:
			obj = info.Uses[e.Sel]
		}
		if v, ok := obj.(*types.Var); ok {
			mapped[v] = true
		}
	}
	ast.Inspect(statusFor.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPkgCall(info, n, "errors", "Is") && len(n.Args) == 2 {
				note(n.Args[1])
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "==" {
				note(n.X)
				note(n.Y)
			}
		}
		return true
	})
	return mapped
}

// sentinelVar filters an object down to a module-declared exported
// package-level Err* variable of error type, or nil.
func sentinelVar(prog *Program, obj types.Object) *types.Var {
	v, ok := obj.(*types.Var)
	if !ok || !v.Exported() || v.Pkg() == nil {
		return nil
	}
	if _, inModule := relModulePath(prog, v.Pkg().Path()); !inModule {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	name := v.Name()
	if len(name) < 4 || name[:3] != "Err" {
		return nil
	}
	if !types.Implements(v.Type(), errorInterface()) {
		return nil
	}
	return v
}

// errorInterface returns the built-in error interface type.
func errorInterface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}
