// Command leakdemo seeds the leakcheck rule: every goroutine spawned in
// cmd/ (and on the serving path) needs a termination edge — a signalable
// body, a forwarded context, or a spawner-side join.
package main

import (
	"context"
	"sync"
)

// spin is pure computation: not signalable.
func spin(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// work is a plain step used by the literal fixtures.
func work() {}

// pump ranges over a channel: signalable, a close(ch) stops it.
func pump(ch chan int) {
	for v := range ch {
		_ = v
	}
}

// serve takes a context: signalable by signature.
func serve(ctx context.Context) {}

// waitDone receives: signalable, and makes its callers signalable too.
func waitDone(done chan struct{}) {
	<-done
}

// leakNamed spawns a pure function with no join anywhere: leaked.
func leakNamed() {
	go spin(10) // want "leakcheck: go statement has no termination edge"
}

// leakLit spawns a literal that loops forever with no signal: leaked.
func leakLit() {
	go func() { // want "leakcheck: go statement has no termination edge"
		for {
			work()
		}
	}()
}

// spawnSignalable spawns bodies that can be told to stop: no findings.
func spawnSignalable(ch chan int) {
	go pump(ch)
	go serve(context.Background())
}

// spawnTransitive reaches the channel receive through a module callee —
// the interprocedural case.
func spawnTransitive(done chan struct{}) {
	go func() {
		work()
		waitDone(done)
	}()
}

// spawnJoined relies on the spawner-side join instead.
func spawnJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func main() {
	ch := make(chan int)
	done := make(chan struct{})
	leakNamed()
	leakLit()
	spawnSignalable(ch)
	spawnTransitive(done)
	spawnJoined()
	close(done)
	close(ch)
	_ = spin(3)
}
