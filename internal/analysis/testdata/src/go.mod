module hyfd

go 1.22
