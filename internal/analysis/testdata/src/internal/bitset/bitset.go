// Package bitset is a corpus stub of the real bitset package: a value type
// over a shared backing array, with the mutators the bitsetalias analyzer
// tracks. The analyzer skips this package itself.
package bitset

// Set is a fixed-universe bitset; the value is a view over shared words.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over a universe of n attributes.
func New(n int) Set {
	return Set{words: make([]uint64, (n+63)/64), n: n}
}

// Set marks bit i in the shared backing array.
func (s Set) Set(i int) { s.words[i>>6] |= 1 << uint(i&63) }

// Clear unmarks bit i in the shared backing array.
func (s Set) Clear(i int) { s.words[i>>6] &^= 1 << uint(i&63) }

// Test reports whether bit i is set.
func (s Set) Test(i int) bool { return s.words[i>>6]&(1<<uint(i&63)) != 0 }

// Clone returns an independent copy.
func (s Set) Clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w, n: s.n}
}
