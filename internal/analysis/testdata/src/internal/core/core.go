// Package core seeds ctxflow violations: internal/core is inside the
// mandatory-forwarding scope, and no internal package may mint root
// contexts.
package core

import "context"

// helper accepts a context, so context-receiving exported callers must
// forward theirs.
func helper(ctx context.Context, n int) int {
	if ctx != nil && ctx.Err() != nil {
		return 0
	}
	return n
}

// Fresh mints a root context inside library code.
func Fresh() context.Context {
	return context.Background() // want "ctxflow: context.Background() outside cmd/ and tests"
}

// Run receives a context but hands the callee a fresh root instead.
func Run(ctx context.Context, n int) int {
	return helper(context.Background(), n) // want "ctxflow: context.Background() outside cmd/ and tests" "ctxflow: Run receives a context but passes a fresh context.Background to helper"
}

// Drop receives a context but never forwards one.
func Drop(ctx context.Context, n int) int {
	return helper(nil, n) // want "ctxflow: Drop receives a context but calls helper without forwarding it"
}

// Forward threads the caller's context: no finding.
func Forward(ctx context.Context, n int) int {
	return helper(ctx, n)
}
