// The determinism map-range rule, interprocedural case: the loop body
// reaches an output sink through a module callee instead of printing
// directly.
package core

import (
	"fmt"
	"sort"
)

// emit writes one record to stdout — its callers transitively emit output.
func emit(k string, v int) {
	fmt.Println(k, v)
}

// DumpScores iterates a map and emits through a callee: the iteration
// order taints the output across the call.
func DumpScores(scores map[string]int) {
	for k, v := range scores { // want "determinism: range over map calls emit, which emits output transitively"
		emit(k, v)
	}
}

// DumpSorted collects, sorts, then emits: no finding.
func DumpSorted(scores map[string]int) {
	var keys []string
	for k := range scores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit(k, scores[k])
	}
}
