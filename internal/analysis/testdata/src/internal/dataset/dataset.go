// Package dataset is a corpus stub of the immutable preprocessing
// artifact. It seeds hooksafe violations (the optional hooks fired without
// nil protection) and the bitsetalias shared-state exemption: the owning
// package may seed artifact internals through its own accessors while
// constructing them.
package dataset

import (
	"hyfd/internal/metrics"
	"hyfd/internal/pli"
	"hyfd/internal/trace"
)

// Dataset is the shared artifact: accessors hand out state that consumer
// packages must never write through.
type Dataset struct {
	ix    *pli.Index
	obs   trace.Observer
	built *metrics.Counter
}

// Index returns the shared PLI index.
func (d *Dataset) Index() *pli.Index { return d.ix }

// Plis returns the shared per-attribute PLIs.
func (d *Dataset) Plis() []*pli.PLI { return d.ix.Plis }

// PrepareBad fires the optional hooks without nil protection.
func (d *Dataset) PrepareBad(n int) {
	d.ix = pli.Build(n)
	d.obs.Observe(trace.Event{Name: "prepared"}) // want "hooksafe: call to Observe on a trace.Observer without a dominating nil check"
	d.built.Reset()                              // want "hooksafe: call to Reset on a metrics instrument"
}

// PrepareGood guards the hooks and seeds artifact state through its own
// accessors — the owner package is exempt from the shared-state rule, so
// nothing is reported.
func (d *Dataset) PrepareGood(n int) {
	d.ix = pli.Build(n)
	d.Index().NumRows = n
	d.Plis()[0].Clusters = nil
	if d.obs != nil {
		d.obs.Observe(trace.Event{Name: "prepared"})
	}
	if d.built != nil {
		d.built.Reset()
	}
	d.built.Inc()
}
