// Package fdtree seeds bitsetalias violations: mutating bitset methods on
// values flowing from map elements or function results alias (or discard)
// shared backing words.
package fdtree

import "hyfd/internal/bitset"

// covers maps attribute names to candidate sets.
type covers map[string]bitset.Set

// Mutate writes through aliasing temporaries.
func Mutate(c covers, fresh func() bitset.Set) {
	c["a"].Set(1)    // want "bitsetalias: Set on a bitset obtained from a map element"
	fresh().Clear(2) // want "bitsetalias: Clear on a bitset obtained from a function result"
	s := fresh()
	s.Set(3)
	s.Clear(1)
}
