// Package harness seeds the bitsetalias shared-state rule from the
// consumer side: a prepared Dataset and its PLIs are shared read-only
// between concurrent runs, so writes through their accessor results are
// findings here.
package harness

import (
	"hyfd/internal/dataset"
	"hyfd/internal/pli"
)

// MutateShared writes through accessor results flowing from the shared
// artifacts.
func MutateShared(ds *dataset.Dataset) {
	ds.Plis()[0].Clusters = nil  // want "bitsetalias: write through a pli.PLI accessor result"
	ds.Index().NumRows = 0       // want "bitsetalias: write through a pli.Index accessor result"
	ds.Index().Records[0][1] = 5 // want "bitsetalias: write through a pli.Index accessor result"
	ds.Index().NumRows++         // want "bitsetalias: write through a pli.Index accessor result"
}

// Chain hands out the snapshot version chain the way a registry would:
// the returned slice aliases shared bookkeeping, and the snapshots are
// shared artifacts themselves.
func Chain(ds *dataset.Dataset) []*dataset.Dataset { return []*dataset.Dataset{ds} }

// Snapshot hands out one shared snapshot.
func Snapshot(ds *dataset.Dataset) *dataset.Dataset { return ds }

// MutateSnapshots writes through accessor results that flow from the
// Dataset artifact itself — the delta chain's snapshots are immutable once
// built, so both the chain slots and the pointed-to snapshots are findings.
func MutateSnapshots(ds *dataset.Dataset) {
	Chain(ds)[0] = nil                // want "bitsetalias: write through a dataset.Dataset accessor result"
	*Snapshot(ds) = dataset.Dataset{} // want "bitsetalias: write through a dataset.Dataset accessor result"
	Snapshot(ds).Index().NumRows = 0  // want "bitsetalias: write through a pli.Index accessor result"
}

// WalkChain reads the chain without writing through it: no finding.
func WalkChain(ds *dataset.Dataset) int {
	n := 0
	for _, s := range Chain(ds) {
		n += s.Index().NumRows
	}
	return n
}

// ReadShared reads shared state freely and writes only locally built
// artifacts: no finding.
func ReadShared(ds *dataset.Dataset) int {
	total := ds.Index().NumRows
	for _, p := range ds.Plis() {
		total += len(p.Clusters)
	}
	mine := pli.Build(2)
	mine.NumRows = total // a locally built index is the caller's to write
	for _, rec := range mine.Records {
		rec[0] = 1
	}
	return total
}
