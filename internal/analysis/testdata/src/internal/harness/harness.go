// Package harness seeds the bitsetalias shared-state rule from the
// consumer side: a prepared Dataset and its PLIs are shared read-only
// between concurrent runs, so writes through their accessor results are
// findings here.
package harness

import (
	"hyfd/internal/dataset"
	"hyfd/internal/pli"
)

// MutateShared writes through accessor results flowing from the shared
// artifacts.
func MutateShared(ds *dataset.Dataset) {
	ds.Plis()[0].Clusters = nil  // want "bitsetalias: write through a pli.PLI accessor result"
	ds.Index().NumRows = 0       // want "bitsetalias: write through a pli.Index accessor result"
	ds.Index().Records[0][1] = 5 // want "bitsetalias: write through a pli.Index accessor result"
	ds.Index().NumRows++         // want "bitsetalias: write through a pli.Index accessor result"
}

// ReadShared reads shared state freely and writes only locally built
// artifacts: no finding.
func ReadShared(ds *dataset.Dataset) int {
	total := ds.Index().NumRows
	for _, p := range ds.Plis() {
		total += len(p.Clusters)
	}
	mine := pli.Build(2)
	mine.NumRows = total // a locally built index is the caller's to write
	for _, rec := range mine.Records {
		rec[0] = 1
	}
	return total
}
