// Package locks seeds the lockcheck rule: blocking operations must not run
// while a sync mutex is held (directly or through any call chain), and every
// acquire needs a release on all paths.
package locks

import (
	"sync"
	"time"
)

// Store is the guarded fixture type.
type Store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
	ch   chan int
}

// slowWrite reaches time.Sleep: transitively blocking for its callers.
func slowWrite() {
	time.Sleep(time.Millisecond)
}

// SendUnderLock performs a channel send while the mutex is held.
func (s *Store) SendUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want "lockcheck: channel send while holding s.mu"
}

// SleepViaHelper reaches a blocking call through a module callee — the
// interprocedural case a single-function scan cannot see.
func (s *Store) SleepViaHelper() {
	s.mu.Lock()
	defer s.mu.Unlock()
	slowWrite() // want "lockcheck: call to slowWrite, which blocks transitively"
}

// EarlyReturn returns between a plain Lock and its release, leaking the
// lock on the hit path.
func (s *Store) EarlyReturn(k string) int {
	s.mu.Lock()
	if v, ok := s.data[k]; ok {
		return v // want "lockcheck: return while s.mu is locked"
	}
	s.mu.Unlock()
	return 0
}

// Orphan acquires and never releases.
func (s *Store) Orphan() {
	s.mu.Lock() // want "lockcheck: s.mu.Lock() is never released in this function"
	s.data["x"] = 1
}

// Guarded is the clean counterpart: deferred release, a non-blocking
// select (it has a default case), and plain map access.
func (s *Store) Guarded(k string) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	select {
	case v := <-s.ch:
		return v
	default:
	}
	return s.data[k]
}

// ClaimThenWork is the claim-then-release idiom: the slow work runs after
// the plain release, so no finding.
func (s *Store) ClaimThenWork(k string) {
	s.mu.Lock()
	if _, taken := s.data[k]; taken {
		s.mu.Unlock()
		return
	}
	s.data[k] = 0
	s.mu.Unlock()
	slowWrite()
}

// staleAllowed carries a suppression that absorbs nothing: the
// -strict-allows sweep (exercised by the analysis and CLI tests) must
// report it as a stale-allow warning.
func staleAllowed() int {
	//hyfdvet:allow lockcheck stale on purpose: this fixture line violates nothing
	return 1
}
