// Package metrics is a corpus stub of the real metrics package: one
// instrument family mixing nil-receiver-guarded and unguarded methods, from
// which the hooksafe analyzer derives its structural safety facts.
package metrics

// Counter is a monotonic instrument; a nil *Counter is a recording no-op
// for the guarded methods only.
type Counter struct{ n int64 }

// Add is guarded with the early-return idiom.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.n += delta
}

// Inc is guarded with the wrapping idiom.
func (c *Counter) Inc() {
	if c != nil {
		c.n++
	}
}

// Reset is deliberately unguarded: callers must nil-check.
func (c *Counter) Reset() { c.n = 0 }
