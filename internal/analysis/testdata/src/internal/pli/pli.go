// Package pli seeds determinism violations: internal/pli is inside the
// determinism scope, so wall-clock reads and unsorted map-range output are
// findings here.
package pli

import (
	"fmt"
	"sort"
	"time"
)

// Timestamp reads the wall clock from a determinism-scoped package.
func Timestamp() int64 {
	return time.Now().Unix() // want "determinism: call to time.Now"
}

// CollectUnsorted leaks map iteration order into its result slice.
func CollectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want "determinism: range over map appends to a slice"
		out = append(out, k)
	}
	return out
}

// CollectSorted is the collect-then-sort idiom: no finding.
func CollectSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PrintAll emits output in randomized map order.
func PrintAll(m map[string]int) {
	for k, v := range m { // want "determinism: range over map emits output"
		fmt.Println(k, v)
	}
}

// TimestampAllowed carries an audited suppression: the raw finding exists
// but must not survive the suppression filter.
func TimestampAllowed() int64 {
	//hyfdvet:allow determinism — corpus fixture for suppression coverage
	return time.Now().Unix()
}

// PLI and Index are corpus stubs of the shared preprocessing artifacts the
// bitsetalias shared-state rule protects: consumer packages must not write
// through accessors returning them.
type PLI struct {
	Attr     int
	Clusters [][]int32
}

// Index bundles the per-attribute PLIs with the compressed records.
type Index struct {
	Plis    []*PLI
	Records [][]int32
	NumRows int
}

// Build constructs an Index. The owning package writes artifact internals
// freely — it is exempt from the shared-state rule.
func Build(n int) *Index {
	ix := &Index{NumRows: 2}
	for a := 0; a < n; a++ {
		p := &PLI{Attr: a}
		p.Clusters = append(p.Clusters, []int32{0, 1})
		ix.Plis = append(ix.Plis, p)
		ix.Records = append(ix.Records, make([]int32, n))
	}
	return ix
}
