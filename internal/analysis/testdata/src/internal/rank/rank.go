// Package rank pins the determinism rule over the ranking layer: scores
// and cut-bound decisions feed directly into the ranked result order, so
// code here must never read the clock or draw randomness — a leak would
// reorder the any-time stream between otherwise identical runs.
package rank

import "math/rand"

// Scorer is a corpus stub of the ranked candidate scorer.
type Scorer struct {
	jitter float64
}

// NewBare seeds the scorer from the global RNG without a suppression: a
// finding.
func NewBare() *Scorer {
	return &Scorer{jitter: rand.Float64()} // want "determinism: call to math/rand.Float64"
}

// NewAudited carries a suppression, which must drop the raw finding — the
// real package has no such site; the fixture only pins the mechanism.
func NewAudited() *Scorer {
	//hyfdvet:allow determinism — corpus-only: exercises suppression filtering inside the ranking scope
	return &Scorer{jitter: rand.Float64()}
}
