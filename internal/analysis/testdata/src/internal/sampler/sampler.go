// Package sampler seeds goroutine-hygiene violations: every go statement in
// internal/ must capture loop variables explicitly and join in the same
// function.
package sampler

import "sync"

func process(n int) { _ = n }

// SpawnLeak closes over the loop variable and never joins.
func SpawnLeak(items []int) {
	for _, it := range items {
		go func() { // want "goroutine: go statement with no WaitGroup.Wait"
			process(it) // want "goroutine: goroutine closes over loop variable it"
		}()
	}
}

// SpawnJoined passes the loop variable as an argument and waits: no finding.
func SpawnJoined(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			process(v)
		}(it)
	}
	wg.Wait()
}
