// Package server seeds the statusmap rule: every exported error sentinel
// reachable from the serving path must have an errors.Is case in StatusFor.
package server

import (
	"errors"
	"net/http"
)

var (
	// ErrMapped has a StatusFor case: clean.
	ErrMapped = errors.New("mapped")
	// ErrOrphan is returned by the handler but never mapped: it would
	// degrade to 500 on the wire.
	ErrOrphan = errors.New("orphan")
	// errInternal is unexported: not a sentinel, never required.
	errInternal = errors.New("internal detail")
)

// Handle is the serving-path root; it references both sentinels.
func Handle(fail bool) error {
	if fail {
		return ErrOrphan
	}
	if false {
		return errInternal
	}
	return ErrMapped
}

// StatusFor maps errors onto HTTP statuses.
func StatusFor(err error) int { // want "statusmap: sentinel server.ErrOrphan"
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrMapped):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}
