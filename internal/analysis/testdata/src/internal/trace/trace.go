// Package trace is a corpus stub of the real trace package: the optional
// observer hook and its nil-safe emission helper. The package is on the
// hooksafe structural allowlist, so its own Observe call reports nothing.
package trace

// Event is one engine observation.
type Event struct{ Name string }

// Observer receives engine events; a nil Observer means tracing is off.
type Observer interface {
	Observe(Event)
}

// Emit delivers e to o when o is non-nil.
func Emit(o Observer, e Event) {
	if o != nil {
		o.Observe(e)
	}
}
