// Package tracing pins the determinism rule over the serving path's span
// layer: internal/tracing is telemetry-only, but it sits inside the
// determinism scope so clock reads stay centralized behind audited
// suppressions — a bare clock read is a finding here, and the two audited
// sites (the recorder epoch and its monotonic offset) must survive only
// through //hyfdvet:allow.
package tracing

import "time"

// Recorder is a corpus stub of one job's flight recorder.
type Recorder struct {
	epoch time.Time
}

// NewBare reads the wall clock without a suppression: a finding.
func NewBare() *Recorder {
	return &Recorder{epoch: time.Now()} // want "determinism: call to time.Now"
}

// NewAudited mirrors the real recorder's epoch read: the raw finding exists
// but the audited suppression must drop it.
func NewAudited() *Recorder {
	//hyfdvet:allow determinism — recorder epoch is telemetry only; span content never feeds back into results
	return &Recorder{epoch: time.Now()}
}

// NowBare reads the monotonic offset without a suppression: a finding.
func (r *Recorder) NowBare() time.Duration {
	return time.Since(r.epoch) // want "determinism: call to time.Since"
}

// NowAudited mirrors the real recorder's single monotonic read.
func (r *Recorder) NowAudited() time.Duration {
	//hyfdvet:allow determinism — span timestamps are telemetry only; they never influence discovery output
	return time.Since(r.epoch)
}
