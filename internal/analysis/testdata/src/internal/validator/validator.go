// Package validator seeds hooksafe violations: observer and metrics hook
// calls outside the structural allowlist must be provably nil-safe.
package validator

import (
	"hyfd/internal/metrics"
	"hyfd/internal/trace"
)

// V bundles optional observability hooks.
type V struct {
	obs   trace.Observer
	count *metrics.Counter
}

// Bad calls hooks without nil protection.
func (v *V) Bad(e trace.Event) {
	v.obs.Observe(e) // want "hooksafe: call to Observe on a trace.Observer without a dominating nil check"
	v.count.Reset()  // want "hooksafe: call to Reset on a metrics instrument"
}

// Good nil-checks the observer and the unguarded method, and calls the
// guarded instrument methods freely: no finding.
func (v *V) Good(e trace.Event) {
	if v.obs != nil {
		v.obs.Observe(e)
	}
	v.count.Add(1)
	v.count.Inc()
	if v.count != nil {
		v.count.Reset()
	}
}
