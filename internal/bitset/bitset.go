// Package bitset provides fixed-width bitsets over a small universe of
// attributes. HyFD encodes left-hand sides of functional dependencies and
// observed FD-violations as bitsets, so these operations sit on the hot path
// of both discovery phases.
//
// A Set is a value type backed by a []uint64 word slice. All binary
// operations require both operands to share the same universe width; this is
// checked only when the word counts differ, keeping the common path free of
// branches.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
	"unsafe"
)

const wordBits = 64

// Set is a bitset over a fixed universe of n attributes, indexed 0..n-1.
// The zero value is an empty set over an empty universe; use New to create
// a set with capacity.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over a universe of n attributes.
func New(n int) Set {
	if n < 0 {
		panic("bitset: negative universe size")
	}
	return Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a set over a universe of n attributes with the given
// indices set.
func FromIndices(n int, indices ...int) Set {
	s := New(n)
	for _, i := range indices {
		s.Set(i)
	}
	return s
}

// Universe returns the number of attributes in the set's universe.
func (s Set) Universe() int { return s.n }

// Set marks attribute i as a member.
func (s Set) Set(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear removes attribute i.
func (s Set) Clear(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether attribute i is a member.
func (s Set) Test(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	c := Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// With returns a copy of s with attribute i added.
func (s Set) With(i int) Set {
	c := s.Clone()
	c.Set(i)
	return c
}

// Without returns a copy of s with attribute i removed.
func (s Set) Without(i int) Set {
	c := s.Clone()
	c.Clear(i)
	return c
}

// Cardinality returns the number of members.
func (s Set) Cardinality() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether no attribute is set.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain the same members.
func (s Set) Equal(t Set) bool {
	if len(s.words) != len(t.words) {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// IsSubsetOf reports whether every member of s is a member of t.
func (s Set) IsSubsetOf(t Set) bool {
	if len(s.words) != len(t.words) {
		panic("bitset: universe mismatch")
	}
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// IsProperSubsetOf reports whether s ⊂ t.
func (s Set) IsProperSubsetOf(t Set) bool {
	return s.IsSubsetOf(t) && !s.Equal(t)
}

// Intersects reports whether s and t share at least one member.
func (s Set) Intersects(t Set) bool {
	if len(s.words) != len(t.words) {
		panic("bitset: universe mismatch")
	}
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// And returns s ∩ t as a new set.
func (s Set) And(t Set) Set {
	if len(s.words) != len(t.words) {
		panic("bitset: universe mismatch")
	}
	r := Set{words: make([]uint64, len(s.words)), n: s.n}
	for i := range s.words {
		r.words[i] = s.words[i] & t.words[i]
	}
	return r
}

// Or returns s ∪ t as a new set.
func (s Set) Or(t Set) Set {
	if len(s.words) != len(t.words) {
		panic("bitset: universe mismatch")
	}
	r := Set{words: make([]uint64, len(s.words)), n: s.n}
	for i := range s.words {
		r.words[i] = s.words[i] | t.words[i]
	}
	return r
}

// AndNot returns s \ t as a new set.
func (s Set) AndNot(t Set) Set {
	if len(s.words) != len(t.words) {
		panic("bitset: universe mismatch")
	}
	r := Set{words: make([]uint64, len(s.words)), n: s.n}
	for i := range s.words {
		r.words[i] = s.words[i] &^ t.words[i]
	}
	return r
}

// Flip returns the complement of s within its universe.
func (s Set) Flip() Set {
	r := Set{words: make([]uint64, len(s.words)), n: s.n}
	for i := range s.words {
		r.words[i] = ^s.words[i]
	}
	// Mask off bits beyond the universe in the last word.
	if rem := s.n % wordBits; rem != 0 && len(r.words) > 0 {
		r.words[len(r.words)-1] &= (1 << uint(rem)) - 1
	}
	return r
}

// NextSet returns the index of the first member >= i, or -1 if none exists.
func (s Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	w := i / wordBits
	word := s.words[w] >> (uint(i) % wordBits)
	if word != 0 {
		return i + bits.TrailingZeros64(word)
	}
	for w++; w < len(s.words); w++ {
		if s.words[w] != 0 {
			return w*wordBits + bits.TrailingZeros64(s.words[w])
		}
	}
	return -1
}

// Indices returns the members of s in ascending order.
func (s Set) Indices() []int {
	out := make([]int, 0, s.Cardinality())
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		out = append(out, i)
	}
	return out
}

// ForEach calls fn for every member of s in ascending order. It stops early
// if fn returns false.
func (s Set) ForEach(fn func(i int) bool) {
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		if !fn(i) {
			return
		}
	}
}

// Key returns a string usable as a map key identifying the set's contents.
// Two sets over the same universe have equal keys iff they are Equal. The
// returned string aliases no mutable memory.
func (s Set) Key() string {
	if len(s.words) == 0 {
		return ""
	}
	b := unsafe.Slice((*byte)(unsafe.Pointer(&s.words[0])), len(s.words)*8)
	return string(b) // string() copies
}

// CompareCardinalityDesc is a comparison function ordering sets by
// descending cardinality, breaking ties by lexicographic word order so the
// ordering is total and deterministic.
func CompareCardinalityDesc(a, b Set) int {
	ca, cb := a.Cardinality(), b.Cardinality()
	if ca != cb {
		return cb - ca
	}
	for i := range a.words {
		if a.words[i] != b.words[i] {
			if a.words[i] < b.words[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// String renders the set as {i,j,...} for debugging.
func (s Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}
