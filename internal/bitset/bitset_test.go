package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(0)
	if !s.IsEmpty() || s.Cardinality() != 0 || s.Universe() != 0 {
		t.Fatalf("zero-universe set not empty: %v", s)
	}
	if s.NextSet(0) != -1 {
		t.Fatalf("NextSet on empty universe = %d, want -1", s.NextSet(0))
	}
}

func TestSetClearTest(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := s.Cardinality(); got != 8 {
		t.Fatalf("Cardinality = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := s.Cardinality(); got != 7 {
		t.Fatalf("Cardinality = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, fn := range []func(){
		func() { s.Set(10) },
		func() { s.Set(-1) },
		func() { s.Clear(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on out-of-range index")
				}
			}()
			fn()
		}()
	}
	// Test is lenient: out of range reports false.
	if s.Test(10) || s.Test(-1) {
		t.Fatal("Test out of range should be false")
	}
}

func TestFromIndicesAndIndices(t *testing.T) {
	s := FromIndices(70, 3, 69, 5)
	got := s.Indices()
	want := []int{3, 5, 69}
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := FromIndices(10, 1, 2)
	c := s.Clone()
	c.Set(3)
	if s.Test(3) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Test(1) || !c.Test(2) {
		t.Fatal("Clone lost members")
	}
}

func TestWithWithout(t *testing.T) {
	s := FromIndices(10, 1)
	w := s.With(2)
	if !w.Test(1) || !w.Test(2) || s.Test(2) {
		t.Fatal("With broken")
	}
	wo := w.Without(1)
	if wo.Test(1) || !wo.Test(2) || !w.Test(1) {
		t.Fatal("Without broken")
	}
}

func TestFlipMasksTail(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 128} {
		s := New(n)
		f := s.Flip()
		if f.Cardinality() != n {
			t.Fatalf("Flip(empty,%d).Cardinality = %d, want %d", n, f.Cardinality(), n)
		}
		ff := f.Flip()
		if !ff.IsEmpty() {
			t.Fatalf("double Flip over %d not empty: %v", n, ff)
		}
	}
}

func TestNextSetWordBoundaries(t *testing.T) {
	s := FromIndices(200, 0, 63, 64, 127, 128, 199)
	var got []int
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		got = append(got, i)
	}
	want := []int{0, 63, 64, 127, 128, 199}
	if len(got) != len(want) {
		t.Fatalf("iteration = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iteration = %v, want %v", got, want)
		}
	}
	if s.NextSet(200) != -1 || s.NextSet(-5) != 0 {
		t.Fatal("NextSet boundary handling broken")
	}
}

func TestSubsetAndEqual(t *testing.T) {
	a := FromIndices(70, 1, 65)
	b := FromIndices(70, 1, 2, 65)
	if !a.IsSubsetOf(b) || b.IsSubsetOf(a) {
		t.Fatal("IsSubsetOf broken")
	}
	if !a.IsProperSubsetOf(b) || a.IsProperSubsetOf(a) {
		t.Fatal("IsProperSubsetOf broken")
	}
	if !a.IsSubsetOf(a) || !a.Equal(a.Clone()) {
		t.Fatal("reflexivity broken")
	}
}

func TestBooleanOps(t *testing.T) {
	a := FromIndices(70, 1, 2, 65)
	b := FromIndices(70, 2, 3, 65)
	if got := a.And(b).Indices(); len(got) != 2 || got[0] != 2 || got[1] != 65 {
		t.Fatalf("And = %v", got)
	}
	if got := a.Or(b).Indices(); len(got) != 4 {
		t.Fatalf("Or = %v", got)
	}
	if got := a.AndNot(b).Indices(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("AndNot = %v", got)
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects false negative")
	}
	if a.Intersects(FromIndices(70, 4)) {
		t.Fatal("Intersects false positive")
	}
}

func TestKeyDistinguishes(t *testing.T) {
	a := FromIndices(70, 1, 65)
	b := FromIndices(70, 1, 64)
	if a.Key() == b.Key() {
		t.Fatal("distinct sets share a Key")
	}
	if a.Key() != a.Clone().Key() {
		t.Fatal("equal sets have distinct Keys")
	}
}

func TestString(t *testing.T) {
	if got := FromIndices(10, 1, 3).String(); got != "{1,3}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
}

func TestCompareCardinalityDesc(t *testing.T) {
	a := FromIndices(10, 1, 2, 3)
	b := FromIndices(10, 4)
	if CompareCardinalityDesc(a, b) >= 0 {
		t.Fatal("larger set should sort first")
	}
	if CompareCardinalityDesc(a, a.Clone()) != 0 {
		t.Fatal("equal sets should compare 0")
	}
	c := FromIndices(10, 1, 2, 4)
	if CompareCardinalityDesc(a, c) == 0 {
		t.Fatal("tie-break must distinguish different sets")
	}
}

// randomSet builds a Set from quick-check supplied bits.
func randomSet(r *rand.Rand, n int) Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			s.Set(i)
		}
	}
	return s
}

func TestQuickAlgebraLaws(t *testing.T) {
	const n = 100
	cfg := &quick.Config{MaxCount: 200}
	// De Morgan: ¬(a ∪ b) = ¬a ∩ ¬b
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r, n), randomSet(r, n)
		return a.Or(b).Flip().Equal(a.Flip().And(b.Flip()))
	}, cfg)
	if err != nil {
		t.Errorf("De Morgan law failed: %v", err)
	}
	// a \ b = a ∩ ¬b
	err = quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r, n), randomSet(r, n)
		return a.AndNot(b).Equal(a.And(b.Flip()))
	}, cfg)
	if err != nil {
		t.Errorf("difference law failed: %v", err)
	}
	// |a| + |b| = |a ∪ b| + |a ∩ b|
	err = quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r, n), randomSet(r, n)
		return a.Cardinality()+b.Cardinality() == a.Or(b).Cardinality()+a.And(b).Cardinality()
	}, cfg)
	if err != nil {
		t.Errorf("inclusion-exclusion failed: %v", err)
	}
	// subset ⇔ a ∩ b = a
	err = quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r, n), randomSet(r, n)
		return a.IsSubsetOf(b) == a.And(b).Equal(a)
	}, cfg)
	if err != nil {
		t.Errorf("subset law failed: %v", err)
	}
	// Key equality ⇔ set equality
	err = quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r, n), randomSet(r, n)
		return (a.Key() == b.Key()) == a.Equal(b)
	}, cfg)
	if err != nil {
		t.Errorf("Key uniqueness failed: %v", err)
	}
	// Indices roundtrip
	err = quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r, n)
		return FromIndices(n, a.Indices()...).Equal(a)
	}, cfg)
	if err != nil {
		t.Errorf("Indices roundtrip failed: %v", err)
	}
}

func BenchmarkAnd(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randomSet(r, 256), randomSet(r, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.And(y)
	}
}

func BenchmarkKey(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randomSet(r, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Key()
	}
}
