package closure

import (
	"fmt"

	"hyfd/internal/bitset"
	"hyfd/internal/fd"
	"hyfd/internal/relation"
)

// ArmstrongRelation constructs a relation whose functional dependencies are
// exactly the closure of the given FD set — an Armstrong relation. The
// construction is the classical one via closed attribute sets (X is closed
// iff X⁺ = X): a base record plus, per closed set C, one record that agrees
// with the base exactly on C. Then X → A holds in the instance iff A lies
// in every closed superset of X, i.e. iff A ∈ X⁺.
//
// The enumeration of closed sets is exponential in numAttrs; Armstrong
// relations are a test and teaching device for small schemas (the Dep-Miner
// lineage of the paper's related work treats them as a first-class output).
func ArmstrongRelation(fds *fd.Set, numAttrs int) *relation.Relation {
	cols := make([]string, numAttrs)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d", i)
	}
	rel := relation.New("armstrong", cols)
	if numAttrs == 0 {
		return rel
	}
	if numAttrs > 20 {
		panic("closure: ArmstrongRelation is limited to 20 attributes")
	}

	base := make([]string, numAttrs)
	for i := range base {
		base[i] = "0"
	}
	rel.AppendRow(base)

	full := bitset.New(numAttrs).Flip()
	next := 1
	for mask := 0; mask < 1<<numAttrs; mask++ {
		x := bitset.New(numAttrs)
		for a := 0; a < numAttrs; a++ {
			if mask&(1<<a) != 0 {
				x.Set(a)
			}
		}
		if x.Equal(full) || !Closure(fds, x).Equal(x) {
			continue // not closed, or the trivial full set
		}
		row := make([]string, numAttrs)
		for a := 0; a < numAttrs; a++ {
			if x.Test(a) {
				row[a] = "0"
			} else {
				row[a] = fmt.Sprintf("v%d", next)
				next++
			}
		}
		rel.AppendRow(row)
	}
	return rel
}
