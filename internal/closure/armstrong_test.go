package closure

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyfd/internal/bitset"
	"hyfd/internal/fd"
	"hyfd/internal/relation"
)

// minimalFDsOfClosure derives, from an FD set, the minimal FDs its closure
// implies: for every A, the minimal X with A ∈ X⁺ and A ∉ X.
func minimalFDsOfClosure(fds *fd.Set, n int) *fd.Set {
	out := fd.NewSet(n)
	for rhs := 0; rhs < n; rhs++ {
		var found []bitset.Set
		level := []bitset.Set{bitset.New(n)}
		for len(level) > 0 {
			var next []bitset.Set
			seen := map[string]struct{}{}
			for _, lhs := range level {
				dominated := false
				for _, g := range found {
					if g.IsSubsetOf(lhs) {
						dominated = true
						break
					}
				}
				if dominated {
					continue
				}
				if Determines(fds, lhs, rhs) {
					found = append(found, lhs)
					out.Add(fd.FD{Lhs: lhs, Rhs: rhs})
					continue
				}
				for a := 0; a < n; a++ {
					if a == rhs || lhs.Test(a) {
						continue
					}
					sp := lhs.With(a)
					if _, dup := seen[sp.Key()]; dup {
						continue
					}
					seen[sp.Key()] = struct{}{}
					next = append(next, sp)
				}
			}
			level = next
		}
	}
	return out
}

func TestArmstrongTextbook(t *testing.T) {
	fds := textbookFDs() // A→B, B→C over 4 attrs
	rel := ArmstrongRelation(fds, 4)
	if err := rel.Validate(); err != nil {
		t.Fatal(err)
	}
	discovered := fd.BruteForce(rel, relation.NullEqualsNull)
	want := minimalFDsOfClosure(fds, 4)
	if !discovered.Equal(want) {
		t.Fatalf("Armstrong relation FDs differ:\nmissing: %v\nextra: %v",
			want.Diff(discovered), discovered.Diff(want))
	}
}

// TestQuickArmstrongExactness: discovering FDs on the Armstrong relation of
// a random FD set must yield exactly the minimal FDs of its closure — a
// deep cross-check between the closure layer and the discovery stack.
func TestQuickArmstrongExactness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		fds := fd.NewSet(n)
		for i := 0; i < r.Intn(6); i++ {
			lhs := bitset.New(n)
			for a := 0; a < n; a++ {
				if r.Intn(3) == 0 {
					lhs.Set(a)
				}
			}
			rhs := r.Intn(n)
			if lhs.Test(rhs) {
				continue
			}
			fds.Add(fd.FD{Lhs: lhs, Rhs: rhs})
		}
		rel := ArmstrongRelation(fds, n)
		return fd.BruteForce(rel, relation.NullEqualsNull).Equal(minimalFDsOfClosure(fds, n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestArmstrongEdgeCases(t *testing.T) {
	// No FDs: the Armstrong relation must have no non-trivial FDs.
	rel := ArmstrongRelation(fd.NewSet(3), 3)
	if got := fd.BruteForce(rel, relation.NullEqualsNull); got.Size() != 0 {
		t.Fatalf("FD-free Armstrong relation has FDs:\n%s", got)
	}
	// Zero attributes.
	if rel := ArmstrongRelation(fd.NewSet(0), 0); rel.NumCols() != 0 {
		t.Fatal("zero-attribute Armstrong relation broken")
	}
	// Size guard.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic above the attribute limit")
		}
	}()
	ArmstrongRelation(fd.NewSet(21), 21)
}
