// Package closure implements the classical FD reasoning layer that the
// HyFD paper names as the primary consumers of discovered dependencies
// (§1, §10.6): attribute-set closures, candidate key discovery, minimal
// covers, BCNF decomposition, 3NF synthesis, and FD-violation detection for
// data cleansing. All functions operate on the FD sets produced by the
// discovery algorithms.
package closure

import (
	"sort"

	"hyfd/internal/bitset"
	"hyfd/internal/fd"
)

// Closure returns the closure X⁺ of the attribute set under the FDs: the
// largest set of attributes functionally determined by X.
func Closure(fds *fd.Set, x bitset.Set) bitset.Set {
	out := x.Clone()
	all := fds.All()
	for changed := true; changed; {
		changed = false
		for _, f := range all {
			if !out.Test(f.Rhs) && f.Lhs.IsSubsetOf(out) {
				out.Set(f.Rhs)
				changed = true
			}
		}
	}
	return out
}

// Determines reports whether X functionally determines A under the FDs.
func Determines(fds *fd.Set, x bitset.Set, a int) bool {
	return Closure(fds, x).Test(a)
}

// IsSuperkey reports whether X determines every attribute of the universe.
func IsSuperkey(fds *fd.Set, x bitset.Set) bool {
	return Closure(fds, x).Cardinality() == fds.Universe()
}

// CandidateKeys returns all minimal keys of the schema under the FDs, in
// canonical order (ascending cardinality, then lexicographic).
//
// The search is level-wise over the necessary attribute core: attributes
// that appear on no right-hand side must be part of every key, and
// attributes determined by the core alone can be excluded from candidates.
func CandidateKeys(fds *fd.Set, numAttrs int) []bitset.Set {
	if numAttrs == 0 {
		return []bitset.Set{bitset.New(0)}
	}
	// Core: attributes never on any RHS must be in every key.
	core := bitset.New(numAttrs).Flip()
	for _, f := range fds.All() {
		core.Clear(f.Rhs)
	}
	coreClosure := Closure(fds, core)
	if coreClosure.Cardinality() == numAttrs {
		return []bitset.Set{core}
	}
	// Extend the core with attributes outside its closure.
	var extension []int
	for a := 0; a < numAttrs; a++ {
		if !coreClosure.Test(a) {
			extension = append(extension, a)
		}
	}
	var keys []bitset.Set
	dominated := func(x bitset.Set) bool {
		for _, k := range keys {
			if k.IsSubsetOf(x) {
				return true
			}
		}
		return false
	}
	type cand struct {
		attrs bitset.Set
		last  int
	}
	level := make([]cand, 0, len(extension))
	for _, a := range extension {
		level = append(level, cand{attrs: core.With(a), last: a})
	}
	for len(level) > 0 {
		var next []cand
		for _, c := range level {
			if dominated(c.attrs) {
				continue
			}
			if IsSuperkey(fds, c.attrs) {
				keys = append(keys, c.attrs)
				continue
			}
			for _, b := range extension {
				if b > c.last {
					next = append(next, cand{attrs: c.attrs.With(b), last: b})
				}
			}
		}
		level = next
	}
	sort.Slice(keys, func(i, j int) bool {
		ci, cj := keys[i].Cardinality(), keys[j].Cardinality()
		if ci != cj {
			return ci < cj
		}
		return keys[i].Key() < keys[j].Key()
	})
	return keys
}

// MinimalCover returns a canonical (minimal) cover of the FD set: every FD
// has a minimal LHS and no FD is derivable from the others. Discovery
// algorithms already emit LHS-minimal FDs, so the work left is dropping
// transitively redundant ones.
func MinimalCover(fds *fd.Set) *fd.Set {
	current := fds.Minimize()
	all := current.All()
	keep := make([]bool, len(all))
	for i := range keep {
		keep[i] = true
	}
	for i, f := range all {
		// Is f derivable from the others?
		rest := fd.NewSet(current.Universe())
		for j, g := range all {
			if i != j && keep[j] {
				rest.Add(g)
			}
		}
		if Determines(rest, f.Lhs, f.Rhs) {
			keep[i] = false
		}
	}
	out := fd.NewSet(current.Universe())
	for i, f := range all {
		if keep[i] {
			out.Add(f)
		}
	}
	return out
}
