package closure

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"hyfd/internal/bitset"
	"hyfd/internal/fd"
	"hyfd/internal/relation"
)

// textbook schema: R(A,B,C,D) with A→B, B→C.
func textbookFDs() *fd.Set {
	s := fd.NewSet(4)
	s.Add(fd.FD{Lhs: bitset.FromIndices(4, 0), Rhs: 1}) // A→B
	s.Add(fd.FD{Lhs: bitset.FromIndices(4, 1), Rhs: 2}) // B→C
	return s
}

func TestClosure(t *testing.T) {
	fds := textbookFDs()
	got := Closure(fds, bitset.FromIndices(4, 0))
	want := bitset.FromIndices(4, 0, 1, 2) // A⁺ = ABC
	if !got.Equal(want) {
		t.Fatalf("A+ = %v, want %v", got, want)
	}
	if !Closure(fds, bitset.FromIndices(4, 3)).Equal(bitset.FromIndices(4, 3)) {
		t.Fatal("D+ should be D")
	}
	if !Determines(fds, bitset.FromIndices(4, 0), 2) {
		t.Fatal("A should determine C transitively")
	}
	if Determines(fds, bitset.FromIndices(4, 1), 0) {
		t.Fatal("B must not determine A")
	}
}

func TestCandidateKeys(t *testing.T) {
	fds := textbookFDs()
	keys := CandidateKeys(fds, 4)
	// Only key: {A,D}.
	if len(keys) != 1 || !keys[0].Equal(bitset.FromIndices(4, 0, 3)) {
		t.Fatalf("keys = %v", keys)
	}
	// Schema with two keys: R(A,B) with A→B, B→A.
	two := fd.NewSet(2)
	two.Add(fd.FD{Lhs: bitset.FromIndices(2, 0), Rhs: 1})
	two.Add(fd.FD{Lhs: bitset.FromIndices(2, 1), Rhs: 0})
	keys = CandidateKeys(two, 2)
	if len(keys) != 2 {
		t.Fatalf("keys = %v, want {A} and {B}", keys)
	}
	// No FDs: the only key is the full schema.
	none := fd.NewSet(3)
	keys = CandidateKeys(none, 3)
	if len(keys) != 1 || keys[0].Cardinality() != 3 {
		t.Fatalf("keys = %v", keys)
	}
	// Zero attributes.
	keys = CandidateKeys(fd.NewSet(0), 0)
	if len(keys) != 1 || !keys[0].IsEmpty() {
		t.Fatalf("keys of empty schema = %v", keys)
	}
}

// TestQuickCandidateKeys cross-checks keys against direct enumeration.
func TestQuickCandidateKeys(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		fds := fd.NewSet(n)
		for i := 0; i < r.Intn(6); i++ {
			lhs := bitset.New(n)
			for a := 0; a < n; a++ {
				if r.Intn(3) == 0 {
					lhs.Set(a)
				}
			}
			rhs := r.Intn(n)
			if lhs.Test(rhs) {
				continue
			}
			fds.Add(fd.FD{Lhs: lhs, Rhs: rhs})
		}
		got := CandidateKeys(fds, n)
		// Brute force: all minimal superkeys.
		var superkeys []bitset.Set
		for mask := 0; mask < 1<<n; mask++ {
			x := bitset.New(n)
			for a := 0; a < n; a++ {
				if mask&(1<<a) != 0 {
					x.Set(a)
				}
			}
			if IsSuperkey(fds, x) {
				superkeys = append(superkeys, x)
			}
		}
		want := make(map[string]bool)
		for _, k := range superkeys {
			minimal := true
			for _, o := range superkeys {
				if o.IsProperSubsetOf(k) {
					minimal = false
					break
				}
			}
			if minimal {
				want[k.Key()] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, k := range got {
			if !want[k.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMinimalCover(t *testing.T) {
	s := fd.NewSet(3)
	s.Add(fd.FD{Lhs: bitset.FromIndices(3, 0), Rhs: 1}) // A→B
	s.Add(fd.FD{Lhs: bitset.FromIndices(3, 1), Rhs: 2}) // B→C
	s.Add(fd.FD{Lhs: bitset.FromIndices(3, 0), Rhs: 2}) // A→C (transitive)
	cover := MinimalCover(s)
	if cover.Size() != 2 {
		t.Fatalf("cover = %s", cover)
	}
	if cover.Contains(fd.FD{Lhs: bitset.FromIndices(3, 0), Rhs: 2}) {
		t.Fatal("transitive FD survived")
	}
	// Every original FD still derivable.
	for _, f := range s.All() {
		if !Determines(cover, f.Lhs, f.Rhs) {
			t.Fatalf("cover lost %v", f)
		}
	}
}

func TestBCNF(t *testing.T) {
	// R(A,B,C,D), A→B, B→C: classic two-step decomposition.
	fds := textbookFDs()
	subs := BCNF(fds, 4)
	if len(subs) < 2 {
		t.Fatalf("BCNF produced %d subschemas", len(subs))
	}
	// Every subschema must be violation-free.
	for _, s := range subs {
		if f, violated := bcnfViolation(fds, s.Attrs); violated {
			t.Fatalf("subschema %v still violates BCNF via %v", s.Attrs, f)
		}
		if s.Key.IsEmpty() && s.Attrs.Cardinality() > 1 {
			t.Fatalf("subschema %v has empty key", s.Attrs)
		}
	}
	// Attribute preservation: the union covers the schema.
	union := bitset.New(4)
	for _, s := range subs {
		union = union.Or(s.Attrs)
	}
	if union.Cardinality() != 4 {
		t.Fatalf("attributes lost: %v", union)
	}
	// Already-normalized schema stays whole.
	none := fd.NewSet(2)
	subs = BCNF(none, 2)
	if len(subs) != 1 || subs[0].Attrs.Cardinality() != 2 {
		t.Fatalf("BCNF of FD-free schema = %v", subs)
	}
}

func TestThirdNF(t *testing.T) {
	fds := textbookFDs()
	subs := ThirdNF(fds, 4)
	// Synthesis: {A,B}, {B,C}, plus key schema {A,D}.
	if len(subs) != 3 {
		t.Fatalf("3NF = %v", subs)
	}
	union := bitset.New(4)
	hasKey := false
	keys := CandidateKeys(fds, 4)
	for _, s := range subs {
		union = union.Or(s.Attrs)
		for _, k := range keys {
			if k.IsSubsetOf(s.Attrs) {
				hasKey = true
			}
		}
	}
	if union.Cardinality() != 4 {
		t.Fatalf("3NF lost attributes: %v", union)
	}
	if !hasKey {
		t.Fatal("3NF has no subschema containing a candidate key")
	}
	// Dependency preservation: every cover FD inside some subschema.
	for _, f := range MinimalCover(fds).All() {
		preserved := false
		for _, s := range subs {
			if f.Lhs.IsSubsetOf(s.Attrs) && s.Attrs.Test(f.Rhs) {
				preserved = true
				break
			}
		}
		if !preserved {
			t.Fatalf("3NF does not preserve %v", f)
		}
	}
}

func TestViolations(t *testing.T) {
	rel := relation.New("r", []string{"Zip", "City"})
	rel.AppendRow([]string{"14482", "Potsdam"})
	rel.AppendRow([]string{"14482", "Berlin"}) // violation
	rel.AppendRow([]string{"10115", "Berlin"})
	rel.AppendRow([]string{"14482", "Potsdam"})
	f := fd.FD{Lhs: bitset.FromIndices(2, 0), Rhs: 1}
	vs := Violations(rel, relation.NullEqualsNull, f, 0)
	if len(vs) != 2 { // (0,1) and (1,3)
		t.Fatalf("violations = %v", vs)
	}
	for _, v := range vs {
		if rel.Rows[v.Row1][0] != rel.Rows[v.Row2][0] {
			t.Fatalf("violation rows %d,%d do not agree on Zip", v.Row1, v.Row2)
		}
		if rel.Rows[v.Row1][1] == rel.Rows[v.Row2][1] {
			t.Fatalf("violation rows %d,%d agree on City", v.Row1, v.Row2)
		}
	}
	if got := Violations(rel, relation.NullEqualsNull, f, 1); len(got) != 1 {
		t.Fatalf("limit ignored: %v", got)
	}
	// A valid FD yields no violations.
	ok := fd.FD{Lhs: bitset.FromIndices(2, 0, 1), Rhs: 0}
	if got := Violations(rel, relation.NullEqualsNull, ok, 0); len(got) != 0 {
		t.Fatalf("unexpected violations %v", got)
	}
}

// TestBCNFOnDiscoveredFDs runs the whole pipeline on data: generate a
// denormalized relation, brute-force its FDs, decompose, and verify the
// decomposition is lossless on the instance (join of projections equals
// the original row set).
func TestBCNFOnDiscoveredFDs(t *testing.T) {
	rel := relation.New("orders", []string{"OrderID", "CustID", "CustName", "Item"})
	names := []string{"ada", "bob", "cyn"}
	for i := 0; i < 24; i++ {
		cust := i % 3
		rel.AppendRow([]string{
			strconv.Itoa(i), strconv.Itoa(cust), names[cust], "item" + strconv.Itoa(i%5),
		})
	}
	fds := fd.BruteForce(rel, relation.NullEqualsNull)
	subs := BCNF(fds, rel.NumCols())
	for _, s := range subs {
		if _, violated := bcnfViolation(fds, s.Attrs); violated {
			t.Fatalf("subschema %v violates BCNF", s.Attrs)
		}
	}
	// Losslessness on the instance via the chase-free special case: binary
	// decompositions produced by BCNF splits are lossless by construction;
	// verify on data by joining projections back together.
	joined := joinAll(rel, subs)
	orig := make(map[string]bool)
	for _, row := range rel.Rows {
		orig[rowKey(row)] = true
	}
	if len(joined) != len(orig) {
		t.Fatalf("join produced %d distinct rows, want %d", len(joined), len(orig))
	}
	for k := range joined {
		if !orig[k] {
			t.Fatal("join produced a spurious row")
		}
	}
}

func rowKey(row []string) string {
	k := ""
	for _, c := range row {
		k += c + "\x01"
	}
	return k
}

// joinAll naively natural-joins the projections of the subschemas and
// returns the distinct full-width rows.
func joinAll(rel *relation.Relation, subs []Subschema) map[string]bool {
	m := rel.NumCols()
	// Start with the first projection as partial rows (nil = unknown).
	partials := []map[int]string{}
	for _, row := range rel.Rows {
		p := map[int]string{}
		subs[0].Attrs.ForEach(func(a int) bool {
			p[a] = row[a]
			return true
		})
		partials = append(partials, p)
	}
	partials = dedupPartials(partials)
	for _, s := range subs[1:] {
		var proj []map[int]string
		for _, row := range rel.Rows {
			p := map[int]string{}
			s.Attrs.ForEach(func(a int) bool {
				p[a] = row[a]
				return true
			})
			proj = append(proj, p)
		}
		proj = dedupPartials(proj)
		var joined []map[int]string
		for _, p := range partials {
			for _, q := range proj {
				ok := true
				for a, v := range q {
					if pv, has := p[a]; has && pv != v {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				merged := map[int]string{}
				for a, v := range p {
					merged[a] = v
				}
				for a, v := range q {
					merged[a] = v
				}
				joined = append(joined, merged)
			}
		}
		partials = dedupPartials(joined)
	}
	out := make(map[string]bool)
	for _, p := range partials {
		if len(p) != m {
			continue
		}
		row := make([]string, m)
		for a, v := range p {
			row[a] = v
		}
		out[rowKey(row)] = true
	}
	return out
}

func dedupPartials(ps []map[int]string) []map[int]string {
	seen := make(map[string]bool)
	var out []map[int]string
	for _, p := range ps {
		keys := make([]int, 0, len(p))
		for a := range p {
			keys = append(keys, a)
		}
		// Deterministic key.
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				if keys[j] < keys[i] {
					keys[i], keys[j] = keys[j], keys[i]
				}
			}
		}
		k := ""
		for _, a := range keys {
			k += strconv.Itoa(a) + "=" + p[a] + "\x01"
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	return out
}

// TestQuickMinimalCoverEquivalence: a minimal cover must derive exactly the
// same closures as the original FD set.
func TestQuickMinimalCoverEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		fds := fd.NewSet(n)
		for i := 0; i < r.Intn(8); i++ {
			lhs := bitset.New(n)
			for a := 0; a < n; a++ {
				if r.Intn(3) == 0 {
					lhs.Set(a)
				}
			}
			rhs := r.Intn(n)
			if lhs.Test(rhs) {
				continue
			}
			fds.Add(fd.FD{Lhs: lhs, Rhs: rhs})
		}
		cover := MinimalCover(fds)
		if cover.Size() > fds.Size() {
			return false
		}
		// Same closure for every subset of attributes.
		for mask := 0; mask < 1<<n; mask++ {
			x := bitset.New(n)
			for a := 0; a < n; a++ {
				if mask&(1<<a) != 0 {
					x.Set(a)
				}
			}
			if !Closure(fds, x).Equal(Closure(cover, x)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBCNFSubschemasViolationFree: every decomposition output must be
// violation-free and attribute-preserving, for random FD sets.
func TestQuickBCNFSubschemasViolationFree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		fds := fd.NewSet(n)
		for i := 0; i < r.Intn(6); i++ {
			lhs := bitset.New(n)
			for a := 0; a < n; a++ {
				if r.Intn(3) == 0 {
					lhs.Set(a)
				}
			}
			rhs := r.Intn(n)
			if lhs.Test(rhs) {
				continue
			}
			fds.Add(fd.FD{Lhs: lhs, Rhs: rhs})
		}
		subs := BCNF(fds, n)
		union := bitset.New(n)
		for _, s := range subs {
			if _, violated := bcnfViolation(fds, s.Attrs); violated {
				return false
			}
			union = union.Or(s.Attrs)
		}
		return union.Cardinality() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
