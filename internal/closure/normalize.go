package closure

import (
	"sort"

	"hyfd/internal/bitset"
	"hyfd/internal/fd"
	"hyfd/internal/relation"
)

// Subschema is one relation of a decomposition: a set of attributes of the
// original schema plus the key the decomposition step used.
type Subschema struct {
	Attrs bitset.Set
	Key   bitset.Set
}

// projectFDs returns the FDs of the set whose attributes all fall inside
// attrs, re-expressed over the same universe. (A full FD projection would
// need closure reasoning over every subset; for decomposition driven by
// complete minimal FD sets — the discovery output — containment projection
// is the standard practical choice.)
func projectFDs(fds *fd.Set, attrs bitset.Set) *fd.Set {
	out := fd.NewSet(fds.Universe())
	for _, f := range fds.All() {
		if attrs.Test(f.Rhs) && f.Lhs.IsSubsetOf(attrs) {
			out.Add(f)
		}
	}
	return out
}

// bcnfViolation finds an FD X → A with X ⊆ attrs, A ∈ attrs\X whose LHS is
// not a superkey of the subschema. It returns the violating FD and whether
// one exists.
func bcnfViolation(fds *fd.Set, attrs bitset.Set) (fd.FD, bool) {
	local := projectFDs(fds, attrs)
	for _, f := range local.All() {
		if f.Lhs.Test(f.Rhs) {
			continue
		}
		// Superkey within the subschema: closure covers all of attrs.
		if !attrs.IsSubsetOf(Closure(local, f.Lhs)) {
			return f, true
		}
	}
	return fd.FD{}, false
}

// BCNF decomposes the schema into Boyce-Codd normal form using the
// discovered FDs: while some subschema has a violating FD X → A, split it
// into X∪{A} and attrs\{A}. The result is lossless; dependency
// preservation is not guaranteed (it cannot be, in general, for BCNF).
func BCNF(fds *fd.Set, numAttrs int) []Subschema {
	start := bitset.New(numAttrs).Flip()
	work := []bitset.Set{start}
	var done []Subschema
	for len(work) > 0 {
		attrs := work[len(work)-1]
		work = work[:len(work)-1]
		f, violated := bcnfViolation(fds, attrs)
		if !violated {
			local := projectFDs(fds, attrs)
			key := subschemaKey(local, attrs)
			done = append(done, Subschema{Attrs: attrs, Key: key})
			continue
		}
		// Split into (X ∪ A) and (attrs \ A).
		left := f.Lhs.With(f.Rhs)
		right := attrs.Without(f.Rhs)
		work = append(work, left, right)
	}
	sort.Slice(done, func(i, j int) bool { return done[i].Attrs.Key() < done[j].Attrs.Key() })
	return done
}

// subschemaKey returns one minimal key of the subschema under its local
// FDs: start from all attributes and greedily drop the ones whose removal
// keeps the closure complete.
func subschemaKey(local *fd.Set, attrs bitset.Set) bitset.Set {
	key := attrs.Clone()
	attrs.ForEach(func(a int) bool {
		cand := key.Without(a)
		if attrs.IsSubsetOf(Closure(local, cand)) {
			key = cand
		}
		return true
	})
	return key
}

// ThirdNF synthesizes a third-normal-form, dependency-preserving, lossless
// decomposition from a minimal cover of the FDs (the classic Bernstein
// synthesis): one subschema per distinct LHS of the cover, plus a key
// subschema if no synthesized one contains a key of the whole schema.
func ThirdNF(fds *fd.Set, numAttrs int) []Subschema {
	cover := MinimalCover(fds)
	// Group cover FDs by LHS.
	groups := make(map[string]*Subschema)
	var order []string
	for _, f := range cover.All() {
		k := f.Lhs.Key()
		g, ok := groups[k]
		if !ok {
			g = &Subschema{Attrs: f.Lhs.Clone(), Key: f.Lhs.Clone()}
			groups[k] = g
			order = append(order, k)
		}
		g.Attrs.Set(f.Rhs)
	}
	var out []Subschema
	for _, k := range order {
		out = append(out, *groups[k])
	}
	// Drop subschemas contained in others.
	var kept []Subschema
	for i, s := range out {
		contained := false
		for j, t := range out {
			if i == j {
				continue
			}
			if s.Attrs.IsProperSubsetOf(t.Attrs) || (s.Attrs.Equal(t.Attrs) && i > j) {
				contained = true
				break
			}
		}
		if !contained {
			kept = append(kept, s)
		}
	}
	// Ensure some subschema contains a candidate key of the full schema.
	keys := CandidateKeys(fds, numAttrs)
	hasKey := false
	for _, s := range kept {
		for _, key := range keys {
			if key.IsSubsetOf(s.Attrs) {
				hasKey = true
				break
			}
		}
		if hasKey {
			break
		}
	}
	if !hasKey && len(keys) > 0 {
		kept = append(kept, Subschema{Attrs: keys[0].Clone(), Key: keys[0].Clone()})
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Attrs.Key() < kept[j].Attrs.Key() })
	return kept
}

// Violation is a record pair violating an FD, for data cleansing.
type Violation struct {
	FD   fd.FD
	Row1 int
	Row2 int
}

// Violations scans the relation for record pairs violating the FD and
// returns up to limit of them (limit <= 0 returns all). Pairs are grouped
// by LHS values, so runtime is near-linear in the number of rows plus the
// number of violations.
func Violations(rel *relation.Relation, ns relation.NullSemantics, f fd.FD, limit int) []Violation {
	type entry struct {
		row int
		rhs string
	}
	groups := make(map[string][]entry)
	var out []Violation
	attrs := f.Lhs.Indices()
	for i, row := range rel.Rows {
		key := ""
		skip := false
		for _, a := range attrs {
			v := row[a]
			if v == relation.Null && ns == relation.NullNotEqualsNull {
				skip = true
				break
			}
			key += v + "\x01"
		}
		if skip {
			continue
		}
		rv := row[f.Rhs]
		for _, prev := range groups[key] {
			disagree := prev.rhs != rv ||
				(rv == relation.Null && ns == relation.NullNotEqualsNull)
			if disagree {
				out = append(out, Violation{FD: f, Row1: prev.row, Row2: i})
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
		groups[key] = append(groups[key], entry{row: i, rhs: rv})
	}
	return out
}
