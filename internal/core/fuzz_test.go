package core

import (
	"context"
	"testing"

	"hyfd/internal/fd"
	"hyfd/internal/relation"
)

// FuzzDiscoverMatchesBruteForce differentially fuzzes the full HyFD stack
// against the definitional reference. The fuzzer shapes a small relation
// from raw bytes: the first two bytes pick the dimensions, the rest fill
// cells from a small alphabet.
func FuzzDiscoverMatchesBruteForce(f *testing.F) {
	f.Add([]byte{3, 8, 0, 1, 2, 0, 1, 2, 2, 1, 0, 255})
	f.Add([]byte{2, 2, 0, 0, 0, 1})
	f.Add([]byte{5, 5})
	f.Add([]byte{1, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		cols := 1 + int(data[0])%5
		rows := int(data[1]) % 24
		data = data[2:]
		names := make([]string, cols)
		for i := range names {
			names[i] = string(rune('A' + i))
		}
		rel := relation.New("fuzz", names)
		cell := 0
		for i := 0; i < rows; i++ {
			row := make([]string, cols)
			for j := range row {
				var b byte
				if cell < len(data) {
					b = data[cell]
				}
				cell++
				if b%7 == 6 {
					row[j] = relation.Null
				} else {
					row[j] = string(rune('a' + b%4))
				}
			}
			rel.AppendRow(row)
		}
		for _, ns := range []relation.NullSemantics{relation.NullEqualsNull, relation.NullNotEqualsNull} {
			got, _, err := Discover(context.Background(), rel, Config{NullSemantics: ns})
			if err != nil {
				t.Fatalf("Discover failed: %v", err)
			}
			want := fd.BruteForce(rel, ns)
			if !got.Equal(want) {
				t.Fatalf("ns=%v rows=%d cols=%d:\nmissing: %v\nextra: %v",
					ns, rows, cols, want.Diff(got), got.Diff(want))
			}
		}
	})
}
