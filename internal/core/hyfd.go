// Package core orchestrates the HyFD algorithm (§4, Fig. 2): the
// Preprocessor builds PLIs and compressed records, then control alternates
// between Phase 1 (Sampler + Inductor, column-efficient) and Phase 2
// (Validator, row-efficient) until the Validator confirms every candidate.
// An optional memory Guardian bounds the result size.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"hyfd/internal/dataset"
	"hyfd/internal/fd"
	"hyfd/internal/guardian"
	"hyfd/internal/inductor"
	"hyfd/internal/metrics"
	"hyfd/internal/pli"
	"hyfd/internal/relation"
	"hyfd/internal/sampler"
	"hyfd/internal/trace"
	"hyfd/internal/validator"
)

// Config parameterizes a HyFD run. The zero value selects the paper's
// defaults: null=null semantics, 1 % efficiency thresholds for both phases,
// single-threaded execution, unbounded results.
type Config struct {
	// NullSemantics selects ⊥=⊥ (default) or ⊥≠⊥ comparisons.
	NullSemantics relation.NullSemantics
	// EfficiencyThreshold is HyFD's only tuning parameter (§10.5): the
	// initial sampling efficiency cutoff and the validation
	// invalid-candidate cutoff. 0 means the paper's default of 0.01.
	EfficiencyThreshold float64
	// Threads is the single worker-count knob of the whole engine: it
	// uniformly drives preprocessing (PLI construction and record
	// inversion), the sampler's cluster sortation and window runs, and
	// candidate validation. 1 forces single-threaded execution (the
	// paper's base variant); any value <= 0 picks runtime.GOMAXPROCS(0).
	// Every thread count produces the identical FD set, PLIs, and
	// observation order — the engine's determinism contract.
	Threads int
	// MaxLhsSize bounds result LHS cardinality up front (0 = unbounded).
	MaxLhsSize int
	// MemoryBudgetBytes arms the Guardian: when the result tree's
	// estimated footprint exceeds the budget, the largest-LHS results are
	// discarded (0 = Guardian disabled).
	MemoryBudgetBytes int
	// Observer, when non-nil, receives trace events as the run progresses:
	// preprocessing, sampling rounds, phase switches, validation levels,
	// Guardian interventions, and completion. Events arrive synchronously
	// from the coordinating goroutine, in run order.
	Observer trace.Observer
	// Metrics, when non-nil, receives the run's quantitative telemetry as
	// hyfd_* instrument families: trace events are bridged through an
	// EngineMetrics observer, and the sampler, validator, and guardian get
	// direct (batched) hooks for the quantities events can't carry. A nil
	// registry costs one nil-check per batched update site.
	Metrics *metrics.Registry

	// Ablation switches. These disable individual HyFD design decisions so
	// the benchmark suite can quantify their contribution; none of them
	// affects the discovered FD set.

	// UnfocusedSampling turns off the cluster sortation of Fig. 3(1):
	// windows slide over clusters in raw record order.
	UnfocusedSampling bool
	// NoSuggestions stops Phase 2 from feeding violating record pairs back
	// into Phase 1.
	NoSuggestions bool
	// IntersectionValidation replaces the direct refinement checks of §8
	// with TANE-style hierarchical PLI intersections.
	IntersectionValidation bool
}

// Stats reports telemetry of one discovery run, mirroring the quantities
// the paper's evaluation discusses. The JSON field names are part of the
// machine-readable output contract (hyfd -stats-json, BENCH_*.json);
// durations serialize as integer nanoseconds under *_ns names.
type Stats struct {
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// FDCount is the number of minimal FDs found.
	FDCount int `json:"fd_count"`
	// PhaseSwitches counts returns from Phase 2 into Phase 1; the paper
	// reports three to eight on typical datasets.
	PhaseSwitches int `json:"phase_switches"`
	// SamplingRounds counts Sampler invocations (PhaseSwitches + 1).
	SamplingRounds int `json:"sampling_rounds"`
	// Comparisons is the total number of record-pair comparisons.
	Comparisons int64 `json:"comparisons"`
	// Validations is the number of FDTree node validations.
	Validations int64 `json:"validations"`
	// Observations is the number of distinct FD-violations sampled.
	Observations int `json:"observations"`
	// Complete is false when the Guardian (or MaxLhsSize) pruned results;
	// the output then contains exactly the minimal FDs with LHS size up to
	// MaxLhs.
	Complete bool `json:"complete"`
	// MaxLhs is the final LHS bound (== Cols when unbounded).
	MaxLhs int `json:"max_lhs"`
	// Threads is the resolved worker count the run executed with (the
	// configured value, or GOMAXPROCS when that was <= 0).
	Threads int `json:"threads"`
	// Warm is true when the run reused an already-prepared Dataset: its
	// PreprocessingTime then covers only the (near-zero) reuse overhead,
	// not the amortized build cost (see dataset.Dataset.PreprocessingTime).
	Warm bool `json:"warm,omitempty"`

	// Wall-clock per-phase timings, sourced from the run's trace events:
	// PreprocessingTime covers PLI and compressed-record construction,
	// SamplingTime sums the Phase 1 rounds (sampling + induction),
	// ValidationTime sums the Phase 2 levels, and TotalTime covers the
	// whole run.
	PreprocessingTime time.Duration `json:"preprocessing_ns"`
	SamplingTime      time.Duration `json:"sampling_ns"`
	ValidationTime    time.Duration `json:"validation_ns"`
	TotalTime         time.Duration `json:"total_ns"`
}

// statsTimers is the engine's internal observer: it folds the duration
// carried by each trace event back into the run's Stats, so the public
// telemetry and any user observer are fed from the same event stream.
type statsTimers struct{ stats *Stats }

func (t statsTimers) Observe(e trace.Event) {
	switch ev := e.(type) {
	case trace.PreprocessingDone:
		t.stats.PreprocessingTime = ev.Duration
	case trace.SamplingRound:
		t.stats.SamplingTime += ev.Duration
	case trace.ValidationLevel:
		t.stats.ValidationTime += ev.Duration
	case trace.Done:
		t.stats.TotalTime = ev.Duration
	}
}

// Discover runs HyFD on the relation and returns all minimal, non-trivial
// functional dependencies along with run telemetry.
//
// The context is honored at cancellation checkpoints inside the sampler's
// cluster-window loops and the validator's level traversal (including its
// parallel workers): a canceled or expired context makes Discover return
// promptly with an error wrapping ctx.Err(). A nil ctx is treated as
// context.Background().
func Discover(ctx context.Context, rel *relation.Relation, cfg Config) (*fd.Set, *Stats, error) {
	if ctx == nil {
		//hyfdvet:allow ctxflow — documented nil-ctx defaulting at the engine's public boundary
		ctx = context.Background()
	}
	if rel == nil {
		return nil, nil, errors.New("hyfd: nil relation")
	}
	if err := rel.Validate(); err != nil {
		return nil, nil, err
	}
	threads := cfg.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	stats := &Stats{Rows: rel.NumRows(), Cols: rel.NumCols(), Complete: true, Threads: threads}
	if rel.NumCols() == 0 {
		stats.MaxLhs = 0
		return fd.NewSet(0), stats, nil
	}
	em := metrics.NewEngineMetrics(cfg.Metrics) // nil registry → nil, all hooks no-ops
	obs := trace.Multi(statsTimers{stats}, em.Observer(), cfg.Observer)
	//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, nil, interrupted(err)
	}
	// Preprocessor (Alg. 1). The relation was already validated above, so
	// any error out of prepare is a context interruption.
	ds, err := prepare(ctx, rel, cfg.NullSemantics, threads, obs, em)
	if err != nil {
		return nil, nil, interrupted(err)
	}
	return run(ctx, ds.Index(), cfg, threads, stats, obs, em, start)
}

// Prepare runs HyFD's preprocessing (Alg. 1: PLI construction + record
// inversion) once over the relation and returns the immutable Dataset that
// warm runs — DiscoverDataset here, and every converted baseline — consume.
// Observers registered in cfg receive the same PLIBuilt (in attribute
// order), cluster-size metrics, and PreprocessingDone events a cold Discover
// would emit. Only cfg.NullSemantics, cfg.Threads, cfg.Observer, and
// cfg.Metrics are consulted.
func Prepare(ctx context.Context, rel *relation.Relation, cfg Config) (*dataset.Dataset, error) {
	if ctx == nil {
		//hyfdvet:allow ctxflow — documented nil-ctx defaulting at the engine's public boundary
		ctx = context.Background()
	}
	if rel == nil {
		return nil, errors.New("hyfd: nil relation")
	}
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	threads := cfg.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	em := metrics.NewEngineMetrics(cfg.Metrics)
	obs := trace.Multi(em.Observer(), cfg.Observer)
	ds, err := prepare(ctx, rel, cfg.NullSemantics, threads, obs, em)
	if err != nil {
		return nil, interrupted(err)
	}
	return ds, nil
}

// buildStat records one attribute's PLI build outcome for ordered replay.
type buildStat struct {
	clusters int
	duration time.Duration
}

// prepare builds the Dataset and emits the preprocessing event sequence.
// The build fans attributes over the worker pool; per-attribute timings land
// in builds via disjoint slot writes, and the trace events replay them in
// attribute order afterwards so observers keep their single-goroutine,
// deterministic-order contract.
func prepare(ctx context.Context, rel *relation.Relation, ns relation.NullSemantics, threads int, obs trace.Observer, em *metrics.EngineMetrics) (*dataset.Dataset, error) {
	builds := make([]buildStat, rel.NumCols())
	ds, err := dataset.Prepare(ctx, rel, dataset.Options{
		NullSemantics: ns,
		Threads:       threads,
		OnBuild: func(p *pli.PLI, d time.Duration) {
			builds[p.Attr] = buildStat{p.NumClusters, d}
		},
	})
	if err != nil {
		return nil, err
	}
	for attr, b := range builds {
		trace.Emit(obs, trace.PLIBuilt{Attr: attr, Clusters: b.clusters, Duration: b.duration})
	}
	if em != nil {
		ds.Index().ForEachClusterSize(func(size int) { em.PLIClusterSize.Observe(float64(size)) })
	}
	trace.Emit(obs, trace.PreprocessingDone{
		Rows: rel.NumRows(), Cols: rel.NumCols(), Threads: threads, Duration: ds.PreprocessingTime(),
	})
	return ds, nil
}

// DiscoverDataset runs HyFD over an already-prepared Dataset — a warm run.
// It never rebuilds PLIs: Stats.Warm is set, Stats.PreprocessingTime covers
// only the (near-zero) reuse overhead, and observers receive a single
// PreprocessingDone event with Warm set instead of the build sequence.
//
// cfg.NullSemantics is ignored: the Dataset's PLIs were built under
// ds.NullSemantics() and a conflicting option could not be honored without
// rebuilding. cfg.Threads > 0 overrides the worker count for sampling and
// validation; any value <= 0 inherits the dataset's resolved count. Because
// the Dataset is immutable, any number of DiscoverDataset calls may run
// concurrently over the same ds, and each produces a result bit-for-bit
// identical to a cold Discover at the same thread count.
func DiscoverDataset(ctx context.Context, ds *dataset.Dataset, cfg Config) (*fd.Set, *Stats, error) {
	if ctx == nil {
		//hyfdvet:allow ctxflow — documented nil-ctx defaulting at the engine's public boundary
		ctx = context.Background()
	}
	if ds == nil {
		return nil, nil, errors.New("hyfd: nil dataset")
	}
	threads := cfg.Threads
	if threads <= 0 {
		threads = ds.Threads()
	}
	stats := &Stats{Rows: ds.NumRows(), Cols: ds.NumCols(), Complete: true, Threads: threads, Warm: true}
	if ds.NumCols() == 0 {
		stats.MaxLhs = 0
		return fd.NewSet(0), stats, nil
	}
	em := metrics.NewEngineMetrics(cfg.Metrics)
	obs := trace.Multi(statsTimers{stats}, em.Observer(), cfg.Observer)
	//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, nil, interrupted(err)
	}
	trace.Emit(obs, trace.PreprocessingDone{
		Rows: stats.Rows, Cols: stats.Cols, Threads: threads, Warm: true,
		//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
		Duration: time.Since(start),
	})
	return run(ctx, ds.Index(), cfg, threads, stats, obs, em, start)
}

// run executes the alternating Phase 1 / Phase 2 loop over a prepared PLI
// index. It is shared by cold runs (Discover, after building the index) and
// warm runs (DiscoverDataset); the index is only read.
func run(ctx context.Context, ix *pli.Index, cfg Config, threads int, stats *Stats, obs trace.Observer, em *metrics.EngineMetrics, start time.Time) (*fd.Set, *Stats, error) {
	smp := sampler.New(ix, sampler.Config{
		Threshold:   cfg.EfficiencyThreshold,
		Threads:     threads,
		Unfocused:   cfg.UnfocusedSampling,
		Instruments: em.Sampler(),
	})
	ind := inductor.New(ix.NumCols)
	if cfg.MaxLhsSize > 0 && cfg.MaxLhsSize < ix.NumCols {
		ind.Tree().SetMaxLhs(cfg.MaxLhsSize)
		stats.Complete = false
	}
	vopts := []validator.Option{
		validator.WithThreads(threads),
		validator.WithObserver(obs),
		validator.WithInstruments(em.Validator()),
	}
	if cfg.EfficiencyThreshold > 0 {
		vopts = append(vopts, validator.WithInvalidThreshold(cfg.EfficiencyThreshold))
	}
	if cfg.IntersectionValidation {
		vopts = append(vopts, validator.WithIntersectionValidation())
	}
	val := validator.New(ix, ind.Tree(), vopts...)
	grd := guardian.New(ind.Tree(), cfg.MemoryBudgetBytes)
	if em != nil {
		grd.SetFootprintGauge(em.FDTreeBytes)
	}
	// checkGuardian runs the Guardian and reports any new intervention.
	checkGuardian := func() {
		before := grd.Interventions
		grd.Check()
		if grd.Interventions > before {
			trace.Emit(obs, trace.GuardianPrune{
				MaxLhs: grd.MaxLhs(), Interventions: grd.Interventions,
				FootprintBytes: grd.Footprint(),
			})
		}
	}

	var suggestions []pli.Pair
	for {
		// Phase 1: focused sampling + induction.
		//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
		roundStart := time.Now()
		newObs, err := smp.Run(ctx, suggestions)
		if err != nil {
			return nil, nil, interrupted(err)
		}
		stats.SamplingRounds++
		ind.Update(newObs)
		checkGuardian()
		trace.Emit(obs, trace.SamplingRound{
			Round:           stats.SamplingRounds,
			NewObservations: len(newObs),
			Comparisons:     smp.Comparisons,
			Windows:         smp.Windows,
			Threshold:       smp.Threshold(),
			//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
			Duration: time.Since(roundStart),
		})
		trace.Emit(obs, trace.PhaseSwitch{
			From: trace.PhaseSampling, To: trace.PhaseValidation,
			Switches: stats.PhaseSwitches,
		})

		// Phase 2: level-wise validation. If sampling produced nothing
		// new, another switch back could not improve the approximation,
		// so validate exhaustively to guarantee termination.
		exhaustive := len(newObs) == 0
		res, err := val.Run(ctx, exhaustive)
		if err != nil {
			return nil, nil, interrupted(err)
		}
		checkGuardian()
		if res.Done {
			break
		}
		suggestions = res.Suggestions
		if cfg.NoSuggestions {
			suggestions = nil
		}
		stats.PhaseSwitches++
		trace.Emit(obs, trace.PhaseSwitch{
			From: trace.PhaseValidation, To: trace.PhaseSampling,
			Switches: stats.PhaseSwitches,
		})
	}

	stats.Comparisons = smp.Comparisons
	stats.Validations = val.Validations
	stats.Observations = smp.ObservationCount()
	stats.MaxLhs = ind.Tree().MaxLhs()
	if grd.Pruned {
		stats.Complete = false
	}
	fds := ind.Tree().FDs()
	stats.FDCount = fds.Size()
	//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
	trace.Emit(obs, trace.Done{FDs: stats.FDCount, Duration: time.Since(start)})
	return fds, stats, nil
}

// interrupted wraps a context error into the engine's error contract;
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) keep working on the result.
func interrupted(err error) error {
	return fmt.Errorf("hyfd: discovery interrupted: %w", err)
}
