package core

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"hyfd/internal/bitset"
	"hyfd/internal/fd"
	"hyfd/internal/relation"
)

func randomRelation(r *rand.Rand, rows, cols, domain int) *relation.Relation {
	names := make([]string, cols)
	for i := range names {
		names[i] = "c" + strconv.Itoa(i)
	}
	rel := relation.New("rnd", names)
	for i := 0; i < rows; i++ {
		row := make([]string, cols)
		for j := range row {
			row[j] = strconv.Itoa(r.Intn(domain))
		}
		rel.AppendRow(row)
	}
	return rel
}

func TestDiscoverClassExample(t *testing.T) {
	rel := relation.New("class", []string{"Teacher", "Subject", "Room"})
	rel.AppendRow([]string{"Brown", "Math", "R1"})
	rel.AppendRow([]string{"Walker", "Math", "R2"})
	rel.AppendRow([]string{"Brown", "English", "R1"})
	rel.AppendRow([]string{"Miller", "English", "R3"})
	rel.AppendRow([]string{"Brown", "Math", "R1"})
	got, stats, err := Discover(context.Background(), rel, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := fd.BruteForce(rel, relation.NullEqualsNull)
	if !got.Equal(want) {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
	if !stats.Complete || stats.FDCount != got.Size() {
		t.Fatalf("stats inconsistent: %+v", stats)
	}
}

func TestDiscoverMatchesBruteForceTable(t *testing.T) {
	r := rand.New(rand.NewSource(2016))
	cases := []struct {
		rows, cols, domain int
	}{
		{1, 3, 2}, {2, 2, 2}, {10, 3, 2}, {20, 4, 2}, {20, 4, 5},
		{50, 5, 2}, {50, 5, 3}, {100, 5, 4}, {30, 6, 2}, {60, 6, 3},
		{120, 7, 2}, {120, 7, 6}, {200, 6, 10}, {17, 5, 17},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("r%dc%dd%d", c.rows, c.cols, c.domain), func(t *testing.T) {
			rel := randomRelation(r, c.rows, c.cols, c.domain)
			got, _, err := Discover(context.Background(), rel, Config{})
			if err != nil {
				t.Fatal(err)
			}
			want := fd.BruteForce(rel, relation.NullEqualsNull)
			if !got.Equal(want) {
				t.Fatalf("rows=%d cols=%d dom=%d\nmissing: %v\nextra: %v",
					c.rows, c.cols, c.domain, want.Diff(got), got.Diff(want))
			}
		})
	}
}

func TestDiscoverEdgeCases(t *testing.T) {
	t.Run("empty relation", func(t *testing.T) {
		rel := relation.New("e", []string{"A", "B"})
		got, stats, err := Discover(context.Background(), rel, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Size() != 2 { // ∅→A, ∅→B hold vacuously
			t.Fatalf("FDs on empty relation = %d:\n%s", got.Size(), got)
		}
		if stats.Rows != 0 {
			t.Fatalf("stats.Rows = %d", stats.Rows)
		}
	})
	t.Run("zero columns", func(t *testing.T) {
		rel := relation.New("z", nil)
		got, _, err := Discover(context.Background(), rel, Config{})
		if err != nil || got.Size() != 0 {
			t.Fatalf("got %v, err %v", got, err)
		}
	})
	t.Run("single column unique", func(t *testing.T) {
		rel := relation.New("s", []string{"A"})
		rel.AppendRow([]string{"x"})
		rel.AppendRow([]string{"y"})
		got, _, err := Discover(context.Background(), rel, Config{})
		if err != nil || got.Size() != 0 {
			t.Fatalf("got %v, err %v", got, err)
		}
	})
	t.Run("all constant", func(t *testing.T) {
		rel := relation.New("c", []string{"A", "B"})
		rel.AppendRow([]string{"x", "y"})
		rel.AppendRow([]string{"x", "y"})
		got, _, err := Discover(context.Background(), rel, Config{})
		if err != nil {
			t.Fatal(err)
		}
		want := fd.NewSet(2)
		want.Add(fd.FD{Lhs: bitset.New(2), Rhs: 0})
		want.Add(fd.FD{Lhs: bitset.New(2), Rhs: 1})
		if !got.Equal(want) {
			t.Fatalf("got:\n%s", got)
		}
	})
	t.Run("duplicate rows", func(t *testing.T) {
		r := rand.New(rand.NewSource(5))
		rel := randomRelation(r, 20, 4, 3)
		rel.Rows = append(rel.Rows, rel.Rows[:10]...)
		got, _, err := Discover(context.Background(), rel, Config{})
		if err != nil {
			t.Fatal(err)
		}
		want := fd.BruteForce(rel, relation.NullEqualsNull)
		if !got.Equal(want) {
			t.Fatalf("missing: %v\nextra: %v", want.Diff(got), got.Diff(want))
		}
	})
	t.Run("nil relation", func(t *testing.T) {
		if _, _, err := Discover(context.Background(), nil, Config{}); err == nil {
			t.Fatal("nil relation accepted")
		}
	})
	t.Run("invalid relation", func(t *testing.T) {
		rel := relation.New("d", []string{"A", "A"})
		if _, _, err := Discover(context.Background(), rel, Config{}); err == nil {
			t.Fatal("duplicate column names accepted")
		}
	})
}

func TestDiscoverWithKeyColumn(t *testing.T) {
	// A key column makes every other attribute dependent on it.
	rel := relation.New("k", []string{"ID", "X", "Y"})
	for i := 0; i < 30; i++ {
		rel.AppendRow([]string{strconv.Itoa(i), strconv.Itoa(i % 3), strconv.Itoa(i % 2)})
	}
	got, _, err := Discover(context.Background(), rel, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Contains(fd.FD{Lhs: bitset.FromIndices(3, 0), Rhs: 1}) ||
		!got.Contains(fd.FD{Lhs: bitset.FromIndices(3, 0), Rhs: 2}) {
		t.Fatalf("key FDs missing:\n%s", got)
	}
	want := fd.BruteForce(rel, relation.NullEqualsNull)
	if !got.Equal(want) {
		t.Fatalf("missing: %v\nextra: %v", want.Diff(got), got.Diff(want))
	}
}

func TestDiscoverNullSemantics(t *testing.T) {
	rel := relation.New("n", []string{"A", "B"})
	rel.AppendRow([]string{relation.Null, "1"})
	rel.AppendRow([]string{relation.Null, "2"})
	rel.AppendRow([]string{"x", "1"})
	for _, ns := range []relation.NullSemantics{relation.NullEqualsNull, relation.NullNotEqualsNull} {
		got, _, err := Discover(context.Background(), rel, Config{NullSemantics: ns})
		if err != nil {
			t.Fatal(err)
		}
		want := fd.BruteForce(rel, ns)
		if !got.Equal(want) {
			t.Fatalf("%v: got:\n%s\nwant:\n%s", ns, got, want)
		}
	}
	// The two semantics must actually differ here: A→B only under ⊥≠⊥.
	eq, _, _ := Discover(context.Background(), rel, Config{NullSemantics: relation.NullEqualsNull})
	ne, _, _ := Discover(context.Background(), rel, Config{NullSemantics: relation.NullNotEqualsNull})
	aToB := fd.FD{Lhs: bitset.FromIndices(2, 0), Rhs: 1}
	if eq.Contains(aToB) || !ne.Contains(aToB) {
		t.Fatalf("null semantics not honored: eq=\n%s\nne=\n%s", eq, ne)
	}
}

func TestDiscoverMultiThreadedMatchesSingle(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5; trial++ {
		rel := randomRelation(r, 80, 6, 3)
		single, _, err := Discover(context.Background(), rel, Config{Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		multi, _, err := Discover(context.Background(), rel, Config{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !single.Equal(multi) {
			t.Fatalf("trial %d: parallel result differs:\nsingle:\n%s\nmulti:\n%s",
				trial, single, multi)
		}
	}
}

func TestDiscoverThresholdInsensitivity(t *testing.T) {
	// §10.5: the result must be identical for any threshold; only runtime
	// and switch counts vary.
	r := rand.New(rand.NewSource(99))
	rel := randomRelation(r, 100, 5, 3)
	want := fd.BruteForce(rel, relation.NullEqualsNull)
	for _, th := range []float64{0.0001, 0.001, 0.01, 0.1, 0.5, 1.0} {
		got, _, err := Discover(context.Background(), rel, Config{EfficiencyThreshold: th})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("threshold %v: missing: %v extra: %v", th, want.Diff(got), got.Diff(want))
		}
	}
}

func TestDiscoverMaxLhsSize(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	rel := randomRelation(r, 40, 6, 2)
	got, stats, err := Discover(context.Background(), rel, Config{MaxLhsSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Complete {
		t.Fatal("bounded run reported complete")
	}
	// Expected: exactly the brute-force FDs with |LHS| <= 2.
	want := fd.NewSet(rel.NumCols())
	for _, f := range fd.BruteForce(rel, relation.NullEqualsNull).All() {
		if f.Lhs.Cardinality() <= 2 {
			want.Add(f)
		}
	}
	if !got.Equal(want) {
		t.Fatalf("missing: %v\nextra: %v", want.Diff(got), got.Diff(want))
	}
}

func TestDiscoverGuardianBudget(t *testing.T) {
	// Wide and short: random binary relations with few rows carry many
	// deep minimal FDs, exactly the regime the Guardian exists for.
	r := rand.New(rand.NewSource(21))
	rel := randomRelation(r, 20, 10, 2)
	got, stats, err := Discover(context.Background(), rel, Config{MemoryBudgetBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Complete {
		t.Fatal("guardian run should report incomplete on a tiny budget")
	}
	// Result must still be sound: every reported FD minimal and valid.
	for _, f := range got.All() {
		if !fd.Holds(rel, relation.NullEqualsNull, f.Lhs, f.Rhs) {
			t.Fatalf("guardian run emitted invalid FD %v", f)
		}
		if f.Lhs.Cardinality() > stats.MaxLhs {
			t.Fatalf("FD %v exceeds final MaxLhs %d", f, stats.MaxLhs)
		}
	}
	// And complete up to the final bound.
	for _, f := range fd.BruteForce(rel, relation.NullEqualsNull).All() {
		if f.Lhs.Cardinality() <= stats.MaxLhs && !got.Contains(f) {
			t.Fatalf("FD %v within bound %d missing", f, stats.MaxLhs)
		}
	}
}

func TestDiscoverStatsTelemetry(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	// A key column guarantees FDs, so validation work must happen.
	rel := randomRelation(r, 100, 5, 3)
	for i := range rel.Rows {
		rel.Rows[i][0] = strconv.Itoa(i)
	}
	_, stats, err := Discover(context.Background(), rel, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SamplingRounds != stats.PhaseSwitches+1 {
		t.Fatalf("rounds %d, switches %d", stats.SamplingRounds, stats.PhaseSwitches)
	}
	if stats.Comparisons <= 0 || stats.Validations <= 0 {
		t.Fatalf("telemetry empty: %+v", stats)
	}
	if stats.MaxLhs != rel.NumCols() {
		t.Fatalf("MaxLhs = %d", stats.MaxLhs)
	}
}

// TestQuickDiscoverMatchesBruteForce is the central correctness property:
// on arbitrary random relations HyFD returns exactly the brute-force
// minimal FD set.
func TestQuickDiscoverMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(60)
		cols := 2 + r.Intn(5)
		domain := 1 + r.Intn(5)
		rel := randomRelation(r, rows, cols, domain)
		got, _, err := Discover(context.Background(), rel, Config{})
		if err != nil {
			return false
		}
		return got.Equal(fd.BruteForce(rel, relation.NullEqualsNull))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDiscoverNullSemantics repeats the property under ⊥≠⊥ with null
// injections.
func TestQuickDiscoverNullSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := randomRelation(r, 1+r.Intn(40), 2+r.Intn(4), 1+r.Intn(4))
		for i := range rel.Rows {
			for j := range rel.Rows[i] {
				if r.Intn(5) == 0 {
					rel.Rows[i][j] = relation.Null
				}
			}
		}
		ns := relation.NullNotEqualsNull
		if seed%2 == 0 {
			ns = relation.NullEqualsNull
		}
		got, _, err := Discover(context.Background(), rel, Config{NullSemantics: ns})
		if err != nil {
			return false
		}
		return got.Equal(fd.BruteForce(rel, ns))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestDiscoverAblationsPreserveResult: every ablation switch changes only
// efficiency, never the discovered FD set.
func TestDiscoverAblationsPreserveResult(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 6; trial++ {
		rel := randomRelation(r, 60, 5, 3)
		want, _, err := Discover(context.Background(), rel, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for name, cfg := range map[string]Config{
			"unfocused":    {UnfocusedSampling: true},
			"nosuggest":    {NoSuggestions: true},
			"intersection": {IntersectionValidation: true},
			"all":          {UnfocusedSampling: true, NoSuggestions: true, IntersectionValidation: true},
		} {
			got, _, err := Discover(context.Background(), rel, cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d ablation %s changed the result:\nmissing: %v\nextra: %v",
					trial, name, want.Diff(got), got.Diff(want))
			}
		}
	}
}
