package core

import (
	"context"
	"math/rand"
	"strconv"
	"testing"

	"hyfd/internal/metrics"
	"hyfd/internal/relation"
)

// structuredRelation has both non-singleton PLI clusters and a non-empty FD
// set (id is a key; code determines mod5 and mod3), so every instrument
// family gets fed.
func structuredRelation(rows int) *relation.Relation {
	rel := relation.New("structured", []string{"id", "mod5", "mod3", "code"})
	for i := 0; i < rows; i++ {
		rel.AppendRow([]string{
			strconv.Itoa(i),
			strconv.Itoa(i % 5),
			strconv.Itoa(i % 3),
			strconv.Itoa(i % 15),
		})
	}
	return rel
}

// TestMetricsMatchStats cross-checks the metrics registry against the Stats
// telemetry of the same run: both are fed from the engine, so the totals
// must agree exactly.
func TestMetricsMatchStats(t *testing.T) {
	rel := structuredRelation(90)
	reg := metrics.NewRegistry()
	_, stats, err := Discover(context.Background(), rel, Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	counters := []struct {
		name string
		want int64
	}{
		{"hyfd_comparisons_total", stats.Comparisons},
		{"hyfd_validations_total", stats.Validations},
		{"hyfd_sampling_rounds_total", int64(stats.SamplingRounds)},
		{"hyfd_phase_switches_total", int64(stats.PhaseSwitches)},
		{"hyfd_runs_total", 1},
	}
	for _, c := range counters {
		got, ok := snap.Counter(c.name)
		if !ok || got != c.want {
			t.Errorf("%s = %d (present=%v), want %d", c.name, got, ok, c.want)
		}
	}
	if got, ok := snap.Gauge("hyfd_fds_discovered"); !ok || int(got) != stats.FDCount {
		t.Errorf("hyfd_fds_discovered = %g, want %d", got, stats.FDCount)
	}
	if h, ok := snap.Histogram("hyfd_run_duration_seconds"); !ok || h.Count != 1 {
		t.Errorf("run duration histogram count = %+v", h)
	}
	if h, ok := snap.Histogram("hyfd_pli_cluster_size"); !ok || h.Count == 0 {
		t.Errorf("cluster-size histogram not fed: %+v", h)
	}
	if h, ok := snap.Histogram("hyfd_sampling_window_efficiency"); !ok || h.Count == 0 {
		t.Errorf("window efficiency histogram not fed: %+v", h)
	}
	if stats.FDCount == 0 || stats.Validations == 0 {
		t.Fatalf("test relation must exercise validation: %+v", stats)
	}
	// Valid candidate verdicts must cover at least the final FD set.
	valid, _ := snap.Counter("hyfd_validation_candidates_total", "verdict", "valid")
	if valid < int64(stats.FDCount) {
		t.Errorf("valid candidates = %d, want >= fd count %d", valid, stats.FDCount)
	}

	// A second run on the same registry accumulates.
	if _, _, err := Discover(context.Background(), rel, Config{Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	if got, _ := reg.Snapshot().Counter("hyfd_runs_total"); got != 2 {
		t.Errorf("runs after second discovery = %d, want 2", got)
	}
}

// TestMetricsNilRegistry pins the pay-for-what-you-use contract: a nil
// registry must not change behavior (and must not panic anywhere).
func TestMetricsNilRegistry(t *testing.T) {
	rel := randomRelation(rand.New(rand.NewSource(7)), 50, 5, 3)
	fds, _, err := Discover(context.Background(), rel, Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	metered, _, err := Discover(context.Background(), rel, Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !fds.Equal(metered) {
		t.Fatal("metering changed the discovered FD set")
	}
}
