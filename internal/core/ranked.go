package core

import (
	"context"
	"errors"
	"runtime"
	"time"

	"hyfd/internal/dataset"
	"hyfd/internal/fd"
	"hyfd/internal/guardian"
	"hyfd/internal/inductor"
	"hyfd/internal/metrics"
	"hyfd/internal/pli"
	"hyfd/internal/rank"
	"hyfd/internal/relation"
	"hyfd/internal/sampler"
	"hyfd/internal/trace"
	"hyfd/internal/validator"
)

// DiscoverRanked runs HyFD in ranked top-k mode: validated FDs are scored
// by internal/rank's redundancy measure and the run terminates as soon as
// the top-k of the ranking are provably stable — usually long before the
// full canonical cover is materialized. topK <= 0 ranks the complete cover;
// minScore > 0 additionally drops (and stops below) low-scoring results.
//
// The returned slice is ordered by rank. Its prefix equality contract: the
// result is exactly the first k entries of the full cover rescored offline
// with rank.Rank — early termination never changes the answer, only the
// work. Each stabilized result is also emitted as a trace.RankedResult
// event while the run is still in flight (the any-time stream).
func DiscoverRanked(ctx context.Context, rel *relation.Relation, cfg Config, topK int, minScore float64) ([]rank.FD, *Stats, error) {
	if ctx == nil {
		//hyfdvet:allow ctxflow — documented nil-ctx defaulting at the engine's public boundary
		ctx = context.Background()
	}
	if rel == nil {
		return nil, nil, errors.New("hyfd: nil relation")
	}
	if err := rel.Validate(); err != nil {
		return nil, nil, err
	}
	threads := cfg.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	stats := &Stats{Rows: rel.NumRows(), Cols: rel.NumCols(), Complete: true, Threads: threads}
	if rel.NumCols() == 0 {
		stats.MaxLhs = 0
		return nil, stats, nil
	}
	em := metrics.NewEngineMetrics(cfg.Metrics)
	obs := trace.Multi(statsTimers{stats}, em.Observer(), cfg.Observer)
	//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, nil, interrupted(err)
	}
	ds, err := prepare(ctx, rel, cfg.NullSemantics, threads, obs, em)
	if err != nil {
		return nil, nil, interrupted(err)
	}
	return runRanked(ctx, ds.Index(), cfg, threads, topK, minScore, stats, obs, em, start)
}

// DiscoverRankedDataset is the warm variant of DiscoverRanked: it runs over
// an already-prepared Dataset with the same semantics DiscoverDataset has
// for the full mode (cfg.NullSemantics ignored, Stats.Warm set, safe for
// concurrent use over the same immutable ds).
func DiscoverRankedDataset(ctx context.Context, ds *dataset.Dataset, cfg Config, topK int, minScore float64) ([]rank.FD, *Stats, error) {
	if ctx == nil {
		//hyfdvet:allow ctxflow — documented nil-ctx defaulting at the engine's public boundary
		ctx = context.Background()
	}
	if ds == nil {
		return nil, nil, errors.New("hyfd: nil dataset")
	}
	threads := cfg.Threads
	if threads <= 0 {
		threads = ds.Threads()
	}
	stats := &Stats{Rows: ds.NumRows(), Cols: ds.NumCols(), Complete: true, Threads: threads, Warm: true}
	if ds.NumCols() == 0 {
		stats.MaxLhs = 0
		return nil, stats, nil
	}
	em := metrics.NewEngineMetrics(cfg.Metrics)
	obs := trace.Multi(statsTimers{stats}, em.Observer(), cfg.Observer)
	//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, nil, interrupted(err)
	}
	trace.Emit(obs, trace.PreprocessingDone{
		Rows: stats.Rows, Cols: stats.Cols, Threads: threads, Warm: true,
		//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
		Duration: time.Since(start),
	})
	return runRanked(ctx, ds.Index(), cfg, threads, topK, minScore, stats, obs, em, start)
}

// runRanked is the priority-driven variant of run: the same alternating
// Phase 1 / Phase 2 loop, plus a rank.Tracker hooked into the validator's
// level boundary. After every completed level the tracker folds the level's
// validated FDs into the ranking and recomputes the cut bound (the maximum
// score any still-unvalidated candidate can reach); results scoring
// strictly above the bound have final ranks and stream out immediately as
// trace.RankedResult events. Once k results are stable (or the bound falls
// below minScore) the level callback stops the validator mid-run and the
// loop exits without touching the rest of the lattice.
func runRanked(ctx context.Context, ix *pli.Index, cfg Config, threads, topK int, minScore float64, stats *Stats, obs trace.Observer, em *metrics.EngineMetrics, start time.Time) ([]rank.FD, *Stats, error) {
	smp := sampler.New(ix, sampler.Config{
		Threshold:   cfg.EfficiencyThreshold,
		Threads:     threads,
		Unfocused:   cfg.UnfocusedSampling,
		Instruments: em.Sampler(),
	})
	ind := inductor.New(ix.NumCols)
	if cfg.MaxLhsSize > 0 && cfg.MaxLhsSize < ix.NumCols {
		ind.Tree().SetMaxLhs(cfg.MaxLhsSize)
		stats.Complete = false
	}

	tracker := rank.NewTracker(rank.NewScorer(ix), ind.Tree(), topK, minScore)
	levelFn := func(level int, valid []fd.FD) bool {
		newly, cont := tracker.CompleteLevel(level, valid)
		for _, e := range newly {
			//hyfdvet:allow determinism — wall-clock telemetry only; never influences the ranking
			elapsed := time.Since(start)
			trace.Emit(obs, trace.RankedResult{
				Rank: e.Rank, Score: e.Score,
				Lhs: e.FD.Lhs.Indices(), Rhs: e.FD.Rhs,
				Duration: elapsed,
			})
			if em != nil {
				if topK > 0 && e.Rank == topK {
					em.RankedTimeToTopK.Observe(elapsed.Seconds())
				}
			}
		}
		return cont
	}

	vopts := []validator.Option{
		validator.WithThreads(threads),
		validator.WithObserver(obs),
		validator.WithInstruments(em.Validator()),
		validator.WithLevelFunc(levelFn),
	}
	if cfg.EfficiencyThreshold > 0 {
		vopts = append(vopts, validator.WithInvalidThreshold(cfg.EfficiencyThreshold))
	}
	if cfg.IntersectionValidation {
		vopts = append(vopts, validator.WithIntersectionValidation())
	}
	val := validator.New(ix, ind.Tree(), vopts...)
	grd := guardian.New(ind.Tree(), cfg.MemoryBudgetBytes)
	if em != nil {
		grd.SetFootprintGauge(em.FDTreeBytes)
	}
	checkGuardian := func() {
		before := grd.Interventions
		grd.Check()
		if grd.Interventions > before {
			trace.Emit(obs, trace.GuardianPrune{
				MaxLhs: grd.MaxLhs(), Interventions: grd.Interventions,
				FootprintBytes: grd.Footprint(),
			})
		}
	}

	cut := false
	var suggestions []pli.Pair
	for {
		//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
		roundStart := time.Now()
		newObs, err := smp.Run(ctx, suggestions)
		if err != nil {
			return nil, nil, interrupted(err)
		}
		stats.SamplingRounds++
		ind.Update(newObs)
		checkGuardian()
		trace.Emit(obs, trace.SamplingRound{
			Round:           stats.SamplingRounds,
			NewObservations: len(newObs),
			Comparisons:     smp.Comparisons,
			Windows:         smp.Windows,
			Threshold:       smp.Threshold(),
			//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
			Duration: time.Since(roundStart),
		})
		trace.Emit(obs, trace.PhaseSwitch{
			From: trace.PhaseSampling, To: trace.PhaseValidation,
			Switches: stats.PhaseSwitches,
		})

		exhaustive := len(newObs) == 0
		res, err := val.Run(ctx, exhaustive)
		if err != nil {
			return nil, nil, interrupted(err)
		}
		checkGuardian()
		if res.Stopped {
			cut = true
			break
		}
		if res.Done {
			break
		}
		suggestions = res.Suggestions
		if cfg.NoSuggestions {
			suggestions = nil
		}
		stats.PhaseSwitches++
		trace.Emit(obs, trace.PhaseSwitch{
			From: trace.PhaseValidation, To: trace.PhaseSampling,
			Switches: stats.PhaseSwitches,
		})
	}

	stats.Comparisons = smp.Comparisons
	stats.Validations = val.Validations
	stats.Observations = smp.ObservationCount()
	stats.MaxLhs = ind.Tree().MaxLhs()
	if grd.Pruned || cut {
		// A ranked cut intentionally leaves the lattice unexplored: the
		// result is the exact top-k, not the complete cover.
		stats.Complete = false
	}
	ranked := tracker.Finalize()
	stats.FDCount = len(ranked)
	//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
	trace.Emit(obs, trace.Done{FDs: stats.FDCount, Duration: time.Since(start)})
	return ranked, stats, nil
}
