// Package dataset provides the immutable preprocessing artifact shared by
// every discovery entry point: the relation handle, the sorted per-attribute
// PLIs, the PLI-compressed record matrix, the null semantics they were built
// under, and the resolved worker count. The paper's Algorithm 1 treats plis
// and pliRecords as fixed inputs that the Sampler and Validator merely read;
// a Dataset makes that contract explicit so one preprocessing pass can be
// amortized across many runs — HyFD, the lattice baselines, approximate-FD
// and UCC discovery, and repeated benchmark repetitions alike.
//
// # Immutability contract
//
// A Dataset is immutable after Prepare returns: no method mutates it, and
// every accessor returns either a value copy or a reference into shared
// read-only state. Callers must never write through Plis(), Index(), or any
// partition derived from them — the hyfdvet bitsetalias analyzer enforces
// this across the repository. Because all shared state is reached only
// through reads, any number of goroutines may run Discover over one Dataset
// concurrently; per-run mutable state (partition caches, samplers,
// validators) is created fresh per run, e.g. via NewCache.
package dataset

import (
	"context"
	"errors"
	"runtime"
	"time"

	"hyfd/internal/pli"
	"hyfd/internal/relation"
)

// Options configures Prepare. The zero value selects null=null semantics
// and all CPUs.
type Options struct {
	// NullSemantics selects ⊥=⊥ (default) or ⊥≠⊥ comparisons. The choice is
	// baked into the PLIs, so every run over the Dataset inherits it.
	NullSemantics relation.NullSemantics
	// Threads is the worker count for PLI construction and record
	// inversion; 1 builds sequentially, any value <= 0 picks
	// runtime.GOMAXPROCS(0). The resolved count is recorded on the Dataset
	// and becomes the default worker count of runs that consume it.
	// Preprocessing is bit-for-bit deterministic for every thread count.
	Threads int
	// OnBuild, when non-nil, receives every attribute's finished PLI and
	// its build latency, exactly as pli.Options.OnBuild does: with more
	// than one thread it is called concurrently from worker goroutines.
	OnBuild func(p *pli.PLI, d time.Duration)
}

// Dataset is an immutable, goroutine-safe preprocessing artifact produced by
// Prepare. All fields are unexported; consumers go through the read-only
// accessors.
type Dataset struct {
	rel      *relation.Relation
	ns       relation.NullSemantics
	threads  int
	ix       *pli.Index
	prepTime time.Duration
	version  int
	prov     *Provenance
}

// Prepare runs Algorithm 1 (PLI construction + record inversion) once over
// the relation and returns the resulting Dataset. The context is checked
// before and after the build; a canceled context returns ctx.Err() wrapped.
// A nil ctx is treated as context.Background().
func Prepare(ctx context.Context, rel *relation.Relation, opts Options) (*Dataset, error) {
	if ctx == nil {
		//hyfdvet:allow ctxflow — documented nil-ctx defaulting at the public preparation boundary
		ctx = context.Background()
	}
	if rel == nil {
		return nil, errors.New("hyfd: nil relation")
	}
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	threads := opts.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
	start := time.Now()
	ix := pli.NewIndexWith(rel, opts.NullSemantics, pli.Options{
		Threads: threads,
		OnBuild: opts.OnBuild,
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Dataset{
		rel:     rel,
		ns:      opts.NullSemantics,
		threads: threads,
		ix:      ix,
		//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
		prepTime: time.Since(start),
		version:  1,
	}, nil
}

// Relation returns the underlying relation. Callers must treat it as
// read-only: the PLIs were built from its current contents, and mutating it
// would silently desynchronize them.
func (d *Dataset) Relation() *relation.Relation { return d.rel }

// NullSemantics returns the null semantics the PLIs were built under. Runs
// over the Dataset always use this value; a conflicting per-run option would
// disagree with the prebuilt PLIs and is therefore ignored by consumers.
func (d *Dataset) NullSemantics() relation.NullSemantics { return d.ns }

// Threads returns the resolved worker count preprocessing ran with (the
// configured value, or GOMAXPROCS when that was <= 0). Consumers use it as
// the default worker count for runs that don't override it.
func (d *Dataset) Threads() int { return d.threads }

// Index returns the shared PLI index (per-attribute PLIs, compressed
// records, distinctness order). It is read-only shared state: callers must
// not write through it.
func (d *Dataset) Index() *pli.Index { return d.ix }

// Plis returns the per-attribute PLIs in attribute order. The returned slice
// is a fresh copy, so reordering or truncating it cannot corrupt the shared
// index; the PLIs it points to remain read-only shared state and callers must
// not write through them (the hyfdvet bitsetalias analyzer enforces this).
func (d *Dataset) Plis() []*pli.PLI {
	out := make([]*pli.PLI, len(d.ix.Plis))
	copy(out, d.ix.Plis)
	return out
}

// NumRows returns the number of records of the prepared relation.
func (d *Dataset) NumRows() int { return d.ix.NumRows }

// NumCols returns the number of attributes of the prepared relation.
func (d *Dataset) NumCols() int { return d.ix.NumCols }

// NewCache returns a fresh partition-intersection cache over the shared
// PLIs. A pli.Cache is not safe for concurrent use and memoizes mutable
// per-run state, so every run must create its own; the PLIs themselves stay
// read-only (intersection allocates new partitions).
func (d *Dataset) NewCache() *pli.Cache {
	return pli.NewCache(d.ix.Plis, d.ix.NumRows)
}

// PreprocessingTime returns the wall-clock time Prepare spent building the
// PLIs and compressed records (or, for a delta snapshot, the time Apply spent
// extending them). Warm runs over the Dataset report ~zero preprocessing time
// of their own; this value is the amortized cost.
func (d *Dataset) PreprocessingTime() time.Duration { return d.prepTime }

// Version returns the snapshot version: 1 for a freshly Prepared dataset,
// and parent+1 for every snapshot produced by Apply.
func (d *Dataset) Version() int { return d.version }

// Provenance returns how this snapshot was derived from its parent, or nil
// for a root snapshot produced by Prepare. The returned value is read-only
// shared state: callers must not mutate it.
func (d *Dataset) Provenance() *Provenance { return d.prov }
