package dataset

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"hyfd/internal/bitset"
	"hyfd/internal/pli"
	"hyfd/internal/relation"
)

func sampleRel() *relation.Relation {
	rel := relation.New("t", []string{"a", "b", "c"})
	rel.AppendRow([]string{"1", "x", "p"})
	rel.AppendRow([]string{"1", "y", "p"})
	rel.AppendRow([]string{"2", "x", "q"})
	rel.AppendRow([]string{"2", "y", "q"})
	rel.AppendRow([]string{"3", "x", "p"})
	return rel
}

func TestPrepareBasic(t *testing.T) {
	rel := sampleRel()
	ds, err := Prepare(context.Background(), rel, Options{Threads: 1})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if ds.Relation() != rel {
		t.Error("Relation() should return the prepared relation")
	}
	if ds.NumRows() != 5 || ds.NumCols() != 3 {
		t.Errorf("dims = %d×%d, want 5×3", ds.NumRows(), ds.NumCols())
	}
	if ds.Threads() != 1 {
		t.Errorf("Threads() = %d, want 1", ds.Threads())
	}
	if ds.NullSemantics() != relation.NullEqualsNull {
		t.Errorf("NullSemantics() = %v, want null=null", ds.NullSemantics())
	}
	if got := len(ds.Plis()); got != 3 {
		t.Errorf("len(Plis()) = %d, want 3", got)
	}
	if ds.PreprocessingTime() <= 0 {
		t.Error("PreprocessingTime() should be positive")
	}
}

func TestPrepareResolvesThreads(t *testing.T) {
	ds, err := Prepare(context.Background(), sampleRel(), Options{Threads: 0})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if ds.Threads() <= 0 {
		t.Errorf("Threads() = %d, want > 0 (resolved GOMAXPROCS)", ds.Threads())
	}
}

func TestPrepareNilAndInvalid(t *testing.T) {
	if _, err := Prepare(context.Background(), nil, Options{}); err == nil {
		t.Error("Prepare(nil relation) should fail")
	}
	bad := relation.New("bad", []string{"a", "a"})
	if _, err := Prepare(context.Background(), bad, Options{}); err == nil {
		t.Error("Prepare(invalid relation) should fail validation")
	}
}

func TestPrepareCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Prepare(ctx, sampleRel(), Options{}); err == nil {
		t.Error("Prepare with canceled context should fail")
	}
}

func TestPrepareNilContext(t *testing.T) {
	//hyfdvet:allow ctxflow — exercising the documented nil-ctx defaulting
	if _, err := Prepare(nil, sampleRel(), Options{}); err != nil {
		t.Errorf("Prepare(nil ctx) should default to Background: %v", err)
	}
}

func TestPrepareMatchesSequentialIndex(t *testing.T) {
	rel := sampleRel()
	want := pli.NewIndex(rel, relation.NullNotEqualsNull)
	ds, err := Prepare(context.Background(), rel, Options{
		NullSemantics: relation.NullNotEqualsNull,
		Threads:       4,
	})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if !reflect.DeepEqual(want.Plis, ds.Index().Plis) {
		t.Error("parallel Prepare PLIs differ from sequential build")
	}
	if !reflect.DeepEqual(want.Records, ds.Index().Records) {
		t.Error("parallel Prepare records differ from sequential build")
	}
	if !reflect.DeepEqual(want.Order, ds.Index().Order) {
		t.Error("parallel Prepare order differs from sequential build")
	}
}

// TestConcurrentCaches pins the per-run cache contract: caches created from
// one Dataset are independent, and concurrent use across goroutines is
// race-clean because intersection never writes into the shared PLIs.
func TestConcurrentCaches(t *testing.T) {
	ds, err := Prepare(context.Background(), sampleRel(), Options{})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	want := make(map[string]int)
	cold := ds.NewCache()
	for a := 0; a < ds.NumCols(); a++ {
		for b := 0; b < ds.NumCols(); b++ {
			s := bitset.FromIndices(ds.NumCols(), a, b)
			want[s.Key()] = cold.Card(s)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cache := ds.NewCache()
			for a := 0; a < ds.NumCols(); a++ {
				for b := 0; b < ds.NumCols(); b++ {
					s := bitset.FromIndices(ds.NumCols(), a, b)
					if got := cache.Card(s); got != want[s.Key()] {
						errs <- s.String()
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for s := range errs {
		t.Errorf("concurrent Card(%s) diverged from cold cache", s)
	}
}
