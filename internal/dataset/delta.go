package dataset

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hyfd/internal/pli"
	"hyfd/internal/relation"
)

// Delta describes one batch of updates against a Dataset snapshot: rows to
// remove from the snapshot's relation and rows to append after the surviving
// ones. Deletes are matched by full row value against the receiver snapshot
// (the earliest not-yet-matched occurrence wins, so deleting a duplicated row
// twice removes two copies); a delete that matches no remaining row is an
// error. Deletes never match rows inserted by the same delta.
type Delta struct {
	Inserts []relation.Row
	Deletes []relation.Row
}

// IsEmpty reports whether the delta changes nothing.
func (d Delta) IsEmpty() bool { return len(d.Inserts) == 0 && len(d.Deletes) == 0 }

// Provenance records how a delta snapshot was derived from its parent. It is
// deliberately self-contained — copies, not references into the parent — so
// holding a snapshot does not pin its entire ancestor chain against garbage
// collection; the serving registry advances versions and per-job pinning
// keeps exactly the snapshots that are still in use alive.
type Provenance struct {
	// BaseVersion is the parent snapshot's Version().
	BaseVersion int
	// Inserts and Deletes count the delta's rows.
	Inserts int
	Deletes int
	// InsertedFrom is the first record id the inserted rows occupy in this
	// snapshot: ids [InsertedFrom, NumRows) are the delta's inserts. Equal
	// to NumRows when the delta inserted nothing.
	InsertedFrom int
	// DeletedRecords holds copies of the parent's PLI-compressed records
	// for every deleted row, in ascending parent record order. Incremental
	// maintenance reads them to derive which FD candidates a delete could
	// have flipped valid (an attribute is "touched" by a deleted record
	// exactly when its compressed value is not pli.Singleton).
	DeletedRecords [][]int32
	// SharedAttrs counts attributes whose cluster lists are structurally
	// shared — the same backing slice — with the parent snapshot. Only
	// insert-only deltas share clusters; any delete renumbers record ids
	// and forces a full rebuild.
	SharedAttrs int
}

// Apply produces a new immutable snapshot with the delta's deletes removed
// and its inserts appended, advancing Version by one. The result is
// bit-for-bit identical — PLIs, compressed records, attribute order — to
// Prepare run cold on the updated relation, for every thread count.
//
// Insert-only deltas take a copy-on-write fast path: surviving relation rows
// are shared with the parent, and per attribute the cluster list is extended
// rather than rebuilt (clusters untouched by the inserts share their backing
// arrays; a cluster list with no extensions is shared wholesale). Deltas
// containing deletes compact record ids, which renumbers every cluster, so
// they rebuild the index from the updated relation; the relation's surviving
// row slices are still shared.
func (d *Dataset) Apply(ctx context.Context, delta Delta) (*Dataset, error) {
	if ctx == nil {
		//hyfdvet:allow ctxflow — documented nil-ctx defaulting at the public preparation boundary
		ctx = context.Background()
	}
	m := d.ix.NumCols
	for i, row := range delta.Deletes {
		if len(row) != m {
			return nil, fmt.Errorf("dataset %q: delete row %d has arity %d, schema has %d columns", d.rel.Name, i, len(row), m)
		}
	}
	for i, row := range delta.Inserts {
		if len(row) != m {
			return nil, fmt.Errorf("dataset %q: insert row %d has arity %d, schema has %d columns", d.rel.Name, i, len(row), m)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
	start := time.Now()

	deletedIDs, err := d.resolveDeletes(delta.Deletes)
	if err != nil {
		return nil, err
	}
	prov := &Provenance{
		BaseVersion: d.version,
		Inserts:     len(delta.Inserts),
		Deletes:     len(deletedIDs),
	}
	for _, r := range deletedIDs {
		prov.DeletedRecords = append(prov.DeletedRecords, append([]int32(nil), d.ix.Records[r]...))
	}

	var (
		rel *relation.Relation
		ix  *pli.Index
	)
	switch {
	case len(deletedIDs) == 0 && len(delta.Inserts) == 0:
		// An empty delta advances the version but shares everything.
		rel, ix = d.rel, d.ix
		prov.InsertedFrom = d.ix.NumRows
		prov.SharedAttrs = m
	case len(deletedIDs) == 0:
		rel, ix, prov.SharedAttrs = d.applyInserts(delta.Inserts)
		prov.InsertedFrom = d.ix.NumRows
	default:
		rel, ix = d.applyRebuild(deletedIDs, delta.Inserts)
		prov.InsertedFrom = d.ix.NumRows - len(deletedIDs)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Dataset{
		rel:     rel,
		ns:      d.ns,
		threads: d.threads,
		ix:      ix,
		//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
		prepTime: time.Since(start),
		version:  d.version + 1,
		prov:     prov,
	}, nil
}

// rowKey renders a row as an unambiguous map key (length-prefixed cells, so
// no separator collision is possible).
func rowKey(row []string) string {
	var b strings.Builder
	for _, cell := range row {
		b.WriteString(strconv.Itoa(len(cell)))
		b.WriteByte(':')
		b.WriteString(cell)
	}
	return b.String()
}

// resolveDeletes maps delete rows to parent record ids by value, earliest
// unmatched occurrence first. The result is ascending; a delete row with no
// remaining match is an error.
func (d *Dataset) resolveDeletes(deletes []relation.Row) ([]int, error) {
	if len(deletes) == 0 {
		return nil, nil
	}
	want := make(map[string]int, len(deletes))
	for _, row := range deletes {
		want[rowKey(row)]++
	}
	ids := make([]int, 0, len(deletes))
	for r, row := range d.rel.Rows {
		if len(ids) == len(deletes) {
			break
		}
		k := rowKey(row)
		if c := want[k]; c > 0 {
			want[k] = c - 1
			ids = append(ids, r)
		}
	}
	if len(ids) != len(deletes) {
		for i, row := range deletes {
			if want[rowKey(row)] > 0 {
				return nil, fmt.Errorf("dataset %q: delete row %d matches no remaining row", d.rel.Name, i)
			}
		}
	}
	return ids, nil
}

// applyRebuild handles deltas that contain deletes: record-id compaction
// renumbers every cluster, so the index is rebuilt from the updated relation
// exactly as Prepare would. Surviving row slices are shared with the parent.
func (d *Dataset) applyRebuild(deletedIDs []int, inserts []relation.Row) (*relation.Relation, *pli.Index) {
	rows := make([][]string, 0, len(d.rel.Rows)-len(deletedIDs)+len(inserts))
	next := 0
	for r, row := range d.rel.Rows {
		if next < len(deletedIDs) && deletedIDs[next] == r {
			next++
			continue
		}
		rows = append(rows, row)
	}
	for _, row := range inserts {
		rows = append(rows, append(relation.Row(nil), row...))
	}
	rel := &relation.Relation{Name: d.rel.Name, Columns: d.rel.Columns, Rows: rows}
	return rel, pli.NewIndexWith(rel, d.ns, pli.Options{Threads: d.threads})
}

// attrExt is the per-attribute outcome of the insert-only fast path.
type attrExt struct {
	p *pli.PLI
	// shared: the new PLI reuses the parent's cluster list wholesale.
	shared bool
	// rewired: an old singleton joined a cluster, so the new cluster sorts
	// into the middle of the list and old rows' cluster ids shift — the
	// compressed records of old rows must be rebuilt for this attribute.
	rewired bool
}

// applyInserts extends the index copy-on-write for an insert-only delta.
func (d *Dataset) applyInserts(inserts []relation.Row) (*relation.Relation, *pli.Index, int) {
	n := d.ix.NumRows
	k := len(inserts)
	m := d.ix.NumCols
	rows := d.rel.Rows[:n:n]
	for _, row := range inserts {
		rows = append(rows, append(relation.Row(nil), row...))
	}
	rel := &relation.Relation{Name: d.rel.Name, Columns: d.rel.Columns, Rows: rows}

	exts := make([]attrExt, m)
	forEachAttr(m, d.threads, func(a int) {
		exts[a] = d.extendAttr(a, rel.Rows)
	})

	ix := &pli.Index{
		Plis:    make([]*pli.PLI, m),
		NumRows: n + k,
		NumCols: m,
	}
	shared := 0
	rewired := false
	for a, e := range exts {
		ix.Plis[a] = e.p
		if e.shared {
			shared++
		}
		rewired = rewired || e.rewired
	}

	if rewired {
		// At least one attribute's old cluster ids shifted; compressed
		// record rows span all attributes, so rebuild the matrix by full
		// inversion (same procedure as pli.NewIndexWith).
		ix.Records = make([][]int32, n+k)
		flat := make([]int32, (n+k)*m)
		for i := range flat {
			flat[i] = pli.Singleton
		}
		for r := range ix.Records {
			ix.Records[r], flat = flat[:m], flat[m:]
		}
		forEachAttr(m, d.threads, func(a int) {
			for cid, cluster := range ix.Plis[a].Clusters {
				for _, r := range cluster {
					ix.Records[r][a] = int32(cid)
				}
			}
		})
	} else {
		// Old rows keep their compressed records verbatim — share them —
		// and only the k inserted rows need fresh record rows. New ids
		// (>= n) sit at the tail of each ascending cluster.
		newRecs := make([][]int32, k)
		flat := make([]int32, k*m)
		for i := range flat {
			flat[i] = pli.Singleton
		}
		for r := range newRecs {
			newRecs[r], flat = flat[:m], flat[m:]
		}
		forEachAttr(m, d.threads, func(a int) {
			for cid, cluster := range ix.Plis[a].Clusters {
				for i := len(cluster) - 1; i >= 0 && cluster[i] >= int32(n); i-- {
					newRecs[cluster[i]-int32(n)][a] = int32(cid)
				}
			}
		})
		ix.Records = append(d.ix.Records[:n:n], newRecs...)
	}

	ix.Order = make([]int, m)
	for a := range ix.Order {
		ix.Order[a] = a
	}
	sort.SliceStable(ix.Order, func(i, j int) bool {
		return ix.Plis[ix.Order[i]].NumClusters > ix.Plis[ix.Order[j]].NumClusters
	})
	return rel, ix, shared
}

// extendAttr extends one attribute's PLI with the inserted rows (record ids
// [NumRows, len(newRows)) of the new relation), copy-on-write: untouched
// clusters share their backing arrays with the parent, and a cluster list
// with no extensions and no new clusters is shared wholesale.
func (d *Dataset) extendAttr(a int, newRows [][]string) attrExt {
	old := d.ix.Plis[a]
	n := d.ix.NumRows
	// Group inserted values; under ⊥≠⊥ every inserted null forms its own
	// singleton class and never joins (or anchors to) anything.
	groups := make(map[string][]int32)
	var order []string // first-seen value order, for deterministic assembly
	nulls := 0
	for r := n; r < len(newRows); r++ {
		v := newRows[r][a]
		if v == relation.Null && d.ns == relation.NullNotEqualsNull {
			nulls++
			continue
		}
		if _, ok := groups[v]; !ok {
			order = append(order, v)
		}
		groups[v] = append(groups[v], int32(r))
	}
	if len(groups) == 0 {
		return attrExt{
			p: &pli.PLI{
				Attr:        a,
				Clusters:    old.Clusters,
				NumClusters: old.NumClusters + nulls,
				NumRows:     len(newRows),
			},
			shared: true,
		}
	}
	// Anchor each inserted value against the parent: an existing cluster,
	// an existing singleton record, or nothing (a fresh value). One scan of
	// the old column, aborted as soon as every value is anchored.
	anchorCluster := make(map[string]int)
	anchorSingle := make(map[string]int32)
	pending := len(groups)
	for r := 0; r < n && pending > 0; r++ {
		v := d.rel.Rows[r][a]
		if _, ok := groups[v]; !ok {
			continue
		}
		if _, done := anchorCluster[v]; done {
			continue
		}
		if _, done := anchorSingle[v]; done {
			continue
		}
		if cid := d.ix.Records[r][a]; cid != pli.Singleton {
			anchorCluster[v] = int(cid)
		} else {
			anchorSingle[v] = int32(r)
		}
		pending--
	}
	extended := make(map[int][]int32)
	var fresh [][]int32
	newClasses := nulls
	rewired := false
	for _, v := range order {
		ids := groups[v]
		if cid, ok := anchorCluster[v]; ok {
			extended[cid] = ids
			continue
		}
		if r0, ok := anchorSingle[v]; ok {
			// The parent singleton joins the inserted ids: the new
			// cluster's first id r0 < n sorts it into the middle of the
			// list, shifting old cluster ids.
			fresh = append(fresh, append([]int32{r0}, ids...))
			rewired = true
			continue
		}
		newClasses++
		if len(ids) > 1 {
			fresh = append(fresh, ids)
		}
	}
	ext := attrExt{rewired: rewired}
	if len(extended) == 0 && len(fresh) == 0 {
		ext.p = &pli.PLI{
			Attr:        a,
			Clusters:    old.Clusters,
			NumClusters: old.NumClusters + newClasses,
			NumRows:     len(newRows),
		}
		ext.shared = true
		return ext
	}
	clusters := make([][]int32, 0, len(old.Clusters)+len(fresh))
	for cid, c := range old.Clusters {
		if add, ok := extended[cid]; ok {
			nc := make([]int32, 0, len(c)+len(add))
			nc = append(append(nc, c...), add...)
			clusters = append(clusters, nc)
		} else {
			clusters = append(clusters, c)
		}
	}
	clusters = append(clusters, fresh...)
	// First record ids are unique across disjoint clusters, so this order
	// is total — identical to the cold build's by-first-id sortation.
	sort.Slice(clusters, func(i, j int) bool { return clusters[i][0] < clusters[j][0] })
	ext.p = &pli.PLI{
		Attr:        a,
		Clusters:    clusters,
		NumClusters: old.NumClusters + newClasses,
		NumRows:     len(newRows),
	}
	return ext
}

// forEachAttr runs f(a) for every attribute, fanning out over a worker pool
// when threads > 1. Work partitions by attribute, so any thread count yields
// identical results.
func forEachAttr(m, threads int, f func(a int)) {
	if threads > m {
		threads = m
	}
	if threads <= 1 {
		for a := 0; a < m; a++ {
			f(a)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range work {
				f(a)
			}
		}()
	}
	for a := 0; a < m; a++ {
		work <- a
	}
	close(work)
	wg.Wait()
}
