package dataset

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hyfd/internal/pli"
	"hyfd/internal/relation"
)

// randomRel builds a small random relation with enough value collisions to
// exercise cluster extension, singleton joins, and fresh values.
func randomRel(rng *rand.Rand, rows, cols int) *relation.Relation {
	names := make([]string, cols)
	for c := range names {
		names[c] = fmt.Sprintf("c%d", c)
	}
	rel := relation.New("rand", names)
	for r := 0; r < rows; r++ {
		row := make([]string, cols)
		for c := range row {
			switch rng.Intn(6) {
			case 0:
				row[c] = relation.Null
			default:
				row[c] = fmt.Sprintf("v%d", rng.Intn(4))
			}
		}
		rel.AppendRow(row)
	}
	return rel
}

func randomRows(rng *rand.Rand, n, cols int) []relation.Row {
	out := make([]relation.Row, n)
	for i := range out {
		row := make([]string, cols)
		for c := range row {
			if rng.Intn(6) == 0 {
				row[c] = relation.Null
			} else {
				row[c] = fmt.Sprintf("v%d", rng.Intn(4))
			}
		}
		out[i] = row
	}
	return out
}

// assertIndexEqual compares an Apply-produced index bit-for-bit against a
// cold Prepare over the same relation contents.
func assertIndexEqual(t *testing.T, tag string, got, want *pli.Index) {
	t.Helper()
	if !reflect.DeepEqual(want.Plis, got.Plis) {
		t.Errorf("%s: PLIs diverge from cold build\n got: %+v\nwant: %+v", tag, got.Plis, want.Plis)
	}
	if !reflect.DeepEqual(want.Records, got.Records) {
		t.Errorf("%s: records diverge from cold build", tag)
	}
	if !reflect.DeepEqual(want.Order, got.Order) {
		t.Errorf("%s: attribute order diverges from cold build", tag)
	}
	if got.NumRows != want.NumRows || got.NumCols != want.NumCols {
		t.Errorf("%s: dims %dx%d, want %dx%d", tag, got.NumRows, got.NumCols, want.NumRows, want.NumCols)
	}
}

// TestApplyMatchesColdPrepare is the core structural-sharing contract: a
// snapshot chain built with Apply is bit-for-bit identical to cold Prepare
// on the final relation, for both null semantics and several thread counts.
func TestApplyMatchesColdPrepare(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, ns := range []relation.NullSemantics{relation.NullEqualsNull, relation.NullNotEqualsNull} {
			for _, threads := range []int{1, 4} {
				rng := rand.New(rand.NewSource(seed))
				rel := randomRel(rng, 8+rng.Intn(20), 1+rng.Intn(5))
				ds, err := Prepare(context.Background(), rel, Options{NullSemantics: ns, Threads: threads})
				if err != nil {
					t.Fatalf("Prepare: %v", err)
				}
				for step := 0; step < 3; step++ {
					delta := Delta{Inserts: randomRows(rng, rng.Intn(4), rel.NumCols())}
					if step == 2 && ds.NumRows() > 2 {
						// Delete two existing rows by value to hit the
						// rebuild path.
						delta.Deletes = []relation.Row{
							append(relation.Row(nil), ds.Relation().Rows[rng.Intn(ds.NumRows())]...),
						}
					}
					next, err := ds.Apply(context.Background(), delta)
					if err != nil {
						t.Fatalf("Apply: %v", err)
					}
					cold, err := Prepare(context.Background(), next.Relation(), Options{NullSemantics: ns, Threads: 1})
					if err != nil {
						t.Fatalf("cold Prepare: %v", err)
					}
					tag := fmt.Sprintf("seed=%d ns=%v threads=%d step=%d", seed, ns, threads, step)
					assertIndexEqual(t, tag, next.Index(), cold.Index())
					if next.Version() != ds.Version()+1 {
						t.Errorf("%s: version %d, want %d", tag, next.Version(), ds.Version()+1)
					}
					prov := next.Provenance()
					if prov == nil {
						t.Fatalf("%s: delta snapshot must carry provenance", tag)
					}
					if prov.BaseVersion != ds.Version() || prov.Inserts != len(delta.Inserts) || prov.Deletes != len(delta.Deletes) {
						t.Errorf("%s: provenance %+v inconsistent with delta", tag, prov)
					}
					if want := next.NumRows() - len(delta.Inserts); prov.InsertedFrom != want {
						t.Errorf("%s: InsertedFrom = %d, want %d", tag, prov.InsertedFrom, want)
					}
					if len(delta.Deletes) > 0 && prov.SharedAttrs != 0 {
						t.Errorf("%s: deletes force a rebuild, SharedAttrs = %d", tag, prov.SharedAttrs)
					}
					ds = next
				}
			}
		}
	}
}

// TestApplyParentUntouched pins immutability: applying a delta must leave
// the parent snapshot's relation, PLIs, and records byte-identical.
func TestApplyParentUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rel := randomRel(rng, 16, 3)
	ds, err := Prepare(context.Background(), rel, Options{Threads: 1})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	before, err := Prepare(context.Background(), ds.Relation(), Options{Threads: 1})
	if err != nil {
		t.Fatalf("snapshot Prepare: %v", err)
	}
	// Inserts that extend existing clusters and join singletons.
	ins := append(randomRows(rng, 6, 3), append(relation.Row(nil), rel.Rows[0]...))
	if _, err := ds.Apply(context.Background(), Delta{Inserts: ins}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if _, err := ds.Apply(context.Background(), Delta{Deletes: []relation.Row{append(relation.Row(nil), rel.Rows[1]...)}}); err != nil {
		t.Fatalf("Apply deletes: %v", err)
	}
	assertIndexEqual(t, "parent after Apply", ds.Index(), before.Index())
	if len(ds.Relation().Rows) != 16 {
		t.Errorf("parent relation grew to %d rows", len(ds.Relation().Rows))
	}
}

func TestApplyEmptyDelta(t *testing.T) {
	ds, err := Prepare(context.Background(), sampleRel(), Options{Threads: 1})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	next, err := ds.Apply(context.Background(), Delta{})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if next.Version() != 2 || next.Index() != ds.Index() {
		t.Errorf("empty delta should advance the version (got %d) while sharing the index", next.Version())
	}
	if next.Provenance().SharedAttrs != ds.NumCols() {
		t.Errorf("SharedAttrs = %d, want %d", next.Provenance().SharedAttrs, ds.NumCols())
	}
}

func TestApplyErrors(t *testing.T) {
	ds, err := Prepare(context.Background(), sampleRel(), Options{Threads: 1})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if _, err := ds.Apply(context.Background(), Delta{Inserts: []relation.Row{{"too", "short"}}}); err == nil {
		t.Error("insert arity mismatch should fail")
	}
	if _, err := ds.Apply(context.Background(), Delta{Deletes: []relation.Row{{"no", "such", "row"}}}); err == nil {
		t.Error("unmatched delete should fail")
	}
	// Deleting the same duplicated row more often than it occurs must fail.
	dup := []string{"1", "x", "p"}
	if _, err := ds.Apply(context.Background(), Delta{Deletes: []relation.Row{dup, dup}}); err == nil {
		t.Error("over-deleting a row should fail")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ds.Apply(ctx, Delta{}); err == nil {
		t.Error("Apply with canceled context should fail")
	}
}

// TestApplyInsertOnlySharesClusters verifies the copy-on-write claim: with
// inserts of entirely fresh values, every attribute's cluster list backing
// is shared with the parent.
func TestApplyInsertOnlySharesClusters(t *testing.T) {
	ds, err := Prepare(context.Background(), sampleRel(), Options{Threads: 1})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	next, err := ds.Apply(context.Background(), Delta{Inserts: []relation.Row{{"9", "z", "w"}}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := next.Provenance().SharedAttrs; got != ds.NumCols() {
		t.Errorf("SharedAttrs = %d, want %d (all values fresh)", got, ds.NumCols())
	}
	for a := 0; a < ds.NumCols(); a++ {
		oldC := ds.Index().Plis[a].Clusters
		newC := next.Index().Plis[a].Clusters
		if len(oldC) > 0 && &oldC[0] != &newC[0] {
			t.Errorf("attr %d: cluster list not structurally shared", a)
		}
	}
}
