package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hyfd/internal/relation"
)

// profile builds a Config with a randomized but seeded column mixture,
// the knob set the named analogs are tuned with.
type profile struct {
	rows        int
	cols        int
	seed        int64
	keyCols     int     // leading unique columns (record ids)
	derivedFrac float64 // fraction of non-key columns derived from earlier ones
	hierFrac    float64 // fraction forming zip→city style hierarchies
	noise       float64 // FD-breaking noise on derived/hierarchy columns
	nullRate    float64 // fraction of nulls
	domainLo    int     // categorical domain bounds (log-uniform draw)
	domainHi    int
	zipf        bool
	// lowCardCols forces this many non-key columns to be low-cardinality
	// categoricals (domain 2-20). Wide real-world tables mix near-unique
	// and low-cardinality columns; the low-cardinality sub-lattice is what
	// drives lattice-traversal algorithms into their limits.
	lowCardCols int
}

func (p profile) build(name string) Config {
	rng := rand.New(rand.NewSource(p.seed))
	cols := make([]Column, p.cols)
	logDomain := func() int {
		lo, hi := float64(p.domainLo), float64(p.domainHi)
		if hi <= lo {
			return p.domainLo
		}
		// log-uniform between lo and hi
		return int(lo * math.Pow(hi/lo, rng.Float64()))
	}
	lowCard := make(map[int]bool, p.lowCardCols)
	for len(lowCard) < p.lowCardCols && len(lowCard) < p.cols-p.keyCols {
		c := p.keyCols + rng.Intn(p.cols-p.keyCols)
		lowCard[c] = true
	}
	for c := 0; c < p.cols; c++ {
		switch {
		case c < p.keyCols:
			cols[c] = Column{Kind: Key}
		case lowCard[c]:
			cols[c] = Column{
				Kind:     Categorical,
				Domain:   2 + rng.Intn(19),
				Zipf:     p.zipf && rng.Intn(2) == 0,
				NullRate: p.nullRate,
			}
		case c > 0 && rng.Float64() < p.derivedFrac:
			src := rng.Intn(c)
			cols[c] = Column{
				Kind:     Derived,
				Src:      src,
				Domain:   logDomain(),
				Noise:    p.noise * rng.Float64(),
				NullRate: p.nullRate,
			}
		case c > 0 && rng.Float64() < p.hierFrac:
			src := rng.Intn(c)
			cols[c] = Column{
				Kind:     Hierarchy,
				Src:      src,
				Domain:   1 + logDomain()/4,
				Noise:    p.noise * rng.Float64() / 2,
				NullRate: p.nullRate,
			}
		default:
			cols[c] = Column{
				Kind:     Categorical,
				Domain:   logDomain(),
				Zipf:     p.zipf && rng.Intn(2) == 0,
				NullRate: p.nullRate,
			}
		}
	}
	return Config{Name: name, Rows: p.rows, Seed: p.seed + 1, Columns: cols}
}

// Dataset describes one named analog of a paper dataset.
type Dataset struct {
	// Name matches the paper's dataset name (Tables 1 and 2).
	Name string
	// Cols and Rows are the paper's dimensions.
	Cols, Rows int
	// PaperFDs is the FD count the paper reports (-1 if unknown/truncated).
	PaperFDs int
	// Generate materializes the analog at a row scale; scale 1 reproduces
	// the paper's dimensions (which can be large!), smaller scales shrink
	// the instance and scales above 1 extend it (the row-scalability
	// experiments sweep past some datasets' natural size).
	Generate func(scale float64) *relation.Relation
}

// gen wraps a profile as a scalable generator.
func gen(name string, cols, rows int, p profile) func(float64) *relation.Relation {
	return func(scale float64) *relation.Relation {
		pp := p
		pp.rows = scaled(rows, scale)
		pp.cols = cols
		rel := Generate(pp.build(name))
		rel.Name = name
		return rel
	}
}

func scaled(rows int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	n := int(float64(rows) * scale)
	if n < 1 {
		n = 1
	}
	return n
}

// Catalog returns the analogs of all datasets used in the paper's
// evaluation (Table 1, Table 2, and the scalability figures), keyed in
// paper order. Dimensions match the paper; FD structure is synthetic (see
// the package comment).
func Catalog() []Dataset {
	ds := []Dataset{
		{Name: "iris", Cols: 5, Rows: 150, PaperFDs: 4,
			Generate: gen("iris", 5, 150, profile{seed: 11, derivedFrac: 0.5, domainLo: 3, domainHi: 30, noise: 0.08})},
		{Name: "balance-scale", Cols: 5, Rows: 625, PaperFDs: 1,
			Generate: gen("balance-scale", 5, 625, profile{seed: 12, domainLo: 3, domainHi: 6, noise: 0.5})},
		{Name: "chess", Cols: 7, Rows: 28056, PaperFDs: 1,
			Generate: gen("chess", 7, 28056, profile{seed: 13, domainLo: 2, domainHi: 18, noise: 0.6})},
		{Name: "abalone", Cols: 9, Rows: 4177, PaperFDs: 137,
			Generate: gen("abalone", 9, 4177, profile{seed: 14, derivedFrac: 0.35, domainLo: 3, domainHi: 900, noise: 0.25})},
		{Name: "nursery", Cols: 9, Rows: 12960, PaperFDs: 1,
			Generate: gen("nursery", 9, 12960, profile{seed: 15, domainLo: 2, domainHi: 5, noise: 0.5})},
		{Name: "breast-cancer", Cols: 11, Rows: 699, PaperFDs: 46,
			Generate: gen("breast-cancer", 11, 699, profile{seed: 16, keyCols: 1, derivedFrac: 0.25, domainLo: 2, domainHi: 11, noise: 0.35})},
		{Name: "bridges", Cols: 13, Rows: 108, PaperFDs: 142,
			Generate: gen("bridges", 13, 108, profile{seed: 17, keyCols: 1, derivedFrac: 0.3, hierFrac: 0.3, domainLo: 2, domainHi: 40, noise: 0.25, nullRate: 0.04})},
		{Name: "echocardiogram", Cols: 13, Rows: 132, PaperFDs: 527,
			Generate: gen("echocardiogram", 13, 132, profile{seed: 18, derivedFrac: 0.45, domainLo: 3, domainHi: 60, noise: 0.06, nullRate: 0.05})},
		{Name: "adult", Cols: 14, Rows: 48842, PaperFDs: 78,
			Generate: gen("adult", 14, 48842, profile{seed: 19, derivedFrac: 0.2, hierFrac: 0.3, domainLo: 2, domainHi: 90, noise: 0.3, zipf: true})},
		{Name: "letter", Cols: 17, Rows: 20000, PaperFDs: 61,
			Generate: gen("letter", 17, 20000, profile{seed: 20, domainLo: 8, domainHi: 16, noise: 0.4})},
		{Name: "ncvoter", Cols: 19, Rows: 1000, PaperFDs: 758,
			Generate: gen("ncvoter", 19, 1000, profile{seed: 101, keyCols: 1, derivedFrac: 0.9, hierFrac: 0.9, domainLo: 25, domainHi: 1000, nullRate: 0.03, zipf: true})},
		{Name: "hepatitis", Cols: 20, Rows: 155, PaperFDs: 8250,
			Generate: gen("hepatitis", 20, 155, profile{seed: 102, derivedFrac: 0.8, hierFrac: 0.7, domainLo: 4, domainHi: 40, noise: 0.02, nullRate: 0.06})},
		{Name: "horse", Cols: 27, Rows: 368, PaperFDs: 128727,
			Generate: gen("horse", 27, 368, profile{seed: 102, derivedFrac: 0.75, hierFrac: 0.7, domainLo: 4, domainHi: 80, noise: 0.02, nullRate: 0.08})},
		{Name: "fd-reduced-30", Cols: 30, Rows: 250000, PaperFDs: 89571,
			Generate: func(scale float64) *relation.Relation {
				rel := FDReduced(scaled(250000, scale), 30, 0, 24)
				rel.Name = "fd-reduced-30"
				return rel
			}},
		{Name: "plista", Cols: 63, Rows: 1000, PaperFDs: 178152,
			Generate: gen("plista", 63, 1000, profile{seed: 100, keyCols: 1, derivedFrac: 0.45, domainLo: 30000, domainHi: 100000, lowCardCols: 6, nullRate: 0.03})},
		{Name: "flight", Cols: 109, Rows: 1000, PaperFDs: 982631,
			Generate: gen("flight", 109, 1000, profile{seed: 100, keyCols: 1, derivedFrac: 0.5, domainLo: 30000, domainHi: 100000, lowCardCols: 8, nullRate: 0.03})},
		{Name: "uniprot", Cols: 223, Rows: 1000, PaperFDs: -1, // > 2.4 M, truncated in the paper
			Generate: gen("uniprot", 223, 1000, profile{seed: 100, keyCols: 1, derivedFrac: 0.5, domainLo: 30000, domainHi: 100000, lowCardCols: 5, nullRate: 0.03})},
	}
	return ds
}

// Large returns the Table 2 datasets (the ones "never analyzed for FDs
// before"), with paper dimensions; generated at a scale in (0,1].
func Large() []Dataset {
	return []Dataset{
		{Name: "TPC-H.lineitem", Cols: 16, Rows: 6_000_000, PaperFDs: 4000,
			Generate: gen("TPC-H.lineitem", 16, 6_000_000, profile{seed: 31, keyCols: 1, derivedFrac: 0.4, domainLo: 20000, domainHi: 80000, lowCardCols: 5})},
		{Name: "PDB.POLY_SEQ", Cols: 13, Rows: 17_000_000, PaperFDs: 68,
			Generate: gen("PDB.POLY_SEQ", 13, 17_000_000, profile{seed: 32, keyCols: 1, derivedFrac: 0.5, domainLo: 20000, domainHi: 80000, lowCardCols: 3})},
		{Name: "PDB.ATOM_SITE", Cols: 31, Rows: 27_000_000, PaperFDs: 10000,
			Generate: gen("PDB.ATOM_SITE", 31, 27_000_000, profile{seed: 33, keyCols: 1, derivedFrac: 0.45, domainLo: 20000, domainHi: 80000, lowCardCols: 3})},
		{Name: "SAP_R3.ZBC00DT", Cols: 35, Rows: 3_000_000, PaperFDs: 211,
			Generate: gen("SAP_R3.ZBC00DT", 35, 3_000_000, profile{seed: 34, keyCols: 1, derivedFrac: 0.5, domainLo: 20000, domainHi: 80000, lowCardCols: 4, nullRate: 0.03})},
		{Name: "SAP_R3.ILOA", Cols: 48, Rows: 45_000_000, PaperFDs: 16000,
			Generate: gen("SAP_R3.ILOA", 48, 45_000_000, profile{seed: 35, keyCols: 1, derivedFrac: 0.5, domainLo: 20000, domainHi: 80000, lowCardCols: 3, nullRate: 0.03})},
		{Name: "SAP_R3.CE4HI01", Cols: 65, Rows: 2_000_000, PaperFDs: 2000,
			Generate: gen("SAP_R3.CE4HI01", 65, 2_000_000, profile{seed: 36, keyCols: 1, derivedFrac: 0.5, domainLo: 20000, domainHi: 80000, lowCardCols: 3, nullRate: 0.03})},
		{Name: "NCVoter.statewide", Cols: 71, Rows: 1_000_000, PaperFDs: 5_000_000,
			Generate: gen("NCVoter.statewide", 71, 1_000_000, profile{seed: 37, keyCols: 1, derivedFrac: 0.45, domainLo: 30000, domainHi: 100000, lowCardCols: 4, nullRate: 0.03})},
		{Name: "CD.cd", Cols: 107, Rows: 10_000, PaperFDs: 36000,
			Generate: gen("CD.cd", 107, 10_000, profile{seed: 38, keyCols: 1, derivedFrac: 0.5, domainLo: 30000, domainHi: 100000, lowCardCols: 2, nullRate: 0.03})},
	}
}

// ByName returns the named dataset analog from Catalog() or Large().
func ByName(name string) (Dataset, error) {
	for _, d := range append(Catalog(), Large()...) {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("datasets: unknown dataset %q (known: %v)", name, Names())
}

// Names lists all catalog dataset names.
func Names() []string {
	var names []string
	for _, d := range append(Catalog(), Large()...) {
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return names
}

// GenProfile exposes the profile knobs for tuning experiments (used by the
// internal fdscan tool and tests).
func GenProfile(rows, cols int, seed int64, keyCols int, derivedFrac, hierFrac, noise, nullRate float64, domainLo, domainHi, lowCardCols int) *relation.Relation {
	p := profile{
		rows: rows, cols: cols, seed: seed, keyCols: keyCols,
		derivedFrac: derivedFrac, hierFrac: hierFrac, noise: noise,
		nullRate: nullRate, domainLo: domainLo, domainHi: domainHi,
		lowCardCols: lowCardCols,
	}
	return Generate(p.build(fmt.Sprintf("profile-%d", seed)))
}
