// Package datasets provides seeded, synthetic stand-ins for the evaluation
// datasets of the HyFD paper. The real files (UCI classics, ncvoter,
// uniprot, plista, flight, SAP R3, ...) are not redistributable, so each
// analog reproduces the structural features FD discovery is sensitive to —
// column count, row count, per-column distinct-value profile, embedded
// functional dependencies (key columns, derived columns, hierarchies) and
// controlled noise that pushes minimal FDs to higher lattice levels. The
// substitution rationale is documented in DESIGN.md §3.
package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"hyfd/internal/relation"
)

// ColumnKind describes how a generated column's values are produced.
type ColumnKind int

const (
	// Key columns hold a unique value per record.
	Key ColumnKind = iota
	// Categorical columns draw i.i.d. values from a fixed-size domain
	// (optionally Zipf-skewed, as real categorical data usually is).
	Categorical
	// Derived columns are a function of one earlier column, creating the
	// FD src → this; an optional noise rate breaks the FD into minimal
	// FDs at higher lattice levels.
	Derived
	// Hierarchy columns coarsen an earlier column (each source value maps
	// to one of fewer buckets), the zip→city pattern: src → this holds
	// and this → src does not.
	Hierarchy
	// Constant columns hold a single value (∅ → col).
	Constant
)

// Column specifies one generated column.
type Column struct {
	Kind ColumnKind
	// Domain is the number of distinct values (Categorical) or buckets
	// (Derived/Hierarchy).
	Domain int
	// Src is the source column index for Derived/Hierarchy columns; it
	// must be smaller than this column's index.
	Src int
	// Noise is the probability that a Derived/Hierarchy cell ignores its
	// source and draws uniformly from the domain, breaking the clean FD.
	Noise float64
	// Zipf skews Categorical draws towards small values.
	Zipf bool
	// NullRate is the probability a cell is replaced by Null.
	NullRate float64
}

// Config describes a synthetic dataset.
type Config struct {
	Name    string
	Rows    int
	Seed    int64
	Columns []Column
}

// Generate materializes the configured relation deterministically from the
// seed.
func Generate(cfg Config) *relation.Relation {
	rng := rand.New(rand.NewSource(cfg.Seed))
	names := make([]string, len(cfg.Columns))
	for i := range names {
		names[i] = fmt.Sprintf("c%02d", i)
	}
	rel := relation.New(cfg.Name, names)

	var zipfs []*rand.Zipf
	for i, col := range cfg.Columns {
		if col.Kind == Categorical && col.Zipf && col.Domain > 1 {
			z := rand.NewZipf(rng, 1.3, 1.0, uint64(col.Domain-1))
			for len(zipfs) <= i {
				zipfs = append(zipfs, nil)
			}
			zipfs[i] = z
		}
	}

	// salts decorrelate derived columns sharing a source.
	salts := make([]int, len(cfg.Columns))
	for i := range salts {
		salts[i] = rng.Intn(1 << 30)
	}

	raw := make([][]int, cfg.Rows) // integer cell values before stringification
	for r := 0; r < cfg.Rows; r++ {
		row := make([]int, len(cfg.Columns))
		for c, col := range cfg.Columns {
			switch col.Kind {
			case Key:
				row[c] = r
			case Constant:
				row[c] = 0
			case Categorical:
				if col.Domain <= 1 {
					row[c] = 0
				} else if col.Zipf {
					row[c] = int(zipfs[c].Uint64())
				} else {
					row[c] = rng.Intn(col.Domain)
				}
			case Derived, Hierarchy:
				if col.Noise > 0 && rng.Float64() < col.Noise {
					row[c] = rng.Intn(max(col.Domain, 2))
				} else {
					src := row[col.Src]
					row[c] = mix(src, salts[c]) % max(col.Domain, 1)
				}
			}
		}
		raw[r] = row
	}
	for r := 0; r < cfg.Rows; r++ {
		row := make([]string, len(cfg.Columns))
		for c, col := range cfg.Columns {
			if col.NullRate > 0 && rng.Float64() < col.NullRate {
				row[c] = relation.Null
				continue
			}
			row[c] = fmt.Sprintf("v%d", raw[r][c])
		}
		rel.AppendRow(row)
	}
	return rel
}

// mix is a cheap deterministic integer hash.
func mix(v, salt int) int {
	x := uint64(v)*0x9E3779B97F4A7C15 + uint64(salt)
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	if x == 0 {
		return 0
	}
	return int(x & 0x7FFFFFFF)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FDReduced mimics the fd-reduced-30 generator of the comparison study
// [Papenbrock et al., PVLDB 2015]: every column draws uniformly from a
// domain sized so that almost all minimal FDs materialize on lattice level
// three — the regime in which bottom-up lattice algorithms beat everything
// else (§10.4). domain <= 0 picks ⌈(40·rows)^(1/3)⌉ to reproduce that
// level-3 concentration at any scale.
func FDReduced(rows, cols int, domain int, seed int64) *relation.Relation {
	if domain <= 0 {
		domain = int(math.Ceil(math.Cbrt(float64(40 * rows))))
		if domain < 2 {
			domain = 2
		}
	}
	columns := make([]Column, cols)
	for i := range columns {
		columns[i] = Column{Kind: Categorical, Domain: domain}
	}
	return Generate(Config{
		Name:    fmt.Sprintf("fd-reduced-%d", cols),
		Rows:    rows,
		Seed:    seed,
		Columns: columns,
	})
}
