package datasets

import (
	"context"
	"testing"

	"hyfd/internal/core"
	"hyfd/internal/pli"
	"hyfd/internal/relation"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{
		Name: "d", Rows: 50, Seed: 7,
		Columns: []Column{
			{Kind: Key},
			{Kind: Categorical, Domain: 5},
			{Kind: Derived, Src: 1, Domain: 3},
		},
	}
	a, b := Generate(cfg), Generate(cfg)
	if a.NumRows() != 50 || a.NumCols() != 3 {
		t.Fatalf("dims %dx%d", a.NumRows(), a.NumCols())
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("nondeterministic cell (%d,%d)", i, j)
			}
		}
	}
}

func TestColumnKindsBehave(t *testing.T) {
	cfg := Config{
		Name: "kinds", Rows: 200, Seed: 3,
		Columns: []Column{
			{Kind: Key},
			{Kind: Constant},
			{Kind: Categorical, Domain: 4},
			{Kind: Derived, Src: 2, Domain: 2},           // clean FD c2 → c3
			{Kind: Hierarchy, Src: 0, Domain: 5},         // clean FD c0 → c4
			{Kind: Derived, Src: 2, Domain: 2, Noise: 1}, // fully noisy: no FD expected
		},
	}
	rel := Generate(cfg)
	if err := rel.Validate(); err != nil {
		t.Fatal(err)
	}
	plis := pli.BuildAll(rel, relation.NullEqualsNull)
	if !plis[0].IsUnique() {
		t.Fatal("key column not unique")
	}
	if !plis[1].IsConstant() {
		t.Fatal("constant column not constant")
	}
	if plis[2].NumClusters > 4 {
		t.Fatalf("categorical domain exceeded: %d", plis[2].NumClusters)
	}
	// Derived: same c2 value ⇒ same c3 value.
	seen := map[string]string{}
	for _, row := range rel.Rows {
		if prev, ok := seen[row[2]]; ok && prev != row[3] {
			t.Fatal("clean derived column violates its FD")
		}
		seen[row[2]] = row[3]
	}
}

func TestNullRate(t *testing.T) {
	cfg := Config{
		Name: "nulls", Rows: 500, Seed: 9,
		Columns: []Column{{Kind: Categorical, Domain: 4, NullRate: 0.5}},
	}
	rel := Generate(cfg)
	nulls := 0
	for _, row := range rel.Rows {
		if row[0] == relation.Null {
			nulls++
		}
	}
	if nulls < 150 || nulls > 350 {
		t.Fatalf("null count %d far from expected ~250", nulls)
	}
}

func TestFDReducedConcentratesLowLevels(t *testing.T) {
	rel := FDReduced(2000, 8, 0, 1)
	fds, _, err := core.Discover(context.Background(), rel, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if fds.Size() == 0 {
		t.Fatal("fd-reduced analog has no FDs")
	}
	// The signature property: FDs concentrate on low lattice levels
	// (level ≈ 3 at paper scale); nothing deep.
	histogram := map[int]int{}
	maxLhs := 0
	for _, f := range fds.All() {
		c := f.Lhs.Cardinality()
		histogram[c]++
		if c > maxLhs {
			maxLhs = c
		}
	}
	if maxLhs > 5 {
		t.Fatalf("fd-reduced FDs reach level %d; histogram %v", maxLhs, histogram)
	}
}

func TestCatalogDatasets(t *testing.T) {
	cat := Catalog()
	if len(cat) != 17 {
		t.Fatalf("catalog has %d datasets, want 17 (Table 1)", len(cat))
	}
	for _, d := range cat {
		// Generate at tiny scale and validate structure.
		scale := 0.05
		if d.Rows <= 1000 {
			scale = 1.0
		}
		rel := d.Generate(scale)
		if err := rel.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if rel.NumCols() != d.Cols {
			t.Fatalf("%s: cols %d, want %d", d.Name, rel.NumCols(), d.Cols)
		}
		if rel.Name != d.Name {
			t.Fatalf("%s: relation named %q", d.Name, rel.Name)
		}
	}
}

func TestLargeDatasetsScaleDown(t *testing.T) {
	for _, d := range Large() {
		rel := d.Generate(0.0001)
		if err := rel.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if rel.NumCols() != d.Cols {
			t.Fatalf("%s: cols %d, want %d", d.Name, rel.NumCols(), d.Cols)
		}
		if rel.NumRows() == 0 {
			t.Fatalf("%s: no rows at small scale", d.Name)
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("ncvoter")
	if err != nil || d.Cols != 19 {
		t.Fatalf("ByName(ncvoter) = %+v, %v", d, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if len(Names()) != 25 {
		t.Fatalf("Names() = %d entries", len(Names()))
	}
}

// TestNCVoterAnalogHasRichFDStructure sanity-checks that the mid-size
// analogs actually produce hundreds of FDs like their originals.
func TestNCVoterAnalogHasRichFDStructure(t *testing.T) {
	d, _ := ByName("ncvoter")
	rel := d.Generate(1.0)
	fds, _, err := core.Discover(context.Background(), rel, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if fds.Size() < 100 {
		t.Fatalf("ncvoter analog has only %d FDs; analog too weak", fds.Size())
	}
}
