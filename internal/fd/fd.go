// Package fd defines the functional dependency model shared by all discovery
// algorithms: the FD value type, canonical FD sets, minimization, and a
// brute-force reference discoverer used to cross-validate every algorithm in
// the test suite.
package fd

import (
	"fmt"
	"sort"
	"strings"

	"hyfd/internal/bitset"
	"hyfd/internal/relation"
)

// FD is a functional dependency Lhs → Rhs over a fixed attribute universe.
// Rhs is a single attribute index; X → YZ is represented as two FDs.
type FD struct {
	Lhs bitset.Set
	Rhs int
}

// String renders the FD using attribute indices, e.g. "{0,2} -> 1".
func (f FD) String() string {
	return fmt.Sprintf("%s -> %d", f.Lhs.String(), f.Rhs)
}

// Format renders the FD using the relation's column names.
func (f FD) Format(rel *relation.Relation) string {
	names := make([]string, 0, f.Lhs.Cardinality())
	f.Lhs.ForEach(func(i int) bool {
		names = append(names, rel.Columns[i])
		return true
	})
	return fmt.Sprintf("[%s] -> %s", strings.Join(names, ","), rel.Columns[f.Rhs])
}

// key identifies an FD uniquely within one universe.
func (f FD) key() string {
	return f.Lhs.Key() + "\x00" + fmt.Sprint(f.Rhs)
}

// Set is a collection of distinct FDs over one attribute universe.
type Set struct {
	fds  []FD
	seen map[string]struct{}
	n    int // universe size
}

// NewSet returns an empty FD set over a universe of n attributes.
func NewSet(n int) *Set {
	return &Set{seen: make(map[string]struct{}), n: n}
}

// Universe returns the attribute universe size.
func (s *Set) Universe() int { return s.n }

// Add inserts the FD if not already present; it reports whether it was new.
func (s *Set) Add(f FD) bool {
	k := f.key()
	if _, dup := s.seen[k]; dup {
		return false
	}
	s.seen[k] = struct{}{}
	s.fds = append(s.fds, f)
	return true
}

// Contains reports whether the exact FD is in the set.
func (s *Set) Contains(f FD) bool {
	_, ok := s.seen[f.key()]
	return ok
}

// Size returns the number of FDs.
func (s *Set) Size() int { return len(s.fds) }

// All returns the FDs in canonical order: ascending by RHS, then ascending
// LHS cardinality, then lexicographic LHS. The returned slice is fresh.
func (s *Set) All() []FD {
	out := append([]FD(nil), s.fds...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rhs != out[j].Rhs {
			return out[i].Rhs < out[j].Rhs
		}
		ci, cj := out[i].Lhs.Cardinality(), out[j].Lhs.Cardinality()
		if ci != cj {
			return ci < cj
		}
		return out[i].Lhs.Key() < out[j].Lhs.Key()
	})
	return out
}

// Equal reports whether both sets contain exactly the same FDs.
func (s *Set) Equal(t *Set) bool {
	if s.Size() != t.Size() {
		return false
	}
	for k := range s.seen {
		if _, ok := t.seen[k]; !ok {
			return false
		}
	}
	return true
}

// Diff returns FDs present in s but not in t, in canonical order.
func (s *Set) Diff(t *Set) []FD {
	var out []FD
	for _, f := range s.All() {
		if !t.Contains(f) {
			out = append(out, f)
		}
	}
	return out
}

// Minimize returns the subset of s whose FDs have no valid generalization
// inside s: f is dropped iff some g in s has g.Rhs == f.Rhs and
// g.Lhs ⊂ f.Lhs.
func (s *Set) Minimize() *Set {
	byRhs := make(map[int][]FD)
	for _, f := range s.fds {
		byRhs[f.Rhs] = append(byRhs[f.Rhs], f)
	}
	out := NewSet(s.n)
	for _, group := range byRhs {
		sort.Slice(group, func(i, j int) bool {
			return group[i].Lhs.Cardinality() < group[j].Lhs.Cardinality()
		})
		var kept []FD
		for _, f := range group {
			minimal := true
			for _, g := range kept {
				if g.Lhs.IsProperSubsetOf(f.Lhs) {
					minimal = false
					break
				}
			}
			if minimal {
				kept = append(kept, f)
				out.Add(f)
			}
		}
	}
	return out
}

// String renders the set in canonical order, one FD per line.
func (s *Set) String() string {
	var sb strings.Builder
	for _, f := range s.All() {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
