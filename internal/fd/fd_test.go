package fd

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"hyfd/internal/bitset"
	"hyfd/internal/relation"
)

func classRelation() *relation.Relation {
	r := relation.New("class", []string{"Teacher", "Subject", "Room"})
	r.AppendRow([]string{"Brown", "Math", "R1"})
	r.AppendRow([]string{"Walker", "Math", "R2"})
	r.AppendRow([]string{"Brown", "English", "R1"})
	r.AppendRow([]string{"Miller", "English", "R3"})
	r.AppendRow([]string{"Brown", "Math", "R1"})
	return r
}

func TestHolds(t *testing.T) {
	rel := classRelation()
	// Teacher -> Room holds (Brown→R1 always, others unique).
	if !Holds(rel, relation.NullEqualsNull, bitset.FromIndices(3, 0), 2) {
		t.Fatal("Teacher -> Room should hold")
	}
	// Teacher -> Subject does not hold (Brown teaches Math and English).
	if Holds(rel, relation.NullEqualsNull, bitset.FromIndices(3, 0), 1) {
		t.Fatal("Teacher -> Subject should not hold")
	}
	// {Teacher,Subject} -> Room holds.
	if !Holds(rel, relation.NullEqualsNull, bitset.FromIndices(3, 0, 1), 2) {
		t.Fatal("{Teacher,Subject} -> Room should hold")
	}
	// Empty LHS: only if RHS constant.
	if Holds(rel, relation.NullEqualsNull, bitset.New(3), 0) {
		t.Fatal("∅ -> Teacher should not hold")
	}
}

func TestHoldsNullSemantics(t *testing.T) {
	rel := relation.New("r", []string{"A", "B"})
	rel.AppendRow([]string{relation.Null, "1"})
	rel.AppendRow([]string{relation.Null, "2"})
	// Under null=null the two rows agree on A but differ in B: invalid.
	if Holds(rel, relation.NullEqualsNull, bitset.FromIndices(2, 0), 1) {
		t.Fatal("A -> B should be violated under null=null")
	}
	// Under null≠null the rows never agree on A: valid.
	if !Holds(rel, relation.NullNotEqualsNull, bitset.FromIndices(2, 0), 1) {
		t.Fatal("A -> B should hold under null!=null")
	}
	// RHS nulls under null≠null: two equal LHS values, both B null.
	rel2 := relation.New("r2", []string{"A", "B"})
	rel2.AppendRow([]string{"x", relation.Null})
	rel2.AppendRow([]string{"x", relation.Null})
	if !Holds(rel2, relation.NullEqualsNull, bitset.FromIndices(2, 0), 1) {
		t.Fatal("A -> B should hold under null=null")
	}
	if Holds(rel2, relation.NullNotEqualsNull, bitset.FromIndices(2, 0), 1) {
		t.Fatal("A -> B should be violated under null!=null (⊥≠⊥ on RHS)")
	}
}

func TestSetAddContainsEqual(t *testing.T) {
	s := NewSet(4)
	f1 := FD{Lhs: bitset.FromIndices(4, 0), Rhs: 1}
	f2 := FD{Lhs: bitset.FromIndices(4, 0, 2), Rhs: 3}
	if !s.Add(f1) || !s.Add(f2) {
		t.Fatal("fresh adds should report true")
	}
	if s.Add(f1) {
		t.Fatal("duplicate add should report false")
	}
	if s.Size() != 2 || !s.Contains(f1) || s.Contains(FD{Lhs: bitset.FromIndices(4, 1), Rhs: 0}) {
		t.Fatal("membership broken")
	}
	u := NewSet(4)
	u.Add(f2)
	u.Add(f1)
	if !s.Equal(u) {
		t.Fatal("order-independent equality broken")
	}
	u.Add(FD{Lhs: bitset.FromIndices(4, 3), Rhs: 0})
	if s.Equal(u) {
		t.Fatal("unequal sets reported equal")
	}
	if d := u.Diff(s); len(d) != 1 || d[0].Rhs != 0 {
		t.Fatalf("Diff = %v", d)
	}
}

func TestAllCanonicalOrder(t *testing.T) {
	s := NewSet(4)
	s.Add(FD{Lhs: bitset.FromIndices(4, 1, 2), Rhs: 0})
	s.Add(FD{Lhs: bitset.FromIndices(4, 3), Rhs: 0})
	s.Add(FD{Lhs: bitset.FromIndices(4, 0), Rhs: 1})
	all := s.All()
	if all[0].Rhs != 0 || all[0].Lhs.Cardinality() != 1 {
		t.Fatalf("canonical order broken: %v", all)
	}
	if all[1].Rhs != 0 || all[1].Lhs.Cardinality() != 2 {
		t.Fatalf("canonical order broken: %v", all)
	}
	if all[2].Rhs != 1 {
		t.Fatalf("canonical order broken: %v", all)
	}
}

func TestMinimize(t *testing.T) {
	s := NewSet(4)
	s.Add(FD{Lhs: bitset.FromIndices(4, 0), Rhs: 1})
	s.Add(FD{Lhs: bitset.FromIndices(4, 0, 2), Rhs: 1}) // generalized by the first
	s.Add(FD{Lhs: bitset.FromIndices(4, 2, 3), Rhs: 1}) // incomparable, kept
	s.Add(FD{Lhs: bitset.FromIndices(4, 0), Rhs: 2})
	m := s.Minimize()
	if m.Size() != 3 {
		t.Fatalf("Minimize size = %d, want 3: %v", m.Size(), m)
	}
	if m.Contains(FD{Lhs: bitset.FromIndices(4, 0, 2), Rhs: 1}) {
		t.Fatal("non-minimal FD survived")
	}
}

func TestBruteForceClassExample(t *testing.T) {
	rel := classRelation()
	fds := BruteForce(rel, relation.NullEqualsNull)
	// Spot checks: Teacher -> Room minimal; Room -> Teacher holds
	// (R1→Brown, R2→Walker, R3→Miller).
	if !fds.Contains(FD{Lhs: bitset.FromIndices(3, 0), Rhs: 2}) {
		t.Fatalf("missing Teacher->Room:\n%s", fds)
	}
	if !fds.Contains(FD{Lhs: bitset.FromIndices(3, 2), Rhs: 0}) {
		t.Fatalf("missing Room->Teacher:\n%s", fds)
	}
	// Non-minimal {Teacher,Subject}->Room must be absent.
	if fds.Contains(FD{Lhs: bitset.FromIndices(3, 0, 1), Rhs: 2}) {
		t.Fatal("non-minimal FD in brute-force result")
	}
	// Every result must be valid and minimal.
	assertValidMinimal(t, rel, relation.NullEqualsNull, fds)
}

// assertValidMinimal checks that every FD in the set holds, is non-trivial,
// and has no valid generalization.
func assertValidMinimal(t *testing.T, rel *relation.Relation, ns relation.NullSemantics, fds *Set) {
	t.Helper()
	for _, f := range fds.All() {
		if f.Lhs.Test(f.Rhs) {
			t.Fatalf("trivial FD %v", f)
		}
		if !Holds(rel, ns, f.Lhs, f.Rhs) {
			t.Fatalf("invalid FD %v", f)
		}
		f.Lhs.ForEach(func(a int) bool {
			if Holds(rel, ns, f.Lhs.Without(a), f.Rhs) {
				t.Fatalf("non-minimal FD %v (drop %d)", f, a)
			}
			return true
		})
	}
}

func TestBruteForceConstantColumn(t *testing.T) {
	rel := relation.New("r", []string{"A", "B"})
	rel.AppendRow([]string{"c", "1"})
	rel.AppendRow([]string{"c", "2"})
	fds := BruteForce(rel, relation.NullEqualsNull)
	// ∅ -> A because A is constant; B -> A is then non-minimal.
	if !fds.Contains(FD{Lhs: bitset.New(2), Rhs: 0}) {
		t.Fatalf("missing ∅->A:\n%s", fds)
	}
	if fds.Contains(FD{Lhs: bitset.FromIndices(2, 1), Rhs: 0}) {
		t.Fatal("non-minimal B->A present")
	}
}

func TestBruteForceEdgeRelations(t *testing.T) {
	// Single row: every ∅ -> A holds.
	one := relation.New("one", []string{"A", "B"})
	one.AppendRow([]string{"x", "y"})
	fds := BruteForce(one, relation.NullEqualsNull)
	if fds.Size() != 2 {
		t.Fatalf("single-row FDs = %d, want 2:\n%s", fds.Size(), fds)
	}
	// Empty relation (no rows): all ∅ -> A hold vacuously.
	empty := relation.New("empty", []string{"A", "B", "C"})
	fds = BruteForce(empty, relation.NullEqualsNull)
	if fds.Size() != 3 {
		t.Fatalf("empty-relation FDs = %d, want 3", fds.Size())
	}
	// Single column: no non-trivial FD candidates except ∅ -> A.
	single := relation.New("single", []string{"A"})
	single.AppendRow([]string{"x"})
	single.AppendRow([]string{"y"})
	fds = BruteForce(single, relation.NullEqualsNull)
	if fds.Size() != 0 {
		t.Fatalf("single-column FDs = %d, want 0:\n%s", fds.Size(), fds)
	}
}

// TestQuickBruteForceSound verifies validity+minimality of brute-force
// results on random relations; every other algorithm is later compared
// against BruteForce, so its own soundness matters.
func TestQuickBruteForceSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cols := 2 + r.Intn(4)
		rows := 1 + r.Intn(20)
		names := make([]string, cols)
		for i := range names {
			names[i] = "c" + strconv.Itoa(i)
		}
		rel := relation.New("rnd", names)
		for i := 0; i < rows; i++ {
			row := make([]string, cols)
			for j := range row {
				row[j] = strconv.Itoa(r.Intn(3))
			}
			rel.AppendRow(row)
		}
		fds := BruteForce(rel, relation.NullEqualsNull)
		for _, f := range fds.All() {
			if f.Lhs.Test(f.Rhs) || !Holds(rel, relation.NullEqualsNull, f.Lhs, f.Rhs) {
				return false
			}
			ok := true
			f.Lhs.ForEach(func(a int) bool {
				if Holds(rel, relation.NullEqualsNull, f.Lhs.Without(a), f.Rhs) {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
