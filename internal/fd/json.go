package fd

import (
	"encoding/json"
	"fmt"
	"io"

	"hyfd/internal/bitset"
	"hyfd/internal/relation"
)

// jsonFD is the serialized form of one FD, resembling the result format of
// the Metanome profiling platform the paper's implementations target:
// determinant column names plus the dependent column name.
type jsonFD struct {
	Determinant []string `json:"determinant"`
	Dependant   string   `json:"dependant"`
}

// WriteJSON serializes the set in canonical order as a JSON array of
// {determinant, dependant} objects using the relation's column names.
func (s *Set) WriteJSON(w io.Writer, rel *relation.Relation) error {
	out := make([]jsonFD, 0, s.Size())
	for _, f := range s.All() {
		det := make([]string, 0, f.Lhs.Cardinality())
		f.Lhs.ForEach(func(a int) bool {
			det = append(det, rel.Columns[a])
			return true
		})
		out = append(out, jsonFD{Determinant: det, Dependant: rel.Columns[f.Rhs]})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a JSON FD listing produced by WriteJSON back into a Set,
// resolving column names against the relation's schema.
func ReadJSON(r io.Reader, rel *relation.Relation) (*Set, error) {
	var in []jsonFD
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	colIdx := make(map[string]int, rel.NumCols())
	for i, c := range rel.Columns {
		colIdx[c] = i
	}
	out := NewSet(rel.NumCols())
	for _, jf := range in {
		lhs := bitset.New(rel.NumCols())
		for _, name := range jf.Determinant {
			a, ok := colIdx[name]
			if !ok {
				return nil, fmt.Errorf("fd: unknown determinant column %q in relation %q", name, rel.Name)
			}
			lhs.Set(a)
		}
		rhs, ok := colIdx[jf.Dependant]
		if !ok {
			return nil, fmt.Errorf("fd: unknown dependant column %q in relation %q", jf.Dependant, rel.Name)
		}
		out.Add(FD{Lhs: lhs, Rhs: rhs})
	}
	return out, nil
}
