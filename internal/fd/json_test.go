package fd

import (
	"bytes"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"hyfd/internal/bitset"
	"hyfd/internal/relation"
)

func TestJSONRoundTrip(t *testing.T) {
	rel := relation.New("t", []string{"A", "B", "C"})
	s := NewSet(3)
	s.Add(FD{Lhs: bitset.New(3), Rhs: 0})
	s.Add(FD{Lhs: bitset.FromIndices(3, 0, 2), Rhs: 1})
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf, rel); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"dependant": "B"`) {
		t.Fatalf("unexpected JSON:\n%s", buf.String())
	}
	back, err := ReadJSON(&buf, rel)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Fatalf("roundtrip mismatch:\n%s\nvs\n%s", back, s)
	}
}

func TestJSONQuickRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(5)
		cols := make([]string, n)
		for i := range cols {
			cols[i] = "col" + strconv.Itoa(i)
		}
		rel := relation.New("t", cols)
		s := NewSet(n)
		for k := 0; k < r.Intn(10); k++ {
			lhs := bitset.New(n)
			for a := 0; a < n; a++ {
				if r.Intn(3) == 0 {
					lhs.Set(a)
				}
			}
			rhs := r.Intn(n)
			if lhs.Test(rhs) {
				continue
			}
			s.Add(FD{Lhs: lhs, Rhs: rhs})
		}
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf, rel); err != nil {
			t.Fatal(err)
		}
		back, err := ReadJSON(&buf, rel)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(s) {
			t.Fatalf("trial %d roundtrip mismatch", trial)
		}
	}
}

func TestJSONErrors(t *testing.T) {
	rel := relation.New("t", []string{"A"})
	if _, err := ReadJSON(strings.NewReader("not json"), rel); err == nil {
		t.Fatal("invalid JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`[{"determinant":["X"],"dependant":"A"}]`), rel); err == nil {
		t.Fatal("unknown determinant accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`[{"determinant":[],"dependant":"X"}]`), rel); err == nil {
		t.Fatal("unknown dependant accepted")
	}
}
