package fd

import (
	"strings"

	"hyfd/internal/bitset"
	"hyfd/internal/relation"
)

// Holds checks the FD lhs → rhs directly against the relation by grouping
// records on their LHS values, honoring the null semantics. It is the
// definitional O(n·|lhs|) check; discovery algorithms use PLIs instead, and
// the test suite uses Holds as ground truth.
func Holds(rel *relation.Relation, ns relation.NullSemantics, lhs bitset.Set, rhs int) bool {
	attrs := lhs.Indices()
	groups := make(map[string]string, len(rel.Rows))
	var key strings.Builder
	for _, row := range rel.Rows {
		key.Reset()
		skip := false
		for _, a := range attrs {
			v := row[a]
			if v == relation.Null && ns == relation.NullNotEqualsNull {
				// A null LHS cell makes the record unique on the LHS under
				// null≠null; it can never collide with another record.
				skip = true
				break
			}
			key.WriteString(v)
			key.WriteByte('\x01')
		}
		if skip {
			continue
		}
		rv := row[rhs]
		if prev, ok := groups[key.String()]; ok {
			if prev != rv {
				return false
			}
			if rv == relation.Null && ns == relation.NullNotEqualsNull {
				return false // two nulls disagree under null≠null
			}
		} else {
			groups[key.String()] = rv
		}
	}
	return true
}

// BruteForce discovers all minimal, non-trivial FDs of the relation by
// level-wise enumeration of the full candidate lattice, validating each
// candidate definitionally with Holds. Exponential in the column count —
// intended for cross-validating the real algorithms on small inputs only.
func BruteForce(rel *relation.Relation, ns relation.NullSemantics) *Set {
	m := rel.NumCols()
	out := NewSet(m)
	for rhs := 0; rhs < m; rhs++ {
		// found holds the minimal LHSs discovered so far for this RHS.
		var found []bitset.Set
		level := []bitset.Set{bitset.New(m)} // start with ∅
		for len(level) > 0 {
			var next []bitset.Set
			seen := make(map[string]struct{})
			for _, lhs := range level {
				// Skip candidates that specialize an already-found FD.
				minimal := true
				for _, g := range found {
					if g.IsSubsetOf(lhs) {
						minimal = false
						break
					}
				}
				if !minimal {
					continue
				}
				if Holds(rel, ns, lhs, rhs) {
					found = append(found, lhs)
					out.Add(FD{Lhs: lhs, Rhs: rhs})
					continue
				}
				// Invalid: specialize by each absent attribute ≠ rhs.
				for a := 0; a < m; a++ {
					if a == rhs || lhs.Test(a) {
						continue
					}
					sp := lhs.With(a)
					if _, dup := seen[sp.Key()]; dup {
						continue
					}
					seen[sp.Key()] = struct{}{}
					next = append(next, sp)
				}
			}
			level = next
		}
	}
	return out
}
