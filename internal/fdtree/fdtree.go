// Package fdtree implements the FDTree of Flach & Savnik as used by HyFD
// (§7, Fig. 4): a prefix tree that maps FD left-hand sides to nodes (paths
// follow ascending attribute order) and marks right-hand sides in per-node
// bitsets. It supports the generalization lookups that drive both the
// Inductor's specialization (Alg. 3) and the Validator's minimality pruning
// (Alg. 4), plus the max-LHS result pruning hook used by the memory
// Guardian (§9).
package fdtree

import (
	"hyfd/internal/bitset"
	"hyfd/internal/fd"
	"hyfd/internal/invariant"
)

type node struct {
	// children[a] descends to LHSs extending this node's path by attribute
	// a; nil until needed. Paths visit attributes in ascending order.
	//
	// Determinism audit: children is a dense slice indexed by attribute, so
	// every for-range over it below (isLeaf, recomputeRhsAttrs, Children,
	// collectLevel, prune, collectFDs, ...) visits attributes in ascending
	// order — traversal output is deterministic without sorting, and no map
	// iteration occurs anywhere in this package.
	children []*node
	// rhsFds marks attributes A such that path → A is an FD in the tree.
	rhsFds bitset.Set
	// rhsAttrs is a superset of all rhsFds bits in this subtree; it prunes
	// generalization lookups. It is maintained exactly on Add/Remove and
	// allowed to go stale (superset) when the Validator unmarks FDs in
	// place, which never affects lookup correctness.
	rhsAttrs bitset.Set
}

// Tree is an FDTree over a fixed attribute universe. The zero value is not
// usable; call New.
type Tree struct {
	numAttrs  int
	maxLhs    int // maximum LHS cardinality; results deeper than this are refused
	root      *node
	nodeCount int
}

// New returns an empty FDTree over numAttrs attributes with unbounded LHS
// size.
func New(numAttrs int) *Tree {
	t := &Tree{numAttrs: numAttrs, maxLhs: numAttrs}
	t.root = t.newNode()
	return t
}

func (t *Tree) newNode() *node {
	t.nodeCount++
	return &node{
		children: make([]*node, t.numAttrs),
		rhsFds:   bitset.New(t.numAttrs),
		rhsAttrs: bitset.New(t.numAttrs),
	}
}

// NumAttrs returns the attribute universe size.
func (t *Tree) NumAttrs() int { return t.numAttrs }

// NodeCount returns the number of allocated tree nodes (memory telemetry
// for the Guardian).
func (t *Tree) NodeCount() int { return t.nodeCount }

// MaxLhs returns the current LHS cardinality bound.
func (t *Tree) MaxLhs() int { return t.maxLhs }

// ApproxBytes estimates the tree's live heap footprint, the quantity the
// Guardian budgets against.
func (t *Tree) ApproxBytes() int {
	words := (t.numAttrs + 63) / 64
	perNode := 8*t.numAttrs + 2*8*words + 64 // child ptrs + two bitsets + header slack
	return t.nodeCount * perNode
}

// Add inserts lhs → rhs. It reports false if the FD was already present or
// exceeds the max LHS bound.
func (t *Tree) Add(lhs bitset.Set, rhs int) bool {
	if lhs.Cardinality() > t.maxLhs {
		return false
	}
	n := t.root
	n.rhsAttrs.Set(rhs)
	for a := lhs.NextSet(0); a >= 0; a = lhs.NextSet(a + 1) {
		c := n.children[a]
		if c == nil {
			c = t.newNode()
			n.children[a] = c
		}
		c.rhsAttrs.Set(rhs)
		n = c
	}
	if n.rhsFds.Test(rhs) {
		return false
	}
	n.rhsFds.Set(rhs)
	if invariant.Enabled {
		t.assertPathMarked(lhs, rhs)
	}
	return true
}

// AddRhss inserts lhs → A for every A in rhss (used to seed ∅ → R).
func (t *Tree) AddRhss(lhs bitset.Set, rhss bitset.Set) {
	rhss.ForEach(func(a int) bool {
		t.Add(lhs, a)
		return true
	})
}

// ContainsFd reports whether exactly lhs → rhs is in the tree.
func (t *Tree) ContainsFd(lhs bitset.Set, rhs int) bool {
	n := t.root
	for a := lhs.NextSet(0); a >= 0; a = lhs.NextSet(a + 1) {
		if n = n.children[a]; n == nil {
			return false
		}
	}
	return n.rhsFds.Test(rhs)
}

// FindFdOrGeneral reports whether the tree contains lhs' → rhs for some
// lhs' ⊆ lhs (including lhs itself).
func (t *Tree) FindFdOrGeneral(lhs bitset.Set, rhs int) bool {
	return t.findGeneral(t.root, lhs, rhs, 0)
}

func (t *Tree) findGeneral(n *node, lhs bitset.Set, rhs int, from int) bool {
	if n.rhsFds.Test(rhs) {
		return true
	}
	for a := lhs.NextSet(from); a >= 0; a = lhs.NextSet(a + 1) {
		c := n.children[a]
		if c != nil && c.rhsAttrs.Test(rhs) && t.findGeneral(c, lhs, rhs, a+1) {
			return true
		}
	}
	return false
}

// GetFdAndGenerals returns every lhs' ⊆ lhs with lhs' → rhs in the tree
// (Alg. 3 line 10: the FDs an observed non-FD invalidates).
func (t *Tree) GetFdAndGenerals(lhs bitset.Set, rhs int) []bitset.Set {
	var out []bitset.Set
	t.collectGenerals(t.root, lhs, rhs, 0, bitset.New(t.numAttrs), &out)
	return out
}

func (t *Tree) collectGenerals(n *node, lhs bitset.Set, rhs int, from int, path bitset.Set, out *[]bitset.Set) {
	if n.rhsFds.Test(rhs) {
		*out = append(*out, path.Clone())
	}
	for a := lhs.NextSet(from); a >= 0; a = lhs.NextSet(a + 1) {
		c := n.children[a]
		if c == nil || !c.rhsAttrs.Test(rhs) {
			continue
		}
		path.Set(a)
		t.collectGenerals(c, lhs, rhs, a+1, path, out)
		path.Clear(a)
	}
}

// Remove deletes exactly lhs → rhs, pruning nodes that no longer carry any
// FD and repairing the rhsAttrs summaries along the path. It reports
// whether the FD was present.
func (t *Tree) Remove(lhs bitset.Set, rhs int) bool {
	removed := t.remove(t.root, lhs, 0, rhs)
	if invariant.Enabled && removed {
		t.assertConsistent("Remove")
	}
	return removed
}

func (t *Tree) remove(n *node, lhs bitset.Set, from int, rhs int) bool {
	a := lhs.NextSet(from)
	if a < 0 {
		if !n.rhsFds.Test(rhs) {
			return false
		}
		n.rhsFds.Clear(rhs)
	} else {
		c := n.children[a]
		if c == nil || !t.remove(c, lhs, a+1, rhs) {
			return false
		}
		if c.rhsAttrs.IsEmpty() && c.isLeaf() {
			n.children[a] = nil
			t.nodeCount--
		}
	}
	t.recomputeRhsAttrs(n)
	return true
}

func (n *node) isLeaf() bool {
	for _, c := range n.children {
		if c != nil {
			return false
		}
	}
	return true
}

func (t *Tree) recomputeRhsAttrs(n *node) {
	acc := n.rhsFds.Clone()
	for _, c := range n.children {
		if c != nil {
			acc = acc.Or(c.rhsAttrs)
		}
	}
	n.rhsAttrs = acc
}

// Node is a handle to a tree node paired with the LHS its path encodes;
// the Validator traverses levels of these.
type Node struct {
	n   *node
	Lhs bitset.Set
}

// RhsFds returns a copy of the FD right-hand sides marked at this node.
func (nd Node) RhsFds() bitset.Set { return nd.n.rhsFds.Clone() }

// HasFds reports whether any FD ends at this node.
func (nd Node) HasFds() bool { return !nd.n.rhsFds.IsEmpty() }

// SetFds replaces the marked right-hand sides of this node with valid
// (Alg. 4 line 14). The subtree summaries stay as supersets, which keeps
// lookups correct.
func (nd Node) SetFds(valid bitset.Set) {
	nd.n.rhsFds = valid.Clone()
}

// Children returns handles to this node's children in ascending attribute
// order.
func (nd Node) Children() []Node {
	var out []Node
	for a, c := range nd.n.children {
		if c != nil {
			out = append(out, Node{n: c, Lhs: nd.Lhs.With(a)})
		}
	}
	return out
}

// GetLevel returns all nodes whose LHS has the given cardinality
// (Alg. 4's currentLevel initialization).
func (t *Tree) GetLevel(depth int) []Node {
	var out []Node
	t.collectLevel(t.root, bitset.New(t.numAttrs), 0, depth, &out)
	return out
}

func (t *Tree) collectLevel(n *node, path bitset.Set, d, depth int, out *[]Node) {
	if d == depth {
		*out = append(*out, Node{n: n, Lhs: path.Clone()})
		return
	}
	for a, c := range n.children {
		if c == nil {
			continue
		}
		path.Set(a)
		t.collectLevel(c, path, d+1, depth, out)
		path.Clear(a)
	}
}

// AddAndGetIfNew inserts lhs → rhs and returns a handle to its terminal
// node if the FD was newly added, or a zero Node with ok=false if it was
// already present or refused by the LHS bound (Alg. 4 line 31).
func (t *Tree) AddAndGetIfNew(lhs bitset.Set, rhs int) (Node, bool) {
	if lhs.Cardinality() > t.maxLhs {
		return Node{}, false
	}
	if !t.Add(lhs, rhs) {
		return Node{}, false
	}
	n := t.root
	for a := lhs.NextSet(0); a >= 0; a = lhs.NextSet(a + 1) {
		n = n.children[a]
	}
	return Node{n: n, Lhs: lhs.Clone()}, true
}

// SetMaxLhs lowers the LHS cardinality bound and discards every FD whose
// LHS is larger (the Guardian's §9 pruning). Raising the bound is allowed
// but cannot resurrect discarded results.
func (t *Tree) SetMaxLhs(maxLhs int) {
	if maxLhs < 0 {
		maxLhs = 0
	}
	shrink := maxLhs < t.maxLhs
	t.maxLhs = maxLhs
	if shrink {
		t.prune(t.root, 0)
		if invariant.Enabled {
			t.assertConsistent("SetMaxLhs")
		}
	}
}

func (t *Tree) prune(n *node, depth int) {
	for a, c := range n.children {
		if c == nil {
			continue
		}
		if depth+1 > t.maxLhs {
			n.children[a] = nil
			t.nodeCount -= countNodes(c)
			continue
		}
		t.prune(c, depth+1)
		if c.rhsAttrs.IsEmpty() && c.isLeaf() {
			n.children[a] = nil
			t.nodeCount--
		}
	}
	t.recomputeRhsAttrs(n)
}

func countNodes(n *node) int {
	total := 1
	for _, c := range n.children {
		if c != nil {
			total += countNodes(c)
		}
	}
	return total
}

// Depth returns the depth of the deepest node, i.e. the largest LHS
// cardinality any stored path reaches.
func (t *Tree) Depth() int {
	return depth(t.root)
}

func depth(n *node) int {
	d := 0
	for _, c := range n.children {
		if c != nil {
			if cd := depth(c) + 1; cd > d {
				d = cd
			}
		}
	}
	return d
}

// FDs returns every FD stored in the tree as a canonical fd.Set.
func (t *Tree) FDs() *fd.Set {
	out := fd.NewSet(t.numAttrs)
	t.collectFDs(t.root, bitset.New(t.numAttrs), out)
	return out
}

func (t *Tree) collectFDs(n *node, path bitset.Set, out *fd.Set) {
	n.rhsFds.ForEach(func(rhs int) bool {
		out.Add(fd.FD{Lhs: path.Clone(), Rhs: rhs})
		return true
	})
	for a, c := range n.children {
		if c == nil {
			continue
		}
		path.Set(a)
		t.collectFDs(c, path, out)
		path.Clear(a)
	}
}

// CountFDs returns the number of FDs in the tree without materializing them.
func (t *Tree) CountFDs() int {
	return countFDs(t.root)
}

func countFDs(n *node) int {
	total := n.rhsFds.Cardinality()
	for _, c := range n.children {
		if c != nil {
			total += countFDs(c)
		}
	}
	return total
}
