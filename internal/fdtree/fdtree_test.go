package fdtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyfd/internal/bitset"
	"hyfd/internal/fd"
)

func TestAddContainsRemove(t *testing.T) {
	tr := New(5)
	lhs := bitset.FromIndices(5, 0, 2)
	if !tr.Add(lhs, 3) {
		t.Fatal("fresh add should be true")
	}
	if tr.Add(lhs, 3) {
		t.Fatal("duplicate add should be false")
	}
	if !tr.ContainsFd(lhs, 3) {
		t.Fatal("ContainsFd false negative")
	}
	if tr.ContainsFd(lhs, 4) || tr.ContainsFd(bitset.FromIndices(5, 0), 3) {
		t.Fatal("ContainsFd false positive")
	}
	if !tr.Remove(lhs, 3) {
		t.Fatal("Remove of present FD failed")
	}
	if tr.Remove(lhs, 3) {
		t.Fatal("Remove of absent FD succeeded")
	}
	if tr.ContainsFd(lhs, 3) {
		t.Fatal("FD survives removal")
	}
	if tr.CountFDs() != 0 {
		t.Fatalf("CountFDs = %d after removal", tr.CountFDs())
	}
	if tr.NodeCount() != 1 { // only root should remain after pruning
		t.Fatalf("NodeCount = %d, want 1", tr.NodeCount())
	}
}

func TestEmptyLhsFd(t *testing.T) {
	tr := New(3)
	empty := bitset.New(3)
	tr.Add(empty, 1)
	if !tr.ContainsFd(empty, 1) {
		t.Fatal("∅ → 1 not stored")
	}
	if !tr.FindFdOrGeneral(bitset.FromIndices(3, 0, 2), 1) {
		t.Fatal("∅ → 1 must generalize any LHS")
	}
	if !tr.Remove(empty, 1) || tr.ContainsFd(empty, 1) {
		t.Fatal("∅ → 1 removal broken")
	}
}

func TestFindFdOrGeneral(t *testing.T) {
	tr := New(6)
	tr.Add(bitset.FromIndices(6, 1, 3), 5)
	cases := []struct {
		lhs  []int
		want bool
	}{
		{[]int{1, 3}, true},       // the FD itself
		{[]int{1, 2, 3}, true},    // superset
		{[]int{0, 1, 3, 4}, true}, // superset
		{[]int{1}, false},         // proper subset
		{[]int{3}, false},
		{[]int{1, 2}, false}, // incomparable
		{[]int{}, false},
	}
	for _, c := range cases {
		got := tr.FindFdOrGeneral(bitset.FromIndices(6, c.lhs...), 5)
		if got != c.want {
			t.Fatalf("FindFdOrGeneral(%v, 5) = %v, want %v", c.lhs, got, c.want)
		}
	}
	if tr.FindFdOrGeneral(bitset.FromIndices(6, 1, 2, 3), 4) {
		t.Fatal("wrong RHS matched")
	}
}

func TestGetFdAndGenerals(t *testing.T) {
	tr := New(6)
	tr.Add(bitset.FromIndices(6, 1), 5)
	tr.Add(bitset.FromIndices(6, 1, 3), 5) // non-minimal on purpose
	tr.Add(bitset.FromIndices(6, 2), 5)
	tr.Add(bitset.FromIndices(6, 4), 5) // not ⊆ query
	tr.Add(bitset.FromIndices(6, 1), 4) // wrong RHS
	got := tr.GetFdAndGenerals(bitset.FromIndices(6, 1, 2, 3), 5)
	if len(got) != 3 {
		t.Fatalf("GetFdAndGenerals returned %d LHSs: %v", len(got), got)
	}
	want := map[string]bool{
		bitset.FromIndices(6, 1).Key():    true,
		bitset.FromIndices(6, 1, 3).Key(): true,
		bitset.FromIndices(6, 2).Key():    true,
	}
	for _, l := range got {
		if !want[l.Key()] {
			t.Fatalf("unexpected LHS %v", l)
		}
	}
}

func TestGetLevelAndChildren(t *testing.T) {
	tr := New(5)
	tr.Add(bitset.New(5), 0)
	tr.Add(bitset.FromIndices(5, 1), 2)
	tr.Add(bitset.FromIndices(5, 3), 2)
	tr.Add(bitset.FromIndices(5, 1, 3), 4)
	l0 := tr.GetLevel(0)
	if len(l0) != 1 || !l0[0].Lhs.IsEmpty() {
		t.Fatalf("level 0 = %v", l0)
	}
	l1 := tr.GetLevel(1)
	if len(l1) != 2 {
		t.Fatalf("level 1 has %d nodes", len(l1))
	}
	l2 := tr.GetLevel(2)
	if len(l2) != 1 || l2[0].Lhs.Cardinality() != 2 {
		t.Fatalf("level 2 = %v", l2)
	}
	// Children of the {1} node must include {1,3}.
	var node1 Node
	for _, nd := range l1 {
		if nd.Lhs.Test(1) {
			node1 = nd
		}
	}
	kids := node1.Children()
	if len(kids) != 1 || !kids[0].Lhs.Equal(bitset.FromIndices(5, 1, 3)) {
		t.Fatalf("children of {1} = %v", kids)
	}
	if !kids[0].RhsFds().Test(4) {
		t.Fatal("child rhsFds lost")
	}
}

func TestSetFds(t *testing.T) {
	tr := New(4)
	lhs := bitset.FromIndices(4, 0)
	tr.Add(lhs, 1)
	tr.Add(lhs, 2)
	nd := tr.GetLevel(1)[0]
	valid := bitset.FromIndices(4, 2)
	nd.SetFds(valid)
	if tr.ContainsFd(lhs, 1) || !tr.ContainsFd(lhs, 2) {
		t.Fatal("SetFds did not replace the marked RHSs")
	}
	// Lookups must stay correct even with stale subtree summaries.
	if tr.FindFdOrGeneral(bitset.FromIndices(4, 0, 3), 1) {
		t.Fatal("stale summary produced a false positive")
	}
}

func TestAddAndGetIfNew(t *testing.T) {
	tr := New(4)
	lhs := bitset.FromIndices(4, 1, 2)
	nd, ok := tr.AddAndGetIfNew(lhs, 3)
	if !ok || !nd.Lhs.Equal(lhs) || !nd.RhsFds().Test(3) {
		t.Fatal("AddAndGetIfNew on fresh FD broken")
	}
	if _, ok := tr.AddAndGetIfNew(lhs, 3); ok {
		t.Fatal("AddAndGetIfNew on duplicate should fail")
	}
	// Same node, different RHS: still returns the node.
	nd2, ok := tr.AddAndGetIfNew(lhs, 0)
	if !ok || !nd2.RhsFds().Test(0) || !nd2.RhsFds().Test(3) {
		t.Fatal("AddAndGetIfNew with second RHS broken")
	}
}

func TestMaxLhsPruning(t *testing.T) {
	tr := New(6)
	tr.Add(bitset.FromIndices(6, 0), 5)
	tr.Add(bitset.FromIndices(6, 0, 1), 5)
	tr.Add(bitset.FromIndices(6, 0, 1, 2), 5)
	tr.Add(bitset.FromIndices(6, 1, 2, 3), 4)
	before := tr.CountFDs()
	if before != 4 {
		t.Fatalf("setup CountFDs = %d", before)
	}
	tr.SetMaxLhs(2)
	if tr.CountFDs() != 2 {
		t.Fatalf("after SetMaxLhs(2): CountFDs = %d, want 2", tr.CountFDs())
	}
	if tr.ContainsFd(bitset.FromIndices(6, 0, 1, 2), 5) {
		t.Fatal("deep FD survived pruning")
	}
	if !tr.ContainsFd(bitset.FromIndices(6, 0, 1), 5) {
		t.Fatal("shallow FD lost by pruning")
	}
	// New deep adds must be refused.
	if tr.Add(bitset.FromIndices(6, 1, 2, 3), 0) {
		t.Fatal("Add beyond maxLhs accepted")
	}
	if _, ok := tr.AddAndGetIfNew(bitset.FromIndices(6, 1, 2, 3), 0); ok {
		t.Fatal("AddAndGetIfNew beyond maxLhs accepted")
	}
	if tr.MaxLhs() != 2 {
		t.Fatalf("MaxLhs = %d", tr.MaxLhs())
	}
}

func TestFDsRoundTrip(t *testing.T) {
	tr := New(5)
	want := fd.NewSet(5)
	add := func(lhs bitset.Set, rhs int) {
		tr.Add(lhs, rhs)
		want.Add(fd.FD{Lhs: lhs, Rhs: rhs})
	}
	add(bitset.New(5), 4)
	add(bitset.FromIndices(5, 0), 1)
	add(bitset.FromIndices(5, 0, 2), 3)
	add(bitset.FromIndices(5, 1, 2, 3), 0)
	got := tr.FDs()
	if !got.Equal(want) {
		t.Fatalf("FDs roundtrip:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if tr.CountFDs() != want.Size() {
		t.Fatalf("CountFDs = %d, want %d", tr.CountFDs(), want.Size())
	}
}

func TestApproxBytesGrows(t *testing.T) {
	tr := New(8)
	base := tr.ApproxBytes()
	tr.Add(bitset.FromIndices(8, 0, 1, 2, 3), 7)
	if tr.ApproxBytes() <= base {
		t.Fatal("ApproxBytes did not grow with nodes")
	}
}

// TestQuickTreeMatchesNaive compares the tree against a naive FD store on
// random add/remove/lookup workloads.
func TestQuickTreeMatchesNaive(t *testing.T) {
	const n = 8
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(n)
		naive := make(map[string]bitset.Set) // key → lhs, per (lhs,rhs) pair
		randLhs := func() bitset.Set {
			s := bitset.New(n)
			for i := 0; i < n; i++ {
				if r.Intn(3) == 0 {
					s.Set(i)
				}
			}
			return s
		}
		for op := 0; op < 120; op++ {
			lhs := randLhs()
			rhs := r.Intn(n)
			key := lhs.Key() + "|" + string(rune(rhs))
			switch r.Intn(3) {
			case 0: // add
				_, present := naive[key]
				if tr.Add(lhs, rhs) != !present {
					return false
				}
				naive[key] = lhs
			case 1: // remove
				_, present := naive[key]
				if tr.Remove(lhs, rhs) != present {
					return false
				}
				delete(naive, key)
			default: // lookups
				_, present := naive[key]
				if tr.ContainsFd(lhs, rhs) != present {
					return false
				}
				// Generalization ground truth: scan all stored FDs.
				wantGen := false
				var wantGenerals int
				for k, l := range naive {
					storedRhs := int(k[len(k)-1])
					if storedRhs == rhs && l.IsSubsetOf(lhs) {
						wantGen = true
						wantGenerals++
					}
				}
				if tr.FindFdOrGeneral(lhs, rhs) != wantGen {
					return false
				}
				if len(tr.GetFdAndGenerals(lhs, rhs)) != wantGenerals {
					return false
				}
			}
			if tr.CountFDs() != len(naive) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFindFdOrGeneral(b *testing.B) {
	const n = 32
	r := rand.New(rand.NewSource(3))
	tr := New(n)
	for i := 0; i < 2000; i++ {
		s := bitset.New(n)
		for j := 0; j < n; j++ {
			if r.Intn(6) == 0 {
				s.Set(j)
			}
		}
		tr.Add(s, r.Intn(n))
	}
	query := bitset.New(n)
	for j := 0; j < n; j += 2 {
		query.Set(j)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.FindFdOrGeneral(query, i%n)
	}
}

func BenchmarkAddRemove(b *testing.B) {
	const n = 24
	r := rand.New(rand.NewSource(5))
	var lhss []bitset.Set
	for i := 0; i < 1000; i++ {
		s := bitset.New(n)
		for j := 0; j < n; j++ {
			if r.Intn(5) == 0 {
				s.Set(j)
			}
		}
		lhss = append(lhss, s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New(n)
		for k, lhs := range lhss {
			tr.Add(lhs, k%n)
		}
		for k, lhs := range lhss {
			tr.Remove(lhs, k%n)
		}
	}
}
