package fdtree

import (
	"hyfd/internal/bitset"
	"hyfd/internal/invariant"
)

// This file hosts the FDTree's build-tag-gated structural invariants
// (-tags hyfdinvariants; see internal/invariant). The checked contract:
//
//   - rhsFds ⊆ rhsAttrs at every node, and every child's rhsAttrs is
//     covered by its parent's (the summaries that prune generalization
//     lookups are true supersets);
//   - no node sits deeper than the maxLhs bound;
//   - nodeCount matches the allocated nodes (the Guardian budgets on it);
//   - after Remove, no prunable husk survives: a non-root leaf always
//     carries at least one summary bit.
//
// Add runs a cheap path-local check; Remove and SetMaxLhs, which repair
// summaries and prune, re-verify the whole tree.

// assertPathMarked verifies, after a successful Add of lhs → rhs, that every
// node along the path advertises rhs in its subtree summary and the terminal
// node carries the FD.
func (t *Tree) assertPathMarked(lhs bitset.Set, rhs int) {
	n := t.root
	invariant.Assert(n.rhsAttrs.Test(rhs), "Add: root summary misses rhs %d", rhs)
	for a := lhs.NextSet(0); a >= 0; a = lhs.NextSet(a + 1) {
		n = n.children[a]
		invariant.Assert(n != nil, "Add: path node for attr %d missing", a)
		invariant.Assert(n.rhsAttrs.Test(rhs), "Add: summary at attr %d misses rhs %d", a, rhs)
	}
	invariant.Assert(n.rhsFds.Test(rhs), "Add: terminal node does not carry rhs %d", rhs)
}

// assertConsistent verifies the whole-tree contract above. op names the
// mutation for the violation report.
func (t *Tree) assertConsistent(op string) {
	count := 0
	t.assertNode(t.root, 0, op, &count)
	invariant.Assert(count == t.nodeCount, "%s: nodeCount %d does not match %d allocated nodes",
		op, t.nodeCount, count)
}

func (t *Tree) assertNode(n *node, depth int, op string, count *int) {
	*count++
	invariant.Assert(depth <= t.maxLhs, "%s: node at depth %d exceeds maxLhs %d", op, depth, t.maxLhs)
	invariant.Assert(n.rhsFds.IsSubsetOf(n.rhsAttrs), "%s: rhsFds not covered by rhsAttrs at depth %d", op, depth)
	leaf := true
	for a, c := range n.children {
		if c == nil {
			continue
		}
		leaf = false
		invariant.Assert(c.rhsAttrs.IsSubsetOf(n.rhsAttrs),
			"%s: child %d summary not covered by parent at depth %d", op, a, depth)
		t.assertNode(c, depth+1, op, count)
	}
	if leaf && depth > 0 {
		invariant.Assert(!n.rhsAttrs.IsEmpty(), "%s: empty non-root leaf at depth %d was not pruned", op, depth)
	}
}
