// Package guardian implements HyFD's memory Guardian (§9): a best-effort
// watchdog that bounds the result FDTree's footprint by successively
// lowering its maximum LHS size, sacrificing the largest (and most likely
// accidental) FDs first. The Guardian is optional; with no budget it never
// intervenes and the discovery stays complete.
package guardian

import (
	"hyfd/internal/fdtree"
	"hyfd/internal/metrics"
)

// Guardian watches one FDTree against a byte budget.
type Guardian struct {
	tree   *fdtree.Tree
	budget int
	gauge  *metrics.Gauge

	// Pruned reports whether the Guardian ever discarded results; if true
	// the final FD set is a best-effort subset (all FDs up to the final
	// MaxLhs are still complete and minimal).
	Pruned bool
	// Interventions counts how many times the LHS bound was lowered.
	Interventions int
}

// New returns a Guardian over the tree. budget <= 0 disables it.
func New(tree *fdtree.Tree, budget int) *Guardian {
	return &Guardian{tree: tree, budget: budget}
}

// SetFootprintGauge attaches a gauge that tracks the tree's approximate
// footprint in bytes, refreshed on every Check. A nil gauge is a no-op, and
// the gauge works even when no budget is configured (budget <= 0), so the
// footprint stays observable without enabling pruning.
func (g *Guardian) SetFootprintGauge(gauge *metrics.Gauge) { g.gauge = gauge }

// Check compares the tree's approximate footprint against the budget and,
// while it is exceeded, lowers the maximum LHS size below the current
// deepest result. Call it whenever the tree has grown (after induction and
// validation rounds).
func (g *Guardian) Check() {
	g.gauge.Set(float64(g.tree.ApproxBytes()))
	if g.budget <= 0 {
		return
	}
	defer func() { g.gauge.Set(float64(g.tree.ApproxBytes())) }()
	for g.tree.ApproxBytes() > g.budget {
		d := g.tree.Depth()
		if d <= 1 {
			return // refuse to prune below single-attribute LHSs
		}
		limit := g.tree.MaxLhs()
		if d-1 < limit {
			limit = d - 1
		} else {
			limit--
		}
		g.tree.SetMaxLhs(limit)
		g.Pruned = true
		g.Interventions++
	}
}

// MaxLhs exposes the tree's current LHS bound.
func (g *Guardian) MaxLhs() int { return g.tree.MaxLhs() }

// Footprint exposes the tree's current approximate footprint in bytes —
// the same quantity Check compares against the budget (telemetry for
// trace.GuardianPrune).
func (g *Guardian) Footprint() int64 { return int64(g.tree.ApproxBytes()) }
