package guardian

import (
	"testing"

	"hyfd/internal/bitset"
	"hyfd/internal/fdtree"
)

// fill inserts FDs with LHS sizes 1..depth into the tree.
func fill(tree *fdtree.Tree, depth int) {
	n := tree.NumAttrs()
	for d := 1; d <= depth; d++ {
		for start := 0; start+d < n; start++ {
			lhs := bitset.New(n)
			for k := 0; k < d; k++ {
				lhs.Set(start + k)
			}
			tree.Add(lhs, n-1)
		}
	}
}

func TestDisabledGuardianNeverPrunes(t *testing.T) {
	tree := fdtree.New(10)
	fill(tree, 6)
	g := New(tree, 0)
	before := tree.CountFDs()
	g.Check()
	if g.Pruned || tree.CountFDs() != before {
		t.Fatal("disabled guardian intervened")
	}
}

func TestGuardianPrunesUnderPressure(t *testing.T) {
	tree := fdtree.New(10)
	fill(tree, 8)
	budget := tree.ApproxBytes() / 4
	g := New(tree, budget)
	g.Check()
	if !g.Pruned || g.Interventions == 0 {
		t.Fatal("guardian did not intervene under pressure")
	}
	if tree.ApproxBytes() > budget && tree.Depth() > 1 {
		t.Fatalf("still over budget (%d > %d) with depth %d",
			tree.ApproxBytes(), budget, tree.Depth())
	}
	// Shallow FDs must survive.
	if !tree.ContainsFd(bitset.FromIndices(10, 0), 9) {
		t.Fatal("depth-1 FD lost")
	}
	if g.MaxLhs() >= 8 {
		t.Fatalf("MaxLhs = %d, want < 8", g.MaxLhs())
	}
}

func TestGuardianStopsAtDepthOne(t *testing.T) {
	tree := fdtree.New(64)
	for a := 0; a < 63; a++ {
		tree.Add(bitset.FromIndices(64, a), 63)
	}
	g := New(tree, 1) // impossible budget
	g.Check()
	// Must terminate and keep the single-attribute FDs.
	if tree.CountFDs() != 63 {
		t.Fatalf("CountFDs = %d, want 63", tree.CountFDs())
	}
}

func TestGuardianIdempotentWhenUnderBudget(t *testing.T) {
	tree := fdtree.New(8)
	fill(tree, 3)
	g := New(tree, tree.ApproxBytes()*10)
	g.Check()
	g.Check()
	if g.Pruned || g.Interventions != 0 {
		t.Fatal("guardian intervened under generous budget")
	}
}
