package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// Artifact is the machine-readable record of one executed experiment: the
// environment it ran under plus every job result, including per-run Stats
// and (for metered HyFD runs) the full metrics snapshot. cmd/bench writes
// one artifact per experiment as BENCH_<id>.json; EXPERIMENTS.md documents
// how to read and compare them across commits.
type Artifact struct {
	// Experiment is the Experiment.ID (e.g. "table1").
	Experiment string `json:"experiment"`
	Title      string `json:"title"`
	// CreatedUnix is the artifact's creation time (Unix seconds, UTC).
	CreatedUnix int64    `json:"created_unix"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	// GOMAXPROCS is the scheduler's worker ceiling at artifact creation —
	// the bound that actually limits multi-threaded runs, which can sit
	// below NumCPU in containers.
	GOMAXPROCS int `json:"gomaxprocs"`
	// SingleCPUCaveat flags artifacts produced with only one schedulable
	// CPU: every multi-threaded variant then time-slices a single core, so
	// parallel "speedups" in this artifact measure overhead, not speedup.
	SingleCPUCaveat bool     `json:"single_cpu_caveat"`
	Results         []Result `json:"results"`
	// Derived holds the experiment's condensed scalar metrics (see
	// Experiment.Derive), e.g. the prep experiment's parallel speedups.
	Derived map[string]float64 `json:"derived,omitempty"`
}

// NewArtifact assembles an artifact for one experiment's results, stamping
// the current time and build environment.
func NewArtifact(exp Experiment, results []Result) Artifact {
	a := Artifact{
		Experiment:  exp.ID,
		Title:       exp.Title,
		CreatedUnix: time.Now().Unix(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Results:     results,
	}
	a.SingleCPUCaveat = a.NumCPU <= 1 || a.GOMAXPROCS <= 1
	if exp.Derive != nil {
		a.Derived = exp.Derive(results)
	}
	return a
}

// Filename returns the artifact's canonical file name, BENCH_<id>.json.
func (a Artifact) Filename() string {
	return fmt.Sprintf("BENCH_%s.json", a.Experiment)
}

// WriteFile writes the artifact as indented JSON into dir under its
// canonical name and returns the full path.
func (a Artifact) WriteFile(dir string) (string, error) {
	path := filepath.Join(dir, a.Filename())
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// ReadArtifactFile parses an artifact written by WriteFile.
func ReadArtifactFile(path string) (Artifact, error) {
	var a Artifact
	data, err := os.ReadFile(path)
	if err != nil {
		return a, err
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return a, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}
