package harness

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestArtifactRoundTrip(t *testing.T) {
	spec := Spec{Algorithm: HyFDName, Dataset: "bridges", Rows: 100, Metrics: true}
	res := ExecuteInProcess(spec)
	if res.Err != "" {
		t.Fatalf("measurement failed: %s", res.Err)
	}
	if res.Stats == nil || res.Stats.TotalTime <= 0 {
		t.Fatalf("HyFD result must carry stats with timings: %+v", res.Stats)
	}
	if res.Metrics == nil {
		t.Fatal("Spec.Metrics must embed a snapshot")
	}
	if _, ok := res.Metrics.Counter("hyfd_runs_total"); !ok {
		t.Fatal("snapshot missing engine counters")
	}

	exp := Experiment{ID: "testexp", Title: "artifact round-trip"}
	art := NewArtifact(exp, []Result{res})
	dir := t.TempDir()
	path, err := art.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "BENCH_testexp.json") {
		t.Fatalf("unexpected artifact path %s", path)
	}
	back, err := ReadArtifactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Experiment != "testexp" || back.GoVersion == "" || back.CreatedUnix == 0 {
		t.Fatalf("artifact metadata lost: %+v", back)
	}
	if len(back.Results) != 1 || back.Results[0].FDs != res.FDs {
		t.Fatalf("results lost: %+v", back.Results)
	}
	if back.Results[0].Stats == nil || back.Results[0].Stats.TotalTime != res.Stats.TotalTime {
		t.Fatal("stats did not survive the round trip")
	}
	if back.Results[0].Metrics == nil {
		t.Fatal("metrics snapshot did not survive the round trip")
	}

	// The stable field names of the artifact contract (EXPERIMENTS.md).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"experiment", "title", "created_unix", "go_version", "goos", "goarch", "num_cpu", "results"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("artifact missing %q", key)
		}
	}
	first := doc["results"].([]any)[0].(map[string]any)
	for _, key := range []string{"spec", "seconds", "fds", "peak_heap", "switches", "stats", "metrics"} {
		if _, ok := first[key]; !ok {
			t.Errorf("result missing %q", key)
		}
	}
	stats := first["stats"].(map[string]any)
	for _, key := range []string{"rows", "cols", "fd_count", "comparisons", "validations", "preprocessing_ns", "sampling_ns", "validation_ns", "total_ns"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("stats missing %q", key)
		}
	}
}

func TestUnmeteredRunOmitsMetrics(t *testing.T) {
	res := ExecuteInProcess(Spec{Algorithm: HyFDName, Dataset: "bridges", Rows: 100})
	if res.Err != "" {
		t.Fatalf("measurement failed: %s", res.Err)
	}
	if res.Metrics != nil {
		t.Fatal("metrics snapshot present without Spec.Metrics")
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"metrics"`) {
		t.Fatalf("unmetered result serializes a metrics key:\n%s", data)
	}
}
