package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hyfd/internal/datasets"
)

// Options tunes the experiment suite to the available hardware budget.
// The paper's full dimensions (a million rows, days of runtime) are
// reachable by raising these; the defaults regenerate every table and
// figure in minutes on a laptop.
type Options struct {
	// Fig6MaxRows caps the row-scalability sweep (paper: 1 024 000).
	Fig6MaxRows int
	// Fig7MaxCols caps the column-scalability sweep (paper: 60+).
	Fig7MaxCols int
	// Table1Rows caps each Table 1 dataset's rows (paper: full size).
	Table1Rows int
	// Table2Rows caps each Table 2 dataset's rows (paper: up to 45 M).
	Table2Rows int
	// Table3Rows caps each Table 3 dataset's rows.
	Table3Rows int
	// Fig8Rows is the ncvoter-statewide sample size (paper: 10 000).
	Fig8Rows int
	// Threads is the worker count of the multi-threaded HyFD variant.
	Threads int
}

// DefaultOptions returns a laptop-scale configuration.
func DefaultOptions() Options {
	return Options{
		Fig6MaxRows: 64000,
		Fig7MaxCols: 60,
		Table1Rows:  2000,
		Table2Rows:  2000,
		Table3Rows:  1000,
		Fig8Rows:    3000,
		Threads:     8,
	}
}

// Experiment bundles the jobs of one paper table/figure with its renderer.
type Experiment struct {
	ID    string
	Title string
	Jobs  []Spec
	// Render writes the table/series from the collected results.
	Render func(w io.Writer, results []Result)
	// Derive, when non-nil, condenses the results into named scalar
	// metrics that the artifact records under "derived" — the fields
	// regression tooling compares across commits without re-deriving them
	// from raw results.
	Derive func(results []Result) map[string]float64
}

// Experiments returns the six paper-reproduction experiments plus the
// preprocessing-speedup, dataset-reuse, ranked-discovery, and incremental
// maintenance probes.
func Experiments(opts Options) []Experiment {
	return []Experiment{
		Fig6(opts), Fig7(opts), Table1(opts), Table2(opts), Table3(opts), Fig8(opts), Prep(opts), DatasetReuse(opts), Ranked(opts), Incremental(opts),
	}
}

// ByID returns one experiment by its id (fig6, fig7, table1, table2,
// table3, fig8, prep, dataset_reuse, ranked, incremental).
func ByID(id string, opts Options) (Experiment, error) {
	for _, e := range Experiments(opts) {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

// Fig6 — row scalability on ncvoter (19 cols) and uniprot (30 cols): all
// eight algorithms, rows quadrupling from 1 000.
func Fig6(opts Options) Experiment {
	var jobs []Spec
	for _, ds := range []struct {
		name string
		cols int
	}{{"ncvoter", 19}, {"uniprot", 30}} {
		for rows := 1000; rows <= opts.Fig6MaxRows; rows *= 4 {
			for _, alg := range AlgorithmNames {
				jobs = append(jobs, Spec{Algorithm: alg, Dataset: ds.name, Rows: rows, Cols: ds.cols})
			}
		}
	}
	return Experiment{
		ID:    "fig6",
		Title: "Figure 6: row scalability on ncvoter and uniprot (runtime [s] and FD count per row count)",
		Jobs:  jobs,
		Render: func(w io.Writer, results []Result) {
			renderSweep(w, results, "rows", func(s Spec) int { return s.Rows })
		},
	}
}

// Fig7 — column scalability on uniprot and plista at 1 000 rows.
func Fig7(opts Options) Experiment {
	var jobs []Spec
	for _, ds := range []struct {
		name    string
		maxCols int
	}{{"uniprot", min(opts.Fig7MaxCols, 223)}, {"plista", min(opts.Fig7MaxCols, 63)}} {
		for cols := 10; cols <= ds.maxCols; cols += 10 {
			for _, alg := range AlgorithmNames {
				jobs = append(jobs, Spec{Algorithm: alg, Dataset: ds.name, Rows: 1000, Cols: cols})
			}
		}
	}
	return Experiment{
		ID:    "fig7",
		Title: "Figure 7: column scalability on uniprot and plista, 1000 rows (runtime [s] and FD count per column count)",
		Jobs:  jobs,
		Render: func(w io.Writer, results []Result) {
			renderSweep(w, results, "cols", func(s Spec) int { return s.Cols })
		},
	}
}

// table1Datasets lists the Table 1 datasets in paper order.
var table1Datasets = []string{
	"iris", "balance-scale", "chess", "abalone", "nursery", "breast-cancer",
	"bridges", "echocardiogram", "adult", "letter", "ncvoter", "hepatitis",
	"horse", "fd-reduced-30", "plista", "flight", "uniprot",
}

// Table1 — runtimes of all eight algorithms on the 17 datasets.
func Table1(opts Options) Experiment {
	var jobs []Spec
	for _, name := range table1Datasets {
		// Cap at the dataset's natural size: the paper's Table 1 runs each
		// dataset as-is; the row option only shrinks the big ones.
		rows := opts.Table1Rows
		if d, err := datasets.ByName(name); err == nil && d.Rows < rows {
			rows = d.Rows
		}
		for _, alg := range AlgorithmNames {
			spec := Spec{Algorithm: alg, Dataset: name, Rows: rows}
			// The paper bounds uniprot's result to LHS size 4 via the
			// Guardian — the complete set (> 100 M FDs) is unstorable.
			if name == "uniprot" && alg == HyFDName {
				spec.MaxLhs = 4
			}
			jobs = append(jobs, spec)
		}
	}
	return Experiment{
		ID:    "table1",
		Title: fmt.Sprintf("Table 1: runtimes [s] on 17 datasets (rows capped at %d)", opts.Table1Rows),
		Jobs:  jobs,
		Render: func(w io.Writer, results []Result) {
			renderDatasetTable(w, results, table1Datasets, AlgorithmNames)
		},
	}
}

// table2Datasets lists the Table 2 datasets in paper order.
var table2Datasets = []string{
	"TPC-H.lineitem", "PDB.POLY_SEQ", "PDB.ATOM_SITE", "SAP_R3.ZBC00DT",
	"SAP_R3.ILOA", "SAP_R3.CE4HI01", "NCVoter.statewide", "CD.cd",
}

// Table2 — HyFD single- vs multi-threaded on the large datasets.
func Table2(opts Options) Experiment {
	var jobs []Spec
	for _, name := range table2Datasets {
		jobs = append(jobs,
			Spec{Algorithm: HyFDName, Dataset: name, Rows: opts.Table2Rows, Threads: 1},
			Spec{Algorithm: HyFDName, Dataset: name, Rows: opts.Table2Rows, Threads: opts.Threads},
		)
	}
	return Experiment{
		ID: "table2",
		Title: fmt.Sprintf("Table 2: HyFD single- vs multi-threaded (%d workers) on large datasets (rows capped at %d)",
			opts.Threads, opts.Table2Rows),
		Jobs: jobs,
		Render: func(w io.Writer, results []Result) {
			tw := newTable("Dataset", "FDs", "single [s]", "multi [s]", "speedup")
			for _, name := range table2Datasets {
				var single, multi *Result
				for i := range results {
					r := &results[i]
					if r.Spec.Dataset != name {
						continue
					}
					if r.Spec.Threads <= 1 {
						single = r
					} else {
						multi = r
					}
				}
				if single == nil || multi == nil {
					continue
				}
				speedup := "-"
				if multi.Seconds > 0 && single.Err == "" && multi.Err == "" {
					speedup = fmt.Sprintf("%.2fx", single.Seconds/multi.Seconds)
				}
				tw.row(name, cell(fmt.Sprint(single.FDs), single), timeCell(single), timeCell(multi), speedup)
			}
			tw.write(w)
		},
	}
}

// table3Datasets lists the Table 3 datasets in paper order.
var table3Datasets = []string{"hepatitis", "adult", "letter", "horse", "plista", "flight"}

// table3Algorithms: the paper contrasts the most memory-efficient
// competitors with HyFD.
var table3Algorithms = []string{"Tane", "Dfd", "Fdep", HyFDName}

// Table3 — peak memory per algorithm and dataset.
func Table3(opts Options) Experiment {
	var jobs []Spec
	for _, name := range table3Datasets {
		for _, alg := range table3Algorithms {
			jobs = append(jobs, Spec{Algorithm: alg, Dataset: name, Rows: opts.Table3Rows})
		}
	}
	return Experiment{
		ID:    "table3",
		Title: fmt.Sprintf("Table 3: peak memory [MB] (rows capped at %d)", opts.Table3Rows),
		Jobs:  jobs,
		Render: func(w io.Writer, results []Result) {
			tw := newTable(append([]string{"Dataset"}, table3Algorithms...)...)
			for _, name := range table3Datasets {
				row := []string{name}
				for _, alg := range table3Algorithms {
					r := find(results, name, alg)
					if r == nil {
						row = append(row, "-")
						continue
					}
					row = append(row, cell(fmt.Sprintf("%.1f", float64(r.PeakHeap)/(1<<20)), r))
				}
				tw.row(row...)
			}
			tw.write(w)
		},
	}
}

// fig8Thresholds sweeps HyFD's efficiency parameter (paper: 0.01 %–100 %).
var fig8Thresholds = []float64{0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0}

// Fig8 — runtime and phase-switch count vs the efficiency threshold on the
// ncvoter statewide sample.
func Fig8(opts Options) Experiment {
	var jobs []Spec
	for _, th := range fig8Thresholds {
		jobs = append(jobs, Spec{
			Algorithm: HyFDName, Dataset: "NCVoter.statewide",
			Rows: opts.Fig8Rows, Threshold: th,
		})
	}
	return Experiment{
		ID:    "fig8",
		Title: fmt.Sprintf("Figure 8: efficiency-threshold sweep on NCVoter.statewide (%d rows)", opts.Fig8Rows),
		Jobs:  jobs,
		Render: func(w io.Writer, results []Result) {
			tw := newTable("threshold [%]", "runtime [s]", "switches", "FDs")
			for _, r := range results {
				tw.row(
					fmt.Sprintf("%g", r.Spec.Threshold*100),
					timeCell(&r),
					fmt.Sprint(r.Switches),
					fmt.Sprint(r.FDs),
				)
			}
			tw.write(w)
		},
	}
}

// prepThreadCounts are the worker counts the prep experiment sweeps; the
// configured Options.Threads is appended when it extends the sweep.
var prepThreadCounts = []int{1, 2, 4}

// Prep — parallel-preprocessing speedup: PLI construction and record
// inversion only, on a wide uniprot sample, at increasing worker counts.
// The derived metrics record the speedup of every multi-threaded variant
// over the single-threaded baseline (prep_speedup_<n>t); multi-core
// hardware is required for the speedups to materialize.
func Prep(opts Options) Experiment {
	const rows, cols = 5000, 128
	counts := append([]int{}, prepThreadCounts...)
	if opts.Threads > counts[len(counts)-1] {
		counts = append(counts, opts.Threads)
	}
	var jobs []Spec
	for _, th := range counts {
		jobs = append(jobs, Spec{
			Algorithm: HyFDName, Dataset: "uniprot",
			Rows: rows, Cols: cols, Threads: th, PrepOnly: true,
		})
	}
	findPrep := func(results []Result, threads int) *Result {
		for i := range results {
			if results[i].Spec.Threads == threads && results[i].Err == "" {
				return &results[i]
			}
		}
		return nil
	}
	return Experiment{
		ID: "prep",
		Title: fmt.Sprintf("Preprocessing speedup: parallel PLI build on uniprot (%d rows, %d cols)",
			rows, cols),
		Jobs: jobs,
		Render: func(w io.Writer, results []Result) {
			tw := newTable("threads", "prep [s]", "speedup")
			base := findPrep(results, 1)
			for _, r := range results {
				speedup := "-"
				if base != nil && r.Seconds > 0 && r.Err == "" {
					speedup = fmt.Sprintf("%.2fx", base.Seconds/r.Seconds)
				}
				tw.row(fmt.Sprint(r.Spec.Threads), timeCell(&r), speedup)
			}
			tw.write(w)
		},
		Derive: func(results []Result) map[string]float64 {
			derived := map[string]float64{}
			base := findPrep(results, 1)
			if base == nil {
				return derived
			}
			derived["prep_seconds_1t"] = base.Seconds
			for _, r := range results {
				if r.Spec.Threads <= 1 || r.Err != "" || r.Seconds <= 0 {
					continue
				}
				derived[fmt.Sprintf("prep_seconds_%dt", r.Spec.Threads)] = r.Seconds
				derived[fmt.Sprintf("prep_speedup_%dt", r.Spec.Threads)] = base.Seconds / r.Seconds
			}
			return derived
		},
	}
}

// reuseAlgorithms are the algorithms the dataset-reuse experiment
// contrasts: the engine itself plus one representative per baseline family
// (lattice traversal, agree sets, induction).
var reuseAlgorithms = []string{HyFDName, "Tane", "Fdep"}

// DatasetReuse — cold vs warm discovery: each algorithm runs once from the
// raw relation (preprocessing included in the measured time) and once over
// a pre-built Dataset (preprocessing excluded and reported separately).
// The derived metrics record, per algorithm, both runtimes and the
// cold/warm speedup (reuse_speedup_<alg>) — the fraction of a run that
// Dataset sharing amortizes away.
func DatasetReuse(opts Options) Experiment {
	const rows = 2000
	var jobs []Spec
	for _, alg := range reuseAlgorithms {
		jobs = append(jobs,
			Spec{Algorithm: alg, Dataset: "ncvoter", Rows: rows, Metrics: alg == HyFDName},
			Spec{Algorithm: alg, Dataset: "ncvoter", Rows: rows, Metrics: alg == HyFDName, Warm: true},
		)
	}
	findRun := func(results []Result, alg string, warm bool) *Result {
		for i := range results {
			if results[i].Spec.Algorithm == alg && results[i].Spec.Warm == warm && results[i].Err == "" {
				return &results[i]
			}
		}
		return nil
	}
	metricName := func(alg string) string {
		return strings.ToLower(strings.NewReplacer("-", "_", " ", "_").Replace(alg))
	}
	return Experiment{
		ID:    "dataset_reuse",
		Title: fmt.Sprintf("Dataset reuse: cold vs warm discovery on ncvoter (%d rows)", rows),
		Jobs:  jobs,
		Render: func(w io.Writer, results []Result) {
			tw := newTable("algorithm", "cold [s]", "warm [s]", "prep excluded [s]", "speedup")
			for _, alg := range reuseAlgorithms {
				cold, warm := findRun(results, alg, false), findRun(results, alg, true)
				if cold == nil || warm == nil {
					continue
				}
				speedup := "-"
				if warm.Seconds > 0 {
					speedup = fmt.Sprintf("%.2fx", cold.Seconds/warm.Seconds)
				}
				tw.row(alg, timeCell(cold), timeCell(warm),
					fmt.Sprintf("%.4f", warm.PrepSeconds), speedup)
			}
			tw.write(w)
		},
		Derive: func(results []Result) map[string]float64 {
			derived := map[string]float64{}
			for _, alg := range reuseAlgorithms {
				cold, warm := findRun(results, alg, false), findRun(results, alg, true)
				if cold == nil || warm == nil {
					continue
				}
				name := metricName(alg)
				derived["cold_seconds_"+name] = cold.Seconds
				derived["warm_seconds_"+name] = warm.Seconds
				derived["prep_seconds_"+name] = warm.PrepSeconds
				if warm.Seconds > 0 {
					derived["reuse_speedup_"+name] = cold.Seconds / warm.Seconds
				}
			}
			return derived
		},
	}
}

// rankedDatasets are the ranked experiment's subjects: two Table 1
// datasets whose complete covers are large enough (hundreds and dozens of
// FDs) that a top-k cut can terminate well before the full run.
var rankedDatasets = []string{"abalone", "bridges"}

// rankedTopK is the prefix length the ranked experiment requests.
const rankedTopK = 10

// rankedThreads is the multi-threaded variant's worker count; its digest
// must match the single-threaded run byte for byte.
const rankedThreads = 4

// Ranked — top-k discovery vs the complete cover: per dataset, one full
// HyFD run and two ranked TopK runs (single- and multi-threaded). The
// derived metrics record time-to-top-k, its speedup over the full run
// (ranked_speedup_<ds>), and a determinism bit (ranked_deterministic_<ds>:
// 1 when the single- and multi-threaded ranked digests are byte-equal).
func Ranked(opts Options) Experiment {
	var jobs []Spec
	for _, name := range rankedDatasets {
		jobs = append(jobs,
			Spec{Algorithm: HyFDName, Dataset: name, Threads: 1},
			Spec{Algorithm: HyFDName, Dataset: name, Threads: 1, TopK: rankedTopK},
			Spec{Algorithm: HyFDName, Dataset: name, Threads: rankedThreads, TopK: rankedTopK},
		)
	}
	findRanked := func(results []Result, name string, threads, topK int) *Result {
		for i := range results {
			s := results[i].Spec
			if s.Dataset == name && s.Threads == threads && s.TopK == topK && results[i].Err == "" {
				return &results[i]
			}
		}
		return nil
	}
	return Experiment{
		ID: "ranked",
		Title: fmt.Sprintf("Ranked discovery: time-to-top-%d vs complete cover on %s",
			rankedTopK, strings.Join(rankedDatasets, ", ")),
		Jobs: jobs,
		Render: func(w io.Writer, results []Result) {
			tw := newTable("Dataset", "full FDs", "full [s]", "top-k 1t [s]", fmt.Sprintf("top-k %dt [s]", rankedThreads), "speedup", "deterministic")
			for _, name := range rankedDatasets {
				full := findRanked(results, name, 1, 0)
				r1 := findRanked(results, name, 1, rankedTopK)
				rn := findRanked(results, name, rankedThreads, rankedTopK)
				if full == nil || r1 == nil || rn == nil {
					continue
				}
				speedup := "-"
				if r1.Seconds > 0 {
					speedup = fmt.Sprintf("%.2fx", full.Seconds/r1.Seconds)
				}
				det := "no"
				if r1.RankedDigest != "" && r1.RankedDigest == rn.RankedDigest {
					det = "yes"
				}
				tw.row(name, cell(fmt.Sprint(full.FDs), full), timeCell(full), timeCell(r1), timeCell(rn), speedup, det)
			}
			tw.write(w)
		},
		Derive: func(results []Result) map[string]float64 {
			derived := map[string]float64{}
			for _, name := range rankedDatasets {
				full := findRanked(results, name, 1, 0)
				r1 := findRanked(results, name, 1, rankedTopK)
				rn := findRanked(results, name, rankedThreads, rankedTopK)
				if full == nil || r1 == nil || rn == nil {
					continue
				}
				derived["full_seconds_"+name] = full.Seconds
				derived["ranked_seconds_"+name] = r1.Seconds
				derived["ranked_fds_"+name] = float64(r1.FDs)
				if r1.Seconds > 0 {
					derived["ranked_speedup_"+name] = full.Seconds / r1.Seconds
				}
				det := 0.0
				if r1.RankedDigest != "" && r1.RankedDigest == rn.RankedDigest {
					det = 1.0
				}
				derived["ranked_deterministic_"+name] = det
			}
			return derived
		},
	}
}

// incrementalDatasets are the incremental experiment's subjects: two Table 1
// datasets with structure enough that full discovery has real cost to beat.
var incrementalDatasets = []string{"abalone", "ncvoter"}

// incrementalRows is each dataset's materialized size; incrementalDeltaPct
// sizes the held-back update batch as a fraction of it (1 % — the streaming
// regime incremental maintenance targets).
const (
	incrementalRows     = 2000
	incrementalDeltaPct = 0.01
	incrementalThreads  = 4
)

// Incremental — update-batch maintenance vs cold re-discovery: per dataset,
// one cold HyFD run over the full relation (Prepare + discovery, the cost a
// non-incremental pipeline pays per update batch) and two incremental runs
// (single- and multi-threaded) that Apply the last 1 % of rows as an insert
// batch onto a pre-built base snapshot and Maintain its FD cover. Every job
// records the cover digest; the derived exactness bit demands all three are
// byte-identical — the maintained cover IS the cold cover. The derived
// metrics record both costs, the batch-latency speedup
// (incremental_speedup_<ds>), and incremental_exact_<ds>.
func Incremental(opts Options) Experiment {
	deltaRows := int(float64(incrementalRows) * incrementalDeltaPct)
	if deltaRows < 1 {
		deltaRows = 1
	}
	var jobs []Spec
	for _, name := range incrementalDatasets {
		jobs = append(jobs,
			Spec{Algorithm: HyFDName, Dataset: name, Rows: incrementalRows, Threads: 1, Digest: true},
			Spec{Algorithm: HyFDName, Dataset: name, Rows: incrementalRows, Threads: 1, DeltaRows: deltaRows, Incremental: true, Digest: true},
			Spec{Algorithm: HyFDName, Dataset: name, Rows: incrementalRows, Threads: incrementalThreads, DeltaRows: deltaRows, Incremental: true, Digest: true},
		)
	}
	findInc := func(results []Result, name string, threads int, incremental bool) *Result {
		for i := range results {
			s := results[i].Spec
			if s.Dataset == name && s.Threads == threads && s.Incremental == incremental && results[i].Err == "" {
				return &results[i]
			}
		}
		return nil
	}
	exact := func(cold, i1, in *Result) bool {
		return cold.CoverDigest != "" &&
			cold.CoverDigest == i1.CoverDigest && cold.CoverDigest == in.CoverDigest
	}
	return Experiment{
		ID: "incremental",
		Title: fmt.Sprintf("Incremental maintenance: %d-row insert batches (1%%) vs cold re-discovery on %s (%d rows)",
			deltaRows, strings.Join(incrementalDatasets, ", "), incrementalRows),
		Jobs: jobs,
		Render: func(w io.Writer, results []Result) {
			tw := newTable("Dataset", "FDs", "cold [s]", "incr 1t [s]", fmt.Sprintf("incr %dt [s]", incrementalThreads), "speedup", "exact")
			for _, name := range incrementalDatasets {
				cold := findInc(results, name, 1, false)
				i1 := findInc(results, name, 1, true)
				in := findInc(results, name, incrementalThreads, true)
				if cold == nil || i1 == nil || in == nil {
					continue
				}
				speedup := "-"
				if i1.Seconds > 0 {
					speedup = fmt.Sprintf("%.2fx", cold.Seconds/i1.Seconds)
				}
				ex := "no"
				if exact(cold, i1, in) {
					ex = "yes"
				}
				tw.row(name, cell(fmt.Sprint(cold.FDs), cold), timeCell(cold), timeCell(i1), timeCell(in), speedup, ex)
			}
			tw.write(w)
		},
		Derive: func(results []Result) map[string]float64 {
			derived := map[string]float64{}
			for _, name := range incrementalDatasets {
				cold := findInc(results, name, 1, false)
				i1 := findInc(results, name, 1, true)
				in := findInc(results, name, incrementalThreads, true)
				if cold == nil || i1 == nil || in == nil {
					continue
				}
				derived["delta_rows_"+name] = float64(i1.Spec.DeltaRows)
				derived["cold_seconds_"+name] = cold.Seconds
				derived["incremental_seconds_"+name] = i1.Seconds
				derived[fmt.Sprintf("incremental_seconds_%dt_%s", incrementalThreads, name)] = in.Seconds
				if i1.Seconds > 0 {
					derived["incremental_speedup_"+name] = cold.Seconds / i1.Seconds
				}
				ex := 0.0
				if exact(cold, i1, in) {
					ex = 1.0
				}
				derived["incremental_exact_"+name] = ex
			}
			return derived
		},
	}
}

// --- rendering helpers ---

func find(results []Result, dataset, alg string) *Result {
	for i := range results {
		if results[i].Spec.Dataset == dataset && results[i].Spec.Algorithm == alg {
			return &results[i]
		}
	}
	return nil
}

// cell annotates a value with TL/ML/ERR markers, mirroring Table 1's
// notation.
func cell(v string, r *Result) string {
	switch {
	case r.TimedOut:
		return "TL"
	case r.MemExceeded:
		return "ML"
	case r.Err != "":
		return "ERR"
	default:
		return v
	}
}

func timeCell(r *Result) string {
	return cell(fmt.Sprintf("%.2f", r.Seconds), r)
}

// renderSweep renders a figure-style table: one block per dataset, one row
// per x value, one column per algorithm plus the FD count.
func renderSweep(w io.Writer, results []Result, xName string, x func(Spec) int) {
	byDataset := map[string][]Result{}
	var order []string
	for _, r := range results {
		if _, ok := byDataset[r.Spec.Dataset]; !ok {
			order = append(order, r.Spec.Dataset)
		}
		byDataset[r.Spec.Dataset] = append(byDataset[r.Spec.Dataset], r)
	}
	for _, ds := range order {
		fmt.Fprintf(w, "\n[%s]\n", ds)
		rs := byDataset[ds]
		xs := map[int]bool{}
		for _, r := range rs {
			xs[x(r.Spec)] = true
		}
		var xvals []int
		for v := range xs {
			xvals = append(xvals, v)
		}
		sort.Ints(xvals)
		tw := newTable(append([]string{xName}, append(append([]string{}, AlgorithmNames...), "FDs")...)...)
		for _, xv := range xvals {
			row := []string{fmt.Sprint(xv)}
			fds := "-"
			for _, alg := range AlgorithmNames {
				var found *Result
				for i := range rs {
					if rs[i].Spec.Algorithm == alg && x(rs[i].Spec) == xv {
						found = &rs[i]
						break
					}
				}
				if found == nil {
					row = append(row, "-")
					continue
				}
				row = append(row, timeCell(found))
				if found.Err == "" && !found.TimedOut && !found.MemExceeded {
					fds = fmt.Sprint(found.FDs)
				}
			}
			row = append(row, fds)
			tw.row(row...)
		}
		tw.write(w)
	}
}

// renderDatasetTable renders a Table 1 style matrix: datasets × algorithms.
func renderDatasetTable(w io.Writer, results []Result, dsNames, algNames []string) {
	tw := newTable(append([]string{"Dataset", "FDs"}, algNames...)...)
	for _, name := range dsNames {
		row := []string{name}
		fds := "-"
		var cells []string
		for _, alg := range algNames {
			r := find(results, name, alg)
			if r == nil {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, timeCell(r))
			if r.Err == "" && !r.TimedOut && !r.MemExceeded {
				fds = fmt.Sprint(r.FDs)
			}
		}
		row = append(row, fds)
		row = append(row, cells...)
		tw.row(row...)
	}
	tw.write(w)
}

// table accumulates rows and writes them column-aligned.
type table struct {
	headers []string
	rows    [][]string
}

func newTable(headers ...string) *table {
	return &table{headers: headers}
}

func (t *table) row(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
