// Package harness executes and measures FD discovery runs for the
// reproduction of the paper's evaluation section (§10): per-run wall-clock
// timing, peak-heap sampling, FD counting, and the job definitions for
// every table and figure. The cmd/bench binary drives these jobs (in
// subprocesses, so timeouts and peak RSS are real); bench_test.go runs
// scaled-down in-process variants.
package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"hyfd/internal/algorithms"
	"hyfd/internal/algorithms/depminer"
	"hyfd/internal/algorithms/dfd"
	"hyfd/internal/algorithms/fastfds"
	"hyfd/internal/algorithms/fdep"
	"hyfd/internal/algorithms/fdmine"
	"hyfd/internal/algorithms/fun"
	"hyfd/internal/algorithms/tane"
	"hyfd/internal/core"
	"hyfd/internal/dataset"
	"hyfd/internal/datasets"
	"hyfd/internal/fd"
	"hyfd/internal/incremental"
	"hyfd/internal/metrics"
	"hyfd/internal/rank"
	"hyfd/internal/relation"
)

// HyFDName is the display name of the paper's algorithm in result tables.
const HyFDName = "HyFD"

// AlgorithmNames lists the evaluation's algorithm column order (Table 1).
var AlgorithmNames = []string{
	"Tane", "Fun", "FD_Mine", "Dfd", "Dep-Miner", "FastFDs", "Fdep", HyFDName,
}

// baselines instantiates the comparison algorithms by name.
func baselines() map[string]algorithms.Algorithm {
	return map[string]algorithms.Algorithm{
		"Tane":      tane.New(),
		"Fun":       fun.New(),
		"FD_Mine":   fdmine.New(),
		"Dfd":       dfd.New(1),
		"Dep-Miner": depminer.New(),
		"FastFDs":   fastfds.New(),
		"Fdep":      fdep.New(),
	}
}

// Spec describes one measurement job.
type Spec struct {
	// Algorithm is one of AlgorithmNames.
	Algorithm string `json:"algorithm"`
	// Dataset is a datasets.ByName key.
	Dataset string `json:"dataset"`
	// Rows caps the generated row count (0 = the dataset's full size).
	Rows int `json:"rows,omitempty"`
	// Cols projects to the first Cols columns (0 = all).
	Cols int `json:"cols,omitempty"`
	// Threads applies to HyFD only.
	Threads int `json:"threads,omitempty"`
	// Threshold overrides HyFD's efficiency threshold (0 = default).
	Threshold float64 `json:"threshold,omitempty"`
	// MaxLhs bounds result LHS sizes (HyFD only); the paper uses this via
	// the Guardian for uniprot, whose complete result is too large to
	// store (§10.4).
	MaxLhs int `json:"max_lhs,omitempty"`
	// TopK, when positive, switches the HyFD run into ranked top-k mode:
	// the engine streams the k best-scored FDs and terminates as soon as
	// the cut bound proves the prefix stable, so Seconds measures
	// time-to-top-k rather than time-to-complete-cover.
	TopK int `json:"top_k,omitempty"`
	// Metrics attaches a metrics registry to HyFD runs and embeds its
	// snapshot in the result (see Result.Metrics). Off by default so the
	// perf-criterion paths (bench_test.go) stay unmetered.
	Metrics bool `json:"metrics,omitempty"`
	// PrepOnly measures only the preprocessing stage (PLI construction and
	// record inversion at the spec's thread count) instead of a full
	// discovery run — the prep experiment's parallel-speedup probe.
	PrepOnly bool `json:"prep_only,omitempty"`
	// Warm prepares a Dataset before the timer starts and measures only the
	// discovery work over it: the cold-vs-warm contrast of the
	// dataset_reuse experiment. The excluded preprocessing cost is reported
	// in Result.PrepSeconds.
	Warm bool `json:"warm,omitempty"`
	// DeltaRows holds back the materialized relation's last DeltaRows rows
	// as an insert batch for an Incremental spec; the base snapshot covers
	// the remaining prefix. The final relation — base plus batch — is
	// row-for-row the full materialization, so a cold run over the same spec
	// sans Incremental is the exact comparison target.
	DeltaRows int `json:"delta_rows,omitempty"`
	// Incremental measures update-batch maintenance instead of discovery:
	// the base snapshot and its FD cover are built before the timer starts
	// (cost reported in PrepSeconds), and Seconds covers exactly
	// Dataset.Apply plus incremental.Maintain over the DeltaRows batch.
	Incremental bool `json:"incremental,omitempty"`
	// Digest records a canonical fingerprint of the run's complete FD cover
	// in Result.CoverDigest (complete HyFD and Incremental runs only) — the
	// cross-run exactness check of the incremental experiment.
	Digest bool `json:"digest,omitempty"`
}

// Result is the outcome of one measurement job.
type Result struct {
	Spec    Spec    `json:"spec"`
	Seconds float64 `json:"seconds"`
	// PrepSeconds is the Dataset preparation cost a Warm spec excluded from
	// Seconds (zero for cold runs, whose Seconds includes preprocessing).
	PrepSeconds float64 `json:"prep_seconds,omitempty"`
	FDs         int     `json:"fds"`
	PeakHeap    uint64  `json:"peak_heap"`
	// Switches is HyFD's phase-switch count (Fig. 8), -1 for baselines.
	Switches int    `json:"switches"`
	Err      string `json:"err,omitempty"`
	// TimedOut / MemExceeded are set by the subprocess driver, never by
	// ExecuteInProcess.
	TimedOut    bool `json:"timed_out,omitempty"`
	MemExceeded bool `json:"mem_exceeded,omitempty"`
	// Stats carries HyFD's full run telemetry (phase timings, comparison
	// and validation counts) when the run completed; nil for baselines.
	Stats *core.Stats `json:"stats,omitempty"`
	// CoverDigest is the sha256 fingerprint of the run's complete FD cover
	// in canonical order, recorded when Spec.Digest is set. Byte-equal
	// digests — incremental vs cold, one worker vs many — certify identical
	// covers without embedding thousands of FDs in the artifact.
	CoverDigest string `json:"cover_digest,omitempty"`
	// RankedDigest is a canonical rendering of a TopK run's output
	// ("rank:score:lhs->rhs" per entry) — byte-equal digests across thread
	// counts are the determinism check of the ranked experiment.
	RankedDigest string `json:"ranked_digest,omitempty"`
	// Metrics is the run's metrics snapshot when Spec.Metrics was set.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// Materialize generates the relation a spec runs against.
func Materialize(spec Spec) (*relation.Relation, error) {
	d, err := datasets.ByName(spec.Dataset)
	if err != nil {
		return nil, err
	}
	scale := 1.0
	if spec.Rows > 0 {
		scale = float64(spec.Rows) / float64(d.Rows)
	}
	rel := d.Generate(scale)
	if spec.Rows > 0 && rel.NumRows() > spec.Rows {
		rel = rel.Head(spec.Rows)
		rel.Name = d.Name
	}
	if spec.Cols > 0 && spec.Cols < rel.NumCols() {
		rel = rel.Project(spec.Cols)
		rel.Name = d.Name
	}
	return rel, nil
}

// ExecuteInProcess materializes the spec's dataset and measures the run in
// the current process. Dataset generation time is excluded; peak heap is
// sampled concurrently.
func ExecuteInProcess(spec Spec) Result {
	//hyfdvet:allow ctxflow — no-context compat shim; the context variant is the primary API
	return ExecuteInProcessContext(context.Background(), spec)
}

// ExecuteInProcessContext is ExecuteInProcess under a caller context: a
// deadline or cancellation aborts the measured run and is reported as a
// timeout in the result.
func ExecuteInProcessContext(ctx context.Context, spec Spec) Result {
	rel, err := Materialize(spec)
	if err != nil {
		return Result{Spec: spec, Switches: -1, Err: err.Error()}
	}
	return MeasureContext(ctx, spec, rel)
}

// Measure runs the spec's algorithm against an already-materialized
// relation.
func Measure(spec Spec, rel *relation.Relation) Result {
	//hyfdvet:allow ctxflow — no-context compat shim; the context variant is the primary API
	return MeasureContext(context.Background(), spec, rel)
}

// MeasureContext is Measure under a caller context. A run aborted by the
// context reports TimedOut with the elapsed time instead of an FD count.
func MeasureContext(ctx context.Context, spec Spec, rel *relation.Relation) Result {
	res := Result{Spec: spec, Switches: -1}

	runtime.GC()
	var peak atomic.Uint64
	stop := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		var ms runtime.MemStats
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak.Load() {
					peak.Store(ms.HeapAlloc)
				}
			}
		}
	}()

	setErr := func(err error) {
		res.Err = err.Error()
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			res.TimedOut = true
		}
	}

	// A zero Threads pins HyFD to single-threaded execution here (the
	// engine's own zero default is all CPUs): the paper's tables contrast
	// single-threaded variants, and speedup experiments request workers
	// explicitly.
	threads := spec.Threads
	if threads == 0 {
		threads = 1
	}

	// An Incremental spec pays for the base snapshot and its cover before
	// the timer: Seconds then measures exactly the per-batch maintenance
	// cost — Apply plus Maintain — that the incremental experiment contrasts
	// with a cold Prepare + full discovery over the same final relation.
	var (
		incBase  *dataset.Dataset
		incCover *fd.Set
		incDelta dataset.Delta
	)
	if spec.Incremental {
		n, k := rel.NumRows(), spec.DeltaRows
		if k <= 0 || k >= n {
			res.Err = fmt.Sprintf("incremental spec needs 0 < delta_rows < rows (got %d of %d)", k, n)
		} else {
			incDelta.Inserts = append(incDelta.Inserts, rel.Rows[n-k:]...)
			baseRel := rel.Head(n - k)
			baseRel.Name = rel.Name
			prepStart := time.Now()
			d, err := dataset.Prepare(ctx, baseRel, dataset.Options{Threads: threads})
			if err == nil {
				incBase = d
				incCover, _, err = core.DiscoverDataset(ctx, d, core.Config{Threads: threads})
			}
			res.PrepSeconds = time.Since(prepStart).Seconds()
			if err != nil {
				setErr(err)
			}
		}
	}

	// A Warm spec prepares the Dataset before the timer starts: Seconds
	// then covers only the discovery work, and PrepSeconds records the
	// excluded one-off preprocessing cost (the quantity reuse amortizes).
	var ds *dataset.Dataset
	if spec.Warm && !spec.PrepOnly && !spec.Incremental {
		prepStart := time.Now()
		d, err := dataset.Prepare(ctx, rel, dataset.Options{Threads: threads})
		res.PrepSeconds = time.Since(prepStart).Seconds()
		if err != nil {
			setErr(err)
		} else {
			ds = d
		}
	}

	start := time.Now()
	if res.Err != "" {
		// Pre-timer preparation failed; there is nothing to measure.
	} else if spec.Incremental {
		snap, err := incBase.Apply(ctx, incDelta)
		var set *fd.Set
		var istats incremental.Stats
		if err == nil {
			set, istats, err = incremental.Maintain(ctx, snap, incCover, incremental.Config{Threads: threads})
		}
		res.Seconds = time.Since(start).Seconds()
		if err != nil {
			setErr(err)
		} else {
			res.FDs = set.Size()
			res.Stats = &core.Stats{
				Rows: snap.NumRows(), Cols: snap.NumCols(), FDCount: set.Size(),
				Complete: true, Warm: true, Threads: threads,
				Validations:       int64(istats.Checks),
				PreprocessingTime: snap.PreprocessingTime(),
			}
			if spec.Digest {
				res.CoverDigest = coverDigest(set)
			}
		}
	} else if spec.PrepOnly {
		d, err := dataset.Prepare(ctx, rel, dataset.Options{Threads: threads})
		res.Seconds = time.Since(start).Seconds()
		res.FDs = 0
		if err != nil {
			setErr(err)
		}
		runtime.KeepAlive(d)
	} else if spec.Algorithm == HyFDName {
		var reg *metrics.Registry
		if spec.Metrics {
			reg = metrics.NewRegistry()
		}
		cfg := core.Config{
			Threads:             threads,
			EfficiencyThreshold: spec.Threshold,
			MaxLhsSize:          spec.MaxLhs,
			Metrics:             reg,
		}
		if spec.TopK > 0 {
			var (
				ranked []rank.FD
				stats  *core.Stats
				err    error
			)
			if spec.Warm {
				ranked, stats, err = core.DiscoverRankedDataset(ctx, ds, cfg, spec.TopK, 0)
			} else {
				ranked, stats, err = core.DiscoverRanked(ctx, rel, cfg, spec.TopK, 0)
			}
			res.Seconds = time.Since(start).Seconds()
			if err != nil {
				setErr(err)
			} else {
				res.FDs = len(ranked)
				res.Switches = stats.PhaseSwitches
				res.Stats = stats
				res.RankedDigest = rankedDigest(ranked)
				if reg != nil {
					snap := reg.Snapshot()
					res.Metrics = &snap
				}
			}
		} else {
			var (
				set   *fd.Set
				stats *core.Stats
				err   error
			)
			if spec.Warm {
				set, stats, err = core.DiscoverDataset(ctx, ds, cfg)
			} else {
				set, stats, err = core.Discover(ctx, rel, cfg)
			}
			res.Seconds = time.Since(start).Seconds()
			if err != nil {
				setErr(err)
			} else {
				res.FDs = set.Size()
				res.Switches = stats.PhaseSwitches
				res.Stats = stats
				if spec.Digest {
					res.CoverDigest = coverDigest(set)
				}
				if reg != nil {
					snap := reg.Snapshot()
					res.Metrics = &snap
				}
			}
		}
	} else {
		alg, ok := baselines()[spec.Algorithm]
		if !ok {
			res.Err = fmt.Sprintf("unknown algorithm %q", spec.Algorithm)
		} else {
			cfg := algorithms.Config{MaxLhsSize: spec.MaxLhs}
			var (
				set *fd.Set
				err error
			)
			if spec.Warm {
				set, err = alg.Discover(ctx, ds, cfg)
			} else {
				set, err = algorithms.DiscoverRelation(ctx, alg, rel, cfg)
			}
			res.Seconds = time.Since(start).Seconds()
			if err != nil {
				setErr(err)
			} else {
				res.FDs = set.Size()
			}
		}
	}
	close(stop)
	<-samplerDone
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak.Load() {
		peak.Store(ms.HeapAlloc)
	}
	res.PeakHeap = peak.Load()
	return res
}

// coverDigest fingerprints a complete FD cover: the sha256 of the set's
// canonical deterministic rendering, hex-encoded.
func coverDigest(set *fd.Set) string {
	sum := sha256.Sum256([]byte(set.String()))
	return hex.EncodeToString(sum[:])
}

// rankedDigest renders a ranked result canonically, one "rank:score:fd"
// entry per line. Two runs over the same relation must produce byte-equal
// digests regardless of thread count — the ranked experiment derives its
// determinism metric from that equality.
func rankedDigest(ranked []rank.FD) string {
	var b strings.Builder
	for _, r := range ranked {
		fmt.Fprintf(&b, "%d:%.12g:%s\n", r.Rank, r.Score, r.FD.String())
	}
	return b.String()
}
