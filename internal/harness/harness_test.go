package harness

import (
	"bytes"
	"strings"
	"testing"

	"hyfd/internal/fd"
	"hyfd/internal/relation"
)

func TestExecuteInProcessHyFD(t *testing.T) {
	res := ExecuteInProcess(Spec{Algorithm: HyFDName, Dataset: "ncvoter", Rows: 300})
	if res.Err != "" {
		t.Fatalf("err: %s", res.Err)
	}
	if res.FDs <= 0 || res.Seconds < 0 || res.PeakHeap == 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Switches < 0 {
		t.Fatalf("HyFD run must report switches: %+v", res)
	}
}

func TestExecuteInProcessBaselineMatchesHyFD(t *testing.T) {
	for _, alg := range []string{"Tane", "Fdep"} {
		res := ExecuteInProcess(Spec{Algorithm: alg, Dataset: "iris", Rows: 150})
		if res.Err != "" {
			t.Fatalf("%s err: %s", alg, res.Err)
		}
		hy := ExecuteInProcess(Spec{Algorithm: HyFDName, Dataset: "iris", Rows: 150})
		if res.FDs != hy.FDs {
			t.Fatalf("%s found %d FDs, HyFD %d", alg, res.FDs, hy.FDs)
		}
	}
}

func TestExecuteInProcessErrors(t *testing.T) {
	if res := ExecuteInProcess(Spec{Algorithm: HyFDName, Dataset: "nope"}); res.Err == "" {
		t.Fatal("unknown dataset accepted")
	}
	if res := ExecuteInProcess(Spec{Algorithm: "NoAlg", Dataset: "iris"}); res.Err == "" {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestMaterializeCapsRowsAndCols(t *testing.T) {
	rel, err := Materialize(Spec{Dataset: "uniprot", Rows: 200, Cols: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() > 200 || rel.NumCols() != 10 {
		t.Fatalf("dims %dx%d", rel.NumRows(), rel.NumCols())
	}
	if rel.Name != "uniprot" {
		t.Fatalf("name %q", rel.Name)
	}
}

// TestIncrementalMeasurement runs the incremental path in-process and pins
// its exactness contract: the maintained cover's digest equals the cold
// run's over the same final relation.
func TestIncrementalMeasurement(t *testing.T) {
	cold := ExecuteInProcess(Spec{Algorithm: HyFDName, Dataset: "bridges", Rows: 300, Threads: 1, Digest: true})
	if cold.Err != "" {
		t.Fatalf("cold run: %s", cold.Err)
	}
	if cold.CoverDigest == "" {
		t.Fatal("Digest spec produced no cover digest")
	}
	inc := ExecuteInProcess(Spec{Algorithm: HyFDName, Dataset: "bridges", Rows: 300, Threads: 1,
		DeltaRows: 3, Incremental: true, Digest: true})
	if inc.Err != "" {
		t.Fatalf("incremental run: %s", inc.Err)
	}
	if inc.CoverDigest != cold.CoverDigest || inc.FDs != cold.FDs {
		t.Fatalf("incremental diverges from cold: %d FDs digest %s, want %d FDs digest %s",
			inc.FDs, inc.CoverDigest, cold.FDs, cold.CoverDigest)
	}
	if inc.PrepSeconds <= 0 {
		t.Fatal("incremental run did not report the excluded base cost")
	}
	if bad := ExecuteInProcess(Spec{Algorithm: HyFDName, Dataset: "bridges", Rows: 300,
		Incremental: true}); bad.Err == "" {
		t.Fatal("incremental spec without delta_rows accepted")
	}
}

func TestExperimentsDefinitions(t *testing.T) {
	opts := DefaultOptions()
	exps := Experiments(opts)
	if len(exps) != 10 {
		t.Fatalf("%d experiments", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if len(e.Jobs) == 0 || e.Render == nil || e.Title == "" {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
		ids[e.ID] = true
	}
	for _, id := range []string{"fig6", "fig7", "table1", "table2", "table3", "fig8", "prep", "dataset_reuse", "ranked", "incremental"} {
		if !ids[id] {
			t.Fatalf("experiment %q missing", id)
		}
	}
	if _, err := ByID("fig6", opts); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope", opts); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// Table 1 covers all 17 datasets × 8 algorithms.
	t1, _ := ByID("table1", opts)
	if len(t1.Jobs) != 17*8 {
		t.Fatalf("table1 jobs = %d", len(t1.Jobs))
	}
}

func TestRenderers(t *testing.T) {
	opts := DefaultOptions()
	for _, e := range Experiments(opts) {
		// Fabricate one result per job (no real runs) and render.
		var results []Result
		for i, j := range e.Jobs {
			r := Result{Spec: j, Seconds: float64(i) * 0.1, FDs: i, Switches: 3}
			switch i % 5 {
			case 3:
				r.TimedOut = true
			case 4:
				r.Err = "boom"
			}
			results = append(results, r)
		}
		var buf bytes.Buffer
		e.Render(&buf, results)
		out := buf.String()
		if len(out) == 0 {
			t.Fatalf("%s rendered nothing", e.ID)
		}
		if !strings.Contains(out, "TL") && strings.Contains(e.ID, "table1") {
			t.Fatalf("%s output lacks TL marker:\n%s", e.ID, out)
		}
	}
}

func TestMeasureOnCustomRelation(t *testing.T) {
	rel := relation.New("tiny", []string{"A", "B"})
	rel.AppendRow([]string{"1", "1"})
	rel.AppendRow([]string{"1", "1"})
	res := Measure(Spec{Algorithm: "Fdep", Dataset: "tiny"}, rel)
	if res.Err != "" || res.FDs != 2 {
		t.Fatalf("res = %+v", res)
	}
	// Sanity: matches the reference on the same relation.
	want := fd.BruteForce(rel, relation.NullEqualsNull)
	if res.FDs != want.Size() {
		t.Fatalf("FDs = %d, want %d", res.FDs, want.Size())
	}
}

func TestMaterializeScalesPastNaturalSize(t *testing.T) {
	// Fig 6 sweeps uniprot past its catalog size of 1000 rows.
	rel, err := Materialize(Spec{Dataset: "uniprot", Rows: 2500, Cols: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 2500 {
		t.Fatalf("rows = %d, want 2500", rel.NumRows())
	}
}

func TestPrepOnlyMeasuresPreprocessing(t *testing.T) {
	res := ExecuteInProcess(Spec{
		Algorithm: HyFDName, Dataset: "uniprot",
		Rows: 300, Cols: 16, Threads: 4, PrepOnly: true,
	})
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	if res.Seconds <= 0 {
		t.Fatalf("prep run measured %v seconds", res.Seconds)
	}
	if res.FDs != 0 || res.Stats != nil {
		t.Fatalf("prep-only run produced discovery output: %+v", res)
	}
}

func TestPrepExperimentDerivesSpeedups(t *testing.T) {
	e, err := ByID("prep", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if e.Derive == nil {
		t.Fatal("prep experiment has no Derive")
	}
	// Synthetic results: 2 threads twice as fast as 1.
	results := []Result{
		{Spec: Spec{Threads: 1, PrepOnly: true}, Seconds: 2.0},
		{Spec: Spec{Threads: 2, PrepOnly: true}, Seconds: 1.0},
	}
	d := e.Derive(results)
	if d["prep_seconds_1t"] != 2.0 {
		t.Fatalf("prep_seconds_1t = %v", d["prep_seconds_1t"])
	}
	if d["prep_speedup_2t"] != 2.0 {
		t.Fatalf("prep_speedup_2t = %v", d["prep_speedup_2t"])
	}
	a := NewArtifact(e, results)
	if a.Derived["prep_speedup_2t"] != 2.0 {
		t.Fatalf("artifact derived = %v", a.Derived)
	}
}
