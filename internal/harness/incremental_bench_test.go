package harness

import "testing"

func BenchmarkIncrementalNcvoter(b *testing.B) {
	spec := Spec{Algorithm: HyFDName, Dataset: "ncvoter", Rows: 2000, Threads: 1,
		DeltaRows: 20, Incremental: true, Digest: true}
	for i := 0; i < b.N; i++ {
		if res := ExecuteInProcess(spec); res.Err != "" {
			b.Fatal(res.Err)
		}
	}
}
