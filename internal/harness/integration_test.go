package harness

import (
	"testing"
)

// TestAllAlgorithmsAgreeOnCatalogAnalogs cross-validates every baseline
// against HyFD on (scaled) evaluation dataset analogs — structured data
// with keys, hierarchies, correlations and nulls, unlike the uniform random
// relations of the per-algorithm conformance suites.
func TestAllAlgorithmsAgreeOnCatalogAnalogs(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cases := []Spec{
		{Dataset: "iris", Rows: 150},
		{Dataset: "balance-scale", Rows: 300},
		{Dataset: "bridges", Rows: 108},
		{Dataset: "echocardiogram", Rows: 132},
		{Dataset: "abalone", Rows: 400},
		{Dataset: "breast-cancer", Rows: 300},
	}
	for _, c := range cases {
		c := c
		t.Run(c.Dataset, func(t *testing.T) {
			rel, err := Materialize(c)
			if err != nil {
				t.Fatal(err)
			}
			reference := Measure(Spec{Algorithm: HyFDName, Dataset: c.Dataset}, rel)
			if reference.Err != "" {
				t.Fatalf("HyFD: %s", reference.Err)
			}
			for _, alg := range AlgorithmNames {
				if alg == HyFDName {
					continue
				}
				r := Measure(Spec{Algorithm: alg, Dataset: c.Dataset}, rel)
				if r.Err != "" {
					t.Fatalf("%s: %s", alg, r.Err)
				}
				if r.FDs != reference.FDs {
					t.Fatalf("%s found %d FDs on %s, HyFD found %d",
						alg, r.FDs, c.Dataset, reference.FDs)
				}
			}
		})
	}
}

// TestHyFDVariantsAgreeOnAnalogs compares HyFD configurations (threads,
// thresholds) on structured data — counts must be identical.
func TestHyFDVariantsAgreeOnAnalogs(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	rel, err := Materialize(Spec{Dataset: "ncvoter", Rows: 500})
	if err != nil {
		t.Fatal(err)
	}
	base := Measure(Spec{Algorithm: HyFDName, Dataset: "ncvoter"}, rel)
	if base.Err != "" {
		t.Fatal(base.Err)
	}
	for _, spec := range []Spec{
		{Algorithm: HyFDName, Dataset: "ncvoter", Threads: 8},
		{Algorithm: HyFDName, Dataset: "ncvoter", Threshold: 0.3},
		{Algorithm: HyFDName, Dataset: "ncvoter", Threshold: 0.0005},
	} {
		r := Measure(spec, rel)
		if r.Err != "" || r.FDs != base.FDs {
			t.Fatalf("variant %+v: fds=%d err=%q, want %d", spec, r.FDs, r.Err, base.FDs)
		}
	}
}
