// Serving-capacity harness: deterministic synthetic request traces replayed
// against a live hyfdd server. The trace generator is seeded, so the exact
// request sequence — arrival offsets, dataset mix, workload mix — is
// reproducible bit for bit; only the measured latencies vary with the
// hardware. cmd/bench -exp serving drives RunServing and archives the
// result as BENCH_serving.json (EXPERIMENTS.md documents the methodology).

package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"hyfd"
	"hyfd/internal/metrics"
	"hyfd/internal/server"
)

// TraceDataset is one dataset in a serving trace's workload mix: a synthetic
// catalog dataset scaled to Rows×Cols, registered under Name before the
// replay starts, and then picked per request with probability proportional
// to Weight. Varying Rows across entries is the trace's dataset-size
// distribution.
type TraceDataset struct {
	Name    string  `json:"name"`
	Dataset string  `json:"dataset"`
	Rows    int     `json:"rows,omitempty"`
	Cols    int     `json:"cols,omitempty"`
	Weight  float64 `json:"weight"`
}

// TraceMode weights one discovery mode (fd, afd, ucc) in the workload mix.
type TraceMode struct {
	Mode   string  `json:"mode"`
	Weight float64 `json:"weight"`
}

// ServingTraceSpec fully determines one synthetic request trace. Two specs
// with equal fields generate identical traces (GenTrace is a pure function
// of the spec), which is what makes replays comparable across commits.
type ServingTraceSpec struct {
	// Seed feeds the trace's PRNG; every random choice (arrival jitter,
	// dataset pick, mode pick) derives from it.
	Seed int64 `json:"seed"`
	// Requests is the trace length.
	Requests int `json:"requests"`
	// OfferedRPS is the offered load: the mean arrival rate in requests
	// per second.
	OfferedRPS float64 `json:"offered_rps"`
	// Arrival selects the arrival process: "uniform" (constant spacing),
	// "poisson" (exponential inter-arrivals), or "burst" (groups of
	// BurstSize back-to-back arrivals at the offered mean rate).
	Arrival string `json:"arrival"`
	// BurstSize is the burst arrival group size (0 = 8).
	BurstSize int `json:"burst_size,omitempty"`
	// Datasets is the dataset mix (at least one entry).
	Datasets []TraceDataset `json:"datasets"`
	// Modes is the workload mix (at least one entry).
	Modes []TraceMode `json:"modes"`
	// MaxLhs bounds every job's LHS/UCC size (0 = unbounded).
	MaxLhs int `json:"max_lhs,omitempty"`
	// MaxError is the g3 threshold applied to afd-mode jobs.
	MaxError float64 `json:"max_error,omitempty"`
	// Threads is the per-job engine thread count (0 = server default).
	Threads int `json:"threads,omitempty"`
}

// TraceEvent is one scheduled request of a generated trace.
type TraceEvent struct {
	// OffsetMs is the request's submission time relative to replay start.
	OffsetMs float64 `json:"offset_ms"`
	Dataset  string  `json:"dataset"`
	Mode     string  `json:"mode"`
}

// GenTrace deterministically expands a spec into its request schedule. The
// same spec always yields the same events, independent of hardware, wall
// clock, or previous calls.
func GenTrace(spec ServingTraceSpec) ([]TraceEvent, error) {
	if spec.Requests <= 0 {
		return nil, fmt.Errorf("harness: trace needs requests > 0")
	}
	if spec.OfferedRPS <= 0 {
		return nil, fmt.Errorf("harness: trace needs offered_rps > 0")
	}
	if len(spec.Datasets) == 0 || len(spec.Modes) == 0 {
		return nil, fmt.Errorf("harness: trace needs at least one dataset and one mode")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	interval := 1000 / spec.OfferedRPS // mean spacing in ms
	burst := spec.BurstSize
	if burst <= 0 {
		burst = 8
	}
	events := make([]TraceEvent, spec.Requests)
	offset := 0.0
	for i := range events {
		switch spec.Arrival {
		case "", "uniform":
			offset = float64(i) * interval
		case "poisson":
			if i > 0 {
				offset += rng.ExpFloat64() * interval
			}
		case "burst":
			// Group arrivals: burst members land together, groups are
			// spaced so the mean rate stays OfferedRPS.
			offset = float64(i/burst) * interval * float64(burst)
		default:
			return nil, fmt.Errorf("harness: unknown arrival process %q (uniform, poisson, burst)", spec.Arrival)
		}
		events[i] = TraceEvent{
			OffsetMs: offset,
			Dataset:  spec.Datasets[weightedPick(rng, datasetWeights(spec.Datasets))].Name,
			Mode:     spec.Modes[weightedPick(rng, modeWeights(spec.Modes))].Mode,
		}
	}
	return events, nil
}

func datasetWeights(ds []TraceDataset) []float64 {
	w := make([]float64, len(ds))
	for i, d := range ds {
		w[i] = d.Weight
	}
	return w
}

func modeWeights(ms []TraceMode) []float64 {
	w := make([]float64, len(ms))
	for i, m := range ms {
		w[i] = m.Weight
	}
	return w
}

// weightedPick draws an index with probability proportional to weights;
// non-positive weights never win unless all are non-positive (then index 0).
func weightedPick(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := rng.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// LatencyStats condenses a latency sample into the serving report's
// percentiles (milliseconds).
type LatencyStats struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// latencyStats computes the percentile summary of a sample (nearest-rank on
// the sorted sample; zero value for an empty sample).
func latencyStats(sample []float64) LatencyStats {
	if len(sample) == 0 {
		return LatencyStats{}
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return LatencyStats{
		P50:  rank(0.50),
		P95:  rank(0.95),
		P99:  rank(0.99),
		Max:  sorted[len(sorted)-1],
		Mean: sum / float64(len(sorted)),
	}
}

// ServingLevel is the measured outcome of replaying one trace (one offered
// load level) against a live server.
type ServingLevel struct {
	Spec ServingTraceSpec `json:"spec"`
	// WallSeconds is the replay's wall time: first submission to last
	// terminal job status.
	WallSeconds float64 `json:"wall_seconds"`
	Requests    int     `json:"requests"`
	// Accepted counts 202 admissions, Rejected the 429 admission-control
	// rejections; Done/Failed/Canceled split the accepted jobs by terminal
	// status.
	Accepted   int     `json:"accepted"`
	Rejected   int     `json:"rejected_429"`
	Done       int     `json:"done"`
	Failed     int     `json:"failed"`
	Canceled   int     `json:"canceled"`
	RejectRate float64 `json:"reject_rate"`
	// AchievedRPS is the completed-job throughput over the replay wall time.
	AchievedRPS float64 `json:"achieved_rps"`
	// LatencyMs is the client-observed end-to-end latency (submit → terminal
	// status observed) of accepted jobs; QueueMs and RunMs are the
	// server-reported queue-wait and execution splits.
	LatencyMs LatencyStats `json:"latency_ms"`
	QueueMs   LatencyStats `json:"queue_ms"`
	RunMs     LatencyStats `json:"run_ms"`
	// MaxQueueDepthSampled is the deepest /healthz queue the client sampler
	// observed; PeakQueueDepth is the server's own hyfdd_queue_depth_peak
	// gauge (authoritative — the sampler can miss instants).
	MaxQueueDepthSampled int `json:"max_queue_depth_sampled"`
	PeakQueueDepth       int `json:"peak_queue_depth"`
	// SpanQueueWaitP99Ms and SpanRunP99Ms are the server-side p99 of the
	// queue.wait and run stages from the hyfdd_span_seconds histogram —
	// the flight-recorder-derived split of serving latency, measured by
	// the server itself rather than inferred by the polling client.
	SpanQueueWaitP99Ms float64 `json:"span_queue_wait_p99_ms"`
	SpanRunP99Ms       float64 `json:"span_run_p99_ms"`
	// MaxPrepareNs is the largest per-job preprocessing time reported in
	// job stats. Jobs run warm against registered datasets, so this stays
	// near zero — the prepare-once contract observed through the API.
	MaxPrepareNs int64 `json:"max_prepare_ns"`
	// ResultCounts records the result cardinality per dataset/mode pair;
	// every job on the same pair must agree (checked during replay), which
	// pins result determinism through the serving path.
	ResultCounts map[string]int `json:"result_counts"`
}

// replayConfig tunes the replay client's polling cadence.
type replayConfig struct {
	client         *http.Client
	pollInterval   time.Duration
	sampleInterval time.Duration
}

// ReplayTrace replays a generated trace against a live server at baseURL:
// each event is submitted at its scheduled offset, accepted jobs are polled
// to a terminal status, and the level report aggregates the outcome.
// Datasets named by the trace must already be registered.
func ReplayTrace(ctx context.Context, baseURL string, spec ServingTraceSpec, events []TraceEvent) (*ServingLevel, error) {
	return replayTrace(ctx, baseURL, spec, events, replayConfig{
		client:         &http.Client{Timeout: 30 * time.Second},
		pollInterval:   time.Millisecond,
		sampleInterval: 2 * time.Millisecond,
	})
}

// requestOutcome is one replayed request's record.
type requestOutcome struct {
	rejected  bool
	status    string
	latencyMs float64
	queueMs   float64
	runMs     float64
	prepNs    int64
	results   int
	key       string // dataset/mode
	err       error
}

func replayTrace(ctx context.Context, baseURL string, spec ServingTraceSpec, events []TraceEvent, cfg replayConfig) (*ServingLevel, error) {
	outcomes := make([]requestOutcome, len(events))
	start := time.Now()

	// Queue-depth sampler: poll /healthz for the queued count while the
	// replay is in flight.
	sampleCtx, stopSampler := context.WithCancel(ctx)
	defer stopSampler()
	var maxDepth int
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		ticker := time.NewTicker(cfg.sampleInterval)
		defer ticker.Stop()
		for {
			select {
			case <-sampleCtx.Done():
				return
			case <-ticker.C:
				if d, ok := sampleQueueDepth(cfg.client, baseURL); ok && d > maxDepth {
					maxDepth = d
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for i, ev := range events {
		wg.Add(1)
		go func(i int, ev TraceEvent) {
			defer wg.Done()
			due := start.Add(time.Duration(ev.OffsetMs * float64(time.Millisecond)))
			if wait := time.Until(due); wait > 0 {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
					outcomes[i] = requestOutcome{err: ctx.Err()}
					return
				}
			}
			outcomes[i] = replayOne(ctx, baseURL, spec, ev, cfg)
		}(i, ev)
	}
	wg.Wait()
	wall := time.Since(start)
	stopSampler()
	samplerWG.Wait()

	level := &ServingLevel{
		Spec:         spec,
		WallSeconds:  wall.Seconds(),
		Requests:     len(events),
		ResultCounts: map[string]int{},
	}
	var latencies, queueWaits, runTimes []float64
	for _, o := range outcomes {
		if o.err != nil {
			return nil, fmt.Errorf("harness: replay request failed: %w", o.err)
		}
		if o.rejected {
			level.Rejected++
			continue
		}
		level.Accepted++
		switch o.status {
		case "done":
			level.Done++
			latencies = append(latencies, o.latencyMs)
			queueWaits = append(queueWaits, o.queueMs)
			runTimes = append(runTimes, o.runMs)
			if o.prepNs > level.MaxPrepareNs {
				level.MaxPrepareNs = o.prepNs
			}
			if prev, seen := level.ResultCounts[o.key]; seen && prev != o.results {
				return nil, fmt.Errorf("harness: nondeterministic serving result for %s: %d vs %d dependencies", o.key, prev, o.results)
			}
			level.ResultCounts[o.key] = o.results
		case "canceled":
			level.Canceled++
		default:
			level.Failed++
		}
	}
	level.RejectRate = float64(level.Rejected) / float64(level.Requests)
	if level.WallSeconds > 0 {
		level.AchievedRPS = float64(level.Done) / level.WallSeconds
	}
	level.LatencyMs = latencyStats(latencies)
	level.QueueMs = latencyStats(queueWaits)
	level.RunMs = latencyStats(runTimes)
	level.MaxQueueDepthSampled = maxDepth
	level.PeakQueueDepth = scrapePeakQueueDepth(cfg.client, baseURL)
	level.SpanQueueWaitP99Ms = scrapeSpanP99Ms(cfg.client, baseURL, "queue.wait")
	level.SpanRunP99Ms = scrapeSpanP99Ms(cfg.client, baseURL, "run")
	return level, nil
}

// replayOne submits one job and polls it to a terminal state.
func replayOne(ctx context.Context, baseURL string, spec ServingTraceSpec, ev TraceEvent, cfg replayConfig) requestOutcome {
	out := requestOutcome{key: ev.Dataset + "/" + ev.Mode}
	req := server.JobRequest{
		Dataset:  ev.Dataset,
		Mode:     ev.Mode,
		MaxLhs:   spec.MaxLhs,
		Threads:  spec.Threads,
		MaxError: spec.MaxError,
	}
	body, err := json.Marshal(req)
	if err != nil {
		out.err = err
		return out
	}
	submitted := time.Now()
	resp, err := cfg.client.Post(baseURL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		out.err = err
		return out
	}
	var view server.JobView
	decodeErr := json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		out.rejected = true
		return out
	case resp.StatusCode != http.StatusAccepted:
		out.err = fmt.Errorf("POST /v1/jobs: unexpected status %d", resp.StatusCode)
		return out
	case decodeErr != nil:
		out.err = decodeErr
		return out
	}

	for {
		select {
		case <-ctx.Done():
			out.err = ctx.Err()
			return out
		case <-time.After(cfg.pollInterval):
		}
		resp, err := cfg.client.Get(baseURL + "/v1/jobs/" + view.ID)
		if err != nil {
			out.err = err
			return out
		}
		var cur server.JobView
		decodeErr := json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if decodeErr != nil {
			out.err = decodeErr
			return out
		}
		switch cur.Status {
		case server.StatusDone, server.StatusFailed, server.StatusCanceled:
			out.status = string(cur.Status)
			out.latencyMs = time.Since(submitted).Seconds() * 1000
			out.queueMs = cur.QueueMs
			out.runMs = cur.RunMs
			if cur.Result != nil {
				out.results = cur.Result.Count
				if cur.Result.Stats != nil {
					out.prepNs = cur.Result.Stats.PreprocessingTime.Nanoseconds()
				}
			}
			return out
		}
	}
}

// sampleQueueDepth reads the queued count from /healthz.
func sampleQueueDepth(client *http.Client, baseURL string) (int, bool) {
	resp, err := client.Get(baseURL + "/healthz")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	var h struct {
		Queued int `json:"queued"`
	}
	if json.NewDecoder(resp.Body).Decode(&h) != nil {
		return 0, false
	}
	return h.Queued, true
}

// scrapePeakQueueDepth reads the server's hyfdd_queue_depth_peak gauge from
// /metrics.json (0 when the surface is unavailable).
func scrapePeakQueueDepth(client *http.Client, baseURL string) int {
	resp, err := client.Get(baseURL + "/metrics.json")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var snap metrics.Snapshot
	if json.NewDecoder(resp.Body).Decode(&snap) != nil {
		return 0
	}
	peak, _ := snap.Gauge("hyfdd_queue_depth_peak")
	return int(peak)
}

// scrapeSpanP99Ms reads the p99 of one hyfdd_span_seconds{span} stage from
// /metrics.json, in milliseconds (0 when the surface or series is absent).
func scrapeSpanP99Ms(client *http.Client, baseURL, span string) float64 {
	resp, err := client.Get(baseURL + "/metrics.json")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var snap metrics.Snapshot
	if json.NewDecoder(resp.Body).Decode(&snap) != nil {
		return 0
	}
	hs, ok := snap.Histogram("hyfdd_span_seconds", "span", span)
	if !ok {
		return 0
	}
	return hs.Quantiles["p99"] * 1000
}

// waitReady polls GET /readyz until the server reports ready (or the
// deadline passes) — the same startup gate a production load balancer uses.
func waitReady(ctx context.Context, client *http.Client, baseURL string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(baseURL + "/readyz")
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ok {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("harness: server not ready after %s", timeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// ServingOptions parameterizes RunServing: the server shape plus the trace
// family replayed at each offered load level.
type ServingOptions struct {
	// Workers and QueueDepth shape the server under test.
	Workers    int
	QueueDepth int
	// Requests is the per-level trace length; LoadsRPS the offered load
	// levels (the capacity sweep's x-axis, ≥ 3 for the committed artifact).
	Requests int
	LoadsRPS []float64
	// Seed, Arrival, Threads, MaxLhs, MaxError, Datasets, Modes are the
	// trace-family parameters shared by every level.
	Seed     int64
	Arrival  string
	Threads  int
	MaxLhs   int
	MaxError float64
	Datasets []TraceDataset
	Modes    []TraceMode
}

// DefaultServingOptions is the committed BENCH_serving.json configuration:
// a small fixed server (2 workers, queue 16) swept across under-load,
// saturation, and over-load so the three regimes — low latency, queue
// growth, admission-control rejection — all appear in one artifact.
func DefaultServingOptions() ServingOptions {
	return ServingOptions{
		Workers:    2,
		QueueDepth: 16,
		Requests:   400,
		LoadsRPS:   []float64{25, 100, 400},
		Seed:       1,
		Arrival:    "poisson",
		Threads:    1,
		MaxLhs:     4,
		MaxError:   0.05,
		Datasets: []TraceDataset{
			{Name: "small", Dataset: "iris", Weight: 0.45},
			{Name: "medium", Dataset: "bridges", Weight: 0.35},
			{Name: "large", Dataset: "abalone", Rows: 1000, Weight: 0.20},
		},
		Modes: []TraceMode{
			{Mode: "fd", Weight: 0.6},
			{Mode: "ucc", Weight: 0.25},
			{Mode: "afd", Weight: 0.15},
		},
	}
}

// ServingArtifact is the machine-readable record of one serving-capacity
// sweep (BENCH_serving.json).
type ServingArtifact struct {
	Experiment  string         `json:"experiment"`
	Title       string         `json:"title"`
	CreatedUnix int64          `json:"created_unix"`
	GoVersion   string         `json:"go_version"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	NumCPU      int            `json:"num_cpu"`
	// GOMAXPROCS and SingleCPUCaveat mirror Artifact: the scheduler ceiling
	// the sweep actually ran under, and whether one schedulable CPU makes
	// the concurrency results time-slicing artifacts.
	GOMAXPROCS      int            `json:"gomaxprocs"`
	SingleCPUCaveat bool           `json:"single_cpu_caveat"`
	Workers         int            `json:"workers"`
	QueueDepth      int            `json:"queue_depth"`
	Levels          []ServingLevel `json:"levels"`
}

// Filename returns the artifact's canonical file name.
func (a ServingArtifact) Filename() string { return "BENCH_serving.json" }

// WriteFile writes the artifact as indented JSON into dir and returns the
// full path.
func (a ServingArtifact) WriteFile(dir string) (string, error) {
	path := filepath.Join(dir, a.Filename())
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// RunServing stands up an in-process hyfdd server (the real mux and worker
// pool behind an httptest listener), registers the trace's datasets once,
// and replays one trace per offered load level against a fresh server
// instance (fresh so queue-depth gauges and job counters are per-level).
func RunServing(ctx context.Context, opts ServingOptions) (*ServingArtifact, error) {
	if len(opts.LoadsRPS) == 0 {
		return nil, fmt.Errorf("harness: serving sweep needs at least one load level")
	}
	art := &ServingArtifact{
		Experiment:  "serving",
		Title:       "Serving capacity — offered load vs latency, queue depth, and 429 rate",
		CreatedUnix: time.Now().Unix(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Workers:     opts.Workers,
		QueueDepth:  opts.QueueDepth,
	}
	art.SingleCPUCaveat = art.NumCPU <= 1 || art.GOMAXPROCS <= 1
	for _, rps := range opts.LoadsRPS {
		spec := ServingTraceSpec{
			Seed:       opts.Seed,
			Requests:   opts.Requests,
			OfferedRPS: rps,
			Arrival:    opts.Arrival,
			Datasets:   opts.Datasets,
			Modes:      opts.Modes,
			MaxLhs:     opts.MaxLhs,
			MaxError:   opts.MaxError,
			Threads:    opts.Threads,
		}
		level, err := runServingLevel(ctx, opts, spec)
		if err != nil {
			return nil, err
		}
		art.Levels = append(art.Levels, *level)
	}
	return art, nil
}

// runServingLevel measures one offered load level against a fresh server.
func runServingLevel(ctx context.Context, opts ServingOptions, spec ServingTraceSpec) (*ServingLevel, error) {
	events, err := GenTrace(spec)
	if err != nil {
		return nil, err
	}
	reg := hyfd.NewMetricsRegistry()
	srv := server.New(ctx, server.Config{
		Workers:    opts.Workers,
		QueueDepth: opts.QueueDepth,
		Metrics:    reg,
	})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Detached from ctx on purpose: the post-level drain must run to
	// completion even when the sweep's own context has been canceled.
	shutdownCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 30*time.Second)
	defer cancel()
	defer srv.Shutdown(shutdownCtx)

	client := ts.Client()
	if err := waitReady(ctx, client, ts.URL, 5*time.Second); err != nil {
		return nil, err
	}
	for _, d := range spec.Datasets {
		if err := registerTraceDataset(client, ts.URL, d, spec.Threads); err != nil {
			return nil, err
		}
	}
	return replayTrace(ctx, ts.URL, spec, events, replayConfig{
		client:         client,
		pollInterval:   time.Millisecond,
		sampleInterval: 2 * time.Millisecond,
	})
}

// registerTraceDataset registers one synthetic dataset over the API, so the
// replay exercises exactly the path a production client would.
func registerTraceDataset(client *http.Client, baseURL string, d TraceDataset, threads int) error {
	req := server.DatasetRequest{
		Name:     d.Name,
		Generate: &server.GenerateSpec{Dataset: d.Dataset, Rows: d.Rows, Cols: d.Cols},
		Threads:  threads,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := client.Post(baseURL+"/v1/datasets", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("harness: registering %q: status %d: %s", d.Name, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// RenderServing writes the human-readable capacity table cmd/bench prints
// alongside the artifact.
func RenderServing(w io.Writer, art *ServingArtifact) {
	fmt.Fprintf(w, "serving capacity — workers=%d queue=%d (%d requests per level)\n",
		art.Workers, art.QueueDepth, requestsPerLevel(art))
	fmt.Fprintf(w, "%10s %10s %8s %8s | %9s %9s %9s | %9s %9s | %6s %6s\n",
		"offered", "achieved", "done", "429", "p50 ms", "p95 ms", "p99 ms", "qw p99", "run p99", "queue", "rej %")
	for _, l := range art.Levels {
		fmt.Fprintf(w, "%8.0f/s %8.1f/s %8d %8d | %9.2f %9.2f %9.2f | %9.2f %9.2f | %6d %5.1f%%\n",
			l.Spec.OfferedRPS, l.AchievedRPS, l.Done, l.Rejected,
			l.LatencyMs.P50, l.LatencyMs.P95, l.LatencyMs.P99,
			l.SpanQueueWaitP99Ms, l.SpanRunP99Ms,
			l.PeakQueueDepth, 100*l.RejectRate)
	}
}

func requestsPerLevel(art *ServingArtifact) int {
	if len(art.Levels) == 0 {
		return 0
	}
	return art.Levels[0].Requests
}
