package harness

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func servingTestSpec() ServingTraceSpec {
	return ServingTraceSpec{
		Seed:       7,
		Requests:   64,
		OfferedRPS: 500,
		Arrival:    "poisson",
		Datasets: []TraceDataset{
			{Name: "a", Dataset: "iris", Weight: 0.7},
			{Name: "b", Dataset: "bridges", Weight: 0.3},
		},
		Modes: []TraceMode{
			{Mode: "fd", Weight: 0.5},
			{Mode: "ucc", Weight: 0.5},
		},
	}
}

// TestGenTraceDeterministic: the same spec must expand into the identical
// event sequence — the property that makes replays comparable across runs.
func TestGenTraceDeterministic(t *testing.T) {
	spec := servingTestSpec()
	a, err := GenTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec generated different traces")
	}
	spec.Seed++
	c, err := GenTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated the same trace")
	}
}

// TestGenTraceArrivals: every arrival process must be non-decreasing in time
// and hit the offered mean rate to within sampling error.
func TestGenTraceArrivals(t *testing.T) {
	for _, arrival := range []string{"uniform", "poisson", "burst"} {
		spec := servingTestSpec()
		spec.Arrival = arrival
		spec.Requests = 2000
		events, err := GenTrace(spec)
		if err != nil {
			t.Fatalf("%s: %v", arrival, err)
		}
		last := -1.0
		for i, ev := range events {
			if ev.OffsetMs < last {
				t.Fatalf("%s: offset %d went backwards (%f after %f)", arrival, i, ev.OffsetMs, last)
			}
			last = ev.OffsetMs
			if ev.Dataset == "" || ev.Mode == "" {
				t.Fatalf("%s: event %d missing dataset/mode", arrival, i)
			}
		}
		// Mean rate over the whole trace: requests / span ≈ OfferedRPS.
		span := events[len(events)-1].OffsetMs / 1000
		if span <= 0 {
			t.Fatalf("%s: zero trace span", arrival)
		}
		rate := float64(len(events)-1) / span
		if rate < spec.OfferedRPS*0.8 || rate > spec.OfferedRPS*1.25 {
			t.Fatalf("%s: realized mean rate %.1f req/s, offered %.1f", arrival, rate, spec.OfferedRPS)
		}
	}
	spec := servingTestSpec()
	spec.Arrival = "bogus"
	if _, err := GenTrace(spec); err == nil {
		t.Fatal("unknown arrival process must be rejected")
	}
}

// TestGenTraceMix: the weighted picks must roughly honor their weights.
func TestGenTraceMix(t *testing.T) {
	spec := servingTestSpec()
	spec.Requests = 4000
	events, err := GenTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ev := range events {
		counts[ev.Dataset]++
	}
	frac := float64(counts["a"]) / float64(len(events))
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("dataset 'a' (weight 0.7) drew %.2f of the trace", frac)
	}
}

// TestRunServingEndToEnd: a miniature capacity sweep against the in-process
// server must produce a well-formed artifact with warm jobs (near-zero
// per-job prepare time) and deterministic per-dataset result counts.
func TestRunServingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("stands up a server and replays traces")
	}
	opts := DefaultServingOptions()
	opts.Requests = 30
	opts.LoadsRPS = []float64{200, 1000}
	opts.Datasets = []TraceDataset{
		{Name: "small", Dataset: "iris", Weight: 0.6},
		{Name: "medium", Dataset: "bridges", Weight: 0.4},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	art, err := RunServing(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Levels) != 2 {
		t.Fatalf("want 2 levels, got %d", len(art.Levels))
	}
	for i, l := range art.Levels {
		if l.Requests != 30 || l.Accepted+l.Rejected != 30 {
			t.Fatalf("level %d: %d accepted + %d rejected != %d requests", i, l.Accepted, l.Rejected, l.Requests)
		}
		if l.Done == 0 {
			t.Fatalf("level %d: no job finished", i)
		}
		if l.Done > 0 && l.LatencyMs.P50 <= 0 {
			t.Fatalf("level %d: missing latency percentiles: %+v", i, l.LatencyMs)
		}
		if len(l.ResultCounts) == 0 {
			t.Fatalf("level %d: no result counts recorded", i)
		}
		// Warm contract: preprocessing was paid at registration, so no job
		// may report more than a millisecond of prepare time.
		if l.MaxPrepareNs > int64(time.Millisecond) {
			t.Fatalf("level %d: warm job reported %dns prepare time", i, l.MaxPrepareNs)
		}
	}
	// Same dataset/mode pair ⇒ same result count on every level (the levels
	// replay the same workload mix against the same data).
	for key, n := range art.Levels[0].ResultCounts {
		if m, ok := art.Levels[1].ResultCounts[key]; ok && m != n {
			t.Fatalf("%s: level result counts diverge (%d vs %d)", key, n, m)
		}
	}

	dir := t.TempDir()
	path, err := art.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_serving.json" {
		t.Fatalf("unexpected artifact name %s", path)
	}
	var back ServingArtifact
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Experiment != "serving" || len(back.Levels) != 2 || back.GoVersion == "" {
		t.Fatalf("artifact round trip lost fields: %+v", back)
	}
}
