// Package incremental maintains a minimal FD cover across dataset snapshots
// without re-running full discovery, in the spirit of EAIFD (PAPERS.md,
// arXiv 2601.16025): a delta can only change the validity of candidates its
// touched records participate in, so maintenance re-validates exactly those
// and repairs the cover locally.
//
// # Breakable-candidate derivation
//
// Let T_r be the set of attributes in which record r's PLI-compressed value
// is not a singleton. Two records can agree on attribute a only if both are
// non-singleton in a, so every violating pair of an FD X→A agrees — is
// non-singleton — on all of X:
//
//   - Inserts can only invalidate X→A if some inserted record r has X ⊆ T_r
//     (T_r computed on the new snapshot). Base FDs failing this filter stay
//     valid without a check. Moreover, every insert-phase candidate — a cover
//     FD, or a specialization grown from one — was valid on the parent's rows
//     (cover FDs because the base cover is exact, specializations because
//     validity is upward-closed in the LHS), so a violation must pair an
//     inserted record with a record agreeing on all of X. The insert phase
//     therefore materializes the delta's negative cover — the distinct agree
//     sets of every pair that involves an inserted record — once, and each
//     candidate check reduces to subset tests against those sets: per-batch
//     cost scales with the delta, not the data.
//   - Deletes can only make X'→A newly valid if every parent-violating pair
//     of X'→A lost an endpoint, so some deleted record r had X' ⊆ T_r (T_r
//     computed on the parent's compressed records, which Apply preserves in
//     Provenance.DeletedRecords). The maximal such candidate per (r, A) is
//     T_r \ {A}; validity is upward-closed in the LHS, so if that top
//     candidate is invalid nothing below it flipped either.
//
// # Cover repair
//
// Maintenance seeds an FDTree with the base cover, then: (1) for every
// deleted record's touched set, checks the top candidate per RHS and — where
// valid — descends to its minimal valid generalizations (re-generalization);
// (2) removes base FDs that an insert broke and specializes them upward,
// with the validator's minimality prunes, until validity is restored. A
// final minimization pass yields the canonical minimal cover, which is
// unique — so the maintained result is byte-identical to a cold re-run.
package incremental

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"time"

	"hyfd/internal/bitset"
	"hyfd/internal/dataset"
	"hyfd/internal/fd"
	"hyfd/internal/fdtree"
	"hyfd/internal/pli"
	"hyfd/internal/trace"
	"hyfd/internal/validator"
)

// Config configures a maintenance run.
type Config struct {
	// Threads is the worker count for batched candidate re-validation;
	// 1 runs sequentially, any value <= 0 picks the snapshot's resolved
	// thread count. Every thread count yields bit-for-bit identical
	// results.
	Threads int
	// Observer receives trace events (IncrementalCandidates,
	// IncrementalDone); nil disables tracing.
	Observer trace.Observer
}

// Stats reports what a maintenance run did.
type Stats struct {
	// BaseFDs is the size of the maintained base cover.
	BaseFDs int
	// Breakable counts base FDs the inserted records could have broken.
	Breakable int
	// DeleteSeeds counts distinct touched-attribute sets of deleted records.
	DeleteSeeds int
	// Checks counts direct-refinement validations performed.
	Checks int
	// Specialized counts candidates added while repairing broken FDs.
	Specialized int
	// Generalized counts FDs added by delete-driven re-generalization.
	Generalized int
	// FDs is the size of the maintained cover.
	FDs int
	// Duration is the wall-clock time of the maintenance run.
	Duration time.Duration
}

// ErrNotDelta reports that the snapshot has no provenance — it was produced
// by Prepare, not Apply, so there is no delta to maintain against.
var ErrNotDelta = errors.New("incremental: snapshot has no delta provenance")

// Maintain updates the minimal FD cover base — exact for the snapshot's
// parent — to the minimal FD cover of the delta snapshot snap. The returned
// set is freshly built; base is not mutated.
func Maintain(ctx context.Context, snap *dataset.Dataset, base *fd.Set, cfg Config) (*fd.Set, Stats, error) {
	if ctx == nil {
		//hyfdvet:allow ctxflow — documented nil-ctx defaulting at the public maintenance boundary
		ctx = context.Background()
	}
	var stats Stats
	prov := snap.Provenance()
	if prov == nil {
		return nil, stats, ErrNotDelta
	}
	if base == nil {
		return nil, stats, errors.New("incremental: nil base cover")
	}
	//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
	start := time.Now()

	ix := snap.Index()
	m := ix.NumCols
	threads := cfg.Threads
	if threads <= 0 {
		threads = snap.Threads()
	}

	w := &worker{
		ix:    ix,
		ck:    validator.NewChecker(ix),
		tree:  fdtree.New(m),
		memo:  make(map[string]bool),
		stats: &stats,
	}
	for _, f := range base.All() {
		w.tree.Add(f.Lhs, f.Rhs)
	}
	stats.BaseFDs = base.Size()

	// Phase A — deletes: re-generalize where removed rows may have made the
	// cover non-minimal (or made wholly absent FDs valid).
	if len(prov.DeletedRecords) > 0 {
		seeds := touchedSets(prov.DeletedRecords, m)
		stats.DeleteSeeds = len(seeds)
		for _, t := range seeds {
			if err := ctx.Err(); err != nil {
				return nil, stats, err
			}
			for rhs := 0; rhs < m; rhs++ {
				top := t
				if t.Test(rhs) {
					top = t.Without(rhs)
				}
				if w.valid(top, rhs) {
					w.generalize(top, rhs)
				}
			}
		}
	}

	// Phase B — inserts: re-validate breakable cover FDs against the new
	// index, remove the broken ones, and specialize them back to validity.
	var breakable []fd.FD
	if prov.Inserts > 0 {
		w.vio = deltaViolations(ix, prov.InsertedFrom)
		touched := insertedTouchedSets(ix, prov.InsertedFrom, m)
		var unchecked []fd.FD
		for _, f := range w.tree.FDs().All() {
			if !anySuperset(touched, f.Lhs) {
				continue
			}
			breakable = append(breakable, f)
			if _, ok := w.memo[fdKey(f.Lhs, f.Rhs)]; !ok {
				unchecked = append(unchecked, f)
			}
		}
		stats.Breakable = len(breakable)
		w.checkBatch(unchecked, threads)
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}

		var queue []fd.FD
		enqueued := make(map[string]bool)
		for _, f := range breakable {
			if !w.memo[fdKey(f.Lhs, f.Rhs)] {
				w.tree.Remove(f.Lhs, f.Rhs)
				enqueued[fdKey(f.Lhs, f.Rhs)] = true
				queue = append(queue, f)
			}
		}
		// Each invalid candidate is expanded exactly once (enqueued dedupes
		// the worklist), valid specializations are added even when a
		// generalization already covers them, and the final Minimize sweeps
		// the resulting non-minimal FDs — cheaper than a deep tree lookup
		// per lattice edge.
		for len(queue) > 0 {
			if err := ctx.Err(); err != nil {
				return nil, stats, err
			}
			f := queue[0]
			queue = queue[1:]
			for attr := 0; attr < m; attr++ {
				if attr == f.Rhs || f.Lhs.Test(attr) {
					continue
				}
				// The validator's key prune (Fig. 4): if attr alone
				// determines rhs, every extension by attr is valid but
				// redundant — the tree already covers it.
				if w.tree.FindFdOrGeneral(bitset.FromIndices(m, attr), f.Rhs) {
					continue
				}
				nl := f.Lhs.With(attr)
				if w.validForInserts(nl, f.Rhs) {
					if w.tree.Add(nl, f.Rhs) {
						stats.Specialized++
					}
				} else if k := fdKey(nl, f.Rhs); !enqueued[k] {
					enqueued[k] = true
					queue = append(queue, fd.FD{Lhs: nl, Rhs: f.Rhs})
				}
			}
		}
	}
	trace.Emit(cfg.Observer, trace.IncrementalCandidates{
		BaseFDs:     stats.BaseFDs,
		Breakable:   stats.Breakable,
		DeleteSeeds: stats.DeleteSeeds,
	})

	result := w.tree.FDs().Minimize()
	stats.FDs = result.Size()
	//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
	stats.Duration = time.Since(start)
	trace.Emit(cfg.Observer, trace.IncrementalDone{
		FDs:         stats.FDs,
		Checks:      stats.Checks,
		Specialized: stats.Specialized,
		Generalized: stats.Generalized,
		Duration:    stats.Duration,
	})
	return result, stats, nil
}

// worker bundles the maintenance state: the cover under repair, a checker,
// and a validity memo so no candidate is ever validated twice.
type worker struct {
	ix    *pli.Index
	ck    *validator.Checker
	tree  *fdtree.Tree
	memo  map[string]bool
	stats *Stats
	// vio is the delta's negative cover — the distinct agree sets of row
	// pairs involving an inserted record. Set once before the insert phase.
	vio []bitset.Set
	// descended marks (lhs, rhs) pairs generalize already explored.
	descended map[string]bool
}

func fdKey(lhs bitset.Set, rhs int) string {
	return lhs.Key() + "\x00" + strconv.Itoa(rhs)
}

// valid memoizes full direct-refinement checks — the delete phase's
// validity oracle, where candidates may owe their validity to any row pair.
func (w *worker) valid(lhs bitset.Set, rhs int) bool {
	k := fdKey(lhs, rhs)
	if v, ok := w.memo[k]; ok {
		return v
	}
	v := w.ck.Refines(lhs, rhs)
	w.memo[k] = v
	w.stats.Checks++
	return v
}

// validForInserts memoizes insert-restricted checks — the insert phase's
// validity oracle, sound only for candidates valid on the parent's rows
// (see insertBroken). Memo entries from full checks are reused: a full
// verdict is exact for any candidate.
func (w *worker) validForInserts(lhs bitset.Set, rhs int) bool {
	k := fdKey(lhs, rhs)
	if v, ok := w.memo[k]; ok {
		return v
	}
	v := !insertBroken(w.ix, w.vio, lhs, rhs)
	w.memo[k] = v
	w.stats.Checks++
	return v
}

// insertBroken reports whether a candidate that held on the parent's rows is
// violated on the new snapshot, by consulting the delta's negative cover: a
// violating pair must involve an inserted record and agrees on exactly some
// vsets entry, so the candidate is broken iff some v has lhs ⊆ v and rhs ∉ v.
func insertBroken(ix *pli.Index, vsets []bitset.Set, lhs bitset.Set, rhs int) bool {
	if lhs.IsEmpty() {
		// Pairs that agree on nothing never enter the negative cover, but
		// every pair is a candidate violation of {}→rhs: it survives only if
		// the rhs column is one cluster covering the whole relation.
		p := ix.Plis[rhs]
		return ix.NumRows > 1 && (len(p.Clusters) != 1 || len(p.Clusters[0]) != ix.NumRows)
	}
	for _, v := range vsets {
		if lhs.IsSubsetOf(v) && !v.Test(rhs) {
			return true
		}
	}
	return false
}

// deltaViolations computes the delta's negative cover: the distinct agree
// sets of every row pair that involves an inserted record (id >= from). Two
// records agree on attribute a iff both sit in the same non-singleton PLI
// cluster. Only pairs sharing at least one cluster are enumerated — a pair
// agreeing on nothing has an empty agree set, which constrains no candidate
// with a non-empty LHS (insertBroken handles the empty LHS separately).
func deltaViolations(ix *pli.Index, from int) []bitset.Set {
	seen := make(map[string]bool)
	// visited stamps partner rows per inserted record so a pair sharing
	// several clusters is materialized once.
	visited := make([]int, ix.NumRows)
	var out []bitset.Set
	for r := from; r < ix.NumRows; r++ {
		rec := ix.Records[r]
		stamp := r + 1
		for a := 0; a < ix.NumCols; a++ {
			c := rec[a]
			if c == pli.Singleton {
				continue
			}
			for _, s32 := range ix.Plis[a].Clusters[c] {
				s := int(s32)
				// Skip self-pairs, already-stamped partners, and inserted
				// partners with a smaller id (that pair is enumerated when
				// the partner is the outer record).
				if s == r || (s >= from && s < r) || visited[s] == stamp {
					continue
				}
				visited[s] = stamp
				srec := ix.Records[s]
				ag := bitset.New(ix.NumCols)
				for b := 0; b < ix.NumCols; b++ {
					if rec[b] != pli.Singleton && rec[b] == srec[b] {
						ag.Set(b)
					}
				}
				if k := ag.Key(); !seen[k] {
					seen[k] = true
					out = append(out, ag)
				}
			}
		}
	}
	return out
}

// generalize descends from the valid candidate lhs→rhs to its minimal valid
// generalizations and adds them to the cover. Validity is upward-closed, so
// recursing through every valid direct generalization reaches exactly the
// minimal valid subsets.
func (w *worker) generalize(lhs bitset.Set, rhs int) {
	if w.descended == nil {
		w.descended = make(map[string]bool)
	}
	k := fdKey(lhs, rhs)
	if w.descended[k] {
		return
	}
	w.descended[k] = true
	anyValid := false
	lhs.ForEach(func(b int) bool {
		g := lhs.Without(b)
		if w.valid(g, rhs) {
			anyValid = true
			w.generalize(g, rhs)
		}
		return true
	})
	if !anyValid && !w.tree.FindFdOrGeneral(lhs, rhs) {
		if w.tree.Add(lhs, rhs) {
			w.stats.Generalized++
		}
	}
}

// checkBatch validates insert-phase candidates concurrently with the
// insert-restricted oracle (a result slot per candidate makes every thread
// count bit-for-bit identical) and memoizes the verdicts. stats.Checks
// counts every performed check, whether batched here or run one-off.
func (w *worker) checkBatch(cands []fd.FD, threads int) {
	if len(cands) == 0 {
		return
	}
	verdicts := make([]bool, len(cands))
	if threads > len(cands) {
		threads = len(cands)
	}
	if threads <= 1 {
		for i, f := range cands {
			verdicts[i] = !insertBroken(w.ix, w.vio, f.Lhs, f.Rhs)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					verdicts[i] = !insertBroken(w.ix, w.vio, cands[i].Lhs, cands[i].Rhs)
				}
			}()
		}
		for i := range cands {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	for i, f := range cands {
		w.memo[fdKey(f.Lhs, f.Rhs)] = verdicts[i]
	}
	w.stats.Checks += len(cands)
}

// touchedSets returns the distinct touched-attribute sets of the given
// compressed records, in first-occurrence order.
func touchedSets(records [][]int32, m int) []bitset.Set {
	var out []bitset.Set
	seen := make(map[string]bool, len(records))
	for _, rec := range records {
		t := bitset.New(m)
		for a, cid := range rec {
			if cid != pli.Singleton {
				t.Set(a)
			}
		}
		if k := t.Key(); !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return out
}

// insertedTouchedSets returns the distinct touched-attribute sets of the
// snapshot's inserted records (ids [from, NumRows)).
func insertedTouchedSets(ix *pli.Index, from, m int) []bitset.Set {
	recs := make([][]int32, 0, ix.NumRows-from)
	for r := from; r < ix.NumRows; r++ {
		recs = append(recs, ix.Records[r])
	}
	return touchedSets(recs, m)
}

// anySuperset reports whether lhs is a subset of any of the touched sets.
func anySuperset(touched []bitset.Set, lhs bitset.Set) bool {
	for _, t := range touched {
		if lhs.IsSubsetOf(t) {
			return true
		}
	}
	return false
}
