package incremental

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"hyfd/internal/core"
	"hyfd/internal/dataset"
	"hyfd/internal/relation"
	"hyfd/internal/trace"
)

func randomRel(rng *rand.Rand, rows, cols int) *relation.Relation {
	names := make([]string, cols)
	for c := range names {
		names[c] = fmt.Sprintf("c%d", c)
	}
	rel := relation.New("rand", names)
	for r := 0; r < rows; r++ {
		row := make([]string, cols)
		for c := range row {
			if rng.Intn(7) == 0 {
				row[c] = relation.Null
			} else {
				row[c] = fmt.Sprintf("v%d", rng.Intn(3))
			}
		}
		rel.AppendRow(row)
	}
	return rel
}

func randomDelta(rng *rand.Rand, ds *dataset.Dataset) dataset.Delta {
	var delta dataset.Delta
	cols := ds.NumCols()
	for i := rng.Intn(4); i > 0; i-- {
		row := make([]string, cols)
		for c := range row {
			if rng.Intn(7) == 0 {
				row[c] = relation.Null
			} else {
				row[c] = fmt.Sprintf("v%d", rng.Intn(3))
			}
		}
		delta.Inserts = append(delta.Inserts, row)
	}
	if n := ds.NumRows(); n > 4 {
		for i := rng.Intn(3); i > 0; i-- {
			r := rng.Intn(n)
			delta.Deletes = append(delta.Deletes, append(relation.Row(nil), ds.Relation().Rows[r]...))
		}
	}
	return delta
}

// dedupeDeletes drops duplicate delete rows that would over-delete (the
// random generator may pick the same row twice).
func dedupeDeletes(delta dataset.Delta) dataset.Delta {
	seen := make(map[string]bool)
	kept := delta.Deletes[:0]
	for _, row := range delta.Deletes {
		k := fmt.Sprintf("%q", row)
		if !seen[k] {
			seen[k] = true
			kept = append(kept, row)
		}
	}
	delta.Deletes = kept
	return delta
}

// TestMaintainMatchesColdDiscovery is the exactness contract: across a chain
// of random deltas, the maintained cover is byte-identical to full cold
// discovery on each snapshot — both null semantics, threads 1 and 4.
func TestMaintainMatchesColdDiscovery(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		for _, ns := range []relation.NullSemantics{relation.NullEqualsNull, relation.NullNotEqualsNull} {
			for _, threads := range []int{1, 4} {
				rng := rand.New(rand.NewSource(seed))
				rel := randomRel(rng, 6+rng.Intn(14), 2+rng.Intn(4))
				ds, err := dataset.Prepare(context.Background(), rel, dataset.Options{NullSemantics: ns, Threads: threads})
				if err != nil {
					t.Fatalf("Prepare: %v", err)
				}
				base, _, err := core.DiscoverDataset(context.Background(), ds, core.Config{Threads: threads})
				if err != nil {
					t.Fatalf("base discovery: %v", err)
				}
				for step := 0; step < 4; step++ {
					delta := dedupeDeletes(randomDelta(rng, ds))
					next, err := ds.Apply(context.Background(), delta)
					if err != nil {
						t.Fatalf("Apply: %v", err)
					}
					got, stats, err := Maintain(context.Background(), next, base, Config{Threads: threads})
					if err != nil {
						t.Fatalf("Maintain: %v", err)
					}
					want, _, err := core.DiscoverDataset(context.Background(), next, core.Config{Threads: threads})
					if err != nil {
						t.Fatalf("cold discovery: %v", err)
					}
					if got.String() != want.String() {
						t.Fatalf("seed=%d ns=%v threads=%d step=%d (+%d/-%d rows): maintained cover diverges\n got:\n%s\nwant:\n%s\nstats: %+v",
							seed, ns, threads, step, len(delta.Inserts), len(delta.Deletes), got.String(), want.String(), stats)
					}
					ds, base = next, got
				}
			}
		}
	}
}

// TestMaintainThreadCountInvariance pins bit-for-bit determinism across
// worker counts on one fixed scenario.
func TestMaintainThreadCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rel := randomRel(rng, 30, 5)
	ds, err := dataset.Prepare(context.Background(), rel, dataset.Options{Threads: 1})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	base, _, err := core.DiscoverDataset(context.Background(), ds, core.Config{Threads: 1})
	if err != nil {
		t.Fatalf("base discovery: %v", err)
	}
	next, err := ds.Apply(context.Background(), dataset.Delta{Inserts: []relation.Row{
		{"v0", "v1", "v2", "v0", "v1"},
		{"v9", "v9", "v9", "v9", "v9"},
	}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	var covers []string
	for _, threads := range []int{1, 2, 4, 8} {
		got, _, err := Maintain(context.Background(), next, base, Config{Threads: threads})
		if err != nil {
			t.Fatalf("Maintain(threads=%d): %v", threads, err)
		}
		covers = append(covers, got.String())
	}
	for i := 1; i < len(covers); i++ {
		if covers[i] != covers[0] {
			t.Fatalf("cover at thread count %d diverges from sequential", []int{1, 2, 4, 8}[i])
		}
	}
}

// TestMaintainEmitsEvents checks the observability contract: candidates and
// completion events fire with plausible payloads.
func TestMaintainEmitsEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rel := randomRel(rng, 20, 4)
	ds, err := dataset.Prepare(context.Background(), rel, dataset.Options{Threads: 1})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	base, _, err := core.DiscoverDataset(context.Background(), ds, core.Config{Threads: 1})
	if err != nil {
		t.Fatalf("base discovery: %v", err)
	}
	next, err := ds.Apply(context.Background(), dataset.Delta{
		Inserts: []relation.Row{{"v0", "v0", "v1", "v2"}},
		Deletes: []relation.Row{append(relation.Row(nil), rel.Rows[0]...)},
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	var cands *trace.IncrementalCandidates
	var done *trace.IncrementalDone
	obs := trace.ObserverFunc(func(e trace.Event) {
		switch ev := e.(type) {
		case trace.IncrementalCandidates:
			cands = &ev
		case trace.IncrementalDone:
			done = &ev
		}
	})
	got, stats, err := Maintain(context.Background(), next, base, Config{Threads: 1, Observer: obs})
	if err != nil {
		t.Fatalf("Maintain: %v", err)
	}
	if cands == nil || done == nil {
		t.Fatal("expected IncrementalCandidates and IncrementalDone events")
	}
	if cands.BaseFDs != base.Size() {
		t.Errorf("event BaseFDs = %d, want %d", cands.BaseFDs, base.Size())
	}
	if done.FDs != got.Size() || done.Checks != stats.Checks {
		t.Errorf("done event %+v inconsistent with stats %+v", done, stats)
	}
}

func TestMaintainRejectsNonDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds, err := dataset.Prepare(context.Background(), randomRel(rng, 5, 3), dataset.Options{Threads: 1})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	base, _, err := core.DiscoverDataset(context.Background(), ds, core.Config{Threads: 1})
	if err != nil {
		t.Fatalf("base discovery: %v", err)
	}
	if _, _, err := Maintain(context.Background(), ds, base, Config{}); err != ErrNotDelta {
		t.Errorf("Maintain on a root snapshot: err = %v, want ErrNotDelta", err)
	}
}
