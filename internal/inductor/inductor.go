// Package inductor implements HyFD's FD induction (§7, Alg. 3): it converts
// the Sampler's FD-violations (the negative cover) into minimal FD
// candidates by successive specialization of an FDTree (the positive
// cover), following the Fdep idea with the paper's cardinality-descending
// processing order.
package inductor

import (
	"sort"

	"hyfd/internal/bitset"
	"hyfd/internal/fdtree"
)

// Inductor specializes a shared FDTree with observed non-FDs. The tree
// persists across calls so subsequent sampling rounds refine, not rebuild,
// the candidate set.
type Inductor struct {
	fds      *fdtree.Tree
	numAttrs int
}

// New returns an Inductor that seeds the tree with the most general FDs
// ∅ → A for every attribute A (Alg. 3 lines 2-4).
func New(numAttrs int) *Inductor {
	t := fdtree.New(numAttrs)
	empty := bitset.New(numAttrs)
	all := empty.Flip()
	t.AddRhss(empty, all)
	return &Inductor{fds: t, numAttrs: numAttrs}
}

// Tree returns the shared candidate FDTree.
func (in *Inductor) Tree() *fdtree.Tree { return in.fds }

// Update specializes the candidate tree with a batch of non-FDs. Each
// bitset holds the attributes two records agreed on; every unset attribute
// is a right-hand side the agree-set fails to determine. Non-FDs are
// processed in descending cardinality order so long LHSs prune the tree
// early (Alg. 3 line 1).
func (in *Inductor) Update(nonFds []bitset.Set) {
	sorted := append([]bitset.Set(nil), nonFds...)
	sort.Slice(sorted, func(i, j int) bool {
		return bitset.CompareCardinalityDesc(sorted[i], sorted[j]) < 0
	})
	for _, lhs := range sorted {
		rhss := lhs.Flip()
		rhss.ForEach(func(rhs int) bool {
			in.specialize(lhs, rhs)
			return true
		})
	}
}

// specialize removes lhs → rhs and all its generalizations from the tree
// and re-adds every still-valid minimal specialization (Alg. 3 lines
// 10-20).
func (in *Inductor) specialize(lhs bitset.Set, rhs int) {
	invalidLhss := in.fds.GetFdAndGenerals(lhs, rhs)
	maxLhs := in.fds.MaxLhs()
	for _, invalidLhs := range invalidLhss {
		in.fds.Remove(invalidLhs, rhs)
		if invalidLhs.Cardinality() >= maxLhs {
			continue // extensions would exceed the Guardian's bound
		}
		for attr := 0; attr < in.numAttrs; attr++ {
			// Skip attributes of the observed agree-set, not just of
			// invalidLhs: any extension inside the agree-set stays a
			// generalization of the same non-FD and would be invalid by
			// the very observation being processed (cf. the paper's
			// worked example, where D ↛ B yields A→B and C→B only).
			if lhs.Test(attr) || rhs == attr {
				continue
			}
			newLhs := invalidLhs.With(attr)
			if in.fds.FindFdOrGeneral(newLhs, rhs) {
				continue
			}
			in.fds.Add(newLhs, rhs)
		}
	}
}
