package inductor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyfd/internal/bitset"
	"hyfd/internal/fd"
)

func TestInitialTree(t *testing.T) {
	in := New(3)
	fds := in.Tree().FDs()
	if fds.Size() != 3 {
		t.Fatalf("initial tree has %d FDs, want 3 (∅→A for each A):\n%s", fds.Size(), fds)
	}
	for rhs := 0; rhs < 3; rhs++ {
		if !fds.Contains(fd.FD{Lhs: bitset.New(3), Rhs: rhs}) {
			t.Fatalf("missing ∅ → %d", rhs)
		}
	}
}

// TestPaperExampleSection4 reproduces the §4 walkthrough: schema R(A,B,C),
// non-FD A ↛ B (observation: records agree on A only, so A ↛ B and A ↛ C).
// The paper discusses only the B side: result ∅→AC plus C→B. With the full
// observation the C side specializes symmetrically to B→C.
func TestPaperExampleSection4(t *testing.T) {
	in := New(3)
	in.Update([]bitset.Set{bitset.FromIndices(3, 0)}) // agree on {A}
	got := in.Tree().FDs()
	want := fd.NewSet(3)
	want.Add(fd.FD{Lhs: bitset.New(3), Rhs: 0})            // ∅ → A
	want.Add(fd.FD{Lhs: bitset.FromIndices(3, 2), Rhs: 1}) // C → B
	want.Add(fd.FD{Lhs: bitset.FromIndices(3, 1), Rhs: 2}) // B → C
	if !got.Equal(want) {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

// coverReference computes, by brute force, all minimal non-trivial FDs
// consistent with a negative cover of agree-sets: X → A is inconsistent iff
// some observed agree-set Y has X ⊆ Y and A ∉ Y.
func coverReference(numAttrs int, obs []bitset.Set) *fd.Set {
	out := fd.NewSet(numAttrs)
	consistent := func(lhs bitset.Set, rhs int) bool {
		for _, y := range obs {
			if lhs.IsSubsetOf(y) && !y.Test(rhs) {
				return false
			}
		}
		return true
	}
	for rhs := 0; rhs < numAttrs; rhs++ {
		var found []bitset.Set
		level := []bitset.Set{bitset.New(numAttrs)}
		for len(level) > 0 {
			var next []bitset.Set
			seen := make(map[string]struct{})
			for _, lhs := range level {
				dominated := false
				for _, g := range found {
					if g.IsSubsetOf(lhs) {
						dominated = true
						break
					}
				}
				if dominated {
					continue
				}
				if consistent(lhs, rhs) {
					found = append(found, lhs)
					out.Add(fd.FD{Lhs: lhs, Rhs: rhs})
					continue
				}
				for a := 0; a < numAttrs; a++ {
					if a == rhs || lhs.Test(a) {
						continue
					}
					sp := lhs.With(a)
					if _, dup := seen[sp.Key()]; dup {
						continue
					}
					seen[sp.Key()] = struct{}{}
					next = append(next, sp)
				}
			}
			level = next
		}
	}
	return out
}

func TestUpdateMatchesCoverReference(t *testing.T) {
	// Deterministic scenario over 4 attributes.
	obs := []bitset.Set{
		bitset.FromIndices(4, 3),       // agree {D}: D ↛ A,B,C
		bitset.FromIndices(4, 0, 1),    // agree {A,B}
		bitset.FromIndices(4, 0, 2, 3), // agree {A,C,D}
	}
	in := New(4)
	in.Update(obs)
	got := in.Tree().FDs()
	want := coverReference(4, obs)
	if !got.Equal(want) {
		t.Fatalf("got:\n%s\nwant:\n%s\nmissing: %v\nextra: %v",
			got, want, want.Diff(got), got.Diff(want))
	}
}

func TestIncrementalUpdateEqualsBatch(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n = 6
	var obs []bitset.Set
	for i := 0; i < 12; i++ {
		s := bitset.New(n)
		for a := 0; a < n; a++ {
			if r.Intn(2) == 0 {
				s.Set(a)
			}
		}
		obs = append(obs, s)
	}
	batch := New(n)
	batch.Update(obs)
	incr := New(n)
	incr.Update(obs[:4])
	incr.Update(obs[4:9])
	incr.Update(obs[9:])
	if !batch.Tree().FDs().Equal(incr.Tree().FDs()) {
		t.Fatalf("incremental updates diverge from batch:\nbatch:\n%s\nincr:\n%s",
			batch.Tree().FDs(), incr.Tree().FDs())
	}
}

func TestQuickUpdateMatchesCoverReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		numObs := r.Intn(10)
		var obs []bitset.Set
		for i := 0; i < numObs; i++ {
			s := bitset.New(n)
			for a := 0; a < n; a++ {
				if r.Intn(2) == 0 {
					s.Set(a)
				}
			}
			obs = append(obs, s)
		}
		in := New(n)
		in.Update(obs)
		return in.Tree().FDs().Equal(coverReference(n, obs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestFullAgreeObservationIsNoOp(t *testing.T) {
	in := New(3)
	before := in.Tree().FDs()
	in.Update([]bitset.Set{bitset.New(3).Flip()}) // identical records
	if !in.Tree().FDs().Equal(before) {
		t.Fatal("full agree-set changed the tree")
	}
}

func TestEmptyAgreeObservation(t *testing.T) {
	// Records that agree on nothing invalidate every ∅ → A.
	in := New(3)
	in.Update([]bitset.Set{bitset.New(3)})
	got := in.Tree().FDs()
	want := coverReference(3, []bitset.Set{bitset.New(3)})
	if !got.Equal(want) {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
	// No ∅ → A may survive.
	for rhs := 0; rhs < 3; rhs++ {
		if got.Contains(fd.FD{Lhs: bitset.New(3), Rhs: rhs}) {
			t.Fatalf("∅ → %d survived an empty agree-set", rhs)
		}
	}
}

func TestMaxLhsRespected(t *testing.T) {
	in := New(5)
	in.Tree().SetMaxLhs(1)
	// Invalidate all single-attribute FDs for rhs 4 so specializations
	// would need LHS size 2 — which the bound refuses.
	var obs []bitset.Set
	for a := 0; a < 4; a++ {
		obs = append(obs, bitset.FromIndices(5, a))
	}
	in.Update(obs)
	for _, f := range in.Tree().FDs().All() {
		if f.Lhs.Cardinality() > 1 {
			t.Fatalf("FD %v exceeds maxLhs=1", f)
		}
	}
}
