//go:build hyfdinvariants

// Package invariant is the engine's build-tag-gated assertion layer. At the
// default build it compiles to nothing: Enabled is a false constant, so
// every `if invariant.Enabled { ... }` call-site block is dead code the
// compiler eliminates — the hot paths carry zero overhead. Building or
// testing with `-tags hyfdinvariants` flips Enabled to true and arms
// Assert, turning the structural contracts of fdtree (node/level
// consistency), pli (stripped-partition shape), and validator (per-level
// minimality of the positive cover) into hard panics the moment they break.
//
// Call sites must guard with Enabled so argument evaluation is also
// eliminated at the default build:
//
//	if invariant.Enabled {
//		invariant.Assert(len(cluster) >= 2, "cluster of size %d", len(cluster))
//	}
package invariant

import "fmt"

// Enabled reports whether invariant checking is compiled in. It is a
// constant, so guarded blocks disappear entirely at the default build.
const Enabled = true

// Assert panics with a formatted violation report when cond is false.
func Assert(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant violation: " + fmt.Sprintf(format, args...))
	}
}
