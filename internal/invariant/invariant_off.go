//go:build !hyfdinvariants

// Package invariant is the engine's build-tag-gated assertion layer; this
// is the default build, where it compiles to nothing. See invariant.go
// (built under -tags hyfdinvariants) for the full contract.
package invariant

// Enabled reports whether invariant checking is compiled in; see the
// package documentation in invariant.go. At the default build it is the
// false constant, so every guarded assertion block is eliminated.
const Enabled = false

// Assert is a no-op at the default build. Call sites guard with Enabled, so
// neither the call nor its arguments survive compilation.
func Assert(cond bool, format string, args ...any) {}
