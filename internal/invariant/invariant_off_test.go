//go:build !hyfdinvariants

package invariant

import "testing"

// TestDisabledIsNoOp pins the default-build contract: Enabled is false and
// Assert never panics, whatever the condition.
func TestDisabledIsNoOp(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false at the default build")
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Assert panicked at the default build: %v", r)
		}
	}()
	Assert(false, "must not fire (got %d)", 42)
}
