//go:build hyfdinvariants

package invariant

import (
	"strings"
	"testing"
)

// TestEnabledAssertPanics pins the armed-build contract: Enabled is true,
// a false condition panics with the formatted report, and a true condition
// passes silently.
func TestEnabledAssertPanics(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under -tags hyfdinvariants")
	}
	Assert(true, "must not fire")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Assert(false, ...) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "invariant violation") || !strings.Contains(msg, "cluster 7") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	Assert(false, "cluster %d broke", 7)
}
