// Package logging builds the process-wide structured logger behind the
// -log-level and -log-format flags shared by cmd/hyfd and cmd/hyfdd. It is
// a thin veneer over log/slog: flag strings map onto a handler, and the
// mapping lives here once so both binaries accept the same vocabulary.
package logging

import (
	"fmt"
	"io"
	"log/slog"
)

// New builds a logger writing to w at the given level ("debug", "info",
// "warn", "error") and format ("text", "json"). Unknown values are errors,
// so a typo fails the flag parse loudly instead of silently logging at the
// wrong level.
func New(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (text, json)", format)
	}
}
