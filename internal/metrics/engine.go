package metrics

import (
	"runtime"

	"hyfd/internal/trace"
)

// EngineMetrics bundles every instrument the discovery engine maintains,
// registered under the stable hyfd_* names below. Construction is
// idempotent per Registry — NewEngineMetrics on the same registry returns
// handles to the same underlying instruments, so repeated runs accumulate
// and external consumers (CLI progress rendering, tests) can obtain the
// exact handles the engine updates.
//
// Two feeds fill these instruments: the Observer bridge aggregates the
// engine's trace-event stream (round/level durations, candidate verdicts,
// phase switches, Guardian interventions, run completion, plus Go runtime
// gauges sampled on each event), and the Sampler/Validator/Guardian hook
// structs carry direct instrumentation for quantities the events are too
// coarse to capture (per-window efficiency, batched comparison and
// validation counts, live FDTree footprint).
type EngineMetrics struct {
	// Phase 0: ingest and preprocessing.
	IngestedRows     *Counter   // hyfd_ingest_rows_total
	IngestDuration   *Histogram // hyfd_ingest_duration_seconds
	PLIsBuilt        *Counter   // hyfd_plis_built_total
	PLIBuildDuration *Histogram // hyfd_pli_build_duration_seconds

	// Phase 1: sampling.
	Comparisons              *Counter   // hyfd_comparisons_total
	SamplingRounds           *Counter   // hyfd_sampling_rounds_total
	SamplingRoundDuration    *Histogram // hyfd_sampling_round_duration_seconds
	NewViolations            *Counter   // hyfd_sampling_new_violations_total
	SamplingWindows          *Counter   // hyfd_sampling_windows_total
	SamplingWindowEfficiency *Histogram // hyfd_sampling_window_efficiency

	// Phase 2: validation.
	Validations             *Counter   // hyfd_validations_total
	ValidationLevels        *Counter   // hyfd_validation_levels_total
	ValidationLevelDuration *Histogram // hyfd_validation_level_duration_seconds
	ValidCandidates         *Counter   // hyfd_validation_candidates_total{verdict="valid"}
	InvalidCandidates       *Counter   // hyfd_validation_candidates_total{verdict="invalid"}
	Suggestions             *Counter   // hyfd_validation_suggestions_total

	// Orchestration and memory.
	PhaseSwitches         *Counter   // hyfd_phase_switches_total
	GuardianInterventions *Counter   // hyfd_guardian_interventions_total
	FDTreeBytes           *Gauge     // hyfd_fdtree_bytes
	PreprocessingDuration *Histogram // hyfd_preprocessing_duration_seconds
	PLIClusterSize        *Histogram // hyfd_pli_cluster_size
	DatasetReuses         *Counter   // hyfd_dataset_reuse_total

	// Ranked (top-k) mode.
	RankedEmitted     *Counter   // hyfd_ranked_emitted_total
	RankedTimeToFirst *Histogram // hyfd_ranked_time_to_first_seconds
	RankedTimeToTopK  *Histogram // hyfd_ranked_time_to_topk_seconds

	// Incremental maintenance (delta snapshots).
	IncrementalRuns        *Counter   // hyfd_incremental_runs_total
	IncrementalInsertRows  *Counter   // hyfd_incremental_delta_rows_total{kind="insert"}
	IncrementalDeleteRows  *Counter   // hyfd_incremental_delta_rows_total{kind="delete"}
	IncrementalSharedAttrs *Counter   // hyfd_incremental_shared_attrs_total
	IncrementalBreakable   *Counter   // hyfd_incremental_breakable_total
	IncrementalChecks      *Counter   // hyfd_incremental_checks_total
	IncrementalSpecialized *Counter   // hyfd_incremental_specialized_total
	IncrementalGeneralized *Counter   // hyfd_incremental_generalized_total
	IncrementalApplyTime   *Histogram // hyfd_incremental_apply_duration_seconds
	IncrementalDuration    *Histogram // hyfd_incremental_duration_seconds

	// Per-run outcomes.
	Runs          *Counter   // hyfd_runs_total
	RunDuration   *Histogram // hyfd_run_duration_seconds
	FDsDiscovered *Gauge     // hyfd_fds_discovered

	// Go runtime telemetry, sampled on each trace event.
	HeapInuse  *Gauge // hyfd_go_heap_inuse_bytes
	GCCycles   *Gauge // hyfd_go_gc_cycles_total
	Goroutines *Gauge // hyfd_go_goroutines
}

// NewEngineMetrics registers (or re-resolves) the engine's instrument set
// on the registry. A nil registry returns nil, whose Observer and hook
// accessors all degrade to no-ops — the unmetered fast path.
func NewEngineMetrics(r *Registry) *EngineMetrics {
	if r == nil {
		return nil
	}
	candidates := r.CounterVec("hyfd_validation_candidates_total",
		"FD candidates checked during Phase 2, by verdict.", "verdict")
	deltaRows := r.CounterVec("hyfd_incremental_delta_rows_total",
		"Delta rows applied to dataset snapshots, by kind.", "kind")
	return &EngineMetrics{
		IngestedRows: r.Counter("hyfd_ingest_rows_total",
			"Rows parsed from external input into relations."),
		IngestDuration: r.Histogram("hyfd_ingest_duration_seconds",
			"Wall-clock duration of each relation ingest.", nil),
		PLIsBuilt: r.Counter("hyfd_plis_built_total",
			"Per-attribute PLIs constructed during preprocessing."),
		PLIBuildDuration: r.Histogram("hyfd_pli_build_duration_seconds",
			"Wall-clock build latency of each attribute's PLI.", nil),

		Comparisons: r.Counter("hyfd_comparisons_total",
			"Record-pair comparisons performed by the sampler."),
		SamplingRounds: r.Counter("hyfd_sampling_rounds_total",
			"Completed Phase 1 sampling rounds."),
		SamplingRoundDuration: r.Histogram("hyfd_sampling_round_duration_seconds",
			"Wall-clock duration of each sampling round including induction.", nil),
		NewViolations: r.Counter("hyfd_sampling_new_violations_total",
			"Distinct FD-violations first observed by sampling."),
		SamplingWindows: r.Counter("hyfd_sampling_windows_total",
			"Cluster-window runs executed by the sampler."),
		SamplingWindowEfficiency: r.Histogram("hyfd_sampling_window_efficiency",
			"New violations per comparison of each window run.", RatioBuckets),

		Validations: r.Counter("hyfd_validations_total",
			"FDTree node validations performed by the validator."),
		ValidationLevels: r.Counter("hyfd_validation_levels_total",
			"Completed Phase 2 lattice levels."),
		ValidationLevelDuration: r.Histogram("hyfd_validation_level_duration_seconds",
			"Wall-clock duration of each validation level.", nil),
		ValidCandidates:   candidates.With("valid"),
		InvalidCandidates: candidates.With("invalid"),
		Suggestions: r.Counter("hyfd_validation_suggestions_total",
			"Violating record pairs handed back to the sampler."),

		PhaseSwitches: r.Counter("hyfd_phase_switches_total",
			"Returns from Phase 2 (validation) into Phase 1 (sampling)."),
		GuardianInterventions: r.Counter("hyfd_guardian_interventions_total",
			"Memory-Guardian prunes of the result tree."),
		FDTreeBytes: r.Gauge("hyfd_fdtree_bytes",
			"Approximate live footprint of the result FDTree."),
		PreprocessingDuration: r.Histogram("hyfd_preprocessing_duration_seconds",
			"Wall-clock duration of PLI and compressed-record construction.", nil),
		PLIClusterSize: r.Histogram("hyfd_pli_cluster_size",
			"Size distribution of non-singleton PLI clusters.", SizeBuckets),
		DatasetReuses: r.Counter("hyfd_dataset_reuse_total",
			"Warm runs that reused an already-prepared Dataset instead of rebuilding PLIs."),

		RankedEmitted: r.Counter("hyfd_ranked_emitted_total",
			"Ranked-mode results whose final rank stabilized and streamed out."),
		RankedTimeToFirst: r.Histogram("hyfd_ranked_time_to_first_seconds",
			"Elapsed run time until a ranked run's first result stabilized.", nil),
		RankedTimeToTopK: r.Histogram("hyfd_ranked_time_to_topk_seconds",
			"Elapsed run time until a ranked run's full top-k stabilized.", nil),

		IncrementalRuns: r.Counter("hyfd_incremental_runs_total",
			"Completed incremental FD maintenance runs."),
		IncrementalInsertRows: deltaRows.With("insert"),
		IncrementalDeleteRows: deltaRows.With("delete"),
		IncrementalSharedAttrs: r.Counter("hyfd_incremental_shared_attrs_total",
			"Attributes whose cluster lists were structurally shared with the parent snapshot across all Apply calls."),
		IncrementalBreakable: r.Counter("hyfd_incremental_breakable_total",
			"Base-cover FDs the deltas' inserted records could have invalidated."),
		IncrementalChecks: r.Counter("hyfd_incremental_checks_total",
			"Direct-refinement validations performed by incremental maintenance."),
		IncrementalSpecialized: r.Counter("hyfd_incremental_specialized_total",
			"FD candidates added while specializing broken FDs."),
		IncrementalGeneralized: r.Counter("hyfd_incremental_generalized_total",
			"FDs added by delete-driven re-generalization."),
		IncrementalApplyTime: r.Histogram("hyfd_incremental_apply_duration_seconds",
			"Wall-clock duration of each Dataset.Apply snapshot advance.", nil),
		IncrementalDuration: r.Histogram("hyfd_incremental_duration_seconds",
			"Wall-clock duration of each incremental maintenance run.", nil),

		Runs: r.Counter("hyfd_runs_total",
			"Completed discovery runs."),
		RunDuration: r.Histogram("hyfd_run_duration_seconds",
			"Total wall-clock duration of each discovery run.", nil),
		FDsDiscovered: r.Gauge("hyfd_fds_discovered",
			"Minimal FDs found by the most recent run."),

		HeapInuse: r.Gauge("hyfd_go_heap_inuse_bytes",
			"Heap bytes in use, sampled on each trace event."),
		GCCycles: r.Gauge("hyfd_go_gc_cycles_total",
			"Completed GC cycles, sampled on each trace event."),
		Goroutines: r.Gauge("hyfd_go_goroutines",
			"Live goroutines, sampled on each trace event."),
	}
}

// Observer bridges the engine's trace-event stream into the instruments.
// It is invoked synchronously from the coordinating goroutine (see
// internal/trace) and additionally samples the Go runtime gauges on each
// event. A nil receiver yields a nil Observer, which trace.Multi skips.
func (m *EngineMetrics) Observer() trace.Observer {
	if m == nil {
		return nil
	}
	return trace.ObserverFunc(func(e trace.Event) {
		switch ev := e.(type) {
		case trace.IngestDone:
			m.IngestedRows.Add(int64(ev.Rows))
			m.IngestDuration.Observe(ev.Duration.Seconds())
		case trace.PLIBuilt:
			m.PLIsBuilt.Inc()
			m.PLIBuildDuration.Observe(ev.Duration.Seconds())
		case trace.PreprocessingDone:
			if ev.Warm {
				// A reused Dataset did no preprocessing work of its own;
				// recording its ~zero duration would skew the histogram.
				m.DatasetReuses.Inc()
			} else {
				m.PreprocessingDuration.Observe(ev.Duration.Seconds())
			}
		case trace.SamplingRound:
			m.SamplingRounds.Inc()
			m.SamplingRoundDuration.Observe(ev.Duration.Seconds())
			m.NewViolations.Add(int64(ev.NewObservations))
		case trace.PhaseSwitch:
			if ev.From == trace.PhaseValidation {
				m.PhaseSwitches.Inc()
			}
		case trace.ValidationLevel:
			m.ValidationLevels.Inc()
			m.ValidationLevelDuration.Observe(ev.Duration.Seconds())
			m.ValidCandidates.Add(int64(ev.Valid))
			m.InvalidCandidates.Add(int64(ev.Invalid))
		case trace.GuardianPrune:
			m.GuardianInterventions.Inc()
		case trace.RankedResult:
			m.RankedEmitted.Inc()
			if ev.Rank == 1 {
				m.RankedTimeToFirst.Observe(ev.Duration.Seconds())
			}
		case trace.Done:
			m.Runs.Inc()
			m.RunDuration.Observe(ev.Duration.Seconds())
			m.FDsDiscovered.Set(float64(ev.FDs))
		case trace.DeltaApplied:
			m.IncrementalInsertRows.Add(int64(ev.Inserts))
			m.IncrementalDeleteRows.Add(int64(ev.Deletes))
			m.IncrementalSharedAttrs.Add(int64(ev.SharedAttrs))
			m.IncrementalApplyTime.Observe(ev.Duration.Seconds())
		case trace.IncrementalCandidates:
			m.IncrementalBreakable.Add(int64(ev.Breakable))
		case trace.IncrementalDone:
			m.IncrementalRuns.Inc()
			m.IncrementalChecks.Add(int64(ev.Checks))
			m.IncrementalSpecialized.Add(int64(ev.Specialized))
			m.IncrementalGeneralized.Add(int64(ev.Generalized))
			m.IncrementalDuration.Observe(ev.Duration.Seconds())
			m.FDsDiscovered.Set(float64(ev.FDs))
		}
		m.sampleRuntime()
	})
}

// sampleRuntime refreshes the Go runtime gauges. Events are coarse-grained
// (one per round or level), so the ReadMemStats cost stays negligible
// relative to the work between events.
func (m *EngineMetrics) sampleRuntime() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.HeapInuse.Set(float64(ms.HeapInuse))
	m.GCCycles.Set(float64(ms.NumGC))
	m.Goroutines.Set(float64(runtime.NumGoroutine()))
}

// SamplerInstruments is the Sampler's direct-instrumentation hook. The
// zero value is a no-op: every field is a nil-safe instrument.
type SamplerInstruments struct {
	// Comparisons receives the sampler's comparison count, batched once
	// per round so the per-comparison hot path stays untouched.
	Comparisons *Counter
	// Windows counts cluster-window runs.
	Windows *Counter
	// WindowEfficiency records new-violations-per-comparison of each
	// window run — the quantity the sampler's priority queue ranks on.
	WindowEfficiency *Histogram
}

// Sampler returns the sampler's hook set.
func (m *EngineMetrics) Sampler() SamplerInstruments {
	if m == nil {
		return SamplerInstruments{}
	}
	return SamplerInstruments{
		Comparisons:      m.Comparisons,
		Windows:          m.SamplingWindows,
		WindowEfficiency: m.SamplingWindowEfficiency,
	}
}

// ValidatorInstruments is the Validator's direct-instrumentation hook. The
// zero value is a no-op.
type ValidatorInstruments struct {
	// Validations receives node-validation counts, batched once per level
	// (before the level's trace event fires, so observers reading the
	// counter on the event see it current).
	Validations *Counter
	// Suggestions receives the count of violating record pairs collected
	// per level.
	Suggestions *Counter
}

// Validator returns the validator's hook set.
func (m *EngineMetrics) Validator() ValidatorInstruments {
	if m == nil {
		return ValidatorInstruments{}
	}
	return ValidatorInstruments{Validations: m.Validations, Suggestions: m.Suggestions}
}
