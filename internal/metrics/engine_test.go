package metrics

import (
	"testing"
	"time"

	"hyfd/internal/trace"
)

func TestEngineMetricsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := NewEngineMetrics(r)
	b := NewEngineMetrics(r)
	a.Comparisons.Add(10)
	if b.Comparisons.Value() != 10 {
		t.Fatal("EngineMetrics on the same registry must share instruments")
	}
}

func TestEngineMetricsNilObserver(t *testing.T) {
	var m *EngineMetrics
	if m.Observer() != nil {
		t.Fatal("nil EngineMetrics must yield a nil observer")
	}
	// Zero-value hook structs must be safe.
	var si SamplerInstruments
	si.Comparisons.Add(1)
	si.Windows.Inc()
	si.WindowEfficiency.Observe(0.5)
	var vi ValidatorInstruments
	vi.Validations.Add(1)
	vi.Suggestions.Add(1)
	if m.Sampler().Comparisons != nil || m.Validator().Validations != nil {
		t.Fatal("hooks from a nil EngineMetrics must be zero")
	}
}

func TestEngineObserverBridgesEvents(t *testing.T) {
	r := NewRegistry()
	m := NewEngineMetrics(r)
	obs := m.Observer()

	obs.Observe(trace.PreprocessingDone{Rows: 10, Cols: 3, Duration: time.Millisecond})
	obs.Observe(trace.SamplingRound{Round: 1, NewObservations: 4, Comparisons: 100, Duration: 2 * time.Millisecond})
	obs.Observe(trace.PhaseSwitch{From: trace.PhaseSampling, To: trace.PhaseValidation, Switches: 0})
	obs.Observe(trace.ValidationLevel{Level: 1, Candidates: 9, Valid: 6, Invalid: 3, Duration: time.Millisecond})
	obs.Observe(trace.PhaseSwitch{From: trace.PhaseValidation, To: trace.PhaseSampling, Switches: 1})
	obs.Observe(trace.GuardianPrune{MaxLhs: 3, Interventions: 1})
	obs.Observe(trace.Done{FDs: 12, Duration: 5 * time.Millisecond})

	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"sampling rounds", m.SamplingRounds.Value(), 1},
		{"new violations", m.NewViolations.Value(), 4},
		{"validation levels", m.ValidationLevels.Value(), 1},
		{"valid candidates", m.ValidCandidates.Value(), 6},
		{"invalid candidates", m.InvalidCandidates.Value(), 3},
		{"phase switches", m.PhaseSwitches.Value(), 1},
		{"guardian interventions", m.GuardianInterventions.Value(), 1},
		{"runs", m.Runs.Value(), 1},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if m.FDsDiscovered.Value() != 12 {
		t.Errorf("fds gauge = %g, want 12", m.FDsDiscovered.Value())
	}
	if m.RunDuration.Count() != 1 || m.SamplingRoundDuration.Count() != 1 ||
		m.ValidationLevelDuration.Count() != 1 || m.PreprocessingDuration.Count() != 1 {
		t.Error("duration histograms not fed")
	}
	// Runtime gauges are sampled on every event.
	if m.HeapInuse.Value() <= 0 || m.Goroutines.Value() <= 0 {
		t.Error("runtime gauges not sampled")
	}
}
