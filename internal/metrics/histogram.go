package metrics

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket distribution instrument (Prometheus
// histogram). Bucket i counts observations v with bounds[i-1] < v <=
// bounds[i]; one implicit overflow bucket counts v > bounds[len-1]. The
// bucket layout is immutable after construction, so observations are a
// binary search plus two atomic adds. A nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow (+Inf) bucket
	count  atomic.Int64
	sum    atomicFloat
}

// newHistogram builds a histogram over the given ascending upper bounds.
// Passing no bounds falls back to DefBuckets.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound covers v; all-bounds-smaller lands in
	// the overflow bucket at index len(bounds).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket holding the target rank, the same estimate Prometheus's
// histogram_quantile computes. The first bucket interpolates from zero (the
// instrument targets non-negative domains: durations, sizes, rates), and
// ranks landing in the overflow bucket report the largest finite bound. An
// empty histogram or an out-of-range q returns NaN.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(total)
	maxBound := h.bounds[len(h.bounds)-1]
	cum := 0.0
	lastUpper := math.NaN()
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		cum += c
		if i == len(h.bounds) {
			// Overflow bucket: no finite upper edge to interpolate toward.
			lastUpper = maxBound
		} else {
			lastUpper = h.bounds[i]
		}
		if cum >= rank {
			if i == len(h.bounds) {
				return maxBound
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (rank - (cum - c)) / c
			if frac < 0 {
				frac = 0
			}
			return lower + (h.bounds[i]-lower)*frac
		}
	}
	// Float rounding can leave rank marginally above the final cumulative
	// count; report the upper edge of the last non-empty bucket.
	return lastUpper
}

// bucketCounts returns a copy of the per-bucket counts (overflow last).
func (h *Histogram) bucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// DefBuckets is the default bucket layout for seconds-valued durations:
// 100µs to ~52s, doubling.
var DefBuckets = ExpBuckets(1e-4, 2, 20)

// SizeBuckets is a bucket layout for cardinalities (cluster sizes, counts):
// 1 to ~4M, quadrupling.
var SizeBuckets = ExpBuckets(1, 4, 12)

// RatioBuckets is a bucket layout for efficiency ratios in [0,1].
var RatioBuckets = []float64{0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1}

// ExpBuckets returns n exponentially growing upper bounds starting at start
// (> 0) and multiplying by factor (> 1).
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}
