package metrics

import (
	"math"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 100, 500} {
		h.Observe(v)
	}
	// Bucket semantics: (prev, bound]; 0.5 and 1 land in le=1, 5 and 10 in
	// le=10, 50 and 100 in le=100, 500 overflows.
	want := []int64{2, 2, 2, 1}
	got := h.bucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 666.5 {
		t.Fatalf("sum = %g, want 666.5", h.Sum())
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if q := h.Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty histogram quantile = %g, want NaN", q)
	}
	var nilH *Histogram
	if q := nilH.Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("nil histogram quantile = %g, want NaN", q)
	}
}

func TestHistogramQuantileOutOfRange(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(0.5)
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if v := h.Quantile(q); !math.IsNaN(v) {
			t.Fatalf("Quantile(%g) = %g, want NaN", q, v)
		}
	}
}

func TestHistogramQuantileSingleObservation(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	h.Observe(5)
	for _, q := range []float64{0, 0.5, 1} {
		v := h.Quantile(q)
		// The estimate must stay inside the observation's bucket (1, 10].
		if v < 1 || v > 10 {
			t.Fatalf("Quantile(%g) = %g, want within (1, 10]", q, v)
		}
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := newHistogram([]float64{10, 20})
	// 10 observations spread uniformly through (10, 20].
	for i := 0; i < 10; i++ {
		h.Observe(11 + float64(i))
	}
	// Median rank 5 of 10 → 10 + (20-10)*(5/10) = 15.
	if v := h.Quantile(0.5); v != 15 {
		t.Fatalf("median = %g, want 15", v)
	}
	if v := h.Quantile(1); v != 20 {
		t.Fatalf("p100 = %g, want 20", v)
	}
}

func TestHistogramQuantileOverflowBucket(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(100)
	h.Observe(200)
	// Everything sits above the largest finite bound; the estimate clamps
	// to it rather than inventing values toward +Inf.
	if v := h.Quantile(0.99); v != 2 {
		t.Fatalf("overflow quantile = %g, want 2", v)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	h := newHistogram(nil)
	if len(h.bounds) != len(DefBuckets) {
		t.Fatalf("default bounds = %d, want %d", len(h.bounds), len(DefBuckets))
	}
	h.Observe(0.001)
	if h.Count() != 1 {
		t.Fatal("observation lost")
	}
}

func TestBucketConstructors(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	for i, want := range []float64{1, 2, 4, 8} {
		if exp[i] != want {
			t.Fatalf("ExpBuckets[%d] = %g, want %g", i, exp[i], want)
		}
	}
	lin := LinearBuckets(5, 2.5, 3)
	for i, want := range []float64{5, 7.5, 10} {
		if lin[i] != want {
			t.Fatalf("LinearBuckets[%d] = %g, want %g", i, lin[i], want)
		}
	}
}
