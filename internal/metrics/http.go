package metrics

import (
	"encoding/json"
	"net/http"
)

// Handler serves the registry in Prometheus text exposition format,
// suitable for a /metrics endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves the registry's Snapshot as indented JSON, suitable for
// a /metrics.json endpoint.
func JSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}
