// Package metrics is the engine's aggregation layer: a stdlib-only,
// allocation-light metrics registry in the Prometheus data model. Where
// internal/trace carries ephemeral per-step events, this package folds them
// (plus direct instrumentation from the engine's hot paths) into queryable
// instruments — atomic counters, gauges, and fixed-bucket histograms with
// quantile estimation — grouped into optionally labeled families by a
// Registry that can render itself as Prometheus exposition text or as a
// stable JSON Snapshot.
//
// Pay-for-what-you-use: every instrument method is safe on a nil receiver
// and returns immediately, so engine code calls its instruments
// unconditionally and an unmetered run pays one predictable branch per
// (already coarse-grained) call site. Instruments are safe for concurrent
// use; updates are lock-free.
package metrics

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing integer instrument (Prometheus
// counter). The zero value is ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n; negative deltas are ignored (counters are monotonic).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float instrument that can go up and down (Prometheus gauge).
// The zero value is ready to use; a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta to the gauge's value.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// atomicFloat accumulates a float64 sum with compare-and-swap.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 {
	return math.Float64frombits(f.bits.Load())
}
