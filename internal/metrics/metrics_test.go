package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %g, want 2", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "other help is ignored")
	if a != b {
		t.Fatal("re-registering a counter must return the same instrument")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatal("instruments not shared")
	}
	v := r.CounterVec("y_total", "h", "kind")
	if v.With("a") != v.With("a") {
		t.Fatal("vec series not shared")
	}
	if v.With("a") == v.With("b") {
		t.Fatal("distinct label values must yield distinct series")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("z", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("registering z as gauge after counter must panic")
		}
	}()
	r.Gauge("z", "h")
}

func TestRegistryLabelMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("lv", "h", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering lv with different labels must panic")
		}
	}()
	r.CounterVec("lv", "h", "b")
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// registration, updates, and concurrent exposition — and relies on the
// race detector (make race) to catch unsynchronized access.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("hammer_total", "h").Inc()
				r.Gauge("hammer_gauge", "h").Set(float64(i))
				r.Gauge("hammer_sum", "h").Add(1)
				r.Histogram("hammer_seconds", "h", nil).Observe(float64(i) / iters)
				r.CounterVec("hammer_labeled_total", "h", "worker").
					With(string(rune('a' + id%4))).Inc()
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
					}
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("hammer_total", "h").Value(); got != goroutines*iters {
		t.Fatalf("hammer_total = %d, want %d", got, goroutines*iters)
	}
	if got := r.Gauge("hammer_sum", "h").Value(); got != goroutines*iters {
		t.Fatalf("hammer_sum = %g, want %d", got, goroutines*iters)
	}
	if got := r.Histogram("hammer_seconds", "h", nil).Count(); got != goroutines*iters {
		t.Fatalf("hammer_seconds count = %d, want %d", got, goroutines*iters)
	}
	var total int64
	for _, w := range []string{"a", "b", "c", "d"} {
		total += r.CounterVec("hammer_labeled_total", "h", "worker").With(w).Value()
	}
	if total != goroutines*iters {
		t.Fatalf("labeled total = %d, want %d", total, goroutines*iters)
	}
}
