package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE header per family,
// one sample line per series, and the _bucket/_sum/_count expansion for
// histograms with cumulative le buckets. Families appear in name order and
// series in label-value order, so the output is stable across calls.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.k); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.k {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, s.vals), s.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.vals), formatFloat(s.g.Value()))
		return err
	}
	// Histogram: cumulative buckets, then sum and count.
	h := s.h
	counts := h.bucketCounts()
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += counts[i]
		le := formatFloat(bound)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, labelString(append(f.labels, "le"), append(s.vals, le)), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		f.name, labelString(append(f.labels, "le"), append(s.vals, "+Inf")), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, s.vals), formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, s.vals), cum)
	return err
}

// labelString renders {k1="v1",k2="v2"}, or "" for an unlabeled series.
func labelString(keys, vals []string) string {
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }
