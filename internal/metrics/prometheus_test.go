package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the complete exposition output of a small
// registry: family ordering, HELP/TYPE headers, label rendering, and the
// cumulative bucket expansion of histograms.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last_total", "Sorts last.").Add(7)
	r.Counter("aa_first_total", "Sorts first.").Add(1)
	r.Gauge("mid_gauge", "A gauge.").Set(2.5)
	v := r.CounterVec("labeled_total", "With labels.", "kind", "mode")
	v.With("b", "y").Add(2)
	v.With("a", "x").Add(1)
	h := r.Histogram("lat_seconds", "A histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_first_total Sorts first.
# TYPE aa_first_total counter
aa_first_total 1
# HELP labeled_total With labels.
# TYPE labeled_total counter
labeled_total{kind="a",mode="x"} 1
labeled_total{kind="b",mode="y"} 2
# HELP lat_seconds A histogram.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 5.55
lat_seconds_count 3
# HELP mid_gauge A gauge.
# TYPE mid_gauge gauge
mid_gauge 2.5
# HELP zz_last_total Sorts last.
# TYPE zz_last_total counter
zz_last_total 7
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "h", "v").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", sb.String())
	}
}

func TestHTTPHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "h").Add(3)

	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "reqs_total 3") {
		t.Fatalf("prometheus body missing sample:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	JSONHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"reqs_total"`) {
		t.Fatalf("json body missing counter:\n%s", rec.Body.String())
	}
}
