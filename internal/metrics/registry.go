package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// kind discriminates the three instrument families.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry is a get-or-create store of metric families. Registration is
// idempotent: asking twice for the same name returns the same instrument,
// so independent subsystems (and repeated runs) share state by name alone.
// Re-registering a name with a different type or label set panics — that is
// a programming error, not a runtime condition. A Registry is safe for
// concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric with a fixed type and label-key set.
type family struct {
	name   string
	help   string
	k      kind
	labels []string
	bounds []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series
}

// series is one labeled instance of a family.
type series struct {
	vals []string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup finds or creates a family, enforcing type/label consistency.
func (r *Registry) lookup(name, help string, k kind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.k != k {
			panic(fmt.Sprintf("metrics: %s already registered as %s, not %s", name, f.k, k))
		}
		if strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("metrics: %s already registered with labels %v, not %v", name, f.labels, labels))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		k:      k,
		labels: append([]string(nil), labels...),
		bounds: bounds,
		series: make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// with finds or creates the series for one label-value tuple.
func (f *family) with(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{vals: append([]string(nil), vals...)}
	switch f.k {
	case kindCounter:
		s.c = new(Counter)
	case kindGauge:
		s.g = new(Gauge)
	case kindHistogram:
		s.h = newHistogram(f.bounds)
	}
	f.series[key] = s
	return s
}

// Counter returns the unlabeled counter registered under name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter, nil, nil).with(nil).c
}

// Gauge returns the unlabeled gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge, nil, nil).with(nil).g
}

// Histogram returns the unlabeled histogram registered under name; bounds
// are the ascending finite bucket upper bounds (nil = DefBuckets). Bounds
// are fixed by the first registration.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.lookup(name, help, kindHistogram, nil, bounds).with(nil).h
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family registered under name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.lookup(name, help, kindCounter, labels, nil)}
}

// With returns the counter for one label-value tuple (one value per label
// key, in registration order). A nil vec yields a nil (no-op) counter, so
// unmetered call sites stay unconditional.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.with(values).c
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family registered under name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.lookup(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for one label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.with(values).g
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family registered under name.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.lookup(name, help, kindHistogram, labels, bounds)}
}

// With returns the histogram for one label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.with(values).h
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries snapshots a family's series in label-value order.
func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	ss := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		ss = append(ss, s)
	}
	f.mu.Unlock()
	sort.Slice(ss, func(i, j int) bool {
		return strings.Join(ss[i].vals, "\x00") < strings.Join(ss[j].vals, "\x00")
	})
	return ss
}
