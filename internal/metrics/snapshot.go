package metrics

// Snapshot is a point-in-time, JSON-stable view of a Registry. Instruments
// appear in name order (then label-value order), per-bucket counts are
// non-cumulative with the overflow bucket last, and quantiles are
// precomputed so consumers of BENCH_*.json artifacts never re-implement
// interpolation. Snapshot round-trips through encoding/json losslessly.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// CounterSnapshot is one counter series.
type CounterSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// GaugeSnapshot is one gauge series.
type GaugeSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistogramSnapshot is one histogram series. Counts[i] holds the
// observations in (Bounds[i-1], Bounds[i]]; the final entry counts
// observations above the largest bound.
type HistogramSnapshot struct {
	Name      string             `json:"name"`
	Labels    map[string]string  `json:"labels,omitempty"`
	Count     int64              `json:"count"`
	Sum       float64            `json:"sum"`
	Bounds    []float64          `json:"bounds"`
	Counts    []int64            `json:"counts"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// snapshotQuantiles are the convenience quantiles precomputed per histogram.
var snapshotQuantiles = map[string]float64{"p50": 0.5, "p90": 0.9, "p99": 0.99}

// Snapshot captures the registry's current state. Concurrent updates during
// the capture land in or after the snapshot per instrument; each individual
// instrument is read atomically.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	for _, f := range r.sortedFamilies() {
		for _, s := range f.sortedSeries() {
			labels := labelMap(f.labels, s.vals)
			switch f.k {
			case kindCounter:
				snap.Counters = append(snap.Counters, CounterSnapshot{
					Name: f.name, Labels: labels, Value: s.c.Value(),
				})
			case kindGauge:
				snap.Gauges = append(snap.Gauges, GaugeSnapshot{
					Name: f.name, Labels: labels, Value: s.g.Value(),
				})
			case kindHistogram:
				hs := HistogramSnapshot{
					Name:   f.name,
					Labels: labels,
					Count:  s.h.Count(),
					Sum:    s.h.Sum(),
					Bounds: append([]float64(nil), s.h.bounds...),
					Counts: s.h.bucketCounts(),
				}
				if hs.Count > 0 {
					hs.Quantiles = make(map[string]float64, len(snapshotQuantiles))
					for name, q := range snapshotQuantiles {
						hs.Quantiles[name] = s.h.Quantile(q)
					}
				}
				snap.Histograms = append(snap.Histograms, hs)
			}
		}
	}
	return snap
}

func labelMap(keys, vals []string) map[string]string {
	if len(keys) == 0 {
		return nil
	}
	m := make(map[string]string, len(keys))
	for i, k := range keys {
		m[k] = vals[i]
	}
	return m
}

// Counter returns the value of the named counter series (labels as
// alternating key, value pairs) and whether it exists in the snapshot.
func (s Snapshot) Counter(name string, labels ...string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name && labelsMatch(c.Labels, labels) {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the value of the named gauge series and whether it exists.
func (s Snapshot) Gauge(name string, labels ...string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name && labelsMatch(g.Labels, labels) {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram returns the named histogram series and whether it exists.
func (s Snapshot) Histogram(name string, labels ...string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name && labelsMatch(h.Labels, labels) {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// labelsMatch compares a label map against alternating key, value pairs.
func labelsMatch(m map[string]string, kv []string) bool {
	if len(m) != len(kv)/2 {
		return false
	}
	for i := 0; i+1 < len(kv); i += 2 {
		if m[kv[i]] != kv[i+1] {
			return false
		}
	}
	return true
}
