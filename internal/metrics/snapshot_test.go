package metrics

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h").Add(5)
	r.CounterVec("cl_total", "h", "kind").With("x").Add(2)
	r.Gauge("g", "h").Set(1.25)
	h := r.Histogram("h_seconds", "h", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(3)
	r.Histogram("empty_seconds", "h", []float64{1})

	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("round trip mismatch:\nbefore: %+v\nafter:  %+v", snap, back)
	}
}

func TestSnapshotContents(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h").Add(5)
	r.CounterVec("cl_total", "h", "kind").With("x").Add(2)
	r.Gauge("g", "h").Set(1.25)
	h := r.Histogram("h_seconds", "h", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(3)
	r.Histogram("empty_seconds", "h", []float64{1})

	snap := r.Snapshot()
	if v, ok := snap.Counter("c_total"); !ok || v != 5 {
		t.Fatalf("c_total = %d, %v", v, ok)
	}
	if v, ok := snap.Counter("cl_total", "kind", "x"); !ok || v != 2 {
		t.Fatalf("cl_total{kind=x} = %d, %v", v, ok)
	}
	if _, ok := snap.Counter("cl_total", "kind", "y"); ok {
		t.Fatal("cl_total{kind=y} should not exist")
	}
	if v, ok := snap.Gauge("g"); !ok || v != 1.25 {
		t.Fatalf("g = %g, %v", v, ok)
	}
	hs, ok := snap.Histogram("h_seconds")
	if !ok || hs.Count != 3 || hs.Sum != 4 {
		t.Fatalf("h_seconds = %+v, %v", hs, ok)
	}
	if !reflect.DeepEqual(hs.Counts, []int64{1, 1, 1}) {
		t.Fatalf("h_seconds counts = %v", hs.Counts)
	}
	if len(hs.Quantiles) == 0 {
		t.Fatal("non-empty histogram must carry quantiles")
	}
	empty, ok := snap.Histogram("empty_seconds")
	if !ok || empty.Count != 0 {
		t.Fatalf("empty_seconds = %+v, %v", empty, ok)
	}
	// NaN quantiles must never reach JSON: empty histograms omit them.
	if len(empty.Quantiles) != 0 {
		t.Fatalf("empty histogram quantiles = %v, want none", empty.Quantiles)
	}
}
