package pli

import (
	"hyfd/internal/bitset"
)

// Cache memoizes stripped partitions of attribute sets, building them by
// intersecting along canonical prefixes. The lattice-traversal baselines
// that compute partitions on demand (FUN's cardinality counter, DFD's
// random walk) share it. Not safe for concurrent use.
type Cache struct {
	plis  []*PLI
	inter *Intersector
	parts map[string]*Partition
	rows  int
}

// NewCache returns a partition cache over the given single-attribute PLIs.
func NewCache(plis []*PLI, numRows int) *Cache {
	return &Cache{
		plis:  plis,
		inter: NewIntersector(numRows),
		parts: make(map[string]*Partition),
		rows:  numRows,
	}
}

// Partition returns the stripped partition of the attribute set, computing
// and caching it (and its canonical prefixes) as needed. The empty set's
// partition is the single cluster of all records.
func (c *Cache) Partition(attrs bitset.Set) *Partition {
	key := attrs.Key()
	if p, ok := c.parts[key]; ok {
		return p
	}
	idx := attrs.Indices()
	var p *Partition
	switch len(idx) {
	case 0:
		cluster := make([]int32, c.rows)
		for i := range cluster {
			cluster[i] = int32(i)
		}
		p = &Partition{NumRows: c.rows}
		if c.rows > 1 {
			p.Clusters = [][]int32{cluster}
		}
	case 1:
		p = PartitionOf(c.plis[idx[0]])
	default:
		p = c.Partition(attrs.Without(idx[len(idx)-1]))
		p = c.inter.Intersect(p, PartitionOf(c.plis[idx[len(idx)-1]]))
	}
	c.parts[key] = p
	return p
}

// Card returns |X|: the number of distinct value combinations over the
// attribute set.
func (c *Cache) Card(attrs bitset.Set) int {
	if attrs.IsEmpty() {
		if c.rows == 0 {
			return 0
		}
		return 1
	}
	p := c.Partition(attrs)
	return c.rows - p.Size() + len(p.Clusters)
}

// Size returns the number of cached partitions (memory telemetry).
func (c *Cache) Size() int { return len(c.parts) }
