package pli

import (
	"math/rand"
	"testing"

	"hyfd/internal/bitset"
	"hyfd/internal/relation"
)

func cacheRelation(r *rand.Rand, rows, cols, domain int) *relation.Relation {
	names := make([]string, cols)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	rel := relation.New("c", names)
	for i := 0; i < rows; i++ {
		row := make([]string, cols)
		for j := range row {
			row[j] = string(rune('a' + r.Intn(domain)))
		}
		rel.AppendRow(row)
	}
	return rel
}

func TestCachePartitionMatchesDirect(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	rel := cacheRelation(r, 60, 5, 3)
	plis := BuildAll(rel, relation.NullEqualsNull)
	cache := NewCache(plis, rel.NumRows())
	in := NewIntersector(rel.NumRows())
	for trial := 0; trial < 20; trial++ {
		attrs := bitset.New(5)
		for a := 0; a < 5; a++ {
			if r.Intn(2) == 0 {
				attrs.Set(a)
			}
		}
		got := cache.Partition(attrs)
		// Direct: left-to-right intersection.
		idx := attrs.Indices()
		var want *Partition
		switch len(idx) {
		case 0:
			if got.NumRows != rel.NumRows() {
				t.Fatalf("∅ partition rows = %d", got.NumRows)
			}
			if rel.NumRows() > 1 && got.Size() != rel.NumRows() {
				t.Fatalf("∅ partition size = %d", got.Size())
			}
			continue
		default:
			want = PartitionOf(plis[idx[0]])
			for _, a := range idx[1:] {
				want = in.Intersect(want, PartitionOf(plis[a]))
			}
		}
		if got.Error() != want.Error() || got.Size() != want.Size() {
			t.Fatalf("cache partition of %v: err %d size %d, want err %d size %d",
				attrs, got.Error(), got.Size(), want.Error(), want.Size())
		}
	}
	if cache.Size() == 0 {
		t.Fatal("cache stored nothing")
	}
	// Second retrieval must be the cached object.
	attrs := bitset.FromIndices(5, 0, 2)
	if cache.Partition(attrs) != cache.Partition(attrs) {
		t.Fatal("cache returned distinct objects for the same set")
	}
}

func TestCacheCard(t *testing.T) {
	rel := relation.New("c", []string{"A", "B"})
	rel.AppendRow([]string{"x", "1"})
	rel.AppendRow([]string{"x", "2"})
	rel.AppendRow([]string{"y", "1"})
	plis := BuildAll(rel, relation.NullEqualsNull)
	cache := NewCache(plis, 3)
	if got := cache.Card(bitset.New(2)); got != 1 {
		t.Fatalf("card(∅) = %d", got)
	}
	if got := cache.Card(bitset.FromIndices(2, 0)); got != 2 {
		t.Fatalf("card(A) = %d", got)
	}
	if got := cache.Card(bitset.FromIndices(2, 0, 1)); got != 3 {
		t.Fatalf("card(AB) = %d", got)
	}
	// Empty relation.
	empty := NewCache(BuildAll(relation.New("e", []string{"A"}), relation.NullEqualsNull), 0)
	if got := empty.Card(bitset.New(1)); got != 0 {
		t.Fatalf("card(∅) on empty relation = %d", got)
	}
}

func TestIndexRankOrderConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	rel := cacheRelation(r, 40, 4, 4)
	ix := NewIndex(rel, relation.NullEqualsNull)
	rank := ix.Rank()
	for pos, attr := range ix.Order {
		if rank[attr] != pos {
			t.Fatalf("Rank/Order inconsistent at %d", pos)
		}
	}
	// Order must be by descending distinct count.
	for i := 0; i+1 < len(ix.Order); i++ {
		if ix.Plis[ix.Order[i]].NumClusters < ix.Plis[ix.Order[i+1]].NumClusters {
			t.Fatal("Order not descending by NumClusters")
		}
	}
}
