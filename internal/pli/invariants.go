package pli

import "hyfd/internal/invariant"

// assertStripped verifies the stripped-partition contract of a freshly built
// PLI under -tags hyfdinvariants (see internal/invariant):
//
//   - every retained cluster has at least two members (singletons are
//     stripped), listed in strictly ascending record order;
//   - clusters are pairwise disjoint and all record ids are in range;
//   - the class accounting balances: records covered by clusters plus
//     stripped singleton classes equals the relation's row count.
func assertStripped(p *PLI) {
	seen := make(map[int32]bool)
	covered := 0
	for ci, cluster := range p.Clusters {
		invariant.Assert(len(cluster) >= 2,
			"pli attr %d: cluster %d has size %d; stripped partitions keep only clusters of size >= 2",
			p.Attr, ci, len(cluster))
		prev := int32(-1)
		for _, r := range cluster {
			invariant.Assert(r >= 0 && int(r) < p.NumRows,
				"pli attr %d: record id %d out of range [0,%d)", p.Attr, r, p.NumRows)
			invariant.Assert(r > prev,
				"pli attr %d: cluster %d not in strictly ascending record order", p.Attr, ci)
			invariant.Assert(!seen[r],
				"pli attr %d: record %d appears in two clusters", p.Attr, r)
			seen[r] = true
			prev = r
		}
		covered += len(cluster)
	}
	singletons := p.NumClusters - len(p.Clusters)
	invariant.Assert(singletons >= 0,
		"pli attr %d: NumClusters %d below retained cluster count %d", p.Attr, p.NumClusters, len(p.Clusters))
	invariant.Assert(covered+singletons == p.NumRows,
		"pli attr %d: %d covered records + %d singletons != %d rows", p.Attr, covered, singletons, p.NumRows)
}
