package pli

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"hyfd/internal/datasets"
	"hyfd/internal/relation"
)

// wideRelation generates a deterministic 70-column relation with keys,
// correlated columns, constants and nulls — the shapes parallel
// preprocessing must reproduce exactly.
func wideRelation(t testing.TB) *relation.Relation {
	t.Helper()
	cols := make([]datasets.Column, 70)
	for i := range cols {
		switch i % 7 {
		case 0:
			cols[i] = datasets.Column{Kind: datasets.Key}
		case 1:
			cols[i] = datasets.Column{Kind: datasets.Constant}
		case 2:
			cols[i] = datasets.Column{Kind: datasets.Categorical, Domain: 5, NullRate: 0.1}
		case 3:
			cols[i] = datasets.Column{Kind: datasets.Derived, Src: i - 1, Domain: 8}
		case 4:
			cols[i] = datasets.Column{Kind: datasets.Hierarchy, Src: i - 2, Domain: 3, NullRate: 0.05}
		default:
			cols[i] = datasets.Column{Kind: datasets.Categorical, Domain: 12}
		}
	}
	return datasets.Generate(datasets.Config{Name: "wide", Rows: 400, Seed: 7, Columns: cols})
}

// TestParallelIndexIsDeterministic asserts the core determinism contract:
// BuildAllWith and NewIndexWith yield bit-for-bit identical PLIs, records,
// order and ranks for every thread count, under both null semantics.
func TestParallelIndexIsDeterministic(t *testing.T) {
	rel := wideRelation(t)
	for _, ns := range []relation.NullSemantics{relation.NullEqualsNull, relation.NullNotEqualsNull} {
		t.Run(ns.String(), func(t *testing.T) {
			want := NewIndex(rel, ns)
			wantPlis := BuildAll(rel, ns)
			for _, threads := range []int{0, 2, 8} {
				got := NewIndexWith(rel, ns, Options{Threads: threads})
				if !reflect.DeepEqual(got.Plis, wantPlis) {
					t.Fatalf("threads=%d: parallel PLIs differ from sequential", threads)
				}
				if !reflect.DeepEqual(got.Records, want.Records) {
					t.Fatalf("threads=%d: compressed records differ", threads)
				}
				if !reflect.DeepEqual(got.Order, want.Order) {
					t.Fatalf("threads=%d: attribute order differs", threads)
				}
				if !reflect.DeepEqual(got.Rank(), want.Rank()) {
					t.Fatalf("threads=%d: ranks differ", threads)
				}
			}
		})
	}
}

// TestBuildAllWithOnBuildCoversEveryAttribute checks the per-attribute
// instrumentation hook fires exactly once per attribute, from any worker.
func TestBuildAllWithOnBuildCoversEveryAttribute(t *testing.T) {
	rel := wideRelation(t)
	for _, threads := range []int{1, 4} {
		var mu sync.Mutex
		seen := make(map[int]int)
		BuildAllWith(rel, relation.NullEqualsNull, Options{
			Threads: threads,
			OnBuild: func(p *PLI, d time.Duration) {
				if d < 0 {
					t.Errorf("attr %d: negative build duration %v", p.Attr, d)
				}
				mu.Lock()
				seen[p.Attr]++
				mu.Unlock()
			},
		})
		if len(seen) != rel.NumCols() {
			t.Fatalf("threads=%d: OnBuild covered %d of %d attributes", threads, len(seen), rel.NumCols())
		}
		for a, n := range seen {
			if n != 1 {
				t.Fatalf("threads=%d: attr %d built %d times", threads, a, n)
			}
		}
	}
}

func BenchmarkNewIndexSequentialWide(b *testing.B) {
	rel := benchWide()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewIndexWith(rel, relation.NullEqualsNull, Options{Threads: 1})
	}
}

func BenchmarkNewIndexParallelWide(b *testing.B) {
	rel := benchWide()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewIndexWith(rel, relation.NullEqualsNull, Options{Threads: 8})
	}
}

func benchWide() *relation.Relation {
	cols := make([]datasets.Column, 64)
	for i := range cols {
		cols[i] = datasets.Column{Kind: datasets.Categorical, Domain: 1 + i%50}
	}
	return datasets.Generate(datasets.Config{
		Name: fmt.Sprintf("bench-wide-%d", len(cols)), Rows: 2000, Seed: 3, Columns: cols,
	})
}
