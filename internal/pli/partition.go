package pli

// Partition is a stripped partition over an arbitrary attribute set. The
// lattice-traversal baselines (TANE, FUN, FD_Mine, DFD) build partitions of
// growing attribute sets by pairwise intersection; HyFD itself deliberately
// avoids these intersections (§8) but still validates against the
// single-attribute partitions.
type Partition struct {
	Clusters [][]int32
	NumRows  int
}

// PartitionOf converts a single-attribute PLI into a Partition. Cluster
// slices are shared with the PLI and must not be mutated.
type probeCell struct {
	cluster int32
	stamp   int32
}

func PartitionOf(p *PLI) *Partition {
	return &Partition{Clusters: p.Clusters, NumRows: p.NumRows}
}

// Size returns the number of records in non-singleton clusters.
func (p *Partition) Size() int {
	n := 0
	for _, c := range p.Clusters {
		n += len(c)
	}
	return n
}

// Error returns ||π|| − |π| over non-singleton clusters: the minimum number
// of records to remove so the partitioned attribute set becomes a key. TANE
// uses e(X) = e(XA) as its FD validity criterion.
func (p *Partition) Error() int {
	return p.Size() - len(p.Clusters)
}

// RefinesConstant reports whether the partition has at most one cluster
// covering all records, i.e. the attribute set is constant.
func (p *Partition) RefinesConstant() bool {
	if len(p.Clusters) == 0 {
		return p.NumRows <= 1
	}
	return len(p.Clusters) == 1 && len(p.Clusters[0]) == p.NumRows
}

// Intersector intersects stripped partitions using a reusable probe table,
// the standard TANE product algorithm. It is not safe for concurrent use;
// create one per goroutine.
type Intersector struct {
	probe []probeCell
	stamp int32
}

// NewIntersector returns an Intersector for relations with numRows records.
func NewIntersector(numRows int) *Intersector {
	return &Intersector{probe: make([]probeCell, numRows)}
}

// Intersect returns the stripped partition π_a ∩ π_b, grouping records that
// co-occur in a cluster of both inputs.
func (ix *Intersector) Intersect(a, b *Partition) *Partition {
	// Stamp-mark records of a with their a-cluster id; then walk b's
	// clusters and group members by a-cluster.
	ix.stamp++
	stamp := ix.stamp
	for cid, cluster := range a.Clusters {
		for _, r := range cluster {
			ix.probe[r] = probeCell{cluster: int32(cid), stamp: stamp}
		}
	}
	out := &Partition{NumRows: a.NumRows}
	groups := make(map[int32][]int32)
	var keys []int32 // first-seen order keeps the result deterministic
	for _, cluster := range b.Clusters {
		for _, r := range cluster {
			cell := ix.probe[r]
			if cell.stamp != stamp {
				continue // r singleton in a
			}
			if _, ok := groups[cell.cluster]; !ok {
				keys = append(keys, cell.cluster)
			}
			groups[cell.cluster] = append(groups[cell.cluster], r)
		}
		for _, key := range keys {
			if g := groups[key]; len(g) > 1 {
				out.Clusters = append(out.Clusters, g)
			}
			delete(groups, key)
		}
		keys = keys[:0]
	}
	return out
}
