// Package pli implements position list indexes (PLIs), also known as
// stripped partitions (§5 of the HyFD paper). A PLI groups the records of an
// attribute into equivalence classes ("clusters") by value, omitting
// singleton clusters. PLIs are the common substrate of HyFD and of every
// lattice-traversal baseline: candidate validation, partition intersection
// and the PLI-compressed record matrix all build on them.
package pli

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"hyfd/internal/invariant"
	"hyfd/internal/relation"
)

// Singleton marks, inside a compressed record, an attribute in which the
// record's value is unique (its cluster was stripped).
const Singleton int32 = -1

// PLI is the position list index of a single attribute.
type PLI struct {
	// Attr is the attribute index in the original relation.
	Attr int
	// Clusters holds the record ids of every equivalence class with at
	// least two members, each cluster in ascending record order.
	Clusters [][]int32
	// NumClusters counts all equivalence classes including stripped
	// singletons, i.e. the number of distinct values of the attribute.
	NumClusters int
	// NumRows is the total number of records in the indexed relation.
	NumRows int
}

// Size returns the number of records covered by non-singleton clusters.
func (p *PLI) Size() int {
	n := 0
	for _, c := range p.Clusters {
		n += len(c)
	}
	return n
}

// IsConstant reports whether all records share one value (at most one
// cluster covering every record). Empty or single-row relations count as
// constant: no record pair can disagree.
func (p *PLI) IsConstant() bool {
	return p.NumClusters <= 1
}

// IsUnique reports whether no two records share a value, i.e. the attribute
// is a key.
func (p *PLI) IsUnique() bool {
	return len(p.Clusters) == 0
}

// Build constructs the PLI of one attribute from its column values. Under
// NullNotEqualsNull, every null cell forms its own singleton cluster, so
// nulls never witness an FD violation on the left-hand side.
func Build(attr int, column []string, ns relation.NullSemantics) *PLI {
	groups := make(map[string][]int32, len(column))
	nulls := 0
	for i, v := range column {
		if v == relation.Null && ns == relation.NullNotEqualsNull {
			nulls++ // each null is its own class
			continue
		}
		groups[v] = append(groups[v], int32(i))
	}
	p := &PLI{Attr: attr, NumRows: len(column), NumClusters: nulls}
	for _, ids := range groups {
		p.NumClusters++
		if len(ids) > 1 {
			p.Clusters = append(p.Clusters, ids)
		}
	}
	// Deterministic cluster order: by first record id. Map iteration order
	// would otherwise leak into sampling order and phase-switch counts.
	sort.Slice(p.Clusters, func(i, j int) bool {
		return p.Clusters[i][0] < p.Clusters[j][0]
	})
	if invariant.Enabled {
		assertStripped(p)
	}
	return p
}

// Options configures preprocessing (BuildAllWith, NewIndexWith).
type Options struct {
	// Threads is the worker count for per-attribute PLI construction and
	// compressed-record inversion; 1 builds sequentially, any value <= 0
	// picks runtime.GOMAXPROCS(0). Per-attribute construction is fully
	// independent and each attribute's output is deterministic, so every
	// thread count yields bit-for-bit identical PLIs, records and order.
	Threads int
	// OnBuild, when non-nil, receives every attribute's finished PLI and
	// its build latency. With Threads > 1 it is called concurrently from
	// worker goroutines; callers needing ordered delivery should record
	// into a per-attribute slot (PLI.Attr) and replay afterwards.
	OnBuild func(p *PLI, d time.Duration)
}

// threadCount resolves the configured worker count: <= 0 means all CPUs.
func (o Options) threadCount() int {
	if o.Threads <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Threads
}

// BuildAll constructs one PLI per attribute of the relation, sequentially.
func BuildAll(rel *relation.Relation, ns relation.NullSemantics) []*PLI {
	return BuildAllWith(rel, ns, Options{Threads: 1})
}

// BuildAllWith constructs one PLI per attribute of the relation, fanning
// the attributes out over a worker pool. The result is identical to the
// sequential build for every thread count.
func BuildAllWith(rel *relation.Relation, ns relation.NullSemantics, opts Options) []*PLI {
	plis := make([]*PLI, rel.NumCols())
	threads := opts.threadCount()
	if threads > len(plis) {
		threads = len(plis)
	}
	buildOne := func(a int) {
		start := time.Time{}
		if opts.OnBuild != nil {
			//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
			start = time.Now()
		}
		col := make([]string, len(rel.Rows))
		for i, row := range rel.Rows {
			col[i] = row[a]
		}
		plis[a] = Build(a, col, ns)
		if opts.OnBuild != nil {
			//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
			opts.OnBuild(plis[a], time.Since(start))
		}
	}
	if threads <= 1 {
		for a := range plis {
			buildOne(a)
		}
		return plis
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range work {
				buildOne(a)
			}
		}()
	}
	for a := range plis {
		work <- a
	}
	close(work)
	wg.Wait()
	return plis
}

// Index bundles the per-attribute PLIs with the PLI-compressed records the
// Preprocessor produces (Alg. 1): Records[r][a] is the id of record r's
// cluster in attribute a, or Singleton if the record's value is unique in a.
// Order lists attribute indices sorted by descending NumClusters, the
// sortation the paper uses both to pick sampling sort keys and to choose
// the pivot PLI during validation.
type Index struct {
	Plis    []*PLI
	Records [][]int32
	Order   []int
	NumRows int
	NumCols int
}

// NewIndex preprocesses a relation into PLIs and compressed records,
// sequentially.
func NewIndex(rel *relation.Relation, ns relation.NullSemantics) *Index {
	return NewIndexWith(rel, ns, Options{Threads: 1})
}

// NewIndexWith preprocesses a relation into PLIs and compressed records
// with a worker pool (Alg. 1, parallelized per attribute). Both the PLI
// build and the record inversion partition their work by attribute —
// workers write disjoint columns of the record matrix — so the index is
// bit-for-bit identical across thread counts.
func NewIndexWith(rel *relation.Relation, ns relation.NullSemantics, opts Options) *Index {
	plis := BuildAllWith(rel, ns, opts)
	idx := &Index{
		Plis:    plis,
		NumRows: rel.NumRows(),
		NumCols: rel.NumCols(),
	}
	idx.Records = make([][]int32, idx.NumRows)
	flat := make([]int32, idx.NumRows*idx.NumCols)
	for i := range flat {
		flat[i] = Singleton
	}
	for r := 0; r < idx.NumRows; r++ {
		idx.Records[r], flat = flat[:idx.NumCols], flat[idx.NumCols:]
	}
	invert := func(a int) {
		for cid, cluster := range plis[a].Clusters {
			for _, r := range cluster {
				idx.Records[r][a] = int32(cid)
			}
		}
	}
	threads := opts.threadCount()
	if threads > idx.NumCols {
		threads = idx.NumCols
	}
	if threads <= 1 {
		for a := range plis {
			invert(a)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < threads; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for a := range work {
					invert(a)
				}
			}()
		}
		for a := range plis {
			work <- a
		}
		close(work)
		wg.Wait()
	}
	idx.Order = make([]int, idx.NumCols)
	for a := range idx.Order {
		idx.Order[a] = a
	}
	sort.SliceStable(idx.Order, func(i, j int) bool {
		return plis[idx.Order[i]].NumClusters > plis[idx.Order[j]].NumClusters
	})
	return idx
}

// ForEachClusterSize calls f with the size of every non-singleton cluster
// across all attribute PLIs, in attribute order. The metrics layer uses it
// to record the cluster-size distribution after preprocessing.
func (ix *Index) ForEachClusterSize(f func(size int)) {
	for _, p := range ix.Plis {
		for _, c := range p.Clusters {
			f(len(c))
		}
	}
}

// Rank returns, for every attribute, its position in Order. Attributes with
// more clusters (more distinct values) have lower ranks.
func (ix *Index) Rank() []int {
	rank := make([]int, ix.NumCols)
	for pos, a := range ix.Order {
		rank[a] = pos
	}
	return rank
}

// Pair is an ordered pair of record ids. The Validator reports pairs that
// violated FD candidates as comparison suggestions for the Sampler.
type Pair struct {
	A, B int32
}
