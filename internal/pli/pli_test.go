package pli

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hyfd/internal/relation"
)

// classRelation is the paper's §5 running example:
// (Brown,Math),(Walker,Math),(Brown,English),(Miller,English),(Brown,Math).
func classRelation() *relation.Relation {
	r := relation.New("class", []string{"Teacher", "Subject"})
	r.AppendRow([]string{"Brown", "Math"})
	r.AppendRow([]string{"Walker", "Math"})
	r.AppendRow([]string{"Brown", "English"})
	r.AppendRow([]string{"Miller", "English"})
	r.AppendRow([]string{"Brown", "Math"})
	return r
}

func TestBuildPaperExample(t *testing.T) {
	rel := classRelation()
	// Paper uses 1-based tuple ids; we use 0-based record ids.
	teacher := Build(0, rel.Column(0), relation.NullEqualsNull)
	if len(teacher.Clusters) != 1 {
		t.Fatalf("π{Teacher} clusters = %v", teacher.Clusters)
	}
	if got := teacher.Clusters[0]; len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("π{Teacher} = %v, want [0 2 4]", got)
	}
	if teacher.NumClusters != 3 { // Brown, Walker, Miller
		t.Fatalf("π{Teacher} NumClusters = %d, want 3", teacher.NumClusters)
	}
	subject := Build(1, rel.Column(1), relation.NullEqualsNull)
	if len(subject.Clusters) != 2 {
		t.Fatalf("π{Subject} clusters = %v", subject.Clusters)
	}
	if subject.NumClusters != 2 {
		t.Fatalf("π{Subject} NumClusters = %d, want 2", subject.NumClusters)
	}
}

func TestBuildNullSemantics(t *testing.T) {
	col := []string{relation.Null, relation.Null, "x"}
	eq := Build(0, col, relation.NullEqualsNull)
	if len(eq.Clusters) != 1 || len(eq.Clusters[0]) != 2 {
		t.Fatalf("null=null clusters = %v", eq.Clusters)
	}
	if eq.NumClusters != 2 {
		t.Fatalf("null=null NumClusters = %d, want 2", eq.NumClusters)
	}
	ne := Build(0, col, relation.NullNotEqualsNull)
	if len(ne.Clusters) != 0 {
		t.Fatalf("null!=null clusters = %v", ne.Clusters)
	}
	if ne.NumClusters != 3 {
		t.Fatalf("null!=null NumClusters = %d, want 3", ne.NumClusters)
	}
}

func TestConstantAndUnique(t *testing.T) {
	cons := Build(0, []string{"a", "a", "a"}, relation.NullEqualsNull)
	if !cons.IsConstant() || cons.IsUnique() {
		t.Fatal("constant column misclassified")
	}
	uniq := Build(0, []string{"a", "b", "c"}, relation.NullEqualsNull)
	if uniq.IsConstant() || !uniq.IsUnique() {
		t.Fatal("unique column misclassified")
	}
	empty := Build(0, nil, relation.NullEqualsNull)
	if !empty.IsConstant() || !empty.IsUnique() {
		t.Fatal("empty column should be constant and unique")
	}
	if cons.Size() != 3 || uniq.Size() != 0 {
		t.Fatal("Size broken")
	}
}

func TestNewIndexCompressedRecords(t *testing.T) {
	rel := classRelation()
	ix := NewIndex(rel, relation.NullEqualsNull)
	if ix.NumRows != 5 || ix.NumCols != 2 {
		t.Fatalf("dims %dx%d", ix.NumRows, ix.NumCols)
	}
	// Records 0,2,4 share Teacher cluster; record 1 and 3 are singletons.
	if ix.Records[0][0] != ix.Records[2][0] || ix.Records[2][0] != ix.Records[4][0] {
		t.Fatalf("Teacher clusters: %v %v %v", ix.Records[0], ix.Records[2], ix.Records[4])
	}
	if ix.Records[1][0] != Singleton || ix.Records[3][0] != Singleton {
		t.Fatal("singleton Teacher records not marked")
	}
	// Subject: {0,1,4} and {2,3}.
	if ix.Records[0][1] != ix.Records[1][1] || ix.Records[0][1] != ix.Records[4][1] {
		t.Fatal("Math cluster mismatch")
	}
	if ix.Records[2][1] != ix.Records[3][1] || ix.Records[2][1] == ix.Records[0][1] {
		t.Fatal("English cluster mismatch")
	}
	// Order: Teacher has 3 distinct values, Subject 2 → Teacher first.
	if ix.Order[0] != 0 || ix.Order[1] != 1 {
		t.Fatalf("Order = %v, want [0 1]", ix.Order)
	}
	rank := ix.Rank()
	if rank[0] != 0 || rank[1] != 1 {
		t.Fatalf("Rank = %v", rank)
	}
}

func TestPartitionErrorAndConstant(t *testing.T) {
	rel := classRelation()
	plis := BuildAll(rel, relation.NullEqualsNull)
	pt := PartitionOf(plis[0])
	if pt.Error() != 2 { // cluster of 3 → 3-1
		t.Fatalf("Error = %d, want 2", pt.Error())
	}
	if pt.RefinesConstant() {
		t.Fatal("Teacher is not constant")
	}
	cons := PartitionOf(Build(0, []string{"a", "a"}, relation.NullEqualsNull))
	if !cons.RefinesConstant() {
		t.Fatal("constant partition not detected")
	}
	single := PartitionOf(Build(0, []string{"a"}, relation.NullEqualsNull))
	if !single.RefinesConstant() {
		t.Fatal("single-row partition should be constant")
	}
}

func TestIntersectPaperExample(t *testing.T) {
	rel := classRelation()
	plis := BuildAll(rel, relation.NullEqualsNull)
	ix := NewIntersector(rel.NumRows())
	prod := ix.Intersect(PartitionOf(plis[0]), PartitionOf(plis[1]))
	// π{Teacher,Subject} = {{0,4}} (paper: {{1,5}} 1-based).
	if len(prod.Clusters) != 1 {
		t.Fatalf("product clusters = %v", prod.Clusters)
	}
	got := append([]int32(nil), prod.Clusters[0]...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("product cluster = %v, want [0 4]", got)
	}
}

func TestIntersectCommutes(t *testing.T) {
	seed := int64(42)
	r := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 25; trial++ {
		n := 30 + r.Intn(40)
		colA := make([]string, n)
		colB := make([]string, n)
		for i := 0; i < n; i++ {
			colA[i] = string(rune('a' + r.Intn(4)))
			colB[i] = string(rune('a' + r.Intn(4)))
		}
		pa := PartitionOf(Build(0, colA, relation.NullEqualsNull))
		pb := PartitionOf(Build(1, colB, relation.NullEqualsNull))
		in := NewIntersector(n)
		ab := in.Intersect(pa, pb)
		ba := in.Intersect(pb, pa)
		if ab.Error() != ba.Error() || ab.Size() != ba.Size() || len(ab.Clusters) != len(ba.Clusters) {
			t.Fatalf("trial %d: intersection not commutative: %v vs %v", trial, ab, ba)
		}
		// Compare normalized cluster sets.
		if normalize(ab) != normalize(ba) {
			t.Fatalf("trial %d: clusters differ", trial)
		}
	}
}

func normalize(p *Partition) string {
	cls := make([]string, 0, len(p.Clusters))
	for _, c := range p.Clusters {
		cc := append([]int32(nil), c...)
		sort.Slice(cc, func(i, j int) bool { return cc[i] < cc[j] })
		s := ""
		for _, r := range cc {
			s += string(rune(r)) + ","
		}
		cls = append(cls, s)
	}
	sort.Strings(cls)
	out := ""
	for _, c := range cls {
		out += c + "|"
	}
	return out
}

// TestQuickIntersectAgainstDirect checks the intersection against grouping
// the raw value pairs directly.
func TestQuickIntersectAgainstDirect(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(60)
		colA := make([]string, n)
		colB := make([]string, n)
		for i := 0; i < n; i++ {
			colA[i] = string(rune('a' + r.Intn(5)))
			colB[i] = string(rune('a' + r.Intn(5)))
		}
		pa := PartitionOf(Build(0, colA, relation.NullEqualsNull))
		pb := PartitionOf(Build(1, colB, relation.NullEqualsNull))
		prod := NewIntersector(n).Intersect(pa, pb)
		// Direct: group by (a,b) pair.
		pairCol := make([]string, n)
		for i := 0; i < n; i++ {
			pairCol[i] = colA[i] + "\x01" + colB[i]
		}
		direct := PartitionOf(Build(0, pairCol, relation.NullEqualsNull))
		return normalize(prod) == normalize(direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildPLI(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	n := 10000
	col := make([]string, n)
	for i := range col {
		col[i] = string(rune('a' + r.Intn(50)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(0, col, relation.NullEqualsNull)
	}
}

func BenchmarkIntersect(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	n := 10000
	colA := make([]string, n)
	colB := make([]string, n)
	for i := 0; i < n; i++ {
		colA[i] = string(rune('a' + r.Intn(20)))
		colB[i] = string(rune('a' + r.Intn(20)))
	}
	pa := PartitionOf(Build(0, colA, relation.NullEqualsNull))
	pb := PartitionOf(Build(1, colB, relation.NullEqualsNull))
	in := NewIntersector(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Intersect(pa, pb)
	}
}
