// Package rank scores FD candidates for ranked top-k discovery and tracks
// when the top of the ranking becomes stable, enabling early termination.
//
// The score of a candidate X -> A is a redundancy measure computed from the
// per-attribute PLIs built during preprocessing:
//
//	score(X -> A) = 1 / (max(1,|X|) * d(X))    d(X) = max_{B in X} distinct(B)
//
// where distinct(B) is the number of equivalence classes of attribute B
// (PLI.NumClusters, which counts stripped singleton classes and applies the
// configured null semantics). d({}) = 1, so the empty LHS scores 1 — a
// constant column is maximally redundant. Small determinant sets over
// low-cardinality attributes score highest: they are the FDs that explain
// the most repetition per determinant value, the "interesting" dependencies
// an interactive caller wants first.
//
// Two properties make the score suitable for early termination:
//
//  1. It depends only on the LHS attribute set and the per-attribute
//     distinct counts — never on row order or (for null-free relations)
//     row multiplicity, which the metamorphic tests pin.
//  2. It is monotone non-increasing under LHS specialization: adding an
//     attribute to X can only grow |X| and max-distinct. Every candidate the
//     engine will ever validate in the future is a specialization of some
//     node on the current unvalidated frontier, so the frontier's maximum
//     score bounds all future results (the cut bound — see Tracker).
package rank

import (
	"sort"

	"hyfd/internal/bitset"
	"hyfd/internal/fd"
	"hyfd/internal/fdtree"
	"hyfd/internal/pli"
)

// FD is a scored functional dependency with its final position in the
// ranked order (1-based). Rank is 0 until the position is assigned.
type FD struct {
	FD    fd.FD
	Score float64
	Rank  int
}

// Scorer computes candidate scores from the distinct-value counts of the
// prepared PLIs. It is immutable after construction and safe for
// concurrent use.
type Scorer struct {
	distinct []int
}

// NewScorer captures the per-attribute equivalence-class counts of the
// prepared index.
func NewScorer(ix *pli.Index) *Scorer {
	distinct := make([]int, ix.NumCols)
	for a, p := range ix.Plis {
		distinct[a] = p.NumClusters
	}
	return &Scorer{distinct: distinct}
}

// Score returns the redundancy score of any candidate with determinant lhs.
// The score is independent of the dependent attribute: all candidates
// sharing a determinant explain the same amount of repetition.
func (s *Scorer) Score(lhs bitset.Set) float64 {
	card, dmax := 0, 1
	lhs.ForEach(func(a int) bool {
		card++
		if s.distinct[a] > dmax {
			dmax = s.distinct[a]
		}
		return true
	})
	if card == 0 {
		card = 1
	}
	return 1 / (float64(card) * float64(dmax))
}

// Less is the ranked order: score descending, then the canonical cover
// order (Rhs ascending, LHS cardinality ascending, LHS key ascending) as a
// deterministic tie-break. It is a strict total order over distinct FDs.
func Less(a, b FD) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.FD.Rhs != b.FD.Rhs {
		return a.FD.Rhs < b.FD.Rhs
	}
	ca, cb := a.FD.Lhs.Cardinality(), b.FD.Lhs.Cardinality()
	if ca != cb {
		return ca < cb
	}
	return a.FD.Lhs.Key() < b.FD.Lhs.Key()
}

// Rank scores and orders a complete FD cover offline, returning the top k
// (k <= 0 means all) with scores >= minScore and ranks assigned. This is
// the reference ranking the differential fuzz oracle compares the engine's
// early-terminated output against.
func Rank(fds []fd.FD, s *Scorer, k int, minScore float64) []FD {
	scored := make([]FD, 0, len(fds))
	for _, f := range fds {
		scored = append(scored, FD{FD: f, Score: s.Score(f.Lhs)})
	}
	sort.Slice(scored, func(i, j int) bool { return Less(scored[i], scored[j]) })
	out := make([]FD, 0, len(scored))
	for _, e := range scored {
		if k > 0 && len(out) >= k {
			break
		}
		if e.Score < minScore {
			break
		}
		e.Rank = len(out) + 1
		out = append(out, e)
	}
	return out
}

// Tracker folds validated FDs into a ranking as the engine's level-wise
// validation proceeds and decides when the top-k prefix is stable.
//
// After each completed level it recomputes the cut bound: the maximum score
// over the unvalidated frontier (all marked candidates at tree depths the
// validator has not finished). Because the score is monotone under
// specialization and validated FDs are never retracted, every future result
// scores at most the bound; a validated FD scoring strictly above it can
// never be displaced, so its rank is final and it is emitted immediately
// (the any-time stream). Discovery stops once k results are stable — the
// emitted top-k then equals the top-k of the full canonical cover rescored
// offline, including order, because every unseen FD scores strictly below
// the k-th emitted one.
type Tracker struct {
	scorer   *Scorer
	tree     *fdtree.Tree
	topK     int // 0 = unbounded
	minScore float64

	validated []FD // ranked order maintained after every level
	stable    int  // prefix of validated with final ranks assigned
	bound     float64
}

// NewTracker builds a tracker over the engine's candidate tree. topK <= 0
// ranks the entire cover (no early cut from k); minScore 0 disables the
// score floor.
func NewTracker(scorer *Scorer, tree *fdtree.Tree, topK int, minScore float64) *Tracker {
	return &Tracker{scorer: scorer, tree: tree, topK: topK, minScore: minScore, bound: 1}
}

// Bound returns the current cut bound: an upper bound on the score of any
// FD not yet validated.
func (t *Tracker) Bound() float64 { return t.bound }

// Stable returns how many results have been emitted with final ranks.
func (t *Tracker) Stable() int { return t.stable }

// CompleteLevel folds the FDs validated on one finished tree level into the
// ranking, recomputes the cut bound from the remaining frontier, and
// returns the newly stable results (final ranks assigned, ready to emit)
// plus whether discovery needs to continue. cont is false once the top-k
// are stable or the bound has fallen below the score floor.
func (t *Tracker) CompleteLevel(level int, valid []fd.FD) (newlyStable []FD, cont bool) {
	for _, f := range valid {
		t.validated = append(t.validated, FD{FD: f, Score: t.scorer.Score(f.Lhs)})
	}
	// Re-sorting the whole slice is deterministic and cannot reorder the
	// stable prefix: every FD validated after a result became stable scores
	// at most the bound that made it stable, i.e. strictly below it.
	sort.Slice(t.validated, func(i, j int) bool { return Less(t.validated[i], t.validated[j]) })
	t.bound = t.frontierBound(level + 1)
	for t.stable < len(t.validated) {
		if t.topK > 0 && t.stable >= t.topK {
			break
		}
		e := &t.validated[t.stable]
		// Strict inequality: a frontier candidate tying the score could
		// still validate and precede e in the canonical tie-break.
		if e.Score <= t.bound || e.Score < t.minScore {
			break
		}
		e.Rank = t.stable + 1
		newlyStable = append(newlyStable, *e)
		t.stable++
	}
	cont = true
	if t.topK > 0 && t.stable >= t.topK {
		cont = false
	}
	if t.bound < t.minScore {
		cont = false
	}
	return newlyStable, cont
}

// frontierBound walks the unvalidated part of the candidate tree (depths >=
// from) and returns the maximum score over marked candidates; 0 when the
// frontier is empty (then every validated FD is stable).
func (t *Tracker) frontierBound(from int) float64 {
	bound := 0.0
	maxDepth := t.tree.Depth()
	for d := from; d <= maxDepth; d++ {
		for _, nd := range t.tree.GetLevel(d) {
			if !nd.HasFds() {
				continue
			}
			if s := t.scorer.Score(nd.Lhs); s > bound {
				bound = s
			}
		}
	}
	return bound
}

// Finalize returns the complete ranked result: top-k (or all, for topK <=
// 0) validated FDs with scores >= minScore, ranks assigned. Entries already
// emitted via CompleteLevel keep their positions — Finalize is a superset
// extension of the emitted prefix, never a reordering.
func (t *Tracker) Finalize() []FD {
	out := make([]FD, 0, len(t.validated))
	for _, e := range t.validated {
		if t.topK > 0 && len(out) >= t.topK {
			break
		}
		if e.Score < t.minScore {
			break
		}
		e.Rank = len(out) + 1
		out = append(out, e)
	}
	return out
}
