package rank

import (
	"context"
	"sort"
	"strconv"
	"testing"

	"hyfd/internal/bitset"
	"hyfd/internal/dataset"
	"hyfd/internal/fd"
	"hyfd/internal/fdtree"
	"hyfd/internal/relation"
)

// testScorer builds a scorer with fixed per-attribute distinct counts.
func testScorer(distinct ...int) *Scorer {
	return &Scorer{distinct: distinct}
}

// lhs is shorthand for a bitset over n attributes with the given members.
func lhs(n int, members ...int) bitset.Set {
	return bitset.FromIndices(n, members...)
}

func TestScore(t *testing.T) {
	// Attributes: 0 has 2 classes, 1 has 4, 2 is constant (1), 3 is a key (8).
	s := testScorer(2, 4, 1, 8)
	cases := []struct {
		lhs  bitset.Set
		want float64
	}{
		{lhs(4), 1},                // empty determinant: d=1, card clamps to 1
		{lhs(4, 2), 1},             // constant column: 1/(1*1)
		{lhs(4, 0), 1.0 / 2},       // 1/(1*2)
		{lhs(4, 1), 1.0 / 4},       // 1/(1*4)
		{lhs(4, 0, 1), 1.0 / 8},    // 1/(2*max(2,4))
		{lhs(4, 0, 3), 1.0 / 16},   // 1/(2*8)
		{lhs(4, 0, 1, 3), 1.0 / 24}, // 1/(3*8)
	}
	for _, c := range cases {
		if got := s.Score(c.lhs); got != c.want {
			t.Errorf("Score(%v) = %g, want %g", c.lhs, got, c.want)
		}
	}
}

// TestScoreMonotone: the cut bound's correctness rests on the score never
// increasing under LHS specialization. Checked exhaustively over every
// subset pair X ⊂ X∪{a}.
func TestScoreMonotone(t *testing.T) {
	s := testScorer(1, 2, 3, 5, 8)
	const n = 5
	for mask := 0; mask < 1<<n; mask++ {
		x := bitset.New(n)
		for a := 0; a < n; a++ {
			if mask&(1<<a) != 0 {
				x.Set(a)
			}
		}
		base := s.Score(x)
		for a := 0; a < n; a++ {
			if x.Test(a) {
				continue
			}
			if spec := s.Score(x.With(a)); spec > base {
				t.Fatalf("Score(%v + attr %d) = %g > Score(%v) = %g: not monotone",
					x, a, spec, x, base)
			}
		}
	}
}

// TestNewScorer: the scorer's distinct counts come from the prepared PLIs'
// equivalence-class counts (singletons included).
func TestNewScorer(t *testing.T) {
	rel := relation.New("scorer", []string{"const", "half", "key"})
	for i := 0; i < 6; i++ {
		rel.AppendRow([]string{"k", strconv.Itoa(i % 2), strconv.Itoa(i)})
	}
	ds, err := dataset.Prepare(context.Background(), rel, dataset.Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := NewScorer(ds.Index())
	for a, want := range []float64{1, 1.0 / 2, 1.0 / 6} {
		if got := s.Score(lhs(3, a)); got != want {
			t.Errorf("Score({%d}) = %g, want %g", a, got, want)
		}
	}
}

// rankFixture returns scored FDs with deliberate score ties so the
// tie-break chain (Rhs, cardinality, key) is exercised.
func rankFixture() []FD {
	const n = 4
	return []FD{
		{FD: fd.FD{Lhs: lhs(n, 1), Rhs: 0}, Score: 0.5},
		{FD: fd.FD{Lhs: lhs(n, 0), Rhs: 1}, Score: 0.5},    // ties on score, loses on Rhs
		{FD: fd.FD{Lhs: lhs(n, 0, 2), Rhs: 3}, Score: 0.25},
		{FD: fd.FD{Lhs: lhs(n, 3), Rhs: 2}, Score: 0.25},   // ties, wins on Rhs
		{FD: fd.FD{Lhs: lhs(n, 1, 2), Rhs: 3}, Score: 0.25}, // ties fully, loses on LHS key vs {0,2}
	}
}

// TestLessTotalOrder: Less must be a strict total order — irreflexive,
// asymmetric, transitive, and total over distinct entries. Checked
// exhaustively over the fixture.
func TestLessTotalOrder(t *testing.T) {
	fds := rankFixture()
	same := func(a, b FD) bool {
		return a.FD.Rhs == b.FD.Rhs && a.FD.Lhs.Equal(b.FD.Lhs)
	}
	for i, a := range fds {
		if Less(a, a) {
			t.Errorf("Less(%d, %d): not irreflexive", i, i)
		}
		for j, b := range fds {
			if i == j {
				continue
			}
			if Less(a, b) && Less(b, a) {
				t.Errorf("Less(%d, %d): not asymmetric", i, j)
			}
			if !same(a, b) && !Less(a, b) && !Less(b, a) {
				t.Errorf("Less(%d, %d): distinct entries incomparable", i, j)
			}
			for k, c := range fds {
				if Less(a, b) && Less(b, c) && !Less(a, c) {
					t.Errorf("Less(%d,%d,%d): not transitive", i, j, k)
				}
			}
		}
	}
}

// TestRank: the offline oracle orders by Less, assigns 1-based ranks, and
// applies the k budget and score floor as prefix cuts.
func TestRank(t *testing.T) {
	s := testScorer(2, 2, 4, 4)
	var cover []fd.FD
	for _, e := range rankFixture() {
		cover = append(cover, e.FD)
	}

	all := Rank(cover, s, 0, 0)
	if len(all) != len(cover) {
		t.Fatalf("Rank all: %d entries, want %d", len(all), len(cover))
	}
	for i, e := range all {
		if e.Rank != i+1 {
			t.Fatalf("entry %d has rank %d", i, e.Rank)
		}
		if i > 0 && Less(e, all[i-1]) {
			t.Fatalf("entries %d,%d out of order", i-1, i)
		}
	}

	if top2 := Rank(cover, s, 2, 0); len(top2) != 2 ||
		!top2[0].FD.Lhs.Equal(all[0].FD.Lhs) || top2[0].FD.Rhs != all[0].FD.Rhs ||
		!top2[1].FD.Lhs.Equal(all[1].FD.Lhs) || top2[1].FD.Rhs != all[1].FD.Rhs {
		t.Fatalf("Rank k=2 is not the 2-prefix of the full ranking: %v", top2)
	}

	floor := Rank(cover, s, 0, 0.3)
	for _, e := range floor {
		if e.Score < 0.3 {
			t.Fatalf("score floor leaked %g", e.Score)
		}
	}
	if len(floor) == len(all) {
		t.Fatal("score floor cut nothing; fixture broken")
	}
}

// TestTrackerStrictBound: a validated FD tying the frontier bound must NOT
// stabilize — a frontier candidate with the same score can still validate
// and precede it in the canonical tie-break. The fixture makes that
// concrete: {A}→1 (score 1/2) ties the pending {K1,K2}→0 (two constant
// columns, score 1/2), which outranks it on Rhs once validated.
func TestTrackerStrictBound(t *testing.T) {
	// Attributes: 0:A (2 classes), 1:K1 (constant), 2:K2 (constant).
	s := testScorer(2, 1, 1)
	tree := fdtree.New(3)
	tree.Add(lhs(3, 0), 1)    // level-1 candidate {A}→1
	tree.Add(lhs(3, 1, 2), 0) // level-2 candidate {K1,K2}→0

	tr := NewTracker(s, tree, 2, 0)
	if got := tr.Bound(); got != 1 {
		t.Fatalf("initial bound %g, want 1", got)
	}

	// Level 1 validates {A}→1; the candidate leaves the tree.
	tree.Remove(lhs(3, 0), 1)
	stable, cont := tr.CompleteLevel(1, []fd.FD{{Lhs: lhs(3, 0), Rhs: 1}})
	if len(stable) != 0 {
		t.Fatalf("tying FD stabilized early: %v", stable)
	}
	if !cont {
		t.Fatal("tracker stopped with the ranking unstable")
	}
	if got := tr.Bound(); got != 0.5 {
		t.Fatalf("bound after level 1 = %g, want 0.5", got)
	}

	// Level 2 validates {K1,K2}→0; the frontier is now empty.
	tree.Remove(lhs(3, 1, 2), 0)
	stable, cont = tr.CompleteLevel(2, []fd.FD{{Lhs: lhs(3, 1, 2), Rhs: 0}})
	if cont {
		t.Fatal("tracker kept going after top-k stabilized")
	}
	if len(stable) != 2 {
		t.Fatalf("got %d newly stable, want 2", len(stable))
	}
	// The late FD outranks the earlier one: equal score, smaller Rhs.
	if stable[0].FD.Rhs != 0 || stable[0].Rank != 1 || stable[1].FD.Rhs != 1 || stable[1].Rank != 2 {
		t.Fatalf("wrong final order: %+v", stable)
	}
	if fin := tr.Finalize(); len(fin) != 2 || fin[0].Rank != 1 || fin[0].FD.Rhs != 0 {
		t.Fatalf("Finalize disagrees with the emitted stream: %+v", fin)
	}
}

// TestTrackerEmitsAboveBound: an FD scoring strictly above the frontier
// bound is emitted immediately with its final rank, before discovery ends.
func TestTrackerEmitsAboveBound(t *testing.T) {
	// 0:konst (1 class), 1:B (4 classes), 2:C (8 classes).
	s := testScorer(1, 4, 8)
	tree := fdtree.New(3)
	tree.Add(lhs(3, 0), 1)    // {konst}→1, score 1
	tree.Add(lhs(3, 1), 2)    // {B}→2, score 1/4
	tree.Add(lhs(3, 1, 2), 0) // level 2, score 1/16

	tr := NewTracker(s, tree, 0, 0)
	tree.Remove(lhs(3, 0), 1)
	tree.Remove(lhs(3, 1), 2)
	stable, cont := tr.CompleteLevel(1, []fd.FD{
		{Lhs: lhs(3, 0), Rhs: 1},
		{Lhs: lhs(3, 1), Rhs: 2},
	})
	// Frontier bound is 1/16: both level-1 results clear it and stream out.
	if !cont || len(stable) != 2 {
		t.Fatalf("stable=%v cont=%v, want 2 results and continue", stable, cont)
	}
	if stable[0].Score != 1 || stable[0].Rank != 1 || stable[1].Score != 0.25 || stable[1].Rank != 2 {
		t.Fatalf("wrong emitted prefix: %+v", stable)
	}
	if tr.Stable() != 2 {
		t.Fatalf("Stable() = %d, want 2", tr.Stable())
	}

	tree.Remove(lhs(3, 1, 2), 0)
	stable, _ = tr.CompleteLevel(2, []fd.FD{{Lhs: lhs(3, 1, 2), Rhs: 0}})
	if len(stable) != 1 || stable[0].Rank != 3 {
		t.Fatalf("level-2 result not appended at rank 3: %+v", stable)
	}
	if tr.Bound() != 0 {
		t.Fatalf("empty frontier bound = %g, want 0", tr.Bound())
	}
}

// TestTrackerMinScoreStops: once the bound falls below the score floor no
// remaining candidate can qualify, so the tracker stops discovery.
func TestTrackerMinScoreStops(t *testing.T) {
	s := testScorer(2, 8)
	tree := fdtree.New(2)
	tree.Add(lhs(2, 0), 1) // score 1/2
	tree.Add(lhs(2, 1), 0) // score 1/8 — below the floor

	tr := NewTracker(s, tree, 0, 0.25)
	tree.Remove(lhs(2, 0), 1)
	stable, cont := tr.CompleteLevel(1, []fd.FD{{Lhs: lhs(2, 0), Rhs: 1}})
	if cont {
		t.Fatal("tracker kept going with bound below the score floor")
	}
	if len(stable) != 1 || stable[0].Score != 0.5 {
		t.Fatalf("stable = %+v, want the one qualifying FD", stable)
	}
	if fin := tr.Finalize(); len(fin) != 1 {
		t.Fatalf("Finalize leaked below-floor results: %+v", fin)
	}
}

// TestTrackerPrefixNeverReorders: across randomized validation interleavings
// the emitted stream must be a prefix of the final ranking in order — the
// documented "superset extension, never a reordering" contract. The
// deterministic fixture shuffles via sort keys instead of the banned RNG.
func TestTrackerPrefixNeverReorders(t *testing.T) {
	s := testScorer(1, 2, 3, 4, 6, 8)
	const n = 6
	// A spread of candidates over three levels.
	type cand struct {
		lhs bitset.Set
		rhs int
	}
	var levels = map[int][]cand{
		1: {{lhs(n, 0), 1}, {lhs(n, 1), 0}, {lhs(n, 2), 3}},
		2: {{lhs(n, 1, 2), 4}, {lhs(n, 3, 4), 5}},
		3: {{lhs(n, 2, 4, 5), 0}},
	}
	tree := fdtree.New(n)
	for _, cs := range levels {
		for _, c := range cs {
			tree.Add(c.lhs, c.rhs)
		}
	}
	tr := NewTracker(s, tree, 0, 0)
	var emitted []FD
	for level := 1; level <= 3; level++ {
		var valid []fd.FD
		for _, c := range levels[level] {
			tree.Remove(c.lhs, c.rhs)
			valid = append(valid, fd.FD{Lhs: c.lhs, Rhs: c.rhs})
		}
		stable, _ := tr.CompleteLevel(level, valid)
		emitted = append(emitted, stable...)
	}
	final := tr.Finalize()
	if len(final) != 6 {
		t.Fatalf("Finalize returned %d of 6 validated FDs", len(final))
	}
	if !sort.SliceIsSorted(final, func(i, j int) bool { return Less(final[i], final[j]) }) {
		t.Fatal("final ranking not in Less order")
	}
	for i, e := range emitted {
		f := final[i]
		if e.Rank != i+1 || f.Rank != i+1 || e.FD.Rhs != f.FD.Rhs || !e.FD.Lhs.Equal(f.FD.Lhs) {
			t.Fatalf("emitted[%d] = %+v disagrees with final[%d] = %+v", i, e, i, f)
		}
	}
}
