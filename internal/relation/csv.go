package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// CSVOptions controls CSV parsing into a Relation.
type CSVOptions struct {
	// Comma is the field separator; 0 means ','.
	Comma rune
	// HasHeader indicates the first record holds column names. When false,
	// columns are named col0, col1, ....
	HasHeader bool
	// EmptyIsNull maps empty fields to the Null sentinel.
	EmptyIsNull bool
	// NullLiteral, when non-empty, is an additional token mapped to Null
	// (e.g. "NULL", "\\N").
	NullLiteral string
	// Threads is the number of concurrent chunk parsers; 1 parses
	// sequentially, any value <= 0 picks runtime.GOMAXPROCS(0). The
	// parallel reader produces a relation bit-for-bit identical to the
	// sequential one — same row order, same null mapping, same error
	// messages — see csv_parallel.go for the determinism argument.
	Threads int
}

// ReadCSV parses a relation from CSV input. With more than one thread
// configured (the default resolves to the number of CPUs) the input is
// split into record-aligned chunks that parse concurrently.
func ReadCSV(name string, rd io.Reader, opts CSVOptions) (*Relation, error) {
	threads := opts.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > 1 {
		return readCSVParallel(name, rd, opts, threads)
	}
	return readCSVSequential(name, rd, opts)
}

// readCSVSequential is the single-threaded reference parser. The parallel
// reader defers to it for small inputs and to reproduce its exact error
// messages when any chunk fails to parse.
func readCSVSequential(name string, rd io.Reader, opts CSVOptions) (*Relation, error) {
	cr := csv.NewReader(rd)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = -1 // arity validated below for a better message
	cr.ReuseRecord = false

	rel := &Relation{Name: name}
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation %q: %w", name, err)
		}
		if first {
			first = false
			if opts.HasHeader {
				rel.Columns = append([]string(nil), rec...)
				continue
			}
			rel.Columns = make([]string, len(rec))
			for i := range rec {
				rel.Columns[i] = fmt.Sprintf("col%d", i)
			}
		}
		if len(rec) != len(rel.Columns) {
			return nil, fmt.Errorf("relation %q: row %d has %d fields, expected %d",
				name, len(rel.Rows)+1, len(rec), len(rel.Columns))
		}
		row := make([]string, len(rec))
		for i, cell := range rec {
			row[i] = mapNull(cell, opts)
		}
		rel.Rows = append(rel.Rows, row)
	}
	if rel.Columns == nil {
		return nil, fmt.Errorf("relation %q: empty input", name)
	}
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	return rel, nil
}

// mapNull applies the options' null mapping to one cell.
func mapNull(cell string, opts CSVOptions) string {
	if (opts.EmptyIsNull && cell == "") ||
		(opts.NullLiteral != "" && cell == opts.NullLiteral) {
		return Null
	}
	return cell
}

// ReadCSVFile parses a relation from a CSV file; the relation is named after
// the file's base name without extension.
func ReadCSVFile(path string, opts CSVOptions) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := filepath.Base(path)
	name := strings.TrimSuffix(base, filepath.Ext(base))
	return ReadCSV(name, f, opts)
}

// WriteCSV serializes the relation, header first. Null cells are written as
// empty fields.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Columns); err != nil {
		return err
	}
	buf := make([]string, len(r.Columns))
	for _, row := range r.Rows {
		for i, cell := range row {
			if cell == Null {
				buf[i] = ""
			} else {
				buf[i] = cell
			}
		}
		if err := cw.Write(buf); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
