package relation

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"sync"
)

// The parallel CSV reader streams the input into record-aligned byte chunks
// and parses the chunks concurrently, preserving exact row order and null
// semantics. Its determinism contract: for every input, ReadCSV with any
// thread count returns the same relation — or the same error — as the
// sequential parser.
//
// Chunk boundaries are placed only at newlines with an even number of
// preceding quote characters. For any input the sequential parser accepts,
// quotes exclusively delimit quoted fields (doubled inside them), so even
// quote parity is exactly "outside a quoted field" and every chunk is a
// whole number of CSV records; per-record parsing is context-free beyond
// that, so the concatenation of the chunk parses equals the sequential
// parse. For inputs the sequential parser rejects, either the offending
// record lands intact in some chunk (and fails there the same way) or a
// record straddles a chunk boundary inside an unclosed quote (and the
// truncated chunk fails at EOF) — any chunk error triggers a sequential
// re-parse of the buffered input, so the caller always sees the sequential
// parser's canonical error.

// csvChunkSize is the target byte length of one parse chunk: large enough
// to amortize per-chunk reader setup, small enough to spread wide inputs
// over all workers.
const csvChunkSize = 1 << 18

// readCSVParallel parses record-aligned chunks of the input concurrently on
// the given number of workers and stitches the rows back in input order.
func readCSVParallel(name string, rd io.Reader, opts CSVOptions, threads int) (*Relation, error) {
	chunks, err := splitCSVChunks(rd)
	if err != nil {
		return nil, fmt.Errorf("relation %q: %w", name, err)
	}

	type parsed struct {
		rows [][]string
		err  error
	}
	results := make([]parsed, len(chunks))
	var wg sync.WaitGroup
	work := make(chan int)
	if threads > len(chunks) {
		threads = len(chunks)
	}
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				// The header record (first record of chunk 0) keeps its raw
				// cells; everything else gets the null mapping, exactly as
				// the sequential parser applies it.
				skipFirst := i == 0 && opts.HasHeader
				rows, err := parseCSVChunk(chunks[i], opts, skipFirst)
				results[i] = parsed{rows: rows, err: err}
			}
		}()
	}
	for i := range chunks {
		work <- i
	}
	close(work)
	wg.Wait()

	for _, p := range results {
		if p.err != nil {
			// Some chunk failed to parse. Re-run the sequential parser over
			// the buffered input so the caller sees its canonical error (and
			// error precedence) rather than a chunk-local line number.
			return readCSVSequential(name, chunksReader(chunks), opts)
		}
	}

	rel := &Relation{Name: name}
	first := true
	for _, p := range results {
		for _, rec := range p.rows {
			if first {
				first = false
				if opts.HasHeader {
					rel.Columns = rec
					continue
				}
				rel.Columns = make([]string, len(rec))
				for i := range rec {
					rel.Columns[i] = fmt.Sprintf("col%d", i)
				}
			}
			if len(rec) != len(rel.Columns) {
				return nil, fmt.Errorf("relation %q: row %d has %d fields, expected %d",
					name, len(rel.Rows)+1, len(rec), len(rel.Columns))
			}
			rel.Rows = append(rel.Rows, rec)
		}
	}
	if rel.Columns == nil {
		return nil, fmt.Errorf("relation %q: empty input", name)
	}
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	return rel, nil
}

// splitCSVChunks reads the input into chunks of whole CSV records: a chunk
// ends only after a newline whose preceding quote count is even, i.e.
// outside any quoted field.
func splitCSVChunks(rd io.Reader) ([][]byte, error) {
	br := bufio.NewReaderSize(rd, 64<<10)
	var chunks [][]byte
	cur := make([]byte, 0, csvChunkSize+4096)
	inQuote := false
	for {
		line, err := br.ReadBytes('\n')
		cur = append(cur, line...)
		for _, b := range line {
			if b == '"' {
				inQuote = !inQuote
			}
		}
		if err == io.EOF {
			if len(cur) > 0 {
				chunks = append(chunks, cur)
			}
			return chunks, nil
		}
		if err != nil {
			return nil, err
		}
		if !inQuote && len(cur) >= csvChunkSize {
			chunks = append(chunks, cur)
			cur = make([]byte, 0, csvChunkSize+4096)
		}
	}
}

// parseCSVChunk parses one chunk's records and applies the null mapping to
// every record except, when skipFirst is set, the header record.
func parseCSVChunk(chunk []byte, opts CSVOptions, skipFirst bool) ([][]string, error) {
	cr := csv.NewReader(bytes.NewReader(chunk))
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = false
	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		if !skipFirst || len(rows) > 0 {
			for i, cell := range rec {
				rec[i] = mapNull(cell, opts)
			}
		}
		rows = append(rows, rec)
	}
}

// chunksReader re-reads the buffered chunks as one stream for the
// sequential error re-parse.
func chunksReader(chunks [][]byte) io.Reader {
	readers := make([]io.Reader, len(chunks))
	for i, c := range chunks {
		readers[i] = bytes.NewReader(c)
	}
	return io.MultiReader(readers...)
}
