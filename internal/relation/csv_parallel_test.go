package relation

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// buildTrickyCSV produces an input exercising everything the chunker must
// respect: quoted fields with embedded newlines, separators and escaped
// quotes, empty (null) cells, a NULL literal, and enough rows to span many
// chunks.
func buildTrickyCSV(rows int) string {
	var b strings.Builder
	b.WriteString("id,quoted,cat,maybe\n")
	for i := 0; i < rows; i++ {
		switch i % 5 {
		case 0:
			fmt.Fprintf(&b, "%d,\"line1\nline2 %d\",c%d,\n", i, i, i%3)
		case 1:
			fmt.Fprintf(&b, "%d,\"comma, quote \"\"q%d\"\"\",c%d,NULL\n", i, i, i%3)
		case 2:
			fmt.Fprintf(&b, "%d,plain%d,c%d,v\n", i, i, i%3)
		case 3:
			fmt.Fprintf(&b, "%d,,c%d,\"multi\n\nblank %d\"\n", i, i%3, i)
		default:
			fmt.Fprintf(&b, "%d,\"trailing\n\",c%d,x%d\n", i, i%3, i)
		}
	}
	return b.String()
}

func TestParallelReadCSVMatchesSequential(t *testing.T) {
	opts := CSVOptions{HasHeader: true, EmptyIsNull: true, NullLiteral: "NULL"}
	input := buildTrickyCSV(200)
	seqOpts := opts
	seqOpts.Threads = 1
	want, err := ReadCSV("t", strings.NewReader(input), seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{0, 2, 8} {
		parOpts := opts
		parOpts.Threads = threads
		got, err := ReadCSV("t", strings.NewReader(input), parOpts)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("threads=%d: parallel parse differs from sequential", threads)
		}
	}
}

func TestParallelReadCSVSpansChunkBoundaries(t *testing.T) {
	// Enough data to guarantee several chunks (csvChunkSize = 256 KiB):
	// long quoted cells with newlines force boundaries to respect quotes.
	var b strings.Builder
	b.WriteString("a,b\n")
	long := strings.Repeat("x", 4096)
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&b, "%d,\"%s\n%s\"\n", i, long, long)
	}
	input := b.String()
	if len(input) < 2*csvChunkSize {
		t.Fatalf("input too small to span chunks: %d bytes", len(input))
	}
	seq, err := ReadCSV("t", strings.NewReader(input), CSVOptions{HasHeader: true, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ReadCSV("t", strings.NewReader(input), CSVOptions{HasHeader: true, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("chunk-spanning parallel parse differs from sequential")
	}
	if par.NumRows() != 300 {
		t.Fatalf("rows = %d, want 300", par.NumRows())
	}
}

func TestParallelReadCSVErrorsMatchSequential(t *testing.T) {
	cases := []string{
		"",                        // empty input
		"a,b\n1,2,3\n",            // arity mismatch
		"a,b\n1,\"unterminated\n", // quote running to EOF
		"a,b\n1,2\nx\"y,3\n",      // bare quote
		"a,a\n1,2\n",              // duplicate column names
		"a,\n1,2\n",               // empty column name
	}
	for _, input := range cases {
		seqOpts := CSVOptions{HasHeader: true, EmptyIsNull: true, Threads: 1}
		parOpts := seqOpts
		parOpts.Threads = 4
		_, seqErr := ReadCSV("t", strings.NewReader(input), seqOpts)
		_, parErr := ReadCSV("t", strings.NewReader(input), parOpts)
		if seqErr == nil {
			t.Fatalf("input %q: sequential parser accepted a bad input", input)
		}
		if parErr == nil {
			t.Fatalf("input %q: parallel parser accepted what sequential rejects", input)
		}
		if seqErr.Error() != parErr.Error() {
			t.Fatalf("input %q: error mismatch:\nsequential: %v\nparallel:   %v", input, seqErr, parErr)
		}
	}
}

func BenchmarkReadCSVSequential(b *testing.B) {
	input := buildTrickyCSV(5000)
	opts := CSVOptions{HasHeader: true, EmptyIsNull: true, NullLiteral: "NULL", Threads: 1}
	b.SetBytes(int64(len(input)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReadCSV("t", strings.NewReader(input), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadCSVParallel(b *testing.B) {
	input := buildTrickyCSV(5000)
	opts := CSVOptions{HasHeader: true, EmptyIsNull: true, NullLiteral: "NULL", Threads: 8}
	b.SetBytes(int64(len(input)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReadCSV("t", strings.NewReader(input), opts); err != nil {
			b.Fatal(err)
		}
	}
}
