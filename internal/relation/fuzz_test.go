package relation

import (
	"strings"
	"testing"
)

// FuzzReadCSV ensures arbitrary input never panics the parser and that
// accepted relations are structurally valid.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n", true)
	f.Add("a;b\n", false)
	f.Add("", true)
	f.Add("a,b\n1\n", true)
	f.Add("\"q\"\"x\",y\n1,2\n", true)
	f.Add("a,a\n1,2\n", true)
	f.Add("a,b\n,NULL\n", false)
	f.Fuzz(func(t *testing.T, input string, header bool) {
		rel, err := ReadCSV("fuzz", strings.NewReader(input), CSVOptions{
			HasHeader:   header,
			EmptyIsNull: true,
			NullLiteral: "NULL",
		})
		if err != nil {
			return
		}
		if err := rel.Validate(); err != nil {
			// Duplicate/empty header names are rejected by ReadCSV itself;
			// reaching here means ReadCSV accepted an invalid relation.
			t.Fatalf("accepted invalid relation: %v", err)
		}
	})
}
