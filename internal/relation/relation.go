// Package relation provides in-memory relational instances — the input of
// every FD discovery algorithm in this repository — together with CSV
// parsing/serialization and the null-semantics switch described in §10.1 of
// the HyFD paper.
package relation

import (
	"fmt"
)

// NullSemantics selects how null values participate in equality comparisons
// during FD discovery. The paper (and all related work it compares against)
// defaults to NullEqualsNull.
type NullSemantics int

const (
	// NullEqualsNull treats two nulls as equal (⊥ = ⊥).
	NullEqualsNull NullSemantics = iota
	// NullNotEqualsNull treats every null as distinct from everything,
	// including other nulls (⊥ ≠ ⊥).
	NullNotEqualsNull
)

func (ns NullSemantics) String() string {
	switch ns {
	case NullEqualsNull:
		return "null=null"
	case NullNotEqualsNull:
		return "null!=null"
	default:
		return fmt.Sprintf("NullSemantics(%d)", int(ns))
	}
}

// Null is the in-memory representation of a SQL NULL cell. CSV readers map
// empty fields to Null when configured to do so.
const Null = "\x00<null>"

// Row is one record of a relation: a slice of cells in column order. It is
// an alias, not a defined type, so [][]string row literals and the existing
// Rows field stay assignable; the dataset layer's Delta uses it to describe
// inserted and deleted records.
type Row = []string

// Relation is a named relational instance: a schema of column names and a
// row-major matrix of string cells.
type Relation struct {
	// Name identifies the relation (dataset name, file stem, ...).
	Name string
	// Columns holds the attribute names, defining attribute indices.
	Columns []string
	// Rows holds the records; every row has len(Columns) cells.
	Rows [][]string
}

// New returns an empty relation with the given name and column names.
func New(name string, columns []string) *Relation {
	return &Relation{Name: name, Columns: columns}
}

// NumCols returns the number of attributes.
func (r *Relation) NumCols() int { return len(r.Columns) }

// NumRows returns the number of records.
func (r *Relation) NumRows() int { return len(r.Rows) }

// AppendRow adds a record. It panics if the arity does not match the schema,
// which always indicates a programming error in a generator or loader.
func (r *Relation) AppendRow(row []string) {
	if len(row) != len(r.Columns) {
		panic(fmt.Sprintf("relation %q: row arity %d != schema arity %d", r.Name, len(row), len(r.Columns)))
	}
	r.Rows = append(r.Rows, row)
}

// Project returns a new relation containing only the first k columns of r.
// The evaluation's column-scalability experiments (Fig. 7) sweep column
// prefixes this way. Row slices are copied; cell strings are shared.
func (r *Relation) Project(k int) *Relation {
	if k < 0 || k > len(r.Columns) {
		panic(fmt.Sprintf("relation %q: cannot project to %d of %d columns", r.Name, k, len(r.Columns)))
	}
	p := &Relation{
		Name:    fmt.Sprintf("%s[0:%d]", r.Name, k),
		Columns: append([]string(nil), r.Columns[:k]...),
		Rows:    make([][]string, len(r.Rows)),
	}
	for i, row := range r.Rows {
		p.Rows[i] = row[:k:k]
	}
	return p
}

// Head returns a new relation containing only the first n rows of r (all of
// them if n exceeds the row count). The row-scalability experiments (Fig. 6)
// sweep row prefixes this way. Row slices are shared.
func (r *Relation) Head(n int) *Relation {
	if n < 0 {
		panic(fmt.Sprintf("relation %q: negative head %d", r.Name, n))
	}
	if n > len(r.Rows) {
		n = len(r.Rows)
	}
	return &Relation{
		Name:    fmt.Sprintf("%s[%d rows]", r.Name, n),
		Columns: r.Columns,
		Rows:    r.Rows[:n:n],
	}
}

// Column returns the values of attribute a across all rows, in row order.
func (r *Relation) Column(a int) []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row[a]
	}
	return out
}

// Validate checks structural integrity: consistent arity and non-empty,
// unique column names. Loaders call it after parsing external input.
func (r *Relation) Validate() error {
	seen := make(map[string]struct{}, len(r.Columns))
	for i, c := range r.Columns {
		if c == "" {
			return fmt.Errorf("relation %q: column %d has empty name", r.Name, i)
		}
		if _, dup := seen[c]; dup {
			return fmt.Errorf("relation %q: duplicate column name %q", r.Name, c)
		}
		seen[c] = struct{}{}
	}
	for i, row := range r.Rows {
		if len(row) != len(r.Columns) {
			return fmt.Errorf("relation %q: row %d has %d cells, schema has %d columns", r.Name, i, len(row), len(r.Columns))
		}
	}
	return nil
}
