package relation

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func sample() *Relation {
	r := New("class", []string{"Teacher", "Subject"})
	r.AppendRow([]string{"Brown", "Math"})
	r.AppendRow([]string{"Walker", "Math"})
	r.AppendRow([]string{"Brown", "English"})
	return r
}

func TestBasicAccessors(t *testing.T) {
	r := sample()
	if r.NumCols() != 2 || r.NumRows() != 3 {
		t.Fatalf("dims = %dx%d, want 3x2", r.NumRows(), r.NumCols())
	}
	col := r.Column(0)
	if len(col) != 3 || col[0] != "Brown" || col[1] != "Walker" {
		t.Fatalf("Column(0) = %v", col)
	}
}

func TestAppendRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	sample().AppendRow([]string{"only-one"})
}

func TestProject(t *testing.T) {
	r := sample()
	p := r.Project(1)
	if p.NumCols() != 1 || p.NumRows() != 3 {
		t.Fatalf("Project dims wrong: %dx%d", p.NumRows(), p.NumCols())
	}
	if p.Rows[1][0] != "Walker" {
		t.Fatalf("Project lost data: %v", p.Rows)
	}
	if got := r.Project(0).NumCols(); got != 0 {
		t.Fatalf("Project(0) cols = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range projection")
		}
	}()
	r.Project(3)
}

func TestHead(t *testing.T) {
	r := sample()
	h := r.Head(2)
	if h.NumRows() != 2 || h.Rows[1][0] != "Walker" {
		t.Fatalf("Head(2) = %v", h.Rows)
	}
	if r.Head(99).NumRows() != 3 {
		t.Fatal("Head beyond length should clamp")
	}
	if r.Head(0).NumRows() != 0 {
		t.Fatal("Head(0) should be empty")
	}
}

func TestValidate(t *testing.T) {
	r := sample()
	if err := r.Validate(); err != nil {
		t.Fatalf("valid relation rejected: %v", err)
	}
	dup := New("d", []string{"A", "A"})
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate columns accepted")
	}
	anon := New("a", []string{"A", ""})
	if err := anon.Validate(); err == nil {
		t.Fatal("empty column name accepted")
	}
	bad := sample()
	bad.Rows = append(bad.Rows, []string{"x"})
	if err := bad.Validate(); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestReadCSVWithHeader(t *testing.T) {
	in := "a,b,c\n1,2,3\n4,,6\n"
	r, err := ReadCSV("t", strings.NewReader(in), CSVOptions{HasHeader: true, EmptyIsNull: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumCols() != 3 || r.NumRows() != 2 {
		t.Fatalf("dims = %dx%d", r.NumRows(), r.NumCols())
	}
	if r.Columns[1] != "b" {
		t.Fatalf("columns = %v", r.Columns)
	}
	if r.Rows[1][1] != Null {
		t.Fatalf("empty cell not mapped to Null: %q", r.Rows[1][1])
	}
}

func TestReadCSVNoHeaderAndNullLiteral(t *testing.T) {
	in := "1;NULL\n2;x\n"
	r, err := ReadCSV("t", strings.NewReader(in), CSVOptions{Comma: ';', NullLiteral: "NULL"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Columns[0] != "col0" || r.Columns[1] != "col1" {
		t.Fatalf("generated columns = %v", r.Columns)
	}
	if r.Rows[0][1] != Null {
		t.Fatal("NULL literal not mapped")
	}
	if r.Rows[1][1] != "x" {
		t.Fatal("regular cell mangled")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader(""), CSVOptions{HasHeader: true}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadCSV("t", strings.NewReader("a,b\n1\n"), CSVOptions{HasHeader: true}); err == nil {
		t.Fatal("ragged CSV accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := sample()
	r.Rows[0][1] = Null
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("class", &buf, CSVOptions{HasHeader: true, EmptyIsNull: true})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != r.NumRows() || back.NumCols() != r.NumCols() {
		t.Fatalf("roundtrip dims %dx%d", back.NumRows(), back.NumCols())
	}
	for i := range r.Rows {
		for j := range r.Rows[i] {
			if back.Rows[i][j] != r.Rows[i][j] {
				t.Fatalf("cell (%d,%d) = %q, want %q", i, j, back.Rows[i][j], r.Rows[i][j])
			}
		}
	}
}

func TestNullSemanticsString(t *testing.T) {
	if NullEqualsNull.String() != "null=null" || NullNotEqualsNull.String() != "null!=null" {
		t.Fatal("NullSemantics.String broken")
	}
	if NullSemantics(9).String() == "" {
		t.Fatal("unknown semantics should still render")
	}
}

type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > 4 {
		return 0, io.ErrClosedPipe
	}
	return len(p), nil
}

func TestWriteCSVPropagatesErrors(t *testing.T) {
	r := sample()
	if err := r.WriteCSV(&failingWriter{}); err == nil {
		t.Fatal("write error swallowed")
	}
}
