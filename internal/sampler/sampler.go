// Package sampler implements HyFD's focused sampling (§6, Alg. 2): the
// column-efficient half of Phase 1. It compares PLI-compressed records
// inside sliding windows over sorted PLI clusters, progressively widening
// the window of whichever attribute sortation currently yields the most new
// FD-violations per comparison, and stops once every sortation's efficiency
// falls below the (progressively relaxed) threshold.
package sampler

import (
	"container/heap"
	"context"
	"runtime"
	"sort"
	"sync"

	"hyfd/internal/bitset"
	"hyfd/internal/metrics"
	"hyfd/internal/pli"
)

// DefaultEfficiencyThreshold is the paper's recommended initial sampling
// efficiency: one new FD-violation per 100 comparisons.
const DefaultEfficiencyThreshold = 0.01

// cancelStride bounds how many record-pair comparisons may pass between two
// context checks inside a cluster scan; it keeps cancellation latency small
// on datasets whose clusters span most of the relation while keeping the
// per-comparison overhead negligible. Must be a power of two.
const cancelStride = 4096

// efficiency tracks the sampling performance of one attribute's sortation.
type efficiency struct {
	attr      int
	window    int
	comps     int64
	results   int64
	exhausted bool // window outgrew every cluster; no comparisons left
	heapIdx   int
}

func (e *efficiency) eval() float64 {
	if e.exhausted || e.comps == 0 {
		return 0
	}
	return float64(e.results) / float64(e.comps)
}

// effQueue is a max-heap of efficiencies.
type effQueue []*efficiency

func (q effQueue) Len() int            { return len(q) }
func (q effQueue) Less(i, j int) bool  { return q[i].eval() > q[j].eval() }
func (q effQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].heapIdx = i; q[j].heapIdx = j }
func (q *effQueue) Push(x interface{}) { e := x.(*efficiency); e.heapIdx = len(*q); *q = append(*q, e) }
func (q *effQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Sampler detects FD-violations (non-FDs) by windowed record comparisons.
// It keeps all observations across calls; Run returns only new ones.
type Sampler struct {
	ix        *pli.Index
	threshold float64
	queue     effQueue
	// sorted holds, per attribute, its PLI clusters re-sorted by the
	// neighbor-attribute keys of Fig. 3(1).
	sorted      [][][]int32
	seen        map[string]struct{}
	initialized bool
	unfocused   bool
	threads     int
	inst        metrics.SamplerInstruments

	// Comparisons counts record-pair comparisons over the sampler's life
	// (telemetry for the evaluation).
	Comparisons int64
	// Windows counts cluster-window runs over the sampler's life — the
	// sampler's unit of work, one per efficiency-queue pop (telemetry for
	// trace.SamplingRound).
	Windows int64
}

// Config parameterizes a Sampler. It replaces the former per-component
// setters so the engine's single thread knob configures the sampler
// atomically at construction time.
type Config struct {
	// Threshold is the initial sampling efficiency cutoff; any value <= 0
	// picks DefaultEfficiencyThreshold.
	Threshold float64
	// Threads is the worker count for parallel cluster sortation and
	// window runs (§10.4: the comparisons are independent of one another);
	// 1 is sequential, any value <= 0 picks runtime.GOMAXPROCS(0). Every
	// thread count produces the same observations in the same order.
	Threads int
	// Unfocused disables the neighborhood sortation of Fig. 3(1): windows
	// then slide over clusters in raw record order. This ablation
	// quantifies the contribution of focused sampling; it affects
	// efficiency only, never correctness.
	Unfocused bool
	// Instruments carries the sampler's direct metrics hooks. The zero
	// value is a no-op: the per-comparison hot path stays untouched,
	// comparison counts are batched once per round, and the per-window
	// instruments fire once per window run.
	Instruments metrics.SamplerInstruments
}

// New returns a Sampler over the preprocessed index.
func New(ix *pli.Index, cfg Config) *Sampler {
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = DefaultEfficiencyThreshold
	}
	threads := cfg.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return &Sampler{
		ix:        ix,
		threshold: threshold,
		threads:   threads,
		unfocused: cfg.Unfocused,
		inst:      cfg.Instruments,
		seen:      make(map[string]struct{}),
	}
}

// Threshold returns the current sampling efficiency threshold.
func (s *Sampler) Threshold() float64 { return s.threshold }

// Run performs one sampling round and returns the FD-violations first
// observed during this round, as bitsets of the attributes in which the
// compared records agree. On the first call it sorts all clusters and seeds
// every attribute with a window of two; on later calls it halves the
// efficiency threshold and replays the Validator's comparison suggestions
// before resuming the progressive window search.
//
// The context is checked between clusters and every cancelStride
// comparisons inside them; a canceled run returns ctx.Err() promptly and
// leaves the sampler in a consistent (but unfinished) state.
func (s *Sampler) Run(ctx context.Context, suggestions []pli.Pair) ([]bitset.Set, error) {
	compsBefore := s.Comparisons
	defer func() { s.inst.Comparisons.Add(s.Comparisons - compsBefore) }()
	var newObs []bitset.Set
	if !s.initialized {
		s.initialized = true
		if err := s.sortClusters(ctx); err != nil {
			return nil, err
		}
		s.queue = make(effQueue, 0, s.ix.NumCols)
		for attr := 0; attr < s.ix.NumCols; attr++ {
			e := &efficiency{attr: attr, window: 2}
			if err := s.runWindow(ctx, e, &newObs); err != nil {
				return nil, err
			}
			heap.Push(&s.queue, e)
		}
	} else {
		s.threshold /= 2
		for i, sug := range suggestions {
			if i%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			s.match(sug.A, sug.B, &newObs)
		}
	}
	for len(s.queue) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		best := s.queue[0]
		if best.eval() < s.threshold {
			break
		}
		best.window++
		if err := s.runWindow(ctx, best, &newObs); err != nil {
			return nil, err
		}
		heap.Fix(&s.queue, 0)
	}
	return newObs, nil
}

// sortClusters builds, for every attribute, a private copy of its clusters
// with the records sorted by their cluster ids in neighboring attributes of
// the distinctness order (Fig. 3(1)): the left neighbor has more clusters
// (a promising key), ties fall back to the right neighbor. Distinct sort
// keys per attribute give each record a different neighborhood in each of
// its clusters. Attributes are independent, so with threads configured they
// sort on a worker pool; each attribute's sortation is deterministic, so
// the result is identical for every thread count. The context is checked
// once per attribute.
func (s *Sampler) sortClusters(ctx context.Context) error {
	s.sorted = make([][][]int32, s.ix.NumCols)
	pos := s.ix.Rank()
	sortAttr := func(attr int) {
		p := s.ix.Plis[attr]
		if s.unfocused {
			s.sorted[attr] = p.Clusters
			return
		}
		left, right := -1, -1
		if i := pos[attr]; i > 0 {
			left = s.ix.Order[i-1]
		}
		if i := pos[attr]; i+1 < s.ix.NumCols {
			right = s.ix.Order[i+1]
		}
		clusters := make([][]int32, len(p.Clusters))
		for ci, cluster := range p.Clusters {
			c := append([]int32(nil), cluster...)
			sort.SliceStable(c, func(x, y int) bool {
				if left >= 0 {
					lx, ly := s.ix.Records[c[x]][left], s.ix.Records[c[y]][left]
					if lx != ly {
						return lx < ly
					}
				}
				if right >= 0 {
					rx, ry := s.ix.Records[c[x]][right], s.ix.Records[c[y]][right]
					if rx != ry {
						return rx < ry
					}
				}
				return c[x] < c[y]
			})
			clusters[ci] = c
		}
		s.sorted[attr] = clusters
	}
	if s.threads > 1 && s.ix.NumCols > 1 {
		var wg sync.WaitGroup
		work := make(chan int)
		workers := s.threads
		if workers > s.ix.NumCols {
			workers = s.ix.NumCols
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for attr := range work {
					if ctx.Err() != nil {
						continue // drain the channel without working
					}
					sortAttr(attr)
				}
			}()
		}
		for attr := 0; attr < s.ix.NumCols; attr++ {
			work <- attr
		}
		close(work)
		wg.Wait()
		return ctx.Err()
	}
	for attr := 0; attr < s.ix.NumCols; attr++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		sortAttr(attr)
	}
	return nil
}

// runWindow compares every record to its (window-1)-distant successor in
// each cluster of the attribute's sortation (Alg. 2 lines 27-35). With
// threads configured, clusters are matched by a worker pool; the workers
// build raw agree-sets and the merge deduplicates sequentially, keeping
// the observation order deterministic.
func (s *Sampler) runWindow(ctx context.Context, e *efficiency, newObs *[]bitset.Set) error {
	before := len(*newObs)
	comps := int64(0)
	clusters := s.sorted[e.attr]
	if s.threads > 1 && len(clusters) > 1 {
		var err error
		comps, err = s.runWindowParallel(ctx, e.window, clusters, newObs)
		if err != nil {
			return err
		}
	} else {
		for _, cluster := range clusters {
			if err := ctx.Err(); err != nil {
				return err
			}
			for i := 0; i+e.window-1 < len(cluster); i++ {
				s.match(cluster[i], cluster[i+e.window-1], newObs)
				comps++
				if comps%cancelStride == 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
			}
		}
	}
	if comps == 0 {
		e.exhausted = true
	}
	e.comps += comps
	e.results += int64(len(*newObs) - before)
	s.Windows++
	s.inst.Windows.Inc()
	if comps > 0 {
		s.inst.WindowEfficiency.Observe(float64(len(*newObs)-before) / float64(comps))
	}
	return nil
}

// runWindowParallel fans the clusters of one window run out over workers.
// Workers re-check the context before every cluster; on cancellation the
// remaining work items drain without being processed and the partial round
// is discarded by the caller.
func (s *Sampler) runWindowParallel(ctx context.Context, window int, clusters [][]int32, newObs *[]bitset.Set) (int64, error) {
	perCluster := make([][]bitset.Set, len(clusters))
	var comps int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < s.threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for ci := range work {
				if ctx.Err() != nil {
					continue // drain the channel without working
				}
				cluster := clusters[ci]
				var sets []bitset.Set
				for i := 0; i+window-1 < len(cluster); i++ {
					ra, rb := s.ix.Records[cluster[i]], s.ix.Records[cluster[i+window-1]]
					agree := bitset.New(s.ix.NumCols)
					for attr := range ra {
						if ra[attr] != pli.Singleton && ra[attr] == rb[attr] {
							agree.Set(attr)
						}
					}
					sets = append(sets, agree)
					local++
				}
				perCluster[ci] = sets
			}
			mu.Lock()
			comps += local
			mu.Unlock()
		}()
	}
	for ci := range clusters {
		work <- ci
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s.Comparisons += comps
	for _, sets := range perCluster {
		for _, agree := range sets {
			key := agree.Key()
			if _, dup := s.seen[key]; dup {
				continue
			}
			s.seen[key] = struct{}{}
			*newObs = append(*newObs, agree)
		}
	}
	return comps, nil
}

// match compares two compressed records and records the agree-set bitset if
// it is a new observation. Singleton cluster ids never match, mirroring
// stripped-partition semantics.
func (s *Sampler) match(a, b int32, newObs *[]bitset.Set) {
	s.Comparisons++
	ra, rb := s.ix.Records[a], s.ix.Records[b]
	agree := bitset.New(s.ix.NumCols)
	for attr := range ra {
		if ra[attr] != pli.Singleton && ra[attr] == rb[attr] {
			agree.Set(attr)
		}
	}
	key := agree.Key()
	if _, dup := s.seen[key]; dup {
		return
	}
	s.seen[key] = struct{}{}
	*newObs = append(*newObs, agree)
}

// ObservationCount returns the number of distinct FD-violations seen so far.
func (s *Sampler) ObservationCount() int { return len(s.seen) }
