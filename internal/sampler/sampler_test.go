package sampler

import (
	"context"
	"errors"
	"math/rand"
	"strconv"
	"testing"

	"hyfd/internal/bitset"
	"hyfd/internal/pli"
	"hyfd/internal/relation"
)

func buildIndex(rows [][]string, cols []string) *pli.Index {
	rel := relation.New("t", cols)
	for _, r := range rows {
		rel.AppendRow(r)
	}
	return pli.NewIndex(rel, relation.NullEqualsNull)
}

// mustRun executes one sampling round under a background context.
func mustRun(t *testing.T, s *Sampler, suggestions []pli.Pair) []bitset.Set {
	t.Helper()
	obs, err := s.Run(context.Background(), suggestions)
	if err != nil {
		t.Fatal(err)
	}
	return obs
}

func TestRunCanceledContext(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var rows [][]string
	for i := 0; i < 200; i++ {
		rows = append(rows, []string{
			strconv.Itoa(r.Intn(4)), strconv.Itoa(r.Intn(3)), strconv.Itoa(i % 9),
		})
	}
	for _, threads := range []int{1, 4} {
		ix := buildIndex(rows, []string{"A", "B", "C"})
		s := New(ix, Config{Threads: threads})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := s.Run(ctx, nil); !errors.Is(err, context.Canceled) {
			t.Fatalf("threads=%d: err = %v, want context.Canceled", threads, err)
		}
	}
}

func TestFirstRunFindsViolations(t *testing.T) {
	// R(A,B,C): r1(1,2,3), r2(1,4,5) — the paper's §4 example pair.
	ix := buildIndex([][]string{
		{"1", "2", "3"},
		{"1", "4", "5"},
	}, []string{"A", "B", "C"})
	s := New(ix, Config{Threads: 1})
	obs := mustRun(t, s, nil)
	if len(obs) != 1 {
		t.Fatalf("observations = %v", obs)
	}
	if !obs[0].Equal(bitset.FromIndices(3, 0)) {
		t.Fatalf("agree set = %v, want {0}", obs[0])
	}
	if s.Comparisons == 0 || s.ObservationCount() != 1 {
		t.Fatalf("telemetry: comps=%d obs=%d", s.Comparisons, s.ObservationCount())
	}
}

func TestObservationsAreSoundAgreeSets(t *testing.T) {
	// Every reported observation must correspond to an actual record pair
	// agreement pattern: attributes marked agree, all others differ —
	// verified against the raw data for every window the sampler ran.
	r := rand.New(rand.NewSource(8))
	var rows [][]string
	for i := 0; i < 50; i++ {
		rows = append(rows, []string{
			strconv.Itoa(r.Intn(3)), strconv.Itoa(r.Intn(3)),
			strconv.Itoa(r.Intn(2)), strconv.Itoa(i % 7),
		})
	}
	ix := buildIndex(rows, []string{"A", "B", "C", "D"})
	s := New(ix, Config{Threads: 1})
	obs := mustRun(t, s, nil)
	if len(obs) == 0 {
		t.Fatal("no observations on a 50-row correlated relation")
	}
	// An observed agree-set Y is sound if SOME pair of records agrees
	// exactly on Y. Check by scanning all pairs.
	valid := make(map[string]bool)
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			agree := bitset.New(4)
			for a := 0; a < 4; a++ {
				if rows[i][a] == rows[j][a] {
					agree.Set(a)
				}
			}
			valid[agree.Key()] = true
		}
	}
	for _, o := range obs {
		if !valid[o.Key()] {
			t.Fatalf("observation %v matches no record pair", o)
		}
	}
}

func TestRunDeduplicatesAcrossCalls(t *testing.T) {
	ix := buildIndex([][]string{
		{"1", "2"}, {"1", "3"}, {"1", "4"},
	}, []string{"A", "B"})
	s := New(ix, Config{Threads: 1})
	first := mustRun(t, s, nil)
	if len(first) != 1 { // all pairs agree exactly on {A}
		t.Fatalf("first run = %v", first)
	}
	// Re-running with a suggestion matching the same pattern adds nothing.
	second := mustRun(t, s, []pli.Pair{{A: 0, B: 2}})
	if len(second) != 0 {
		t.Fatalf("second run rediscovered %v", second)
	}
	if s.Threshold() >= DefaultEfficiencyThreshold {
		t.Fatal("threshold was not relaxed on re-entry")
	}
}

func TestSuggestionsProcessedOnReentry(t *testing.T) {
	// Records 0 and 3 share A and B but live in different C clusters, so a
	// window over any single sortation may miss them; a suggestion forces
	// the comparison.
	ix := buildIndex([][]string{
		{"x", "y", "1"},
		{"x", "z", "2"},
		{"w", "y", "3"},
		{"x", "y", "4"},
	}, []string{"A", "B", "C"})
	s := New(ix, Config{Threads: 1})
	mustRun(t, s, nil)
	before := s.ObservationCount()
	obs := mustRun(t, s, []pli.Pair{{A: 0, B: 3}})
	// The pair (0,3) agrees exactly on {A,B}; if the first run already saw
	// that pattern the second returns nothing, otherwise exactly it.
	for _, o := range obs {
		if !o.Equal(bitset.FromIndices(3, 0, 1)) {
			t.Fatalf("unexpected observation %v", o)
		}
	}
	if s.ObservationCount() < before {
		t.Fatal("observation count regressed")
	}
}

func TestUniqueColumnsYieldNothing(t *testing.T) {
	ix := buildIndex([][]string{
		{"1", "a"}, {"2", "b"}, {"3", "c"},
	}, []string{"A", "B"})
	s := New(ix, Config{Threads: 1})
	obs := mustRun(t, s, nil)
	// No PLI clusters exist, so no pairs are compared and no violations
	// observed.
	if len(obs) != 0 || s.Comparisons != 0 {
		t.Fatalf("obs=%v comps=%d", obs, s.Comparisons)
	}
	// Subsequent runs terminate immediately too.
	if got := mustRun(t, s, nil); len(got) != 0 {
		t.Fatalf("re-run returned %v", got)
	}
}

func TestEmptyRelation(t *testing.T) {
	ix := buildIndex(nil, []string{"A", "B"})
	s := New(ix, Config{Threads: 1})
	if obs := mustRun(t, s, nil); len(obs) != 0 {
		t.Fatalf("obs on empty relation = %v", obs)
	}
}

func TestDuplicateRecordsAgreeEverywhere(t *testing.T) {
	ix := buildIndex([][]string{
		{"1", "2"}, {"1", "2"},
	}, []string{"A", "B"})
	s := New(ix, Config{Threads: 1})
	obs := mustRun(t, s, nil)
	if len(obs) != 1 || !obs[0].Equal(bitset.FromIndices(2, 0, 1)) {
		t.Fatalf("obs = %v, want full agree-set", obs)
	}
}

func TestProgressiveWindowingCoversClusters(t *testing.T) {
	// One big cluster in A; windows must eventually compare distant
	// records when their comparisons keep producing new observations.
	var rows [][]string
	for i := 0; i < 12; i++ {
		rows = append(rows, []string{"same", strconv.Itoa(i / 2), strconv.Itoa(i % 2)})
	}
	ix := buildIndex(rows, []string{"A", "B", "C"})
	s := New(ix, Config{Threads: 1})
	obs := mustRun(t, s, nil)
	// Expected distinct agree patterns containing A: {A}, {A,B}, {A,C},
	// {A,B,C}... which exist depends on data; at minimum {A,B} (adjacent
	// same-B) and {A} or {A,C} patterns appear.
	if len(obs) < 2 {
		t.Fatalf("progressive windowing found only %v", obs)
	}
}

func TestParallelSamplingMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	var rows [][]string
	for i := 0; i < 120; i++ {
		rows = append(rows, []string{
			strconv.Itoa(r.Intn(5)), strconv.Itoa(r.Intn(4)),
			strconv.Itoa(r.Intn(3)), strconv.Itoa(i % 11),
		})
	}
	ix := buildIndex(rows, []string{"A", "B", "C", "D"})
	seq := New(ix, Config{Threads: 1})
	seqObs := mustRun(t, seq, nil)

	ix2 := buildIndex(rows, []string{"A", "B", "C", "D"})
	par := New(ix2, Config{Threads: 8})
	parObs := mustRun(t, par, nil)

	if seq.Comparisons != par.Comparisons {
		t.Fatalf("comparison counts differ: %d vs %d", seq.Comparisons, par.Comparisons)
	}
	if len(seqObs) != len(parObs) {
		t.Fatalf("observation counts differ: %d vs %d", len(seqObs), len(parObs))
	}
	for i := range seqObs {
		if !seqObs[i].Equal(parObs[i]) {
			t.Fatalf("observation %d differs: %v vs %v", i, seqObs[i], parObs[i])
		}
	}
}

func BenchmarkSamplerRun(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	var rows [][]string
	for i := 0; i < 2000; i++ {
		rows = append(rows, []string{
			strconv.Itoa(r.Intn(50)), strconv.Itoa(r.Intn(20)),
			strconv.Itoa(r.Intn(10)), strconv.Itoa(r.Intn(5)),
			strconv.Itoa(i), strconv.Itoa(r.Intn(100)),
		})
	}
	ix := buildIndex(rows, []string{"A", "B", "C", "D", "E", "F"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(ix, Config{Threads: 1})
		s.Run(context.Background(), nil)
	}
}
