package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"hyfd/internal/tracing"
)

// decodeJSON strictly parses the request body into v: unknown fields and
// trailing garbage are 400s, so client typos fail loudly instead of being
// silently ignored.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data after JSON body", ErrBadRequest)
	}
	return nil
}

// handleDatasetCreate registers a dataset: POST /v1/datasets.
func (s *Server) handleDatasetCreate(w http.ResponseWriter, r *http.Request) {
	var req DatasetRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	s.mu.Lock()
	closing := s.closing
	s.mu.Unlock()
	if closing {
		s.writeError(w, ErrShuttingDown)
		return
	}
	// Preparation is bounded by the request context: an impatient client
	// aborts its own registration, not the server.
	info, err := s.datasets.register(r.Context(), req, s.cfg.DataDir)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.inst.datasets.Set(float64(s.datasets.count()))
	s.inst.prepSeconds.Observe(float64(info.PrepareNs) / 1e9)
	w.Header().Set("Location", "/v1/datasets/"+info.Name)
	writeJSON(w, http.StatusCreated, info)
}

// handleDatasetDelta applies one insert/delete batch to a registration:
// POST /v1/datasets/{name}/delta. Success advances the dataset to a new
// immutable snapshot version; jobs admitted earlier keep the version they
// resolved. A delta racing another delta on the same dataset answers 409
// (retry against the new version); a draining server answers 503 with
// Retry-After, the same contract as job admission.
func (s *Server) handleDatasetDelta(w http.ResponseWriter, r *http.Request) {
	var req DeltaRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	s.mu.Lock()
	closing := s.closing
	s.mu.Unlock()
	if closing {
		s.writeError(w, ErrShuttingDown)
		return
	}
	resp, err := s.datasets.applyDelta(r.Context(), r.PathValue("name"), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.inst.deltas.Inc()
	writeJSON(w, http.StatusOK, resp)
}

// handleDatasetList lists registrations: GET /v1/datasets.
func (s *Server) handleDatasetList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Datasets []DatasetInfo `json:"datasets"`
	}{s.datasets.list()})
}

// handleDatasetGet returns one registration: GET /v1/datasets/{name}.
func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	_, info, err := s.datasets.lookup(r.PathValue("name"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleDatasetDelete unregisters a dataset: DELETE /v1/datasets/{name}.
// Jobs already running over it are unaffected (the Dataset is immutable);
// new jobs naming it get 404.
func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.datasets.remove(r.PathValue("name")); err != nil {
		s.writeError(w, err)
		return
	}
	s.inst.datasets.Set(float64(s.datasets.count()))
	w.WriteHeader(http.StatusNoContent)
}

// handleJobCreate submits a job: POST /v1/jobs. Accepted jobs answer 202
// with the job view and a Location header; a full queue answers 429 with
// Retry-After. The job runs on the server's context, not the request's —
// it outlives this POST.
func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	j, err := s.submit(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.view())
}

// handleJobList lists jobs in submission order: GET /v1/jobs.
func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.jobs.list()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.view())
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{views})
}

// handleJobGet returns one job: GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleJobCancel cancels a job: DELETE /v1/jobs/{id}. Queued jobs cancel
// immediately; running jobs get their context canceled and unwind on the
// engine's next cancellation check. Canceling a finished job is a no-op.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.cancelJob(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleJobTrace serves a job's flight recorder: GET /v1/jobs/{id}/trace.
// The default rendering is the span-tree JSON document; ?format=chrome
// re-renders it in Chrome trace-event format, which loads directly in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Running jobs answer with
// their timeline so far (open spans carry "open": true); servers running
// with tracing disabled answer 404.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	if j.rec == nil {
		s.writeError(w, fmt.Errorf("%w: tracing disabled (trace capacity < 0)", ErrNoTrace))
		return
	}
	snap := j.rec.Snapshot()
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		_ = snap.WriteChrome(w)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleSlowJobs serves the daemon-wide slowest-jobs ring: GET
// /debug/slowjobs, slowest first. With the ring disabled (SlowJobs < 0) the
// list is empty.
func (s *Server) handleSlowJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.slow.Snapshot()
	if jobs == nil {
		jobs = []tracing.SlowJob{}
	}
	writeJSON(w, http.StatusOK, struct {
		SlowJobs []tracing.SlowJob `json:"slow_jobs"`
	}{jobs})
}

// handleHealth is the liveness probe: GET /healthz. It answers 200 for the
// whole process lifetime — including shutdown drain, when the process is
// still healthy, just no longer accepting work. Routing decisions belong to
// the readiness probe below.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Datasets int    `json:"datasets"`
		Queued   int    `json:"queued"`
	}{"ok", s.datasets.count(), len(s.queue)})
}

// handleReady is the readiness probe: GET /readyz. It flips to 503 the
// moment BeginShutdown gates admission, so load balancers stop routing new
// work here while in-flight jobs drain.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	closing := s.closing
	s.mu.Unlock()
	if closing {
		s.writeError(w, ErrShuttingDown)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Datasets int    `json:"datasets"`
		Queued   int    `json:"queued"`
	}{"ready", s.datasets.count(), len(s.queue)})
}
