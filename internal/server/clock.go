package server

import "time"

// clock abstracts the deadline-timer path so tests can drive job expiry
// without real sleeps. The serving path uses realClock; tests inject a fake
// through Config.clock and advance it manually (see clock_test.go).
type clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc arranges for f to run in its own goroutine once d has
	// elapsed and returns a handle that can stop the pending call.
	AfterFunc(d time.Duration, f func()) timer
}

// timer is the stoppable handle AfterFunc returns; Stop follows
// time.Timer.Stop semantics (false when the callback already fired or the
// timer was already stopped).
type timer interface {
	Stop() bool
}

// realClock is the production clock: thin wrappers over package time.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) AfterFunc(d time.Duration, f func()) timer { return time.AfterFunc(d, f) }
