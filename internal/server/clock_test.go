package server

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deadline tests: timers fire
// only when Advance moves the clock past their due time, so tests exercise
// job expiry without real sleeps.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	c       *fakeClock
	at      time.Time
	f       func()
	stopped bool
	fired   bool
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1700000000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) AfterFunc(d time.Duration, f func()) timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{c: c, at: c.now.Add(d), f: f}
	c.timers = append(c.timers, t)
	return t
}

func (t *fakeTimer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Advance moves the clock and fires every due timer. Callbacks run outside
// the clock lock: a job's expiry callback takes the job mutex, and a
// concurrent terminal transition holding that mutex may call Stop, which
// takes the clock lock — firing under the lock would invert that order.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var due []*fakeTimer
	for _, t := range c.timers {
		if !t.stopped && !t.fired && !t.at.After(c.now) {
			t.fired = true
			due = append(due, t)
		}
	}
	c.mu.Unlock()
	for _, t := range due {
		t.f()
	}
}

func TestFakeClock(t *testing.T) {
	c := newFakeClock()
	var fired []int
	c.AfterFunc(time.Second, func() { fired = append(fired, 1) })
	two := c.AfterFunc(2*time.Second, func() { fired = append(fired, 2) })
	c.AfterFunc(3*time.Second, func() { fired = append(fired, 3) })

	c.Advance(time.Second)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("after 1s: fired %v", fired)
	}
	if !two.Stop() {
		t.Fatal("stopping a pending timer must report true")
	}
	if two.Stop() {
		t.Fatal("double stop must report false")
	}
	c.Advance(5 * time.Second)
	if len(fired) != 2 || fired[1] != 3 {
		t.Fatalf("after 6s: fired %v (stopped timer must not fire)", fired)
	}
	if want := time.Unix(1700000000, 0).Add(6 * time.Second); !c.Now().Equal(want) {
		t.Fatalf("now %v, want %v", c.Now(), want)
	}
}
