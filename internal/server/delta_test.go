package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

// postDelta issues one delta and returns the status code with the decoded
// response (zero-valued on errors).
func postDelta(t *testing.T, ts *httptest.Server, name string, req DeltaRequest) (int, DeltaResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	code, data := do(t, "POST", ts.URL+"/v1/datasets/"+name+"/delta", string(body))
	var resp DeltaResponse
	if code == http.StatusOK {
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatalf("delta response: %v: %s", err, data)
		}
	}
	return code, resp
}

// TestDatasetDelta covers the streaming-ingest happy path: a delta advances
// the registration to version 2, jobs over the new version see the new rows,
// and the result is byte-identical to a fresh registration of the final
// relation — the server-level exactness contract.
func TestDatasetDelta(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	registerCSV(t, ts, "t", tinyCSV)

	code, resp := postDelta(t, ts, "t", DeltaRequest{
		Inserts: [][]string{{"5", "z", "p"}, {"6", "z", "q"}},
		Deletes: [][]string{{"1", "x", "p"}},
	})
	if code != http.StatusOK {
		t.Fatalf("delta: status %d", code)
	}
	if resp.Dataset.Version != 2 || resp.Dataset.Rows != 5 {
		t.Fatalf("delta response %+v, want version 2 with 5 rows", resp)
	}
	if resp.Inserts != 2 || resp.Deletes != 1 {
		t.Fatalf("delta counts %+v", resp)
	}

	// The registration itself now reports the new version.
	codeGet, data := do(t, "GET", ts.URL+"/v1/datasets/t", "")
	var info DatasetInfo
	if err := json.Unmarshal(data, &info); err != nil || codeGet != http.StatusOK {
		t.Fatalf("GET dataset: %d %v", codeGet, err)
	}
	if info.Version != 2 || info.Rows != 5 {
		t.Fatalf("dataset info %+v, want version 2 with 5 rows", info)
	}

	// A job admitted after the delta is pinned to version 2 and must match a
	// cold registration of the same final relation byte-for-byte.
	view := waitTerminal(t, ts, submitJob(t, ts, JobRequest{Dataset: "t"}).ID)
	if view.Status != StatusDone || view.Result == nil {
		t.Fatalf("job after delta: %+v", view)
	}
	if view.DatasetVersion != 2 {
		t.Fatalf("job pinned to version %d, want 2", view.DatasetVersion)
	}
	registerCSV(t, ts, "cold", "A,B,C\n2,x,q\n3,y,p\n4,y,q\n5,z,p\n6,z,q\n")
	coldView := waitTerminal(t, ts, submitJob(t, ts, JobRequest{Dataset: "cold"}).ID)
	if coldView.Status != StatusDone || coldView.Result == nil {
		t.Fatalf("cold job: %+v", coldView)
	}
	if !reflect.DeepEqual(view.Result.FDs, coldView.Result.FDs) {
		t.Fatalf("FDs over the delta chain diverge from a cold registration\n got: %v\nwant: %v",
			view.Result.FDs, coldView.Result.FDs)
	}
	if coldView.DatasetVersion != 1 {
		t.Fatalf("cold job pinned to version %d, want 1", coldView.DatasetVersion)
	}
}

func TestDatasetDeltaErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	registerCSV(t, ts, "t", tinyCSV)

	cases := map[string]struct {
		name string
		req  DeltaRequest
		want int
	}{
		"unknown dataset": {"nope", DeltaRequest{Inserts: [][]string{{"5", "z", "p"}}}, http.StatusNotFound},
		"empty delta":     {"t", DeltaRequest{}, http.StatusBadRequest},
		"bad arity":       {"t", DeltaRequest{Inserts: [][]string{{"too", "short"}}}, http.StatusBadRequest},
		"unmatched row":   {"t", DeltaRequest{Deletes: [][]string{{"no", "such", "row"}}}, http.StatusBadRequest},
	}
	for tag, tc := range cases {
		if code, _ := postDelta(t, ts, tc.name, tc.req); code != tc.want {
			t.Errorf("%s: status %d, want %d", tag, code, tc.want)
		}
	}
	// None of the rejections may have advanced the version.
	_, data := do(t, "GET", ts.URL+"/v1/datasets/t", "")
	var info DatasetInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 {
		t.Fatalf("rejected deltas advanced the version to %d", info.Version)
	}
}

// TestDatasetDeltaConflict pins the claim-then-apply contract: while one
// delta holds the claim, a second delta against the same dataset answers 409
// instead of racing over the same base snapshot.
func TestDatasetDeltaConflict(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	registerCSV(t, ts, "t", tinyCSV)

	// Take the claim directly — deterministic, no timing window to race.
	srv.datasets.mu.Lock()
	srv.datasets.entries["t"].applying = true
	srv.datasets.mu.Unlock()

	code, _ := postDelta(t, ts, "t", DeltaRequest{Inserts: [][]string{{"5", "z", "p"}}})
	if code != http.StatusConflict {
		t.Fatalf("delta during another delta: status %d, want 409", code)
	}

	srv.datasets.mu.Lock()
	srv.datasets.entries["t"].applying = false
	srv.datasets.mu.Unlock()
	if code, resp := postDelta(t, ts, "t", DeltaRequest{Inserts: [][]string{{"5", "z", "p"}}}); code != http.StatusOK || resp.Dataset.Version != 2 {
		t.Fatalf("delta after the claim cleared: status %d, %+v", code, resp)
	}
}

// TestDatasetDeltaShutdown pins the drain contract: after BeginShutdown the
// ingest path answers 503 with a Retry-After hint, exactly like job
// admission. The fake clock makes the hint deterministic — no real timers
// are involved in computing it.
func TestDatasetDeltaShutdown(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, RetryAfter: 7 * time.Second, clock: newFakeClock()})
	registerCSV(t, ts, "t", tinyCSV)
	srv.BeginShutdown()

	body, _ := json.Marshal(DeltaRequest{Inserts: [][]string{{"5", "z", "p"}}})
	resp, err := http.Post(ts.URL+"/v1/datasets/t/delta", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("delta during shutdown: status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want %q (the configured base, one queue round)", got, "7")
	}
}
