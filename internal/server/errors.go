package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"hyfd"
	"hyfd/internal/incremental"
)

// The server's error vocabulary. Every sentinel maps onto exactly one HTTP
// status code in StatusFor — handlers return errors, and one function turns
// them into wire responses.
var (
	// ErrUnknownDataset: the job or lookup names a dataset that is not
	// registered (404).
	ErrUnknownDataset = errors.New("unknown dataset")
	// ErrDatasetExists: a registration reuses a taken name (409).
	ErrDatasetExists = errors.New("dataset already registered")
	// ErrDeltaConflict: a delta arrived while another delta against the same
	// dataset was still applying; the entry advances one version at a time,
	// so the loser must refresh and retry (409).
	ErrDeltaConflict = errors.New("delta already applying")
	// ErrUnknownJob: the job id is not in the store (404).
	ErrUnknownJob = errors.New("unknown job")
	// ErrQueueFull: admission control rejected the job because the bounded
	// run queue is at capacity (429 + Retry-After).
	ErrQueueFull = errors.New("job queue full")
	// ErrShuttingDown: the server no longer accepts work (503).
	ErrShuttingDown = errors.New("server shutting down")
	// ErrBadRequest wraps malformed or invalid request payloads (400).
	ErrBadRequest = errors.New("bad request")
	// ErrNoTrace: the job exists but has no flight recorder because the
	// server runs with tracing disabled (404).
	ErrNoTrace = errors.New("no trace")
)

// StatusClientClosedRequest is the non-standard (nginx-popularized) status
// for runs aborted by cancellation rather than by a deadline.
const StatusClientClosedRequest = 499

// StatusFor maps an error to its HTTP status code — the single place the
// server's error vocabulary (and the engine's sentinels) meets HTTP.
// Unrecognized errors are internal server errors.
func StatusFor(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, hyfd.ErrUnknownAlgorithm),
		errors.Is(err, hyfd.ErrUnknownMode),
		errors.Is(err, incremental.ErrNotDelta),
		errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownDataset), errors.Is(err, ErrUnknownJob),
		errors.Is(err, ErrNoTrace):
		return http.StatusNotFound
	case errors.Is(err, ErrDatasetExists), errors.Is(err, ErrDeltaConflict):
		return http.StatusConflict
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// writeError renders err through the StatusFor mapping. A 429 or a 503
// additionally carries a Retry-After hint (whole seconds, minimum 1): both
// tell the client the work itself is fine and the server is merely refusing
// right now — full queue, or draining toward a restart — so a backed-off
// retry is the correct response.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := StatusFor(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", s.retryAfter())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(errorBody{Error: err.Error(), Status: status})
}

// writeJSON renders v as an indented JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
