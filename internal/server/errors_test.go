package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"hyfd"
)

// TestStatusForTable exhaustively pins the error → HTTP status mapping: every
// sentinel in the server's vocabulary, the engine sentinels the API surfaces,
// the context terminals, and the fallbacks — each both bare and wrapped
// (handlers always wrap with %w, so the mapping must survive wrapping).
func TestStatusForTable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, http.StatusOK},
		{"bad request", ErrBadRequest, http.StatusBadRequest},
		{"unknown algorithm", hyfd.ErrUnknownAlgorithm, http.StatusBadRequest},
		{"unknown mode", hyfd.ErrUnknownMode, http.StatusBadRequest},
		{"unknown dataset", ErrUnknownDataset, http.StatusNotFound},
		{"unknown job", ErrUnknownJob, http.StatusNotFound},
		{"dataset exists", ErrDatasetExists, http.StatusConflict},
		{"queue full", ErrQueueFull, http.StatusTooManyRequests},
		{"shutting down", ErrShuttingDown, http.StatusServiceUnavailable},
		{"deadline exceeded", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"canceled", context.Canceled, StatusClientClosedRequest},
		{"unrecognized", errors.New("boom"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := StatusFor(tc.err); got != tc.want {
			t.Errorf("%s: StatusFor = %d, want %d", tc.name, got, tc.want)
		}
		if tc.err == nil {
			continue
		}
		wrapped := fmt.Errorf("outer context: %w", tc.err)
		if got := StatusFor(wrapped); got != tc.want {
			t.Errorf("%s (wrapped): StatusFor = %d, want %d", tc.name, got, tc.want)
		}
		doubly := fmt.Errorf("handler: %w", wrapped)
		if got := StatusFor(doubly); got != tc.want {
			t.Errorf("%s (doubly wrapped): StatusFor = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestStatusForCoversAllSentinels: the mapping table above must name every
// sentinel the package declares — adding a sentinel without classifying it
// here fails the build of the error contract, not just a runtime 500.
func TestStatusForCoversAllSentinels(t *testing.T) {
	sentinels := []error{
		ErrUnknownDataset, ErrDatasetExists, ErrUnknownJob,
		ErrQueueFull, ErrShuttingDown, ErrBadRequest,
	}
	for _, s := range sentinels {
		if StatusFor(s) == http.StatusInternalServerError {
			t.Errorf("sentinel %q falls through to 500 — add it to StatusFor", s)
		}
	}
}

// TestWriteErrorEnvelope: every error renders as the JSON envelope with the
// mapped status, and 429s carry the Retry-After hint.
func TestWriteErrorEnvelope(t *testing.T) {
	s := New(context.Background(), Config{})
	for _, tc := range []struct {
		err        error
		want       int
		retryAfter bool
	}{
		{fmt.Errorf("%w: no such table", ErrUnknownDataset), 404, false},
		{fmt.Errorf("%w (depth 8)", ErrQueueFull), 429, true},
		{errors.New("opaque"), 500, false},
	} {
		rec := httptest.NewRecorder()
		s.writeError(rec, tc.err)
		if rec.Code != tc.want {
			t.Fatalf("%v: code %d, want %d", tc.err, rec.Code, tc.want)
		}
		if got := rec.Header().Get("Content-Type"); got != "application/json" {
			t.Fatalf("%v: content type %q", tc.err, got)
		}
		var body errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%v: body not JSON: %v", tc.err, err)
		}
		if body.Status != tc.want || body.Error == "" {
			t.Fatalf("%v: envelope %+v", tc.err, body)
		}
		if tc.retryAfter && rec.Header().Get("Retry-After") == "" {
			t.Fatalf("%v: 429 missing Retry-After", tc.err)
		}
		if !tc.retryAfter && rec.Header().Get("Retry-After") != "" {
			t.Fatalf("%v: unexpected Retry-After", tc.err)
		}
	}
}
