package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hyfd"
	"hyfd/internal/tracing"
)

// JobRequest is the JSON body of POST /v1/jobs: one discovery job. It maps
// 1:1 onto hyfd.Request — dataset resolves to the registered prepared
// Dataset, and the remaining fields fill Request and its Options.
type JobRequest struct {
	// Dataset names a registered dataset (see POST /v1/datasets).
	Dataset string `json:"dataset"`
	// Algorithm selects the fd-mode algorithm ("" = HyFD).
	Algorithm string `json:"algorithm,omitempty"`
	// Mode is fd (default), afd, or ucc.
	Mode string `json:"mode,omitempty"`
	// MaxLhs bounds LHS/UCC sizes (0 = unbounded).
	MaxLhs int `json:"max_lhs,omitempty"`
	// MaxError is afd mode's g3 threshold.
	MaxError float64 `json:"max_error,omitempty"`
	// Threads overrides the worker count (0 inherits the dataset's).
	Threads int `json:"threads,omitempty"`
	// DeadlineMs bounds the job's total time — queue wait included — in
	// milliseconds (0 = the server's default deadline, if any).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Threshold overrides HyFD's efficiency threshold (0 = paper default).
	Threshold float64 `json:"threshold,omitempty"`
	// MemoryBudgetMB arms the memory Guardian (0 = disabled).
	MemoryBudgetMB int `json:"memory_budget_mb,omitempty"`
	// TopK is ranked mode's result budget: the job returns the k
	// best-scoring FDs and terminates as soon as that prefix is provably
	// stable (0 = rank the complete cover). Ignored by the other modes.
	TopK int `json:"top_k,omitempty"`
	// MinScore is ranked mode's score floor: results below it are dropped
	// and the run stops once no candidate can reach it (0 = disabled).
	MinScore float64 `json:"min_score,omitempty"`
}

// JobStatus is a job's lifecycle state.
type JobStatus string

// The job lifecycle: queued → running → done | failed | canceled.
const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusDone     JobStatus = "done"
	StatusFailed   JobStatus = "failed"
	StatusCanceled JobStatus = "canceled"
)

// JobResult is the payload of a finished job. FDs/AFDs/UCCs are rendered
// against the dataset's column names, one dependency per string, in the
// engine's canonical (deterministic) order — a warm job's fds lines are
// byte-identical to a cold cmd/hyfd run on the same input. Ranked jobs fill
// Ranked instead, in score order; while such a job is still running (or
// after a cancel that beat completion), GET synthesizes a Partial result
// from the ranks streamed so far — the any-time contract.
type JobResult struct {
	FDs    []string     `json:"fds,omitempty"`
	AFDs   []string     `json:"afds,omitempty"`
	UCCs   []string     `json:"uccs,omitempty"`
	Ranked []RankedItem `json:"ranked,omitempty"`
	// Partial marks a ranked payload assembled mid-run: it carries the
	// stable prefix emitted so far, not the job's final result. Every rank
	// in it is final — later polls only ever append.
	Partial bool        `json:"partial,omitempty"`
	Count   int         `json:"count"`
	Stats   *hyfd.Stats `json:"stats,omitempty"`
}

// RankedItem is one ranked-mode result: an FD rendered against the
// dataset's column names with its score and final 1-based rank.
type RankedItem struct {
	FD    string  `json:"fd"`
	Score float64 `json:"score"`
	Rank  int     `json:"rank"`
}

// JobView is the JSON representation of a job (GET /v1/jobs/{id}).
type JobView struct {
	ID      string     `json:"id"`
	Status  JobStatus  `json:"status"`
	Request JobRequest `json:"request"`
	// DatasetVersion is the snapshot version the job was pinned to at
	// admission. Deltas applied after admission advance the registration but
	// never this job: its result is exact for exactly this version.
	DatasetVersion int `json:"dataset_version"`
	// Error is set for failed jobs; its HTTP equivalent is ErrorStatus.
	Error       string `json:"error,omitempty"`
	ErrorStatus int    `json:"error_status,omitempty"`
	// QueueMs and RunMs split the job's latency into queue wait and
	// execution; RunMs excludes preprocessing, which the dataset paid at
	// registration.
	QueueMs       float64    `json:"queue_ms"`
	RunMs         float64    `json:"run_ms"`
	CreatedUnixMs int64      `json:"created_unix_ms"`
	Result        *JobResult `json:"result,omitempty"`
}

// job is the server-internal job record.
type job struct {
	id  string
	seq int

	// ctx governs the run: derived from the server's base context, with
	// the job deadline applied from submission time (queue wait counts).
	ctx    context.Context
	cancel context.CancelFunc

	ds        *hyfd.Dataset // snapshot resolved at admission; immutable
	dsVersion int           // its version — the job's pin
	request   JobRequest
	req       hyfd.Request // the mapped hyfd request (sans context)

	// rec is the job's flight recorder (nil when tracing is disabled);
	// root is its "job" span and queueSpan the "queue.wait" span opened at
	// enqueue time. All recorder methods are nil-safe, so untraced jobs
	// pay only nil checks.
	rec       *tracing.Recorder
	root      tracing.SpanID
	queueSpan tracing.SpanID

	// deadline stops the job's expiry callback once it reaches a terminal
	// state; nil when the job runs unbounded.
	deadline timer

	mu        sync.Mutex
	status    JobStatus
	err       error
	result    *JobResult
	timedOut  bool         // the deadline timer fired; classify the abort as 504
	ranked    []RankedItem // ranked-mode results streamed so far, in rank order
	createdAt time.Time
	startedAt time.Time
	doneAt    time.Time
	done      chan struct{} // closed on reaching a terminal status
}

// expire is the deadline timer's callback: it marks the deadline as the
// abort cause and cancels the run. The terminal classification happens in
// execute once the engine unwinds.
func (j *job) expire() {
	j.mu.Lock()
	j.timedOut = true
	j.mu.Unlock()
	j.cancel()
}

// deadlineExpired reports whether the job's deadline timer fired.
func (j *job) deadlineExpired() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.timedOut
}

// appendRanked records one streamed ranked result; results arrive in rank
// order from the engine's coordinating goroutine.
func (j *job) appendRanked(it RankedItem) {
	j.mu.Lock()
	j.ranked = append(j.ranked, it)
	j.mu.Unlock()
}

// view snapshots the job for JSON rendering.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:             j.id,
		Status:         j.status,
		Request:        j.request,
		DatasetVersion: j.dsVersion,
		CreatedUnixMs:  j.createdAt.UnixMilli(),
		Result:         j.result,
	}
	if j.err != nil {
		v.Error = j.err.Error()
		v.ErrorStatus = StatusFor(j.err)
	}
	// A ranked job without a final payload — still running, or terminal
	// without completing — exposes the stable prefix streamed so far.
	if v.Result == nil && len(j.ranked) > 0 {
		items := make([]RankedItem, len(j.ranked))
		copy(items, j.ranked)
		v.Result = &JobResult{Ranked: items, Count: len(items), Partial: true}
	}
	switch j.status {
	case StatusQueued:
		// still waiting; QueueMs grows until a worker picks the job up
		v.QueueMs = time.Since(j.createdAt).Seconds() * 1000
	case StatusRunning:
		v.QueueMs = j.startedAt.Sub(j.createdAt).Seconds() * 1000
		v.RunMs = time.Since(j.startedAt).Seconds() * 1000
	default:
		if !j.startedAt.IsZero() {
			v.QueueMs = j.startedAt.Sub(j.createdAt).Seconds() * 1000
			v.RunMs = j.doneAt.Sub(j.startedAt).Seconds() * 1000
		} else {
			v.QueueMs = j.doneAt.Sub(j.createdAt).Seconds() * 1000
		}
	}
	return v
}

// transition moves the job to a terminal status exactly once and wakes
// waiters; later transitions (e.g. a cancel racing a completion) are no-ops.
func (j *job) transition(status JobStatus, result *JobResult, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusDone, StatusFailed, StatusCanceled:
		return false
	}
	j.status = status
	j.result = result
	j.err = err
	switch status {
	case StatusDone, StatusFailed, StatusCanceled:
		j.doneAt = time.Now()
		if j.deadline != nil {
			j.deadline.Stop()
		}
		close(j.done)
	}
	return true
}

// closeTrace finishes the job's flight recorder at a terminal state: the
// queue.wait span (a no-op when execute already ended it) and the root span,
// stamped with the job's outcome. Ending a span twice is a no-op, so
// closeTrace is safe from every terminal path.
func (j *job) closeTrace() {
	if j.rec == nil {
		return
	}
	j.rec.End(j.queueSpan)
	j.mu.Lock()
	status, id := j.status, j.id
	j.mu.Unlock()
	j.rec.End(j.root, tracing.String("id", id), tracing.String("status", string(status)))
}

// markRunning records the queue-to-run handoff; it reports false when the
// job was canceled while queued.
func (j *job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.startedAt = time.Now()
	return true
}

// jobStore holds every job the server has accepted, by id.
type jobStore struct {
	mu   sync.RWMutex
	jobs map[string]*job
	next int
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*job)}
}

// add assigns the next id and stores the job. The id is written under the
// job's own mutex too: add runs after the job is already enqueued, so a
// worker may concurrently read j.id through view or closeTrace.
func (s *jobStore) add(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	j.seq = s.next
	// The nesting order store.mu > job.mu is the fixed lock hierarchy: no
	// job-mutex holder ever takes the store mutex, and the inner region is
	// two assignments — it cannot block.
	//hyfdvet:allow lockcheck audited nesting: store.mu > job.mu is the only order used module-wide; inner critical section is non-blocking
	j.mu.Lock()
	j.id = "j-" + strconv.Itoa(s.next)
	j.mu.Unlock()
	s.jobs[j.id] = j
}

func (s *jobStore) get(id string) (*job, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// list snapshots all jobs in submission order.
func (s *jobStore) list() []*job {
	s.mu.RLock()
	out := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, k int) bool { return out[i].seq < out[k].seq })
	return out
}

// running snapshots the jobs currently in StatusRunning.
func (s *jobStore) running() []*job {
	var out []*job
	for _, j := range s.list() {
		j.mu.Lock()
		r := j.status == StatusRunning
		j.mu.Unlock()
		if r {
			out = append(out, j)
		}
	}
	return out
}

// renderResult formats a finished hyfd.Result against the relation's column
// names, in the engine's canonical order.
func renderResult(res *hyfd.Result, rel *hyfd.Relation) *JobResult {
	out := &JobResult{Stats: res.Stats}
	switch {
	case res.Ranked != nil:
		out.Ranked = make([]RankedItem, 0, len(res.Ranked))
		for _, r := range res.Ranked {
			out.Ranked = append(out.Ranked, RankedItem{FD: r.FD.Format(rel), Score: r.Score, Rank: r.Rank})
		}
		out.Count = len(out.Ranked)
	case res.Set != nil:
		out.FDs = make([]string, 0, len(res.FDs))
		for _, f := range res.FDs {
			out.FDs = append(out.FDs, f.Format(rel))
		}
		out.Count = len(out.FDs)
	case res.AFDs != nil:
		out.AFDs = make([]string, 0, len(res.AFDs))
		for _, a := range res.AFDs {
			out.AFDs = append(out.AFDs, fmt.Sprintf("%s -> %s (g3=%.4f)", renderAttrs(a.Lhs, rel), rel.Columns[a.Rhs], a.Error))
		}
		out.Count = len(out.AFDs)
	default:
		out.UCCs = make([]string, 0, len(res.UCCs))
		for _, u := range res.UCCs {
			out.UCCs = append(out.UCCs, renderAttrs(u, rel))
		}
		out.Count = len(out.UCCs)
	}
	return out
}

// renderRanked formats one streamed ranked-result event against the
// relation's column names, matching the terminal JobResult rendering (and
// fd.Format's style).
func renderRanked(ev hyfd.RankedResult, rel *hyfd.Relation) RankedItem {
	names := make([]string, 0, len(ev.Lhs))
	for _, a := range ev.Lhs {
		names = append(names, rel.Columns[a])
	}
	return RankedItem{
		FD:    "[" + strings.Join(names, ",") + "] -> " + rel.Columns[ev.Rhs],
		Score: ev.Score,
		Rank:  ev.Rank,
	}
}

// renderAttrs formats an attribute set as [col1,col2], matching cmd/hyfd's
// rendering.
func renderAttrs(set hyfd.AttrSet, rel *hyfd.Relation) string {
	var names []string
	set.ForEach(func(a int) bool {
		names = append(names, rel.Columns[a])
		return true
	})
	return "[" + strings.Join(names, ",") + "]"
}

// mapRequest translates the wire JobRequest into a hyfd.Request over the
// resolved dataset — the 1:1 mapping the API was designed around.
func mapRequest(req JobRequest, ds *hyfd.Dataset) (hyfd.Request, error) {
	mode, err := hyfd.ParseMode(req.Mode)
	if err != nil {
		return hyfd.Request{}, err
	}
	// Incremental maintenance is not a job: it needs a base cover and a delta,
	// neither of which the job API transports. Ingest goes through
	// POST /v1/datasets/{name}/delta; jobs then run over the new version.
	if mode == hyfd.ModeIncremental {
		return hyfd.Request{}, fmt.Errorf("%w: mode %q is not a job mode; apply deltas via POST /v1/datasets/{name}/delta and submit a discovery job over the new version",
			ErrBadRequest, mode)
	}
	// Validate the algorithm at admission, not at run time: a job that can
	// only fail should be a 400 on POST, not a failed job in the store.
	if req.Algorithm != "" {
		if mode != hyfd.ModeFD {
			return hyfd.Request{}, fmt.Errorf("hyfd: %w %q (mode %q has a single built-in strategy; leave algorithm empty)",
				hyfd.ErrUnknownAlgorithm, req.Algorithm, mode)
		}
		if !algorithmKnown(req.Algorithm) {
			return hyfd.Request{}, fmt.Errorf("hyfd: %w %q (available: %v)",
				hyfd.ErrUnknownAlgorithm, req.Algorithm, hyfd.Algorithms())
		}
	}
	if req.TopK < 0 {
		return hyfd.Request{}, fmt.Errorf("%w: top_k must be >= 0 (got %d)", ErrBadRequest, req.TopK)
	}
	if req.MinScore < 0 {
		return hyfd.Request{}, fmt.Errorf("%w: min_score must be >= 0 (got %g)", ErrBadRequest, req.MinScore)
	}
	return hyfd.Request{
		Dataset:   ds,
		Algorithm: req.Algorithm,
		Mode:      mode,
		MaxError:  req.MaxError,
		TopK:      req.TopK,
		MinScore:  req.MinScore,
		Options: hyfd.Options{
			EfficiencyThreshold: req.Threshold,
			Threads:             req.Threads,
			MaxLhsSize:          req.MaxLhs,
			MemoryBudgetBytes:   req.MemoryBudgetMB << 20,
		},
	}, nil
}

// algorithmKnown reports whether the name is a registered algorithm.
func algorithmKnown(name string) bool {
	for _, a := range hyfd.Algorithms() {
		if a == name {
			return true
		}
	}
	return false
}

// jobCanceled reports whether the error is a cancellation rather than a
// deadline or a genuine failure.
func jobCanceled(err error) bool {
	return errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}
