package server

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"hyfd"
	"hyfd/internal/datasets"
)

// DatasetRequest is the JSON body of POST /v1/datasets. Exactly one of the
// three sources — Path, CSV, Generate — must be set.
type DatasetRequest struct {
	// Name registers the dataset under this key; jobs reference it.
	Name string `json:"name"`
	// Path reads a CSV file from the server's filesystem. When the server
	// was configured with a data directory, the path resolves relative to
	// it and must not escape it.
	Path string `json:"path,omitempty"`
	// CSV supplies the relation inline as CSV text.
	CSV string `json:"csv,omitempty"`
	// Generate materializes one of the synthetic evaluation datasets.
	Generate *GenerateSpec `json:"generate,omitempty"`

	// Sep is the CSV field separator (default ",").
	Sep string `json:"sep,omitempty"`
	// NoHeader treats the first CSV record as data, not column names.
	NoHeader bool `json:"no_header,omitempty"`
	// NullLiteral is an additional token parsed as NULL (empty fields
	// always are).
	NullLiteral string `json:"null_literal,omitempty"`
	// NullNeq selects ⊥≠⊥ semantics instead of the default ⊥=⊥. The choice
	// is baked into the prepared PLIs; every job over this dataset uses it.
	NullNeq bool `json:"null_neq,omitempty"`
	// Threads is the preprocessing worker count (0 = all CPUs).
	Threads int `json:"threads,omitempty"`
}

// GenerateSpec names a synthetic dataset from the evaluation catalog, with
// optional row/column caps — the dataset-size knob of the load harness.
type GenerateSpec struct {
	Dataset string `json:"dataset"`
	Rows    int    `json:"rows,omitempty"`
	Cols    int    `json:"cols,omitempty"`
}

// DatasetInfo is the public record of one registered dataset.
type DatasetInfo struct {
	Name          string `json:"name"`
	// Version is the snapshot version jobs over this registration are pinned
	// to; every accepted delta advances it by one.
	Version       int    `json:"version"`
	Rows          int    `json:"rows"`
	Cols          int    `json:"cols"`
	NullSemantics string `json:"null_semantics"`
	Threads       int    `json:"threads"`
	// PrepareNs is the one-off preprocessing cost paid at registration;
	// every job over the dataset skips it.
	PrepareNs int64 `json:"prepare_ns"`
	// Source describes where the relation came from (path:..., inline CSV,
	// or generate:...).
	Source        string `json:"source"`
	CreatedUnixMs int64  `json:"created_unix_ms"`
}

// dsEntry is one registered dataset: the current immutable snapshot plus its
// metadata. Deltas swap ds for the next snapshot in the chain under the
// registry lock; jobs keep the pointer they resolved at admission, so they
// stay pinned to the version current when they were submitted.
type dsEntry struct {
	ds   *hyfd.Dataset
	info DatasetInfo
	// applying claims the entry for one in-flight delta: a second delta
	// arriving mid-apply is rejected with ErrDeltaConflict instead of racing
	// over the same base snapshot (claim-then-apply, like register).
	applying bool
}

// dsRegistry maps names to prepared datasets. Registration prepares exactly
// once: the name is claimed (under the lock) before the preparation runs,
// so a concurrent duplicate registration fails fast with ErrDatasetExists
// instead of preparing a second time.
type dsRegistry struct {
	mu      sync.RWMutex
	entries map[string]*dsEntry
}

func newDSRegistry() *dsRegistry {
	return &dsRegistry{entries: make(map[string]*dsEntry)}
}

// register materializes, prepares, and stores one dataset.
func (r *dsRegistry) register(ctx context.Context, req DatasetRequest, dataDir string) (DatasetInfo, error) {
	name := strings.TrimSpace(req.Name)
	if name == "" {
		return DatasetInfo{}, fmt.Errorf("%w: dataset name is required", ErrBadRequest)
	}
	sources := 0
	for _, set := range []bool{req.Path != "", req.CSV != "", req.Generate != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return DatasetInfo{}, fmt.Errorf("%w: exactly one of path, csv, generate must be set", ErrBadRequest)
	}

	// Claim the name before the (potentially slow) preparation so the same
	// dataset is never prepared twice; release the claim on failure.
	r.mu.Lock()
	if _, taken := r.entries[name]; taken {
		r.mu.Unlock()
		return DatasetInfo{}, fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	r.entries[name] = nil // pending claim
	r.mu.Unlock()

	info, entry, err := prepareEntry(ctx, req, name, dataDir)
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		delete(r.entries, name)
		return DatasetInfo{}, err
	}
	r.entries[name] = entry
	return info, nil
}

// prepareEntry materializes the relation from the request's source and runs
// the one-off preparation.
func prepareEntry(ctx context.Context, req DatasetRequest, name, dataDir string) (DatasetInfo, *dsEntry, error) {
	rel, source, err := materialize(req, name, dataDir)
	if err != nil {
		return DatasetInfo{}, nil, err
	}
	ns := hyfd.NullEqualsNull
	nsName := "null=null"
	if req.NullNeq {
		ns = hyfd.NullNotEqualsNull
		nsName = "null<>null"
	}
	ds, err := hyfd.Prepare(ctx, rel, hyfd.PrepareOptions{
		NullSemantics: ns,
		Threads:       req.Threads,
	})
	if err != nil {
		return DatasetInfo{}, nil, err
	}
	info := DatasetInfo{
		Name:          name,
		Version:       ds.Version(),
		Rows:          ds.NumRows(),
		Cols:          ds.NumCols(),
		NullSemantics: nsName,
		Threads:       ds.Threads(),
		PrepareNs:     ds.PreprocessingTime().Nanoseconds(),
		Source:        source,
		CreatedUnixMs: time.Now().UnixMilli(),
	}
	return info, &dsEntry{ds: ds, info: info}, nil
}

// materialize resolves the request's source into a relation.
func materialize(req DatasetRequest, name, dataDir string) (*hyfd.Relation, string, error) {
	csvOpts := hyfd.CSVOptions{
		Comma:       ',',
		HasHeader:   !req.NoHeader,
		EmptyIsNull: true,
		NullLiteral: req.NullLiteral,
		Threads:     req.Threads,
	}
	if req.Sep != "" {
		runes := []rune(req.Sep)
		if len(runes) != 1 {
			return nil, "", fmt.Errorf("%w: sep must be a single character", ErrBadRequest)
		}
		csvOpts.Comma = runes[0]
	}
	switch {
	case req.Path != "":
		path := req.Path
		if dataDir != "" {
			path = filepath.Join(dataDir, filepath.Clean("/"+path))
		}
		rel, err := hyfd.ReadCSVFile(path, csvOpts)
		if err != nil {
			return nil, "", fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		rel.Name = name
		return rel, "path:" + req.Path, nil
	case req.CSV != "":
		rel, err := hyfd.ReadCSV(name, strings.NewReader(req.CSV), csvOpts)
		if err != nil {
			return nil, "", fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return rel, "inline csv", nil
	default:
		rel, err := generate(*req.Generate)
		if err != nil {
			return nil, "", err
		}
		rel.Name = name
		return rel, fmt.Sprintf("generate:%s rows=%d cols=%d", req.Generate.Dataset, rel.NumRows(), rel.NumCols()), nil
	}
}

// generate materializes a synthetic catalog dataset with row/column caps —
// the same scaling rules the benchmark harness uses.
func generate(spec GenerateSpec) (*hyfd.Relation, error) {
	d, err := datasets.ByName(spec.Dataset)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	scale := 1.0
	if spec.Rows > 0 {
		scale = float64(spec.Rows) / float64(d.Rows)
	}
	rel := d.Generate(scale)
	if spec.Rows > 0 && rel.NumRows() > spec.Rows {
		rel = rel.Head(spec.Rows)
	}
	if spec.Cols > 0 && spec.Cols < rel.NumCols() {
		rel = rel.Project(spec.Cols)
	}
	return rel, nil
}

// lookup returns the current snapshot and metadata registered under name.
// It returns copies, not the entry: entries are mutable now that deltas swap
// the snapshot in place, and callers read their result outside the lock.
func (r *dsRegistry) lookup(name string) (*hyfd.Dataset, DatasetInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok || e == nil { // nil: registration still preparing
		return nil, DatasetInfo{}, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	return e.ds, e.info, nil
}

// DeltaRequest is the JSON body of POST /v1/datasets/{name}/delta: a batch
// of inserted and deleted rows, each a full record in column order. Deletes
// match by value against the current snapshot; a delete that matches no
// remaining row fails the whole batch.
type DeltaRequest struct {
	Inserts [][]string `json:"inserts,omitempty"`
	Deletes [][]string `json:"deletes,omitempty"`
}

// DeltaResponse reports one accepted delta: the updated registration (new
// version, new row count) plus the apply cost and how much of the index the
// new snapshot structurally shares with its parent.
type DeltaResponse struct {
	Dataset DatasetInfo `json:"dataset"`
	// ApplyNs is the incremental preprocessing cost of this delta — the
	// analogue of PrepareNs for the snapshot chain.
	ApplyNs     int64 `json:"apply_ns"`
	Inserts     int   `json:"inserts"`
	Deletes     int   `json:"deletes"`
	SharedAttrs int   `json:"shared_attrs"`
}

// applyDelta advances the named registration to a new snapshot version. The
// entry is claimed under the lock before the (potentially slow) Apply runs,
// so concurrent deltas against the same dataset serialize as one winner and
// ErrDeltaConflict losers instead of both deriving from the same base and
// silently dropping one batch. Jobs admitted before the swap keep running
// over the snapshot they resolved — versions are immutable.
func (r *dsRegistry) applyDelta(ctx context.Context, name string, req DeltaRequest) (DeltaResponse, error) {
	delta := hyfd.Delta{Inserts: req.Inserts, Deletes: req.Deletes}
	if delta.IsEmpty() {
		return DeltaResponse{}, fmt.Errorf("%w: delta has no inserts and no deletes", ErrBadRequest)
	}

	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok || e == nil {
		r.mu.Unlock()
		return DeltaResponse{}, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	if e.applying {
		r.mu.Unlock()
		return DeltaResponse{}, fmt.Errorf("%w: %q", ErrDeltaConflict, name)
	}
	e.applying = true
	base := e.ds
	r.mu.Unlock()

	next, err := base.Apply(ctx, delta)

	r.mu.Lock()
	defer r.mu.Unlock()
	e.applying = false
	if err != nil {
		if ctx.Err() != nil {
			return DeltaResponse{}, err
		}
		return DeltaResponse{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if r.entries[name] != e {
		// Unregistered while the delta was applying: the new snapshot has no
		// registration to land on.
		return DeltaResponse{}, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	e.ds = next
	e.info.Version = next.Version()
	e.info.Rows = next.NumRows()
	prov := next.Provenance()
	return DeltaResponse{
		Dataset:     e.info,
		ApplyNs:     next.PreprocessingTime().Nanoseconds(),
		Inserts:     prov.Inserts,
		Deletes:     prov.Deletes,
		SharedAttrs: prov.SharedAttrs,
	}, nil
}

// remove deletes the registration. Jobs already holding the Dataset keep
// running: the Dataset is immutable and independently referenced.
func (r *dsRegistry) remove(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; !ok || e == nil {
		return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	delete(r.entries, name)
	return nil
}

// list snapshots the registered datasets, sorted by name.
func (r *dsRegistry) list() []DatasetInfo {
	r.mu.RLock()
	infos := make([]DatasetInfo, 0, len(r.entries))
	for _, e := range r.entries {
		if e != nil {
			infos = append(infos, e.info)
		}
	}
	r.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// count returns the number of fully registered datasets.
func (r *dsRegistry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, e := range r.entries {
		if e != nil {
			n++
		}
	}
	return n
}
