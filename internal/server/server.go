// Package server implements hyfdd's multi-tenant profiling service: a
// long-running HTTP daemon that registers datasets by name (preparing each
// exactly once into the immutable Dataset layer) and serves concurrent
// FD/AFD/UCC/ranked discovery jobs over a versioned JSON API. Ranked jobs
// stream: every stabilized rank is visible through GET /v1/jobs/{id} while
// the job still runs, marked partial until the run completes.
//
// # Architecture
//
// Four pieces compose the server (DESIGN.md §2f):
//
//   - the dataset registry (registry.go): name → prepared hyfd.Dataset,
//     preprocessing paid once at registration, shared read-only by every job.
//     Streaming ingest (POST /v1/datasets/{name}/delta) advances a
//     registration through a chain of immutable snapshot versions via
//     Dataset.Apply; jobs stay pinned to the version current at admission,
//     and concurrent deltas serialize claim-then-apply (one winner, 409
//     losers);
//   - the job store and bounded run queue (job.go, this file): admission
//     control rejects with 429 + Retry-After when the queue is full, a
//     fixed-size worker pool executes jobs, and per-job deadlines (counted
//     from submission, queue wait included) and cancellation are threaded
//     onto the engine's context path;
//   - the v1 HTTP API (api.go): /v1/datasets, /v1/jobs, plus the process's
//     /metrics, /metrics.json, and /debug/pprof surfaces on the same mux;
//   - the error table (errors.go): every error sentinel maps onto exactly
//     one HTTP status code in StatusFor.
//
// # Lifecycle
//
// New(ctx, cfg) builds the server; Start launches the worker pool;
// Shutdown(ctx) stops admission, cancels jobs still queued, drains in-flight
// jobs until ctx's grace deadline, cancels the stragglers, and joins every
// worker. The base context passed to New is the outer bound of every job:
// canceling it aborts all work.
package server

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hyfd"
	"hyfd/internal/metrics"
	"hyfd/internal/trace"
	"hyfd/internal/tracing"
)

// Config parameterizes New.
type Config struct {
	// Workers is the number of jobs executed concurrently (<= 0: one per
	// available CPU). Each job may itself run multi-threaded; Threads on
	// the job request controls that.
	Workers int
	// QueueDepth bounds the run queue: jobs beyond the workers' capacity
	// wait here, and admission control rejects with 429 once it is full
	// (<= 0: 64).
	QueueDepth int
	// DefaultDeadline bounds jobs that don't carry their own deadline_ms
	// (0 = unbounded).
	DefaultDeadline time.Duration
	// RetryAfter is the hint returned with 429 rejections (0 = 1s).
	RetryAfter time.Duration
	// DataDir, when set, confines path-based dataset registration to this
	// directory.
	DataDir string
	// Metrics receives the server's hyfdd_* instrument families and is
	// shared with the engine's per-job hyfd_* telemetry; nil runs the
	// server unmetered.
	Metrics *hyfd.MetricsRegistry
	// TraceCapacity bounds each job's flight-recorder span ring
	// (0 = tracing.DefaultCapacity; < 0 disables per-job tracing, making
	// GET /v1/jobs/{id}/trace a 404).
	TraceCapacity int
	// SlowJobs sizes the daemon-wide slowest-jobs ring behind
	// GET /debug/slowjobs (0 = tracing.DefaultSlowJobs; < 0 disables it).
	SlowJobs int
	// Logger receives the serving path's structured logs (admissions,
	// completions, rejections, shutdown) with job and request ids; nil
	// discards them.
	Logger *slog.Logger

	// clock injects a fake time source for the job-deadline path in tests;
	// nil uses the real clock.
	clock clock
}

// Server is one hyfdd instance. Create with New, mount Handler, call Start,
// and Shutdown to stop.
type Server struct {
	base     context.Context
	cfg      Config
	datasets *dsRegistry
	jobs     *jobStore

	queue    chan *job
	stop     chan struct{} // closed by Shutdown: workers stop picking up work
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu      sync.Mutex
	closing bool

	slow    *tracing.SlowJobs
	log     *slog.Logger
	nextReq atomic.Int64 // request-id sequence for access logging

	inst serverMetrics
}

// Names of the server-stage spans every traced job records; the engine
// phases bridged from trace.Observer nest under spanRun (see
// internal/tracing for the full vocabulary and DESIGN.md §2g).
const (
	spanJob       = "job"
	spanAdmission = "admission"
	spanQueueWait = "queue.wait"
	spanRun       = "run"
	spanEncode    = "encode"
)

// serverMetrics bundles the server's instruments; all fields are non-nil
// when a registry was configured, nil otherwise (instrument methods are
// nil-receiver safe).
type serverMetrics struct {
	jobsTotal     *metrics.CounterVec // hyfdd_jobs_total{status}
	rejected      *metrics.Counter    // hyfdd_jobs_rejected_total
	deltas        *metrics.Counter    // hyfdd_dataset_deltas_total
	queueDepth    *metrics.Gauge      // hyfdd_queue_depth
	queuePeak     *metrics.Gauge      // hyfdd_queue_depth_peak
	running       *metrics.Gauge      // hyfdd_jobs_running
	datasets      *metrics.Gauge      // hyfdd_datasets
	queueWait     *metrics.Histogram  // hyfdd_job_queue_wait_seconds
	runSeconds    *metrics.HistogramVec
	spanSeconds   *metrics.HistogramVec // hyfdd_span_seconds{span}
	prepSeconds   *metrics.Histogram
	up            *metrics.Gauge
	httpRequests  *metrics.CounterVec // hyfdd_http_requests_total{code}
	peakDepthSeen int64               // guarded by Server.mu
}

// New builds a server over the base context: every job context derives from
// it, so canceling ctx aborts all current and future work.
func New(ctx context.Context, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.clock == nil {
		cfg.clock = realClock{}
	}
	s := &Server{
		base:     ctx,
		cfg:      cfg,
		datasets: newDSRegistry(),
		jobs:     newJobStore(),
		queue:    make(chan *job, cfg.QueueDepth),
		stop:     make(chan struct{}),
		log:      cfg.Logger,
	}
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.SlowJobs >= 0 {
		s.slow = tracing.NewSlowJobs(cfg.SlowJobs)
	}
	if reg := cfg.Metrics; reg != nil {
		s.inst = serverMetrics{
			jobsTotal:    reg.CounterVec("hyfdd_jobs_total", "Jobs by terminal status.", "status"),
			rejected:     reg.Counter("hyfdd_jobs_rejected_total", "Jobs rejected by admission control (429)."),
			deltas:       reg.Counter("hyfdd_dataset_deltas_total", "Accepted dataset deltas (snapshot version advances)."),
			queueDepth:   reg.Gauge("hyfdd_queue_depth", "Jobs currently waiting in the run queue."),
			queuePeak:    reg.Gauge("hyfdd_queue_depth_peak", "Highest queue depth observed."),
			running:      reg.Gauge("hyfdd_jobs_running", "Jobs currently executing."),
			datasets:     reg.Gauge("hyfdd_datasets", "Registered datasets."),
			queueWait:    reg.Histogram("hyfdd_job_queue_wait_seconds", "Queue wait per job.", metrics.ExpBuckets(0.0001, 4, 12)),
			spanSeconds:  reg.HistogramVec("hyfdd_span_seconds", "Server-stage span durations per finished job, derived from the flight recorder.", metrics.ExpBuckets(0.0001, 4, 12), "span"),
			runSeconds:   reg.HistogramVec("hyfdd_job_run_seconds", "Execution time per job.", metrics.ExpBuckets(0.0001, 4, 12), "mode"),
			prepSeconds:  reg.Histogram("hyfdd_dataset_prepare_seconds", "One-off preparation time per registered dataset.", metrics.ExpBuckets(0.0001, 4, 12)),
			up:           reg.Gauge("hyfdd_up", "Always 1 while hyfdd serves."),
			httpRequests: reg.CounterVec("hyfdd_http_requests_total", "HTTP responses by status code.", "code"),
		}
		s.inst.up.Set(1)
	}
	return s
}

// Start launches the worker pool; workers run until Shutdown (or the base
// context) stops them.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		//hyfdvet:allow goroutine — pool workers intentionally outlive Start; Shutdown joins them via wg.Wait
		go s.worker()
	}
}

// worker executes queued jobs until the stop channel closes or the base
// context is canceled.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.base.Done():
			return
		case j := <-s.queue:
			s.inst.queueDepth.Add(-1)
			s.execute(j)
		}
	}
}

// submit admits one job: resolve the dataset, map the request, apply the
// deadline, and enqueue — or reject if the queue is full or the server is
// closing. The returned job is already in the store, its flight recorder
// (when tracing is enabled) already carrying the admission span.
func (s *Server) submit(req JobRequest) (*job, error) {
	s.mu.Lock()
	closing := s.closing
	s.mu.Unlock()
	if closing {
		return nil, ErrShuttingDown
	}

	// The flight recorder spans admission from here on; rejected jobs never
	// reach the store, so their recorders vanish with them.
	var rec *tracing.Recorder
	if s.cfg.TraceCapacity >= 0 {
		rec = tracing.New(s.cfg.TraceCapacity)
	}
	root := rec.Start(spanJob, 0,
		tracing.String("dataset", req.Dataset), tracing.String("mode", req.Mode))
	adm := rec.Start(spanAdmission, root)

	ds, info, err := s.datasets.lookup(req.Dataset)
	if err != nil {
		return nil, err
	}
	hreq, err := mapRequest(req, ds)
	if err != nil {
		return nil, err
	}

	jctx, cancel := context.WithCancel(s.base)
	j := &job{
		ctx:       jctx,
		cancel:    cancel,
		ds:        ds,
		dsVersion: info.Version,
		request:   req,
		req:       hreq,
		status:    StatusQueued,
		createdAt: time.Now(),
		done:      make(chan struct{}),
		rec:       rec,
		root:      root,
	}
	// The deadline counts from submission — queue wait included — and is
	// enforced by the clock seam (a timer canceling the job context) rather
	// than context.WithDeadline, so tests can drive expiry without sleeping.
	if d := time.Duration(req.DeadlineMs) * time.Millisecond; d > 0 {
		j.deadline = s.cfg.clock.AfterFunc(d, j.expire)
	} else if s.cfg.DefaultDeadline > 0 {
		j.deadline = s.cfg.clock.AfterFunc(s.cfg.DefaultDeadline, j.expire)
	}

	// Admission control: claim a queue slot or reject immediately — a full
	// queue must never block the HTTP handler.
	select {
	case s.queue <- j:
	default:
		cancel()
		if j.deadline != nil {
			j.deadline.Stop()
		}
		s.inst.rejected.Inc()
		s.log.Warn("job rejected", "dataset", req.Dataset, "queue_depth", s.cfg.QueueDepth)
		return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, s.cfg.QueueDepth)
	}
	rec.End(adm)
	j.queueSpan = rec.Start(spanQueueWait, root)
	s.jobs.add(j)
	s.noteQueued()
	s.log.Info("job accepted", "job", j.id, "dataset", req.Dataset,
		"mode", req.Mode, "queue_depth", len(s.queue))
	return j, nil
}

// noteQueued maintains the queue depth gauges.
func (s *Server) noteQueued() {
	depth := int64(len(s.queue))
	s.inst.queueDepth.Set(float64(depth))
	s.mu.Lock()
	if depth > s.inst.peakDepthSeen {
		s.inst.peakDepthSeen = depth
		s.inst.queuePeak.Set(float64(depth))
	}
	s.mu.Unlock()
}

// execute runs one dequeued job to a terminal state, recording the run and
// encode stages (and, through the observer bridge, the engine's phases) in
// the job's flight recorder.
func (s *Server) execute(j *job) {
	defer j.cancel()
	if !j.markRunning() {
		// Canceled while queued; nothing to run.
		j.closeTrace()
		return
	}
	j.rec.End(j.queueSpan)
	s.inst.running.Add(1)
	defer s.inst.running.Add(-1)
	j.mu.Lock()
	wait := j.startedAt.Sub(j.createdAt)
	j.mu.Unlock()
	s.inst.queueWait.Observe(wait.Seconds())

	req := j.req
	req.Options.Metrics = s.cfg.Metrics
	runSpan := j.rec.Start(spanRun, j.root,
		tracing.String("mode", string(req.Mode)), tracing.Int("threads", req.Options.Threads))
	req.Options.Observer = trace.Multi(req.Options.Observer, j.rec.Observer(runSpan))
	if req.Mode == hyfd.ModeRanked {
		// Ranked jobs stream: each stabilized rank lands on the job record
		// the moment the engine emits it, so GET mid-run returns the prefix.
		rel := j.ds.Relation()
		req.Options.Observer = trace.Multi(req.Options.Observer, trace.ObserverFunc(func(e trace.Event) {
			if ev, ok := e.(trace.RankedResult); ok {
				j.appendRanked(renderRanked(ev, rel))
			}
		}))
	}
	start := time.Now()
	res, err := hyfd.Run(j.ctx, req)
	elapsed := time.Since(start)
	j.rec.End(runSpan)
	mode := string(j.req.Mode)
	s.inst.runSeconds.With(mode).Observe(elapsed.Seconds())

	switch {
	case err == nil:
		encSpan := j.rec.Start(spanEncode, j.root)
		result := renderResult(res, j.ds.Relation())
		j.rec.End(encSpan, tracing.Int("count", result.Count))
		if j.transition(StatusDone, result, nil) {
			s.inst.jobsTotal.With(string(StatusDone)).Inc()
		}
	case j.deadlineExpired():
		// The deadline timer canceled the context, so the engine reports a
		// plain cancellation; reclassify it as the timeout it is (504).
		err = fmt.Errorf("job deadline exceeded: %w", context.DeadlineExceeded)
		if j.transition(StatusFailed, nil, err) {
			s.inst.jobsTotal.With(string(StatusFailed)).Inc()
		}
	case jobCanceled(err):
		if j.transition(StatusCanceled, nil, err) {
			s.inst.jobsTotal.With(string(StatusCanceled)).Inc()
		}
	default:
		if j.transition(StatusFailed, nil, err) {
			s.inst.jobsTotal.With(string(StatusFailed)).Inc()
		}
	}
	j.closeTrace()
	s.noteFinished(j)
}

// noteFinished folds one terminal job into the daemon-wide telemetry: the
// server-stage span histograms, the slowest-jobs ring, and the structured
// completion log line.
func (s *Server) noteFinished(j *job) {
	v := j.view()
	if j.rec != nil {
		for _, sp := range j.rec.Snapshot().Spans {
			switch sp.Name {
			case spanAdmission, spanQueueWait, spanRun, spanEncode:
				s.inst.spanSeconds.With(sp.Name).Observe(float64(sp.DurNs) / 1e9)
			}
		}
	}
	s.slow.Note(tracing.SlowJob{
		ID:             v.ID,
		Dataset:        v.Request.Dataset,
		Mode:           v.Request.Mode,
		Status:         string(v.Status),
		QueueMs:        v.QueueMs,
		RunMs:          v.RunMs,
		TotalMs:        v.QueueMs + v.RunMs,
		FinishedUnixMs: time.Now().UnixMilli(),
	})
	s.log.Info("job finished", "job", v.ID, "status", v.Status,
		"queue_ms", v.QueueMs, "run_ms", v.RunMs, "error", v.Error)
}

// cancelJob cancels a job in any non-terminal state: queued jobs transition
// immediately (the worker skips them on dequeue), running jobs get their
// context canceled and transition when the engine unwinds.
func (s *Server) cancelJob(id string) (*job, error) {
	j, err := s.jobs.get(id)
	if err != nil {
		return nil, err
	}
	if j.transition(StatusCanceled, nil, context.Canceled) {
		s.inst.jobsTotal.With(string(StatusCanceled)).Inc()
	}
	j.cancel()
	return j, nil
}

// BeginShutdown gates admission: subsequent submissions fail with
// ErrShuttingDown (503). It is idempotent and safe before Shutdown.
func (s *Server) BeginShutdown() {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
}

// Shutdown drains the server: admission closes, jobs still queued are
// canceled, in-flight jobs run until ctx's deadline, stragglers are
// canceled, and every worker is joined before it returns. The error is
// ctx.Err() when the grace deadline forced cancellations, nil on a clean
// drain. Shutdown is idempotent; a second call just waits for the workers
// again.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginShutdown()
	s.stopOnce.Do(func() { close(s.stop) })

	// Cancel everything still queued: shutdown drains in-flight work, not
	// the backlog. (A worker may race us to a queued job and run it; that
	// job is then in-flight and drains below.)
drain:
	for {
		select {
		case j := <-s.queue:
			s.inst.queueDepth.Add(-1)
			if j.transition(StatusCanceled, nil, fmt.Errorf("%w: %w", ErrShuttingDown, context.Canceled)) {
				s.inst.jobsTotal.With(string(StatusCanceled)).Inc()
				j.closeTrace()
				s.noteFinished(j)
			}
			j.cancel()
		default:
			break drain
		}
	}
	s.log.Info("shutdown: queue drained, waiting for in-flight jobs",
		"running", len(s.jobs.running()))

	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	var err error
	select {
	case <-workersDone:
	case <-ctx.Done():
		err = ctx.Err()
		for _, j := range s.jobs.running() {
			j.cancel()
		}
		<-workersDone
	}
	s.inst.up.Set(0)
	return err
}

// retryAfter renders the 429 Retry-After hint in whole seconds (min 1).
// The hint scales with the backlog: the configured base covers one queue
// "round" (workers jobs draining), so a queue N rounds deep hints N× the
// base, capped at five minutes. Clients should add their own jitter — every
// rejected client seeing the same hint would otherwise retry in lockstep
// (see README, API section).
func (s *Server) retryAfter() string {
	rounds := 1
	if depth := len(s.queue); depth > s.cfg.Workers {
		rounds = (depth + s.cfg.Workers - 1) / s.cfg.Workers
	}
	d := time.Duration(rounds) * s.cfg.RetryAfter
	if max := 5 * time.Minute; d > max {
		d = max
	}
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// Handler returns the server's HTTP mux: the versioned job API plus the
// process observability surfaces.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", s.handleDatasetCreate)
	mux.HandleFunc("POST /v1/datasets/{name}/delta", s.handleDatasetDelta)
	mux.HandleFunc("GET /v1/datasets", s.handleDatasetList)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleDatasetGet)
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDatasetDelete)
	mux.HandleFunc("POST /v1/jobs", s.handleJobCreate)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /debug/slowjobs", s.handleSlowJobs)
	if reg := s.cfg.Metrics; reg != nil {
		mux.Handle("GET /metrics", metrics.Handler(reg))
		mux.Handle("GET /metrics.json", metrics.JSONHandler(reg))
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s.countRequests(mux)
}

// countRequests wraps the mux with the hyfdd_http_requests_total{code}
// counter and a per-request access log line carrying the request id (the
// client's X-Request-Id when present, a server-assigned sequence id
// otherwise).
func (s *Server) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = "r-" + strconv.FormatInt(s.nextReq.Add(1), 10)
		}
		cw := &codeWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(cw, r)
		s.inst.httpRequests.With(strconv.Itoa(cw.code)).Inc()
		s.log.Debug("http request", "id", rid, "method", r.Method,
			"path", r.URL.Path, "code", cw.code,
			"duration_ms", float64(time.Since(start).Microseconds())/1000)
	})
}

// codeWriter records the response status code.
type codeWriter struct {
	http.ResponseWriter
	code int
}

func (w *codeWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}
