package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hyfd"
	"hyfd/internal/datasets"
	"hyfd/internal/metrics"
)

// newTestServer stands up a started server behind an httptest listener and
// tears both down at test end (jobs still running at cleanup are canceled
// by the short grace deadline).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = hyfd.NewMetricsRegistry()
	}
	srv := New(context.Background(), cfg)
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, ts
}

// do issues one JSON request and returns the status code and decoded body.
func do(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// registerCSV registers an inline-CSV dataset and asserts success.
func registerCSV(t *testing.T, ts *httptest.Server, name, csv string) {
	t.Helper()
	body, _ := json.Marshal(DatasetRequest{Name: name, CSV: csv})
	code, data := do(t, "POST", ts.URL+"/v1/datasets", string(body))
	if code != http.StatusCreated {
		t.Fatalf("registering %q: status %d: %s", name, code, data)
	}
}

// submitJob submits a job and returns its accepted view.
func submitJob(t *testing.T, ts *httptest.Server, req JobRequest) JobView {
	t.Helper()
	body, _ := json.Marshal(req)
	code, data := do(t, "POST", ts.URL+"/v1/jobs", string(body))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, data)
	}
	var view JobView
	if err := json.Unmarshal(data, &view); err != nil {
		t.Fatal(err)
	}
	if view.ID == "" || view.Status == "" {
		t.Fatalf("accepted view incomplete: %s", data)
	}
	return view
}

// getJob fetches one job view.
func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	code, data := do(t, "GET", ts.URL+"/v1/jobs/"+id, "")
	if code != http.StatusOK {
		t.Fatalf("GET job %s: status %d: %s", id, code, data)
	}
	var view JobView
	if err := json.Unmarshal(data, &view); err != nil {
		t.Fatal(err)
	}
	return view
}

// waitTerminal polls a job until it reaches a terminal status.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		view := getJob(t, ts, id)
		switch view.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			return view
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal status", id)
	return JobView{}
}

// waitStatus polls until the job reports the wanted status.
func waitStatus(t *testing.T, ts *httptest.Server, id string, want JobStatus) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		view := getJob(t, ts, id)
		if view.Status == want {
			return view
		}
		switch view.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			t.Fatalf("job %s terminal at %s while waiting for %s", id, view.Status, want)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobView{}
}

const tinyCSV = "A,B,C\n1,x,p\n2,x,q\n3,y,p\n4,y,q\n"

// slowCSV builds a relation on which an FD_Mine job runs for roughly a
// second — long enough that the tests below can observe the running state
// and cancel or time it out well before it completes on its own.
func slowCSV() string {
	r := rand.New(rand.NewSource(11))
	var b strings.Builder
	cols := 10
	for j := 0; j < cols; j++ {
		if j > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "c%d", j)
	}
	b.WriteByte('\n')
	for i := 0; i < 2000; i++ {
		for j := 0; j < cols; j++ {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(r.Intn(4)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestDatasetLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	body, _ := json.Marshal(DatasetRequest{Name: "t", CSV: tinyCSV})
	code, data := do(t, "POST", ts.URL+"/v1/datasets", string(body))
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, data)
	}
	var info DatasetInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "t" || info.Rows != 4 || info.Cols != 3 || info.PrepareNs <= 0 {
		t.Fatalf("info: %+v", info)
	}

	// Duplicate name → 409.
	if code, _ := do(t, "POST", ts.URL+"/v1/datasets", string(body)); code != http.StatusConflict {
		t.Fatalf("duplicate: %d, want 409", code)
	}

	// List contains it.
	code, data = do(t, "GET", ts.URL+"/v1/datasets", "")
	if code != http.StatusOK || !strings.Contains(string(data), `"t"`) {
		t.Fatalf("list: %d %s", code, data)
	}

	// Get one.
	if code, _ := do(t, "GET", ts.URL+"/v1/datasets/t", ""); code != http.StatusOK {
		t.Fatalf("get: %d", code)
	}

	// Delete, then the name is gone and reusable.
	if code, _ := do(t, "DELETE", ts.URL+"/v1/datasets/t", ""); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if code, _ := do(t, "GET", ts.URL+"/v1/datasets/t", ""); code != http.StatusNotFound {
		t.Fatalf("get after delete: %d", code)
	}
	if code, _ := do(t, "DELETE", ts.URL+"/v1/datasets/t", ""); code != http.StatusNotFound {
		t.Fatalf("double delete: %d", code)
	}
	if code, _ := do(t, "POST", ts.URL+"/v1/datasets", string(body)); code != http.StatusCreated {
		t.Fatalf("re-register after delete: %d", code)
	}
}

func TestDatasetValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, body := range map[string]string{
		"malformed JSON":  `{"name": "x", `,
		"unknown field":   `{"name":"x","csv":"a\n1\n","bogus":true}`,
		"trailing data":   `{"name":"x","csv":"a\n1\n"} {"again":1}`,
		"no source":       `{"name":"x"}`,
		"two sources":     `{"name":"x","csv":"a\n1\n","path":"/tmp/x.csv"}`,
		"empty name":      `{"csv":"a\n1\n"}`,
		"multi-char sep":  `{"name":"x","csv":"a\n1\n","sep":"ab"}`,
		"unknown catalog": `{"name":"x","generate":{"dataset":"no-such-dataset"}}`,
	} {
		code, data := do(t, "POST", ts.URL+"/v1/datasets", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, code, data)
		}
	}
}

func TestJobAllModes(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	registerCSV(t, ts, "t", tinyCSV)

	t.Run("fd", func(t *testing.T) {
		view := waitTerminal(t, ts, submitJob(t, ts, JobRequest{Dataset: "t", Mode: "fd"}).ID)
		if view.Status != StatusDone || view.Result == nil || len(view.Result.FDs) == 0 {
			t.Fatalf("fd job: %+v", view)
		}
		if view.Result.Stats == nil || !view.Result.Stats.Warm {
			t.Fatalf("fd job must run warm: %+v", view.Result.Stats)
		}
		if view.Result.Count != len(view.Result.FDs) {
			t.Fatalf("count %d != %d fds", view.Result.Count, len(view.Result.FDs))
		}
	})
	t.Run("fd baseline", func(t *testing.T) {
		view := waitTerminal(t, ts, submitJob(t, ts, JobRequest{Dataset: "t", Mode: "fd", Algorithm: "Tane"}).ID)
		if view.Status != StatusDone || view.Result == nil || len(view.Result.FDs) == 0 {
			t.Fatalf("baseline job: %+v", view)
		}
	})
	t.Run("afd", func(t *testing.T) {
		view := waitTerminal(t, ts, submitJob(t, ts, JobRequest{Dataset: "t", Mode: "afd", MaxError: 0.5}).ID)
		if view.Status != StatusDone || view.Result == nil || len(view.Result.AFDs) == 0 {
			t.Fatalf("afd job: %+v", view)
		}
	})
	t.Run("ucc", func(t *testing.T) {
		view := waitTerminal(t, ts, submitJob(t, ts, JobRequest{Dataset: "t", Mode: "ucc"}).ID)
		if view.Status != StatusDone || view.Result == nil || len(view.Result.UCCs) == 0 {
			t.Fatalf("ucc job: %+v", view)
		}
	})
	t.Run("ranked", func(t *testing.T) {
		view := waitTerminal(t, ts, submitJob(t, ts, JobRequest{Dataset: "t", Mode: "ranked"}).ID)
		if view.Status != StatusDone || view.Result == nil || len(view.Result.Ranked) == 0 {
			t.Fatalf("ranked job: %+v", view)
		}
		res := view.Result
		if res.Partial {
			t.Fatal("finished ranked job must not report a partial result")
		}
		if res.Count != len(res.Ranked) {
			t.Fatalf("count %d != %d ranked", res.Count, len(res.Ranked))
		}
		for i, it := range res.Ranked {
			if it.Rank != i+1 {
				t.Fatalf("rank[%d] = %d, want %d", i, it.Rank, i+1)
			}
			if i > 0 && it.Score > res.Ranked[i-1].Score {
				t.Fatalf("scores not monotone at %d: %g after %g", i, it.Score, res.Ranked[i-1].Score)
			}
			if it.FD == "" {
				t.Fatalf("ranked[%d] has empty FD rendering", i)
			}
		}

		// top_k returns exactly the prefix of the full ranking.
		capped := waitTerminal(t, ts, submitJob(t, ts, JobRequest{Dataset: "t", Mode: "ranked", TopK: 2}).ID)
		if capped.Status != StatusDone || capped.Result == nil || len(capped.Result.Ranked) != 2 {
			t.Fatalf("top-2 job: %+v", capped)
		}
		for i, it := range capped.Result.Ranked {
			if it != res.Ranked[i] {
				t.Fatalf("top-2 not a prefix of the full ranking at %d: %+v vs %+v", i, it, res.Ranked[i])
			}
		}
	})
}

func TestJobValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	registerCSV(t, ts, "t", tinyCSV)
	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"malformed JSON":    {`{"dataset": `, http.StatusBadRequest},
		"unknown field":     {`{"dataset":"t","nope":1}`, http.StatusBadRequest},
		"unknown dataset":   {`{"dataset":"ghost"}`, http.StatusNotFound},
		"unknown algorithm": {`{"dataset":"t","algorithm":"NoSuchAlg"}`, http.StatusBadRequest},
		"unknown mode":      {`{"dataset":"t","mode":"xfd"}`, http.StatusBadRequest},
		"algorithm in afd":  {`{"dataset":"t","mode":"afd","algorithm":"Tane"}`, http.StatusBadRequest},
		"algorithm ranked":  {`{"dataset":"t","mode":"ranked","algorithm":"Tane"}`, http.StatusBadRequest},
		"negative top_k":    {`{"dataset":"t","mode":"ranked","top_k":-1}`, http.StatusBadRequest},
		"negative min":      {`{"dataset":"t","mode":"ranked","min_score":-0.5}`, http.StatusBadRequest},
	} {
		code, data := do(t, "POST", ts.URL+"/v1/jobs", tc.body)
		if code != tc.want {
			t.Errorf("%s: status %d (%s), want %d", name, code, data, tc.want)
		}
	}
	// Unknown job id on the read and cancel paths.
	if code, _ := do(t, "GET", ts.URL+"/v1/jobs/j-999", ""); code != http.StatusNotFound {
		t.Errorf("unknown job get: %d", code)
	}
	if code, _ := do(t, "DELETE", ts.URL+"/v1/jobs/j-999", ""); code != http.StatusNotFound {
		t.Errorf("unknown job cancel: %d", code)
	}
}

// TestJobCancelMidRun: canceling a running job aborts the engine through the
// context path and lands the job in canceled with the 499 error status.
func TestJobCancelMidRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	registerCSV(t, ts, "slow", slowCSV())

	id := submitJob(t, ts, JobRequest{Dataset: "slow", Algorithm: "FD_Mine"}).ID
	waitStatus(t, ts, id, StatusRunning)
	start := time.Now()
	code, data := do(t, "DELETE", ts.URL+"/v1/jobs/"+id, "")
	if code != http.StatusOK {
		t.Fatalf("cancel: %d %s", code, data)
	}
	view := waitTerminal(t, ts, id)
	if view.Status != StatusCanceled {
		t.Fatalf("status %s, want canceled", view.Status)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s to take effect", elapsed)
	}
	if view.ErrorStatus != StatusClientClosedRequest {
		t.Fatalf("error status %d, want %d", view.ErrorStatus, StatusClientClosedRequest)
	}
	// Canceling a finished job stays canceled (idempotent no-op).
	if code, _ := do(t, "DELETE", ts.URL+"/v1/jobs/"+id, ""); code != http.StatusOK {
		t.Fatalf("re-cancel: %d", code)
	}
}

// TestJobCancelQueued: a job canceled while still waiting in the queue never
// runs — the worker skips it on dequeue.
func TestJobCancelQueued(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	registerCSV(t, ts, "slow", slowCSV())
	registerCSV(t, ts, "t", tinyCSV)

	blocker := submitJob(t, ts, JobRequest{Dataset: "slow", Algorithm: "FD_Mine"}).ID
	waitStatus(t, ts, blocker, StatusRunning)
	queued := submitJob(t, ts, JobRequest{Dataset: "t"}).ID
	if code, _ := do(t, "DELETE", ts.URL+"/v1/jobs/"+queued, ""); code != http.StatusOK {
		t.Fatalf("cancel queued: %d", code)
	}
	view := waitTerminal(t, ts, queued)
	if view.Status != StatusCanceled || view.RunMs != 0 {
		t.Fatalf("queued job must cancel without running: %+v", view)
	}
	if code, _ := do(t, "DELETE", ts.URL+"/v1/jobs/"+blocker, ""); code != http.StatusOK {
		t.Fatalf("cancel blocker: %d", code)
	}
	waitTerminal(t, ts, blocker)
}

// TestQueueFull429: admission control must reject with 429 + Retry-After the
// moment the bounded queue is full, without blocking the handler.
func TestQueueFull429(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})
	registerCSV(t, ts, "slow", slowCSV())
	registerCSV(t, ts, "t", tinyCSV)

	running := submitJob(t, ts, JobRequest{Dataset: "slow", Algorithm: "FD_Mine"}).ID
	waitStatus(t, ts, running, StatusRunning)
	queued := submitJob(t, ts, JobRequest{Dataset: "t"}).ID

	body, _ := json.Marshal(JobRequest{Dataset: "t"})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", resp.Header.Get("Retry-After"))
	}
	var envelope errorBody
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Status != 429 {
		t.Fatalf("429 envelope: %+v err=%v", envelope, err)
	}

	// Draining the blocker frees capacity again.
	if code, _ := do(t, "DELETE", ts.URL+"/v1/jobs/"+running, ""); code != http.StatusOK {
		t.Fatal("cancel blocker")
	}
	waitTerminal(t, ts, running)
	waitTerminal(t, ts, queued)
	view := waitTerminal(t, ts, submitJob(t, ts, JobRequest{Dataset: "t"}).ID)
	if view.Status != StatusDone {
		t.Fatalf("post-drain job: %s", view.Status)
	}
}

// TestJobDeadline: a job deadline lands the job in failed with the 504
// error status once it expires mid-run. Expiry is driven through the fake
// clock — no real time passes waiting for the deadline.
func TestJobDeadline(t *testing.T) {
	t.Run("deadline_ms", func(t *testing.T) {
		fc := newFakeClock()
		_, ts := newTestServer(t, Config{Workers: 1, clock: fc})
		registerCSV(t, ts, "slow", slowCSV())
		id := submitJob(t, ts, JobRequest{Dataset: "slow", Algorithm: "FD_Mine", DeadlineMs: 60_000}).ID
		waitStatus(t, ts, id, StatusRunning)
		fc.Advance(61 * time.Second)
		view := waitTerminal(t, ts, id)
		if view.Status != StatusFailed {
			t.Fatalf("status %s, want failed", view.Status)
		}
		if view.ErrorStatus != http.StatusGatewayTimeout {
			t.Fatalf("error status %d, want 504", view.ErrorStatus)
		}
	})
	t.Run("default deadline", func(t *testing.T) {
		fc := newFakeClock()
		_, ts := newTestServer(t, Config{Workers: 1, DefaultDeadline: time.Minute, clock: fc})
		registerCSV(t, ts, "slow", slowCSV())
		id := submitJob(t, ts, JobRequest{Dataset: "slow", Algorithm: "FD_Mine"}).ID
		waitStatus(t, ts, id, StatusRunning)
		fc.Advance(2 * time.Minute)
		view := waitTerminal(t, ts, id)
		if view.Status != StatusFailed || view.ErrorStatus != http.StatusGatewayTimeout {
			t.Fatalf("default deadline: status %s error %d, want failed/504", view.Status, view.ErrorStatus)
		}
	})
	t.Run("finishing stops the timer", func(t *testing.T) {
		fc := newFakeClock()
		_, ts := newTestServer(t, Config{Workers: 1, clock: fc})
		registerCSV(t, ts, "t", tinyCSV)
		view := waitTerminal(t, ts, submitJob(t, ts, JobRequest{Dataset: "t", DeadlineMs: 60_000}).ID)
		if view.Status != StatusDone {
			t.Fatalf("status %s, want done", view.Status)
		}
		// Advancing past the deadline after completion must not disturb the
		// terminal state.
		fc.Advance(61 * time.Second)
		if view := getJob(t, ts, view.ID); view.Status != StatusDone {
			t.Fatalf("post-completion expiry flipped status to %s", view.Status)
		}
	})
}

// rankedStreamCSV builds a relation whose ranked run streams: the constant
// column's {} -> konst stabilizes at rank 1 after the first validation level
// (every other candidate scores at most 1/3), while the fourteen random
// domain-3 columns keep the engine validating for hundreds of milliseconds —
// a wide window for mid-run polls.
func rankedStreamCSV() string {
	r := rand.New(rand.NewSource(7))
	var b strings.Builder
	cols := 14
	b.WriteString("konst")
	for j := 0; j < cols; j++ {
		fmt.Fprintf(&b, ",c%d", j)
	}
	b.WriteByte('\n')
	for i := 0; i < 4000; i++ {
		b.WriteString("k")
		for j := 0; j < cols; j++ {
			b.WriteByte(',')
			b.WriteString(strconv.Itoa(r.Intn(3)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestJobRankedStreamAndCancel: a running ranked job exposes its stabilized
// ranks through GET as a partial result (the any-time stream), and canceling
// the job after results arrived keeps them retrievable with 200.
func TestJobRankedStreamAndCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	registerCSV(t, ts, "stream", rankedStreamCSV())
	id := submitJob(t, ts, JobRequest{Dataset: "stream", Mode: "ranked", Threads: 1}).ID

	// Poll until the any-time stream surfaces at least one stabilized rank.
	var partial JobView
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no partial ranked result surfaced mid-run")
		}
		v := getJob(t, ts, id)
		switch v.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			t.Fatalf("job terminal (%s) before a mid-run poll saw results: %s", v.Status, v.Error)
		}
		if v.Result != nil && len(v.Result.Ranked) > 0 {
			partial = v
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !partial.Result.Partial {
		t.Fatalf("mid-run ranked result must be marked partial: %+v", partial.Result)
	}
	for i, it := range partial.Result.Ranked {
		if it.Rank != i+1 {
			t.Fatalf("partial rank[%d] = %d, want %d", i, it.Rank, i+1)
		}
		if i > 0 && it.Score > partial.Result.Ranked[i-1].Score {
			t.Fatalf("partial scores not monotone at %d", i)
		}
	}

	// Early-cancel: the stabilized prefix survives the cancel, and GET keeps
	// answering 200 — ranks already emitted are final.
	if code, data := do(t, "DELETE", ts.URL+"/v1/jobs/"+id, ""); code != http.StatusOK {
		t.Fatalf("cancel: %d %s", code, data)
	}
	view := waitTerminal(t, ts, id)
	if view.Status != StatusCanceled {
		t.Fatalf("status %s, want canceled", view.Status)
	}
	code, data := do(t, "GET", ts.URL+"/v1/jobs/"+id, "")
	if code != http.StatusOK {
		t.Fatalf("GET after cancel: %d", code)
	}
	var after JobView
	if err := json.Unmarshal(data, &after); err != nil {
		t.Fatal(err)
	}
	if after.Result == nil || !after.Result.Partial || len(after.Result.Ranked) < len(partial.Result.Ranked) {
		t.Fatalf("canceled ranked job must keep its partial results: %+v", after.Result)
	}
	for i, it := range partial.Result.Ranked {
		if after.Result.Ranked[i] != it {
			t.Fatalf("emitted rank %d changed after cancel: %+v vs %+v", i+1, after.Result.Ranked[i], it)
		}
	}
	if after.ErrorStatus != StatusClientClosedRequest {
		t.Fatalf("error status %d, want %d", after.ErrorStatus, StatusClientClosedRequest)
	}
}

// TestConcurrentWarmJobs: many concurrent jobs over one warm Dataset, at
// engine thread counts 1 and 4, must all succeed with identical results —
// the multi-tenant read-only-share contract, race-clean under -race.
func TestConcurrentWarmJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	registerCSV(t, ts, "t", tinyCSV)

	const perThreadCount = 3
	type outcome struct {
		fds []string
		err error
	}
	var wg sync.WaitGroup
	outcomes := make([]outcome, 2*perThreadCount)
	for i := 0; i < len(outcomes); i++ {
		threads := 1
		if i >= perThreadCount {
			threads = 4
		}
		wg.Add(1)
		go func(i, threads int) {
			defer wg.Done()
			body, _ := json.Marshal(JobRequest{Dataset: "t", Threads: threads})
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				outcomes[i].err = err
				return
			}
			var view JobView
			err = json.NewDecoder(resp.Body).Decode(&view)
			resp.Body.Close()
			if err != nil {
				outcomes[i].err = err
				return
			}
			for {
				resp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID)
				if err != nil {
					outcomes[i].err = err
					return
				}
				var cur JobView
				err = json.NewDecoder(resp.Body).Decode(&cur)
				resp.Body.Close()
				if err != nil {
					outcomes[i].err = err
					return
				}
				if cur.Status == StatusDone {
					outcomes[i].fds = cur.Result.FDs
					return
				}
				if cur.Status == StatusFailed || cur.Status == StatusCanceled {
					outcomes[i].err = fmt.Errorf("job %s: %s", cur.ID, cur.Error)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(i, threads)
	}
	wg.Wait()
	want := strings.Join(outcomes[0].fds, "\n")
	for i, o := range outcomes {
		if o.err != nil {
			t.Fatalf("job %d: %v", i, o.err)
		}
		if got := strings.Join(o.fds, "\n"); got != want {
			t.Fatalf("job %d result diverges:\n%s\nvs\n%s", i, got, want)
		}
	}
}

// TestWarmMatchesCold: the acceptance bar — a job served warm through the
// HTTP path returns byte-identical FD renderings to a cold in-process run on
// the same input at the same thread count.
func TestWarmMatchesCold(t *testing.T) {
	d, err := datasets.ByName("bridges")
	if err != nil {
		t.Fatal(err)
	}
	rel := d.Generate(1.0)

	_, ts := newTestServer(t, Config{Workers: 2})
	body, _ := json.Marshal(DatasetRequest{Name: "bridges", Generate: &GenerateSpec{Dataset: "bridges"}})
	if code, data := do(t, "POST", ts.URL+"/v1/datasets", string(body)); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, data)
	}

	for _, threads := range []int{1, 4} {
		view := waitTerminal(t, ts, submitJob(t, ts, JobRequest{Dataset: "bridges", Threads: threads}).ID)
		if view.Status != StatusDone {
			t.Fatalf("threads %d: %s (%s)", threads, view.Status, view.Error)
		}
		cold, err := hyfd.Run(context.Background(), hyfd.Request{
			Relation: rel,
			Options:  hyfd.Options{Threads: threads},
		})
		if err != nil {
			t.Fatal(err)
		}
		var coldLines []string
		for _, f := range cold.FDs {
			coldLines = append(coldLines, f.Format(rel))
		}
		warm := strings.Join(view.Result.FDs, "\n")
		if want := strings.Join(coldLines, "\n"); warm != want {
			t.Fatalf("threads %d: warm serving result diverges from cold run\nwarm:\n%.400s\ncold:\n%.400s", threads, warm, want)
		}
	}
}

// TestObservabilitySurfaces: the process metrics and health endpoints ride
// on the same mux as the job API.
func TestObservabilitySurfaces(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	registerCSV(t, ts, "t", tinyCSV)
	waitTerminal(t, ts, submitJob(t, ts, JobRequest{Dataset: "t"}).ID)

	code, data := do(t, "GET", ts.URL+"/healthz", "")
	if code != http.StatusOK || !strings.Contains(string(data), `"ok"`) {
		t.Fatalf("healthz: %d %s", code, data)
	}
	code, data = do(t, "GET", ts.URL+"/readyz", "")
	if code != http.StatusOK || !strings.Contains(string(data), `"ready"`) {
		t.Fatalf("readyz: %d %s", code, data)
	}
	code, data = do(t, "GET", ts.URL+"/metrics", "")
	if code != http.StatusOK || !strings.Contains(string(data), "hyfdd_up 1") {
		t.Fatalf("metrics: %d\n%.400s", code, data)
	}
	if !strings.Contains(string(data), `hyfdd_jobs_total{status="done"} 1`) {
		t.Fatalf("metrics missing job counter:\n%.1200s", data)
	}
	code, data = do(t, "GET", ts.URL+"/metrics.json", "")
	if code != http.StatusOK {
		t.Fatalf("metrics.json: %d", code)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics.json not a snapshot: %v", err)
	}
	if n, ok := snap.Counter("hyfdd_jobs_total", "status", "done"); !ok || n != 1 {
		t.Fatalf("hyfdd_jobs_total{done} = %d ok=%v", n, ok)
	}
	if code, _ := do(t, "GET", ts.URL+"/debug/pprof/cmdline", ""); code != http.StatusOK {
		t.Fatalf("pprof: %d", code)
	}

	// Shutdown flips the readiness probe and closes admission; liveness
	// stays green while in-flight work drains.
	srv.BeginShutdown()
	if code, _ := do(t, "GET", ts.URL+"/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz during shutdown: %d, want 200 (liveness is not readiness)", code)
	}
	if code, _ := do(t, "GET", ts.URL+"/readyz", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during shutdown: %d", code)
	}
	if code, _ := do(t, "POST", ts.URL+"/v1/datasets", `{"name":"x","csv":"a\n1\n"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("register during shutdown: %d", code)
	}
	body, _ := json.Marshal(JobRequest{Dataset: "t"})
	if code, _ := do(t, "POST", ts.URL+"/v1/jobs", string(body)); code != http.StatusServiceUnavailable {
		t.Fatalf("submit during shutdown: %d", code)
	}
}

// TestShutdownDrains: in-flight jobs finish inside the grace window; with an
// expired grace deadline, running jobs are canceled and Shutdown reports the
// deadline error.
func TestShutdownDrains(t *testing.T) {
	t.Run("clean drain", func(t *testing.T) {
		srv, ts := newTestServer(t, Config{Workers: 1})
		registerCSV(t, ts, "t", tinyCSV)
		id := submitJob(t, ts, JobRequest{Dataset: "t"}).ID
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("clean drain returned %v", err)
		}
		if view := getJob(t, ts, id); view.Status != StatusDone {
			t.Fatalf("drained job status %s", view.Status)
		}
	})
	t.Run("grace deadline cancels stragglers", func(t *testing.T) {
		srv, ts := newTestServer(t, Config{Workers: 1})
		registerCSV(t, ts, "slow", slowCSV())
		id := submitJob(t, ts, JobRequest{Dataset: "slow", Algorithm: "FD_Mine"}).ID
		waitStatus(t, ts, id, StatusRunning)
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
			t.Fatalf("forced shutdown returned %v, want DeadlineExceeded", err)
		}
		if view := getJob(t, ts, id); view.Status != StatusCanceled {
			t.Fatalf("straggler status %s, want canceled", view.Status)
		}
	})
	t.Run("queued jobs are canceled, not drained", func(t *testing.T) {
		srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
		registerCSV(t, ts, "slow", slowCSV())
		registerCSV(t, ts, "t", tinyCSV)
		blocker := submitJob(t, ts, JobRequest{Dataset: "slow", Algorithm: "FD_Mine"}).ID
		waitStatus(t, ts, blocker, StatusRunning)
		queued := submitJob(t, ts, JobRequest{Dataset: "t"}).ID
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		_ = srv.Shutdown(ctx)
		view := getJob(t, ts, queued)
		if view.Status == StatusDone {
			t.Fatalf("queued job must not be drained during shutdown")
		}
	})
}

// TestJobList: jobs list in submission order with stable sequential ids.
func TestJobList(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	registerCSV(t, ts, "t", tinyCSV)
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, submitJob(t, ts, JobRequest{Dataset: "t"}).ID)
	}
	for _, id := range ids {
		waitTerminal(t, ts, id)
	}
	code, data := do(t, "GET", ts.URL+"/v1/jobs", "")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(list.Jobs))
	}
	for i, j := range list.Jobs {
		if j.ID != fmt.Sprintf("j-%d", i+1) {
			t.Fatalf("job %d id %s", i, j.ID)
		}
	}
}

// TestDeleteDatasetKeepsRunningJobs: deleting a registration does not
// disturb a job already running over the (immutable) Dataset.
func TestDeleteDatasetKeepsRunningJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	registerCSV(t, ts, "slow", slowCSV())
	id := submitJob(t, ts, JobRequest{Dataset: "slow", Algorithm: "FD_Mine"}).ID
	waitStatus(t, ts, id, StatusRunning)
	if code, _ := do(t, "DELETE", ts.URL+"/v1/datasets/slow", ""); code != http.StatusNoContent {
		t.Fatal("delete dataset")
	}
	// New jobs naming it are refused…
	body, _ := json.Marshal(JobRequest{Dataset: "slow"})
	if code, _ := do(t, "POST", ts.URL+"/v1/jobs", string(body)); code != http.StatusNotFound {
		t.Fatal("submit after delete must 404")
	}
	// …while the in-flight job runs to completion.
	view := waitTerminal(t, ts, id)
	if view.Status != StatusDone {
		t.Fatalf("in-flight job after dataset delete: %s (%s)", view.Status, view.Error)
	}
}
