package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"hyfd/internal/metrics"
	"hyfd/internal/tracing"
)

// fetchTrace GETs a job's flight recorder and decodes the span document.
func fetchTrace(t *testing.T, url string) tracing.Trace {
	t.Helper()
	code, data := do(t, "GET", url, "")
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, code, data)
	}
	var tr tracing.Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace is not JSON: %v\n%s", err, data)
	}
	return tr
}

// TestJobTraceSpanTree: a finished job's flight recorder holds the complete
// server-stage timeline — root job span, admission, queue wait, run, encode —
// with the engine's bridged phases nested under the run span.
func TestJobTraceSpanTree(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	registerCSV(t, ts, "t", tinyCSV)
	view := waitTerminal(t, ts, submitJob(t, ts, JobRequest{Dataset: "t", Mode: "fd"}).ID)
	if view.Status != StatusDone {
		t.Fatalf("job finished %s", view.Status)
	}

	tr := fetchTrace(t, ts.URL+"/v1/jobs/"+view.ID+"/trace")
	byName := map[string][]tracing.SpanView{}
	for _, sp := range tr.Spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
		if sp.Open {
			t.Fatalf("finished job left span %q open: %+v", sp.Name, sp)
		}
		if sp.DurNs < 0 {
			t.Fatalf("negative duration on %q: %+v", sp.Name, sp)
		}
	}
	one := func(name string) tracing.SpanView {
		t.Helper()
		got := byName[name]
		if len(got) != 1 {
			t.Fatalf("want exactly one %q span, got %d (trace: %+v)", name, len(got), tr.Spans)
		}
		return got[0]
	}

	job := one("job")
	if job.Parent != 0 {
		t.Fatalf("job span must be the root: %+v", job)
	}
	if job.Attrs["id"] != view.ID || job.Attrs["dataset"] != "t" || job.Attrs["status"] != string(StatusDone) {
		t.Fatalf("job span attrs: %+v", job.Attrs)
	}
	for _, stage := range []string{"admission", "queue.wait", "run", "encode"} {
		if sp := one(stage); sp.Parent != job.ID {
			t.Fatalf("%s span parented under %d, want job %d", stage, sp.Parent, job.ID)
		}
	}

	// The warm engine run bridges at least its preprocessing and completion
	// events into the run span's subtree.
	run := one("run")
	for _, engine := range []string{tracing.SpanPrepare, tracing.SpanEngineDone} {
		if sp := one(engine); sp.Parent != run.ID {
			t.Fatalf("engine span %s parented under %d, want run %d", engine, sp.Parent, run.ID)
		}
	}
	if one(tracing.SpanPrepare).Attrs["warm"] != "true" {
		t.Fatalf("serving runs must be warm: %+v", one(tracing.SpanPrepare).Attrs)
	}
	if one("encode").Attrs["count"] == "" {
		t.Fatalf("encode span must carry the result count: %+v", one("encode").Attrs)
	}
}

// TestJobTraceChromeExport: ?format=chrome renders the same trace as a
// Chrome trace-event document that Perfetto can load.
func TestJobTraceChromeExport(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	registerCSV(t, ts, "t", tinyCSV)
	view := waitTerminal(t, ts, submitJob(t, ts, JobRequest{Dataset: "t"}).ID)

	code, data := do(t, "GET", ts.URL+"/v1/jobs/"+view.ID+"/trace?format=chrome", "")
	if code != http.StatusOK {
		t.Fatalf("chrome export: status %d: %s", code, data)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome export is not JSON: %v\n%s", err, data)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("chrome document shape: %+v", doc)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Pid != 1 || ev.Tid != 1 || (ev.Ph != "X" && ev.Ph != "i") {
			t.Fatalf("malformed event: %+v", ev)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"job", "run", "encode"} {
		if !names[want] {
			t.Fatalf("chrome export missing %q event; have %v", want, names)
		}
	}
}

// TestTraceDisabled: TraceCapacity < 0 turns the flight recorder off — jobs
// still run, but the trace endpoint answers 404.
func TestTraceDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, TraceCapacity: -1})
	registerCSV(t, ts, "t", tinyCSV)
	view := waitTerminal(t, ts, submitJob(t, ts, JobRequest{Dataset: "t"}).ID)
	if view.Status != StatusDone {
		t.Fatalf("untraced job finished %s", view.Status)
	}
	code, data := do(t, "GET", ts.URL+"/v1/jobs/"+view.ID+"/trace", "")
	if code != http.StatusNotFound || !strings.Contains(string(data), "tracing disabled") {
		t.Fatalf("trace with tracing disabled: %d %s", code, data)
	}
}

// TestSlowJobsEndpoint: finished jobs land in the daemon-wide slowest-jobs
// ring, slowest first, with their queue/run split.
func TestSlowJobsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	registerCSV(t, ts, "t", tinyCSV)
	for i := 0; i < 3; i++ {
		waitTerminal(t, ts, submitJob(t, ts, JobRequest{Dataset: "t"}).ID)
	}

	code, data := do(t, "GET", ts.URL+"/debug/slowjobs", "")
	if code != http.StatusOK {
		t.Fatalf("slowjobs: %d %s", code, data)
	}
	var doc struct {
		SlowJobs []tracing.SlowJob `json:"slow_jobs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("slowjobs not JSON: %v\n%s", err, data)
	}
	if len(doc.SlowJobs) != 3 {
		t.Fatalf("slowjobs holds %d entries, want 3: %s", len(doc.SlowJobs), data)
	}
	for i, sj := range doc.SlowJobs {
		if sj.ID == "" || sj.Dataset != "t" || sj.Status != string(StatusDone) || sj.TotalMs <= 0 {
			t.Fatalf("slowjob entry %d: %+v", i, sj)
		}
		if i > 0 && doc.SlowJobs[i-1].TotalMs < sj.TotalMs {
			t.Fatalf("slowjobs not ordered slowest-first: %s", data)
		}
	}

	// A disabled ring serves an empty (but well-formed) list.
	_, tsOff := newTestServer(t, Config{Workers: 1, SlowJobs: -1})
	code, data = do(t, "GET", tsOff.URL+"/debug/slowjobs", "")
	doc.SlowJobs = nil
	if err := json.Unmarshal(data, &doc); err != nil || code != http.StatusOK || len(doc.SlowJobs) != 0 {
		t.Fatalf("disabled slowjobs: %d %s (err %v)", code, data, err)
	}
}

// TestRetryAfterScales: the 429 hint grows with the backlog — a queue one
// round deep hints the configured base, a deeper queue hints more.
func TestRetryAfterScales(t *testing.T) {
	srv := New(context.Background(), Config{Workers: 2, QueueDepth: 8,
		RetryAfter: 2 * time.Second, Metrics: metrics.NewRegistry()})
	for depth, want := range map[int]string{0: "2", 2: "2", 3: "4", 8: "8"} {
		srv.queue = make(chan *job, 8)
		for i := 0; i < depth; i++ {
			srv.queue <- &job{}
		}
		if got := srv.retryAfter(); got != want {
			t.Errorf("depth %d: Retry-After %s, want %s", depth, got, want)
		}
	}
}

// TestMetricsStableUnderTracedLoad: concurrent traced jobs at one and four
// engine threads leave the metrics snapshot consistent — every submitted job
// is accounted for exactly once, and the span histograms cover each finished
// job's stages. Run under -race this also exercises recorder/metrics
// concurrency.
func TestMetricsStableUnderTracedLoad(t *testing.T) {
	for _, threads := range []int{1, 4} {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			reg := metrics.NewRegistry()
			_, ts := newTestServer(t, Config{Workers: 4, Metrics: reg})
			registerCSV(t, ts, "t", tinyCSV)

			const jobs = 12
			var wg sync.WaitGroup
			ids := make([]string, jobs)
			for i := range ids {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					ids[i] = submitJob(t, ts, JobRequest{Dataset: "t", Mode: "fd", Threads: threads}).ID
				}(i)
			}
			wg.Wait()
			for _, id := range ids {
				if view := waitTerminal(t, ts, id); view.Status != StatusDone {
					t.Fatalf("job %s finished %s", id, view.Status)
				}
				// Reading traces concurrently with other jobs still running
				// must be safe and complete.
				if tr := fetchTrace(t, ts.URL+"/v1/jobs/"+id+"/trace"); len(tr.Spans) == 0 {
					t.Fatalf("job %s has an empty trace", id)
				}
			}

			snap := reg.Snapshot()
			if n, ok := snap.Counter("hyfdd_jobs_total", "status", "done"); !ok || n != jobs {
				t.Fatalf("hyfdd_jobs_total{done} = %d ok=%v, want %d", n, ok, jobs)
			}
			for _, span := range []string{"admission", "queue.wait", "run", "encode"} {
				h, ok := snap.Histogram("hyfdd_span_seconds", "span", span)
				if !ok || h.Count != jobs {
					t.Fatalf("hyfdd_span_seconds{span=%q} count %d ok=%v, want %d",
						span, h.Count, ok, jobs)
				}
			}

			// A second snapshot taken with the server idle is identical —
			// scraping is read-only.
			a, _ := json.Marshal(snap)
			b, _ := json.Marshal(reg.Snapshot())
			if string(a) != string(b) {
				t.Fatalf("idle snapshots differ:\n%s\n%s", a, b)
			}
		})
	}
}
