// Package trace defines the observability layer of the discovery engine:
// a pluggable Observer that receives typed events as a run progresses.
// HyFD's orchestrator emits one event per preprocessing step, sampling
// round, phase switch, validation level, Guardian intervention, and run
// completion, so callers can render progress, collect per-phase timings, or
// feed dashboards without touching engine internals.
//
// Observers are invoked synchronously from the engine's coordinating
// goroutine, in run order — never concurrently. An observer must therefore
// return quickly; expensive sinks should hand events off to their own
// goroutine. A nil Observer is always valid and costs one branch per event.
//
// The internal/metrics package builds on this layer: its EngineMetrics
// bridges the event stream into hyfd_* counter/gauge/histogram families,
// so Prometheus exposition and JSON snapshots are fed from the same events
// as any user observer. The internal/tracing package bridges the same
// stream into per-job flight-recorder spans for the hyfdd serving path.
package trace

import (
	"sync"
	"time"
)

// Phase identifies one of the engine's alternating phases.
type Phase int

// The engine's phases in the order a run visits them.
const (
	// PhaseSampling is Phase 1: focused sampling + FD induction.
	PhaseSampling Phase = iota
	// PhaseValidation is Phase 2: level-wise candidate validation.
	PhaseValidation
)

// String returns the phase's display name.
func (p Phase) String() string {
	switch p {
	case PhaseSampling:
		return "sampling"
	case PhaseValidation:
		return "validation"
	default:
		return "unknown"
	}
}

// Event is the common interface of all trace events. The concrete types
// below form the complete event vocabulary; observers type-switch on them.
type Event interface{ event() }

// IngestDone reports that a relation was parsed from external input (CSV).
// Ingest happens before the engine runs, so this event is emitted by the
// loading layer (e.g. cmd/hyfd) rather than the orchestrator; it shares the
// observer vocabulary so progress rendering and metrics cover the full
// pipeline from bytes to FDs.
type IngestDone struct {
	Rows, Cols int
	// Threads is the parser worker count the ingest ran with.
	Threads int
	// Duration is the ingest wall-clock time.
	Duration time.Duration
}

// PLIBuilt reports the construction of one attribute's PLI during
// preprocessing. The orchestrator emits one event per attribute, in
// attribute order, after the (possibly parallel) build completes.
type PLIBuilt struct {
	// Attr is the attribute index.
	Attr int
	// Clusters is the attribute's distinct-value count (including stripped
	// singletons).
	Clusters int
	// Duration is the attribute's build wall-clock time.
	Duration time.Duration
}

// PreprocessingDone reports that PLIs and compressed records were built —
// or, for a warm run, that a previously prepared Dataset was reused.
type PreprocessingDone struct {
	Rows, Cols int
	// Threads is the worker count preprocessing ran with.
	Threads int
	// Duration is the preprocessing wall-clock time. Warm runs report the
	// (near-zero) reuse overhead, not the original build cost.
	Duration time.Duration
	// Warm is true when the run reused an already-prepared Dataset instead
	// of building PLIs itself.
	Warm bool
}

// SamplingRound reports one completed Sampler invocation (Phase 1).
type SamplingRound struct {
	// Round counts sampling rounds from 1.
	Round int
	// NewObservations is the number of FD-violations first seen this round.
	NewObservations int
	// Comparisons is the cumulative record-pair comparison count.
	Comparisons int64
	// Windows is the cumulative cluster-window run count (the sampler's
	// unit of work; each window run compares every record pair at one
	// window distance within one cluster).
	Windows int64
	// Threshold is the efficiency threshold the round stopped at (it halves
	// on every re-entry into Phase 1).
	Threshold float64
	// Duration is the round's wall-clock time including induction.
	Duration time.Duration
}

// PhaseSwitch reports a hand-over between the two phases.
type PhaseSwitch struct {
	From, To Phase
	// Switches counts Phase 2 → Phase 1 returns so far.
	Switches int
}

// ValidationLevel reports one validated FDTree level (Phase 2).
type ValidationLevel struct {
	// Level is the LHS cardinality of the validated candidates.
	Level int
	// Candidates is the number of FD candidates checked on this level.
	Candidates int
	// Valid and Invalid partition the checked candidates.
	Valid, Invalid int
	// Suggestions is the number of violating record pairs this level
	// collected for Phase 1 — the quantity that decides a switch back.
	Suggestions int
	// Duration is the level's wall-clock time.
	Duration time.Duration
}

// GuardianPrune reports a memory-Guardian intervention: the result tree
// exceeded its budget and the maximum LHS size was lowered.
type GuardianPrune struct {
	// MaxLhs is the new LHS bound after pruning.
	MaxLhs int
	// Interventions counts Guardian interventions so far.
	Interventions int
	// FootprintBytes is the result tree's approximate footprint after the
	// prune.
	FootprintBytes int64
}

// RankedResult reports one FD of a ranked (top-k) run the moment its final
// position in the ranking becomes stable — the any-time result stream.
// Events arrive in rank order (1, 2, ...) and a rank, once reported, never
// changes; consumers may render results incrementally while the run is
// still refining lower ranks. The attribute indices are plain ints so
// observers need no dependency on the engine's set types.
type RankedResult struct {
	// Rank is the FD's final 1-based position in the ranked order.
	Rank int
	// Score is the FD's redundancy score (see internal/rank).
	Score float64
	// Lhs holds the determinant attribute indices in ascending order.
	Lhs []int
	// Rhs is the dependent attribute index.
	Rhs int
	// Duration is the elapsed run time when the rank stabilized.
	Duration time.Duration
}

// Done reports run completion. It is the final event of every successful
// run; canceled runs end without it.
type Done struct {
	// FDs is the number of minimal FDs discovered.
	FDs int
	// Duration is the total wall-clock time of the run.
	Duration time.Duration
}

// DeltaApplied reports one Dataset.Apply: the snapshot chain advanced by one
// version. SharedAttrs counts attributes whose cluster lists are structurally
// shared with the parent snapshot (deletes force a full rebuild, so it is
// zero whenever Deletes > 0).
type DeltaApplied struct {
	// Version is the new snapshot's version.
	Version int
	// Inserts and Deletes count the delta's rows.
	Inserts int
	Deletes int
	// Rows is the new snapshot's row count.
	Rows int
	// SharedAttrs counts cluster lists shared with the parent.
	SharedAttrs int
	// Duration is the wall-clock time Apply took.
	Duration time.Duration
}

// IncrementalCandidates reports the breakable-candidate derivation of an
// incremental maintenance run: how much of the base cover the delta could
// actually affect.
type IncrementalCandidates struct {
	// BaseFDs is the size of the maintained base cover.
	BaseFDs int
	// Breakable counts base FDs an inserted record could have invalidated
	// (the insert's compressed record is non-singleton on the whole LHS).
	Breakable int
	// DeleteSeeds counts the distinct top candidates seeded from deleted
	// records' touched attribute sets for re-generalization.
	DeleteSeeds int
}

// IncrementalDone reports completion of an incremental maintenance run.
type IncrementalDone struct {
	// FDs is the size of the maintained minimal cover.
	FDs int
	// Checks counts direct-refinement validations performed — the work a
	// full re-run would have multiplied many times over.
	Checks int
	// Specialized counts candidates added while descending from broken FDs.
	Specialized int
	// Generalized counts FDs added by delete-driven re-generalization.
	Generalized int
	// Duration is the total wall-clock time of the maintenance run.
	Duration time.Duration
}

func (IngestDone) event()            {}
func (PLIBuilt) event()              {}
func (PreprocessingDone) event()     {}
func (SamplingRound) event()         {}
func (PhaseSwitch) event()           {}
func (ValidationLevel) event()       {}
func (GuardianPrune) event()         {}
func (RankedResult) event()          {}
func (Done) event()                  {}
func (DeltaApplied) event()          {}
func (IncrementalCandidates) event() {}
func (IncrementalDone) event()       {}

// Observer receives trace events during a discovery run.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a plain function to the Observer interface.
type ObserverFunc func(Event)

// Observe implements Observer.
func (f ObserverFunc) Observe(e Event) { f(e) }

// Emit delivers e to o; a nil o is a no-op. Engine code always emits
// through this helper so unobserved runs pay only a nil check.
func Emit(o Observer, e Event) {
	if o != nil {
		o.Observe(e)
	}
}

// Multi fans every event out to all given observers in order; nil entries
// are skipped. Multi(nil...) and Multi() return a nil Observer.
func Multi(os ...Observer) Observer {
	flat := make([]Observer, 0, len(os))
	for _, o := range os {
		if o != nil {
			flat = append(flat, o)
		}
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	}
	return multi(flat)
}

type multi []Observer

func (m multi) Observe(e Event) {
	for _, o := range m {
		o.Observe(e)
	}
}

// Collector is an Observer that records every event it sees, in order. It
// is safe for concurrent use and mainly serves tests and post-run
// reporting.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Observe implements Observer.
func (c *Collector) Observe(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of the recorded events in arrival order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Len returns the number of recorded events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}
