package trace

import (
	"sync"
	"testing"
)

func TestEmitNilObserver(t *testing.T) {
	Emit(nil, Done{FDs: 1}) // must not panic
}

func TestObserverFunc(t *testing.T) {
	var got []Event
	o := ObserverFunc(func(e Event) { got = append(got, e) })
	Emit(o, PreprocessingDone{Rows: 3, Cols: 2})
	Emit(o, Done{FDs: 5})
	if len(got) != 2 {
		t.Fatalf("got %d events", len(got))
	}
	if d, ok := got[1].(Done); !ok || d.FDs != 5 {
		t.Fatalf("second event = %#v", got[1])
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("empty Multi should be nil")
	}
	a, b := &Collector{}, &Collector{}
	if Multi(a, nil) != Observer(a) {
		t.Fatal("single-observer Multi should unwrap")
	}
	m := Multi(a, nil, b)
	m.Observe(PhaseSwitch{From: PhaseValidation, To: PhaseSampling, Switches: 1})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out failed: a=%d b=%d", a.Len(), b.Len())
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := &Collector{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Observe(SamplingRound{Round: j})
			}
		}()
	}
	wg.Wait()
	if c.Len() != 800 {
		t.Fatalf("Len = %d", c.Len())
	}
	if len(c.Events()) != 800 {
		t.Fatalf("Events = %d", len(c.Events()))
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseSampling.String() != "sampling" || PhaseValidation.String() != "validation" {
		t.Fatal("phase names wrong")
	}
	if Phase(9).String() != "unknown" {
		t.Fatal("unknown phase name wrong")
	}
}
