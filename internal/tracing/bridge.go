package tracing

import (
	"hyfd/internal/trace"
)

// Observer bridges the engine's trace.Observer event vocabulary into this
// recorder: each event that carries a duration becomes a completed span
// ending at its arrival time (engine events report their timing only on
// completion), and point events become instant markers. All spans are
// parented under parent — typically the job's "run" span — so the
// discovery phases land in the same timeline as the server stages.
//
// A nil Recorder returns a nil Observer, which trace.Emit and trace.Multi
// both treat as "unobserved": the untraced path costs nothing.
func (r *Recorder) Observer(parent SpanID) trace.Observer {
	if r == nil {
		return nil
	}
	return &bridge{rec: r, parent: parent}
}

// bridge adapts one recorder to the trace.Observer interface. Observers are
// invoked synchronously from the engine's coordinating goroutine, so the
// per-event work stays minimal: one ring insertion.
type bridge struct {
	rec    *Recorder
	parent SpanID
}

// Span names of the bridged engine events. The server stages use
// "admission", "queue.wait", "run", and "encode"; together these form the
// serving path's complete span vocabulary (DESIGN.md §2g).
const (
	SpanIngest          = "ingest"
	SpanPrepare         = "prepare"
	SpanPreparePLI      = "prepare.pli"
	SpanSamplingRound   = "sampling.round"
	SpanValidationLevel = "validation.level"
	SpanPhaseSwitch     = "phase.switch"
	SpanGuardianPrune   = "guardian.prune"
	SpanRankedResult    = "ranked.result"
	SpanEngineDone      = "engine.done"
	SpanDeltaApply      = "delta.apply"
	SpanIncrCandidates  = "incremental.candidates"
	SpanIncrDone        = "incremental.done"
)

// Observe implements trace.Observer.
func (b *bridge) Observe(e trace.Event) {
	switch ev := e.(type) {
	case trace.IngestDone:
		b.rec.Completed(SpanIngest, b.parent, ev.Duration,
			Int("rows", ev.Rows), Int("cols", ev.Cols), Int("threads", ev.Threads))
	case trace.PLIBuilt:
		b.rec.Completed(SpanPreparePLI, b.parent, ev.Duration,
			Int("attr", ev.Attr), Int("clusters", ev.Clusters))
	case trace.PreprocessingDone:
		b.rec.Completed(SpanPrepare, b.parent, ev.Duration,
			Int("rows", ev.Rows), Int("cols", ev.Cols),
			Int("threads", ev.Threads), Bool("warm", ev.Warm))
	case trace.SamplingRound:
		b.rec.Completed(SpanSamplingRound, b.parent, ev.Duration,
			Int("round", ev.Round),
			Int("new_observations", ev.NewObservations),
			Int64("comparisons", ev.Comparisons),
			Int64("windows", ev.Windows),
			Float("threshold", ev.Threshold))
	case trace.PhaseSwitch:
		b.rec.Instant(SpanPhaseSwitch, b.parent,
			String("from", ev.From.String()), String("to", ev.To.String()),
			Int("switches", ev.Switches))
	case trace.ValidationLevel:
		b.rec.Completed(SpanValidationLevel, b.parent, ev.Duration,
			Int("level", ev.Level), Int("candidates", ev.Candidates),
			Int("valid", ev.Valid), Int("invalid", ev.Invalid),
			Int("suggestions", ev.Suggestions))
	case trace.GuardianPrune:
		b.rec.Instant(SpanGuardianPrune, b.parent,
			Int("max_lhs", ev.MaxLhs), Int("interventions", ev.Interventions),
			Int64("footprint_bytes", ev.FootprintBytes))
	case trace.RankedResult:
		b.rec.Instant(SpanRankedResult, b.parent,
			Int("rank", ev.Rank), Float("score", ev.Score), Int("rhs", ev.Rhs))
	case trace.Done:
		b.rec.Instant(SpanEngineDone, b.parent, Int("fds", ev.FDs))
	case trace.DeltaApplied:
		b.rec.Completed(SpanDeltaApply, b.parent, ev.Duration,
			Int("version", ev.Version), Int("inserts", ev.Inserts),
			Int("deletes", ev.Deletes), Int("rows", ev.Rows),
			Int("shared_attrs", ev.SharedAttrs))
	case trace.IncrementalCandidates:
		b.rec.Instant(SpanIncrCandidates, b.parent,
			Int("base_fds", ev.BaseFDs), Int("breakable", ev.Breakable),
			Int("delete_seeds", ev.DeleteSeeds))
	case trace.IncrementalDone:
		b.rec.Completed(SpanIncrDone, b.parent, ev.Duration,
			Int("fds", ev.FDs), Int("checks", ev.Checks),
			Int("specialized", ev.Specialized),
			Int("generalized", ev.Generalized))
	}
}
