package tracing

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format's JSON-object
// flavor (the subset Perfetto and chrome://tracing both load): complete
// spans are "X" events with microsecond timestamps and durations, point
// markers are thread-scoped "i" instants.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds from the trace epoch
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"` // instant scope ("t" = thread)
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the enclosing document.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeCategory tags every exported event; Perfetto surfaces it as the
// event category.
const chromeCategory = "hyfdd"

// WriteChrome renders the trace in Chrome trace-event format, which loads
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing. Spans become
// "X" (complete) events on one thread lane — nesting is reconstructed from
// time containment — and zero-duration spans become thread-scoped "i"
// instants. Open spans are exported with their duration so far.
func (t *Trace) WriteChrome(w io.Writer) error {
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	if t != nil {
		doc.TraceEvents = make([]chromeEvent, 0, len(t.Spans))
		for _, sp := range t.Spans {
			ev := chromeEvent{
				Name: sp.Name,
				Cat:  chromeCategory,
				Ts:   float64(sp.StartNs) / 1e3,
				Pid:  1,
				Tid:  1,
				Args: sp.Attrs,
			}
			if sp.DurNs == 0 && !sp.Open {
				ev.Ph = "i"
				ev.S = "t"
			} else {
				ev.Ph = "X"
				ev.Dur = float64(sp.DurNs) / 1e3
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
