package tracing

import (
	"sort"
	"sync"
)

// SlowJob is one entry of the daemon-wide slowest-jobs ring: the job's
// identity, outcome, and latency split. The trace itself is not embedded —
// while the job is retained by the store its full timeline stays available
// under /v1/jobs/{id}/trace.
type SlowJob struct {
	ID      string  `json:"id"`
	Dataset string  `json:"dataset"`
	Mode    string  `json:"mode"`
	Status  string  `json:"status"`
	QueueMs float64 `json:"queue_ms"`
	RunMs   float64 `json:"run_ms"`
	TotalMs float64 `json:"total_ms"`
	// FinishedUnixMs is stamped by the caller (the tracing package itself
	// never reads the wall clock outside the recorder epoch).
	FinishedUnixMs int64 `json:"finished_unix_ms"`
}

// SlowJobs keeps the K slowest recently finished jobs, ordered slowest
// first. Note is O(K) under one mutex — called once per finished job, never
// on a hot path. All methods are nil-receiver safe.
type SlowJobs struct {
	mu   sync.Mutex
	k    int
	jobs []SlowJob
}

// DefaultSlowJobs is the ring size used when NewSlowJobs is given k <= 0.
const DefaultSlowJobs = 16

// NewSlowJobs builds a ring keeping the k slowest jobs (<= 0 selects
// DefaultSlowJobs).
func NewSlowJobs(k int) *SlowJobs {
	if k <= 0 {
		k = DefaultSlowJobs
	}
	return &SlowJobs{k: k}
}

// Note offers one finished job to the ring: it is kept if the ring has room
// or the job is slower than the current fastest entry. Ties prefer the
// newer job (later FinishedUnixMs), keeping the ring "recent" under
// steady-state load.
func (s *SlowJobs) Note(j SlowJob) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs = append(s.jobs, j)
	sort.SliceStable(s.jobs, func(i, k int) bool {
		if s.jobs[i].TotalMs != s.jobs[k].TotalMs {
			return s.jobs[i].TotalMs > s.jobs[k].TotalMs
		}
		return s.jobs[i].FinishedUnixMs > s.jobs[k].FinishedUnixMs
	})
	if len(s.jobs) > s.k {
		s.jobs = s.jobs[:s.k]
	}
}

// Snapshot returns the current ring, slowest first. A nil ring snapshots to
// an empty slice.
func (s *SlowJobs) Snapshot() []SlowJob {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SlowJob(nil), s.jobs...)
}
