// Package tracing is the serving path's span layer: per-job flight
// recorders that capture a bounded timeline of everything a request went
// through — admission, queue wait, the engine's sampling/validation phases,
// result encoding — as a tree of spans with monotonic durations.
//
// The package is stdlib-only and deliberately small:
//
//   - a Recorder is one job's flight recorder: a bounded ring buffer of
//     completed spans plus the handful still open. When the ring is full the
//     oldest completed span is dropped (and counted), so a runaway job can
//     never grow its trace without bound;
//   - spans carry parent links, ordered string attributes, and offsets from
//     the recorder's epoch measured on the monotonic clock;
//   - Snapshot renders the recorder as a Trace, the JSON document behind
//     GET /v1/jobs/{id}/trace; Trace.WriteChrome re-renders it in Chrome
//     trace-event format so a job timeline opens directly in Perfetto
//     (https://ui.perfetto.dev) or chrome://tracing;
//   - Recorder.Observer bridges the engine's trace.Observer event
//     vocabulary into spans, so the discovery phases appear in the same
//     timeline as the server stages without touching engine internals.
//
// Every method is nil-receiver safe: a nil *Recorder records nothing and a
// SpanID of 0 means "no span", so the untraced serving path pays only nil
// checks. Clock reads are confined to New and Recorder.now — they are
// telemetry only and carry audited hyfdvet determinism suppressions; span
// content never feeds back into discovery results.
package tracing

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// SpanID identifies one span within its Recorder; 0 is "no span" and is
// always safe to pass as a parent or to End.
type SpanID int64

// Attr is one key/value annotation on a span. Values are strings so traces
// serialize identically everywhere; use the typed constructors below.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: strconv.Itoa(value)} }

// Int64 builds a 64-bit integer attribute.
func Int64(key string, value int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(value, 10)}
}

// Float builds a float attribute (shortest round-trip formatting).
func Float(key string, value float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(value, 'g', -1, 64)}
}

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: strconv.FormatBool(value)} }

// SpanView is one span as exposed by Snapshot: offsets are nanoseconds from
// the recorder's epoch, measured on the monotonic clock. A span with Open
// set is still in flight; its DurNs is the duration so far.
type SpanView struct {
	ID      int64             `json:"id"`
	Parent  int64             `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartNs int64             `json:"start_ns"`
	DurNs   int64             `json:"dur_ns"`
	Open    bool              `json:"open,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Trace is the JSON document of one flight recorder: the span timeline plus
// the ring-buffer accounting that tells a consumer whether anything was
// shed. Spans are sorted by start offset, then ID.
type Trace struct {
	// CreatedUnixMs is the recorder's epoch on the wall clock; span offsets
	// are relative to it.
	CreatedUnixMs int64 `json:"created_unix_ms"`
	// Capacity is the ring bound; Dropped counts completed spans the ring
	// had to shed (oldest first) once it filled.
	Capacity int        `json:"capacity"`
	Dropped  int64      `json:"dropped,omitempty"`
	Spans    []SpanView `json:"spans"`
}

// Recorder is one flight recorder: a bounded ring of completed spans plus
// the open ones. All methods are safe for concurrent use and safe on a nil
// receiver (a nil Recorder records nothing).
type Recorder struct {
	mu      sync.Mutex
	epoch   time.Time // monotonic base for every span offset
	unixMs  int64     // wall-clock epoch for export
	cap     int
	nextID  int64
	open    map[SpanID]*SpanView
	closed  []SpanView // ring: insertion order, oldest at head once full
	head    int
	dropped int64
}

// DefaultCapacity is the span-ring bound used when New is given cap <= 0.
const DefaultCapacity = 256

// New builds a Recorder whose ring holds up to capacity completed spans
// (<= 0 selects DefaultCapacity).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	//hyfdvet:allow determinism — recorder epoch is telemetry only; span content never feeds back into results
	epoch := time.Now()
	return &Recorder{
		epoch:  epoch,
		unixMs: epoch.UnixMilli(),
		cap:    capacity,
		open:   make(map[SpanID]*SpanView),
	}
}

// now is the package's single monotonic clock read: the offset from the
// recorder's epoch. Callers hold r.mu or don't need to (Duration is a
// value).
func (r *Recorder) now() time.Duration {
	//hyfdvet:allow determinism — span timestamps are telemetry only; they never influence discovery output
	return time.Since(r.epoch)
}

// Start opens a span under parent (0 = root) and returns its ID. On a nil
// Recorder it returns 0, which every other method accepts as a no-op.
func (r *Recorder) Start(name string, parent SpanID, attrs ...Attr) SpanID {
	if r == nil {
		return 0
	}
	now := r.now().Nanoseconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	id := SpanID(r.nextID)
	r.open[id] = &SpanView{
		ID:      int64(id),
		Parent:  int64(parent),
		Name:    name,
		StartNs: now,
		Attrs:   attrMap(nil, attrs),
	}
	return id
}

// End closes the span, merging any extra attributes, and moves it into the
// completed ring. Ending an unknown (or 0) span is a no-op, so a span can
// safely be ended at most once from racing paths.
func (r *Recorder) End(id SpanID, attrs ...Attr) {
	if r == nil || id == 0 {
		return
	}
	now := r.now().Nanoseconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	sp := r.open[id]
	if sp == nil {
		return
	}
	delete(r.open, id)
	sp.DurNs = now - sp.StartNs
	sp.Attrs = attrMap(sp.Attrs, attrs)
	r.push(*sp)
}

// Completed records a span of a known duration that ends now — the shape of
// every engine event, which reports its timing only on completion. A span
// whose duration exceeds the recorder's age starts at a negative offset:
// the work genuinely began before the recorder existed, and preserving the
// duration matters more than a non-negative timeline.
func (r *Recorder) Completed(name string, parent SpanID, d time.Duration, attrs ...Attr) {
	if r == nil {
		return
	}
	end := r.now().Nanoseconds()
	start := end - d.Nanoseconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	r.push(SpanView{
		ID:      r.nextID,
		Parent:  int64(parent),
		Name:    name,
		StartNs: start,
		DurNs:   end - start,
		Attrs:   attrMap(nil, attrs),
	})
}

// Instant records a zero-duration marker span — phase switches, guardian
// interventions, and similar point events.
func (r *Recorder) Instant(name string, parent SpanID, attrs ...Attr) {
	if r == nil {
		return
	}
	now := r.now().Nanoseconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	r.push(SpanView{
		ID:      r.nextID,
		Parent:  int64(parent),
		Name:    name,
		StartNs: now,
		Attrs:   attrMap(nil, attrs),
	})
}

// push appends one completed span to the ring, shedding the oldest entry
// once the ring is full. Callers hold r.mu.
func (r *Recorder) push(sp SpanView) {
	if len(r.closed) < r.cap {
		r.closed = append(r.closed, sp)
		return
	}
	r.closed[r.head] = sp
	r.head = (r.head + 1) % r.cap
	r.dropped++
}

// Snapshot renders the recorder's current state. Open spans appear with
// Open set and their duration so far; the result is sorted by start offset,
// then ID. A nil Recorder snapshots to nil.
func (r *Recorder) Snapshot() *Trace {
	if r == nil {
		return nil
	}
	now := r.now().Nanoseconds()
	r.mu.Lock()
	spans := make([]SpanView, 0, len(r.closed)+len(r.open))
	spans = append(spans, r.closed...)
	for _, sp := range r.open {
		view := *sp
		view.Open = true
		view.DurNs = now - view.StartNs
		if len(sp.Attrs) > 0 {
			m := make(map[string]string, len(sp.Attrs))
			for k, v := range sp.Attrs {
				m[k] = v
			}
			view.Attrs = m
		}
		spans = append(spans, view)
	}
	t := &Trace{
		CreatedUnixMs: r.unixMs,
		Capacity:      r.cap,
		Dropped:       r.dropped,
	}
	r.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartNs != spans[j].StartNs {
			return spans[i].StartNs < spans[j].StartNs
		}
		return spans[i].ID < spans[j].ID
	})
	t.Spans = spans
	return t
}

// Dropped reports how many completed spans the ring has shed so far.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// attrMap merges attrs into base (which may be nil), allocating only when
// there is something to store.
func attrMap(base map[string]string, attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return base
	}
	if base == nil {
		base = make(map[string]string, len(attrs))
	}
	for _, a := range attrs {
		base[a.Key] = a.Value
	}
	return base
}
