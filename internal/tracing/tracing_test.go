package tracing

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"hyfd/internal/trace"
)

// TestNilSafety: every method of a nil Recorder (and of derived nil values)
// must be a no-op — the untraced serving path calls them unconditionally.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	id := r.Start("x", 0, String("k", "v"))
	if id != 0 {
		t.Fatalf("nil Start returned %d, want 0", id)
	}
	r.End(id)
	r.Completed("y", 0, time.Second)
	r.Instant("z", 0)
	if r.Snapshot() != nil {
		t.Fatal("nil Snapshot must be nil")
	}
	if r.Dropped() != 0 {
		t.Fatal("nil Dropped must be 0")
	}
	if r.Observer(0) != nil {
		t.Fatal("nil Recorder must bridge to a nil Observer")
	}

	var s *SlowJobs
	s.Note(SlowJob{ID: "j-1"})
	if s.Snapshot() != nil {
		t.Fatal("nil SlowJobs snapshot must be nil")
	}

	var tr *Trace
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("nil WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil || doc.TraceEvents == nil || len(doc.TraceEvents) != 0 {
		t.Fatalf("nil trace must render an empty traceEvents array: %s (err %v)", buf.Bytes(), err)
	}
}

// TestSpanTree: parent links, attributes, and start-order sorting of a
// snapshot, with open spans marked as such.
func TestSpanTree(t *testing.T) {
	r := New(0)
	root := r.Start("job", 0, String("dataset", "t"))
	child := r.Start("run", root)
	r.Completed("engine", child, time.Millisecond, Int("round", 1))
	r.End(child, Int64("n", 42))

	snap := r.Snapshot()
	if snap.Capacity != DefaultCapacity {
		t.Fatalf("capacity %d, want %d", snap.Capacity, DefaultCapacity)
	}
	byName := map[string]SpanView{}
	for _, sp := range snap.Spans {
		byName[sp.Name] = sp
	}
	if len(byName) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(byName), snap.Spans)
	}
	if byName["run"].Parent != byName["job"].ID {
		t.Fatal("run span must be parented under job")
	}
	if byName["engine"].Parent != byName["run"].ID {
		t.Fatal("engine span must be parented under run")
	}
	if !byName["job"].Open {
		t.Fatal("job span is still open")
	}
	if byName["run"].Open || byName["engine"].Open {
		t.Fatal("closed spans must not be open")
	}
	if byName["job"].Attrs["dataset"] != "t" || byName["run"].Attrs["n"] != "42" ||
		byName["engine"].Attrs["round"] != "1" {
		t.Fatalf("attributes lost: %+v", byName)
	}
	for i := 1; i < len(snap.Spans); i++ {
		a, b := snap.Spans[i-1], snap.Spans[i]
		if a.StartNs > b.StartNs || (a.StartNs == b.StartNs && a.ID > b.ID) {
			t.Fatalf("snapshot not sorted at %d: %+v", i, snap.Spans)
		}
	}

	// Ending twice (or ending an unknown id) is a no-op.
	r.End(child)
	r.End(SpanID(999))
	if n := len(r.Snapshot().Spans); n != 3 {
		t.Fatalf("idempotent End grew the trace to %d spans", n)
	}
}

// TestRingBound: the completed-span ring sheds oldest-first and counts what
// it dropped.
func TestRingBound(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Instant("s", 0, Int("i", i))
	}
	snap := r.Snapshot()
	if len(snap.Spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(snap.Spans))
	}
	if snap.Dropped != 6 || r.Dropped() != 6 {
		t.Fatalf("dropped = %d/%d, want 6", snap.Dropped, r.Dropped())
	}
	// The survivors are the newest four.
	for _, sp := range snap.Spans {
		if sp.Attrs["i"] < "6" {
			t.Fatalf("old span survived the ring: %+v", sp)
		}
	}
}

// TestCompletedPredatesEpoch: a Completed span whose duration exceeds the
// recorder's age keeps its full duration and starts at a negative offset —
// the work began before the recorder existed.
func TestCompletedPredatesEpoch(t *testing.T) {
	r := New(0)
	r.Completed("warm", 0, time.Hour)
	sp := r.Snapshot().Spans[0]
	if sp.StartNs >= 0 {
		t.Fatalf("start %d, want negative (work predates the epoch)", sp.StartNs)
	}
	if sp.DurNs != time.Hour.Nanoseconds() {
		t.Fatalf("duration %d, want the full hour", sp.DurNs)
	}
}

// TestConcurrentRecorder: concurrent span traffic and snapshots must be
// race-free (run under -race).
func TestConcurrentRecorder(t *testing.T) {
	r := New(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := r.Start("s", 0)
				r.Instant("i", id)
				r.End(id)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if n := len(r.Snapshot().Spans); n == 0 {
		t.Fatal("no spans recorded")
	}
}

// TestWriteChrome: the Chrome trace-event rendering carries "X" complete
// events with microsecond units and thread-scoped "i" instants.
func TestWriteChrome(t *testing.T) {
	r := New(0)
	r.Completed("stage", 0, 2*time.Millisecond, String("k", "v"))
	r.Instant("marker", 0)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			S    string            `json:"s"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not JSON: %v\n%s", err, buf.Bytes())
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) != 2 {
		t.Fatalf("document shape: %+v", doc)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Pid != 1 || ev.Tid != 1 || ev.Cat != "hyfdd" {
			t.Fatalf("event ids/category: %+v", ev)
		}
		switch ev.Name {
		case "stage":
			if ev.Ph != "X" || ev.Dur < 1900 || ev.Dur > 2100 || ev.Args["k"] != "v" {
				t.Fatalf("complete event: %+v", ev)
			}
		case "marker":
			if ev.Ph != "i" || ev.S != "t" {
				t.Fatalf("instant event: %+v", ev)
			}
		default:
			t.Fatalf("unexpected event %q", ev.Name)
		}
	}
}

// TestBridge: every engine event type lands as the right span with the
// right attributes, parented under the given span.
func TestBridge(t *testing.T) {
	r := New(0)
	parent := r.Start("run", 0)
	obs := r.Observer(parent)
	events := []trace.Event{
		trace.IngestDone{Rows: 10, Cols: 3, Threads: 2, Duration: time.Millisecond},
		trace.PLIBuilt{Attr: 1, Clusters: 4, Duration: time.Microsecond},
		trace.PreprocessingDone{Rows: 10, Cols: 3, Threads: 2, Warm: true, Duration: time.Microsecond},
		trace.SamplingRound{Round: 1, NewObservations: 5, Comparisons: 100, Windows: 7, Threshold: 0.01, Duration: time.Millisecond},
		trace.PhaseSwitch{From: trace.PhaseSampling, To: trace.PhaseValidation, Switches: 0},
		trace.ValidationLevel{Level: 2, Candidates: 9, Valid: 8, Invalid: 1, Suggestions: 3, Duration: time.Millisecond},
		trace.GuardianPrune{MaxLhs: 3, Interventions: 1, FootprintBytes: 4096},
		trace.Done{FDs: 42, Duration: time.Millisecond},
	}
	for _, e := range events {
		obs.Observe(e)
	}
	want := map[string]map[string]string{
		SpanIngest:          {"rows": "10", "cols": "3", "threads": "2"},
		SpanPreparePLI:      {"attr": "1", "clusters": "4"},
		SpanPrepare:         {"rows": "10", "warm": "true"},
		SpanSamplingRound:   {"round": "1", "new_observations": "5", "comparisons": "100", "windows": "7", "threshold": "0.01"},
		SpanPhaseSwitch:     {"from": "sampling", "to": "validation"},
		SpanValidationLevel: {"level": "2", "candidates": "9", "valid": "8", "invalid": "1", "suggestions": "3"},
		SpanGuardianPrune:   {"max_lhs": "3", "interventions": "1", "footprint_bytes": "4096"},
		SpanEngineDone:      {"fds": "42"},
	}
	snap := r.Snapshot()
	got := map[string]SpanView{}
	for _, sp := range snap.Spans {
		got[sp.Name] = sp
	}
	for name, attrs := range want {
		sp, ok := got[name]
		if !ok {
			t.Fatalf("event %s produced no span; have %+v", name, snap.Spans)
		}
		if sp.Parent != int64(parent) {
			t.Fatalf("%s parented under %d, want %d", name, sp.Parent, parent)
		}
		for k, v := range attrs {
			if sp.Attrs[k] != v {
				t.Fatalf("%s attr %s = %q, want %q", name, k, sp.Attrs[k], v)
			}
		}
	}
}

// TestSlowJobs: the ring keeps the K slowest, ordered slowest first, with
// ties resolved toward the newer job.
func TestSlowJobs(t *testing.T) {
	s := NewSlowJobs(3)
	for i, total := range []float64{10, 50, 20, 40, 30} {
		s.Note(SlowJob{ID: "j", TotalMs: total, FinishedUnixMs: int64(i)})
	}
	got := s.Snapshot()
	if len(got) != 3 {
		t.Fatalf("ring holds %d, want 3", len(got))
	}
	if got[0].TotalMs != 50 || got[1].TotalMs != 40 || got[2].TotalMs != 30 {
		t.Fatalf("ring order: %+v", got)
	}

	ties := NewSlowJobs(2)
	ties.Note(SlowJob{ID: "old", TotalMs: 5, FinishedUnixMs: 1})
	ties.Note(SlowJob{ID: "new", TotalMs: 5, FinishedUnixMs: 2})
	if got := ties.Snapshot(); got[0].ID != "new" {
		t.Fatalf("tie must prefer the newer job: %+v", got)
	}

	if NewSlowJobs(0).k != DefaultSlowJobs {
		t.Fatal("k <= 0 must select the default ring size")
	}
}
