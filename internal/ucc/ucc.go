// Package ucc discovers unique column combinations (UCCs): attribute sets
// whose value combinations identify records uniquely, i.e. candidate keys
// of the instance. UCC discovery is the sister problem of FD discovery —
// the HyFD authors' companion system HyUCC transfers the same hybrid
// architecture — and keys are what the paper's normalization use case (§1)
// ultimately needs. This implementation reuses the repository's PLI
// substrate: X is unique iff the stripped partition π_X has no clusters.
//
// Two discovery strategies are provided: a bottom-up lattice search with
// partition caching, and a HyFD-flavored hybrid that first derives
// candidate uniques from sampled agree sets (any UCC must hit every
// agree-set complement) and then validates them against the PLIs.
package ucc

import (
	"context"
	"fmt"
	"sort"

	"hyfd/internal/algorithms/hitset"
	"hyfd/internal/bitset"
	"hyfd/internal/dataset"
	"hyfd/internal/pli"
	"hyfd/internal/relation"
)

// Discover returns all minimal unique column combinations of the relation,
// in canonical order (ascending cardinality, then lexicographic). maxSize
// bounds the combination size (0 = unbounded).
func Discover(rel *relation.Relation, ns relation.NullSemantics, maxSize int) ([]bitset.Set, error) {
	//hyfdvet:allow ctxflow — no-context compat shim; DiscoverDataset is the prepared-path variant
	ds, err := dataset.Prepare(context.Background(), rel, dataset.Options{
		NullSemantics: ns,
		Threads:       1,
	})
	if err != nil {
		return nil, err
	}
	return DiscoverDataset(ds, maxSize)
}

// DiscoverDataset is Discover over an already-prepared Dataset (whose null
// semantics apply): the shared PLIs are only read, so concurrent calls over
// one Dataset are race-clean.
func DiscoverDataset(ds *dataset.Dataset, maxSize int) ([]bitset.Set, error) {
	//hyfdvet:allow ctxflow — no-context compat shim; DiscoverDatasetContext is the primary path
	return DiscoverDatasetContext(context.Background(), ds, maxSize)
}

// DiscoverDatasetContext is DiscoverDataset under a caller context.
// Cancellation is checked once per lattice level; a canceled context returns
// an error wrapping ctx.Err() promptly instead of finishing the sweep.
func DiscoverDatasetContext(ctx context.Context, ds *dataset.Dataset, maxSize int) ([]bitset.Set, error) {
	m := ds.NumCols()
	if m == 0 {
		if ds.NumRows() <= 1 {
			return []bitset.Set{bitset.New(0)}, nil
		}
		return nil, nil
	}
	if maxSize <= 0 || maxSize > m {
		maxSize = m
	}
	cache := ds.NewCache()

	// The empty set is unique iff there is at most one record.
	if ds.NumRows() <= 1 {
		return []bitset.Set{bitset.New(m)}, nil
	}

	var found []bitset.Set
	dominated := func(x bitset.Set) bool {
		for _, u := range found {
			if u.IsSubsetOf(x) {
				return true
			}
		}
		return false
	}
	type cand struct {
		attrs bitset.Set
		last  int
	}
	level := make([]cand, 0, m)
	for a := 0; a < m; a++ {
		level = append(level, cand{attrs: bitset.FromIndices(m, a), last: a})
	}
	for len(level) > 0 && level[0].attrs.Cardinality() <= maxSize {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("ucc: discovery aborted: %w", err)
		}
		var next []cand
		for _, c := range level {
			if dominated(c.attrs) {
				continue
			}
			if len(cache.Partition(c.attrs).Clusters) == 0 {
				found = append(found, c.attrs)
				continue
			}
			for b := c.last + 1; b < m; b++ {
				next = append(next, cand{attrs: c.attrs.With(b), last: b})
			}
		}
		level = next
	}
	sortUCCs(found)
	return found, nil
}

// DiscoverHybrid finds the same minimal UCCs with a sampling-first
// strategy in the spirit of HyFD/HyUCC: sampled agree sets yield candidate
// uniques as minimal hitting sets of their complements (a UCC must
// separate every sampled record pair); candidates are validated against
// the PLIs, and violating pairs sharpen the sample until a fixpoint.
func DiscoverHybrid(rel *relation.Relation, ns relation.NullSemantics) ([]bitset.Set, error) {
	//hyfdvet:allow ctxflow — no-context compat shim; DiscoverHybridDataset is the prepared-path variant
	ds, err := dataset.Prepare(context.Background(), rel, dataset.Options{
		NullSemantics: ns,
		Threads:       1,
	})
	if err != nil {
		return nil, err
	}
	return DiscoverHybridDataset(ds)
}

// DiscoverHybridDataset is DiscoverHybrid over an already-prepared Dataset
// (whose null semantics apply). Per-run state — the agree-set sample and
// the partition cache — is created fresh here, so concurrent calls over one
// Dataset are race-clean.
func DiscoverHybridDataset(ds *dataset.Dataset) ([]bitset.Set, error) {
	m := ds.NumCols()
	if m == 0 {
		if ds.NumRows() <= 1 {
			return []bitset.Set{bitset.New(0)}, nil
		}
		return nil, nil
	}
	ix := ds.Index()
	if ix.NumRows <= 1 {
		return []bitset.Set{bitset.New(m)}, nil
	}
	cache := ds.NewCache()

	// Sample agree sets: window-1 neighbors inside every PLI cluster.
	seen := make(map[string]struct{})
	var agree []bitset.Set
	observe := func(a, b int32) {
		s := bitset.New(m)
		ra, rb := ix.Records[a], ix.Records[b]
		for attr := 0; attr < m; attr++ {
			if ra[attr] != pli.Singleton && ra[attr] == rb[attr] {
				s.Set(attr)
			}
		}
		if _, dup := seen[s.Key()]; !dup {
			seen[s.Key()] = struct{}{}
			agree = append(agree, s)
		}
	}
	for _, p := range ix.Plis {
		for _, cluster := range p.Clusters {
			for i := 0; i+1 < len(cluster); i++ {
				observe(cluster[i], cluster[i+1])
			}
		}
	}

	// Iterate: candidates = minimal transversals of the agree-set
	// complements; validate; feed violating pairs back as new agree sets.
	for {
		complements := make([]bitset.Set, len(agree))
		for i, s := range agree {
			complements[i] = s.Flip()
		}
		candidates := hitset.MinimalTransversals(m, complements, -1)
		var confirmed []bitset.Set
		progress := false
		for _, c := range candidates {
			part := cache.Partition(c)
			if len(part.Clusters) == 0 {
				confirmed = append(confirmed, c)
				continue
			}
			// Violated: the first cluster provides a new record pair.
			observe(part.Clusters[0][0], part.Clusters[0][1])
			progress = true
		}
		if !progress {
			sortUCCs(confirmed)
			return confirmed, nil
		}
	}
}

func sortUCCs(uccs []bitset.Set) {
	sort.Slice(uccs, func(i, j int) bool {
		ci, cj := uccs[i].Cardinality(), uccs[j].Cardinality()
		if ci != cj {
			return ci < cj
		}
		return uccs[i].Key() < uccs[j].Key()
	})
}
