package ucc

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"hyfd/internal/bitset"
	"hyfd/internal/relation"
)

func randomRelation(r *rand.Rand, rows, cols, domain int) *relation.Relation {
	names := make([]string, cols)
	for i := range names {
		names[i] = "c" + strconv.Itoa(i)
	}
	rel := relation.New("rnd", names)
	for i := 0; i < rows; i++ {
		row := make([]string, cols)
		for j := range row {
			row[j] = strconv.Itoa(r.Intn(domain))
		}
		rel.AppendRow(row)
	}
	return rel
}

// bruteUCCs enumerates minimal uniques directly.
func bruteUCCs(rel *relation.Relation) map[string]bool {
	m := rel.NumCols()
	unique := func(attrs bitset.Set) bool {
		seen := make(map[string]bool)
		idx := attrs.Indices()
		for _, row := range rel.Rows {
			key := ""
			for _, a := range idx {
				key += row[a] + "\x01"
			}
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return true
	}
	var all []bitset.Set
	for mask := 0; mask < 1<<m; mask++ {
		x := bitset.New(m)
		for a := 0; a < m; a++ {
			if mask&(1<<a) != 0 {
				x.Set(a)
			}
		}
		if unique(x) {
			all = append(all, x)
		}
	}
	out := make(map[string]bool)
	for _, x := range all {
		minimal := true
		for _, y := range all {
			if y.IsProperSubsetOf(x) {
				minimal = false
				break
			}
		}
		if minimal {
			out[x.Key()] = true
		}
	}
	return out
}

func assertMatchesBrute(t *testing.T, rel *relation.Relation, got []bitset.Set) {
	t.Helper()
	want := bruteUCCs(rel)
	if len(got) != len(want) {
		t.Fatalf("got %d UCCs, want %d: %v", len(got), len(want), got)
	}
	for _, u := range got {
		if !want[u.Key()] {
			t.Fatalf("spurious UCC %v", u)
		}
	}
}

func TestDiscoverSimple(t *testing.T) {
	rel := relation.New("t", []string{"ID", "X", "Y"})
	for i := 0; i < 12; i++ {
		rel.AppendRow([]string{strconv.Itoa(i), strconv.Itoa(i % 3), strconv.Itoa(i % 4)})
	}
	got, err := Discover(rel, relation.NullEqualsNull, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesBrute(t, rel, got)
	// {ID} and {X,Y} (CRT: periods 3 and 4 identify i mod 12).
	if len(got) != 2 {
		t.Fatalf("UCCs = %v", got)
	}
}

func TestDiscoverEdgeCases(t *testing.T) {
	// Single row: the empty set is unique.
	one := relation.New("one", []string{"A", "B"})
	one.AppendRow([]string{"x", "y"})
	got, err := Discover(one, relation.NullEqualsNull, 0)
	if err != nil || len(got) != 1 || !got[0].IsEmpty() {
		t.Fatalf("got %v, %v", got, err)
	}
	// Duplicate rows: nothing is unique.
	dup := relation.New("dup", []string{"A", "B"})
	dup.AppendRow([]string{"x", "y"})
	dup.AppendRow([]string{"x", "y"})
	got, err = Discover(dup, relation.NullEqualsNull, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
	// Max size bound.
	r := rand.New(rand.NewSource(4))
	rel := randomRelation(r, 30, 5, 2)
	bounded, err := Discover(rel, relation.NullEqualsNull, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range bounded {
		if u.Cardinality() > 2 {
			t.Fatalf("UCC %v exceeds bound", u)
		}
	}
}

func TestDiscoverNullSemantics(t *testing.T) {
	rel := relation.New("n", []string{"A"})
	rel.AppendRow([]string{relation.Null})
	rel.AppendRow([]string{relation.Null})
	// Under ⊥=⊥ the two rows collide; under ⊥≠⊥ each null is distinct.
	eq, _ := Discover(rel, relation.NullEqualsNull, 0)
	if len(eq) != 0 {
		t.Fatalf("null=null UCCs = %v", eq)
	}
	ne, _ := Discover(rel, relation.NullNotEqualsNull, 0)
	if len(ne) != 1 || !ne[0].Equal(bitset.FromIndices(1, 0)) {
		t.Fatalf("null!=null UCCs = %v", ne)
	}
}

func TestQuickDiscoverMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := randomRelation(r, 1+r.Intn(40), 2+r.Intn(4), 1+r.Intn(5))
		got, err := Discover(rel, relation.NullEqualsNull, 0)
		if err != nil {
			return false
		}
		want := bruteUCCs(rel)
		if len(got) != len(want) {
			return false
		}
		for _, u := range got {
			if !want[u.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHybridMatchesBottomUp(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := randomRelation(r, 1+r.Intn(40), 2+r.Intn(4), 1+r.Intn(5))
		bottomUp, err := Discover(rel, relation.NullEqualsNull, 0)
		if err != nil {
			return false
		}
		hybrid, err := DiscoverHybrid(rel, relation.NullEqualsNull)
		if err != nil {
			return false
		}
		if len(bottomUp) != len(hybrid) {
			return false
		}
		for i := range bottomUp {
			if !bottomUp[i].Equal(hybrid[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridOnKeyedRelation(t *testing.T) {
	rel := relation.New("k", []string{"ID", "X", "Y", "Z"})
	for i := 0; i < 50; i++ {
		rel.AppendRow([]string{
			strconv.Itoa(i), strconv.Itoa(i % 5), strconv.Itoa(i % 7), strconv.Itoa(i % 2),
		})
	}
	got, err := DiscoverHybrid(rel, relation.NullEqualsNull)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesBrute(t, rel, got)
}
