package validator

import (
	"hyfd/internal/bitset"
	"hyfd/internal/pli"
)

// Checker exposes the direct-refinement check (Fig. 5) for targeted,
// single-candidate validation. The incremental maintenance layer uses it to
// re-validate exactly the candidates a delta can break, instead of walking
// whole FDTree levels through Validator.Run.
//
// A Checker is NOT safe for concurrent use: it reuses internal buffers
// across calls. Create one Checker per goroutine.
type Checker struct {
	ck *checker
}

// NewChecker returns a checker over the given PLI index.
func NewChecker(ix *pli.Index) *Checker {
	return &Checker{ck: newChecker(ix)}
}

// NumCols returns the attribute count of the underlying index.
func (c *Checker) NumCols() int { return c.ck.ix.NumCols }

// Refines reports whether lhs → rhs holds exactly on the index, by direct
// refinement over the pivot PLI. An empty lhs checks whether column rhs is
// constant.
func (c *Checker) Refines(lhs bitset.Set, rhs int) bool {
	valid, _ := c.ck.refines(lhs, bitset.FromIndices(c.ck.ix.NumCols, rhs))
	return valid.Test(rhs)
}
