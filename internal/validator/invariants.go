package validator

import (
	"hyfd/internal/fdtree"
	"hyfd/internal/invariant"
)

// assertLevelMinimal verifies, after a level's candidates have been validated
// and the invalid ones specialized away, that the positive cover stayed
// minimal: no FD surviving at this level has a validated generalization in
// the tree (-tags hyfdinvariants; see internal/invariant). Shallower levels
// are fully validated by construction, so a hit from FindFdOrGeneral on a
// one-attribute-smaller LHS is a genuine minimality violation, not a stale
// candidate.
func (v *Validator) assertLevelMinimal(level []fdtree.Node) {
	for _, nd := range level {
		lhs := nd.Lhs
		nd.RhsFds().ForEach(func(rhs int) bool {
			lhs.ForEach(func(a int) bool {
				invariant.Assert(!v.tree.FindFdOrGeneral(lhs.Without(a), rhs),
					"validator level %d: %v -> %d is non-minimal, a generalization without attr %d holds",
					v.levelNumber, lhs.Indices(), rhs, a)
				return true
			})
			return true
		})
	}
}
