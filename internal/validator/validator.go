// Package validator implements HyFD's Phase 2 (§8, Alg. 4): a row-efficient,
// level-wise traversal of the candidate FDTree that validates each node's FD
// candidates directly against the single-attribute PLIs — no hierarchical
// PLI intersections — and specializes invalid candidates into new minimal
// ones. When a level produces too many invalid candidates the Validator
// hands control back to the Sampler along with the record pairs that
// witnessed violations.
package validator

import (
	"context"
	"encoding/binary"
	"runtime"
	"sync"
	"time"

	"hyfd/internal/bitset"
	"hyfd/internal/fd"
	"hyfd/internal/fdtree"
	"hyfd/internal/invariant"
	"hyfd/internal/metrics"
	"hyfd/internal/pli"
	"hyfd/internal/trace"
)

// DefaultInvalidThreshold is the paper's Phase 2 efficiency cutoff: switch
// back to sampling when more than 1 % of a level's candidates are invalid.
const DefaultInvalidThreshold = 0.01

// Result reports the outcome of one Validator run.
type Result struct {
	// Done is true when every candidate was validated; the FDTree then
	// holds exactly the minimal FDs of the dataset.
	Done bool
	// Suggestions are record pairs that violated candidates, handed to the
	// Sampler when Done is false.
	Suggestions []pli.Pair
	// ValidFds / InvalidFds count candidate validations of this run.
	ValidFds, InvalidFds int
	// Stopped is true when a WithLevelFunc callback ended the run early
	// (ranked top-k cut). The tree then still holds unvalidated candidates
	// and Done is false.
	Stopped bool
}

// Validator validates FD candidates level-wise against the full dataset.
// Its level counter persists across runs, so after a phase switch it
// resumes where it stopped; the level's nodes are re-collected from the
// tree each time because the Inductor may have restructured the candidate
// frontier in between.
type Validator struct {
	ix        *pli.Index
	tree      *fdtree.Tree
	threshold float64
	threads   int
	intersect bool
	cache     *pli.Cache
	observer  trace.Observer
	inst      metrics.ValidatorInstruments
	levelFn   func(level int, valid []fd.FD) bool

	levelNumber int

	// Validations counts validated FDTree nodes over the Validator's life.
	Validations int64
}

// Option customizes a Validator.
type Option func(*Validator)

// WithInvalidThreshold sets the fraction of invalid candidates per level
// above which the Validator switches back to sampling.
func WithInvalidThreshold(t float64) Option {
	return func(v *Validator) { v.threshold = t }
}

// WithThreads sets the number of worker goroutines used for node
// validation; 1 means sequential, any value <= 0 picks
// runtime.GOMAXPROCS(0) — the engine-wide thread-count contract.
func WithThreads(n int) Option {
	return func(v *Validator) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		v.threads = n
	}
}

// WithObserver subscribes an observer to per-level trace.ValidationLevel
// events. Events are emitted from the coordinating goroutine only, after
// each level completes, so the observer never sees concurrent calls from
// the validator.
func WithObserver(o trace.Observer) Option {
	return func(v *Validator) { v.observer = o }
}

// WithInstruments attaches the validator's direct metrics hooks. The zero
// value is a no-op. Counts are batched once per level, added before the
// trace.ValidationLevel event fires so observers read current totals.
func WithInstruments(in metrics.ValidatorInstruments) Option {
	return func(v *Validator) { v.inst = in }
}

// WithLevelFunc registers a per-level callback for ranked discovery. After
// each level completes — specializations applied, trace event emitted — fn
// receives the finished level number and the FDs it validated, in the
// level's deterministic node order (each LHS is an independent clone).
// Returning false stops the run immediately with Result.Stopped set. The
// callback runs on the coordinating goroutine, never concurrently.
func WithLevelFunc(fn func(level int, valid []fd.FD) bool) Option {
	return func(v *Validator) { v.levelFn = fn }
}

// WithIntersectionValidation replaces HyFD's direct refinement checks with
// classic hierarchical PLI intersections (the TANE-style check, with a
// partition cache). This ablation exists to measure what §8 claims the
// direct validation buys: it forces sequential execution and retains every
// intermediate partition, trading memory and time for nothing.
func WithIntersectionValidation() Option {
	return func(v *Validator) { v.intersect = true }
}

// New returns a Validator over the preprocessed index and candidate tree.
func New(ix *pli.Index, tree *fdtree.Tree, opts ...Option) *Validator {
	v := &Validator{ix: ix, tree: tree, threshold: DefaultInvalidThreshold, threads: 1}
	for _, o := range opts {
		o(v)
	}
	return v
}

// invalidFd pairs an invalid candidate with its RHS.
type invalidFd struct {
	lhs bitset.Set
	rhs int
}

// nodeResult carries one node's validation outcome between workers and the
// sequential merge.
type nodeResult struct {
	valid       bitset.Set
	invalid     []invalidFd
	suggestions []pli.Pair
	numRhss     int
}

// Run resumes (or starts) the level-wise validation. With exhaustive=false
// it returns early — Done=false plus suggestions — once a level exceeds the
// invalid-candidate threshold; with exhaustive=true it always runs to
// completion (used when the Sampler has nothing new to offer).
//
// The context is checked before every level and between nodes inside a
// level (including by the parallel workers); a canceled run returns
// ctx.Err() promptly and leaves the candidate tree consistent up to the
// last fully validated level.
func (v *Validator) Run(ctx context.Context, exhaustive bool) (*Result, error) {
	res := &Result{}
	for v.levelNumber <= v.tree.MaxLhs() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		level := v.tree.GetLevel(v.levelNumber)
		if len(level) == 0 {
			break
		}
		//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
		levelStart := time.Now()
		validationsBefore := v.Validations
		suggestionsBefore := len(res.Suggestions)
		numValid, numInvalid := 0, 0
		var invalids []invalidFd
		var levelValid []fd.FD
		results, err := v.validateLevel(ctx, level)
		if err != nil {
			return nil, err
		}
		for i, nd := range level {
			r := results[i]
			if r.numRhss == 0 {
				continue
			}
			v.Validations++
			nd.SetFds(r.valid)
			numValid += r.valid.Cardinality()
			numInvalid += len(r.invalid)
			invalids = append(invalids, r.invalid...)
			res.Suggestions = append(res.Suggestions, r.suggestions...)
			if v.levelFn != nil {
				r.valid.ForEach(func(rhs int) bool {
					levelValid = append(levelValid, fd.FD{Lhs: nd.Lhs.Clone(), Rhs: rhs})
					return true
				})
			}
		}
		res.ValidFds += numValid
		res.InvalidFds += numInvalid

		// Specialize invalid candidates into the next level (Alg. 4 lines
		// 21-33); the next GetLevel picks the new nodes up.
		for _, inv := range invalids {
			v.specialize(inv)
		}
		if invariant.Enabled {
			v.assertLevelMinimal(level)
		}
		v.inst.Validations.Add(v.Validations - validationsBefore)
		v.inst.Suggestions.Add(int64(len(res.Suggestions) - suggestionsBefore))
		trace.Emit(v.observer, trace.ValidationLevel{
			Level:       v.levelNumber,
			Candidates:  numValid + numInvalid,
			Valid:       numValid,
			Invalid:     numInvalid,
			Suggestions: len(res.Suggestions) - suggestionsBefore,
			//hyfdvet:allow determinism — wall-clock telemetry only; never influences the FD set
			Duration: time.Since(levelStart),
		})
		v.levelNumber++

		if v.levelFn != nil && !v.levelFn(v.levelNumber-1, levelValid) {
			res.Stopped = true
			return res, nil
		}

		// Phase-switch check (Alg. 4 line 36): the level produced too many
		// invalid candidates, so the approximation is still poor.
		if !exhaustive && float64(numInvalid) > v.threshold*float64(numValid) &&
			len(res.Suggestions) > 0 {
			return res, nil
		}
	}
	res.Done = true
	res.Suggestions = nil
	return res, nil
}

// specialize generates all minimal, non-trivial extensions of an invalid FD
// (Alg. 4 lines 21-33).
func (v *Validator) specialize(inv invalidFd) {
	for attr := 0; attr < v.ix.NumCols; attr++ {
		if inv.lhs.Test(attr) || inv.rhs == attr {
			continue // triviality
		}
		// Pruning rule 1: lhs → attr already valid, so adding attr to the
		// LHS adds no determination power; the extension stays invalid.
		if v.tree.FindFdOrGeneral(inv.lhs, attr) {
			continue
		}
		// Pruning rule 2: attr → rhs (or ∅ → rhs) already valid, so the
		// extension is non-minimal.
		if v.tree.FindFdOrGeneral(bitset.FromIndices(v.ix.NumCols, attr), inv.rhs) {
			continue
		}
		newLhs := inv.lhs.With(attr)
		if v.tree.FindFdOrGeneral(newLhs, inv.rhs) {
			continue // a validated generalization exists: non-minimal
		}
		v.tree.Add(newLhs, inv.rhs)
	}
}

// refiner validates one node's candidates against the data.
type refiner interface {
	refines(lhs bitset.Set, rhss bitset.Set) (bitset.Set, []pli.Pair)
}

// newRefiner builds the per-goroutine check implementation.
func (v *Validator) newRefiner() refiner {
	if v.intersect {
		if v.cache == nil {
			v.cache = pli.NewCache(v.ix.Plis, v.ix.NumRows)
		}
		return &intersectChecker{ix: v.ix, cache: v.cache}
	}
	return newChecker(v.ix)
}

// validateLevel runs refines on every node of the level, fanning out over
// the worker pool when configured. Intersection validation shares one
// partition cache and therefore always runs sequentially. The context is
// re-checked between nodes; on cancellation the parallel workers drain
// their queue without working and the partial results are discarded.
func (v *Validator) validateLevel(ctx context.Context, level []fdtree.Node) ([]nodeResult, error) {
	results := make([]nodeResult, len(level))
	if v.threads <= 1 || len(level) < 2 || v.intersect {
		ck := v.newRefiner()
		for i, nd := range level {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			results[i] = validateNode(ck, nd)
		}
		return results, nil
	}
	var wg sync.WaitGroup
	work := make(chan int)
	workers := v.threads
	if workers > len(level) {
		workers = len(level)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ck := newChecker(v.ix)
			for i := range work {
				if ctx.Err() != nil {
					continue // drain the channel without working
				}
				results[i] = validateNode(ck, level[i])
			}
		}()
	}
	for i := range level {
		work <- i
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// validateNode validates all FD candidates of one node simultaneously.
func validateNode(ck refiner, nd fdtree.Node) nodeResult {
	rhss := nd.RhsFds()
	numRhss := rhss.Cardinality()
	if numRhss == 0 {
		return nodeResult{numRhss: 0}
	}
	valid, suggestions := ck.refines(nd.Lhs, rhss)
	r := nodeResult{valid: valid, suggestions: suggestions, numRhss: numRhss}
	invalid := rhss.AndNot(valid)
	invalid.ForEach(func(rhs int) bool {
		r.invalid = append(r.invalid, invalidFd{lhs: nd.Lhs, rhs: rhs})
		return true
	})
	return r
}

// checker performs direct refinement checks (Fig. 5). One checker per
// goroutine; it reuses its buffers across nodes to keep the hot path
// allocation-free (refines dominates HyFD's runtime on FD-rich datasets).
type checker struct {
	ix     *pli.Index
	rank   []int
	keyBuf []byte
	// Per-cluster scratch: recs holds the representative record of each
	// distinct LHS group, rhsArena the group's RHS cluster ids (flat,
	// groupWidth per group).
	recs     []int32
	rhsArena []int32
	// probe/probeStamp implement an O(1) cid → group lookup for the
	// two-attribute LHS case (one non-pivot attribute), replacing the
	// hash map on the hottest validation levels.
	probe      []int32
	probeStamp []int32
	stamp      int32
}

func newChecker(ix *pli.Index) *checker {
	return &checker{
		ix:         ix,
		rank:       ix.Rank(),
		probe:      make([]int32, ix.NumRows),
		probeStamp: make([]int32, ix.NumRows),
	}
}

// refines reports which RHS attributes are functionally determined by lhs,
// checking all candidates of one FDTree node in a single pass over the
// pivot PLI. It also returns record pairs witnessing violations.
func (ck *checker) refines(lhs bitset.Set, rhss bitset.Set) (bitset.Set, []pli.Pair) {
	ix := ck.ix
	lhsAttrs := lhs.Indices()

	// Level 0: ∅ → A holds iff column A is constant.
	if len(lhsAttrs) == 0 {
		valid := bitset.New(ix.NumCols)
		var suggestions []pli.Pair
		rhss.ForEach(func(rhs int) bool {
			p := ix.Plis[rhs]
			if p.IsConstant() {
				valid.Set(rhs)
			} else if pair, ok := constantViolation(p); ok {
				suggestions = append(suggestions, pair)
			}
			return true
		})
		return valid, suggestions
	}

	// Pivot: the LHS attribute with the most clusters (lowest rank in the
	// descending-distinctness order), i.e. the smallest clusters to scan.
	pivot := lhsAttrs[0]
	for _, a := range lhsAttrs[1:] {
		if ck.rank[a] < ck.rank[pivot] {
			pivot = a
		}
	}
	rest := make([]int, 0, len(lhsAttrs)-1)
	for _, a := range lhsAttrs {
		if a != pivot {
			rest = append(rest, a)
		}
	}
	rhsAttrs := rhss.Indices()

	valid := rhss.Clone()
	remaining := len(rhsAttrs)
	var suggestions []pli.Pair
	width := len(rhsAttrs)

	// checkAgainst compares the record's RHS cluster ids against the group
	// entry at index gi; it returns false when every RHS is invalidated.
	checkAgainst := func(gi int, rec int32, row []int32) bool {
		groupRhss := ck.rhsArena[gi*width : (gi+1)*width]
		violated := false
		for i, a := range rhsAttrs {
			if !valid.Test(a) {
				continue
			}
			// A Singleton RHS id means a unique value, which never agrees.
			cid := row[a]
			if cid == pli.Singleton || cid != groupRhss[i] {
				valid.Clear(a)
				remaining--
				violated = true
			}
		}
		if violated {
			suggestions = append(suggestions, pli.Pair{A: ck.recs[gi], B: rec})
			if remaining == 0 {
				return false
			}
		}
		return true
	}
	addGroup := func(rec int32, row []int32) int {
		gi := len(ck.recs)
		ck.recs = append(ck.recs, rec)
		for _, a := range rhsAttrs {
			ck.rhsArena = append(ck.rhsArena, row[a])
		}
		return gi
	}

	if len(rest) == 0 {
		// Fast path (common at level 1): the whole cluster is one LHS
		// group; compare everyone against the first record.
		for _, cluster := range ix.Plis[pivot].Clusters {
			ck.recs, ck.rhsArena = ck.recs[:0], ck.rhsArena[:0]
			addGroup(cluster[0], ix.Records[cluster[0]])
			for _, rec := range cluster[1:] {
				if !checkAgainst(0, rec, ix.Records[rec]) {
					return valid, suggestions
				}
			}
		}
		return valid, suggestions
	}

	if len(rest) == 1 {
		// Two-attribute LHS: the non-pivot cluster id is the group key;
		// a stamped probe array replaces the hash map.
		a0 := rest[0]
		for _, cluster := range ix.Plis[pivot].Clusters {
			ck.recs, ck.rhsArena = ck.recs[:0], ck.rhsArena[:0]
			ck.stamp++
			for _, rec := range cluster {
				row := ix.Records[rec]
				cid := row[a0]
				if cid == pli.Singleton {
					continue // unique in the LHS
				}
				if ck.probeStamp[cid] != ck.stamp {
					ck.probeStamp[cid] = ck.stamp
					ck.probe[cid] = int32(addGroup(rec, row))
					continue
				}
				if !checkAgainst(int(ck.probe[cid]), rec, row) {
					return valid, suggestions
				}
			}
		}
		return valid, suggestions
	}

	for _, cluster := range ix.Plis[pivot].Clusters {
		ck.recs, ck.rhsArena = ck.recs[:0], ck.rhsArena[:0]
		seen := make(map[string]int, len(cluster))
	recordLoop:
		for _, rec := range cluster {
			row := ix.Records[rec]
			// Build the LHS key from the non-pivot attributes; a singleton
			// makes the record unique in the LHS, so it cannot collide.
			ck.keyBuf = ck.keyBuf[:0]
			for _, a := range rest {
				cid := row[a]
				if cid == pli.Singleton {
					continue recordLoop
				}
				ck.keyBuf = binary.LittleEndian.AppendUint32(ck.keyBuf, uint32(cid))
			}
			gi, ok := seen[string(ck.keyBuf)] // no alloc on lookup
			if !ok {
				seen[string(ck.keyBuf)] = addGroup(rec, row)
				continue
			}
			if !checkAgainst(gi, rec, row) {
				return valid, suggestions
			}
		}
	}
	return valid, suggestions
}

// constantViolation extracts a witness pair for a non-constant column: two
// records with different values.
func constantViolation(p *pli.PLI) (pli.Pair, bool) {
	switch {
	case len(p.Clusters) >= 2:
		return pli.Pair{A: p.Clusters[0][0], B: p.Clusters[1][0]}, true
	case len(p.Clusters) == 1 && len(p.Clusters[0]) < p.NumRows:
		// One cluster plus at least one singleton: find a record outside
		// the cluster.
		in := make(map[int32]bool, len(p.Clusters[0]))
		for _, r := range p.Clusters[0] {
			in[r] = true
		}
		for r := int32(0); int(r) < p.NumRows; r++ {
			if !in[r] {
				return pli.Pair{A: p.Clusters[0][0], B: r}, true
			}
		}
	case len(p.Clusters) == 0 && p.NumRows >= 2:
		return pli.Pair{A: 0, B: 1}, true
	}
	return pli.Pair{}, false
}

// intersectChecker validates candidates with hierarchical PLI
// intersections through a shared partition cache — the strategy of the
// lattice-traversal baselines that HyFD's direct validation (§8) avoids.
type intersectChecker struct {
	ix    *pli.Index
	cache *pli.Cache
}

func (c *intersectChecker) refines(lhs bitset.Set, rhss bitset.Set) (bitset.Set, []pli.Pair) {
	valid := bitset.New(c.ix.NumCols)
	var suggestions []pli.Pair
	if lhs.IsEmpty() {
		rhss.ForEach(func(rhs int) bool {
			p := c.ix.Plis[rhs]
			if p.IsConstant() {
				valid.Set(rhs)
			} else if pair, ok := constantViolation(p); ok {
				suggestions = append(suggestions, pair)
			}
			return true
		})
		return valid, suggestions
	}
	lp := c.cache.Partition(lhs)
	lhsErr := lp.Error()
	rhss.ForEach(func(rhs int) bool {
		rp := c.cache.Partition(lhs.With(rhs))
		if rp.Error() == lhsErr {
			valid.Set(rhs)
			return true
		}
		if pair, ok := violationWitness(c.ix, lp, rhs); ok {
			suggestions = append(suggestions, pair)
		}
		return true
	})
	return valid, suggestions
}

// violationWitness locates two records of one LHS cluster with different
// RHS values.
func violationWitness(ix *pli.Index, lp *pli.Partition, rhs int) (pli.Pair, bool) {
	for _, cluster := range lp.Clusters {
		first := cluster[0]
		fid := ix.Records[first][rhs]
		for _, rec := range cluster[1:] {
			cid := ix.Records[rec][rhs]
			if cid == pli.Singleton || fid == pli.Singleton || cid != fid {
				return pli.Pair{A: first, B: rec}, true
			}
		}
	}
	return pli.Pair{}, false
}
